// Reproduces Fig. 2b: the target rank r required for a LOSSLESS SVD of
// the auxiliary matrix C_aux = Σ + Uᵀ·ΔQ·V, as a percentage of n, for
// |ΔE| ∈ {6K, 12K, 18K} (scaled) on DBLP and CITH. The paper's point:
// r/n is 80-95%, nowhere near "negligibly smaller than n", so Inc-SVD's
// O(r⁴·n²) update cannot be made accurate cheaply.
//
// Usage: fig2b_svd_rank [scale_multiplier]
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "incsr/incsr.h"
#include "la/svd.h"

namespace {

using namespace incsr;

void RunDataset(datasets::DatasetKind kind, double scale) {
  datasets::DatasetOptions data_options;
  data_options.scale = scale;
  auto series = datasets::MakeDataset(kind, data_options);
  INCSR_CHECK(series.ok(), "dataset: %s", series.status().ToString().c_str());
  const std::size_t n = series->num_nodes();

  graph::DynamicDiGraph g = series->GraphAt(0);
  la::DynamicRowMatrix q = graph::BuildTransition(g);

  bench::PrintHeader("Fig. 2b — " + datasets::DatasetName(kind) + " (scale " +
                     std::to_string(scale) + ", n = " + std::to_string(n) +
                     ")");

  // Lossless SVD of the old Q (dense Jacobi — this is exactly the
  // expensive precomputation the baseline requires).
  WallTimer svd_timer;
  auto factors = la::ComputeSvd(q.ToDense());
  INCSR_CHECK(factors.ok(), "svd");
  const std::size_t r0 = factors->rank();
  std::printf("lossless SVD of Q: rank %zu (%.1f%% of n), %.1f s\n", r0,
              100.0 * static_cast<double>(r0) / static_cast<double>(n),
              svd_timer.ElapsedSeconds());

  // |ΔE| points: the paper's 6K/12K/18K scaled by the dataset scale.
  auto full_delta = series->DeltaBetween(0, series->num_snapshots() - 1);
  std::puts("|dE|(scaled)   rank(C_aux)   % of n");
  for (int multiple = 1; multiple <= 3; ++multiple) {
    const std::size_t delta_edges = std::min(
        full_delta.size(),
        static_cast<std::size_t>(6000.0 * scale * multiple));
    // Accumulate C_aux = Σ + Uᵀ·ΔQ·V over the delta prefix, exactly as the
    // baseline's factor refresh does.
    graph::DynamicDiGraph g_work = g;
    la::DynamicRowMatrix q_work = q;
    const std::size_t r = factors->rank();
    la::DenseMatrix c_aux(r, r);
    for (std::size_t i = 0; i < r; ++i) c_aux(i, i) = factors->sigma[i];
    for (std::size_t k = 0; k < delta_edges; ++k) {
      auto rank_one = core::ComputeRankOneUpdate(q_work, full_delta[k]);
      INCSR_CHECK(rank_one.ok(), "rank one: %s",
                  rank_one.status().ToString().c_str());
      la::Vector ut_u = factors->u.MultiplyTranspose(rank_one->u.ToDense());
      la::Vector vt_v = factors->v.MultiplyTranspose(rank_one->v.ToDense());
      c_aux.AddOuterProduct(1.0, ut_u, vt_v);
      INCSR_CHECK(
          g_work.AddEdge(full_delta[k].src, full_delta[k].dst).ok(), "edge");
      graph::RefreshTransitionRow(g_work, full_delta[k].dst, &q_work);
    }
    auto aux_rank = la::NumericalRank(c_aux);
    INCSR_CHECK(aux_rank.ok(), "aux rank");
    std::printf("%8zu       %8zu     %6.1f%%\n", delta_edges,
                aux_rank.value(),
                100.0 * static_cast<double>(aux_rank.value()) /
                    static_cast<double>(n));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double scale_mult = argc > 1 ? std::atof(argv[1]) : 1.0;
  RunDataset(datasets::DatasetKind::kDblp, 0.05 * scale_mult);
  RunDataset(datasets::DatasetKind::kCitH, 0.025 * scale_mult);
  std::puts(
      "\nShape check vs the paper: the lossless rank of C_aux is a large "
      "fraction of n\n(80-95% in the paper), so no negligibly-small target "
      "rank r makes Inc-SVD exact.");
  return 0;
}
