// google-benchmark micro-suite over the kernels behind the paper's
// complexity claims:
//   - SpMV / sparse×dense (the O(d·n²) batch iteration building block),
//   - one batch SimRank iteration (matrix form vs partial sums),
//   - a full Inc-uSR unit update (O(K·n²) worst case, row-sparse in
//     practice) vs a full Inc-SR unit update (O(K(n·d + |AFF|))) — the
//     n-scaling of the two is the paper's Section V claim,
//   - the Theorem 1-3 seed computation (O(m + n)),
//   - Jacobi vs randomized SVD (the Inc-SVD precomputation).
#include <benchmark/benchmark.h>

#include "incsr/incsr.h"
#include "la/randomized_svd.h"

namespace {

using namespace incsr;

graph::DynamicDiGraph MakeGraph(std::size_t n, double degree,
                                std::uint64_t seed = 11) {
  // Clustered, like the real datasets: the Inc-SR vs Inc-uSR scaling
  // claim concerns graphs whose similarity structure HAS prunable zeros;
  // an unclustered small graph saturates S and measures only overhead
  // (see EXPERIMENTS.md on the dense-reach scale artifact).
  auto stream = graph::EvolvingLinkage(
      {.num_nodes = n,
       .num_edges = static_cast<std::size_t>(degree * static_cast<double>(n)),
       .num_communities = std::max<std::size_t>(1, n / 65),
       .intra_community_prob = 1.0,
       .seed = seed});
  INCSR_CHECK(stream.ok(), "generator");
  return graph::MaterializeGraph(n, stream.value());
}

simrank::SimRankOptions Options() {
  simrank::SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 15;
  return options;
}

void BM_SpMV(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::DynamicDiGraph g = MakeGraph(n, 8.0);
  la::CsrMatrix q = graph::BuildTransitionCsr(g);
  la::Vector x(n, 1.0);
  for (auto _ : state) {
    la::Vector y = q.Multiply(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(q.nnz()));
}
BENCHMARK(BM_SpMV)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_BatchMatrixIteration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::DynamicDiGraph g = MakeGraph(n, 8.0);
  la::CsrMatrix q = graph::BuildTransitionCsr(g);
  simrank::SimRankOptions options = Options();
  options.iterations = 1;
  for (auto _ : state) {
    la::DenseMatrix s = simrank::BatchMatrixFromTransition(q, options);
    benchmark::DoNotOptimize(s.RowPtr(0));
  }
}
BENCHMARK(BM_BatchMatrixIteration)->Arg(500)->Arg(1000)->Arg(2000);

void BM_BatchPartialSumsIteration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::DynamicDiGraph g = MakeGraph(n, 8.0);
  simrank::SimRankOptions options = Options();
  options.iterations = 1;
  for (auto _ : state) {
    la::DenseMatrix s = simrank::BatchPartialSums(g, options);
    benchmark::DoNotOptimize(s.RowPtr(0));
  }
}
BENCHMARK(BM_BatchPartialSumsIteration)->Arg(500)->Arg(1000)->Arg(2000);

// One full unit update, dense (Inc-uSR). The per-n scaling exhibits the
// Θ(n²) dense-M accumulation.
void BM_IncUsrUnitUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::DynamicDiGraph g = MakeGraph(n, 8.0);
  simrank::SimRankOptions options = Options();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    auto ins = graph::SampleInsertions(g, 1, &rng);
    INCSR_CHECK(ins.ok(), "sample");
    state.ResumeTiming();
    INCSR_CHECK(
        core::IncUsrApplyUpdate(ins.value()[0], options, &g, &q, &s).ok(),
        "update");
  }
}
BENCHMARK(BM_IncUsrUnitUpdate)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000);

// One full unit update, pruned (Inc-SR). Scaling is sub-quadratic in n —
// the paper's O(K(n·d + |AFF|)).
void BM_IncSrUnitUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::DynamicDiGraph g = MakeGraph(n, 8.0);
  simrank::SimRankOptions options = Options();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  core::IncSrEngine engine(options);
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    auto ins = graph::SampleInsertions(g, 1, &rng);
    INCSR_CHECK(ins.ok(), "sample");
    state.ResumeTiming();
    INCSR_CHECK(engine.ApplyUpdate(ins.value()[0], &g, &q, &s).ok(),
                "update");
  }
}
BENCHMARK(BM_IncSrUnitUpdate)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000);

// Before/after of the seed-scan memory-layout fix on the COW ScoreStore
// the serving path uses. The old ComputeSparseSeed walked column i via
// s(y, i): one shard resolve per element and a stride-n walk over the
// n×n payload. The fix reads the SYMMETRIC row i instead — a single
// contiguous resolve. These two kernels isolate exactly that access
// pattern (same data, same reduction, only the layout differs).
void BM_SeedColumnScanStrided(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(17);
  la::DenseMatrix dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double* row = dense.RowPtr(i);
    for (std::size_t j = 0; j < n; ++j) row[j] = rng.NextDouble();
  }
  la::ScoreStore store(std::move(dense));
  const std::size_t i = n / 2;
  for (auto _ : state) {
    double sum = 0.0;
    for (std::size_t y = 0; y < n; ++y) sum += store(y, i);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SeedColumnScanStrided)->Arg(1000)->Arg(4000);

void BM_SeedColumnScanSymmetricRow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(17);
  la::DenseMatrix dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double* row = dense.RowPtr(i);
    for (std::size_t j = 0; j < n; ++j) row[j] = rng.NextDouble();
  }
  la::ScoreStore store(std::move(dense));
  const std::size_t i = n / 2;
  for (auto _ : state) {
    const double* row = store.RowPtr(i);
    double sum = 0.0;
    for (std::size_t y = 0; y < n; ++y) sum += row[y];
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SeedColumnScanSymmetricRow)->Arg(1000)->Arg(4000);

// One full unit update through the COW ScoreStore at a given thread
// count — the serving applier's exact write path. Args: {n, threads}.
void BM_IncSrUnitUpdateThreads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::DynamicDiGraph g = MakeGraph(n, 8.0);
  simrank::SimRankOptions options = Options();
  options.num_threads = static_cast<int>(state.range(1));
  la::ScoreStore s{simrank::BatchMatrix(g, options)};
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  core::IncSrEngine engine(options);
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    auto ins = graph::SampleInsertions(g, 1, &rng);
    INCSR_CHECK(ins.ok(), "sample");
    state.ResumeTiming();
    INCSR_CHECK(engine.ApplyUpdate(ins.value()[0], &g, &q, &s).ok(),
                "update");
  }
}
BENCHMARK(BM_IncSrUnitUpdateThreads)
    ->Args({2000, 1})
    ->Args({2000, 2})
    ->Args({2000, 4})
    ->Args({4000, 1})
    ->Args({4000, 4});

void BM_UpdateSeed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::DynamicDiGraph g = MakeGraph(n, 8.0);
  simrank::SimRankOptions options = Options();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  Rng rng(5);
  auto ins = graph::SampleInsertions(g, 1, &rng);
  INCSR_CHECK(ins.ok(), "sample");
  for (auto _ : state) {
    auto seed = core::ComputeUpdateSeed(q, s, ins.value()[0], options);
    INCSR_CHECK(seed.ok(), "seed");
    benchmark::DoNotOptimize(seed->theta.data());
  }
}
BENCHMARK(BM_UpdateSeed)->Arg(1000)->Arg(4000);

void BM_JacobiSvd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::DynamicDiGraph g = MakeGraph(n, 8.0);
  la::DenseMatrix q = graph::BuildTransitionCsr(g).ToDense();
  for (auto _ : state) {
    auto svd = la::ComputeSvd(q);
    INCSR_CHECK(svd.ok(), "svd");
    benchmark::DoNotOptimize(svd->sigma.data());
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_RandomizedSvdRank5(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::DynamicDiGraph g = MakeGraph(n, 8.0);
  la::CsrMatrix q = graph::BuildTransitionCsr(g);
  for (auto _ : state) {
    auto svd = la::ComputeRandomizedSvd(q, {.rank = 5});
    INCSR_CHECK(svd.ok(), "svd");
    benchmark::DoNotOptimize(svd->sigma.data());
  }
}
BENCHMARK(BM_RandomizedSvdRank5)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
