// snapshot_publish — microbenchmark for the epoch-publish path: full
// O(n²) matrix copy (the PR 1 serving design) vs the copy-on-write
// ScoreStore's pointer-table bump plus per-touched-row clones. For each
// matrix size and touched-row workload it simulates an apply/publish
// cycle: write into `touched` distinct rows, then publish an immutable
// snapshot a reader could pin.
//
// The headline shape: full-copy cost grows with n² regardless of the
// affected area, while COW publish cost is O(touched rows) — near-flat
// in n for a fixed touched count, and proportional to the touched
// fraction otherwise (the paper's affected-area locality turned into
// serving throughput).
//
// Usage: bench_snapshot_publish [--sizes 1000,4000,16000]
//          [--touched 64] [--fractions 0.01,0.1,1.0] [--epochs E]
//          [--json PATH]
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "incsr/incsr.h"
#include "la/score_store.h"

namespace {

using namespace incsr;

struct Config {
  std::vector<std::size_t> sizes = {1000, 4000, 16000};
  std::size_t touched = 64;                        // fixed-count series
  std::vector<double> fractions = {0.01, 0.10, 1.0};  // fraction-of-n series
  std::size_t epochs = 5;
  std::string json_path;  // when set, emit a BENCH json trajectory file
};

std::vector<std::string> SplitCommas(const std::string& csv) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(csv.substr(start));
      break;
    }
    parts.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

la::DenseMatrix FillMatrix(std::size_t n) {
  Rng rng(1234);
  la::DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double* row = m.RowPtr(i);
    for (std::size_t j = 0; j < n; ++j) row[j] = rng.NextDouble();
  }
  return m;
}

// Distinct pseudo-random rows a batch "touches" (stable per epoch seed).
std::vector<std::size_t> TouchedRows(std::size_t n, std::size_t count,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<std::size_t> rows;
  rows.reserve(count);
  while (rows.size() < count) {
    const auto r = static_cast<std::size_t>(rng.NextBounded(n));
    if (!seen[r]) {
      seen[r] = 1;
      rows.push_back(r);
    }
  }
  return rows;
}

struct PublishCost {
  double seconds_per_epoch = 0.0;
  std::uint64_t rows_copied = 0;
  std::uint64_t bytes_copied = 0;
};

// The PR 1 design: every epoch deep-copies the whole matrix into the
// snapshot (writes first touch the live matrix in place).
PublishCost FullCopyPublish(la::DenseMatrix* live, std::size_t touched,
                            std::size_t epochs) {
  const std::size_t n = live->rows();
  PublishCost cost;
  WallTimer timer;
  for (std::size_t e = 0; e < epochs; ++e) {
    for (std::size_t r : TouchedRows(n, touched, 77 + e)) {
      live->MutableRowPtr(r)[e % n] += 1e-12;
    }
    la::DenseMatrix snapshot = *live;  // the O(n²) publish
    // Keep the copy observable so the optimizer cannot drop it.
    if (snapshot(0, 0) == -1.0) std::abort();
    cost.rows_copied += n;
    cost.bytes_copied += static_cast<std::uint64_t>(n) * n * sizeof(double);
  }
  cost.seconds_per_epoch =
      timer.ElapsedSeconds() / static_cast<double>(epochs);
  return cost;
}

// The COW design: writes clone touched rows, publish bumps the pointer
// table; a pinned view per epoch plays the role of a reader.
PublishCost CowPublish(la::ScoreStore* store, std::size_t touched,
                       std::size_t epochs) {
  const std::size_t n = store->rows();
  PublishCost cost;
  la::ScoreStore::View pinned = store->Publish();
  const la::ScoreStoreStats before = store->stats();
  WallTimer timer;
  for (std::size_t e = 0; e < epochs; ++e) {
    for (std::size_t r : TouchedRows(n, touched, 77 + e)) {
      store->MutableRowPtr(r)[e % n] += 1e-12;
    }
    pinned = store->Publish();
    if (pinned(0, 0) == -1.0) std::abort();
  }
  cost.seconds_per_epoch =
      timer.ElapsedSeconds() / static_cast<double>(epochs);
  cost.rows_copied = store->stats().rows_copied - before.rows_copied;
  cost.bytes_copied = store->stats().bytes_copied - before.bytes_copied;
  return cost;
}

void RunSize(const Config& config, std::size_t n,
             bench::JsonObject* json) {
  std::printf("\nn = %zu (S is %.1f MB)\n", n,
              static_cast<double>(n) * n * sizeof(double) / 1e6);
  std::printf("  %-22s %14s %14s %9s %14s\n", "touched rows / epoch",
              "full-copy", "cow-publish", "speedup", "cow rows/epoch");

  std::vector<std::size_t> workloads;
  workloads.push_back(std::min(config.touched, n));
  for (double f : config.fractions) {
    const auto rows = static_cast<std::size_t>(f * static_cast<double>(n));
    workloads.push_back(std::min(n, std::max<std::size_t>(1, rows)));
  }

  for (std::size_t touched : workloads) {
    la::DenseMatrix live = FillMatrix(n);
    PublishCost full = FullCopyPublish(&live, touched, config.epochs);

    la::ScoreStore store(FillMatrix(n));
    PublishCost cow = CowPublish(&store, touched, config.epochs);

    const double speedup = cow.seconds_per_epoch > 0.0
                               ? full.seconds_per_epoch / cow.seconds_per_epoch
                               : 0.0;
    const double cow_rows_per_epoch = static_cast<double>(cow.rows_copied) /
                                      static_cast<double>(config.epochs);
    std::printf("  %-22zu %11.3f ms %11.3f ms %8.1fx %14.0f\n", touched,
                full.seconds_per_epoch * 1e3, cow.seconds_per_epoch * 1e3,
                speedup, cow_rows_per_epoch);
    if (json != nullptr) {
      json->AddObject("results")
          ->Set("nodes", n)
          .Set("touched_rows", touched)
          .Set("full_copy_ms_per_epoch", full.seconds_per_epoch * 1e3)
          .Set("cow_ms_per_epoch", cow.seconds_per_epoch * 1e3)
          .Set("speedup", speedup)
          .Set("cow_rows_per_epoch", cow_rows_per_epoch);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench();
  Config config;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> std::string {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--sizes") == 0) {
      config.sizes.clear();
      for (const std::string& part : SplitCommas(next())) {
        config.sizes.push_back(
            static_cast<std::size_t>(std::atoll(part.c_str())));
      }
    } else if (std::strcmp(argv[i], "--touched") == 0) {
      config.touched = static_cast<std::size_t>(std::atoll(next().c_str()));
    } else if (std::strcmp(argv[i], "--fractions") == 0) {
      config.fractions.clear();
      for (const std::string& part : SplitCommas(next())) {
        config.fractions.push_back(std::atof(part.c_str()));
      }
    } else if (std::strcmp(argv[i], "--epochs") == 0) {
      config.epochs = static_cast<std::size_t>(std::atoll(next().c_str()));
      // Every per-epoch ratio below divides by this; 0 would emit
      // NaN/inf into the JSON trajectory.
      INCSR_CHECK(config.epochs >= 1, "--epochs needs >= 1");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      config.json_path = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  bench::PrintHeader(
      "snapshot_publish — full-copy vs copy-on-write epoch publish");
  std::printf(
      "per epoch: touch T distinct rows, then publish an immutable "
      "snapshot (%zu epochs averaged)\n",
      config.epochs);
  bench::JsonObject root;
  root.Set("bench", "snapshot_publish").Set("epochs", config.epochs);
  bench::JsonObject* json =
      config.json_path.empty() ? nullptr : &root;
  for (std::size_t n : config.sizes) RunSize(config, n, json);
  if (json != nullptr) {
    INCSR_CHECK(bench::WriteJsonFile(config.json_path, root),
                "failed to write %s", config.json_path.c_str());
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  return 0;
}
