// serve_throughput — load generator for the concurrent serving layer.
// Builds a synthetic link-evolving workload (ER base graph + sampled
// insertions), replays it through SimRankService from W writer threads
// while R reader threads issue top-k queries in a closed loop, and reports
// ingest throughput (updates/s) plus query latency percentiles (p50/p99)
// under the mixed read/write load. Runs twice — query cache enabled and
// disabled — so the affected-area invalidation win is visible directly.
//
// Usage: bench_serve_throughput [--nodes N] [--edges M] [--updates U]
//          [--writers W] [--readers R] [--topk K] [--max-batch B]
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct LoadConfig {
  std::size_t nodes = 200;
  std::size_t edges = 1200;
  std::size_t updates = 400;
  std::size_t writers = 2;
  std::size_t readers = 2;
  std::size_t topk = 10;
  std::size_t max_batch = 64;
};

double Percentile(std::vector<double>* sorted_in_place, double pct) {
  std::vector<double>& v = *sorted_in_place;
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      pct * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct LoadResult {
  double ingest_seconds = 0.0;
  std::uint64_t total_queries = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  service::ServiceStats stats;
};

LoadResult RunLoad(const LoadConfig& config,
                   const graph::DynamicDiGraph& graph,
                   const std::vector<graph::EdgeUpdate>& updates,
                   std::size_t cache_capacity) {
  simrank::SimRankOptions options;  // paper defaults: C = 0.6, K = 15
  auto index = core::DynamicSimRank::Create(graph, options);
  INCSR_CHECK(index.ok(), "index build failed");

  service::ServiceOptions service_options;
  service_options.max_batch = config.max_batch;
  service_options.cache_capacity = cache_capacity;
  auto service = service::SimRankService::Create(std::move(index).value(),
                                                 service_options);
  INCSR_CHECK(service.ok(), "service build failed");
  service::SimRankService& svc = **service;

  std::atomic<bool> done{false};
  std::vector<std::vector<double>> latencies(config.readers);
  std::vector<std::thread> threads;
  WallTimer timer;
  for (std::size_t w = 0; w < config.writers; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t i = w; i < updates.size(); i += config.writers) {
        Status s = svc.Submit(updates[i]);
        INCSR_CHECK(s.ok(), "submit failed: %s", s.ToString().c_str());
      }
    });
  }
  for (std::size_t r = 0; r < config.readers; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(999 + static_cast<std::uint64_t>(r));
      std::vector<double>& mine = latencies[r];
      while (!done.load(std::memory_order_acquire)) {
        const auto node =
            static_cast<graph::NodeId>(rng.NextBounded(config.nodes));
        WallTimer query_timer;
        auto top = svc.TopKFor(node, config.topk);
        INCSR_CHECK(top.ok(), "query failed");
        mine.push_back(query_timer.ElapsedSeconds() * 1e6);
      }
    });
  }
  for (std::size_t w = 0; w < config.writers; ++w) threads[w].join();
  INCSR_CHECK(svc.Flush().ok(), "flush failed");
  LoadResult result;
  result.ingest_seconds = timer.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  for (std::size_t t = config.writers; t < threads.size(); ++t) {
    threads[t].join();
  }

  std::vector<double> merged;
  for (const auto& per_reader : latencies) {
    merged.insert(merged.end(), per_reader.begin(), per_reader.end());
  }
  result.total_queries = merged.size();
  result.p50_us = Percentile(&merged, 0.50);
  result.p99_us = Percentile(&merged, 0.99);
  result.stats = svc.stats();
  return result;
}

void Report(const char* label, const LoadConfig& config,
            const LoadResult& result) {
  const double updates_per_sec =
      static_cast<double>(result.stats.applied) / result.ingest_seconds;
  const double queries_per_sec =
      static_cast<double>(result.total_queries) / result.ingest_seconds;
  const std::uint64_t lookups = result.stats.cache.hits +
                                result.stats.cache.misses;
  std::printf(
      "%-14s %9.0f upd/s  %8.0f qry/s  p50 %7.1f us  p99 %7.1f us  "
      "hit-rate %5.1f%%  (%llu queries, %llu epochs)\n",
      label, updates_per_sec, queries_per_sec, result.p50_us, result.p99_us,
      lookups == 0 ? 0.0
                   : 100.0 * static_cast<double>(result.stats.cache.hits) /
                         static_cast<double>(lookups),
      static_cast<unsigned long long>(result.total_queries),
      static_cast<unsigned long long>(result.stats.epoch));
  INCSR_CHECK(result.stats.applied == config.updates,
              "lost updates: applied %llu of %zu",
              static_cast<unsigned long long>(result.stats.applied),
              config.updates);
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench();
  LoadConfig config;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> std::size_t {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      return static_cast<std::size_t>(std::atoll(argv[++i]));
    };
    if (std::strcmp(argv[i], "--nodes") == 0) {
      config.nodes = next();
    } else if (std::strcmp(argv[i], "--edges") == 0) {
      config.edges = next();
    } else if (std::strcmp(argv[i], "--updates") == 0) {
      config.updates = next();
    } else if (std::strcmp(argv[i], "--writers") == 0) {
      config.writers = next();
    } else if (std::strcmp(argv[i], "--readers") == 0) {
      config.readers = next();
    } else if (std::strcmp(argv[i], "--topk") == 0) {
      config.topk = next();
    } else if (std::strcmp(argv[i], "--max-batch") == 0) {
      config.max_batch = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  bench::PrintHeader("serve_throughput — mixed read/write serving load");
  std::printf(
      "n = %zu, |E| = %zu, |dG| = %zu insertions, %zu writers, %zu readers, "
      "k = %zu, max_batch = %zu\n",
      config.nodes, config.edges, config.updates, config.writers,
      config.readers, config.topk, config.max_batch);

  auto stream = graph::ErdosRenyiGnm(config.nodes, config.edges, 7);
  INCSR_CHECK(stream.ok(), "generator failed");
  graph::DynamicDiGraph graph =
      graph::MaterializeGraph(config.nodes, stream.value());
  Rng rng(11);
  auto updates = graph::SampleInsertions(graph, config.updates, &rng);
  INCSR_CHECK(updates.ok(), "sampling failed: %s",
              updates.status().ToString().c_str());

  LoadResult cached = RunLoad(config, graph, updates.value(),
                              /*cache_capacity=*/4096);
  Report("cache on:", config, cached);
  LoadResult uncached = RunLoad(config, graph, updates.value(),
                                /*cache_capacity=*/0);
  Report("cache off:", config, uncached);
  return 0;
}
