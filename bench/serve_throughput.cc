// serve_throughput — load generator for the concurrent serving layer.
// Builds a synthetic link-evolving workload (ER base graph + a sampled
// update stream), replays it through SimRankService from W writer threads
// while R reader threads issue top-k queries in a closed loop, and reports
// ingest throughput (updates/s), query latency percentiles (p50/p99), and
// the epoch-publish cost (rows/bytes copy-on-written per epoch) under the
// mixed read/write load. Runs twice — query cache enabled and disabled —
// so the affected-area invalidation win is visible directly.
//
// Sharding: --components C builds the base graph as C disjoint ER blocks
// (a multi-component graph, the shape that shards cleanly) with the
// update stream confined to blocks and interleaved round-robin across
// them; --shards K replays the workload through a ShardedSimRankService
// with K shards instead of a single service — K appliers absorb updates
// concurrently, which is the scale-out path of src/shard/. Per-shard
// stats land in the --json trajectory as arrays. --shards 0 (default)
// keeps the single-service path even for multi-component graphs.
//
// Query skew: --zipf THETA draws reader query nodes Zipf(θ)-skewed over
// the node ids (0 = uniform), modeling hot-node traffic — which is also
// where the affected-area cache invalidation matters most.
//
// Churn: --churn delete-heavy replays a 70/30 delete/insert mix (every
// edge appears once, so the stream is valid under any writer
// interleaving) instead of the default insert-only stream.
//
// Kernel parallelism: --threads T runs the applier's update kernels
// (seed scan, support expansion, scatter) T-way parallel on the shared
// pool (0 = INCSR_THREADS / hardware default). Results are bitwise
// independent of T; only the applied-updates/s changes.
//
// Top-k index: --index-capacity C sets the per-node top-k index size
// (0 disables it), so the index's O(k) miss path can be compared against
// the O(n) row-scan miss path under the same load; served/fallback
// counters land in the report and the JSON trajectory.
//
// Usage: bench_serve_throughput [--nodes N] [--edges M] [--updates U]
//          [--writers W] [--readers R] [--topk K] [--max-batch B]
//          [--zipf THETA] [--churn insert|delete-heavy] [--threads T]
//          [--components C] [--shards K] [--index-capacity C] [--json PATH]
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct LoadConfig {
  std::size_t nodes = 200;
  std::size_t edges = 1200;
  std::size_t updates = 400;
  std::size_t writers = 2;
  std::size_t readers = 2;
  std::size_t topk = 10;
  std::size_t max_batch = 64;
  double zipf_theta = 0.0;   // 0 = uniform query nodes
  bool delete_heavy = false; // 70/30 delete/insert churn stream
  int threads = 0;           // update-kernel parallelism (0 = default)
  std::size_t index_capacity = 4096;  // per-node top-k index (0 = off)
  std::size_t components = 1; // disjoint ER blocks in the base graph
  std::size_t shards = 0;     // 0 = single service; K = sharded service
  std::string json_path;     // when set, emit a BENCH json trajectory file
};

double Percentile(std::vector<double>* sorted_in_place, double pct) {
  std::vector<double>& v = *sorted_in_place;
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      pct * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct LoadResult {
  double ingest_seconds = 0.0;
  std::uint64_t total_queries = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  service::ServiceStats stats;          // single-service or sharded total
  shard::ShardedStats sharded_stats;    // populated when config.shards > 0
};

// One churn stream per component block (deletions of existing edges,
// insertions of non-edges; disjoint sets, so valid in any interleaving),
// offset to global ids and interleaved round-robin across blocks.
void BuildWorkload(const LoadConfig& config, graph::DynamicDiGraph* graph,
                   std::vector<graph::EdgeUpdate>* updates) {
  const std::size_t blocks = std::max<std::size_t>(1, config.components);
  *graph = graph::DynamicDiGraph(config.nodes);
  std::vector<std::vector<graph::EdgeUpdate>> per_block;
  Rng rng(11);
  std::size_t base = 0;
  for (std::size_t c = 0; c < blocks; ++c) {
    const std::size_t bn =
        config.nodes / blocks + (c + 1 == blocks ? config.nodes % blocks : 0);
    const std::size_t bm =
        config.edges / blocks + (c + 1 == blocks ? config.edges % blocks : 0);
    const std::size_t bu =
        config.updates / blocks +
        (c + 1 == blocks ? config.updates % blocks : 0);
    auto stream = graph::ErdosRenyiGnm(bn, bm, 7 + c);
    INCSR_CHECK(stream.ok(), "generator failed");
    graph::DynamicDiGraph block = graph::MaterializeGraph(bn, stream.value());
    for (const graph::Edge& e : block.Edges()) {
      INCSR_CHECK(graph
                      ->AddEdge(static_cast<graph::NodeId>(base + e.src),
                                static_cast<graph::NodeId>(base + e.dst))
                      .ok(),
                  "block edge insert failed");
    }
    std::vector<graph::EdgeUpdate> block_updates;
    if (config.delete_heavy) {
      const std::size_t deletions = std::min(block.num_edges(), bu * 7 / 10);
      const std::size_t insertions = bu - deletions;
      auto del = graph::SampleDeletions(block, deletions, &rng);
      INCSR_CHECK(del.ok(), "deletion sampling failed: %s",
                  del.status().ToString().c_str());
      auto ins = graph::SampleInsertions(block, insertions, &rng);
      INCSR_CHECK(ins.ok(), "insertion sampling failed: %s",
                  ins.status().ToString().c_str());
      std::size_t a = 0;
      std::size_t b = 0;
      // Deterministic 7:3 interleave.
      while (a < del->size() || b < ins->size()) {
        for (int d = 0; d < 7 && a < del->size(); ++d) {
          block_updates.push_back((*del)[a++]);
        }
        for (int s = 0; s < 3 && b < ins->size(); ++s) {
          block_updates.push_back((*ins)[b++]);
        }
      }
    } else {
      auto ins = graph::SampleInsertions(block, bu, &rng);
      INCSR_CHECK(ins.ok(), "sampling failed: %s",
                  ins.status().ToString().c_str());
      block_updates = std::move(ins).value();
    }
    for (graph::EdgeUpdate& u : block_updates) {
      u.src = static_cast<graph::NodeId>(base + u.src);
      u.dst = static_cast<graph::NodeId>(base + u.dst);
    }
    per_block.push_back(std::move(block_updates));
    base += bn;
  }
  updates->clear();
  for (std::size_t k = 0;; ++k) {
    bool any = false;
    for (const auto& stream : per_block) {
      if (k < stream.size()) {
        updates->push_back(stream[k]);
        any = true;
      }
    }
    if (!any) break;
  }
}

// Drives the writer/reader load against any service exposing Submit /
// Flush / TopKFor (service::SimRankService or shard::ShardedSimRankService).
template <typename Service>
void DriveLoad(const LoadConfig& config,
               const std::vector<graph::EdgeUpdate>& updates, Service* svc,
               LoadResult* result) {
  std::atomic<bool> done{false};
  std::vector<std::vector<double>> latencies(config.readers);
  std::vector<std::thread> threads;
  bench::ZipfSampler zipf(config.nodes, config.zipf_theta);
  WallTimer timer;
  for (std::size_t w = 0; w < config.writers; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t i = w; i < updates.size(); i += config.writers) {
        Status s = svc->Submit(updates[i]);
        INCSR_CHECK(s.ok(), "submit failed: %s", s.ToString().c_str());
      }
    });
  }
  for (std::size_t r = 0; r < config.readers; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(999 + static_cast<std::uint64_t>(r));
      std::vector<double>& mine = latencies[r];
      while (!done.load(std::memory_order_acquire)) {
        const auto node = static_cast<graph::NodeId>(zipf.Next(&rng));
        WallTimer query_timer;
        auto top = svc->TopKFor(node, config.topk);
        INCSR_CHECK(top.ok(), "query failed");
        mine.push_back(query_timer.ElapsedSeconds() * 1e6);
      }
    });
  }
  for (std::size_t w = 0; w < config.writers; ++w) threads[w].join();
  INCSR_CHECK(svc->Flush().ok(), "flush failed");
  result->ingest_seconds = timer.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  for (std::size_t t = config.writers; t < threads.size(); ++t) {
    threads[t].join();
  }
  std::vector<double> merged;
  for (const auto& per_reader : latencies) {
    merged.insert(merged.end(), per_reader.begin(), per_reader.end());
  }
  result->total_queries = merged.size();
  result->p50_us = Percentile(&merged, 0.50);
  result->p99_us = Percentile(&merged, 0.99);
}

LoadResult RunLoad(const LoadConfig& config,
                   const graph::DynamicDiGraph& graph,
                   const std::vector<graph::EdgeUpdate>& updates,
                   std::size_t cache_capacity) {
  simrank::SimRankOptions options;  // paper defaults: C = 0.6, K = 15
  options.num_threads = config.threads;
  service::ServiceOptions service_options;
  service_options.max_batch = config.max_batch;
  service_options.cache_capacity = cache_capacity;
  service_options.topk_index_capacity = config.index_capacity;

  LoadResult result;
  if (config.shards > 0) {
    shard::ShardedServiceOptions sharded_options;
    sharded_options.num_shards = config.shards;
    sharded_options.per_shard = service_options;
    auto service =
        shard::ShardedSimRankService::Create(graph, options, sharded_options);
    INCSR_CHECK(service.ok(), "sharded service build failed");
    DriveLoad(config, updates, service->get(), &result);
    result.sharded_stats = (*service)->stats();
    result.stats = result.sharded_stats.total;
  } else {
    auto index = core::DynamicSimRank::Create(graph, options);
    INCSR_CHECK(index.ok(), "index build failed");
    auto service = service::SimRankService::Create(std::move(index).value(),
                                                   service_options);
    INCSR_CHECK(service.ok(), "service build failed");
    DriveLoad(config, updates, service->get(), &result);
    result.stats = (*service)->stats();
  }
  return result;
}

// Number of epoch publishes the run performed. stats.epoch aggregates as
// the MAX per-shard epoch in sharded runs (epochs are per-shard sequence
// numbers), so the publish count there is the SUM of per-shard epochs —
// that is what per-epoch ratios must divide by.
std::uint64_t PublishCount(const LoadConfig& config,
                           const LoadResult& result) {
  if (config.shards == 0) return result.stats.epoch;
  std::uint64_t publishes = 0;
  for (const auto& entry : result.sharded_stats.per_shard) {
    publishes += entry.stats.epoch;
  }
  return publishes;
}

void Report(const char* label, const LoadConfig& config,
            std::size_t total_updates, const LoadResult& result) {
  const double updates_per_sec =
      static_cast<double>(result.stats.applied) / result.ingest_seconds;
  const double queries_per_sec =
      static_cast<double>(result.total_queries) / result.ingest_seconds;
  const std::uint64_t lookups = result.stats.cache.hits +
                                result.stats.cache.misses;
  const std::uint64_t publishes = PublishCount(config, result);
  std::printf(
      "%-14s %9.0f upd/s  %8.0f qry/s  p50 %7.1f us  p99 %7.1f us  "
      "hit-rate %5.1f%%  (%llu queries, %llu epochs)\n",
      label, updates_per_sec, queries_per_sec, result.p50_us, result.p99_us,
      lookups == 0 ? 0.0
                   : 100.0 * static_cast<double>(result.stats.cache.hits) /
                         static_cast<double>(lookups),
      static_cast<unsigned long long>(result.total_queries),
      static_cast<unsigned long long>(publishes));
  // Zero-update runs publish no epoch: the ratio must stay finite (0),
  // not divide by zero.
  const double rows_per_epoch =
      publishes > 0 ? static_cast<double>(result.stats.rows_published) /
                          static_cast<double>(publishes)
                    : 0.0;
  std::printf(
      "%-14s publish cost: %llu rows, %.2f MB copy-on-written "
      "(%.1f rows/epoch; full-copy would be %zu rows/epoch)\n",
      "", static_cast<unsigned long long>(result.stats.rows_published),
      static_cast<double>(result.stats.bytes_published) / 1e6, rows_per_epoch,
      config.nodes);
  const std::uint64_t index_misses =
      result.stats.topk_index_served + result.stats.topk_index_fallbacks;
  std::printf(
      "%-14s top-k index: %llu misses served O(k), %llu row-scan fallbacks "
      "(%.1f%% of misses), %llu rows re-ranked\n",
      "", static_cast<unsigned long long>(result.stats.topk_index_served),
      static_cast<unsigned long long>(result.stats.topk_index_fallbacks),
      index_misses == 0
          ? 0.0
          : 100.0 * static_cast<double>(result.stats.topk_index_fallbacks) /
                static_cast<double>(index_misses),
      static_cast<unsigned long long>(result.stats.topk_index_rows_reranked));
  if (config.shards > 0) {
    std::printf("%-14s shards:", "");
    for (const auto& entry : result.sharded_stats.per_shard) {
      std::printf("  [%zu] %zu nodes, %llu applied, %llu epochs", entry.slot,
                  entry.nodes,
                  static_cast<unsigned long long>(entry.stats.applied),
                  static_cast<unsigned long long>(entry.stats.epoch));
    }
    std::printf("  (%llu merges)\n",
                static_cast<unsigned long long>(result.sharded_stats.merges));
  }
  INCSR_CHECK(result.stats.applied == total_updates,
              "lost updates: applied %llu of %zu",
              static_cast<unsigned long long>(result.stats.applied),
              total_updates);
}

void RecordRun(bench::JsonObject* root, const char* label,
               const LoadConfig& config, const LoadResult& result) {
  const std::uint64_t lookups =
      result.stats.cache.hits + result.stats.cache.misses;
  const std::uint64_t publishes = PublishCount(config, result);
  bench::JsonObject* run = root->AddObject("runs");
  run->Set("label", label)
      .Set("updates_per_sec", static_cast<double>(result.stats.applied) /
                                  result.ingest_seconds)
      .Set("queries_per_sec",
           static_cast<double>(result.total_queries) / result.ingest_seconds)
      .Set("p50_us", result.p50_us)
      .Set("p99_us", result.p99_us)
      .Set("cache_hit_rate",
           lookups == 0 ? 0.0
                        : static_cast<double>(result.stats.cache.hits) /
                              static_cast<double>(lookups))
      .Set("epochs", publishes)
      .Set("rows_published", result.stats.rows_published)
      .Set("bytes_published", result.stats.bytes_published)
      // Guarded: a zero-update run publishes no epoch and must emit a
      // finite ratio, not NaN/inf, or it poisons the trajectory files.
      .Set("rows_per_epoch",
           publishes > 0 ? static_cast<double>(result.stats.rows_published) /
                               static_cast<double>(publishes)
                         : 0.0)
      .Set("rows_per_epoch_full_copy_equivalent", config.nodes)
      .Set("topk_index_served", result.stats.topk_index_served)
      .Set("topk_index_fallbacks", result.stats.topk_index_fallbacks)
      .Set("topk_index_rows_reranked", result.stats.topk_index_rows_reranked);
  if (config.shards > 0) {
    // Per-shard trajectories as parallel scalar arrays (index = position
    // in the live-shard list).
    run->Set("active_shards", result.sharded_stats.active_shards)
        .Set("merges", result.sharded_stats.merges)
        .Set("merge_rebuild_rows", result.sharded_stats.merge_rebuild_rows);
    for (const auto& entry : result.sharded_stats.per_shard) {
      run->Append("shard_slot", entry.slot)
          .Append("shard_nodes", entry.nodes)
          .Append("shard_applied", entry.stats.applied)
          .Append("shard_epochs", entry.stats.epoch)
          .Append("shard_rows_published", entry.stats.rows_published)
          .Append("shard_cache_hits", entry.stats.cache.hits);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench();
  LoadConfig config;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> std::size_t {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      return static_cast<std::size_t>(std::atoll(argv[++i]));
    };
    if (std::strcmp(argv[i], "--nodes") == 0) {
      config.nodes = next();
    } else if (std::strcmp(argv[i], "--edges") == 0) {
      config.edges = next();
    } else if (std::strcmp(argv[i], "--updates") == 0) {
      config.updates = next();
    } else if (std::strcmp(argv[i], "--writers") == 0) {
      config.writers = next();
    } else if (std::strcmp(argv[i], "--readers") == 0) {
      config.readers = next();
    } else if (std::strcmp(argv[i], "--topk") == 0) {
      config.topk = next();
    } else if (std::strcmp(argv[i], "--max-batch") == 0) {
      config.max_batch = next();
    } else if (std::strcmp(argv[i], "--components") == 0) {
      config.components = next();
      INCSR_CHECK(config.components >= 1, "--components needs >= 1");
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      config.shards = next();
    } else if (std::strcmp(argv[i], "--index-capacity") == 0) {
      config.index_capacity = next();
    } else if (std::strcmp(argv[i], "--zipf") == 0) {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      const char* value = argv[++i];
      char* end = nullptr;
      config.zipf_theta = std::strtod(value, &end);
      INCSR_CHECK(end != value && *end == '\0' && config.zipf_theta >= 0.0,
                  "--zipf needs a theta >= 0, got '%s'", value);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      config.threads = static_cast<int>(next());
    } else if (std::strcmp(argv[i], "--json") == 0) {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      config.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--churn") == 0) {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      const char* mode = argv[++i];
      if (std::strcmp(mode, "delete-heavy") == 0) {
        config.delete_heavy = true;
      } else {
        INCSR_CHECK(std::strcmp(mode, "insert") == 0,
                    "unknown churn mode %s", mode);
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  bench::PrintHeader("serve_throughput — mixed read/write serving load");
  std::printf(
      "n = %zu, |E| = %zu, |dG| = %zu (%s), %zu components, %zu shard(s), "
      "%zu writers, %zu readers, k = %zu, max_batch = %zu, zipf = %.2f, "
      "kernel threads = %zu, index capacity = %zu\n",
      config.nodes, config.edges, config.updates,
      config.delete_heavy ? "70/30 delete/insert churn" : "insertions",
      config.components, config.shards == 0 ? std::size_t{1} : config.shards,
      config.writers, config.readers, config.topk, config.max_batch,
      config.zipf_theta, ThreadPool::EffectiveNumThreads(config.threads),
      config.index_capacity);

  graph::DynamicDiGraph graph;
  std::vector<graph::EdgeUpdate> updates;
  BuildWorkload(config, &graph, &updates);

  LoadResult cached = RunLoad(config, graph, updates,
                              /*cache_capacity=*/4096);
  Report("cache on:", config, updates.size(), cached);
  LoadResult uncached = RunLoad(config, graph, updates,
                                /*cache_capacity=*/0);
  Report("cache off:", config, updates.size(), uncached);

  if (!config.json_path.empty()) {
    bench::JsonObject root;
    root.Set("bench", "serve_throughput")
        .Set("nodes", config.nodes)
        .Set("edges", config.edges)
        .Set("updates", config.updates)
        .Set("writers", config.writers)
        .Set("readers", config.readers)
        .Set("topk", config.topk)
        .Set("max_batch", config.max_batch)
        .Set("components", config.components)
        .Set("shards", config.shards)
        .Set("zipf_theta", config.zipf_theta)
        .Set("churn", config.delete_heavy ? "delete-heavy" : "insert")
        .Set("threads", ThreadPool::EffectiveNumThreads(config.threads))
        .Set("topk_index_capacity", config.index_capacity);
    RecordRun(&root, "cache_on", config, cached);
    RecordRun(&root, "cache_off", config, uncached);
    INCSR_CHECK(bench::WriteJsonFile(config.json_path, root),
                "failed to write %s", config.json_path.c_str());
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  return 0;
}
