// serve_throughput — load generator for the concurrent serving layer.
// Builds a synthetic link-evolving workload (ER base graph + a sampled
// update stream), replays it through SimRankService from W writer threads
// while R reader threads issue top-k queries in a closed loop, and reports
// ingest throughput (updates/s), query latency percentiles (p50/p99), and
// the epoch-publish cost (rows/bytes copy-on-written per epoch) under the
// mixed read/write load. Runs twice — query cache enabled and disabled —
// so the affected-area invalidation win is visible directly.
//
// Sharding: --components C builds the base graph as C disjoint ER blocks
// (a multi-component graph, the shape that shards cleanly) with the
// update stream confined to blocks and interleaved round-robin across
// them; --shards K replays the workload through a ShardedSimRankService
// with K shards instead of a single service — K appliers absorb updates
// concurrently, which is the scale-out path of src/shard/. Per-shard
// stats land in the --json trajectory as arrays. --shards 0 (default)
// keeps the single-service path even for multi-component graphs.
//
// Query skew: --zipf THETA draws reader query nodes Zipf(θ)-skewed over
// the node ids (0 = uniform), modeling hot-node traffic — which is also
// where the affected-area cache invalidation matters most.
//
// Churn: --churn delete-heavy replays a 70/30 delete/insert mix (every
// edge appears once, so the stream is valid under any writer
// interleaving) instead of the default insert-only stream.
//
// Kernel parallelism: --threads T runs the applier's update kernels
// (seed scan, support expansion, scatter) T-way parallel on the shared
// scheduler (0 = INCSR_THREADS / hardware default). Results are bitwise
// independent of T; only the applied-updates/s changes.
//
// Top-k index: --index-capacity C sets the per-node top-k index size
// (0 disables it), so the index's O(k) miss path can be compared against
// the O(n) row-scan miss path under the same load; served/fallback
// counters land in the report and the JSON trajectory.
//
// Network modes (bench the serving tier over real sockets):
//   --connect HOST:PORT drives an external `incsr_cli serve --listen`
//   server over the wire instead of an in-process service: W writer
//   clients stream batched Submit RPCs (--net-batch updates per RPC, with
//   per-RPC latency percentiles) while R reader clients issue TopKFor
//   RPCs; reports over-the-wire qps + p50/p99 for both sides in the same
//   --json schema (ingest percentiles land in ingest_p50_us/p99_us).
//   Query/update node ids are drawn from the server's reported node count.
//
//   --replicas R runs the loopback read-scaling sweep in one process: a
//   primary server ingests the synthetic stream over the wire, R replica
//   servers subscribe to its applied stream and converge, then the same
//   number of closed-loop query clients (--net-clients per endpoint)
//   measures aggregate read qps against the primary alone vs spread
//   round-robin across primary + replicas. The ratio is the read-scaling
//   factor of the replica tier (replicas serve bitwise-identical epochs,
//   so spreading is safe).
//
// Tracing: --trace-out FILE replays the workload twice more — tracing off
// then tracing on (obs::Tracer writing FILE) — and reports the applier
// throughput delta as trace_overhead_pct in the JSON, with
// trace_overhead_ok asserting the <= 3% budget the serve-path
// instrumentation is designed to (docs/tracing.md). Latency percentiles
// everywhere come from streaming obs::Histogram (log-bucketed, mergeable,
// bounded memory) rather than sorting every sample.
//
// Usage: bench_serve_throughput [--nodes N] [--edges M] [--updates U]
//          [--writers W] [--readers R] [--topk K] [--max-batch B]
//          [--zipf THETA] [--churn insert|delete-heavy] [--threads T]
//          [--components C] [--shards K] [--index-capacity C] [--json PATH]
//          [--connect HOST:PORT] [--replicas R] [--net-batch B]
//          [--net-clients C] [--measure-seconds S] [--trace-out FILE]
//          [--trace-buffer-kb N]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct LoadConfig {
  std::size_t nodes = 200;
  std::size_t edges = 1200;
  std::size_t updates = 400;
  std::size_t writers = 2;
  std::size_t readers = 2;
  std::size_t topk = 10;
  std::size_t max_batch = 64;
  double zipf_theta = 0.0;   // 0 = uniform query nodes
  bool delete_heavy = false; // 70/30 delete/insert churn stream
  int threads = 0;           // update-kernel parallelism (0 = default)
  std::size_t index_capacity = 4096;  // per-node top-k index (0 = off)
  std::size_t components = 1; // disjoint ER blocks in the base graph
  std::size_t shards = 0;     // 0 = single service; K = sharded service
  std::string json_path;     // when set, emit a BENCH json trajectory file
  std::string connect;       // drive an external server over the wire
  std::size_t replicas = 0;  // loopback read-scaling sweep with R replicas
  std::size_t net_batch = 64;    // updates per Submit RPC
  std::size_t net_clients = 4;   // query clients per endpoint (sweep)
  double measure_seconds = 1.0;  // read-only measurement window (sweep)
  std::string trace_out;         // when set, run the tracing-overhead A/B
  std::size_t trace_buffer_kb = 1024;  // per-thread trace ring size
};

// The tracing-overhead budget the serve-path instrumentation must fit in
// (ISSUE: tracing on must stay within 3% of tracing off).
constexpr double kTraceOverheadLimitPct = 3.0;

std::uint64_t ElapsedNs(const WallTimer& timer) {
  return static_cast<std::uint64_t>(timer.ElapsedSeconds() * 1e9);
}

struct LoadResult {
  double ingest_seconds = 0.0;
  std::uint64_t total_queries = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  obs::HistogramSnapshot query_lat;     // per-query latency, nanoseconds
  service::ServiceStats stats;          // single-service or sharded total
  shard::ShardedStats sharded_stats;    // populated when config.shards > 0
};

// One churn stream per component block (deletions of existing edges,
// insertions of non-edges; disjoint sets, so valid in any interleaving),
// offset to global ids and interleaved round-robin across blocks.
void BuildWorkload(const LoadConfig& config, graph::DynamicDiGraph* graph,
                   std::vector<graph::EdgeUpdate>* updates) {
  const std::size_t blocks = std::max<std::size_t>(1, config.components);
  *graph = graph::DynamicDiGraph(config.nodes);
  std::vector<std::vector<graph::EdgeUpdate>> per_block;
  Rng rng(11);
  std::size_t base = 0;
  for (std::size_t c = 0; c < blocks; ++c) {
    const std::size_t bn =
        config.nodes / blocks + (c + 1 == blocks ? config.nodes % blocks : 0);
    const std::size_t bm =
        config.edges / blocks + (c + 1 == blocks ? config.edges % blocks : 0);
    const std::size_t bu =
        config.updates / blocks +
        (c + 1 == blocks ? config.updates % blocks : 0);
    auto stream = graph::ErdosRenyiGnm(bn, bm, 7 + c);
    INCSR_CHECK(stream.ok(), "generator failed");
    graph::DynamicDiGraph block = graph::MaterializeGraph(bn, stream.value());
    for (const graph::Edge& e : block.Edges()) {
      INCSR_CHECK(graph
                      ->AddEdge(static_cast<graph::NodeId>(base + e.src),
                                static_cast<graph::NodeId>(base + e.dst))
                      .ok(),
                  "block edge insert failed");
    }
    std::vector<graph::EdgeUpdate> block_updates;
    if (config.delete_heavy) {
      const std::size_t deletions = std::min(block.num_edges(), bu * 7 / 10);
      const std::size_t insertions = bu - deletions;
      auto del = graph::SampleDeletions(block, deletions, &rng);
      INCSR_CHECK(del.ok(), "deletion sampling failed: %s",
                  del.status().ToString().c_str());
      auto ins = graph::SampleInsertions(block, insertions, &rng);
      INCSR_CHECK(ins.ok(), "insertion sampling failed: %s",
                  ins.status().ToString().c_str());
      std::size_t a = 0;
      std::size_t b = 0;
      // Deterministic 7:3 interleave.
      while (a < del->size() || b < ins->size()) {
        for (int d = 0; d < 7 && a < del->size(); ++d) {
          block_updates.push_back((*del)[a++]);
        }
        for (int s = 0; s < 3 && b < ins->size(); ++s) {
          block_updates.push_back((*ins)[b++]);
        }
      }
    } else {
      auto ins = graph::SampleInsertions(block, bu, &rng);
      INCSR_CHECK(ins.ok(), "sampling failed: %s",
                  ins.status().ToString().c_str());
      block_updates = std::move(ins).value();
    }
    for (graph::EdgeUpdate& u : block_updates) {
      u.src = static_cast<graph::NodeId>(base + u.src);
      u.dst = static_cast<graph::NodeId>(base + u.dst);
    }
    per_block.push_back(std::move(block_updates));
    base += bn;
  }
  updates->clear();
  for (std::size_t k = 0;; ++k) {
    bool any = false;
    for (const auto& stream : per_block) {
      if (k < stream.size()) {
        updates->push_back(stream[k]);
        any = true;
      }
    }
    if (!any) break;
  }
}

// Drives the writer/reader load against any service exposing Submit /
// Flush / TopKFor (service::SimRankService or shard::ShardedSimRankService).
template <typename Service>
void DriveLoad(const LoadConfig& config,
               const std::vector<graph::EdgeUpdate>& updates, Service* svc,
               LoadResult* result) {
  std::atomic<bool> done{false};
  // One streaming histogram per reader (lock-free Record), merged exactly
  // at the end — bounded memory however long the closed loop runs, unlike
  // the sort-every-sample percentile pass this replaced.
  std::vector<obs::Histogram> latencies(config.readers);
  std::vector<std::thread> threads;
  bench::ZipfSampler zipf(config.nodes, config.zipf_theta);
  WallTimer timer;
  for (std::size_t w = 0; w < config.writers; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t i = w; i < updates.size(); i += config.writers) {
        Status s = svc->Submit(updates[i]);
        INCSR_CHECK(s.ok(), "submit failed: %s", s.ToString().c_str());
      }
    });
  }
  for (std::size_t r = 0; r < config.readers; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(999 + static_cast<std::uint64_t>(r));
      obs::Histogram& mine = latencies[r];
      while (!done.load(std::memory_order_acquire)) {
        const auto node = static_cast<graph::NodeId>(zipf.Next(&rng));
        WallTimer query_timer;
        auto top = svc->TopKFor(node, config.topk);
        INCSR_CHECK(top.ok(), "query failed");
        mine.Record(ElapsedNs(query_timer));
      }
    });
  }
  for (std::size_t w = 0; w < config.writers; ++w) threads[w].join();
  INCSR_CHECK(svc->Flush().ok(), "flush failed");
  result->ingest_seconds = timer.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  for (std::size_t t = config.writers; t < threads.size(); ++t) {
    threads[t].join();
  }
  obs::HistogramSnapshot merged;
  for (const obs::Histogram& per_reader : latencies) {
    merged += per_reader.snapshot();
  }
  result->query_lat = merged;
  result->total_queries = merged.count;
  result->p50_us = merged.Percentile(0.50) / 1e3;
  result->p99_us = merged.Percentile(0.99) / 1e3;
}

LoadResult RunLoad(const LoadConfig& config,
                   const graph::DynamicDiGraph& graph,
                   const std::vector<graph::EdgeUpdate>& updates,
                   std::size_t cache_capacity) {
  simrank::SimRankOptions options;  // paper defaults: C = 0.6, K = 15
  options.num_threads = config.threads;
  service::ServiceOptions service_options;
  service_options.max_batch = config.max_batch;
  service_options.cache_capacity = cache_capacity;
  service_options.topk_index_capacity = config.index_capacity;

  LoadResult result;
  if (config.shards > 0) {
    shard::ShardedServiceOptions sharded_options;
    sharded_options.num_shards = config.shards;
    sharded_options.per_shard = service_options;
    auto service =
        shard::ShardedSimRankService::Create(graph, options, sharded_options);
    INCSR_CHECK(service.ok(), "sharded service build failed");
    DriveLoad(config, updates, service->get(), &result);
    result.sharded_stats = (*service)->stats();
    result.stats = result.sharded_stats.total;
  } else {
    auto index = core::DynamicSimRank::Create(graph, options);
    INCSR_CHECK(index.ok(), "index build failed");
    auto service = service::SimRankService::Create(std::move(index).value(),
                                                   service_options);
    INCSR_CHECK(service.ok(), "service build failed");
    DriveLoad(config, updates, service->get(), &result);
    result.stats = (*service)->stats();
  }
  return result;
}

// Number of epoch publishes the run performed. stats.epoch aggregates as
// the MAX per-shard epoch in sharded runs (epochs are per-shard sequence
// numbers), so the publish count there is the SUM of per-shard epochs —
// that is what per-epoch ratios must divide by.
std::uint64_t PublishCount(const LoadConfig& config,
                           const LoadResult& result) {
  if (config.shards == 0) return result.stats.epoch;
  std::uint64_t publishes = 0;
  for (const auto& entry : result.sharded_stats.per_shard) {
    publishes += entry.stats.epoch;
  }
  return publishes;
}

void Report(const char* label, const LoadConfig& config,
            std::size_t total_updates, const LoadResult& result) {
  const double updates_per_sec =
      static_cast<double>(result.stats.applied) / result.ingest_seconds;
  const double queries_per_sec =
      static_cast<double>(result.total_queries) / result.ingest_seconds;
  const std::uint64_t lookups = result.stats.cache.hits +
                                result.stats.cache.misses;
  const std::uint64_t publishes = PublishCount(config, result);
  std::printf(
      "%-14s %9.0f upd/s  %8.0f qry/s  p50 %7.1f us  p99 %7.1f us  "
      "hit-rate %5.1f%%  (%llu queries, %llu epochs)\n",
      label, updates_per_sec, queries_per_sec, result.p50_us, result.p99_us,
      lookups == 0 ? 0.0
                   : 100.0 * static_cast<double>(result.stats.cache.hits) /
                         static_cast<double>(lookups),
      static_cast<unsigned long long>(result.total_queries),
      static_cast<unsigned long long>(publishes));
  // Zero-update runs publish no epoch: the ratio must stay finite (0),
  // not divide by zero.
  const double rows_per_epoch =
      publishes > 0 ? static_cast<double>(result.stats.rows_published) /
                          static_cast<double>(publishes)
                    : 0.0;
  std::printf(
      "%-14s publish cost: %llu rows, %.2f MB copy-on-written "
      "(%.1f rows/epoch; full-copy would be %zu rows/epoch)\n",
      "", static_cast<unsigned long long>(result.stats.rows_published),
      static_cast<double>(result.stats.bytes_published) / 1e6, rows_per_epoch,
      config.nodes);
  const std::uint64_t index_misses =
      result.stats.topk_index_served + result.stats.topk_index_fallbacks;
  std::printf(
      "%-14s top-k index: %llu misses served O(k), %llu row-scan fallbacks "
      "(%.1f%% of misses), %llu rows re-ranked\n",
      "", static_cast<unsigned long long>(result.stats.topk_index_served),
      static_cast<unsigned long long>(result.stats.topk_index_fallbacks),
      index_misses == 0
          ? 0.0
          : 100.0 * static_cast<double>(result.stats.topk_index_fallbacks) /
                static_cast<double>(index_misses),
      static_cast<unsigned long long>(result.stats.topk_index_rows_reranked));
  if (config.shards > 0) {
    std::printf("%-14s shards:", "");
    for (const auto& entry : result.sharded_stats.per_shard) {
      std::printf("  [%zu] %zu nodes, %llu applied, %llu epochs", entry.slot,
                  entry.nodes,
                  static_cast<unsigned long long>(entry.stats.applied),
                  static_cast<unsigned long long>(entry.stats.epoch));
    }
    std::printf("  (%llu merges)\n",
                static_cast<unsigned long long>(result.sharded_stats.merges));
  }
  INCSR_CHECK(result.stats.applied == total_updates,
              "lost updates: applied %llu of %zu",
              static_cast<unsigned long long>(result.stats.applied),
              total_updates);
}

void RecordRun(bench::JsonObject* root, const char* label,
               const LoadConfig& config, const LoadResult& result) {
  const std::uint64_t lookups =
      result.stats.cache.hits + result.stats.cache.misses;
  const std::uint64_t publishes = PublishCount(config, result);
  bench::JsonObject* run = root->AddObject("runs");
  run->Set("label", label)
      .Set("updates_per_sec", static_cast<double>(result.stats.applied) /
                                  result.ingest_seconds)
      .Set("queries_per_sec",
           static_cast<double>(result.total_queries) / result.ingest_seconds)
      .Set("p50_us", result.p50_us)
      .Set("p99_us", result.p99_us)
      .Set("cache_hit_rate",
           lookups == 0 ? 0.0
                        : static_cast<double>(result.stats.cache.hits) /
                              static_cast<double>(lookups))
      .Set("epochs", publishes)
      .Set("rows_published", result.stats.rows_published)
      .Set("bytes_published", result.stats.bytes_published)
      // Guarded: a zero-update run publishes no epoch and must emit a
      // finite ratio, not NaN/inf, or it poisons the trajectory files.
      .Set("rows_per_epoch",
           publishes > 0 ? static_cast<double>(result.stats.rows_published) /
                               static_cast<double>(publishes)
                         : 0.0)
      .Set("rows_per_epoch_full_copy_equivalent", config.nodes)
      .Set("topk_index_served", result.stats.topk_index_served)
      .Set("topk_index_fallbacks", result.stats.topk_index_fallbacks)
      .Set("topk_index_rows_reranked", result.stats.topk_index_rows_reranked);
  if (config.shards > 0) {
    // Per-shard trajectories as parallel scalar arrays (index = position
    // in the live-shard list).
    run->Set("active_shards", result.sharded_stats.active_shards)
        .Set("merges", result.sharded_stats.merges)
        .Set("merge_rebuild_rows", result.sharded_stats.merge_rebuild_rows);
    for (const auto& entry : result.sharded_stats.per_shard) {
      run->Append("shard_slot", entry.slot)
          .Append("shard_nodes", entry.nodes)
          .Append("shard_applied", entry.stats.applied)
          .Append("shard_epochs", entry.stats.epoch)
          .Append("shard_rows_published", entry.stats.rows_published)
          .Append("shard_cache_hits", entry.stats.cache.hits);
    }
  }
}

// ---- Network modes ---------------------------------------------------------

struct NetLoadResult {
  double ingest_seconds = 0.0;
  std::uint64_t ingest_rpcs = 0;
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;  // rejected by reject-mode backpressure
  double ingest_p50_us = 0.0;
  double ingest_p99_us = 0.0;
  std::uint64_t total_queries = 0;
  double query_seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

// Streams `updates` to endpoints[0] as batched Submit RPCs from `writers`
// client threads (per-RPC latency recorded) while `readers` client
// threads round-robin closed-loop TopKFor RPCs across every endpoint;
// flushes, then reports both sides' throughput and percentiles.
NetLoadResult DriveNetLoad(const std::vector<std::string>& endpoints,
                           const std::vector<graph::EdgeUpdate>& updates,
                           std::size_t writers, std::size_t readers,
                           std::size_t net_batch, std::size_t num_nodes,
                           std::size_t topk, double zipf_theta) {
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> dropped{0};
  std::vector<obs::Histogram> ingest_lat(writers);
  std::vector<obs::Histogram> query_lat(readers);
  std::vector<std::thread> threads;
  bench::ZipfSampler zipf(num_nodes, zipf_theta);

  // Pre-chunk the stream so writer w owns batches w, w+W, w+2W, ...
  std::vector<std::vector<graph::EdgeUpdate>> batches;
  for (std::size_t at = 0; at < updates.size(); at += net_batch) {
    const std::size_t end = std::min(updates.size(), at + net_batch);
    batches.emplace_back(updates.begin() + static_cast<std::ptrdiff_t>(at),
                         updates.begin() + static_cast<std::ptrdiff_t>(end));
  }

  WallTimer timer;
  for (std::size_t w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      auto client = net::IncSrClient::Connect(endpoints[0]);
      INCSR_CHECK(client.ok(), "writer connect failed: %s",
                  client.status().ToString().c_str());
      for (std::size_t i = w; i < batches.size(); i += writers) {
        WallTimer rpc_timer;
        auto response = client->Submit(batches[i]);
        INCSR_CHECK(response.ok(), "submit RPC failed: %s",
                    response.status().ToString().c_str());
        ingest_lat[w].Record(ElapsedNs(rpc_timer));
        accepted.fetch_add(response->accepted, std::memory_order_relaxed);
        dropped.fetch_add(response->rejected, std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      auto client =
          net::IncSrClient::Connect(endpoints[r % endpoints.size()]);
      INCSR_CHECK(client.ok(), "reader connect failed: %s",
                  client.status().ToString().c_str());
      Rng rng(999 + static_cast<std::uint64_t>(r));
      while (!done.load(std::memory_order_acquire)) {
        const auto node = static_cast<graph::NodeId>(zipf.Next(&rng));
        WallTimer query_timer;
        auto top = client->TopKFor(node, static_cast<std::uint32_t>(topk));
        INCSR_CHECK(top.ok(), "query RPC failed: %s",
                    top.status().ToString().c_str());
        query_lat[r].Record(ElapsedNs(query_timer));
      }
    });
  }
  for (std::size_t w = 0; w < writers; ++w) threads[w].join();
  {
    auto client = net::IncSrClient::Connect(endpoints[0]);
    INCSR_CHECK(client.ok(), "flush connect failed");
    INCSR_CHECK(client->Flush().ok(), "flush RPC failed");
  }
  NetLoadResult result;
  result.ingest_seconds = timer.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  for (std::size_t t = writers; t < threads.size(); ++t) threads[t].join();
  result.query_seconds = result.ingest_seconds;

  obs::HistogramSnapshot ingest_merged;
  for (const obs::Histogram& per : ingest_lat) {
    ingest_merged += per.snapshot();
  }
  result.ingest_rpcs = ingest_merged.count;
  result.ingest_p50_us = ingest_merged.Percentile(0.50) / 1e3;
  result.ingest_p99_us = ingest_merged.Percentile(0.99) / 1e3;
  result.accepted = accepted.load();
  result.dropped = dropped.load();
  obs::HistogramSnapshot query_merged;
  for (const obs::Histogram& per : query_lat) {
    query_merged += per.snapshot();
  }
  result.total_queries = query_merged.count;
  result.p50_us = query_merged.Percentile(0.50) / 1e3;
  result.p99_us = query_merged.Percentile(0.99) / 1e3;
  return result;
}

// Read-only closed loop: `total_clients` threads round-robin across the
// endpoints for `seconds`; aggregate qps + percentiles.
NetLoadResult MeasureNetQueries(const std::vector<std::string>& endpoints,
                                std::size_t total_clients, double seconds,
                                std::size_t num_nodes, std::size_t topk,
                                double zipf_theta) {
  std::vector<obs::Histogram> query_lat(total_clients);
  std::vector<std::thread> threads;
  bench::ZipfSampler zipf(num_nodes, zipf_theta);
  std::atomic<bool> done{false};
  WallTimer timer;
  for (std::size_t t = 0; t < total_clients; ++t) {
    threads.emplace_back([&, t] {
      auto client =
          net::IncSrClient::Connect(endpoints[t % endpoints.size()]);
      INCSR_CHECK(client.ok(), "query client connect failed: %s",
                  client.status().ToString().c_str());
      Rng rng(4242 + static_cast<std::uint64_t>(t));
      while (!done.load(std::memory_order_acquire)) {
        const auto node = static_cast<graph::NodeId>(zipf.Next(&rng));
        WallTimer query_timer;
        auto top = client->TopKFor(node, static_cast<std::uint32_t>(topk));
        INCSR_CHECK(top.ok(), "query RPC failed: %s",
                    top.status().ToString().c_str());
        query_lat[t].Record(ElapsedNs(query_timer));
      }
    });
  }
  while (timer.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  done.store(true, std::memory_order_release);
  NetLoadResult result;
  result.query_seconds = timer.ElapsedSeconds();
  for (std::thread& thread : threads) thread.join();
  obs::HistogramSnapshot merged;
  for (const obs::Histogram& per : query_lat) {
    merged += per.snapshot();
  }
  result.total_queries = merged.count;
  result.p50_us = merged.Percentile(0.50) / 1e3;
  result.p99_us = merged.Percentile(0.99) / 1e3;
  return result;
}

void ReportNet(const char* label, const NetLoadResult& result) {
  const double updates_per_sec =
      result.ingest_seconds > 0.0
          ? static_cast<double>(result.accepted) / result.ingest_seconds
          : 0.0;
  const double queries_per_sec =
      result.query_seconds > 0.0
          ? static_cast<double>(result.total_queries) / result.query_seconds
          : 0.0;
  std::printf(
      "%-14s %9.0f upd/s  %8.0f qry/s  p50 %7.1f us  p99 %7.1f us  "
      "(%llu queries over the wire)\n",
      label, updates_per_sec, queries_per_sec, result.p50_us, result.p99_us,
      static_cast<unsigned long long>(result.total_queries));
  if (result.ingest_rpcs > 0) {
    std::printf(
        "%-14s ingest RPCs: %llu (%llu updates accepted, %llu rejected by "
        "backpressure), p50 %.1f us, p99 %.1f us\n",
        "", static_cast<unsigned long long>(result.ingest_rpcs),
        static_cast<unsigned long long>(result.accepted),
        static_cast<unsigned long long>(result.dropped),
        result.ingest_p50_us, result.ingest_p99_us);
  }
}

void RecordNetRun(bench::JsonObject* root, const char* label,
                  const NetLoadResult& result) {
  bench::JsonObject* run = root->AddObject("runs");
  run->Set("label", label)
      .Set("updates_per_sec",
           result.ingest_seconds > 0.0
               ? static_cast<double>(result.accepted) / result.ingest_seconds
               : 0.0)
      .Set("queries_per_sec",
           result.query_seconds > 0.0
               ? static_cast<double>(result.total_queries) /
                     result.query_seconds
               : 0.0)
      .Set("p50_us", result.p50_us)
      .Set("p99_us", result.p99_us)
      .Set("ingest_rpcs", result.ingest_rpcs)
      .Set("ingest_p50_us", result.ingest_p50_us)
      .Set("ingest_p99_us", result.ingest_p99_us)
      .Set("updates_accepted", result.accepted)
      .Set("updates_rejected", result.dropped);
}

// --connect: the server already exists; draw node ids from its reported
// graph and synthesize an insert stream over them (duplicates are
// validated server-side, exactly like in-process Submit).
int RunConnectMode(const LoadConfig& config) {
  auto probe = net::IncSrClient::Connect(config.connect);
  if (!probe.ok()) {
    std::fprintf(stderr, "connect %s: %s\n", config.connect.c_str(),
                 probe.status().ToString().c_str());
    return 1;
  }
  auto stats = probe->Stats();
  INCSR_CHECK(stats.ok(), "stats RPC failed: %s",
              stats.status().ToString().c_str());
  const auto num_nodes = static_cast<std::size_t>(stats->num_nodes);
  INCSR_CHECK(num_nodes >= 2, "server graph too small to bench");
  std::printf(
      "over-the-wire against %s: %s, %llu nodes, %llu edges, epoch %llu\n",
      config.connect.c_str(), stats->is_replica ? "replica" : "primary",
      static_cast<unsigned long long>(stats->num_nodes),
      static_cast<unsigned long long>(stats->num_edges),
      static_cast<unsigned long long>(stats->stats.epoch));

  std::vector<graph::EdgeUpdate> updates;
  Rng rng(77);
  for (std::size_t i = 0; i < config.updates; ++i) {
    const auto src = static_cast<graph::NodeId>(rng.NextBounded(num_nodes));
    auto dst = static_cast<graph::NodeId>(rng.NextBounded(num_nodes));
    if (dst == src) dst = static_cast<graph::NodeId>((dst + 1) % num_nodes);
    updates.push_back({graph::UpdateKind::kInsert, src, dst});
  }

  NetLoadResult result =
      DriveNetLoad({config.connect}, updates, config.writers, config.readers,
                   config.net_batch, num_nodes, config.topk,
                   config.zipf_theta);
  ReportNet("net:", result);

  if (!config.json_path.empty()) {
    bench::JsonObject root;
    root.Set("bench", "serve_throughput")
        .Set("mode", "connect")
        .Set("endpoint", config.connect)
        .Set("nodes", num_nodes)
        .Set("updates", config.updates)
        .Set("writers", config.writers)
        .Set("readers", config.readers)
        .Set("topk", config.topk)
        .Set("net_batch", config.net_batch)
        .Set("zipf_theta", config.zipf_theta);
    RecordNetRun(&root, "net", result);
    INCSR_CHECK(bench::WriteJsonFile(config.json_path, root),
                "failed to write %s", config.json_path.c_str());
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  return 0;
}

// --replicas R: primary + R replicas in one process over loopback; the
// deliverable number is aggregate read qps across all endpoints vs the
// primary alone, with the same client count in both runs.
int RunReplicaSweep(const LoadConfig& config) {
  graph::DynamicDiGraph graph;
  std::vector<graph::EdgeUpdate> updates;
  BuildWorkload(config, &graph, &updates);

  simrank::SimRankOptions sr_options;
  sr_options.num_threads = config.threads;
  service::ServiceOptions service_options;
  service_options.max_batch = config.max_batch;
  service_options.topk_index_capacity = config.index_capacity;

  auto index = core::DynamicSimRank::Create(graph, sr_options);
  INCSR_CHECK(index.ok(), "index build failed");
  auto primary = service::SimRankService::Create(std::move(index).value(),
                                                 service_options);
  INCSR_CHECK(primary.ok(), "primary service build failed");
  auto primary_server = net::IncSrServer::Serve(primary->get());
  INCSR_CHECK(primary_server.ok(), "primary server failed: %s",
              primary_server.status().ToString().c_str());
  const std::string primary_endpoint =
      "127.0.0.1:" + std::to_string((*primary_server)->port());

  // Replicas subscribe from seq 0 BEFORE ingest so the sweep also
  // exercises live streaming, not just backlog catch-up.
  std::vector<std::unique_ptr<service::SimRankService>> replica_services;
  std::vector<std::unique_ptr<net::IncSrServer>> replica_servers;
  std::vector<std::unique_ptr<net::ReplicationClient>> replication;
  std::vector<std::string> endpoints{primary_endpoint};
  for (std::size_t r = 0; r < config.replicas; ++r) {
    auto replica_index = core::DynamicSimRank::Create(graph, sr_options);
    INCSR_CHECK(replica_index.ok(), "replica index build failed");
    auto replica = service::SimRankService::CreateReplica(
        std::move(replica_index).value(), service_options);
    INCSR_CHECK(replica.ok(), "replica service build failed");
    auto server = net::IncSrServer::Serve(replica->get());
    INCSR_CHECK(server.ok(), "replica server failed");
    net::ReplicationClientOptions repl_options;
    repl_options.primary_port = (*primary_server)->port();
    auto client =
        net::ReplicationClient::Start(replica->get(), repl_options);
    INCSR_CHECK(client.ok(), "replication client failed: %s",
                client.status().ToString().c_str());
    endpoints.push_back("127.0.0.1:" +
                        std::to_string((*server)->port()));
    replica_services.push_back(std::move(*replica));
    replica_servers.push_back(std::move(*server));
    replication.push_back(std::move(*client));
  }

  // Phase 1: over-the-wire mixed ingest + query load against the primary.
  NetLoadResult ingest = DriveNetLoad(
      {primary_endpoint}, updates, config.writers, config.readers,
      config.net_batch, config.nodes, config.topk, config.zipf_theta);
  ReportNet("net primary:", ingest);

  // Convergence barrier: every replica reaches the primary's epoch.
  const std::uint64_t target_epoch = (*primary)->stats().epoch;
  WallTimer catch_up;
  for (const auto& replica : replica_services) {
    while (replica->stats().epoch < target_epoch) {
      INCSR_CHECK(catch_up.ElapsedSeconds() < 30.0,
                  "replica catch-up timed out at epoch %llu of %llu",
                  static_cast<unsigned long long>(replica->stats().epoch),
                  static_cast<unsigned long long>(target_epoch));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  std::printf(
      "%zu replica(s) converged to epoch %llu in %.3f s after flush\n",
      config.replicas, static_cast<unsigned long long>(target_epoch),
      catch_up.ElapsedSeconds());

  // Phase 2: same client count, primary only vs spread across all.
  const std::size_t total_clients =
      config.net_clients * (config.replicas + 1);
  NetLoadResult single =
      MeasureNetQueries({primary_endpoint}, total_clients,
                        config.measure_seconds, config.nodes, config.topk,
                        config.zipf_theta);
  ReportNet("net 1 server:", single);
  NetLoadResult spread =
      MeasureNetQueries(endpoints, total_clients, config.measure_seconds,
                        config.nodes, config.topk, config.zipf_theta);
  ReportNet("net spread:", spread);
  const double single_qps =
      static_cast<double>(single.total_queries) / single.query_seconds;
  const double spread_qps =
      static_cast<double>(spread.total_queries) / spread.query_seconds;
  const double speedup = single_qps > 0.0 ? spread_qps / single_qps : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "read scaling: %.0f qry/s on 1 server -> %.0f qry/s on %zu servers "
      "(%.2fx aggregate, %u core(s))\n",
      single_qps, spread_qps, endpoints.size(), speedup, cores);
  if (cores < endpoints.size()) {
    std::printf(
        "note: %u core(s) < %zu server loops — all endpoints share the same "
        "CPU, so the aggregate cannot scale; rerun on >= %zu cores for the "
        "read-scaling number\n",
        cores, endpoints.size(), endpoints.size());
  }

  if (!config.json_path.empty()) {
    bench::JsonObject root;
    root.Set("bench", "serve_throughput")
        .Set("mode", "replica-sweep")
        .Set("nodes", config.nodes)
        .Set("edges", config.edges)
        .Set("updates", config.updates)
        .Set("writers", config.writers)
        .Set("readers", config.readers)
        .Set("topk", config.topk)
        .Set("net_batch", config.net_batch)
        .Set("replicas", config.replicas)
        .Set("net_clients_per_endpoint", config.net_clients)
        .Set("measure_seconds", config.measure_seconds)
        .Set("zipf_theta", config.zipf_theta)
        .Set("read_scaling", speedup)
        .Set("cores", static_cast<std::uint64_t>(cores));
    RecordNetRun(&root, "net_primary_mixed", ingest);
    RecordNetRun(&root, "net_single_server", single);
    RecordNetRun(&root, "net_spread", spread);
    INCSR_CHECK(bench::WriteJsonFile(config.json_path, root),
                "failed to write %s", config.json_path.c_str());
    std::printf("wrote %s\n", config.json_path.c_str());
  }

  // Orderly teardown: replication streams first, then servers, services.
  for (auto& client : replication) client->Stop();
  for (auto& server : replica_servers) server->Stop();
  (*primary_server)->Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench();
  LoadConfig config;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> std::size_t {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      return static_cast<std::size_t>(std::atoll(argv[++i]));
    };
    if (std::strcmp(argv[i], "--nodes") == 0) {
      config.nodes = next();
    } else if (std::strcmp(argv[i], "--edges") == 0) {
      config.edges = next();
    } else if (std::strcmp(argv[i], "--updates") == 0) {
      config.updates = next();
    } else if (std::strcmp(argv[i], "--writers") == 0) {
      config.writers = next();
    } else if (std::strcmp(argv[i], "--readers") == 0) {
      config.readers = next();
    } else if (std::strcmp(argv[i], "--topk") == 0) {
      config.topk = next();
    } else if (std::strcmp(argv[i], "--max-batch") == 0) {
      config.max_batch = next();
    } else if (std::strcmp(argv[i], "--components") == 0) {
      config.components = next();
      INCSR_CHECK(config.components >= 1, "--components needs >= 1");
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      config.shards = next();
    } else if (std::strcmp(argv[i], "--index-capacity") == 0) {
      config.index_capacity = next();
    } else if (std::strcmp(argv[i], "--zipf") == 0) {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      const char* value = argv[++i];
      char* end = nullptr;
      config.zipf_theta = std::strtod(value, &end);
      INCSR_CHECK(end != value && *end == '\0' && config.zipf_theta >= 0.0,
                  "--zipf needs a theta >= 0, got '%s'", value);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      config.threads = static_cast<int>(next());
    } else if (std::strcmp(argv[i], "--json") == 0) {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      config.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--connect") == 0) {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      config.connect = argv[++i];
      INCSR_CHECK(net::ParseHostPort(config.connect).ok(),
                  "--connect needs HOST:PORT, got '%s'",
                  config.connect.c_str());
    } else if (std::strcmp(argv[i], "--replicas") == 0) {
      config.replicas = next();
    } else if (std::strcmp(argv[i], "--net-batch") == 0) {
      config.net_batch = next();
      INCSR_CHECK(config.net_batch >= 1, "--net-batch needs >= 1");
    } else if (std::strcmp(argv[i], "--net-clients") == 0) {
      config.net_clients = next();
      INCSR_CHECK(config.net_clients >= 1, "--net-clients needs >= 1");
    } else if (std::strcmp(argv[i], "--measure-seconds") == 0) {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      const char* value = argv[++i];
      char* end = nullptr;
      config.measure_seconds = std::strtod(value, &end);
      INCSR_CHECK(end != value && *end == '\0' && config.measure_seconds > 0.0,
                  "--measure-seconds needs a duration > 0, got '%s'", value);
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      config.trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-buffer-kb") == 0) {
      config.trace_buffer_kb = next();
      INCSR_CHECK(config.trace_buffer_kb >= 1, "--trace-buffer-kb needs >= 1");
    } else if (std::strcmp(argv[i], "--churn") == 0) {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      const char* mode = argv[++i];
      if (std::strcmp(mode, "delete-heavy") == 0) {
        config.delete_heavy = true;
      } else {
        INCSR_CHECK(std::strcmp(mode, "insert") == 0,
                    "unknown churn mode %s", mode);
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  INCSR_CHECK(config.connect.empty() || config.replicas == 0,
              "--connect and --replicas are mutually exclusive");
  if (!config.connect.empty()) {
    bench::PrintHeader("serve_throughput — over-the-wire client load");
    return RunConnectMode(config);
  }
  if (config.replicas > 0) {
    bench::PrintHeader("serve_throughput — replica read-scaling sweep");
    return RunReplicaSweep(config);
  }

  bench::PrintHeader("serve_throughput — mixed read/write serving load");
  std::printf(
      "n = %zu, |E| = %zu, |dG| = %zu (%s), %zu components, %zu shard(s), "
      "%zu writers, %zu readers, k = %zu, max_batch = %zu, zipf = %.2f, "
      "kernel threads = %zu, index capacity = %zu\n",
      config.nodes, config.edges, config.updates,
      config.delete_heavy ? "70/30 delete/insert churn" : "insertions",
      config.components, config.shards == 0 ? std::size_t{1} : config.shards,
      config.writers, config.readers, config.topk, config.max_batch,
      config.zipf_theta, Scheduler::EffectiveNumThreads(config.threads),
      config.index_capacity);

  graph::DynamicDiGraph graph;
  std::vector<graph::EdgeUpdate> updates;
  BuildWorkload(config, &graph, &updates);

  LoadResult cached = RunLoad(config, graph, updates,
                              /*cache_capacity=*/4096);
  Report("cache on:", config, updates.size(), cached);
  LoadResult uncached = RunLoad(config, graph, updates,
                                /*cache_capacity=*/0);
  Report("cache off:", config, updates.size(), uncached);

  // Tracing-overhead A/B: interleaved PAIRS of untraced/traced ingest
  // replays, overhead = median of the per-pair throughput ratios.
  // Pairing + median is what makes the number usable on a noisy (or
  // single-core) box: machine-load drift hits both halves of a pair
  // equally, and the median discards the pairs a descheduling ruined.
  // The arms run WITHOUT readers: every trace event rides the applier,
  // readers emit none — they only add closed-loop scheduler noise orders
  // of magnitude larger than the ~20 ns ring write being measured. Each
  // traced half is its own Tracer session on config.trace_out, so the
  // file ends up with the LAST pair's trace — a real multi-epoch artifact
  // for `incsr_cli trace summarize`.
  double trace_overhead_pct = 0.0;
  bool trace_overhead_ok = true;
  LoadResult trace_off;
  LoadResult trace_on;
  if (!config.trace_out.empty()) {
    constexpr int kPairs = 7;
    LoadConfig ab = config;
    ab.readers = 0;
    std::vector<double> ratios;
    double off_best = 0.0;
    double on_best = 0.0;
    std::uint64_t trace_events = 0;
    std::uint64_t trace_dropped = 0;
    for (int pair = 0; pair < kPairs; ++pair) {
      LoadResult off = RunLoad(ab, graph, updates, /*cache_capacity=*/4096);
      const double off_ups =
          static_cast<double>(off.stats.applied) / off.ingest_seconds;
      obs::Tracer& tracer = obs::Tracer::Instance();
      Status started =
          tracer.Start(config.trace_out, config.trace_buffer_kb);
      INCSR_CHECK(started.ok(), "trace start failed: %s",
                  started.ToString().c_str());
      LoadResult on = RunLoad(ab, graph, updates, /*cache_capacity=*/4096);
      trace_events = tracer.TotalEventsRecorded();
      trace_dropped = tracer.TotalEventsDropped();
      tracer.Stop();
      const double on_ups =
          static_cast<double>(on.stats.applied) / on.ingest_seconds;
      // Ratio of applier WORK time (sum of per-batch apply walls from the
      // always-on apply histogram), not end-to-end wall: both runs apply
      // the identical update stream, and work time excludes the queue
      // idle + writer-scheduling gaps that dominate wall-clock jitter.
      const double off_work = static_cast<double>(off.stats.apply_ns.sum);
      const double on_work = static_cast<double>(on.stats.apply_ns.sum);
      if (off_work > 0.0) ratios.push_back(on_work / off_work);
      if (off_ups > off_best) {
        off_best = off_ups;
        trace_off = off;
      }
      if (on_ups > on_best) {
        on_best = on_ups;
        trace_on = on;
      }
    }
    Report("trace off:", config, updates.size(), trace_off);
    Report("trace on:", config, updates.size(), trace_on);
    INCSR_CHECK(!ratios.empty(), "no tracing A/B pairs completed");
    std::sort(ratios.begin(), ratios.end());
    trace_overhead_pct = 100.0 * (ratios[ratios.size() / 2] - 1.0);
    trace_overhead_ok = trace_overhead_pct <= kTraceOverheadLimitPct;
    std::printf(
        "tracing overhead: %.2f%% on applier throughput (median of %d "
        "interleaved pairs; best %.0f vs %.0f upd/s; budget %.1f%%: %s); "
        "%llu events/run (%llu dropped) -> %s\n",
        trace_overhead_pct, kPairs, off_best, on_best, kTraceOverheadLimitPct,
        trace_overhead_ok ? "ok" : "EXCEEDED",
        static_cast<unsigned long long>(trace_events),
        static_cast<unsigned long long>(trace_dropped),
        config.trace_out.c_str());
  }

  if (!config.json_path.empty()) {
    bench::JsonObject root;
    root.Set("bench", "serve_throughput")
        .Set("nodes", config.nodes)
        .Set("edges", config.edges)
        .Set("updates", config.updates)
        .Set("writers", config.writers)
        .Set("readers", config.readers)
        .Set("topk", config.topk)
        .Set("max_batch", config.max_batch)
        .Set("components", config.components)
        .Set("shards", config.shards)
        .Set("zipf_theta", config.zipf_theta)
        .Set("churn", config.delete_heavy ? "delete-heavy" : "insert")
        .Set("threads", Scheduler::EffectiveNumThreads(config.threads))
        .Set("topk_index_capacity", config.index_capacity);
    RecordRun(&root, "cache_on", config, cached);
    RecordRun(&root, "cache_off", config, uncached);
    if (!config.trace_out.empty()) {
      root.Set("trace_file", config.trace_out)
          .Set("trace_overhead_pct", trace_overhead_pct)
          .Set("trace_overhead_limit_pct", kTraceOverheadLimitPct)
          .Set("trace_overhead_ok", trace_overhead_ok);
      RecordRun(&root, "trace_off", config, trace_off);
      RecordRun(&root, "trace_on", config, trace_on);
    }
    INCSR_CHECK(bench::WriteJsonFile(config.json_path, root),
                "failed to write %s", config.json_path.c_str());
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  return 0;
}
