// Reproduces Fig. 4: NDCG@30 exactness of Inc-SR / Inc-uSR (K = 5, 15)
// and Inc-SVD (r = 5, 15) against the Batch K = 35 baseline, per dataset.
// The paper's findings: Inc-SR and Inc-uSR are identical at every K
// (pruning is lossless) and reach NDCG ≈ 1; Inc-SVD stays well below 1
// because its factor update loses eigen-information.
//
// Usage: fig4_ndcg [scale_multiplier]
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct DatasetConfig {
  datasets::DatasetKind kind;
  double scale;
};

double NdcgOf(const la::DenseMatrix& candidate, const la::DenseMatrix& exact) {
  auto ndcg = eval::NdcgAtK(candidate, exact, 30);
  INCSR_CHECK(ndcg.ok(), "ndcg: %s", ndcg.status().ToString().c_str());
  return ndcg.value();
}

void RunDataset(const DatasetConfig& config, double scale_mult) {
  datasets::DatasetOptions data_options;
  data_options.scale = config.scale * scale_mult;
  auto series = datasets::MakeDataset(config.kind, data_options);
  INCSR_CHECK(series.ok(), "dataset");

  graph::DynamicDiGraph g_old = series->GraphAt(0);
  auto delta = series->DeltaBetween(0, 1);

  // Exact baseline: Batch at K = 35 on the new graph (the paper's choice;
  // enough iterations to cover all path-pairs on these diameters).
  simrank::SimRankOptions exact_options;
  exact_options.damping = 0.6;
  exact_options.iterations = 35;
  graph::DynamicDiGraph g_new = g_old;
  INCSR_CHECK(graph::ApplyUpdates(delta, &g_new).ok(), "delta");
  la::DenseMatrix exact = simrank::BatchMatrix(g_new, exact_options);

  std::printf("%-6s (n = %zu, |dE| = %zu)\n",
              datasets::DatasetName(config.kind).c_str(), series->num_nodes(),
              delta.size());

  // Inc-SR / Inc-uSR at K = 5 and 15, starting from a converged old S.
  la::DenseMatrix s_old =
      simrank::BatchMatrix(g_old, bench::ConvergedOptions(0.6));
  for (int k : {5, 15}) {
    simrank::SimRankOptions options;
    options.damping = 0.6;
    options.iterations = k;
    auto inc_sr = core::DynamicSimRank::FromState(
        g_old, s_old, options, core::UpdateAlgorithm::kIncSR);
    INCSR_CHECK(inc_sr.ok(), "inc_sr");
    INCSR_CHECK(inc_sr->ApplyBatch(delta).ok(), "inc_sr batch");

    auto inc_usr = core::DynamicSimRank::FromState(
        g_old, s_old, options, core::UpdateAlgorithm::kIncUSR);
    INCSR_CHECK(inc_usr.ok(), "inc_usr");
    INCSR_CHECK(inc_usr->ApplyBatch(delta).ok(), "inc_usr batch");

    std::printf("  Inc-SR  (K = %2d): NDCG30 = %.3f\n", k,
                NdcgOf(inc_sr->scores().ToDense(), exact));
    std::printf("  Inc-uSR (K = %2d): NDCG30 = %.3f\n", k,
                NdcgOf(inc_usr->scores().ToDense(), exact));
  }

  // Inc-SVD at r = 5 and 15.
  for (std::size_t r : {std::size_t{5}, std::size_t{15}}) {
    incsvd::IncSvdOptions svd_options;
    svd_options.simrank = exact_options;
    svd_options.target_rank = r;
    auto baseline = incsvd::IncSvd::Create(g_old, svd_options);
    INCSR_CHECK(baseline.ok(), "incsvd");
    INCSR_CHECK(baseline->ApplyBatch(delta).ok(), "incsvd apply");
    auto scores = baseline->ComputeScores();
    INCSR_CHECK(scores.ok(), "incsvd scores");
    std::printf("  Inc-SVD (r = %2zu): NDCG30 = %.3f\n", r,
                NdcgOf(scores.value(), exact));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double scale_mult = argc > 1 ? std::atof(argv[1]) : 1.0;
  bench::PrintHeader("Fig. 4 — NDCG30 exactness vs Batch (K = 35)");
  RunDataset({datasets::DatasetKind::kDblp, 0.05}, scale_mult);
  RunDataset({datasets::DatasetKind::kCitH, 0.04}, scale_mult);
  RunDataset({datasets::DatasetKind::kYouTu, 0.015}, scale_mult);
  std::puts(
      "\nShape check vs the paper's Fig. 4: Inc-SR == Inc-uSR at every K "
      "(lossless\npruning), both ~1.0 by K = 15, while Inc-SVD stays "
      "distinctly below 1.");
  return 0;
}
