// Ablation for the paper's Section V-A design choice: exploiting the
// rank-one structure of C·u·wᵀ to advance the Sylvester series for M with
// two auxiliary VECTORS (matrix-vector + vector-vector work only) versus
// the conventional MATRIX iteration
//     M₀ = C·u·wᵀ,  M_{k+1} = M₀ + C·Q̃·M_k·Q̃ᵀ,
// which pays two sparse×dense matrix products per iteration. Same K, same
// result; the vector trick should win by roughly the graph's average
// degree d (each dense product costs O(m·n) = O(d·n²) vs the trick's
// O(m + n²) per iteration).
#include <benchmark/benchmark.h>

#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct Fixture {
  graph::DynamicDiGraph g;
  simrank::SimRankOptions options;
  la::DenseMatrix s;
  la::DynamicRowMatrix q;
  graph::EdgeUpdate update;
};

Fixture MakeFixture(std::size_t n) {
  auto stream = graph::EvolvingLinkage(
      {.num_nodes = n, .num_edges = 8 * n, .seed = 17});
  INCSR_CHECK(stream.ok(), "generator");
  Fixture f{graph::MaterializeGraph(n, stream.value()), {}, {}, {}, {}};
  f.options.damping = 0.6;
  f.options.iterations = 15;
  f.s = simrank::BatchMatrix(f.g, f.options);
  f.q = graph::BuildTransition(f.g);
  Rng rng(23);
  auto ins = graph::SampleInsertions(f.g, 1, &rng);
  INCSR_CHECK(ins.ok(), "sample");
  f.update = ins.value()[0];
  return f;
}

// The paper's trick (Algorithm 1): vectors ξ, η only.
void BM_RankOneVectorTrick(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto m = core::IncUsrAuxiliaryM(f.q, f.s, f.update, f.options);
    INCSR_CHECK(m.ok(), "aux");
    benchmark::DoNotOptimize(m->RowPtr(0));
  }
}
BENCHMARK(BM_RankOneVectorTrick)
    ->Arg(400)
    ->Arg(800)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);

// The conventional alternative: iterate M with matrix-matrix products.
void BM_NaiveMatrixIteration(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<std::size_t>(state.range(0)));
  // Assemble Q̃ and the rank-one forcing term C·u·wᵀ once (untimed).
  auto seed = core::ComputeUpdateSeed(f.q, f.s, f.update, f.options);
  INCSR_CHECK(seed.ok(), "seed");
  graph::DynamicDiGraph g_new = f.g;
  INCSR_CHECK(g_new.AddEdge(f.update.src, f.update.dst).ok(), "edge");
  la::CsrMatrix q_new = graph::BuildTransitionCsr(g_new);
  const std::size_t n = f.g.num_nodes();
  la::Vector e_j = la::Vector::Basis(n, static_cast<std::size_t>(f.update.dst));
  la::DenseMatrix m0(n, n);
  m0.AddOuterProduct(f.options.damping, e_j, seed->theta);

  for (auto _ : state) {
    la::DenseMatrix m = m0;
    for (int k = 0; k < f.options.iterations; ++k) {
      la::DenseMatrix qm = q_new.MultiplyDense(m);             // Q̃·M
      la::DenseMatrix qmq = q_new.MultiplyDense(qm.Transpose());  // Q̃·(Q̃M)ᵀ
      la::DenseMatrix next = qmq.Transpose();                  // Q̃·M·Q̃ᵀ
      next.Scale(f.options.damping);
      next.AddScaled(1.0, m0);
      m = std::move(next);
    }
    benchmark::DoNotOptimize(m.RowPtr(0));
  }
}
BENCHMARK(BM_NaiveMatrixIteration)
    ->Arg(400)
    ->Arg(800)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
