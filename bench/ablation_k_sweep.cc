// Ablation over the iteration count K (footnote 18 / the paper's accuracy
// setting K = 15 with C^(K+1) ≈ 5e-4): for a single unit update, sweep K
// and report (i) the max-norm error of the incrementally updated S against
// the converged fixed point on the new graph, (ii) the a-priori bound
// C^(K+1), and (iii) the update wall time. The error must sit below the
// bound and decay geometrically; time grows linearly in K.
//
// Usage: ablation_k_sweep [n]                         (default 800)
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "incsr/incsr.h"

int main(int argc, char** argv) {
  using namespace incsr;
  bench::InitBench();
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 800;

  auto stream = graph::EvolvingLinkage(
      {.num_nodes = n, .num_edges = 8 * n, .seed = 29});
  INCSR_CHECK(stream.ok(), "generator");
  graph::DynamicDiGraph g = graph::MaterializeGraph(n, stream.value());

  bench::PrintHeader("Ablation — iteration count K (n = " +
                     std::to_string(n) + ", C = 0.6)");

  // Converged old S (what the theorems assume) and converged new truth.
  simrank::SimRankOptions converged = bench::ConvergedOptions(0.6);
  la::DenseMatrix s_old = simrank::BatchMatrix(g, converged);
  Rng rng(31);
  auto ins = graph::SampleInsertions(g, 1, &rng);
  INCSR_CHECK(ins.ok(), "sample");
  const graph::EdgeUpdate update = ins.value()[0];
  graph::DynamicDiGraph g_new = g;
  INCSR_CHECK(g_new.AddEdge(update.src, update.dst).ok(), "edge");
  la::DenseMatrix s_true = simrank::BatchMatrix(g_new, converged);

  std::puts(" K    max-error     bound C^(K+1)   time(ms)   bound holds");
  for (int k : {1, 2, 4, 6, 8, 10, 12, 15, 20, 25}) {
    simrank::SimRankOptions options;
    options.damping = 0.6;
    options.iterations = k;

    graph::DynamicDiGraph g_work = g;
    la::DynamicRowMatrix q_work = graph::BuildTransition(g_work);
    la::DenseMatrix s_work = s_old;
    core::IncSrEngine engine(options);
    WallTimer timer;
    INCSR_CHECK(engine.ApplyUpdate(update, &g_work, &q_work, &s_work).ok(),
                "update");
    double millis = timer.ElapsedMillis();
    double err = la::MaxAbsDiff(s_work, s_true);
    double bound = simrank::ConvergenceBound(options);
    std::printf("%2d   %.3e     %.3e      %7.2f    %s\n", k, err, bound,
                millis, err <= bound ? "yes" : "NO");
  }
  std::puts(
      "\nThe error decays geometrically with K and respects the C^(K+1) "
      "bound;\nK = 15 (the paper's default) reaches ~5e-4, matching "
      "footnote 18.");
  return 0;
}
