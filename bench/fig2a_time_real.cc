// Reproduces Fig. 2a: elapsed time of Inc-SR / Inc-uSR / Inc-SVD / Batch
// on the three real-data stand-ins as edges are inserted snapshot by
// snapshot (x-axis |E| + |ΔE|).
//
// Protocol (per dataset, per snapshot transition):
//   - the old similarities S on snapshot k−1 are precomputed (both the
//     paper's incremental algorithms and ours start from a solved state);
//   - Inc-SR and Inc-uSR apply the snapshot delta as unit updates; a
//     capped prefix is timed and extrapolated to the full |ΔE| (the
//     per-update cost is stationary; both numbers are printed);
//   - Inc-SVD performs its batch factor refresh (one C_aux SVD) plus a
//     score recomputation in the baseline's literal Θ(r⁴·n²) tensor
//     order, r = 5 as in the paper; on YOUTU it runs the published dense
//     SVD under the paper's 8 GB envelope scaled by the dataset scale² —
//     reproducing the "memory crash" the paper reports there;
//   - Batch recomputes from scratch on snapshot k (K = 15; K = 5 on
//     YOUTU, the paper's settings, C = 0.6).
//
// Usage: fig2a_time_real [scale_multiplier] [update_cap]
//        fig2a_time_real --edges FILE [--temporal] [--snapshots N]
//                        [--iterations K] [--cap CAP]
//
// The --edges form replays a real SNAP edge list instead of the synthetic
// stand-ins: the file is cut into N snapshots (--temporal takes the line
// order as arrival order; otherwise a deterministic shuffle) and runs
// through the identical per-transition protocol.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct DatasetConfig {
  datasets::DatasetKind kind;
  double scale;
  int iterations;  // the paper's K for this dataset
  bool svd_as_published;  // dense SVD + scaled memory envelope (YOUTU)
  std::size_t cap;  // timed unit updates per transition (extrapolated)
};

void RunSeries(const graph::SnapshotSeries& series, const std::string& title,
               int iterations, bool svd_as_published, double scale,
               std::size_t cap) {
  simrank::SimRankOptions options;
  options.damping = 0.6;
  options.iterations = iterations;

  bench::PrintHeader("Fig. 2a — " + title + " (n = " +
                     std::to_string(series.num_nodes()) + ", K = " +
                     std::to_string(iterations) + ")");
  std::puts(
      "|E|+|dE|    Inc-SR(s)   Inc-uSR(s)  Inc-SVD(s)  Batch(s)   "
      "[timed updates/total]");

  for (std::size_t snap = 1; snap < series.num_snapshots(); ++snap) {
    graph::DynamicDiGraph g_prev = series.GraphAt(snap - 1);
    auto delta = series.DeltaBetween(snap - 1, snap);
    if (delta.empty()) continue;

    // Shared precomputed state on the old snapshot (untimed).
    la::DenseMatrix s_init = simrank::BatchMatrix(g_prev, options);

    // Inc-SR (pruned).
    auto inc_sr = core::DynamicSimRank::FromState(
        g_prev, s_init, options, core::UpdateAlgorithm::kIncSR);
    INCSR_CHECK(inc_sr.ok(), "inc_sr");
    bench::TimedUpdates t_sr = bench::TimeUpdates(
        delta, cap,
        [&](const graph::EdgeUpdate& u) { return inc_sr->ApplyUpdate(u); });

    // Inc-uSR (unpruned).
    auto inc_usr = core::DynamicSimRank::FromState(
        g_prev, s_init, options, core::UpdateAlgorithm::kIncUSR);
    INCSR_CHECK(inc_usr.ok(), "inc_usr");
    bench::TimedUpdates t_usr = bench::TimeUpdates(
        delta, cap,
        [&](const graph::EdgeUpdate& u) { return inc_usr->ApplyUpdate(u); });

    // Inc-SVD baseline, r = 5 (precomputed factorization, per the paper).
    double svd_seconds = -1.0;  // -1 = memory crash
    {
      incsvd::IncSvdOptions svd_options;
      svd_options.simrank = options;
      svd_options.target_rank = 5;
      svd_options.faithful_tensor_order = true;
      if (svd_as_published) {
        svd_options.factorization = incsvd::Factorization::kDenseJacobi;
        svd_options.memory_budget_bytes =
            static_cast<std::int64_t>(8e9 * scale * scale);
      }
      auto baseline = incsvd::IncSvd::Create(g_prev, svd_options);
      if (baseline.ok()) {
        WallTimer timer;
        Status applied = baseline->ApplyBatch(delta);
        INCSR_CHECK(applied.ok(), "incsvd apply: %s",
                    applied.ToString().c_str());
        auto scores = baseline->ComputeScores();
        if (scores.ok()) {
          svd_seconds = timer.ElapsedSeconds();
        } else {
          INCSR_CHECK(scores.status().code() == StatusCode::kResourceExhausted,
                      "incsvd: %s", scores.status().ToString().c_str());
        }
      } else {
        INCSR_CHECK(
            baseline.status().code() == StatusCode::kResourceExhausted,
            "incsvd create: %s", baseline.status().ToString().c_str());
      }
    }

    // Batch recomputation on the new snapshot.
    WallTimer batch_timer;
    la::DenseMatrix s_batch =
        simrank::BatchMatrix(series.GraphAt(snap), options);
    double batch_seconds = batch_timer.ElapsedSeconds();
    (void)s_batch;

    char svd_cell[32];
    if (svd_seconds < 0) {
      std::snprintf(svd_cell, sizeof(svd_cell), "%10s", "mem-crash");
    } else {
      std::snprintf(svd_cell, sizeof(svd_cell), "%10.3f", svd_seconds);
    }
    std::printf("%8zu   %9.3f   %9.3f  %s  %8.3f   [%zu/%zu]\n",
                series.EdgesAt(snap), t_sr.ExtrapolatedSeconds(),
                t_usr.ExtrapolatedSeconds(), svd_cell, batch_seconds,
                t_sr.applied, t_sr.total);
  }
}

void RunDataset(const DatasetConfig& config, double scale_mult,
                std::size_t cap_override) {
  const std::size_t cap = cap_override > 0 ? cap_override : config.cap;
  const double scale = config.scale * scale_mult;
  datasets::DatasetOptions data_options;
  data_options.scale = scale;
  auto series = datasets::MakeDataset(config.kind, data_options);
  INCSR_CHECK(series.ok(), "dataset: %s",
              series.status().ToString().c_str());
  RunSeries(*series,
            datasets::DatasetName(config.kind) + " (scale " +
                std::to_string(scale) + ")",
            config.iterations, config.svd_as_published, scale, cap);
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench();

  // --edges form: replay a real SNAP file through the same protocol.
  std::string edges_path;
  bool temporal = false;
  std::size_t num_snapshots = 6;
  int iterations = 15;
  std::size_t cap = 100;
  double scale_mult = 1.0;
  std::size_t cap_override = 0;
  int positional = 0;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* {
      INCSR_CHECK(a + 1 < argc, "%s needs a value", arg.c_str());
      return argv[++a];
    };
    if (arg == "--edges") {
      edges_path = next();
    } else if (arg == "--temporal") {
      temporal = true;
    } else if (arg == "--snapshots") {
      num_snapshots = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--iterations") {
      iterations = std::atoi(next());
    } else if (arg == "--cap") {
      cap = static_cast<std::size_t>(std::atoll(next()));
    } else if (positional == 0) {
      scale_mult = std::atof(arg.c_str());
      ++positional;
    } else {
      cap_override = static_cast<std::size_t>(std::atoll(arg.c_str()));
      ++positional;
    }
  }

  if (!edges_path.empty()) {
    auto series =
        bench::LoadEdgeListSeries(edges_path, temporal, num_snapshots);
    INCSR_CHECK(series.ok(), "--edges %s: %s", edges_path.c_str(),
                series.status().ToString().c_str());
    RunSeries(*series, edges_path + (temporal ? " [temporal]" : " [shuffled]"),
              iterations, /*svd_as_published=*/false, /*scale=*/1.0, cap);
    return 0;
  }

  RunDataset({datasets::DatasetKind::kDblp, 0.08, 15, false, 200}, scale_mult,
             cap_override);
  RunDataset({datasets::DatasetKind::kCitH, 0.05, 15, false, 100}, scale_mult,
             cap_override);
  RunDataset({datasets::DatasetKind::kYouTu, 0.03, 5, true, 25}, scale_mult,
             cap_override);

  std::puts(
      "\nReading the shape against the paper's Fig. 2a: Inc-SR fastest, "
      "Inc-uSR slower\n(no pruning), Inc-SVD pays the r^4*n^2 tensor "
      "products (and crashes on YOUTU),\nBatch is flat w.r.t. |dE| (full "
      "recomputation). Absolute values differ from the\npaper (scaled "
      "stand-ins, different hardware); see EXPERIMENTS.md.");
  return 0;
}
