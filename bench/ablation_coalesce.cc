// Ablation for the coalesced-batch extension (core/coalesced_update.h):
// when a batch's updates cluster on few target nodes — e.g. a new paper
// citing R references contributes R insertions with ONE target — the
// generalized rank-one update absorbs each target's group in a single
// Sylvester solve. This bench compares unit-by-unit Inc-SR against the
// coalesced engine on batches with controlled target multiplicity, and
// verifies both produce identical scores.
//
// Usage: ablation_coalesce [n]                        (default 1200)
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "core/coalesced_update.h"
#include "incsr/incsr.h"

int main(int argc, char** argv) {
  using namespace incsr;
  bench::InitBench();
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1200;

  auto stream = graph::PreferentialCitation(
      {.num_nodes = n, .mean_out_degree = 7.0, .seed = 47});
  INCSR_CHECK(stream.ok(), "generator");
  graph::DynamicDiGraph base = graph::MaterializeGraph(n, stream.value());

  simrank::SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 15;
  la::DenseMatrix s_base = simrank::BatchMatrix(base, options);

  bench::PrintHeader("Ablation — coalesced batch updates (n = " +
                     std::to_string(n) + ")");
  std::puts(
      "targets  batch-size  unit-by-unit(s)  coalesced(s)  speedup  "
      "max|dS diff|");

  Rng rng(53);
  for (std::size_t targets : {1ul, 4ul, 16ul, 64ul}) {
    // Build a 64-update batch spread over `targets` distinct target nodes
    // (all insertions from distinct fresh sources).
    const std::size_t batch_size = 64;
    std::vector<graph::EdgeUpdate> batch;
    std::size_t guard = 0;
    while (batch.size() < batch_size && guard < 100000) {
      ++guard;
      auto dst = static_cast<graph::NodeId>(rng.NextBounded(targets));
      auto src = static_cast<graph::NodeId>(rng.NextBounded(n));
      if (src == dst || base.HasEdge(src, dst)) continue;
      bool duplicate = false;
      for (const auto& u : batch) {
        if (u.src == src && u.dst == dst) duplicate = true;
      }
      if (!duplicate) {
        batch.push_back({graph::UpdateKind::kInsert, src, dst});
      }
    }

    // Unit-by-unit.
    graph::DynamicDiGraph g1 = base;
    la::DynamicRowMatrix q1 = graph::BuildTransition(g1);
    la::DenseMatrix s1 = s_base;
    core::IncSrEngine unit(options);
    WallTimer t1;
    for (const auto& u : batch) {
      INCSR_CHECK(unit.ApplyUpdate(u, &g1, &q1, &s1).ok(), "unit");
    }
    double unit_seconds = t1.ElapsedSeconds();

    // Coalesced.
    graph::DynamicDiGraph g2 = base;
    la::DynamicRowMatrix q2 = graph::BuildTransition(g2);
    la::DenseMatrix s2 = s_base;
    core::CoalescedBatchEngine coalesced(options);
    WallTimer t2;
    INCSR_CHECK(coalesced.ApplyBatch(batch, &g2, &q2, &s2).ok(), "coalesced");
    double coalesced_seconds = t2.ElapsedSeconds();

    std::printf("%7zu  %10zu  %15.4f  %12.4f  %6.1fx   %.2e\n", targets,
                batch.size(), unit_seconds, coalesced_seconds,
                unit_seconds / (coalesced_seconds > 0 ? coalesced_seconds
                                                      : 1e-12),
                la::MaxAbsDiff(s1, s2));
  }
  std::puts(
      "\nCoalescing wins by ~batch/targets when updates cluster (hot "
      "targets) and is\nnever worse; the results are identical to the "
      "unit-update decomposition.");
  return 0;
}
