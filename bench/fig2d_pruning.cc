// Reproduces Fig. 2d: the effect of the Theorem 4 pruning — Inc-SR vs
// Inc-uSR wall time on each dataset, annotated with the percentage of
// node-pairs the pruning skipped (the paper reports 76.3% on DBLP, 82.1%
// on CITH, 79.4% on YOUTU, and a ~0.5 order-of-magnitude speedup).
//
// Pruned % is measured as the paper defines it: the fraction of node
// pairs whose similarity the snapshot delta leaves untouched (their ΔS
// entries are a-priori zero, so Inc-SR never visits them).
//
// Usage: fig2d_pruning [scale_multiplier] [update_cap]
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct DatasetConfig {
  datasets::DatasetKind kind;
  double scale;
  int iterations;
};

void RunDataset(const DatasetConfig& config, double scale_mult,
                std::size_t cap) {
  datasets::DatasetOptions data_options;
  data_options.scale = config.scale * scale_mult;
  auto series = datasets::MakeDataset(config.kind, data_options);
  INCSR_CHECK(series.ok(), "dataset");

  simrank::SimRankOptions options;
  options.damping = 0.6;
  options.iterations = config.iterations;

  graph::DynamicDiGraph g_prev = series->GraphAt(0);
  auto delta = series->DeltaBetween(0, 1);
  la::DenseMatrix s_init = simrank::BatchMatrix(g_prev, options);

  // Inc-SR, with before/after change accounting.
  auto inc_sr = core::DynamicSimRank::FromState(
      g_prev, s_init, options, core::UpdateAlgorithm::kIncSR);
  INCSR_CHECK(inc_sr.ok(), "inc_sr");
  bench::TimedUpdates t_sr = bench::TimeUpdates(
      delta, cap,
      [&](const graph::EdgeUpdate& u) { return inc_sr->ApplyUpdate(u); });
  const double changed = bench::ChangedFraction(s_init, inc_sr->scores());

  auto inc_usr = core::DynamicSimRank::FromState(
      g_prev, s_init, options, core::UpdateAlgorithm::kIncUSR);
  INCSR_CHECK(inc_usr.ok(), "inc_usr");
  bench::TimedUpdates t_usr = bench::TimeUpdates(
      delta, cap,
      [&](const graph::EdgeUpdate& u) { return inc_usr->ApplyUpdate(u); });

  std::printf(
      "%-6s  n=%6zu  |dE|=%5zu(timed %4zu)  Inc-uSR %8.3f s   Inc-SR %8.3f "
      "s   speedup %4.1fx   pruned pairs %5.1f%%\n",
      datasets::DatasetName(config.kind).c_str(), series->num_nodes(),
      delta.size(), t_sr.applied, t_usr.ExtrapolatedSeconds(),
      t_sr.ExtrapolatedSeconds(),
      t_usr.seconds / (t_sr.seconds > 0 ? t_sr.seconds : 1e-12),
      100.0 * (1.0 - changed));
}

}  // namespace

int main(int argc, char** argv) {
  const double scale_mult = argc > 1 ? std::atof(argv[1]) : 1.0;
  const std::size_t cap =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 200;
  bench::PrintHeader("Fig. 2d — effect of pruning (Inc-SR vs Inc-uSR)");
  RunDataset({datasets::DatasetKind::kDblp, 0.08, 15}, scale_mult, cap);
  RunDataset({datasets::DatasetKind::kCitH, 0.05, 15}, scale_mult, cap);
  RunDataset({datasets::DatasetKind::kYouTu, 0.03, 5}, scale_mult, cap);
  std::puts(
      "\nShape check vs the paper's Fig. 2d: a large majority of node-pairs "
      "is pruned on\nevery dataset and Inc-SR beats Inc-uSR by a multiple.");
  return 0;
}
