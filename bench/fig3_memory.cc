// Reproduces Fig. 3: intermediate memory of Inc-SR, Inc-uSR, and
// Inc-SVD(r = 5 / 15 / 25) per dataset. As in the paper, "memory" means
// the INTERMEDIATE working set — the n² similarity output itself is
// excluded. All incsr containers allocate through a tracked allocator, so
// the numbers are measured peaks, not estimates:
//   - Inc-SR: the pruned engine's sparse workspace (+ seed scratch);
//   - Inc-uSR: the dense M / ΔS intermediates (Θ(n²));
//   - Inc-SVD: factor matrices (n·r) plus the materialized Kronecker
//     system and its inverse (Θ(r⁴)) in the faithful tensor-order scoring.
//
// Usage: fig3_memory [scale_multiplier]
//        fig3_memory --edges FILE [--temporal] [--snapshots N]
//                    [--iterations K]
//
// The --edges form measures the same intermediates on a real SNAP edge
// list (--temporal takes the line order as arrival order; otherwise a
// deterministic shuffle) instead of the synthetic stand-ins.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct DatasetConfig {
  datasets::DatasetKind kind;
  double scale;
  int iterations;
};

void RunSeries(const graph::SnapshotSeries& series, const std::string& name,
               int iterations) {
  simrank::SimRankOptions options;
  options.damping = 0.6;
  options.iterations = iterations;

  graph::DynamicDiGraph g_prev = series.GraphAt(0);
  auto delta = series.DeltaBetween(0, 1);
  if (delta.size() > 50) delta.resize(50);  // a steady-state sample
  la::DenseMatrix s_init = simrank::BatchMatrix(g_prev, options);

  std::printf("%-6s (n = %zu)\n", name.c_str(), series.num_nodes());

  // Inc-SR: everything the engine allocates while absorbing updates.
  {
    graph::DynamicDiGraph g = g_prev;
    la::DynamicRowMatrix q = graph::BuildTransition(g);
    la::DenseMatrix s = s_init;
    core::IncSrEngine engine(options);
    MemoryScope scope;
    for (const auto& update : delta) {
      INCSR_CHECK(engine.ApplyUpdate(update, &g, &q, &s).ok(), "inc_sr");
    }
    std::printf("  Inc-SR                : %10s\n",
                HumanBytes(scope.PeakDeltaBytes()).c_str());
  }

  // Inc-uSR: the dense M and ΔS intermediates dominate.
  {
    graph::DynamicDiGraph g = g_prev;
    la::DynamicRowMatrix q = graph::BuildTransition(g);
    la::DenseMatrix s = s_init;
    MemoryScope scope;
    for (const auto& update : delta) {
      INCSR_CHECK(core::IncUsrApplyUpdate(update, options, &g, &q, &s).ok(),
                  "inc_usr");
    }
    std::printf("  Inc-uSR               : %10s\n",
                HumanBytes(scope.PeakDeltaBytes()).c_str());
  }

  // Inc-SVD at increasing target rank; the r⁴ Kronecker system and the
  // factor matrices are the intermediates (scores output excluded by
  // subtracting its n² allocation). The default Kronecker solver
  // materializes the same r⁴ system as the faithful tensor-order path
  // without its Θ(r⁴·n²) runtime, so the MEMORY measurement is identical
  // and the bench stays fast.
  for (std::size_t rank : {std::size_t{5}, std::size_t{15}, std::size_t{25}}) {
    incsvd::IncSvdOptions svd_options;
    svd_options.simrank = options;
    svd_options.target_rank = rank;
    MemoryScope scope;
    auto baseline = incsvd::IncSvd::Create(g_prev, svd_options);
    INCSR_CHECK(baseline.ok(), "incsvd");
    INCSR_CHECK(baseline->ApplyBatch(delta).ok(), "incsvd apply");
    auto scores = baseline->ComputeScores();
    INCSR_CHECK(scores.ok(), "incsvd scores");
    const std::int64_t output_bytes =
        static_cast<std::int64_t>(scores->rows()) * scores->cols() * 8;
    std::printf("  Inc-SVD (r = %2zu)      : %10s\n", rank,
                HumanBytes(scope.PeakDeltaBytes() - output_bytes).c_str());
  }
}

void RunDataset(const DatasetConfig& config, double scale_mult) {
  datasets::DatasetOptions data_options;
  data_options.scale = config.scale * scale_mult;
  auto series = datasets::MakeDataset(config.kind, data_options);
  INCSR_CHECK(series.ok(), "dataset");
  RunSeries(*series, datasets::DatasetName(config.kind), config.iterations);
}

}  // namespace

int main(int argc, char** argv) {
  std::string edges_path;
  bool temporal = false;
  std::size_t num_snapshots = 6;
  int iterations = 15;
  double scale_mult = 1.0;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* {
      INCSR_CHECK(a + 1 < argc, "%s needs a value", arg.c_str());
      return argv[++a];
    };
    if (arg == "--edges") {
      edges_path = next();
    } else if (arg == "--temporal") {
      temporal = true;
    } else if (arg == "--snapshots") {
      num_snapshots = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--iterations") {
      iterations = std::atoi(next());
    } else {
      scale_mult = std::atof(arg.c_str());
    }
  }

  bench::PrintHeader("Fig. 3 — intermediate memory (output S excluded)");
  if (!edges_path.empty()) {
    auto series =
        bench::LoadEdgeListSeries(edges_path, temporal, num_snapshots);
    INCSR_CHECK(series.ok(), "--edges %s: %s", edges_path.c_str(),
                series.status().ToString().c_str());
    RunSeries(*series, edges_path + (temporal ? " [temporal]" : " [shuffled]"),
              iterations);
    return 0;
  }
  RunDataset({datasets::DatasetKind::kDblp, 0.08, 15}, scale_mult);
  RunDataset({datasets::DatasetKind::kCitH, 0.05, 15}, scale_mult);
  RunDataset({datasets::DatasetKind::kYouTu, 0.04, 5}, scale_mult);
  std::puts(
      "\nShape check vs the paper's Fig. 3: Inc-SR uses the least memory "
      "(sparse\nworkspace), Inc-uSR pays dense Θ(n²) intermediates, and "
      "Inc-SVD grows steeply\nwith r.");
  return 0;
}
