// Reproduces Fig. 1 of the paper: a 15-node citation graph (nodes a..o),
// one edge insertion (i → j) with d_j = 2, and the per-pair similarity
// table comparing
//   - sim        : SimRank on the old graph G,
//   - sim_true   : exact SimRank on G ∪ {(i,j)} (batch recomputation;
//                  our Inc-SR result is asserted identical),
//   - sim_IncSVD : Li et al.'s incremental update with a LOSSLESS SVD —
//                  still wrong on affected pairs (Section IV's point).
// Unchanged pairs (the paper's gray rows) are marked '='. The paper's
// exact 15-node topology is vector art we cannot parse; this graph
// reproduces every structural feature the text pins down (see DESIGN.md).
// Also verifies Examples 2-3 (the 2×2 U·Uᵀ ≠ I flaw) numerically.
#include <cstdio>

#include "bench_common.h"
#include "incsr/incsr.h"

namespace {

using namespace incsr;

constexpr double kDamping = 0.8;  // the figure's setting

char Name(graph::NodeId v) { return static_cast<char>('a' + v); }
graph::NodeId Id(char name) { return static_cast<graph::NodeId>(name - 'a'); }

graph::DynamicDiGraph Fig1Graph() {
  graph::DynamicDiGraph g(15);
  const std::pair<char, char> edges[] = {
      {'c', 'a'}, {'d', 'a'}, {'e', 'a'},  // a cited by c, d, e
      {'d', 'b'}, {'e', 'b'}, {'n', 'b'},  // b cited by d, e, n
      {'h', 'f'}, {'k', 'f'},              // f cited by h, k
      {'h', 'i'}, {'k', 'i'},              // i cited by h, k
      {'h', 'j'}, {'k', 'j'},              // j cited by h, k  (d_j = 2)
      {'o', 'g'}, {'e', 'g'},              // g cited by o, e
      {'o', 'k'}, {'n', 'k'},              // k cited by o, n
      {'n', 'h'}, {'o', 'h'},              // h cited by n, o
      {'n', 'l'}, {'e', 'l'},              // l cited by n, e
      {'n', 'm'}, {'o', 'm'},              // m cited by n, o
      {'j', 'd'},                          // j cites d (update propagates)
  };
  for (auto [s, d] : edges) {
    INCSR_CHECK(g.AddEdge(Id(s), Id(d)).ok(), "edge %c->%c", s, d);
  }
  return g;
}

void VerifyExamples2And3() {
  std::puts("--- Examples 2-3: the Inc-SVD eigen-information loss ---");
  la::DenseMatrix q = la::DenseMatrix::FromRows({{0, 1}, {0, 0}});
  auto svd = la::ComputeSvd(q);
  INCSR_CHECK(svd.ok(), "svd");
  la::DenseMatrix uut = la::MultiplyTransposeB(svd->u, svd->u);
  std::printf("Q = [[0,1],[0,0]]: lossless SVD rank %zu, U*U^T =\n%s",
              svd->rank(), uut.ToString(1).c_str());
  std::puts("  (U*U^T != I_2, so Eq. (6) of [1] fails — Example 2.)");

  graph::DynamicDiGraph g(2);
  INCSR_CHECK(g.AddEdge(1, 0).ok(), "edge");
  incsvd::IncSvdOptions options;
  options.simrank = bench::ConvergedOptions(kDamping);
  auto index = incsvd::IncSvd::Create(std::move(g), options);
  INCSR_CHECK(index.ok(), "create");
  INCSR_CHECK(index->ApplyBatch({{graph::UpdateKind::kInsert, 0, 1}}).ok(),
              "update");
  std::printf(
      "after inserting the new edge, ||Qnew - U*S*V^T||_max = %.3f "
      "(Example 3 predicts 1.0)\n\n",
      index->FactorReconstructionError());
}

}  // namespace

int main() {
  using namespace incsr;
  bench::PrintHeader("Fig. 1 — incremental SimRank example table (C = 0.8)");
  VerifyExamples2And3();

  graph::DynamicDiGraph g = Fig1Graph();
  simrank::SimRankOptions options = bench::ConvergedOptions(kDamping);

  // Old scores on G.
  la::DenseMatrix s_old = simrank::BatchMatrix(g, options);

  // Inc-SR absorbs the insertion (i → j).
  auto index = core::DynamicSimRank::FromState(g, s_old, options);
  INCSR_CHECK(index.ok(), "index");
  INCSR_CHECK(index->InsertEdge(Id('i'), Id('j')).ok(), "insert");

  // Ground truth on the new graph.
  graph::DynamicDiGraph g_new = Fig1Graph();
  INCSR_CHECK(g_new.AddEdge(Id('i'), Id('j')).ok(), "insert new");
  la::DenseMatrix s_true = simrank::BatchMatrix(g_new, options);
  double inc_err = la::MaxAbsDiff(index->scores(), s_true);
  INCSR_CHECK(inc_err < 1e-9, "Inc-SR must equal batch (err %.2e)", inc_err);

  // Li et al. with a LOSSLESS SVD of the old Q.
  incsvd::IncSvdOptions svd_options;
  svd_options.simrank = options;
  svd_options.factorization = incsvd::Factorization::kDenseJacobi;
  auto baseline = incsvd::IncSvd::Create(Fig1Graph(), svd_options);
  INCSR_CHECK(baseline.ok(), "baseline");
  INCSR_CHECK(
      baseline->ApplyBatch({{graph::UpdateKind::kInsert, Id('i'), Id('j')}})
          .ok(),
      "baseline update");
  auto s_svd = baseline->ComputeScores();
  INCSR_CHECK(s_svd.ok(), "baseline scores");

  const std::pair<char, char> report[] = {{'a', 'b'}, {'a', 'd'}, {'i', 'f'},
                                          {'k', 'g'}, {'k', 'h'}, {'j', 'f'},
                                          {'m', 'l'}, {'j', 'b'}};
  std::puts("--- per-pair similarity table (= marks unchanged pairs) ---");
  std::puts("pair      sim(G)   sim_true  sim_IncSR  sim_IncSVD(lossless)");
  for (auto [x, y] : report) {
    std::size_t a = static_cast<std::size_t>(Id(x));
    std::size_t b = static_cast<std::size_t>(Id(y));
    const bool unchanged = s_old(a, b) == s_true(a, b);
    std::printf("(%c, %c) %c  %.3f    %.3f     %.3f      %.3f\n", Name(Id(x)),
                Name(Id(y)), unchanged ? '=' : ' ', s_old(a, b), s_true(a, b),
                index->scores()(a, b), s_svd.value()(a, b));
  }
  std::printf(
      "\nInc-SR max deviation from batch: %.2e (exact)\n"
      "Inc-SVD max deviation from batch: %.3f (approximate even though the "
      "SVD was lossless,\n  because rank(Q) = %zu < n = 15 — Section IV)\n",
      inc_err, la::MaxAbsDiff(s_svd.value(), s_true),
      baseline->factors().rank());
  return 0;
}
