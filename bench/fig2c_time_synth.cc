// Reproduces Fig. 2c: elapsed time on SYNTHETIC graphs under an edge
// INSERTION sweep and an edge DELETION sweep. The paper fixes
// |V| = 79,483 and sweeps |E| 485K → 560K in 15K steps (and back down for
// deletions); this harness applies both sweeps at a configurable scale
// with the linkage-model generator.
//
// Usage: fig2c_time_synth [scale] [update_cap]        (default 0.025, 150)
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "incsr/incsr.h"

namespace {

using namespace incsr;

constexpr std::size_t kPaperNodes = 79483;
constexpr std::size_t kPaperEdgesLow = 485000;
constexpr std::size_t kPaperEdgesHigh = 560000;
constexpr int kSteps = 5;

struct Row {
  std::size_t edges;
  double inc_sr;
  double inc_usr;
  double inc_svd;
  double batch;
};

void PrintRows(const char* title, const std::vector<Row>& rows) {
  std::printf("\n%s\n", title);
  std::puts("|E|         Inc-SR(s)   Inc-uSR(s)  Inc-SVD(s)  Batch(s)");
  for (const Row& row : rows) {
    std::printf("%8zu   %9.3f   %9.3f   %9.3f  %8.3f\n", row.edges,
                row.inc_sr, row.inc_usr, row.inc_svd, row.batch);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.025;
  const std::size_t cap =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 60;

  const auto n = static_cast<std::size_t>(kPaperNodes * scale);
  const auto e_low = static_cast<std::size_t>(kPaperEdgesLow * scale);
  const auto e_high = static_cast<std::size_t>(kPaperEdgesHigh * scale);

  // Clustered linkage model: at reduced scale an unclustered graph's
  // radius-K out-ball covers most nodes, densifying S and turning the
  // pruning into overhead — a pure scale artifact (see EXPERIMENTS.md).
  // Communities of ~65 nodes (≥ ~30 of them, so similarity cannot
  // percolate through the arrival bridges) keep the similarity structure
  // of the paper's full-scale synthetic graphs.
  auto stream = graph::EvolvingLinkage(
      {.num_nodes = n,
       .num_edges = e_high,
       .num_communities = std::max<std::size_t>(1, n / 65),
       .intra_community_prob = 1.0,
       .seed = 2014});
  INCSR_CHECK(stream.ok(), "generator: %s",
              stream.status().ToString().c_str());

  simrank::SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 15;

  bench::PrintHeader("Fig. 2c — synthetic sweeps (|V| = " + std::to_string(n) +
                     ", |E| " + std::to_string(e_low) + " .. " +
                     std::to_string(e_high) + ")");

  // Edge counts at each sweep point.
  std::vector<std::size_t> points;
  for (int k = 0; k <= kSteps; ++k) {
    points.push_back(e_low + (e_high - e_low) * k / kSteps);
  }

  auto run_transition = [&](std::size_t from_edges,
                            const std::vector<graph::EdgeUpdate>& delta,
                            std::size_t to_edges) -> Row {
    graph::DynamicDiGraph g_prev =
        graph::MaterializeGraph(n, stream.value(), from_edges);
    la::DenseMatrix s_init = simrank::BatchMatrix(g_prev, options);

    auto inc_sr = core::DynamicSimRank::FromState(
        g_prev, s_init, options, core::UpdateAlgorithm::kIncSR);
    INCSR_CHECK(inc_sr.ok(), "inc_sr");
    bench::TimedUpdates t_sr = bench::TimeUpdates(
        delta, cap,
        [&](const graph::EdgeUpdate& u) { return inc_sr->ApplyUpdate(u); });

    auto inc_usr = core::DynamicSimRank::FromState(
        g_prev, s_init, options, core::UpdateAlgorithm::kIncUSR);
    INCSR_CHECK(inc_usr.ok(), "inc_usr");
    bench::TimedUpdates t_usr = bench::TimeUpdates(
        delta, cap,
        [&](const graph::EdgeUpdate& u) { return inc_usr->ApplyUpdate(u); });

    double svd_seconds = 0.0;
    {
      incsvd::IncSvdOptions svd_options;
      svd_options.simrank = options;
      svd_options.target_rank = 5;
      svd_options.faithful_tensor_order = true;
      auto baseline = incsvd::IncSvd::Create(g_prev, svd_options);
      INCSR_CHECK(baseline.ok(), "incsvd: %s",
                  baseline.status().ToString().c_str());
      WallTimer timer;
      INCSR_CHECK(baseline->ApplyBatch(delta).ok(), "incsvd apply");
      auto scores = baseline->ComputeScores();
      INCSR_CHECK(scores.ok(), "incsvd scores");
      svd_seconds = timer.ElapsedSeconds();
    }

    WallTimer batch_timer;
    la::DenseMatrix s_batch = simrank::BatchMatrix(
        graph::MaterializeGraph(n, stream.value(), to_edges), options);
    (void)s_batch;

    return {to_edges, t_sr.ExtrapolatedSeconds(),
            t_usr.ExtrapolatedSeconds(), svd_seconds,
            batch_timer.ElapsedSeconds()};
  };

  // Insertion sweep: e_low → e_high.
  std::vector<Row> insert_rows;
  for (std::size_t k = 1; k < points.size(); ++k) {
    std::vector<graph::EdgeUpdate> delta;
    for (std::size_t idx = points[k - 1]; idx < points[k]; ++idx) {
      delta.push_back({graph::UpdateKind::kInsert,
                       stream.value()[idx].edge.src,
                       stream.value()[idx].edge.dst});
    }
    insert_rows.push_back(run_transition(points[k - 1], delta, points[k]));
  }
  PrintRows("--- edge insertions ---", insert_rows);

  // Deletion sweep: e_high → e_low (delete the most recent edges first,
  // i.e. reverse evolution — the paper's decrement workload).
  std::vector<Row> delete_rows;
  for (std::size_t k = points.size() - 1; k > 0; --k) {
    std::vector<graph::EdgeUpdate> delta;
    for (std::size_t idx = points[k]; idx-- > points[k - 1];) {
      delta.push_back({graph::UpdateKind::kDelete,
                       stream.value()[idx].edge.src,
                       stream.value()[idx].edge.dst});
    }
    Row row = run_transition(points[k], delta, points[k - 1]);
    delete_rows.push_back(row);
  }
  PrintRows("--- edge deletions ---", delete_rows);

  std::puts(
      "\nReading vs the paper's Fig. 2c: Batch is flat in |dE| and the "
      "incremental\nalgorithms scale with it, as in the paper. Caveat: at "
      "laptop scale the\nlinkage-model graph is small enough that a "
      "radius-K ball reaches most nodes,\nso S densifies and pruning has "
      "little to remove — Inc-SR's advantage over\nInc-uSR (clear on the "
      "clustered real-data stand-ins of Fig. 2a/2d) shrinks or\ninverts "
      "here. See the dense-reach note in EXPERIMENTS.md.");
  return 0;
}
