// scheduler_contention — the multi-applier ingest bench behind the
// work-stealing scheduler: K concurrent appliers (one thread each, bound
// to distinct affinity groups like the sharded service's shard slots)
// replay independent IncSR insertion streams through the SHARED global
// scheduler, at each thread count in --threads-list, in both admission
// modes:
//
//   exclusive      — the legacy ThreadPool policy (one region at a time,
//                    busy => inline-serial), re-enabled via
//                    Scheduler::set_exclusive_regions(true). Its
//                    regions_inline_busy delta is the cliff: every count
//                    is a region that lost its parallelism to a
//                    neighboring applier.
//   work_stealing  — the default: concurrent regions interleave across
//                    the worker set; inline-busy MUST stay zero.
//
// Reported per (mode, threads): aggregate applied-updates/s across the
// appliers, the per-run regions_inline_busy / regions_parallel / steals
// deltas, and the stealing-vs-exclusive speedup at the same thread
// count. Determinism is checked, not assumed: every applier's final S
// must be bitwise identical to its own serial (1-thread, uncontended)
// replay, in every mode, at every thread count.
//
// Note the gap is a function of the host's core count: with W hardware
// threads the exclusive mode serializes roughly (K-1)/K of the regions
// while stealing keeps all W busy, so single-core CI hosts will show
// parity (both modes degenerate to time-slicing) where real multi-core
// serving hosts show the scaling this bench exists to prove.
//
// Usage: bench_scheduler_contention [--nodes N] [--degree D]
//          [--updates U] [--iterations K] [--appliers A]
//          [--threads-list 1,2,4] [--publish-every P] [--json PATH]
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct Config {
  std::size_t nodes = 400;        // per applier
  double degree = 8.0;
  std::size_t updates = 96;       // per applier
  int iterations = 10;
  std::size_t appliers = 4;
  std::vector<int> threads_list = {1, 2, 4};
  std::size_t publish_every = 32;  // epoch cadence, like the applier
  std::string json_path;
};

// One applier's private world: a clustered base graph, its batch-solved
// S0, and a fixed insertion stream. Seeds differ per applier so the
// affected areas (and hence region sizes) are not in lockstep.
struct Applier {
  graph::DynamicDiGraph base;
  la::DenseMatrix s0;
  std::vector<graph::EdgeUpdate> stream;
};

Applier MakeApplier(const Config& config, std::uint64_t seed) {
  Applier applier;
  auto stream = graph::EvolvingLinkage(
      {.num_nodes = config.nodes,
       .num_edges = static_cast<std::size_t>(config.degree *
                                             static_cast<double>(config.nodes)),
       .num_communities = std::max<std::size_t>(1, config.nodes / 65),
       .intra_community_prob = 1.0,
       .seed = seed});
  INCSR_CHECK(stream.ok(), "generator failed");
  applier.base = graph::MaterializeGraph(config.nodes, stream.value());
  simrank::SimRankOptions batch_options;
  batch_options.iterations = config.iterations;
  applier.s0 = simrank::BatchMatrix(applier.base, batch_options);
  Rng rng(seed * 7 + 3);
  auto sampled = graph::SampleInsertions(applier.base, config.updates, &rng);
  INCSR_CHECK(sampled.ok(), "sampling failed: %s",
              sampled.status().ToString().c_str());
  applier.stream = std::move(sampled).value();
  return applier;
}

// Replays one applier's stream (the serving applier's write path: unit
// updates on a COW store with periodic publishes) and returns final S.
la::DenseMatrix ReplayStream(const Config& config, const Applier& applier,
                             int threads) {
  simrank::SimRankOptions options;
  options.iterations = config.iterations;
  options.num_threads = threads;
  graph::DynamicDiGraph g = applier.base;
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  la::ScoreStore store{la::DenseMatrix(applier.s0)};
  core::IncSrEngine engine(options);
  for (std::size_t k = 0; k < applier.stream.size(); ++k) {
    Status s = engine.ApplyUpdate(applier.stream[k], &g, &q, &store);
    INCSR_CHECK(s.ok(), "update failed: %s", s.ToString().c_str());
    if ((k + 1) % config.publish_every == 0) store.Publish();
  }
  return store.ToDense();
}

struct RunResult {
  bool exclusive = false;
  int threads = 0;
  double seconds = 0.0;
  double aggregate_updates_per_sec = 0.0;
  std::uint64_t regions_inline_busy = 0;
  std::uint64_t regions_parallel = 0;
  std::uint64_t steals = 0;
  std::uint64_t tickets_pushed = 0;
};

RunResult RunContended(const Config& config,
                       const std::vector<Applier>& appliers,
                       const std::vector<la::DenseMatrix>& reference,
                       int threads, bool exclusive) {
  Scheduler& scheduler = Scheduler::Global();
  scheduler.set_exclusive_regions(exclusive);
  const SchedulerStats before = scheduler.stats();

  std::vector<la::DenseMatrix> finals(appliers.size());
  std::vector<std::thread> workers;
  WallTimer timer;
  for (std::size_t i = 0; i < appliers.size(); ++i) {
    workers.emplace_back([&config, &appliers, &finals, i, threads] {
      Scheduler::BindCurrentThreadToGroup(static_cast<int>(i));
      finals[i] = ReplayStream(config, appliers[i], threads);
    });
  }
  for (std::thread& worker : workers) worker.join();

  RunResult result;
  result.exclusive = exclusive;
  result.threads = threads;
  result.seconds = timer.ElapsedSeconds();
  scheduler.set_exclusive_regions(false);

  const double total_updates =
      static_cast<double>(config.updates * appliers.size());
  result.aggregate_updates_per_sec =
      result.seconds > 0.0 ? total_updates / result.seconds : 0.0;
  const SchedulerStats after = scheduler.stats();
  result.regions_inline_busy =
      after.regions_inline_busy - before.regions_inline_busy;
  result.regions_parallel = after.regions_parallel - before.regions_parallel;
  result.steals = after.steals - before.steals;
  result.tickets_pushed = after.tickets_pushed - before.tickets_pushed;

  for (std::size_t i = 0; i < appliers.size(); ++i) {
    INCSR_CHECK(la::BitwiseEqual(finals[i], reference[i]),
                "applier %zu S diverged (mode=%s threads=%d) — contention "
                "broke the determinism contract",
                i, exclusive ? "exclusive" : "work_stealing", threads);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench();
  Config config;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> std::string {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--nodes") == 0) {
      config.nodes = static_cast<std::size_t>(std::atoll(next().c_str()));
    } else if (std::strcmp(argv[i], "--degree") == 0) {
      config.degree = std::atof(next().c_str());
    } else if (std::strcmp(argv[i], "--updates") == 0) {
      config.updates = static_cast<std::size_t>(std::atoll(next().c_str()));
    } else if (std::strcmp(argv[i], "--iterations") == 0) {
      config.iterations = std::atoi(next().c_str());
    } else if (std::strcmp(argv[i], "--appliers") == 0) {
      config.appliers = static_cast<std::size_t>(std::atoll(next().c_str()));
      INCSR_CHECK(config.appliers > 0, "--appliers needs >= 1");
    } else if (std::strcmp(argv[i], "--publish-every") == 0) {
      config.publish_every =
          static_cast<std::size_t>(std::atoll(next().c_str()));
      INCSR_CHECK(config.publish_every > 0, "--publish-every needs >= 1");
    } else if (std::strcmp(argv[i], "--threads-list") == 0) {
      config.threads_list.clear();
      std::string csv = next();
      std::size_t start = 0;
      while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::string part =
            csv.substr(start, comma == std::string::npos ? std::string::npos
                                                         : comma - start);
        const int t = std::atoi(part.c_str());
        INCSR_CHECK(t > 0, "--threads-list needs positive ints, got '%s'",
                    part.c_str());
        config.threads_list.push_back(t);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (std::strcmp(argv[i], "--json") == 0) {
      config.json_path = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  INCSR_CHECK(!config.threads_list.empty(), "--threads-list is empty");

  bench::PrintHeader(
      "scheduler_contention — concurrent appliers on the shared scheduler");
  std::printf(
      "%zu appliers × (n = %zu, degree = %.1f, |dG| = %zu insertions), "
      "K = %d, publish every %zu, scheduler = %zu threads, host = %u "
      "hardware threads\n",
      config.appliers, config.nodes, config.degree, config.updates,
      config.iterations, config.publish_every,
      Scheduler::Global().num_threads(),
      std::thread::hardware_concurrency());

  std::vector<Applier> appliers;
  std::vector<la::DenseMatrix> reference;
  WallTimer build_timer;
  for (std::size_t i = 0; i < config.appliers; ++i) {
    appliers.push_back(MakeApplier(config, 11 + 6 * i));
    // Uncontended serial replay: the bitwise reference every contended
    // run must reproduce.
    reference.push_back(ReplayStream(config, appliers.back(), 1));
  }
  std::printf("built %zu appliers (batch solves + serial references): %.2f s\n",
              config.appliers, build_timer.ElapsedSeconds());

  std::vector<RunResult> results;
  std::printf("  %14s %8s %10s %14s %12s %10s %8s\n", "mode", "threads",
              "seconds", "agg upd/s", "inline-busy", "parallel", "steals");
  for (int threads : config.threads_list) {
    for (const bool exclusive : {true, false}) {
      results.push_back(
          RunContended(config, appliers, reference, threads, exclusive));
      const RunResult& run = results.back();
      std::printf("  %14s %8d %8.3f s %14.0f %12llu %10llu %8llu\n",
                  run.exclusive ? "exclusive" : "work-stealing", run.threads,
                  run.seconds, run.aggregate_updates_per_sec,
                  static_cast<unsigned long long>(run.regions_inline_busy),
                  static_cast<unsigned long long>(run.regions_parallel),
                  static_cast<unsigned long long>(run.steals));
      INCSR_CHECK(run.exclusive || run.regions_inline_busy == 0,
                  "work-stealing mode hit the inline-busy path %llu times",
                  static_cast<unsigned long long>(run.regions_inline_busy));
    }
    const RunResult& excl = results[results.size() - 2];
    const RunResult& steal = results.back();
    if (excl.seconds > 0.0 && steal.seconds > 0.0) {
      std::printf("  %14s %8d   stealing/exclusive throughput = %.2fx\n", "",
                  threads,
                  steal.aggregate_updates_per_sec /
                      excl.aggregate_updates_per_sec);
    }
  }

  if (!config.json_path.empty()) {
    bench::JsonObject root;
    root.Set("bench", "scheduler_contention")
        .Set("appliers", config.appliers)
        .Set("nodes", config.nodes)
        .Set("degree", config.degree)
        .Set("updates_per_applier", config.updates)
        .Set("iterations", config.iterations)
        .Set("publish_every", config.publish_every)
        .Set("scheduler_threads", Scheduler::Global().num_threads())
        .Set("hardware_threads",
             static_cast<std::size_t>(std::thread::hardware_concurrency()));
    for (const RunResult& run : results) {
      root.AddObject("results")
          ->Set("mode", run.exclusive ? "exclusive" : "work_stealing")
          .Set("threads", run.threads)
          .Set("seconds", run.seconds)
          .Set("aggregate_updates_per_sec", run.aggregate_updates_per_sec)
          .Set("regions_inline_busy", run.regions_inline_busy)
          .Set("regions_parallel", run.regions_parallel)
          .Set("steals", run.steals)
          .Set("tickets_pushed", run.tickets_pushed)
          .Set("bitwise_identical_to_serial", true);
    }
    INCSR_CHECK(bench::WriteJsonFile(config.json_path, root),
                "failed to write %s", config.json_path.c_str());
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  return 0;
}
