// Reproduces Fig. 2e: the size of the "affected areas" in the SimRank
// update matrix as a percentage of n², for |ΔE| ∈ {6K, 12K, 18K} (scaled)
// on each dataset. Affected = node-pairs whose similarity actually
// changes over the whole delta (the complement of Fig. 2d's pruned set).
// The paper reports ~19-28% and a mild growth with |ΔE|.
//
// Usage: fig2e_affected_area [scale_multiplier]
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct DatasetConfig {
  datasets::DatasetKind kind;
  double scale;
  int iterations;
};

void RunDataset(const DatasetConfig& config, double scale_mult) {
  const double scale = config.scale * scale_mult;
  datasets::DatasetOptions data_options;
  data_options.scale = scale;
  data_options.base_fraction = 0.7;  // leave room for an 18K-scaled delta
  auto series = datasets::MakeDataset(config.kind, data_options);
  INCSR_CHECK(series.ok(), "dataset");

  simrank::SimRankOptions options;
  options.damping = 0.6;
  options.iterations = config.iterations;

  graph::DynamicDiGraph g0 = series->GraphAt(0);
  la::DenseMatrix s0 = simrank::BatchMatrix(g0, options);
  auto full_delta = series->DeltaBetween(0, series->num_snapshots() - 1);

  std::printf("%-6s (n = %zu):  ", datasets::DatasetName(config.kind).c_str(),
              series->num_nodes());
  for (int multiple = 1; multiple <= 3; ++multiple) {
    const std::size_t delta_edges =
        std::min(full_delta.size(),
                 static_cast<std::size_t>(6000.0 * scale * multiple));
    auto index = core::DynamicSimRank::FromState(
        g0, s0, options, core::UpdateAlgorithm::kIncSR);
    INCSR_CHECK(index.ok(), "index");
    for (std::size_t k = 0; k < delta_edges; ++k) {
      INCSR_CHECK(index->ApplyUpdate(full_delta[k]).ok(), "update");
    }
    double affected = bench::ChangedFraction(s0, index->scores());
    std::printf("|dE|=%5zu -> %5.1f%%   ", delta_edges, 100.0 * affected);
  }
  std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
  const double scale_mult = argc > 1 ? std::atof(argv[1]) : 1.0;
  bench::PrintHeader("Fig. 2e — % of affected areas w.r.t. |dE|");
  RunDataset({datasets::DatasetKind::kDblp, 0.08, 15}, scale_mult);
  RunDataset({datasets::DatasetKind::kCitH, 0.05, 15}, scale_mult);
  RunDataset({datasets::DatasetKind::kYouTu, 0.03, 5}, scale_mult);
  std::puts(
      "\nShape check vs the paper's Fig. 2e: affected areas stay well below "
      "n^2 and grow\nmildly with |dE| — the headroom the pruning exploits.");
  return 0;
}
