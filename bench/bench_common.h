// Shared plumbing for the figure-reproduction harnesses: converged-option
// helpers, simple aligned table printing, and the update-application
// protocol (time a capped prefix of a snapshot delta, extrapolate to the
// full delta — per-update costs are stationary, so the extrapolation is
// the per-update mean times |ΔE|; both numbers are printed).
#ifndef INCSR_BENCH_BENCH_COMMON_H_
#define INCSR_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "incsr/incsr.h"

namespace incsr::bench {

/// Options whose truncation bound C^(K+1) is below 1e-13.
inline simrank::SimRankOptions ConvergedOptions(double damping) {
  simrank::SimRankOptions options;
  options.damping = damping;
  options.iterations =
      static_cast<int>(std::log(1e-13) / std::log(damping)) + 2;
  return options;
}

/// Line-buffers stdout so progress is visible when output is redirected.
inline void InitBench() { std::setvbuf(stdout, nullptr, _IOLBF, 0); }

/// Prints "name = value"-style run configuration lines.
inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Result of timing an incremental engine over a (possibly capped) prefix
/// of a snapshot delta.
struct TimedUpdates {
  std::size_t applied = 0;        // unit updates actually timed
  std::size_t total = 0;          // |ΔE| of the full delta
  double seconds = 0.0;           // measured wall time for `applied`
  /// Extrapolated wall time for the full delta (== seconds when uncapped).
  double ExtrapolatedSeconds() const {
    if (applied == 0) return 0.0;
    return seconds * static_cast<double>(total) /
           static_cast<double>(applied);
  }
};

/// Applies up to `cap` unit updates from `delta` through `apply` (a
/// callable Status(const graph::EdgeUpdate&)), timing them.
template <typename ApplyFn>
TimedUpdates TimeUpdates(const std::vector<graph::EdgeUpdate>& delta,
                         std::size_t cap, ApplyFn&& apply) {
  TimedUpdates result;
  result.total = delta.size();
  const std::size_t count = std::min(cap, delta.size());
  WallTimer timer;
  for (std::size_t k = 0; k < count; ++k) {
    Status s = apply(delta[k]);
    INCSR_CHECK(s.ok(), "bench update failed: %s", s.ToString().c_str());
  }
  result.seconds = timer.ElapsedSeconds();
  result.applied = count;
  return result;
}

/// Zipf-skewed sampler over ranks [0, n): P(rank r) ∝ 1/(r+1)^theta.
/// theta = 0 degenerates to uniform; theta around 0.8-1.2 models the
/// hot-node query skew of real serving traffic. Precomputes the CDF once
/// (O(n)) and samples by binary search (O(log n)).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta) : cdf_(n) {
    INCSR_CHECK(n > 0, "ZipfSampler needs n > 0");
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), theta);
      cdf_[r] = total;
    }
    for (std::size_t r = 0; r < n; ++r) cdf_[r] /= total;
  }

  std::size_t Next(Rng* rng) const {
    const double u = rng->NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// Fraction of entries that differ between two equally sized matrices —
/// the "affected pairs" measure of Fig. 2d/2e (a changed entry is one the
/// incremental update actually touched with a nonzero delta). Generic over
/// row-readable containers (la::DenseMatrix, la::ScoreStore, views).
template <typename BeforeLike, typename AfterLike>
double ChangedFraction(const BeforeLike& before, const AfterLike& after) {
  INCSR_CHECK(before.rows() == after.rows() && before.cols() == after.cols(),
              "ChangedFraction shape mismatch");
  std::size_t changed = 0;
  for (std::size_t i = 0; i < before.rows(); ++i) {
    const double* b = before.RowPtr(i);
    const double* a = after.RowPtr(i);
    for (std::size_t j = 0; j < before.cols(); ++j) {
      if (a[j] != b[j]) ++changed;
    }
  }
  return static_cast<double>(changed) /
         (static_cast<double>(before.rows()) *
          static_cast<double>(before.cols()));
}

}  // namespace incsr::bench

#endif  // INCSR_BENCH_BENCH_COMMON_H_
