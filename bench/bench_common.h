// Shared plumbing for the figure-reproduction harnesses: converged-option
// helpers, simple aligned table printing, and the update-application
// protocol (time a capped prefix of a snapshot delta, extrapolate to the
// full delta — per-update costs are stationary, so the extrapolation is
// the per-update mean times |ΔE|; both numbers are printed).
#ifndef INCSR_BENCH_BENCH_COMMON_H_
#define INCSR_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "incsr/incsr.h"

namespace incsr::bench {

/// Options whose truncation bound C^(K+1) is below 1e-13.
inline simrank::SimRankOptions ConvergedOptions(double damping) {
  simrank::SimRankOptions options;
  options.damping = damping;
  options.iterations =
      static_cast<int>(std::log(1e-13) / std::log(damping)) + 2;
  return options;
}

/// Line-buffers stdout so progress is visible when output is redirected.
inline void InitBench() { std::setvbuf(stdout, nullptr, _IOLBF, 0); }

/// Prints "name = value"-style run configuration lines.
inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Result of timing an incremental engine over a (possibly capped) prefix
/// of a snapshot delta.
struct TimedUpdates {
  std::size_t applied = 0;        // unit updates actually timed
  std::size_t total = 0;          // |ΔE| of the full delta
  double seconds = 0.0;           // measured wall time for `applied`
  /// Extrapolated wall time for the full delta (== seconds when uncapped).
  double ExtrapolatedSeconds() const {
    if (applied == 0) return 0.0;
    return seconds * static_cast<double>(total) /
           static_cast<double>(applied);
  }
};

/// Applies up to `cap` unit updates from `delta` through `apply` (a
/// callable Status(const graph::EdgeUpdate&)), timing them.
template <typename ApplyFn>
TimedUpdates TimeUpdates(const std::vector<graph::EdgeUpdate>& delta,
                         std::size_t cap, ApplyFn&& apply) {
  TimedUpdates result;
  result.total = delta.size();
  const std::size_t count = std::min(cap, delta.size());
  WallTimer timer;
  for (std::size_t k = 0; k < count; ++k) {
    Status s = apply(delta[k]);
    INCSR_CHECK(s.ok(), "bench update failed: %s", s.ToString().c_str());
  }
  result.seconds = timer.ElapsedSeconds();
  result.applied = count;
  return result;
}

/// Loads a SNAP edge list and cuts it into a snapshot series for the
/// figure harnesses (--edges FILE [--temporal]). With `temporal` the
/// file's line order is taken as the arrival order — SNAP temporal
/// datasets ship their lines in arrival order, so prefixes of the file
/// are real historical snapshots. Without it the stream is shuffled
/// deterministically (fixed seed, so runs are comparable) because the
/// line order of a non-temporal dump encodes nothing.
inline Result<graph::SnapshotSeries> LoadEdgeListSeries(
    const std::string& path, bool temporal, std::size_t num_snapshots,
    double base_fraction = 0.8) {
  auto data = graph::ReadEdgeListFile(path);
  if (!data.ok()) return data.status();
  std::vector<graph::TimestampedEdge> stream;
  stream.reserve(data->edges.size());
  for (std::size_t k = 0; k < data->edges.size(); ++k) {
    stream.push_back({data->edges[k], static_cast<std::int64_t>(k)});
  }
  if (!temporal) {
    Rng rng(2014);
    for (std::size_t k = stream.size(); k > 1; --k) {
      std::swap(stream[k - 1], stream[rng.NextBounded(k)]);
    }
    for (std::size_t k = 0; k < stream.size(); ++k) {
      stream[k].timestamp = static_cast<std::int64_t>(k);
    }
  }
  std::printf("loaded %s: %zu nodes, %zu edges (%zu duplicate lines "
              "skipped), %s order\n",
              path.c_str(), data->graph.num_nodes(), stream.size(),
              data->duplicates_skipped,
              temporal ? "temporal (file)" : "shuffled");
  return graph::SnapshotSeries::FromStream(data->graph.num_nodes(),
                                           std::move(stream), num_snapshots,
                                           base_fraction);
}

/// Minimal JSON emitter for the BENCH_*.json trajectory files: an object
/// of scalar fields (insertion order preserved), named arrays of child
/// objects, and named arrays of scalars (per-shard trajectories). Covers
/// exactly what the harnesses need — workload params and metrics —
/// without a JSON dependency.
///
///   JsonObject root;
///   root.Set("bench", "serve_throughput").Set("nodes", config.nodes);
///   JsonObject* run = root.AddObject("runs");
///   run->Set("updates_per_sec", 123.4);
///   run->Append("per_shard_applied", 100).Append("per_shard_applied", 97);
///   WriteJsonFile(path, root);
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, const std::string& value) {
    return SetRaw(key, "\"" + Escape(value) + "\"");
  }
  JsonObject& Set(const std::string& key, const char* value) {
    return Set(key, std::string(value));
  }
  JsonObject& Set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return SetRaw(key, buf);
  }
  JsonObject& Set(const std::string& key, unsigned long value) {  // NOLINT
    return SetRaw(key, std::to_string(value));
  }
  JsonObject& Set(const std::string& key, unsigned long long value) {  // NOLINT
    return SetRaw(key, std::to_string(value));
  }
  JsonObject& Set(const std::string& key, int value) {
    return SetRaw(key, std::to_string(value));
  }
  JsonObject& Set(const std::string& key, bool value) {
    return SetRaw(key, value ? "true" : "false");
  }

  /// Appends a fresh object to the array `key` (created on first use) and
  /// returns it; the pointer stays valid for this JsonObject's lifetime.
  JsonObject* AddObject(const std::string& key) {
    for (Entry& entry : entries_) {
      if (entry.is_array && entry.key == key) {
        entry.children.push_back(std::make_unique<JsonObject>());
        return entry.children.back().get();
      }
    }
    entries_.push_back(Entry{key, "", true, {}, {}});
    entries_.back().children.push_back(std::make_unique<JsonObject>());
    return entries_.back().children.back().get();
  }

  /// Appends one scalar to the array `key` (created on first use; rendered
  /// inline: "key": [v1, v2, ...]). A key holds either scalars or child
  /// objects, never both.
  JsonObject& Append(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return AppendRaw(key, buf);
  }
  JsonObject& Append(const std::string& key, unsigned long value) {  // NOLINT
    return AppendRaw(key, std::to_string(value));
  }
  JsonObject& Append(const std::string& key,
                     unsigned long long value) {  // NOLINT
    return AppendRaw(key, std::to_string(value));
  }
  JsonObject& Append(const std::string& key, int value) {
    return AppendRaw(key, std::to_string(value));
  }
  JsonObject& Append(const std::string& key, const std::string& value) {
    return AppendRaw(key, "\"" + Escape(value) + "\"");
  }

  std::string ToString(int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string inner(static_cast<std::size_t>(indent + 1) * 2, ' ');
    std::string out = "{\n";
    for (std::size_t e = 0; e < entries_.size(); ++e) {
      const Entry& entry = entries_[e];
      out += inner + "\"" + Escape(entry.key) + "\": ";
      if (entry.is_array && entry.children.empty()) {
        out += "[";  // scalar array, rendered inline
        for (std::size_t c = 0; c < entry.scalars.size(); ++c) {
          if (c > 0) out += ", ";
          out += entry.scalars[c];
        }
        out += "]";
      } else if (entry.is_array) {
        out += "[\n";
        for (std::size_t c = 0; c < entry.children.size(); ++c) {
          out += inner + "  " + entry.children[c]->ToString(indent + 2);
          if (c + 1 < entry.children.size()) out += ",";
          out += "\n";
        }
        out += inner + "]";
      } else {
        out += entry.value;
      }
      if (e + 1 < entries_.size()) out += ",";
      out += "\n";
    }
    out += pad + "}";
    return out;
  }

 private:
  struct Entry {
    std::string key;
    std::string value;  // pre-rendered scalar (unused for arrays)
    bool is_array = false;
    std::vector<std::unique_ptr<JsonObject>> children;  // object arrays
    std::vector<std::string> scalars;                   // scalar arrays
  };

  static std::string Escape(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (char ch : raw) {
      if (ch == '"' || ch == '\\') out.push_back('\\');
      out.push_back(ch);
    }
    return out;
  }

  JsonObject& SetRaw(const std::string& key, std::string rendered) {
    entries_.push_back(Entry{key, std::move(rendered), false, {}, {}});
    return *this;
  }

  JsonObject& AppendRaw(const std::string& key, std::string rendered) {
    for (Entry& entry : entries_) {
      if (entry.is_array && entry.key == key && entry.children.empty()) {
        entry.scalars.push_back(std::move(rendered));
        return *this;
      }
    }
    entries_.push_back(Entry{key, "", true, {}, {}});
    entries_.back().scalars.push_back(std::move(rendered));
    return *this;
  }

  std::vector<Entry> entries_;
};

/// Writes `root` to `path` (overwriting). Returns false on I/O failure.
inline bool WriteJsonFile(const std::string& path, const JsonObject& root) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = root.ToString() + "\n";
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

/// Zipf-skewed sampler over ranks [0, n): P(rank r) ∝ 1/(r+1)^theta.
/// theta = 0 degenerates to uniform; theta around 0.8-1.2 models the
/// hot-node query skew of real serving traffic. Precomputes the CDF once
/// (O(n)) and samples by binary search (O(log n)).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta) : cdf_(n) {
    INCSR_CHECK(n > 0, "ZipfSampler needs n > 0");
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), theta);
      cdf_[r] = total;
    }
    for (std::size_t r = 0; r < n; ++r) cdf_[r] /= total;
  }

  std::size_t Next(Rng* rng) const {
    const double u = rng->NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// Fraction of entries that differ between two equally sized matrices —
/// the "affected pairs" measure of Fig. 2d/2e (a changed entry is one the
/// incremental update actually touched with a nonzero delta). Generic over
/// row-readable containers (la::DenseMatrix, la::ScoreStore, views).
template <typename BeforeLike, typename AfterLike>
double ChangedFraction(const BeforeLike& before, const AfterLike& after) {
  INCSR_CHECK(before.rows() == after.rows() && before.cols() == after.cols(),
              "ChangedFraction shape mismatch");
  std::size_t changed = 0;
  la::Vector scratch_b;
  la::Vector scratch_a;
  for (std::size_t i = 0; i < before.rows(); ++i) {
    const double* b = before.ReadRow(i, &scratch_b);
    const double* a = after.ReadRow(i, &scratch_a);
    for (std::size_t j = 0; j < before.cols(); ++j) {
      if (a[j] != b[j]) ++changed;
    }
  }
  return static_cast<double>(changed) /
         (static_cast<double>(before.rows()) *
          static_cast<double>(before.cols()));
}

}  // namespace incsr::bench

#endif  // INCSR_BENCH_BENCH_COMMON_H_
