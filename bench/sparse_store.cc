// sparse_store — the tiered-storage deliverable bench (docs/score_store.md).
//
// Phase A (equivalence sweep): the same power-law workload — a
// preferential-citation base graph plus its remaining stream as live
// inserts — is replayed through SimRankService twice: dense store vs
// tiered store at ε (default 1e-4, aggressive demotion). Reported per run:
// resident score bytes (dense slab vs sparse payload), ingest updates/s,
// query throughput on the settled tier mix, and for the sparse run the
// accuracy ledger: max |served − exact| against the dense run's final
// snapshot, NDCG@50 of the served top pairs graded by the exact scores,
// and the store's own recorded error bound (which must dominate the
// observed error — checked here, not just promised).
//
// Phase B (the n² wall): stands up an index at --big-nodes isolated nodes
// via CreateIsolated — the sparse-direct (1−C)·I entry point — applies a
// burst of edge inserts, and reports resident payload vs the analytic
// n²·8 dense slab that a dense ScoreStore would have had to allocate up
// front (at the default n = 131072 that slab is ~137 GB; this process
// never allocates it).
//
// Phase C (--churn, off by default): sustained ingest against a
// mostly-sparse store. A power-law insert stream is applied in batches to
// an isolated-node index (all rows start sparse), every touched row is
// re-sparsified after each batch (the publish-time tier policy's job in
// the serving tier), and Publish() closes the epoch. The same stream runs
// twice — densify-on-write (the legacy MutableRowPtr path) vs the
// sparse-native RowWriter path — and the headline number is the peak
// transient dense footprint: max over epochs of epoch_peak_dense_bytes,
// the high-water mark of dense payload *during* each batch. Densify-on-
// write inflates every touched sparse row to a full n-entry dense row for
// the duration of the batch; the sparse-native path merges scatter sets
// in place and only spills rows that trip the max_density gate.
//
// Usage: bench_sparse_store [--nodes N] [--updates U] [--queries Q]
//          [--epsilon E] [--topk K] [--big-nodes N] [--big-updates U]
//          [--churn] [--churn-nodes N] [--churn-updates U]
//          [--churn-batch B] [--json PATH]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct Config {
  std::size_t nodes = 500;
  std::size_t updates = 200;
  std::size_t queries = 2000;
  double epsilon = 1e-4;
  std::size_t topk = 10;
  std::size_t big_nodes = 131072;
  std::size_t big_updates = 64;
  bool churn = false;
  std::size_t churn_nodes = 16384;
  std::size_t churn_updates = 2048;
  std::size_t churn_batch = 32;
  double churn_epsilon = 1e-5;
  std::string json_path = "BENCH_sparse_store.json";
};

struct RunResult {
  double ingest_seconds = 0.0;
  double query_seconds = 0.0;
  service::ServiceStats stats;
  la::DenseMatrix final_scores;  // materialized final snapshot
};

// Replays the insert stream through one service (single writer, queries
// issued after the final publish so the measured tier mix is the settled
// one) and materializes the final snapshot for the accuracy comparison.
RunResult RunServing(const Config& config,
                     const graph::DynamicDiGraph& base,
                     const std::vector<graph::EdgeUpdate>& updates,
                     bool tiered) {
  simrank::SimRankOptions options;  // paper defaults: C = 0.6, K = 15
  options.damping = 0.6;
  options.iterations = 15;
  service::ServiceOptions service_options;
  service_options.max_batch = 64;
  service_options.topk_index_capacity = 64;
  if (tiered) {
    service_options.sparse.enabled = true;
    service_options.sparse.epsilon = config.epsilon;
    // Aggressive demotion: any row the decayed sketch has not seen read
    // goes sparse, and the clock sweep covers the whole store each epoch.
    service_options.sparse.hot_reads = 1;
    service_options.sparse.scan_rows_per_publish = config.nodes;
  }

  auto index = core::DynamicSimRank::Create(base, options);
  INCSR_CHECK(index.ok(), "index build failed: %s",
              index.status().ToString().c_str());
  auto service = service::SimRankService::Create(std::move(index).value(),
                                                 service_options);
  INCSR_CHECK(service.ok(), "service build failed");

  RunResult result;
  WallTimer ingest_timer;
  for (const graph::EdgeUpdate& u : updates) {
    INCSR_CHECK((*service)->Submit(u).ok(), "submit failed");
  }
  INCSR_CHECK((*service)->Flush().ok(), "flush failed");
  result.ingest_seconds = ingest_timer.ElapsedSeconds();

  // Zipf-skewed closed-loop queries against the settled epoch (no further
  // publishes, so the tier mix under measurement cannot shift).
  bench::ZipfSampler zipf(config.nodes, 0.8);
  Rng rng(99);
  WallTimer query_timer;
  for (std::size_t q = 0; q < config.queries; ++q) {
    const auto node = static_cast<graph::NodeId>(zipf.Next(&rng));
    auto top = (*service)->TopKFor(node, config.topk);
    INCSR_CHECK(top.ok(), "query failed");
  }
  result.query_seconds = query_timer.ElapsedSeconds();

  result.stats = (*service)->stats();
  result.final_scores = (*service)->Snapshot()->scores.ToDense();
  return result;
}

void ReportRun(const char* label, const Config& config, const RunResult& r) {
  const double dense_bytes =
      static_cast<double>(config.nodes) * static_cast<double>(config.nodes) * 8;
  const double resident = dense_bytes - static_cast<double>(r.stats.bytes_saved);
  std::printf(
      "%-10s %9.0f upd/s  %8.0f qry/s  resident %8.2f MB  "
      "(%llu sparse / %llu dense rows)\n",
      label,
      static_cast<double>(r.stats.applied) / r.ingest_seconds,
      static_cast<double>(config.queries) / r.query_seconds, resident / 1e6,
      static_cast<unsigned long long>(r.stats.rows_sparse),
      static_cast<unsigned long long>(r.stats.rows_dense));
}

struct ChurnResult {
  double ingest_seconds = 0.0;
  std::size_t applied = 0;
  std::uint64_t peak_dense_bytes = 0;  // max over epochs of the watermark
  la::ScoreStoreStats store_stats;
};

// One churn run: batches of power-law inserts into an isolated-node index
// whose rows all start sparse, re-sparsifying touched rows after each
// batch (standing in for the serving tier's publish-time policy) and
// closing the epoch with Publish() so epoch_peak_dense_bytes measures the
// transient dense footprint of exactly one batch.
ChurnResult RunChurn(const Config& config,
                     const std::vector<graph::EdgeUpdate>& updates,
                     la::ScoreStore::WriteMode mode) {
  simrank::SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 15;
  auto index = core::DynamicSimRank::CreateIsolated(
      config.churn_nodes, options, core::UpdateAlgorithm::kIncSR);
  INCSR_CHECK(index.ok(), "churn index failed: %s",
              index.status().ToString().c_str());
  la::ScoreStore* store = index->mutable_score_store();
  la::SparsityConfig sparsity;
  sparsity.epsilon = config.churn_epsilon;
  sparsity.max_density = 0.5;
  sparsity.error_amplification = 1.0 / (1.0 - options.damping);
  store->set_sparsity(sparsity);
  store->set_write_mode(mode);
  store->Publish();  // settle the construction epoch: watermark := resident

  ChurnResult result;
  WallTimer timer;
  for (std::size_t start = 0; start < updates.size();
       start += config.churn_batch) {
    const std::size_t end =
        std::min(start + config.churn_batch, updates.size());
    const std::vector<graph::EdgeUpdate> batch(updates.begin() + start,
                                               updates.begin() + end);
    INCSR_CHECK(index->ApplyBatch(batch).ok(), "churn batch failed");
    result.applied += batch.size();
    // Publish-time tier policy stand-in: push every touched row back to
    // the sparse tier. Under the sparse-native path rows the batch kept
    // sparse early-return here; under densify-on-write every touched row
    // was inflated dense and must be re-compressed.
    if (index->AllScoreRowsTouched()) {
      for (std::size_t i = 0; i < config.churn_nodes; ++i) {
        store->SparsifyRow(i, {});
      }
    } else {
      for (std::int32_t row : index->TouchedScoreRows()) {
        store->SparsifyRow(static_cast<std::size_t>(row), {});
      }
    }
    result.peak_dense_bytes = std::max(result.peak_dense_bytes,
                                       store->stats().epoch_peak_dense_bytes);
    store->Publish();
  }
  result.ingest_seconds = timer.ElapsedSeconds();
  result.store_stats = store->stats();
  return result;
}

int Run(const Config& config) {
  bench::PrintHeader("sparse_store — tiered row backings vs the dense slab");

  // Power-law workload: citation growth, 80% base / 20% live inserts.
  graph::CitationModelParams params;
  params.num_nodes = config.nodes;
  params.seed = 7;
  auto stream = graph::PreferentialCitation(params);
  INCSR_CHECK(stream.ok(), "generator failed");
  const std::size_t base_edges = stream->size() * 8 / 10;
  graph::DynamicDiGraph base =
      graph::MaterializeGraph(config.nodes, stream.value(), base_edges);
  std::vector<graph::EdgeUpdate> updates;
  for (std::size_t k = base_edges;
       k < stream->size() && updates.size() < config.updates; ++k) {
    updates.push_back({graph::UpdateKind::kInsert, (*stream)[k].edge.src,
                       (*stream)[k].edge.dst});
  }
  std::printf("n = %zu, |E| = %zu base + %zu live inserts, eps = %g, "
              "k = %zu, %zu queries (zipf 0.8)\n",
              config.nodes, base.num_edges(), updates.size(), config.epsilon,
              config.topk, config.queries);

  RunResult dense = RunServing(config, base, updates, /*tiered=*/false);
  RunResult sparse = RunServing(config, base, updates, /*tiered=*/true);
  ReportRun("dense:", config, dense);
  ReportRun("sparse:", config, sparse);

  // Accuracy ledger: observed error vs the recorded bound.
  const double max_err =
      eval::MaxAbsError(sparse.final_scores, dense.final_scores);
  auto ndcg = eval::NdcgAtK(sparse.final_scores, dense.final_scores, 50);
  INCSR_CHECK(ndcg.ok(), "ndcg failed");
  const double bound = sparse.stats.sparse_max_error_bound;
  std::printf(
      "accuracy: max |served - exact| = %.3g  (recorded bound %.3g, "
      "%llu eps-drops)  NDCG@50 = %.6f\n",
      max_err, bound, static_cast<unsigned long long>(
                          sparse.stats.sparse_eps_drops),
      *ndcg);
  // The two runs batch independently (boundaries depend on applier
  // timing) and coalescing makes FP order a function of the boundary, so
  // ~1e-7-scale noise exists even with sparsity off; the strict <= bound
  // property is pinned by tests/sparse_store_test.cc with deterministic
  // unit batches. Here the bound must dominate up to that noise.
  constexpr double kBatchingNoise = 1e-6;
  INCSR_CHECK(max_err <= bound + kBatchingNoise,
              "observed error %.3g exceeds the store's recorded bound %.3g",
              max_err, bound);
  std::printf(
      "tier policy: %llu demotions, %llu promotions; graph snapshots "
      "copy-on-wrote %.1f KB\n",
      static_cast<unsigned long long>(sparse.stats.tier_demotions),
      static_cast<unsigned long long>(sparse.stats.tier_promotions),
      static_cast<double>(sparse.stats.graph_bytes_copied) / 1e3);

  const double dense_bytes =
      static_cast<double>(config.nodes) * static_cast<double>(config.nodes) * 8;
  const double sparse_resident =
      dense_bytes - static_cast<double>(sparse.stats.bytes_saved);
  const double reduction =
      sparse_resident > 0.0 ? dense_bytes / sparse_resident : 0.0;
  std::printf("memory: %.2f MB dense -> %.2f MB tiered (%.1fx reduction)\n",
              dense_bytes / 1e6, sparse_resident / 1e6, reduction);

  // Phase B: an n whose dense slab this process could never allocate.
  bench::PrintHeader("sparse_store — past the dense n² wall");
  double big_resident = 0.0;
  double big_ingest_seconds = 0.0;
  {
    simrank::SimRankOptions options;
    options.damping = 0.6;
    options.iterations = 15;
    auto index = core::DynamicSimRank::CreateIsolated(config.big_nodes,
                                                      options);
    INCSR_CHECK(index.ok(), "isolated index failed: %s",
                index.status().ToString().c_str());
    service::ServiceOptions service_options;
    service_options.topk_index_capacity = 0;  // O(n) per-node entries: off
    service_options.cache_capacity = 0;
    service_options.sparse.enabled = true;
    service_options.sparse.epsilon = config.epsilon;
    auto service = service::SimRankService::Create(std::move(index).value(),
                                                   service_options);
    INCSR_CHECK(service.ok(), "big service build failed");
    // A burst of inserts confined to a small neighborhood: the affected
    // area stays tiny, so the index absorbs them at full n.
    Rng rng(3);
    WallTimer timer;
    std::size_t accepted = 0;
    while (accepted < config.big_updates) {
      const auto src = static_cast<graph::NodeId>(rng.NextBounded(512));
      auto dst = static_cast<graph::NodeId>(rng.NextBounded(512));
      if (dst == src) dst = static_cast<graph::NodeId>((dst + 1) % 512);
      Status s = (*service)->Submit({graph::UpdateKind::kInsert, src, dst});
      INCSR_CHECK(s.ok(), "big submit failed");
      ++accepted;
    }
    INCSR_CHECK((*service)->Flush().ok(), "big flush failed");
    big_ingest_seconds = timer.ElapsedSeconds();
    service::ServiceStats stats = (*service)->stats();
    const double analytic_dense = static_cast<double>(config.big_nodes) *
                                  static_cast<double>(config.big_nodes) * 8;
    big_resident = analytic_dense - static_cast<double>(stats.bytes_saved);
    auto score = (*service)->Score(0, 1);
    INCSR_CHECK(score.ok(), "big score failed");
    std::printf(
        "n = %zu: resident %.2f MB vs %.1f GB dense slab (%.0fx), "
        "%llu inserts absorbed in %.3f s (%llu sparse / %llu dense rows)\n",
        config.big_nodes, big_resident / 1e6, analytic_dense / 1e9,
        analytic_dense / big_resident,
        static_cast<unsigned long long>(stats.applied), big_ingest_seconds,
        static_cast<unsigned long long>(stats.rows_sparse),
        static_cast<unsigned long long>(stats.rows_dense));
  }

  // Phase C: sustained-ingest churn, densify-on-write vs sparse-native.
  ChurnResult churn_legacy;
  ChurnResult churn_native;
  double churn_peak_reduction = 0.0;
  if (config.churn) {
    bench::PrintHeader("sparse_store — churn: transient dense footprint");
    graph::CitationModelParams churn_params;
    churn_params.num_nodes = config.churn_nodes;
    churn_params.seed = 11;
    auto churn_stream = graph::PreferentialCitation(churn_params);
    INCSR_CHECK(churn_stream.ok(), "churn generator failed");
    std::vector<graph::EdgeUpdate> churn_updates;
    for (const auto& e : *churn_stream) {
      if (churn_updates.size() >= config.churn_updates) break;
      churn_updates.push_back(
          {graph::UpdateKind::kInsert, e.edge.src, e.edge.dst});
    }
    std::printf("n = %zu, %zu power-law inserts in batches of %zu, "
                "eps = %g, max_density 0.5\n",
                config.churn_nodes, churn_updates.size(), config.churn_batch,
                config.churn_epsilon);
    churn_legacy = RunChurn(config, churn_updates,
                            la::ScoreStore::WriteMode::kDensifyOnWrite);
    churn_native = RunChurn(config, churn_updates,
                            la::ScoreStore::WriteMode::kSparseNative);
    const auto report = [&](const char* label, const ChurnResult& r) {
      std::printf(
          "%-18s %9.0f upd/s  peak transient dense %8.3f MB  "
          "(%llu spills, %llu sparse merges)\n",
          label,
          static_cast<double>(r.applied) / r.ingest_seconds,
          static_cast<double>(r.peak_dense_bytes) / 1e6,
          static_cast<unsigned long long>(r.store_stats.rows_spilled_dense),
          static_cast<unsigned long long>(r.store_stats.sparse_write_merges));
    };
    report("densify-on-write:", churn_legacy);
    report("sparse-native:", churn_native);
    churn_peak_reduction =
        static_cast<double>(churn_legacy.peak_dense_bytes) /
        static_cast<double>(std::max<std::uint64_t>(
            churn_native.peak_dense_bytes, 1));
    const double upd_ratio =
        (static_cast<double>(churn_native.applied) /
         churn_native.ingest_seconds) /
        (static_cast<double>(churn_legacy.applied) /
         churn_legacy.ingest_seconds);
    std::printf("peak transient dense bytes: %.1fx reduction, "
                "sparse-native ingest at %.2fx of baseline\n",
                churn_peak_reduction, upd_ratio);
    INCSR_CHECK(churn_peak_reduction >= 5.0,
                "churn peak reduction %.2fx below the 5x deliverable",
                churn_peak_reduction);
  }

  if (!config.json_path.empty()) {
    bench::JsonObject root;
    root.Set("bench", "sparse_store")
        .Set("nodes", config.nodes)
        .Set("base_edges", base.num_edges())
        .Set("updates", updates.size())
        .Set("queries", config.queries)
        .Set("epsilon", config.epsilon)
        .Set("topk", config.topk);
    const RunResult* runs[] = {&dense, &sparse};
    const char* labels[] = {"dense", "sparse"};
    for (int i = 0; i < 2; ++i) {
      const RunResult& r = *runs[i];
      bench::JsonObject* run = root.AddObject("runs");
      run->Set("label", labels[i])
          .Set("updates_per_sec",
               static_cast<double>(r.stats.applied) / r.ingest_seconds)
          .Set("queries_per_sec",
               static_cast<double>(config.queries) / r.query_seconds)
          .Set("resident_bytes",
               dense_bytes - static_cast<double>(r.stats.bytes_saved))
          .Set("rows_sparse", r.stats.rows_sparse)
          .Set("rows_dense", r.stats.rows_dense)
          .Set("bytes_saved", r.stats.bytes_saved)
          .Set("eps_drops", r.stats.sparse_eps_drops)
          .Set("max_error_bound", r.stats.sparse_max_error_bound)
          .Set("tier_demotions", r.stats.tier_demotions)
          .Set("tier_promotions", r.stats.tier_promotions)
          .Set("graph_bytes_copied", r.stats.graph_bytes_copied);
    }
    root.Set("max_abs_error_observed", max_err)
        .Set("ndcg_at_50", *ndcg)
        .Set("memory_reduction", reduction)
        .Set("big_nodes", config.big_nodes)
        .Set("big_resident_bytes", big_resident)
        .Set("big_dense_bytes", static_cast<double>(config.big_nodes) *
                                    static_cast<double>(config.big_nodes) * 8)
        .Set("big_ingest_seconds", big_ingest_seconds);
    if (config.churn) {
      const ChurnResult* churn_runs[] = {&churn_legacy, &churn_native};
      const char* churn_labels[] = {"densify_on_write", "sparse_native"};
      for (int i = 0; i < 2; ++i) {
        const ChurnResult& r = *churn_runs[i];
        bench::JsonObject* run = root.AddObject("churn_runs");
        run->Set("label", churn_labels[i])
            .Set("updates_per_sec",
                 static_cast<double>(r.applied) / r.ingest_seconds)
            .Set("peak_transient_dense_bytes", r.peak_dense_bytes)
            .Set("rows_spilled_dense", r.store_stats.rows_spilled_dense)
            .Set("sparse_write_merges", r.store_stats.sparse_write_merges)
            .Set("rows_sparsified", r.store_stats.rows_sparsified)
            .Set("rows_densified", r.store_stats.rows_densified);
      }
      root.Set("churn_nodes", config.churn_nodes)
          .Set("churn_updates", churn_native.applied)
          .Set("churn_batch", config.churn_batch)
          .Set("churn_epsilon", config.churn_epsilon)
          .Set("churn_peak_reduction", churn_peak_reduction);
    }
    INCSR_CHECK(bench::WriteJsonFile(config.json_path, root),
                "failed to write %s", config.json_path.c_str());
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench();
  Config config;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--nodes") == 0) {
      config.nodes = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--updates") == 0) {
      config.updates = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      config.queries = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--epsilon") == 0) {
      config.epsilon = std::atof(next());
    } else if (std::strcmp(argv[i], "--topk") == 0) {
      config.topk = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--big-nodes") == 0) {
      config.big_nodes = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--big-updates") == 0) {
      config.big_updates = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--churn") == 0) {
      config.churn = true;
    } else if (std::strcmp(argv[i], "--churn-nodes") == 0) {
      config.churn_nodes = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--churn-updates") == 0) {
      config.churn_updates = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--churn-batch") == 0) {
      config.churn_batch = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--churn-epsilon") == 0) {
      config.churn_epsilon = std::atof(next());
    } else if (std::strcmp(argv[i], "--json") == 0) {
      config.json_path = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return Run(config);
}
