// update_kernels — the applier-side kernel bench behind the parallel
// update path: replays one fixed insertion stream through IncSrEngine
// (unit updates, ScoreStore with periodic epoch publishes — exactly the
// serving applier's write path) at each thread count in --threads-list,
// and reports applied-updates/s per thread count plus the speedup over
// the single-thread run.
//
// Determinism is checked, not assumed: the final S of every run must be
// bitwise identical to the 1-thread run (the kernels' chunk geometry is
// independent of the thread count), and a view pinned before the replay
// must stay byte-stable (the scatter pre-materializes COW clones before
// going parallel).
//
// Usage: bench_update_kernels [--nodes N] [--degree D] [--updates U]
//          [--iterations K] [--threads-list 1,2,4] [--publish-every P]
//          [--json PATH]
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct Config {
  std::size_t nodes = 1000;
  double degree = 8.0;
  std::size_t updates = 200;
  int iterations = 15;
  std::vector<int> threads_list = {1, 2, 4};
  std::size_t publish_every = 64;  // epoch cadence, like the applier
  std::string json_path;
};

graph::DynamicDiGraph MakeClusteredGraph(const Config& config) {
  // Clustered like the real datasets so the affected area HAS prunable
  // structure (cf. bench/micro_kernels.cc on the dense-reach artifact).
  auto stream = graph::EvolvingLinkage(
      {.num_nodes = config.nodes,
       .num_edges = static_cast<std::size_t>(config.degree *
                                             static_cast<double>(config.nodes)),
       .num_communities = std::max<std::size_t>(1, config.nodes / 65),
       .intra_community_prob = 1.0,
       .seed = 11});
  INCSR_CHECK(stream.ok(), "generator failed");
  return graph::MaterializeGraph(config.nodes, stream.value());
}

struct RunResult {
  int threads = 0;
  double seconds = 0.0;
  la::DenseMatrix final_s;
  bool pinned_view_stable = false;
};

RunResult RunStream(const Config& config, const graph::DynamicDiGraph& base,
                    const la::DenseMatrix& s0,
                    const std::vector<graph::EdgeUpdate>& stream,
                    int threads) {
  simrank::SimRankOptions options;
  options.iterations = config.iterations;
  options.num_threads = threads;

  graph::DynamicDiGraph g = base;
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  la::ScoreStore store{la::DenseMatrix(s0)};
  core::IncSrEngine engine(options);

  // A reader pinned this epoch before the replay; it must stay
  // byte-stable while the parallel kernels COW past it.
  la::ScoreStore::View pinned = store.Publish();
  la::DenseMatrix pinned_before = pinned.ToDense();

  RunResult result;
  result.threads = threads;
  WallTimer timer;
  for (std::size_t k = 0; k < stream.size(); ++k) {
    Status s = engine.ApplyUpdate(stream[k], &g, &q, &store);
    INCSR_CHECK(s.ok(), "update failed: %s", s.ToString().c_str());
    if ((k + 1) % config.publish_every == 0) store.Publish();
  }
  result.seconds = timer.ElapsedSeconds();
  result.final_s = store.ToDense();
  result.pinned_view_stable =
      la::MaxAbsDiff(pinned, pinned_before) == 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench();
  Config config;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> std::string {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--nodes") == 0) {
      config.nodes = static_cast<std::size_t>(std::atoll(next().c_str()));
    } else if (std::strcmp(argv[i], "--degree") == 0) {
      config.degree = std::atof(next().c_str());
    } else if (std::strcmp(argv[i], "--updates") == 0) {
      config.updates = static_cast<std::size_t>(std::atoll(next().c_str()));
    } else if (std::strcmp(argv[i], "--iterations") == 0) {
      config.iterations = std::atoi(next().c_str());
    } else if (std::strcmp(argv[i], "--publish-every") == 0) {
      config.publish_every =
          static_cast<std::size_t>(std::atoll(next().c_str()));
      INCSR_CHECK(config.publish_every > 0, "--publish-every needs >= 1");
    } else if (std::strcmp(argv[i], "--threads-list") == 0) {
      config.threads_list.clear();
      std::string csv = next();
      std::size_t start = 0;
      while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::string part =
            csv.substr(start, comma == std::string::npos ? std::string::npos
                                                         : comma - start);
        const int t = std::atoi(part.c_str());
        INCSR_CHECK(t > 0, "--threads-list needs positive ints, got '%s'",
                    part.c_str());
        config.threads_list.push_back(t);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (std::strcmp(argv[i], "--json") == 0) {
      config.json_path = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  INCSR_CHECK(!config.threads_list.empty(), "--threads-list is empty");

  bench::PrintHeader("update_kernels — parallel Inc-SR update path");
  std::printf(
      "n = %zu, degree = %.1f, |dG| = %zu insertions, K = %d, "
      "publish every %zu (scheduler default = %zu threads)\n",
      config.nodes, config.degree, config.updates, config.iterations,
      config.publish_every, Scheduler::EffectiveNumThreads(0));

  graph::DynamicDiGraph base = MakeClusteredGraph(config);
  simrank::SimRankOptions batch_options;
  batch_options.iterations = config.iterations;
  WallTimer build_timer;
  la::DenseMatrix s0 = simrank::BatchMatrix(base, batch_options);
  std::printf("initial batch solve: %.2f s\n", build_timer.ElapsedSeconds());

  Rng rng(23);
  auto sampled = graph::SampleInsertions(base, config.updates, &rng);
  INCSR_CHECK(sampled.ok(), "sampling failed: %s",
              sampled.status().ToString().c_str());
  const std::vector<graph::EdgeUpdate>& stream = sampled.value();

  std::vector<RunResult> results;
  std::printf("  %8s %12s %14s %9s %10s %8s\n", "threads", "seconds",
              "updates/s", "speedup", "bitwise", "view");
  for (int threads : config.threads_list) {
    results.push_back(RunStream(config, base, s0, stream, threads));
    const RunResult& run = results.back();
    const bool identical =
        la::BitwiseEqual(run.final_s, results.front().final_s);
    INCSR_CHECK(identical,
                "S at %d threads differs from %d threads — the kernels "
                "broke the determinism contract",
                run.threads, results.front().threads);
    INCSR_CHECK(run.pinned_view_stable,
                "pinned view mutated at %d threads — COW pre-clone broke",
                run.threads);
    // run.seconds can be 0 on coarse clocks with a tiny --updates count;
    // keep the ratios finite.
    std::printf("  %8d %10.3f s %14.0f %8.2fx %10s %8s\n", run.threads,
                run.seconds,
                run.seconds > 0.0
                    ? static_cast<double>(config.updates) / run.seconds
                    : 0.0,
                run.seconds > 0.0 ? results.front().seconds / run.seconds
                                  : 0.0,
                "ok", "stable");
  }

  if (!config.json_path.empty()) {
    bench::JsonObject root;
    root.Set("bench", "update_kernels")
        .Set("nodes", config.nodes)
        .Set("degree", config.degree)
        .Set("updates", config.updates)
        .Set("iterations", config.iterations)
        .Set("publish_every", config.publish_every)
        .Set("pool_default_threads", Scheduler::EffectiveNumThreads(0));
    for (const RunResult& run : results) {
      root.AddObject("results")
          ->Set("threads", run.threads)
          .Set("seconds", run.seconds)
          .Set("updates_per_sec",
               run.seconds > 0.0
                   ? static_cast<double>(config.updates) / run.seconds
                   : 0.0)
          .Set("speedup_vs_serial",
               run.seconds > 0.0 ? results.front().seconds / run.seconds
                                 : 0.0)
          .Set("bitwise_identical_to_serial", true)
          .Set("pinned_view_stable", run.pinned_view_stable);
    }
    INCSR_CHECK(bench::WriteJsonFile(config.json_path, root),
                "failed to write %s", config.json_path.c_str());
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  return 0;
}
