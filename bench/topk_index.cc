// topk_index — miss-path microbenchmark for the per-node top-k index
// (service/topk_index.h): does a TopKFor cache MISS still scale with n?
//
// For each n in --nodes-list it builds a service over a synthetic
// similarity matrix (random symmetric scores through
// DynamicSimRank::FromState — ranking mechanics are what is measured, not
// SimRank values, and this keeps the sweep off the O(K·n·m) batch solve),
// DISABLES the query cache so every query is a miss, and times --queries
// TopKFor misses twice: index on (O(k) entry reads) and index off (O(n)
// row scans). At fixed k and capacity the index path should be flat in n
// while the scan path grows linearly — that is the acceptance criterion
// for the last O(n)-per-query hot path becoming affected-area-
// proportional. Results are cross-checked against the row-scan oracle.
//
// A churn phase then replays --updates insertions through the index-on
// service and reports the applier-side maintenance cost: index rows
// re-ranked per epoch (== rows the batch touched, never n).
//
// Usage: bench_topk_index [--nodes-list 1000,2000,4000] [--queries Q]
//          [--topk K] [--index-capacity C] [--edges-per-node D]
//          [--updates U] [--json PATH]
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct Config {
  std::vector<std::size_t> nodes_list = {1000, 2000, 4000};
  std::size_t queries = 20000;
  std::size_t topk = 10;
  std::size_t index_capacity = 64;
  std::size_t edges_per_node = 4;
  std::size_t updates = 32;
  std::string json_path;
};

// Random symmetric scores with a unit-ish diagonal: what the ranking
// paths see is shaped like a similarity matrix, generated in O(n²)
// instead of solved.
la::DenseMatrix SyntheticScores(std::size_t n, std::uint64_t seed) {
  la::DenseMatrix s(n, n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    s(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = rng.NextDouble();
      s(i, j) = v;
      s(j, i) = v;
    }
  }
  return s;
}

std::unique_ptr<service::SimRankService> MakeService(
    const graph::DynamicDiGraph& graph, std::size_t index_capacity,
    std::uint64_t score_seed) {
  auto index = core::DynamicSimRank::FromState(
      graph, SyntheticScores(graph.num_nodes(), score_seed), {});
  INCSR_CHECK(index.ok(), "FromState failed: %s",
              index.status().ToString().c_str());
  service::ServiceOptions options;
  options.cache_capacity = 0;  // every query is a miss — the path under test
  options.max_batch = 8;       // several epochs during the churn phase
  options.topk_index_capacity = index_capacity;
  auto svc = service::SimRankService::Create(std::move(index).value(),
                                             options);
  INCSR_CHECK(svc.ok(), "service build failed");
  return std::move(svc).value();
}

// Times `queries` uniform-random TopKFor misses; returns seconds.
double TimeMisses(service::SimRankService* svc, std::size_t n,
                  std::size_t queries, std::size_t k) {
  Rng rng(99);
  std::size_t consumed = 0;
  WallTimer timer;
  for (std::size_t q = 0; q < queries; ++q) {
    const auto node = static_cast<graph::NodeId>(rng.NextBounded(n));
    auto top = svc->TopKFor(node, k);
    INCSR_CHECK(top.ok(), "query failed");
    consumed += top->size();
  }
  const double seconds = timer.ElapsedSeconds();
  INCSR_CHECK(consumed > 0, "no results consumed");
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench();
  Config config;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      INCSR_CHECK(i + 1 < argc, "flag %s needs a value", argv[i]);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--nodes-list") == 0) {
      config.nodes_list.clear();
      std::stringstream list(next());
      std::string part;
      while (std::getline(list, part, ',')) {
        config.nodes_list.push_back(
            static_cast<std::size_t>(std::atoll(part.c_str())));
      }
      INCSR_CHECK(!config.nodes_list.empty(), "--nodes-list needs values");
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      config.queries = static_cast<std::size_t>(std::atoll(next()));
      INCSR_CHECK(config.queries >= 1, "--queries needs >= 1");
    } else if (std::strcmp(argv[i], "--topk") == 0) {
      config.topk = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--index-capacity") == 0) {
      config.index_capacity = static_cast<std::size_t>(std::atoll(next()));
      INCSR_CHECK(config.index_capacity >= 1,
                  "--index-capacity needs >= 1 (the bench compares the "
                  "index path against the scan path)");
    } else if (std::strcmp(argv[i], "--edges-per-node") == 0) {
      config.edges_per_node = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--updates") == 0) {
      config.updates = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      config.json_path = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  INCSR_CHECK(config.topk <= config.index_capacity,
              "--topk must be <= --index-capacity, or every miss falls "
              "back to the scan and the two runs measure the same path");

  bench::PrintHeader("topk_index — TopKFor miss path: index vs row scan");
  std::printf(
      "queries = %zu, k = %zu, index capacity = %zu, cache disabled "
      "(every query is a miss)\n",
      config.queries, config.topk, config.index_capacity);
  std::printf("  %8s %16s %16s %9s %22s\n", "n", "index ns/miss",
              "scan ns/miss", "speedup", "reranked rows/epoch");

  bench::JsonObject root;
  root.Set("bench", "topk_index")
      .Set("queries", config.queries)
      .Set("topk", config.topk)
      .Set("index_capacity", config.index_capacity)
      .Set("updates", config.updates);

  for (std::size_t n : config.nodes_list) {
    INCSR_CHECK(n >= 2, "--nodes-list entries need n >= 2");
    auto stream = graph::ErdosRenyiGnm(n, n * config.edges_per_node, 5);
    INCSR_CHECK(stream.ok(), "generator failed");
    graph::DynamicDiGraph graph = graph::MaterializeGraph(n, stream.value());

    auto indexed = MakeService(graph, config.index_capacity, 11);
    auto scanning = MakeService(graph, 0, 11);

    // Cross-check: the index path must be bitwise what the scan returns.
    {
      Rng probe(3);
      for (int p = 0; p < 8; ++p) {
        const auto node = static_cast<graph::NodeId>(probe.NextBounded(n));
        auto a = indexed->TopKFor(node, config.topk);
        auto b = scanning->TopKFor(node, config.topk);
        INCSR_CHECK(a.ok() && b.ok() && a.value() == b.value(),
                    "index/scan divergence at node %d", node);
      }
    }

    const double index_seconds =
        TimeMisses(indexed.get(), n, config.queries, config.topk);
    const double scan_seconds =
        TimeMisses(scanning.get(), n, config.queries, config.topk);
    service::ServiceStats stats = indexed->stats();
    INCSR_CHECK(stats.topk_index_fallbacks == 0,
                "unexpected fallbacks: k <= capacity");

    // Churn phase: maintenance cost lands on the applier, proportional to
    // the rows each batch touches.
    std::uint64_t churn_epochs = 0;
    double reranked_per_epoch = 0.0;
    if (config.updates > 0) {
      Rng rng(17);
      auto ins = graph::SampleInsertions(graph, config.updates, &rng);
      INCSR_CHECK(ins.ok(), "sampling failed");
      const std::uint64_t reranked_before = stats.topk_index_rows_reranked;
      const std::uint64_t epoch_before = stats.epoch;
      INCSR_CHECK(indexed->SubmitBatch(ins.value()).ok(), "submit failed");
      INCSR_CHECK(indexed->Flush().ok(), "flush failed");
      stats = indexed->stats();
      churn_epochs = stats.epoch - epoch_before;
      reranked_per_epoch =
          churn_epochs > 0
              ? static_cast<double>(stats.topk_index_rows_reranked -
                                    reranked_before) /
                    static_cast<double>(churn_epochs)
              : 0.0;
    }

    const double index_ns =
        index_seconds * 1e9 / static_cast<double>(config.queries);
    const double scan_ns =
        scan_seconds * 1e9 / static_cast<double>(config.queries);
    std::printf("  %8zu %13.0f ns %13.0f ns %8.1fx %19.1f\n", n, index_ns,
                scan_ns, index_seconds > 0.0 ? scan_seconds / index_seconds
                                             : 0.0,
                reranked_per_epoch);
    root.AddObject("results")
        ->Set("nodes", n)
        .Set("index_ns_per_miss", index_ns)
        .Set("scan_ns_per_miss", scan_ns)
        .Set("scan_over_index_speedup",
             index_seconds > 0.0 ? scan_seconds / index_seconds : 0.0)
        .Set("churn_epochs", churn_epochs)
        .Set("reranked_rows_per_epoch", reranked_per_epoch)
        .Set("topk_index_served", stats.topk_index_served)
        .Set("topk_index_fallbacks", stats.topk_index_fallbacks);
  }

  if (!config.json_path.empty()) {
    INCSR_CHECK(bench::WriteJsonFile(config.json_path, root),
                "failed to write %s", config.json_path.c_str());
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  return 0;
}
