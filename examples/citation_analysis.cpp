// Citation analysis on an evolving DBLP-like corpus: replay yearly
// snapshots, keep all-pairs SimRank exact with Inc-SR while each year's
// citations arrive, and compare against recomputing from scratch — the
// exact scenario that motivates the paper ("5-10% of links change per
// week; recomputing all similarities from scratch is wasteful").
//
//   $ ./build/examples/citation_analysis [scale]       (default 0.02)
#include <cstdio>
#include <cstdlib>

#include "incsr/incsr.h"

int main(int argc, char** argv) {
  using namespace incsr;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  datasets::DatasetOptions data_options;
  data_options.scale = scale;
  auto series = datasets::MakeDataset(datasets::DatasetKind::kDblp,
                                      data_options);
  if (!series.ok()) {
    std::fprintf(stderr, "dataset: %s\n", series.status().ToString().c_str());
    return 1;
  }
  std::printf("DBLP-like corpus: %zu papers, %zu citations over %zu snapshots\n",
              series->num_nodes(), series->stream_size(),
              series->num_snapshots());

  simrank::SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 15;

  // Index the oldest snapshot once (the expensive step)...
  WallTimer init_timer;
  auto index = core::DynamicSimRank::Create(series->GraphAt(0), options);
  if (!index.ok()) {
    std::fprintf(stderr, "init: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("initial batch solve (%zu edges): %.2f s\n\n",
              series->EdgesAt(0), init_timer.ElapsedSeconds());

  // ...then absorb each "year" incrementally.
  for (std::size_t year = 1; year < series->num_snapshots(); ++year) {
    auto delta = series->DeltaBetween(year - 1, year);

    WallTimer inc_timer;
    Status s = index->ApplyBatch(delta);
    if (!s.ok()) {
      std::fprintf(stderr, "update: %s\n", s.ToString().c_str());
      return 1;
    }
    double inc_seconds = inc_timer.ElapsedSeconds();

    WallTimer batch_timer;
    la::DenseMatrix from_scratch =
        simrank::BatchMatrix(series->GraphAt(year), options);
    double batch_seconds = batch_timer.ElapsedSeconds();

    std::printf(
        "year %zu: +%5zu citations | incremental %.3f s | from-scratch %.3f s "
        "| speedup %.1fx\n",
        year, delta.size(), inc_seconds, batch_seconds,
        batch_seconds / (inc_seconds > 0 ? inc_seconds : 1e-9));
  }

  // The similarity index is now current; use it for co-citation analysis.
  std::puts("\nmost similar paper pairs in the final corpus:");
  for (const auto& pair : index->TopKPairs(8)) {
    std::printf("  papers %4d and %4d: s = %.4f\n", pair.a, pair.b,
                pair.score);
  }
  return 0;
}
