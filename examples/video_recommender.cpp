// Related-video recommendation under churn: a YouTube-like related-video
// graph evolves (links appear as videos are uploaded, disappear as lists
// are re-ranked), and a recommender must serve "viewers of X also liked…"
// from SimRank scores that stay exact throughout — without ever paying a
// full recomputation.
//
//   $ ./build/examples/video_recommender [scale]       (default 0.003)
#include <cstdio>
#include <cstdlib>

#include "incsr/incsr.h"

int main(int argc, char** argv) {
  using namespace incsr;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.003;
  datasets::DatasetOptions data_options;
  data_options.scale = scale;
  data_options.num_snapshots = 2;
  auto series =
      datasets::MakeDataset(datasets::DatasetKind::kYouTu, data_options);
  if (!series.ok()) {
    std::fprintf(stderr, "dataset: %s\n", series.status().ToString().c_str());
    return 1;
  }
  graph::DynamicDiGraph g = series->GraphAt(0);
  std::printf("related-video graph: %zu videos, %zu links\n", g.num_nodes(),
              g.num_edges());

  simrank::SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 10;
  auto index = core::DynamicSimRank::Create(std::move(g), options);
  if (!index.ok()) {
    std::fprintf(stderr, "init: %s\n", index.status().ToString().c_str());
    return 1;
  }

  // Pick the most-linked video as our running query.
  graph::NodeId query = 0;
  std::size_t best_degree = 0;
  for (std::size_t v = 0; v < index->graph().num_nodes(); ++v) {
    std::size_t d = index->graph().InDegree(static_cast<graph::NodeId>(v));
    if (d > best_degree) {
      best_degree = d;
      query = static_cast<graph::NodeId>(v);
    }
  }
  std::printf("\nrecommendations for video %d (in-degree %zu):\n", query,
              best_degree);
  for (const auto& rec : index->TopKFor(query, 5)) {
    std::printf("  video %4d  score %.4f\n", rec.b, rec.score);
  }

  // Simulate a day of churn: related-lists re-rank, so links are dropped
  // and added in equal measure; the index absorbs each change exactly.
  Rng rng(99);
  const std::size_t churn = index->graph().num_edges() / 20;  // 5% of links
  auto deletions = graph::SampleDeletions(index->graph(), churn, &rng);
  if (!deletions.ok()) {
    std::fprintf(stderr, "%s\n", deletions.status().ToString().c_str());
    return 1;
  }
  WallTimer timer;
  std::size_t applied = 0;
  core::AffectedAreaStats merged;
  for (const auto& update : deletions.value()) {
    if (!index->ApplyUpdate(update).ok()) continue;
    merged.Merge(index->last_update_stats());
    ++applied;
  }
  auto insertions = graph::SampleInsertions(index->graph(), churn, &rng);
  if (!insertions.ok()) {
    std::fprintf(stderr, "%s\n", insertions.status().ToString().c_str());
    return 1;
  }
  for (const auto& update : insertions.value()) {
    if (!index->ApplyUpdate(update).ok()) continue;
    merged.Merge(index->last_update_stats());
    ++applied;
  }
  std::printf(
      "\nabsorbed %zu link changes in %.2f s (%.2f ms/update, "
      "avg %.1f%% of pairs pruned per update)\n",
      applied, timer.ElapsedSeconds(),
      1e3 * timer.ElapsedSeconds() / static_cast<double>(applied),
      100.0 * merged.PrunedFraction());

  std::printf("\nrecommendations for video %d after churn:\n", query);
  for (const auto& rec : index->TopKFor(query, 5)) {
    std::printf("  video %4d  score %.4f\n", rec.b, rec.score);
  }
  return 0;
}
