// Link prediction on an evolving related-item graph — one of the
// applications the paper's introduction motivates. Train on the graph at
// time t, score candidate pairs by SimRank, and check how often the
// top-scored candidates are the links that actually appear by time t+1.
// The incremental index makes the "retrain" between snapshots a stream of
// cheap unit updates instead of a recomputation.
//
// (A citation graph would be the wrong testbed here: its future edges
// originate at papers that do not exist at training time, whose SimRank
// is necessarily zero. Related-item graphs grow links between existing
// nodes, which is the regime where similarity-based prediction applies.)
//
//   $ ./build/examples/link_prediction [scale]          (default 0.004)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "incsr/incsr.h"

int main(int argc, char** argv) {
  using namespace incsr;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.004;
  datasets::DatasetOptions data_options;
  data_options.scale = scale;
  data_options.base_fraction = 0.8;
  auto series =
      datasets::MakeDataset(datasets::DatasetKind::kYouTu, data_options);
  if (!series.ok()) {
    std::fprintf(stderr, "dataset: %s\n", series.status().ToString().c_str());
    return 1;
  }
  const std::size_t last = series->num_snapshots() - 1;
  graph::DynamicDiGraph past = series->GraphAt(0);
  graph::DynamicDiGraph future = series->GraphAt(last);

  // Candidates: held-out future links whose endpoints are both already
  // active at training time (prediction is only meaningful for them).
  auto active = [&](graph::NodeId v) {
    return past.InDegree(v) + past.OutDegree(v) > 0;
  };
  std::vector<graph::EdgeUpdate> positives;
  for (const auto& u : series->DeltaBetween(0, last)) {
    if (active(u.src) && active(u.dst)) positives.push_back(u);
  }
  std::printf("train graph: %zu nodes / %zu edges; %zu predictable future links\n",
              past.num_nodes(), past.num_edges(), positives.size());

  simrank::SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 10;
  auto index = core::DynamicSimRank::Create(past, options);
  if (!index.ok()) {
    std::fprintf(stderr, "init: %s\n", index.status().ToString().c_str());
    return 1;
  }

  // Equal number of negatives: non-edges (now and in the future) between
  // active nodes.
  Rng rng(7);
  std::vector<graph::EdgeUpdate> negatives;
  while (negatives.size() < positives.size()) {
    auto sample = graph::SampleInsertions(future, 1, &rng);
    if (!sample.ok()) break;
    const auto& u = sample.value()[0];
    if (active(u.src) && active(u.dst)) negatives.push_back(u);
  }

  struct Candidate {
    double score;
    bool is_real;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(positives.size() + negatives.size());
  for (const auto& u : positives) {
    candidates.push_back({index->Score(u.src, u.dst), true});
  }
  for (const auto& u : negatives) {
    candidates.push_back({index->Score(u.src, u.dst), false});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.score > b.score;
                   });
  const std::size_t k = positives.size();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < k && i < candidates.size(); ++i) {
    hits += candidates[i].is_real ? 1 : 0;
  }
  std::printf(
      "precision@%zu of SimRank link prediction: %.3f (random guess: 0.500)\n",
      k, static_cast<double>(hits) / static_cast<double>(k));

  // Roll the index forward to the future snapshot incrementally; the next
  // prediction cycle starts from exact, current scores.
  WallTimer timer;
  Status s = index->ApplyBatch(series->DeltaBetween(0, last));
  if (!s.ok()) {
    std::fprintf(stderr, "roll-forward: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("rolled the index forward by %zu updates in %.2f s\n",
              series->DeltaBetween(0, last).size(), timer.ElapsedSeconds());
  std::puts("top pairs after roll-forward:");
  for (const auto& pair : index->TopKPairs(3)) {
    std::printf("  (%d, %d) = %.4f\n", pair.a, pair.b, pair.score);
  }
  return 0;
}
