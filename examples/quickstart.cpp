// Quickstart: build a small citation graph, compute all-pairs SimRank,
// then keep the scores exact while edges arrive and disappear — the core
// DynamicSimRank workflow in ~60 lines.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "incsr/incsr.h"

int main() {
  using namespace incsr;

  // A 10-paper citation graph. Edge (u, v) means "paper u cites paper v".
  graph::DynamicDiGraph citations(10);
  const std::pair<int, int> edges[] = {{2, 0}, {3, 0}, {3, 1}, {4, 1},
                                       {5, 2}, {5, 3}, {6, 3}, {6, 4},
                                       {7, 5}, {7, 6}, {8, 6}, {9, 7}};
  for (auto [u, v] : edges) {
    Status s = citations.AddEdge(u, v);
    if (!s.ok()) {
      std::fprintf(stderr, "AddEdge failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // Build the incremental index: one batch solve, then cheap updates.
  simrank::SimRankOptions options;
  options.damping = 0.6;   // the paper's experimental setting
  options.iterations = 15; // accuracy C^(K+1) ≈ 5e-4
  auto index = core::DynamicSimRank::Create(citations, options);
  if (!index.ok()) {
    std::fprintf(stderr, "Create failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  std::puts("Top 5 most similar paper pairs (initial graph):");
  for (const auto& pair : index->TopKPairs(5)) {
    std::printf("  s(%d, %d) = %.4f\n", pair.a, pair.b, pair.score);
  }

  // A new survey appears and is cited by papers 2 and 3: two unit
  // insertions, each absorbed incrementally in O(K(nd + |AFF|)) — no
  // recomputation from scratch. (SimRank flows along IN-links, so being
  // co-cited with papers 0 and 1 makes the survey similar to them.)
  graph::NodeId fresh = index->AddNode();
  (void)index->InsertEdge(2, fresh);
  (void)index->InsertEdge(3, fresh);
  std::printf("\nAfter papers 2 and 3 citing new paper %d:\n", fresh);
  for (const auto& pair : index->TopKFor(fresh, 3)) {
    std::printf("  s(%d, %d) = %.4f\n", pair.a, pair.b, pair.score);
  }

  // A retraction: delete a citation; scores stay exact.
  (void)index->DeleteEdge(7, 5);
  std::puts("\nAfter retracting citation 7 -> 5, top pairs:");
  for (const auto& pair : index->TopKPairs(5)) {
    std::printf("  s(%d, %d) = %.4f\n", pair.a, pair.b, pair.score);
  }

  // How much of the similarity matrix did the last update actually touch?
  const core::AffectedAreaStats& stats = index->last_update_stats();
  std::printf("\nLast update pruned %.1f%% of node-pairs (|AFF| = %.1f of %zu^2)\n",
              100.0 * stats.PrunedFraction(), stats.AffectedArea(),
              stats.num_nodes);
  return 0;
}
