// Sparse matrix types. CsrMatrix is the immutable compressed-sparse-row
// snapshot used by the batch SimRank iterations (row-axpy SpMM kernels);
// DynamicRowMatrix is the mutable per-row representation that backs the
// backward transition matrix Q while edges churn — a unit edge update
// touches exactly one row (Theorem 1 of the paper), so row-granular
// mutation is O(d_j).
#ifndef INCSR_LA_SPARSE_MATRIX_H_
#define INCSR_LA_SPARSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "la/dense_matrix.h"
#include "la/vector.h"

namespace incsr::la {

/// A (column, value) sparse entry.
struct SparseEntry {
  std::int32_t col;
  double value;

  bool operator==(const SparseEntry&) const = default;
};

using TrackedEntries = std::vector<SparseEntry, TrackedAllocator<SparseEntry>>;

/// Immutable compressed-sparse-row matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from (row, col, value) triplets; duplicates are summed.
  static CsrMatrix FromTriplets(
      std::size_t rows, std::size_t cols,
      std::vector<std::tuple<std::int32_t, std::int32_t, double>> triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return entries_.size(); }

  /// Entries of row i, sorted by column.
  std::span<const SparseEntry> RowEntries(std::size_t i) const {
    INCSR_DCHECK(i < rows_, "row %zu out of %zu", i, rows_);
    return {entries_.data() + row_ptr_[i],
            entries_.data() + row_ptr_[i + 1]};
  }

  /// Value at (i, j); 0.0 when not stored. O(log nnz(row)).
  double At(std::size_t i, std::size_t j) const;

  /// y = A·x.
  Vector Multiply(const Vector& x) const;
  /// y = Aᵀ·x.
  Vector MultiplyTranspose(const Vector& x) const;

  /// C = A·B with B dense: row-axpy kernel, O(nnz · B.cols()).
  DenseMatrix MultiplyDense(const DenseMatrix& b) const;

  /// C = Aᵀ·B with B dense: scatter kernel, O(nnz · B.cols()).
  DenseMatrix MultiplyTransposeDense(const DenseMatrix& b) const;

  /// Densifies (small matrices / tests).
  DenseMatrix ToDense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int64_t, TrackedAllocator<std::int64_t>> row_ptr_;
  TrackedEntries entries_;
};

/// Mutable row-granular sparse matrix: each row is an independently
/// replaceable sorted array of (col, value) entries.
class DynamicRowMatrix {
 public:
  DynamicRowMatrix() = default;
  /// Empty matrix with the given shape.
  DynamicRowMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), row_data_(rows) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Total stored entries (sum over rows).
  std::size_t nnz() const;

  /// Entries of row i, sorted by column.
  std::span<const SparseEntry> RowEntries(std::size_t i) const {
    INCSR_DCHECK(i < rows_, "row %zu out of %zu", i, rows_);
    return {row_data_[i].data(), row_data_[i].size()};
  }

  /// Replaces row i. Entries must be sorted by column, columns unique and
  /// in range.
  void SetRow(std::size_t i, TrackedEntries entries);
  /// Removes all entries of row i.
  void ClearRow(std::size_t i);

  /// Appends empty rows and/or widens the column space. Never shrinks.
  void Grow(std::size_t rows, std::size_t cols);

  /// Value at (i, j); 0.0 when not stored. O(log nnz(row)).
  double At(std::size_t i, std::size_t j) const;

  /// y = A·x.
  Vector Multiply(const Vector& x) const;
  /// y = Aᵀ·x.
  Vector MultiplyTranspose(const Vector& x) const;
  /// Inner product of row i with a dense vector.
  double RowDot(std::size_t i, const Vector& x) const;
  /// Copies row i into a SparseVector of dimension cols().
  SparseVector RowAsSparseVector(std::size_t i) const;

  /// Immutable CSR snapshot of the current contents.
  CsrMatrix ToCsr() const;
  /// Densifies (small matrices / tests).
  DenseMatrix ToDense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<TrackedEntries, TrackedAllocator<TrackedEntries>> row_data_;
};

}  // namespace incsr::la

#endif  // INCSR_LA_SPARSE_MATRIX_H_
