// Row-major dense matrix with the operations the SimRank algorithms need:
// GEMM/GEMV, transpose, scaled addition, norms, and structural queries.
// Kernels are plain loops in i-k-j order so the compiler vectorizes the
// inner axpy; at the problem sizes of this library (n up to a few thousand)
// this stays within ~2-3x of a tuned BLAS, which is ample for reproducing
// the paper's relative performance shapes.
#ifndef INCSR_LA_DENSE_MATRIX_H_
#define INCSR_LA_DENSE_MATRIX_H_

#include <cstddef>
#include <string>

#include "la/row_writer.h"
#include "la/vector.h"

namespace incsr::la {

/// Dense row-major matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  /// Zero matrix with the given shape.
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// n x n identity.
  static DenseMatrix Identity(std::size_t n);
  /// Diagonal matrix from a vector.
  static DenseMatrix Diagonal(const Vector& diag);
  /// Builds from nested initializer lists (tests and examples). All rows
  /// must have equal length.
  static DenseMatrix FromRows(
      std::initializer_list<std::initializer_list<double>> rows);
  /// Outer product x · yᵀ.
  static DenseMatrix OuterProduct(const Vector& x, const Vector& y);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double operator()(std::size_t i, std::size_t j) const {
    INCSR_DCHECK(i < rows_ && j < cols_, "index (%zu,%zu) out of (%zu,%zu)", i,
                 j, rows_, cols_);
    return data_[i * cols_ + j];
  }
  double& operator()(std::size_t i, std::size_t j) {
    INCSR_DCHECK(i < rows_ && j < cols_, "index (%zu,%zu) out of (%zu,%zu)", i,
                 j, rows_, cols_);
    return data_[i * cols_ + j];
  }

  /// Raw pointer to row i (contiguous, cols() entries).
  const double* RowPtr(std::size_t i) const { return &data_[i * cols_]; }
  double* RowPtr(std::size_t i) { return &data_[i * cols_]; }
  /// Legacy write entry point shared with la::ScoreStore (which
  /// copy-on-writes here); for a plain dense matrix it is just the mutable
  /// row pointer.
  double* MutableRowPtr(std::size_t i) { return RowPtr(i); }
  /// Representation-aware write session shared with la::ScoreStore (the
  /// kernels' write contract): a plain dense matrix always opens a
  /// dense-direct session on the row, and commit is a no-op.
  void BeginWriteRow(std::size_t i, RowWriter* w) {
    w->BeginDense(i, RowPtr(i));
  }
  void CommitWriteRow(RowWriter* w) { w->Finish(); }
  /// Representation-agnostic read entry point shared with la::ScoreStore
  /// (which gathers sparse rows into *scratch); every row of a plain dense
  /// matrix is contiguous, so the scratch is never used.
  const double* ReadRow(std::size_t i, Vector* /*scratch*/) const {
    return RowPtr(i);
  }

  /// Copies row i into a Vector.
  Vector Row(std::size_t i) const;
  /// Copies column j into a Vector.
  Vector Col(std::size_t j) const;
  /// Overwrites row i.
  void SetRow(std::size_t i, const Vector& row);
  /// Overwrites column j.
  void SetCol(std::size_t j, const Vector& col);

  /// Sets every entry to zero.
  void SetZero();

  /// this += alpha * other (same shape).
  void AddScaled(double alpha, const DenseMatrix& other);
  /// this *= alpha.
  void Scale(double alpha);
  /// this += alpha * I (square only).
  void AddScaledIdentity(double alpha);
  /// this += alpha * x · yᵀ (rank-one update). With num_threads > 1 the
  /// rows stream in parallel on the shared pool; rows are disjoint and
  /// each keeps the serial accumulation order, so the result is bitwise
  /// identical at any thread count.
  void AddOuterProduct(double alpha, const Vector& x, const Vector& y,
                       std::size_t num_threads = 1);

  /// Matrix-vector product A·x.
  Vector Multiply(const Vector& x) const;
  /// Transposed matrix-vector product Aᵀ·x.
  Vector MultiplyTranspose(const Vector& x) const;

  /// Returns Aᵀ.
  DenseMatrix Transpose() const;

  /// Largest absolute entry.
  double MaxAbs() const;
  /// Frobenius norm.
  double FrobeniusNorm() const;
  /// Number of entries with |value| > eps.
  std::size_t CountNonZero(double eps = 0.0) const;
  /// True if the matrix is square and symmetric to within eps.
  bool IsSymmetric(double eps = 0.0) const;

  /// Renders small matrices for debugging / golden tests.
  std::string ToString(int precision = 4) const;

  bool operator==(const DenseMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  TrackedDoubles data_;
};

/// C = A · B.
DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b);
/// C = A · Bᵀ.
DenseMatrix MultiplyTransposeB(const DenseMatrix& a, const DenseMatrix& b);
/// C = Aᵀ · B.
DenseMatrix MultiplyTransposeA(const DenseMatrix& a, const DenseMatrix& b);

/// Largest |a - b| entry over two equally shaped matrices.
double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b);

/// True iff the matrices have the same shape and byte-identical payloads
/// (memcmp — distinguishes ±0.0 and compares NaNs by representation).
/// The determinism tests and benches use this to enforce the parallel
/// kernels' bitwise-reproducibility contract.
bool BitwiseEqual(const DenseMatrix& a, const DenseMatrix& b);

}  // namespace incsr::la

#endif  // INCSR_LA_DENSE_MATRIX_H_
