// Randomized truncated SVD (Halko-Martinsson-Tropp) for sparse matrices.
// The Inc-SVD baseline needs only the top-r singular triplets of the n×n
// transition matrix (the paper runs it at r = 5); a dense Jacobi SVD is
// O(n³) and dominates everything at bench scale, whereas the randomized
// range finder costs O(nnz·(r+p)·q + n·(r+p)²) — seconds instead of hours.
#ifndef INCSR_LA_RANDOMIZED_SVD_H_
#define INCSR_LA_RANDOMIZED_SVD_H_

#include <cstdint>

#include "common/status.h"
#include "la/sparse_matrix.h"
#include "la/svd.h"

namespace incsr::la {

/// Tuning for the randomized range finder.
struct RandomizedSvdOptions {
  /// Number of singular triplets to return.
  std::size_t rank = 5;
  /// Extra sketch columns beyond rank (trimmed after the small SVD).
  std::size_t oversampling = 8;
  /// Power-iteration count; 2 suffices for the fast-decaying spectra of
  /// graph transition matrices.
  int power_iterations = 2;
  std::uint64_t seed = 7;
};

/// Top-`rank` thin SVD of a sparse matrix.
Result<SvdResult> ComputeRandomizedSvd(const CsrMatrix& a,
                                       const RandomizedSvdOptions& options = {});

}  // namespace incsr::la

#endif  // INCSR_LA_RANDOMIZED_SVD_H_
