#include "la/lu.h"

#include <cmath>

namespace incsr::la {

Result<LuFactorization> LuFactorization::Compute(const DenseMatrix& a) {
  if (a.rows() != a.cols() || a.empty()) {
    return Status::InvalidArgument("LU requires a non-empty square matrix");
  }
  const std::size_t n = a.rows();
  LuFactorization f;
  f.lu_ = a;
  f.perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) f.perm_[i] = static_cast<std::int32_t>(i);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    std::size_t pivot = k;
    double best = std::fabs(f.lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      double cand = std::fabs(f.lu_(i, k));
      if (cand > best) {
        best = cand;
        pivot = i;
      }
    }
    if (best == 0.0) {
      return Status::FailedPrecondition("LU: matrix is singular");
    }
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(f.lu_(k, j), f.lu_(pivot, j));
      }
      std::swap(f.perm_[k], f.perm_[pivot]);
      f.permutation_sign_ = -f.permutation_sign_;
    }
    const double inv_pivot = 1.0 / f.lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      double factor = f.lu_(i, k) * inv_pivot;
      f.lu_(i, k) = factor;
      if (factor == 0.0) continue;
      double* __restrict irow = f.lu_.RowPtr(i);
      const double* __restrict krow = f.lu_.RowPtr(k);
      for (std::size_t j = k + 1; j < n; ++j) irow[j] -= factor * krow[j];
    }
  }
  return f;
}

Result<Vector> LuFactorization::Solve(const Vector& b) const {
  const std::size_t n = dim();
  if (b.size() != n) {
    return Status::InvalidArgument("LU solve: dimension mismatch");
  }
  Vector x(n);
  // Forward substitution with permuted rhs (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[static_cast<std::size_t>(perm_[i])];
    const double* row = lu_.RowPtr(i);
    for (std::size_t j = 0; j < i; ++j) acc -= row[j] * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    const double* row = lu_.RowPtr(ii);
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= row[j] * x[j];
    x[ii] = acc / row[ii];
  }
  return x;
}

Result<DenseMatrix> LuFactorization::SolveMatrix(const DenseMatrix& b) const {
  if (b.rows() != dim()) {
    return Status::InvalidArgument("LU SolveMatrix: dimension mismatch");
  }
  DenseMatrix x(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    Result<Vector> col = Solve(b.Col(j));
    if (!col.ok()) return col.status();
    x.SetCol(j, col.value());
  }
  return x;
}

double LuFactorization::Determinant() const {
  double det = permutation_sign_;
  for (std::size_t i = 0; i < dim(); ++i) det *= lu_(i, i);
  return det;
}

}  // namespace incsr::la
