#include "la/kron.h"

namespace incsr::la {

DenseMatrix Kron(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t ia = 0; ia < a.rows(); ++ia) {
    for (std::size_t ja = 0; ja < a.cols(); ++ja) {
      double f = a(ia, ja);
      if (f == 0.0) continue;
      for (std::size_t ib = 0; ib < b.rows(); ++ib) {
        double* out_row = out.RowPtr(ia * b.rows() + ib);
        const double* b_row = b.RowPtr(ib);
        double* dst = out_row + ja * b.cols();
        for (std::size_t jb = 0; jb < b.cols(); ++jb) {
          dst[jb] = f * b_row[jb];
        }
      }
    }
  }
  return out;
}

Vector Vec(const DenseMatrix& a) {
  Vector out(a.rows() * a.cols());
  std::size_t k = 0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) out[k++] = a(i, j);
  }
  return out;
}

DenseMatrix Unvec(const Vector& v, std::size_t rows, std::size_t cols) {
  INCSR_CHECK(v.size() == rows * cols, "Unvec size mismatch: %zu vs %zu*%zu",
              v.size(), rows, cols);
  DenseMatrix out(rows, cols);
  std::size_t k = 0;
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t i = 0; i < rows; ++i) out(i, j) = v[k++];
  }
  return out;
}

}  // namespace incsr::la
