#include "la/sparse_matrix.h"

#include <algorithm>
#include <tuple>

namespace incsr::la {

CsrMatrix CsrMatrix::FromTriplets(
    std::size_t rows, std::size_t cols,
    std::vector<std::tuple<std::int32_t, std::int32_t, double>> triplets) {
  std::sort(triplets.begin(), triplets.end());
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.entries_.reserve(triplets.size());
  std::size_t k = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    m.row_ptr_[i] = static_cast<std::int64_t>(m.entries_.size());
    while (k < triplets.size() &&
           static_cast<std::size_t>(std::get<0>(triplets[k])) == i) {
      std::int32_t col = std::get<1>(triplets[k]);
      double value = std::get<2>(triplets[k]);
      INCSR_CHECK(col >= 0 && static_cast<std::size_t>(col) < cols,
                  "triplet column %d out of range %zu", col, cols);
      // Coalesce duplicates.
      while (k + 1 < triplets.size() &&
             static_cast<std::size_t>(std::get<0>(triplets[k + 1])) == i &&
             std::get<1>(triplets[k + 1]) == col) {
        ++k;
        value += std::get<2>(triplets[k]);
      }
      m.entries_.push_back({col, value});
      ++k;
    }
  }
  m.row_ptr_[rows] = static_cast<std::int64_t>(m.entries_.size());
  INCSR_CHECK(k == triplets.size(), "triplet row index out of range");
  return m;
}

double CsrMatrix::At(std::size_t i, std::size_t j) const {
  auto row = RowEntries(i);
  auto it = std::lower_bound(
      row.begin(), row.end(), static_cast<std::int32_t>(j),
      [](const SparseEntry& e, std::int32_t col) { return e.col < col; });
  if (it == row.end() || static_cast<std::size_t>(it->col) != j) return 0.0;
  return it->value;
}

Vector CsrMatrix::Multiply(const Vector& x) const {
  INCSR_CHECK(x.size() == cols_, "CsrMatrix::Multiply dimension mismatch");
  Vector y(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (const SparseEntry& e : RowEntries(i)) {
      acc += e.value * x[static_cast<std::size_t>(e.col)];
    }
    y[i] = acc;
  }
  return y;
}

Vector CsrMatrix::MultiplyTranspose(const Vector& x) const {
  INCSR_CHECK(x.size() == rows_,
              "CsrMatrix::MultiplyTranspose dimension mismatch");
  Vector y(cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double xi = x[i];
    if (xi == 0.0) continue;
    for (const SparseEntry& e : RowEntries(i)) {
      y[static_cast<std::size_t>(e.col)] += xi * e.value;
    }
  }
  return y;
}

DenseMatrix CsrMatrix::MultiplyDense(const DenseMatrix& b) const {
  INCSR_CHECK(b.rows() == cols_, "MultiplyDense shape mismatch");
  DenseMatrix c(rows_, b.cols());
  const std::size_t width = b.cols();
  for (std::size_t i = 0; i < rows_; ++i) {
    double* __restrict crow = c.RowPtr(i);
    for (const SparseEntry& e : RowEntries(i)) {
      const double* __restrict brow = b.RowPtr(static_cast<std::size_t>(e.col));
      const double w = e.value;
      for (std::size_t j = 0; j < width; ++j) crow[j] += w * brow[j];
    }
  }
  return c;
}

DenseMatrix CsrMatrix::MultiplyTransposeDense(const DenseMatrix& b) const {
  INCSR_CHECK(b.rows() == rows_, "MultiplyTransposeDense shape mismatch");
  DenseMatrix c(cols_, b.cols());
  const std::size_t width = b.cols();
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* __restrict brow = b.RowPtr(i);
    for (const SparseEntry& e : RowEntries(i)) {
      double* __restrict crow = c.RowPtr(static_cast<std::size_t>(e.col));
      const double w = e.value;
      for (std::size_t j = 0; j < width; ++j) crow[j] += w * brow[j];
    }
  }
  return c;
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix m(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (const SparseEntry& e : RowEntries(i)) {
      m(i, static_cast<std::size_t>(e.col)) = e.value;
    }
  }
  return m;
}

std::size_t DynamicRowMatrix::nnz() const {
  std::size_t total = 0;
  for (const auto& row : row_data_) total += row.size();
  return total;
}

void DynamicRowMatrix::SetRow(std::size_t i, TrackedEntries entries) {
  INCSR_CHECK(i < rows_, "SetRow row %zu out of %zu", i, rows_);
  for (std::size_t k = 0; k < entries.size(); ++k) {
    INCSR_CHECK(entries[k].col >= 0 &&
                    static_cast<std::size_t>(entries[k].col) < cols_,
                "SetRow column %d out of range %zu", entries[k].col, cols_);
    if (k > 0) {
      INCSR_CHECK(entries[k - 1].col < entries[k].col,
                  "SetRow entries must be sorted by unique column");
    }
  }
  row_data_[i] = std::move(entries);
}

void DynamicRowMatrix::ClearRow(std::size_t i) {
  INCSR_CHECK(i < rows_, "ClearRow row %zu out of %zu", i, rows_);
  row_data_[i].clear();
}

void DynamicRowMatrix::Grow(std::size_t rows, std::size_t cols) {
  INCSR_CHECK(rows >= rows_ && cols >= cols_, "Grow never shrinks");
  rows_ = rows;
  cols_ = cols;
  row_data_.resize(rows);
}

double DynamicRowMatrix::At(std::size_t i, std::size_t j) const {
  auto row = RowEntries(i);
  auto it = std::lower_bound(
      row.begin(), row.end(), static_cast<std::int32_t>(j),
      [](const SparseEntry& e, std::int32_t col) { return e.col < col; });
  if (it == row.end() || static_cast<std::size_t>(it->col) != j) return 0.0;
  return it->value;
}

Vector DynamicRowMatrix::Multiply(const Vector& x) const {
  INCSR_CHECK(x.size() == cols_, "DynamicRowMatrix::Multiply mismatch");
  Vector y(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (const SparseEntry& e : row_data_[i]) {
      acc += e.value * x[static_cast<std::size_t>(e.col)];
    }
    y[i] = acc;
  }
  return y;
}

Vector DynamicRowMatrix::MultiplyTranspose(const Vector& x) const {
  INCSR_CHECK(x.size() == rows_,
              "DynamicRowMatrix::MultiplyTranspose mismatch");
  Vector y(cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double xi = x[i];
    if (xi == 0.0) continue;
    for (const SparseEntry& e : row_data_[i]) {
      y[static_cast<std::size_t>(e.col)] += xi * e.value;
    }
  }
  return y;
}

double DynamicRowMatrix::RowDot(std::size_t i, const Vector& x) const {
  INCSR_CHECK(i < rows_ && x.size() == cols_, "RowDot shape mismatch");
  double acc = 0.0;
  for (const SparseEntry& e : row_data_[i]) {
    acc += e.value * x[static_cast<std::size_t>(e.col)];
  }
  return acc;
}

SparseVector DynamicRowMatrix::RowAsSparseVector(std::size_t i) const {
  INCSR_CHECK(i < rows_, "RowAsSparseVector row out of range");
  SparseVector out(cols_);
  for (const SparseEntry& e : row_data_[i]) out.Append(e.col, e.value);
  return out;
}

CsrMatrix DynamicRowMatrix::ToCsr() const {
  std::vector<std::tuple<std::int32_t, std::int32_t, double>> triplets;
  triplets.reserve(nnz());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (const SparseEntry& e : row_data_[i]) {
      triplets.emplace_back(static_cast<std::int32_t>(i), e.col, e.value);
    }
  }
  return CsrMatrix::FromTriplets(rows_, cols_, std::move(triplets));
}

DenseMatrix DynamicRowMatrix::ToDense() const {
  DenseMatrix m(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (const SparseEntry& e : row_data_[i]) {
      m(i, static_cast<std::size_t>(e.col)) = e.value;
    }
  }
  return m;
}

}  // namespace incsr::la
