#include "la/sylvester.h"

#include "la/kron.h"
#include "la/lu.h"

namespace incsr::la {

Result<DenseMatrix> SolveSylvesterFixedPoint(double c, const DenseMatrix& a,
                                             const DenseMatrix& b,
                                             const DenseMatrix& c0,
                                             const SylvesterOptions& options) {
  if (a.rows() != a.cols() || b.rows() != b.cols()) {
    return Status::InvalidArgument("Sylvester: A and B must be square");
  }
  if (c0.rows() != a.rows() || c0.cols() != b.rows()) {
    return Status::InvalidArgument("Sylvester: C0 shape mismatch");
  }
  DenseMatrix x = c0;
  for (int k = 0; k < options.iterations; ++k) {
    // X ← c·A·X·Bᵀ + C0
    DenseMatrix ax = Multiply(a, x);
    DenseMatrix next = MultiplyTransposeB(ax, b);
    next.Scale(c);
    next.AddScaled(1.0, c0);
    double delta = MaxAbsDiff(next, x);
    x = std::move(next);
    if (x.MaxAbs() > options.divergence_bound) {
      return Status::FailedPrecondition(
          "Sylvester fixed-point iteration diverged");
    }
    if (options.tolerance > 0.0 && delta < options.tolerance) break;
  }
  return x;
}

Result<DenseMatrix> SolveSylvesterKron(double c, const DenseMatrix& a,
                                       const DenseMatrix& b,
                                       const DenseMatrix& c0) {
  if (a.rows() != a.cols() || b.rows() != b.cols()) {
    return Status::InvalidArgument("Sylvester: A and B must be square");
  }
  if (c0.rows() != a.rows() || c0.cols() != b.rows()) {
    return Status::InvalidArgument("Sylvester: C0 shape mismatch");
  }
  // vec(X) = c·vec(A·X·Bᵀ) + vec(C0) = c·(B ⊗ A)·vec(X) + vec(C0).
  DenseMatrix system = Kron(b, a);
  system.Scale(-c);
  system.AddScaledIdentity(1.0);
  Result<LuFactorization> lu = LuFactorization::Compute(system);
  if (!lu.ok()) return lu.status();
  Result<Vector> x = lu->Solve(Vec(c0));
  if (!x.ok()) return x.status();
  return Unvec(x.value(), c0.rows(), c0.cols());
}

}  // namespace incsr::la
