#include "la/row_block.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace incsr::la {

double RowBlock::SparseAt(std::size_t col) const {
  INCSR_DCHECK(is_sparse(), "SparseAt on a dense block");
  const auto it = std::lower_bound(sparse_cols.begin(), sparse_cols.end(),
                                   static_cast<std::int32_t>(col));
  if (it == sparse_cols.end() || *it != static_cast<std::int32_t>(col)) {
    return 0.0;
  }
  return sparse_vals[static_cast<std::size_t>(it - sparse_cols.begin())];
}

void RowBlock::GatherInto(std::size_t num_cols, double* dst) const {
  INCSR_DCHECK(is_sparse(), "GatherInto on a dense block");
  std::fill(dst, dst + num_cols, 0.0);
  for (std::size_t k = 0; k < sparse_cols.size(); ++k) {
    dst[static_cast<std::size_t>(sparse_cols[k])] = sparse_vals[k];
  }
}

SparsifyResult SparsifyDenseRow(const double* row, std::size_t num_cols,
                                double epsilon, double max_density,
                                std::span<const std::int32_t> keep_cols) {
  SparsifyResult result;
  // The retained budget: one past it and the row is not worth compressing
  // (an index+value pair costs 12 bytes against 8 dense).
  const std::size_t max_nnz = static_cast<std::size_t>(
      max_density * static_cast<double>(num_cols));

  // keep_cols arrive in score order from the top-k index; membership tests
  // need them sorted.
  std::vector<std::int32_t> keep(keep_cols.begin(), keep_cols.end());
  std::sort(keep.begin(), keep.end());

  auto block = std::make_shared<RowBlock>();
  block->kind = RowBlock::Kind::kSparse;
  auto keep_it = keep.begin();
  for (std::size_t j = 0; j < num_cols; ++j) {
    const double v = row[j];
    bool kept_by_index = false;
    while (keep_it != keep.end() &&
           *keep_it < static_cast<std::int32_t>(j)) {
      ++keep_it;
    }
    if (keep_it != keep.end() && *keep_it == static_cast<std::int32_t>(j)) {
      kept_by_index = true;
    }
    if (!kept_by_index) {
      if (IsPositiveZero(v)) continue;  // lossless drop
      if (std::abs(v) < epsilon) {      // lossy drop, bounded by epsilon
        ++result.dropped;
        result.max_dropped_abs = std::max(result.max_dropped_abs, std::abs(v));
        continue;
      }
    }
    if (block->sparse_cols.size() >= max_nnz) return SparsifyResult{};
    block->sparse_cols.push_back(static_cast<std::int32_t>(j));
    block->sparse_vals.push_back(v);
  }
  result.block = std::move(block);
  return result;
}

std::shared_ptr<const RowBlock> DensifyBlock(const RowBlock& block,
                                             std::size_t num_cols) {
  auto dense = std::make_shared<RowBlock>();
  dense->kind = RowBlock::Kind::kDense;
  dense->dense.resize(num_cols);
  block.GatherInto(num_cols, dense->dense.data());
  return dense;
}

std::shared_ptr<const RowBlock> MakeSingleEntryRow(std::size_t col,
                                                   double value) {
  auto block = std::make_shared<RowBlock>();
  block->kind = RowBlock::Kind::kSparse;
  block->sparse_cols.push_back(static_cast<std::int32_t>(col));
  block->sparse_vals.push_back(value);
  return block;
}

}  // namespace incsr::la
