// Dense and sparse vector types used by every numeric kernel in incsr.
// Storage goes through TrackedAllocator so the Fig. 3 memory experiment can
// measure intermediate working sets.
#ifndef INCSR_LA_VECTOR_H_
#define INCSR_LA_VECTOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/memory.h"

namespace incsr::la {

/// Storage alias for tracked double buffers.
using TrackedDoubles = std::vector<double, TrackedAllocator<double>>;
/// Storage alias for tracked index buffers.
using TrackedIndices = std::vector<std::int32_t, TrackedAllocator<std::int32_t>>;

/// Dense column vector of doubles.
class Vector {
 public:
  Vector() = default;
  /// Zero vector of dimension n.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}
  /// Vector with all entries set to `value`.
  Vector(std::size_t n, double value) : data_(n, value) {}
  /// From an initializer list (tests and examples).
  Vector(std::initializer_list<double> init) : data_(init.begin(), init.end()) {}

  /// Unit basis vector e_i of dimension n.
  static Vector Basis(std::size_t n, std::size_t i);

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator[](std::size_t i) const {
    INCSR_DCHECK(i < data_.size(), "Vector index %zu out of range %zu", i,
                 data_.size());
    return data_[i];
  }
  double& operator[](std::size_t i) {
    INCSR_DCHECK(i < data_.size(), "Vector index %zu out of range %zu", i,
                 data_.size());
    return data_[i];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  /// Resizes to n entries; new entries are zero.
  void Resize(std::size_t n) { data_.resize(n, 0.0); }
  /// Sets every entry to zero without changing the dimension.
  void SetZero();

  /// this += alpha * x. Dimensions must match.
  void Axpy(double alpha, const Vector& x);
  /// this *= alpha.
  void Scale(double alpha);

  /// Euclidean norm.
  double Norm2() const;
  /// Largest absolute entry (0 for the empty vector).
  double MaxAbs() const;
  /// Sum of entries.
  double Sum() const;
  /// Number of entries with |value| > eps.
  std::size_t CountNonZero(double eps = 0.0) const;

  bool operator==(const Vector& other) const { return data_ == other.data_; }

 private:
  TrackedDoubles data_;
};

/// Inner product xᵀ·y. Dimensions must match.
double Dot(const Vector& x, const Vector& y);

/// Largest absolute difference between two equally sized vectors.
double MaxAbsDiff(const Vector& x, const Vector& y);

/// Sparse vector: sorted unique indices with parallel values. Used by the
/// pruned Inc-SR iteration where ξ_k, η_k stay sparse while the affected
/// area is small.
class SparseVector {
 public:
  SparseVector() = default;
  /// Sparse vector of logical dimension n with no stored entries.
  explicit SparseVector(std::size_t n) : dim_(n) {}

  /// Dimension of the ambient space.
  std::size_t dim() const { return dim_; }
  /// Number of stored (structurally nonzero) entries.
  std::size_t nnz() const { return indices_.size(); }

  const TrackedIndices& indices() const { return indices_; }
  const TrackedDoubles& values() const { return values_; }

  /// Appends an entry. Indices must be appended in strictly increasing
  /// order; zero values may be stored (they keep structural information).
  void Append(std::int32_t index, double value);

  /// Removes all stored entries, keeping the dimension.
  void Clear();

  /// Returns the value at `index` (0.0 when not stored). O(log nnz).
  double At(std::int32_t index) const;

  /// Densifies into a full Vector.
  Vector ToDense() const;

  /// Builds from a dense vector keeping entries with |v| > eps.
  static SparseVector FromDense(const Vector& dense, double eps = 0.0);

  /// Inner product with a dense vector.
  double DotDense(const Vector& dense) const;

  /// y += alpha * this, into a dense vector of matching dimension.
  void AxpyInto(double alpha, Vector* y) const;

 private:
  std::size_t dim_ = 0;
  TrackedIndices indices_;
  TrackedDoubles values_;
};

/// Inner product of two sparse vectors (merge join over indices).
double Dot(const SparseVector& x, const SparseVector& y);

}  // namespace incsr::la

#endif  // INCSR_LA_VECTOR_H_
