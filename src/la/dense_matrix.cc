#include "la/dense_matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/scheduler.h"

namespace incsr::la {

DenseMatrix DenseMatrix::Identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::Diagonal(const Vector& diag) {
  DenseMatrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

DenseMatrix DenseMatrix::FromRows(
    std::initializer_list<std::initializer_list<double>> rows) {
  std::size_t r = rows.size();
  std::size_t c = r == 0 ? 0 : rows.begin()->size();
  DenseMatrix m(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    INCSR_CHECK(row.size() == c, "FromRows: ragged row %zu", i);
    std::size_t j = 0;
    for (double v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

DenseMatrix DenseMatrix::OuterProduct(const Vector& x, const Vector& y) {
  DenseMatrix m(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    double xi = x[i];
    if (xi == 0.0) continue;
    double* row = m.RowPtr(i);
    for (std::size_t j = 0; j < y.size(); ++j) row[j] = xi * y[j];
  }
  return m;
}

Vector DenseMatrix::Row(std::size_t i) const {
  INCSR_CHECK(i < rows_, "Row %zu out of %zu", i, rows_);
  Vector out(cols_);
  const double* row = RowPtr(i);
  for (std::size_t j = 0; j < cols_; ++j) out[j] = row[j];
  return out;
}

Vector DenseMatrix::Col(std::size_t j) const {
  INCSR_CHECK(j < cols_, "Col %zu out of %zu", j, cols_);
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

void DenseMatrix::SetRow(std::size_t i, const Vector& row) {
  INCSR_CHECK(i < rows_ && row.size() == cols_, "SetRow shape mismatch");
  double* dst = RowPtr(i);
  for (std::size_t j = 0; j < cols_; ++j) dst[j] = row[j];
}

void DenseMatrix::SetCol(std::size_t j, const Vector& col) {
  INCSR_CHECK(j < cols_ && col.size() == rows_, "SetCol shape mismatch");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = col[i];
}

void DenseMatrix::SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

void DenseMatrix::AddScaled(double alpha, const DenseMatrix& other) {
  INCSR_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "AddScaled shape mismatch");
  const double* __restrict src = other.data_.data();
  double* __restrict dst = data_.data();
  const std::size_t n = data_.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void DenseMatrix::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

void DenseMatrix::AddScaledIdentity(double alpha) {
  INCSR_CHECK(rows_ == cols_, "AddScaledIdentity requires a square matrix");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += alpha;
}

void DenseMatrix::AddOuterProduct(double alpha, const Vector& x,
                                  const Vector& y, std::size_t num_threads) {
  INCSR_CHECK(x.size() == rows_ && y.size() == cols_,
              "AddOuterProduct shape mismatch");
  const double* __restrict yp = y.data();
  // At least ~4096 fused multiply-adds per chunk so short rows batch up;
  // a grain function of the shape only, per the scheduler's determinism
  // rules.
  const std::size_t grain =
      std::max<std::size_t>(1, 4096 / std::max<std::size_t>(cols_, 1));
  Scheduler::Global().ParallelFor(
      0, rows_, grain, num_threads,
      [this, alpha, &x, yp](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const double f = alpha * x[i];
          if (f == 0.0) continue;
          double* __restrict row = RowPtr(i);
          for (std::size_t j = 0; j < cols_; ++j) row[j] += f * yp[j];
        }
      });
}

Vector DenseMatrix::Multiply(const Vector& x) const {
  INCSR_CHECK(x.size() == cols_, "Multiply dimension mismatch");
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += row[j] * x[j];
    out[i] = acc;
  }
  return out;
}

Vector DenseMatrix::MultiplyTranspose(const Vector& x) const {
  INCSR_CHECK(x.size() == rows_, "MultiplyTranspose dimension mismatch");
  Vector out(cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double xi = x[i];
    if (xi == 0.0) continue;
    const double* __restrict row = RowPtr(i);
    double* __restrict op = out.data();
    for (std::size_t j = 0; j < cols_; ++j) op[j] += xi * row[j];
  }
  return out;
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix out(cols_, rows_);
  constexpr std::size_t kBlock = 32;
  for (std::size_t ib = 0; ib < rows_; ib += kBlock) {
    std::size_t imax = std::min(rows_, ib + kBlock);
    for (std::size_t jb = 0; jb < cols_; jb += kBlock) {
      std::size_t jmax = std::min(cols_, jb + kBlock);
      for (std::size_t i = ib; i < imax; ++i) {
        for (std::size_t j = jb; j < jmax; ++j) {
          out(j, i) = (*this)(i, j);
        }
      }
    }
  }
  return out;
}

double DenseMatrix::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

double DenseMatrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

std::size_t DenseMatrix::CountNonZero(double eps) const {
  std::size_t count = 0;
  for (double v : data_) {
    if (std::fabs(v) > eps) ++count;
  }
  return count;
}

bool DenseMatrix::IsSymmetric(double eps) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i + 1; j < cols_; ++j) {
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > eps) return false;
    }
  }
  return true;
}

std::string DenseMatrix::ToString(int precision) const {
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      std::snprintf(buf, sizeof(buf), "% .*f ", precision, (*this)(i, j));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

namespace {

// Row grain targeting ~16K flops per chunk; a function of the shapes
// only, per the scheduler's determinism rules.
std::size_t RowGrainForFlops(std::size_t flops_per_row) {
  return std::max<std::size_t>(
      1, 16384 / std::max<std::size_t>(flops_per_row, 1));
}

}  // namespace

DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b) {
  INCSR_CHECK(a.cols() == b.rows(), "Multiply shape mismatch (%zu vs %zu)",
              a.cols(), b.rows());
  DenseMatrix c(a.rows(), b.cols());
  const std::size_t n = b.cols();
  // Output rows are disjoint and each is accumulated in the same serial
  // k-order regardless of chunking, so the product is bitwise identical
  // at any thread count. The incsvd serve path (SimRankFromFactors)
  // rides this kernel.
  Scheduler::Global().ParallelFor(
      0, a.rows(), RowGrainForFlops(a.cols() * n),
      Scheduler::ResolveNumThreads(0),
      [&a, &b, &c, n](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          double* __restrict crow = c.RowPtr(i);
          for (std::size_t k = 0; k < a.cols(); ++k) {
            double aik = a(i, k);
            if (aik == 0.0) continue;
            const double* __restrict brow = b.RowPtr(k);
            for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
          }
        }
      });
  return c;
}

DenseMatrix MultiplyTransposeB(const DenseMatrix& a, const DenseMatrix& b) {
  INCSR_CHECK(a.cols() == b.cols(), "MultiplyTransposeB shape mismatch");
  DenseMatrix c(a.rows(), b.rows());
  // Same disjoint-row argument as Multiply: bitwise identical to serial.
  Scheduler::Global().ParallelFor(
      0, a.rows(), RowGrainForFlops(b.rows() * a.cols()),
      Scheduler::ResolveNumThreads(0),
      [&a, &b, &c](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const double* arow = a.RowPtr(i);
          for (std::size_t j = 0; j < b.rows(); ++j) {
            const double* brow = b.RowPtr(j);
            double acc = 0.0;
            for (std::size_t k = 0; k < a.cols(); ++k) {
              acc += arow[k] * brow[k];
            }
            c(i, j) = acc;
          }
        }
      });
  return c;
}

DenseMatrix MultiplyTransposeA(const DenseMatrix& a, const DenseMatrix& b) {
  INCSR_CHECK(a.rows() == b.rows(), "MultiplyTransposeA shape mismatch");
  DenseMatrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.RowPtr(k);
    const double* brow = b.RowPtr(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.RowPtr(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  INCSR_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "MaxAbsDiff shape mismatch");
  double best = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      best = std::max(best, std::fabs(a(i, j) - b(i, j)));
    }
  }
  return best;
}

bool BitwiseEqual(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    if (std::memcmp(a.RowPtr(i), b.RowPtr(i),
                    a.cols() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace incsr::la
