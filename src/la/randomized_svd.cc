#include "la/randomized_svd.h"

#include <algorithm>

#include "common/rng.h"
#include "la/qr.h"

namespace incsr::la {

Result<SvdResult> ComputeRandomizedSvd(const CsrMatrix& a,
                                       const RandomizedSvdOptions& options) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("ComputeRandomizedSvd: empty matrix");
  }
  if (options.rank == 0) {
    return Status::InvalidArgument("ComputeRandomizedSvd: rank must be > 0");
  }
  const std::size_t sketch =
      std::min(std::min(m, n), options.rank + options.oversampling);

  // Gaussian sketch Ω and sample Y = A·Ω.
  Rng rng(options.seed);
  DenseMatrix omega(n, sketch);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < sketch; ++j) omega(i, j) = rng.NextGaussian();
  }
  DenseMatrix y = a.MultiplyDense(omega);

  // Power iterations with re-orthonormalization stabilize the spectrum.
  for (int it = 0; it < options.power_iterations; ++it) {
    Result<DenseMatrix> qy = OrthonormalBasis(y);
    if (!qy.ok()) return qy.status();
    Result<DenseMatrix> qz = OrthonormalBasis(a.MultiplyTransposeDense(qy.value()));
    if (!qz.ok()) return qz.status();
    y = a.MultiplyDense(qz.value());
  }
  Result<DenseMatrix> q = OrthonormalBasis(y);
  if (!q.ok()) return q.status();

  // Project: B = Qᵀ·A (small k×n), then exact SVD of B.
  DenseMatrix b = a.MultiplyTransposeDense(q.value()).Transpose();
  Result<SvdResult> small = ComputeSvd(b);
  if (!small.ok()) return small.status();

  const std::size_t keep = std::min(options.rank, small->rank());
  SvdResult result;
  result.u = DenseMatrix(m, keep);
  result.sigma = Vector(keep);
  result.v = DenseMatrix(n, keep);
  // U = Q·U_B (trimmed to `keep` columns).
  DenseMatrix qu = Multiply(q.value(), small->u);
  for (std::size_t k = 0; k < keep; ++k) {
    result.sigma[k] = small->sigma[k];
    for (std::size_t i = 0; i < m; ++i) result.u(i, k) = qu(i, k);
    for (std::size_t i = 0; i < n; ++i) result.v(i, k) = small->v(i, k);
  }
  return result;
}

}  // namespace incsr::la
