#include "la/score_store.h"

#include <algorithm>
#include <utility>

#include "common/scheduler.h"
#include "obs/trace.h"

namespace incsr::la {

namespace {

bool IsPowerOfTwo(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Materializes any row-readable container (store or view) bitwise,
// representation-agnostic via ReadRow.
template <typename RowsLike>
DenseMatrix MaterializeRows(const RowsLike& m) {
  DenseMatrix out(m.rows(), m.cols());
  Vector scratch;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* src = m.ReadRow(i, &scratch);
    std::copy(src, src + m.cols(), out.RowPtr(i));
  }
  return out;
}

std::size_t Log2(std::size_t pow2) {
  std::size_t shift = 0;
  while ((std::size_t{1} << shift) < pow2) ++shift;
  return shift;
}

}  // namespace

DenseMatrix ScoreStore::View::ToDense() const { return MaterializeRows(*this); }

ScoreStore::ScoreStore(DenseMatrix dense, std::size_t rows_per_shard) {
  INCSR_CHECK(IsPowerOfTwo(rows_per_shard),
              "rows_per_shard %zu is not a power of two", rows_per_shard);
  rows_ = dense.rows();
  cols_ = dense.cols();
  shard_shift_ = Log2(rows_per_shard);
  shard_mask_ = rows_per_shard - 1;
  BuildShards(dense);
}

ScoreStore ScoreStore::ScaledIdentity(std::size_t n, double value) {
  ScoreStore store;
  store.rows_ = n;
  store.cols_ = n;
  store.shard_shift_ = 0;
  store.shard_mask_ = 0;
  store.shards_.resize(n);
  store.shared_.assign(n, 0);
  store.all_rows_touched_ = true;
  for (std::size_t i = 0; i < n; ++i) {
    store.shards_[i] = MakeSingleEntryRow(i, value);
    store.stats_.sparse_payload_bytes += store.shards_[i]->payload_bytes();
  }
  store.stats_.rows_sparse = n;
  store.stats_.rows_materialized += n;
  store.stats_.bytes_materialized += store.stats_.sparse_payload_bytes;
  return store;
}

void ScoreStore::set_sparsity(const SparsityConfig& config) {
  INCSR_CHECK(shard_shift_ == 0,
              "sparse row blocks need rows_per_shard == 1, have %zu",
              rows_per_shard());
  INCSR_CHECK(config.epsilon >= 0.0 && config.max_density > 0.0 &&
                  config.error_amplification >= 1.0,
              "invalid sparsity config (eps %g, density %g, amplification %g)",
              config.epsilon, config.max_density, config.error_amplification);
  sparsity_ = config;
  sparsity_enabled_ = true;
}

std::size_t ScoreStore::RowsInShard(std::size_t shard) const {
  const std::size_t first = shard << shard_shift_;
  return std::min(rows_ - first, std::size_t{1} << shard_shift_);
}

void ScoreStore::RecordTouchedShard(std::size_t s) {
  if (all_rows_touched_) return;
  const std::size_t first = s << shard_shift_;
  const std::size_t count = RowsInShard(s);
  for (std::size_t r = 0; r < count; ++r) {
    touched_rows_.push_back(static_cast<std::int32_t>(first + r));
  }
}

void ScoreStore::BuildShards(const DenseMatrix& dense) {
  const std::size_t num_shards =
      rows_ == 0 ? 0 : ((rows_ + shard_mask_) >> shard_shift_);
  shards_.assign(num_shards, nullptr);
  shared_.assign(num_shards, 0);
  // Writes between now and the first Publish() hit unshared shards and are
  // not individually tracked — the whole matrix counts as touched.
  all_rows_touched_ = true;
  touched_rows_.clear();
  stats_.rows_materialized += rows_;
  stats_.bytes_materialized +=
      static_cast<std::uint64_t>(rows_) * cols_ * sizeof(double);
  // A full rebuild lands every row dense; the serving layer re-earns the
  // sparse tier from traffic afterwards.
  stats_.rows_sparse = 0;
  stats_.sparse_payload_bytes = 0;
  BumpDensePeak();
  // Shard payloads are disjoint and each is a pure copy, so the
  // materialization parallelizes deterministically; this is what makes
  // a shard-merge's FromState re-init row-parallel instead of the O(n²)
  // serial copy it used to be. Aim for ~32K doubles per chunk.
  const std::size_t grain = std::max<std::size_t>(
      1, 32768 / std::max<std::size_t>(
                     (std::size_t{1} << shard_shift_) * cols_, 1));
  Scheduler::Global().ParallelFor(
      0, num_shards, grain, Scheduler::ResolveNumThreads(0),
      [this, &dense](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          auto shard = std::make_shared<RowBlock>();
          const std::size_t first = s << shard_shift_;
          const std::size_t count = RowsInShard(s);
          shard->dense.resize(count * cols_);
          const double* src = dense.RowPtr(first);
          std::copy(src, src + count * cols_, shard->dense.data());
          shards_[s] = std::move(shard);
        }
      });
}

std::uint64_t ScoreStore::DensePayloadBytes() const {
  const std::uint64_t dense_rows =
      static_cast<std::uint64_t>(rows_) - stats_.rows_sparse;
  return dense_rows * cols_ * sizeof(double);
}

void ScoreStore::BumpDensePeak() {
  const std::uint64_t current = DensePayloadBytes();
  if (current > stats_.epoch_peak_dense_bytes) {
    stats_.epoch_peak_dense_bytes = current;
  }
}

double* ScoreStore::MutableRowPtr(std::size_t i) {
  INCSR_DCHECK(i < rows_, "row %zu out of %zu", i, rows_);
  const std::size_t s = i >> shard_shift_;
  const RowBlock* block = shards_[s].get();
  if (block->is_sparse()) {
    // Densify-on-write (legacy shim semantics): the caller wants a flat
    // row, whatever the tier. The fresh dense block is unshared whether or
    // not the sparse one was — a still-shared sparse block stays alive for
    // its Views. Counted as a write-path spill, not a tier promotion.
    if (shared_[s]) RecordTouchedShard(s);
    stats_.sparse_payload_bytes -= block->payload_bytes();
    --stats_.rows_sparse;
    ++stats_.rows_spilled_dense;
    TRACE_COUNTER_ARG(kStoreWriteSpill, i, 1);
    shards_[s] = DensifyBlock(*block, cols_);
    shared_[s] = 0;
    BumpDensePeak();
  } else if (shared_[s]) {
    // First write into a shard some published View references: clone it.
    // The old shard stays alive (and byte-stable) for as long as any View
    // holds it; this clone IS the incremental publish cost.
    auto clone = std::make_shared<RowBlock>();
    clone->dense = block->dense;
    stats_.rows_copied += RowsInShard(s);
    stats_.bytes_copied += clone->dense.size() * sizeof(double);
    TRACE_COUNTER_ARG(kStoreRowCow, RowsInShard(s),
                      clone->dense.size() * sizeof(double));
    shards_[s] = std::move(clone);
    shared_[s] = 0;
    // The clone happens exactly once per shard per epoch, so this stays
    // duplicate-free without a lookup.
    RecordTouchedShard(s);
  }
  // const_cast is sound: an unshared shard is exclusively owned by this
  // store, and only the single writer thread reaches this path.
  auto* shard = const_cast<RowBlock*>(shards_[s].get());
  return &shard->dense[(i & shard_mask_) * cols_];
}

void ScoreStore::BeginWriteRow(std::size_t i, RowWriter* w) {
  INCSR_DCHECK(i < rows_, "row %zu out of %zu", i, rows_);
  const std::size_t s = i >> shard_shift_;
  if (shards_[s]->is_sparse() && write_mode_ == WriteMode::kSparseNative) {
    // Sparse-native session: deltas accumulate against the pinned base
    // block, and nothing in the shard table changes until commit — so a
    // reader (or a parallel Add on another row's writer) never observes a
    // half-written row. Sparse blocks exist only at rows_per_shard == 1.
    w->BeginSparse(i, cols_, shards_[s]);
    return;
  }
  // Dense-backed row — or the legacy densify-on-write mode: resolve COW
  // (and the densify, with its spill accounting) exactly like the shim.
  w->BeginDense(i, MutableRowPtr(i));
}

void ScoreStore::CommitWriteRow(RowWriter* w) {
  if (w->direct_dense()) {
    // The writes already landed through the flat pointer; Begin did the
    // COW/touched bookkeeping.
    w->Finish();
    return;
  }
  if (!w->touched()) {
    // Zero writes: the row's readable bytes are unchanged, so keep the
    // base block (and its shared flag) as they are.
    w->Finish();
    return;
  }
  const std::size_t s = w->row();  // sparse sessions ⇒ rows_per_shard == 1
  const std::size_t max_nnz = static_cast<std::size_t>(
      sparsity_.max_density * static_cast<double>(cols_));
  bool landed_sparse = false;
  if (!w->spilled()) {
    landed_sparse =
        w->MergeSparse(max_nnz, &merge_scratch_cols_, &merge_scratch_vals_);
    if (landed_sparse && !shared_[s]) {
      // The shard is already writer-private this epoch, so — by the same
      // exclusivity argument as MutableRowPtr's const_cast — the merged
      // arrays can swap into the live block directly. The displaced arrays
      // become the next commit's scratch, so a row merged repeatedly
      // within one batch allocates nothing after the first merge. The
      // writer's pinned base is this very block, but MergeSparse finished
      // reading it before the swap and Finish() only drops the pin.
      auto* block = const_cast<RowBlock*>(shards_[s].get());
      stats_.sparse_payload_bytes -= block->payload_bytes();
      block->sparse_cols.swap(merge_scratch_cols_);
      block->sparse_vals.swap(merge_scratch_vals_);
      stats_.sparse_payload_bytes += block->payload_bytes();
      ++stats_.sparse_write_merges;
      TRACE_COUNTER_ARG(kStoreSparseMerge, w->row(), block->payload_bytes());
      w->Finish();
      return;
    }
    if (!landed_sparse) {
      // Past the max_density gate: the row is no longer worth compressing.
      w->Dense();
    }
  }
  auto block = std::make_shared<RowBlock>();
  if (w->spilled()) {
    block->kind = RowBlock::Kind::kDense;
    block->dense = w->TakeDense();
  } else {
    block->kind = RowBlock::Kind::kSparse;
    block->sparse_cols = std::move(merge_scratch_cols_);
    block->sparse_vals = std::move(merge_scratch_vals_);
  }
  stats_.sparse_payload_bytes -= shards_[s]->payload_bytes();
  if (landed_sparse) {
    stats_.sparse_payload_bytes += block->payload_bytes();
    ++stats_.sparse_write_merges;
    TRACE_COUNTER_ARG(kStoreSparseMerge, w->row(), block->payload_bytes());
  } else {
    --stats_.rows_sparse;
    ++stats_.rows_spilled_dense;
    TRACE_COUNTER_ARG(kStoreWriteSpill, w->row(), 1);
  }
  // Same shared→unshared bookkeeping as a COW clone: the swap happens at
  // most once per shard per epoch while shared, keeping the touched delta
  // duplicate-free.
  if (shared_[s]) RecordTouchedShard(s);
  shards_[s] = std::move(block);
  shared_[s] = 0;
  if (!landed_sparse) BumpDensePeak();
  w->Finish();
}

bool ScoreStore::SparsifyRow(std::size_t i,
                             std::span<const std::int32_t> keep_cols,
                             std::size_t* dropped_out) {
  INCSR_DCHECK(i < rows_, "row %zu out of %zu", i, rows_);
  INCSR_CHECK(sparsity_enabled_, "SparsifyRow without set_sparsity");
  const std::size_t s = i;  // rows_per_shard == 1, enforced by set_sparsity
  const RowBlock& block = *shards_[s];
  if (block.is_sparse()) return false;
  SparsifyResult result =
      SparsifyDenseRow(block.dense.data(), cols_, sparsity_.epsilon,
                       sparsity_.max_density, keep_cols);
  if (!result.block) return false;  // density gate: stay dense
  // A shared→unshared transition enters the touched delta even when the
  // readable bytes did not change (dropped == 0): the invariant "unshared
  // implies already recorded this epoch" is what lets MutableRowPtr skip
  // the lookup, and a spurious re-rank of a demoted row is cheap.
  if (shared_[s]) RecordTouchedShard(s);
  stats_.sparse_payload_bytes += result.block->payload_bytes();
  ++stats_.rows_sparse;
  ++stats_.rows_sparsified;
  TRACE_COUNTER_ARG(kStoreTierDemote, i, result.block->payload_bytes());
  stats_.eps_drops += result.dropped;
  if (result.dropped > 0) {
    stats_.max_error_bound +=
        result.max_dropped_abs * sparsity_.error_amplification;
  }
  shards_[s] = std::move(result.block);
  shared_[s] = 0;
  if (dropped_out != nullptr) *dropped_out = result.dropped;
  return true;
}

bool ScoreStore::DensifyRow(std::size_t i) {
  INCSR_DCHECK(i < rows_, "row %zu out of %zu", i, rows_);
  const std::size_t s = i >> shard_shift_;
  const RowBlock& block = *shards_[s];
  if (!block.is_sparse()) return false;
  if (shared_[s]) RecordTouchedShard(s);
  stats_.sparse_payload_bytes -= block.payload_bytes();
  --stats_.rows_sparse;
  ++stats_.rows_densified;
  TRACE_COUNTER_ARG(kStoreTierPromote, i, 1);
  shards_[s] = DensifyBlock(block, cols_);
  shared_[s] = 0;
  BumpDensePeak();
  return true;
}

std::uint64_t ScoreStore::bytes_saved() const {
  const std::uint64_t dense_equiv =
      stats_.rows_sparse * static_cast<std::uint64_t>(cols_) * sizeof(double);
  return dense_equiv > stats_.sparse_payload_bytes
             ? dense_equiv - stats_.sparse_payload_bytes
             : 0;
}

std::uint64_t ScoreStore::payload_bytes() const {
  const std::uint64_t dense_rows =
      static_cast<std::uint64_t>(rows_) - stats_.rows_sparse;
  return dense_rows * cols_ * sizeof(double) + stats_.sparse_payload_bytes;
}

Vector ScoreStore::Col(std::size_t j) const {
  INCSR_DCHECK(j < cols_, "col %zu out of %zu", j, cols_);
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

DenseMatrix ScoreStore::ToDense() const { return MaterializeRows(*this); }

ScoreStore::View ScoreStore::Publish() {
  View view;
  view.rows_ = rows_;
  view.cols_ = cols_;
  view.shard_shift_ = shard_shift_;
  view.shard_mask_ = shard_mask_;
  view.shards_ = shards_;  // O(#shards) pointer copies — the whole cost
  std::fill(shared_.begin(), shared_.end(), std::uint8_t{1});
  // The published view now IS the previous epoch: the delta restarts empty,
  // and the transient-dense watermark restarts at the resident footprint.
  all_rows_touched_ = false;
  touched_rows_.clear();
  stats_.epoch_peak_dense_bytes = DensePayloadBytes();
  ++stats_.publishes;
  return view;
}

void ScoreStore::Assign(DenseMatrix dense) {
  rows_ = dense.rows();
  cols_ = dense.cols();
  BuildShards(dense);
}

namespace {

template <typename A, typename B>
double MaxAbsDiffRows(const A& a, const B& b) {
  INCSR_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "MaxAbsDiff shape mismatch (%zu,%zu) vs (%zu,%zu)", a.rows(),
              a.cols(), b.rows(), b.cols());
  double max_diff = 0.0;
  Vector scratch_a;
  Vector scratch_b;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* pa = a.ReadRow(i, &scratch_a);
    const double* pb = b.ReadRow(i, &scratch_b);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double diff = pa[j] > pb[j] ? pa[j] - pb[j] : pb[j] - pa[j];
      if (diff > max_diff) max_diff = diff;
    }
  }
  return max_diff;
}

}  // namespace

double MaxAbsDiff(const ScoreStore& a, const DenseMatrix& b) {
  return MaxAbsDiffRows(a, b);
}
double MaxAbsDiff(const DenseMatrix& a, const ScoreStore& b) {
  return MaxAbsDiffRows(a, b);
}
double MaxAbsDiff(const ScoreStore& a, const ScoreStore& b) {
  return MaxAbsDiffRows(a, b);
}
double MaxAbsDiff(const ScoreStore::View& a, const DenseMatrix& b) {
  return MaxAbsDiffRows(a, b);
}
double MaxAbsDiff(const ScoreStore::View& a, const ScoreStore::View& b) {
  return MaxAbsDiffRows(a, b);
}

}  // namespace incsr::la
