#include "la/score_store.h"

#include <algorithm>
#include <utility>

#include "common/scheduler.h"

namespace incsr::la {

namespace {

bool IsPowerOfTwo(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Materializes any row-readable container (store or view) bitwise.
template <typename RowsLike>
DenseMatrix MaterializeRows(const RowsLike& m) {
  DenseMatrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* src = m.RowPtr(i);
    std::copy(src, src + m.cols(), out.RowPtr(i));
  }
  return out;
}

std::size_t Log2(std::size_t pow2) {
  std::size_t shift = 0;
  while ((std::size_t{1} << shift) < pow2) ++shift;
  return shift;
}

}  // namespace

DenseMatrix ScoreStore::View::ToDense() const { return MaterializeRows(*this); }

ScoreStore::ScoreStore(DenseMatrix dense, std::size_t rows_per_shard) {
  INCSR_CHECK(IsPowerOfTwo(rows_per_shard),
              "rows_per_shard %zu is not a power of two", rows_per_shard);
  rows_ = dense.rows();
  cols_ = dense.cols();
  shard_shift_ = Log2(rows_per_shard);
  shard_mask_ = rows_per_shard - 1;
  BuildShards(dense);
}

std::size_t ScoreStore::RowsInShard(std::size_t shard) const {
  const std::size_t first = shard << shard_shift_;
  return std::min(rows_ - first, std::size_t{1} << shard_shift_);
}

void ScoreStore::BuildShards(const DenseMatrix& dense) {
  const std::size_t num_shards =
      rows_ == 0 ? 0 : ((rows_ + shard_mask_) >> shard_shift_);
  shards_.assign(num_shards, nullptr);
  shared_.assign(num_shards, 0);
  // Writes between now and the first Publish() hit unshared shards and are
  // not individually tracked — the whole matrix counts as touched.
  all_rows_touched_ = true;
  touched_rows_.clear();
  stats_.rows_materialized += rows_;
  stats_.bytes_materialized +=
      static_cast<std::uint64_t>(rows_) * cols_ * sizeof(double);
  // Shard payloads are disjoint and each is a pure copy, so the
  // materialization parallelizes deterministically; this is what makes
  // a shard-merge's FromState re-init row-parallel instead of the O(n²)
  // serial copy it used to be. Aim for ~32K doubles per chunk.
  const std::size_t grain = std::max<std::size_t>(
      1, 32768 / std::max<std::size_t>(
                     (std::size_t{1} << shard_shift_) * cols_, 1));
  Scheduler::Global().ParallelFor(
      0, num_shards, grain, Scheduler::ResolveNumThreads(0),
      [this, &dense](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          auto shard = std::make_shared<Shard>();
          const std::size_t first = s << shard_shift_;
          const std::size_t count = RowsInShard(s);
          shard->data.resize(count * cols_);
          const double* src = dense.RowPtr(first);
          std::copy(src, src + count * cols_, shard->data.data());
          shards_[s] = std::move(shard);
        }
      });
}

double* ScoreStore::MutableRowPtr(std::size_t i) {
  INCSR_DCHECK(i < rows_, "row %zu out of %zu", i, rows_);
  const std::size_t s = i >> shard_shift_;
  if (shared_[s]) {
    // First write into a shard some published View references: clone it.
    // The old shard stays alive (and byte-stable) for as long as any View
    // holds it; this clone IS the incremental publish cost.
    auto clone = std::make_shared<Shard>();
    clone->data = shards_[s]->data;
    stats_.rows_copied += RowsInShard(s);
    stats_.bytes_copied += clone->data.size() * sizeof(double);
    shards_[s] = std::move(clone);
    shared_[s] = 0;
    if (!all_rows_touched_) {
      // The clone happens exactly once per shard per epoch, so this stays
      // duplicate-free without a lookup.
      const std::size_t first = s << shard_shift_;
      const std::size_t count = RowsInShard(s);
      for (std::size_t r = 0; r < count; ++r) {
        touched_rows_.push_back(static_cast<std::int32_t>(first + r));
      }
    }
  }
  // const_cast is sound: an unshared shard is exclusively owned by this
  // store, and only the single writer thread reaches this path.
  auto* shard = const_cast<Shard*>(shards_[s].get());
  return &shard->data[(i & shard_mask_) * cols_];
}

Vector ScoreStore::Col(std::size_t j) const {
  INCSR_DCHECK(j < cols_, "col %zu out of %zu", j, cols_);
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = RowPtr(i)[j];
  return out;
}

DenseMatrix ScoreStore::ToDense() const { return MaterializeRows(*this); }

ScoreStore::View ScoreStore::Publish() {
  View view;
  view.rows_ = rows_;
  view.cols_ = cols_;
  view.shard_shift_ = shard_shift_;
  view.shard_mask_ = shard_mask_;
  view.shards_ = shards_;  // O(#shards) pointer copies — the whole cost
  std::fill(shared_.begin(), shared_.end(), std::uint8_t{1});
  // The published view now IS the previous epoch: the delta restarts empty.
  all_rows_touched_ = false;
  touched_rows_.clear();
  ++stats_.publishes;
  return view;
}

void ScoreStore::Assign(DenseMatrix dense) {
  rows_ = dense.rows();
  cols_ = dense.cols();
  BuildShards(dense);
}

namespace {

template <typename A, typename B>
double MaxAbsDiffRows(const A& a, const B& b) {
  INCSR_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "MaxAbsDiff shape mismatch (%zu,%zu) vs (%zu,%zu)", a.rows(),
              a.cols(), b.rows(), b.cols());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* pa = a.RowPtr(i);
    const double* pb = b.RowPtr(i);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double diff = pa[j] > pb[j] ? pa[j] - pb[j] : pb[j] - pa[j];
      if (diff > max_diff) max_diff = diff;
    }
  }
  return max_diff;
}

}  // namespace

double MaxAbsDiff(const ScoreStore& a, const DenseMatrix& b) {
  return MaxAbsDiffRows(a, b);
}
double MaxAbsDiff(const DenseMatrix& a, const ScoreStore& b) {
  return MaxAbsDiffRows(a, b);
}
double MaxAbsDiff(const ScoreStore& a, const ScoreStore& b) {
  return MaxAbsDiffRows(a, b);
}
double MaxAbsDiff(const ScoreStore::View& a, const DenseMatrix& b) {
  return MaxAbsDiffRows(a, b);
}
double MaxAbsDiff(const ScoreStore::View& a, const ScoreStore::View& b) {
  return MaxAbsDiffRows(a, b);
}

}  // namespace incsr::la
