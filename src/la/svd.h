// Thin singular value decomposition via one-sided Jacobi rotations.
// Built from scratch because the Inc-SVD baseline of Li et al. (EDBT'10) —
// the comparison algorithm in the reproduced paper — is defined entirely in
// terms of (possibly truncated) SVD factors, and the Fig. 2b experiment
// needs exact numerical ranks of real transition matrices.
//
// One-sided Jacobi orthogonalizes the columns of a working copy of A by
// plane rotations (accumulated into V); singular values are the resulting
// column norms. It is O(n³) per sweep with typically < 10 sweeps to reach
// 1e-12 relative orthogonality — fine for the n ≤ a-few-thousand matrices
// this library targets, and it is backward-stable and rank-revealing.
#ifndef INCSR_LA_SVD_H_
#define INCSR_LA_SVD_H_

#include <cstddef>

#include "common/status.h"
#include "la/dense_matrix.h"
#include "la/vector.h"

namespace incsr::la {

/// Tuning knobs for the Jacobi SVD.
struct SvdOptions {
  /// Off-diagonal tolerance relative to column norms; a rotation is applied
  /// while |wᵢᵀwⱼ| > tolerance · ‖wᵢ‖‖wⱼ‖.
  double tolerance = 1e-12;
  /// Hard cap on Jacobi sweeps.
  int max_sweeps = 60;
  /// Singular values below rank_tolerance · σ_max are treated as zero when
  /// truncating to the numerical rank.
  double rank_tolerance = 1e-10;
  /// If > 0, keep at most this many leading singular triplets (low-rank
  /// SVD in the paper's terminology); 0 keeps the full numerical rank
  /// (lossless SVD).
  std::size_t target_rank = 0;
};

/// Thin SVD A ≈ U · diag(sigma) · Vᵀ with U: m×r, sigma: r, V: n×r and
/// singular values in non-increasing order.
struct SvdResult {
  DenseMatrix u;
  Vector sigma;
  DenseMatrix v;

  /// Number of retained singular triplets.
  std::size_t rank() const { return sigma.size(); }

  /// Reconstructs U · diag(sigma) · Vᵀ.
  DenseMatrix Reconstruct() const;
};

/// Computes the thin SVD of a dense matrix. Fails only on shape violations
/// (empty input) or non-convergence within max_sweeps.
Result<SvdResult> ComputeSvd(const DenseMatrix& a, const SvdOptions& options = {});

/// Numerical rank of a dense matrix: number of singular values above
/// rank_tolerance · σ_max.
Result<std::size_t> NumericalRank(const DenseMatrix& a,
                                  const SvdOptions& options = {});

}  // namespace incsr::la

#endif  // INCSR_LA_SVD_H_
