// Solvers for the discrete-time Sylvester ("Stein") equation
//     X = c · A · X · Bᵀ + C0
// which is the algebraic heart of the paper: SimRank itself is the rank-n
// instance (A = B = Q, C0 = (1−C)·I), the paper's ΔS characterization is a
// rank-one instance (Theorem 2), and the Inc-SVD baseline solves a small
// r×r instance after projecting through the SVD factors.
#ifndef INCSR_LA_SYLVESTER_H_
#define INCSR_LA_SYLVESTER_H_

#include "common/status.h"
#include "la/dense_matrix.h"

namespace incsr::la {

/// Options for the fixed-point Sylvester iteration.
struct SylvesterOptions {
  /// Number of fixed-point iterations (series truncation order K).
  int iterations = 50;
  /// Early-exit when the max-norm update falls below this value; 0 disables.
  double tolerance = 0.0;
  /// Divergence guard: abort when ‖X‖_max exceeds this bound.
  double divergence_bound = 1e12;
};

/// Solves X = c·A·X·Bᵀ + C0 by the truncated series Σₖ cᵏ·Aᵏ·C0·(Bᵀ)ᵏ
/// (fixed-point iteration from X₀ = C0). Converges whenever the spectral
/// radius of c·(B ⊗ A) is below one; diverging instances are detected and
/// reported.
Result<DenseMatrix> SolveSylvesterFixedPoint(double c, const DenseMatrix& a,
                                             const DenseMatrix& b,
                                             const DenseMatrix& c0,
                                             const SylvesterOptions& options = {});

/// Solves X = c·A·X·Bᵀ + C0 exactly via the vectorized Kronecker system
/// (I − c·B⊗A)·vec(X) = vec(C0) and dense LU. Cost O((ra·rb)³); intended
/// for the small projected systems of the Inc-SVD baseline (this is its
/// "costly tensor product" code path, and it is deliberately materialized
/// so the Fig. 3 memory experiment can observe it).
Result<DenseMatrix> SolveSylvesterKron(double c, const DenseMatrix& a,
                                       const DenseMatrix& b,
                                       const DenseMatrix& c0);

}  // namespace incsr::la

#endif  // INCSR_LA_SYLVESTER_H_
