// RowWriter — the representation-aware write session behind the kernel
// write contract. Kernels used to receive a flat dense `double*` for every
// row they scatter into, which forced ScoreStore to densify sparse rows on
// write (transiently materializing O(touched · n) dense bytes per batch).
// A RowWriter instead lets the store pick the cheapest backing per row:
//
//   - Dense-direct: the row is dense-backed (or the store is in
//     densify-on-write compatibility mode), so the writer wraps the raw
//     row pointer and Add() compiles down to `row[col] += delta`.
//   - Sparse session: the row stays in its sparse block. Add() accumulates
//     (column, delta) pairs in a writer-local open-addressing table; the
//     first touch of a column SEEDS the accumulator with the base block's
//     stored value (exact +0.0 when absent — the same bytes a densify
//     would have gathered), then every delta applies immediately. The
//     per-column floating-point sequence is therefore IDENTICAL to
//     writing through a densified row: (stored + d₁) + d₂ + …, in kernel
//     emission order — which is what keeps sparse-native commits bitwise
//     equal to the densify-on-write path at ε = 0.
//
// Dense() spills a sparse session to a writer-local dense buffer (gather
// base, flush accumulated touches) for kernels that genuinely write O(n)
// columns (Inc-uSR's unpruned scatter); ScoreStore::CommitWriteRow installs
// it as a dense block and counts the spill.
//
// Threading: Begin*/commit are store-side and writer-thread-only, but
// Add()/Dense() touch only writer-local state plus the IMMUTABLE base
// block, so disjoint rows' writers may be filled from parallel workers —
// the same discipline as the old pre-materialized row pointers.
#ifndef INCSR_LA_ROW_WRITER_H_
#define INCSR_LA_ROW_WRITER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "la/row_block.h"
#include "la/vector.h"

namespace incsr::la {

/// One row's write session. Reusable: Begin* resets all session state, so
/// engines keep a pool of writers and steady-state updates allocate
/// nothing once the tables have grown to the working-set size.
class RowWriter {
 public:
  RowWriter() = default;
  RowWriter(RowWriter&&) = default;
  RowWriter& operator=(RowWriter&&) = default;
  RowWriter(const RowWriter&) = delete;
  RowWriter& operator=(const RowWriter&) = delete;

  // ---- kernel-side write API ----------------------------------------------

  /// row[col] += delta, in kernel emission order.
  void Add(std::size_t col, double delta) {
    INCSR_DCHECK(mode_ != Mode::kIdle, "Add outside a write session");
    if (dense_ != nullptr) {
      dense_[col] += delta;
      return;
    }
    AddSparse(col, delta);
  }

  /// True when writes go straight through a flat row pointer (dense-direct
  /// session, or a sparse session that already spilled). Kernels may use
  /// Dense() as a raw fast path when this holds.
  bool is_dense() const { return dense_ != nullptr; }

  /// Flat pointer covering all columns of the row. A sparse session SPILLS:
  /// the base block is gathered into a writer-local dense buffer and the
  /// accumulated touches are flushed onto it, after which the commit will
  /// install a dense block (counted as a write-path spill, not a tier
  /// promotion). Safe to call from a parallel worker — the buffer is
  /// writer-local and the base block immutable.
  double* Dense();

  // ---- store-side session protocol ----------------------------------------
  // Called by the score containers (ScoreStore, DenseMatrix); kernels
  // never call these directly.

  /// Opens a dense-direct session onto `dense` (cols entries, exclusively
  /// owned by the caller for the session's duration).
  void BeginDense(std::size_t row, double* dense);

  /// Opens a sparse accumulation session against the immutable `base`
  /// block (single-row sparse layout).
  void BeginSparse(std::size_t row, std::size_t cols,
                   std::shared_ptr<const RowBlock> base);

  std::size_t row() const { return row_; }
  bool direct_dense() const { return mode_ == Mode::kDenseDirect; }
  bool spilled() const { return spilled_; }
  /// True when the session wrote anything at all. An untouched sparse
  /// session commits as a no-op (the row's readable bytes are unchanged).
  bool touched() const { return spilled_ || !touched_cols_.empty(); }
  std::size_t touched_count() const { return touched_cols_.size(); }

  /// Merges the base block with the accumulated touches into sorted
  /// index+value arrays: untouched base entries keep their bit patterns,
  /// touched columns take their accumulated value, and merged values that
  /// are exact +0.0 are dropped (bitwise lossless — a gather refills them).
  /// Returns false without completing when the merged row would exceed
  /// `max_nnz` retained entries (the max_density spill gate, mirroring
  /// SparsifyDenseRow); the caller then spills via Dense().
  bool MergeSparse(std::size_t max_nnz, TrackedIndices* cols,
                   TrackedDoubles* vals);

  /// Moves out the spilled dense payload (valid only after a spill).
  TrackedDoubles TakeDense();

  /// Closes the session (drops the base block reference, returns to idle).
  void Finish();

 private:
  enum class Mode : std::uint8_t { kIdle, kDenseDirect, kSparseSession };

  void AddSparse(std::size_t col, double delta);
  std::size_t Probe(std::size_t col) const;
  void Rehash(std::size_t new_capacity);

  Mode mode_ = Mode::kIdle;
  bool spilled_ = false;
  std::size_t row_ = 0;
  std::size_t cols_ = 0;
  double* dense_ = nullptr;
  std::shared_ptr<const RowBlock> base_;
  // Touched columns in first-touch order with parallel accumulators
  // (seeded from base, then += per Add — see the file comment for why
  // this exact sequence is the determinism contract).
  std::vector<std::int32_t> touched_cols_;
  std::vector<double> touched_vals_;
  // Open-addressing col → touched-slot map: power-of-two capacity, linear
  // probing, rehash at load factor 1/2; -1 marks an empty slot.
  std::vector<std::int32_t> slots_;
  std::size_t slot_mask_ = 0;
  std::vector<std::int32_t> order_;  // MergeSparse sort scratch
  TrackedDoubles dense_buf_;         // spill target
};

}  // namespace incsr::la

#endif  // INCSR_LA_ROW_WRITER_H_
