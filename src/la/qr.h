// Thin QR factorization by (twice-iterated) modified Gram-Schmidt — the
// orthonormalization step of the randomized range finder in
// randomized_svd.h. MGS applied twice is numerically equivalent to
// Householder QR for the well-conditioned tall-skinny blocks produced by
// random sketching.
#ifndef INCSR_LA_QR_H_
#define INCSR_LA_QR_H_

#include "common/status.h"
#include "la/dense_matrix.h"

namespace incsr::la {

/// Returns an orthonormal basis Q (m×k, k ≤ cols) of the column space of
/// `a`. Columns whose residual norm falls below `tolerance` relative to
/// the largest column norm are dropped (rank-revealing for this purpose).
Result<DenseMatrix> OrthonormalBasis(const DenseMatrix& a,
                                     double tolerance = 1e-12);

}  // namespace incsr::la

#endif  // INCSR_LA_QR_H_
