// Dense LU factorization with partial pivoting. Used by the Kronecker
// (direct) Sylvester solver that the Inc-SVD baseline relies on, and as a
// general small-dense linear solver in tests.
#ifndef INCSR_LA_LU_H_
#define INCSR_LA_LU_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "la/dense_matrix.h"
#include "la/vector.h"

namespace incsr::la {

/// Factorization P·A = L·U of a square matrix.
class LuFactorization {
 public:
  /// Factors a square matrix. Fails on non-square input or exact
  /// singularity (zero pivot column).
  static Result<LuFactorization> Compute(const DenseMatrix& a);

  std::size_t dim() const { return lu_.rows(); }

  /// Solves A·x = b.
  Result<Vector> Solve(const Vector& b) const;
  /// Solves A·X = B column-by-column.
  Result<DenseMatrix> SolveMatrix(const DenseMatrix& b) const;

  /// det(A) (product of pivots with permutation sign).
  double Determinant() const;

 private:
  LuFactorization() = default;

  DenseMatrix lu_;                  // L below diagonal (unit), U on/above.
  std::vector<std::int32_t> perm_;  // row permutation
  int permutation_sign_ = 1;
};

}  // namespace incsr::la

#endif  // INCSR_LA_LU_H_
