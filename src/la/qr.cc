#include "la/qr.h"

#include <cmath>
#include <vector>

namespace incsr::la {

Result<DenseMatrix> OrthonormalBasis(const DenseMatrix& a, double tolerance) {
  if (a.empty()) {
    return Status::InvalidArgument("OrthonormalBasis: empty matrix");
  }
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  // Work column-major for cache-friendly column operations.
  std::vector<Vector> cols;
  cols.reserve(n);
  double max_norm = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    cols.push_back(a.Col(j));
    max_norm = std::max(max_norm, cols.back().Norm2());
  }
  if (max_norm == 0.0) {
    return Status::FailedPrecondition("OrthonormalBasis: zero matrix");
  }
  std::vector<Vector> basis;
  basis.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    Vector v = std::move(cols[j]);
    // Two MGS passes for numerical orthogonality.
    for (int pass = 0; pass < 2; ++pass) {
      for (const Vector& q : basis) {
        v.Axpy(-Dot(q, v), q);
      }
    }
    double norm = v.Norm2();
    if (norm <= tolerance * max_norm) continue;  // dependent column
    v.Scale(1.0 / norm);
    basis.push_back(std::move(v));
  }
  DenseMatrix q(m, basis.size());
  for (std::size_t j = 0; j < basis.size(); ++j) q.SetCol(j, basis[j]);
  return q;
}

}  // namespace incsr::la
