// Kronecker product and vectorization utilities. These implement the
// "costly tensor products" of the Inc-SVD baseline (Li et al., EDBT'10):
// SimRank's vectorized fixed point (I − C·Q⊗Q)·vec(S) = (1−C)·vec(I)
// collapses, under Q = U·Σ·Vᵀ, to an r²×r² system in vec(X) — which is
// exactly what Kron/Vec/Unvec materialize here.
//
// Convention: Vec stacks COLUMNS, so vec(A·X·B) = (Bᵀ ⊗ A)·vec(X).
#ifndef INCSR_LA_KRON_H_
#define INCSR_LA_KRON_H_

#include "la/dense_matrix.h"
#include "la/vector.h"

namespace incsr::la {

/// Kronecker product A ⊗ B ((a.rows·b.rows) × (a.cols·b.cols)).
DenseMatrix Kron(const DenseMatrix& a, const DenseMatrix& b);

/// Column-stacking vectorization of a matrix.
Vector Vec(const DenseMatrix& a);

/// Inverse of Vec: reshapes a (rows·cols)-vector into rows×cols.
DenseMatrix Unvec(const Vector& v, std::size_t rows, std::size_t cols);

}  // namespace incsr::la

#endif  // INCSR_LA_KRON_H_
