#include "la/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace incsr::la {

DenseMatrix SvdResult::Reconstruct() const {
  // U · diag(sigma): scale columns of U, then multiply by Vᵀ.
  DenseMatrix us = u;
  for (std::size_t i = 0; i < us.rows(); ++i) {
    double* row = us.RowPtr(i);
    for (std::size_t k = 0; k < us.cols(); ++k) row[k] *= sigma[k];
  }
  return MultiplyTransposeB(us, v);
}

namespace {

// One-sided Jacobi on the columns of w (m×n), rotations accumulated into
// v (n×n identity on entry). Returns false if not converged.
bool JacobiOrthogonalize(DenseMatrix* w, DenseMatrix* v,
                         const SvdOptions& options) {
  const std::size_t m = w->rows();
  const std::size_t n = w->cols();
  // Largest initial column norm²; columns negligible relative to it are
  // treated as exact zeros (rotating them only chases rounding noise and
  // stalls convergence on exactly rank-deficient inputs).
  double max_norm_sq = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += (*w)(i, j) * (*w)(i, j);
    max_norm_sq = std::max(max_norm_sq, acc);
  }
  const double negligible_sq =
      max_norm_sq * options.tolerance * options.tolerance;
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // All three inner products are recomputed exactly: maintaining
        // column norms incrementally across rotations accumulates drift
        // that shows up as phantom singular values near sqrt(eps).
        double app = 0.0;
        double aqq = 0.0;
        double apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = (*w)(i, p);
          const double wq = (*w)(i, q);
          app += wp * wp;
          aqq += wq * wq;
          apq += wp * wq;
        }
        if (app <= negligible_sq || aqq <= negligible_sq) continue;
        if (std::fabs(apq) <= options.tolerance * std::sqrt(app * aqq)) {
          continue;
        }
        rotated = true;
        // Two-by-two symmetric Schur decomposition of [[app apq][apq aqq]].
        double tau = (aqq - app) / (2.0 * apq);
        double t = (tau >= 0.0 ? 1.0 : -1.0) /
                   (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          double wp = (*w)(i, p);
          double wq = (*w)(i, q);
          (*w)(i, p) = c * wp - s * wq;
          (*w)(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          double vp = (*v)(i, p);
          double vq = (*v)(i, q);
          (*v)(i, p) = c * vp - s * vq;
          (*v)(i, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) return true;
  }
  return false;
}

}  // namespace

Result<SvdResult> ComputeSvd(const DenseMatrix& a, const SvdOptions& options) {
  if (a.empty()) {
    return Status::InvalidArgument("ComputeSvd: empty matrix");
  }
  // One-sided Jacobi wants at least as many rows as columns; work on the
  // transpose otherwise and swap U/V at the end.
  const bool transposed = a.rows() < a.cols();
  DenseMatrix w = transposed ? a.Transpose() : a;
  const std::size_t m = w.rows();
  const std::size_t n = w.cols();
  DenseMatrix v = DenseMatrix::Identity(n);
  if (!JacobiOrthogonalize(&w, &v, options)) {
    return Status::Internal("Jacobi SVD failed to converge");
  }
  // Singular values are the column norms of the rotated w.
  std::vector<double> sigma(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += w(i, j) * w(i, j);
    sigma[j] = std::sqrt(acc);
  }
  // Order by descending singular value.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });
  const double sigma_max = n == 0 ? 0.0 : sigma[order[0]];
  std::size_t rank = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (sigma[order[k]] > options.rank_tolerance * sigma_max &&
        sigma[order[k]] > 0.0) {
      ++rank;
    }
  }
  if (options.target_rank > 0) rank = std::min(rank, options.target_rank);
  SvdResult result;
  result.u = DenseMatrix(m, rank);
  result.sigma = Vector(rank);
  result.v = DenseMatrix(n, rank);
  for (std::size_t k = 0; k < rank; ++k) {
    std::size_t src = order[k];
    double s = sigma[src];
    result.sigma[k] = s;
    double inv = 1.0 / s;
    for (std::size_t i = 0; i < m; ++i) result.u(i, k) = w(i, src) * inv;
    for (std::size_t i = 0; i < n; ++i) result.v(i, k) = v(i, src);
  }
  if (transposed) std::swap(result.u, result.v);
  return result;
}

Result<std::size_t> NumericalRank(const DenseMatrix& a,
                                  const SvdOptions& options) {
  SvdOptions opts = options;
  opts.target_rank = 0;
  Result<SvdResult> svd = ComputeSvd(a, opts);
  if (!svd.ok()) return svd.status();
  return svd->rank();
}

}  // namespace incsr::la
