// RowBlock — the pluggable payload unit behind la::ScoreStore. A block is
// a tagged struct (no virtual dispatch on the read hot path): either a
// dense row-major slab of `rows_in_block × cols` doubles, or — for
// single-row blocks — a threshold-sparsified row stored as sorted column
// ids with parallel values (index+value compressed layout).
//
// Sparsification contract (see docs/score_store.md):
//   - An entry v is RETAINED when its column is in `keep_cols` (the row's
//     top-k index columns, so index serving never degrades), or when
//     |v| >= epsilon and v is not an exact +0.0.
//   - An exact +0.0 is always dropped: gathering a sparse row fills absent
//     columns with +0.0, so dropping it is bitwise lossless. This is what
//     makes epsilon = 0 a pure compression setting — the gathered row is
//     bitwise identical to the dense original. A -0.0 is kept at
//     epsilon = 0 for the same reason.
//   - Every other dropped entry has |v| < epsilon; `dropped` counts them
//     and `max_dropped_abs` records the largest magnitude lost, which is
//     what the store folds into its cumulative error bound.
#ifndef INCSR_LA_ROW_BLOCK_H_
#define INCSR_LA_ROW_BLOCK_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "la/vector.h"

namespace incsr::la {

/// An exact +0.0 (not -0.0): the one value a gather reproduces bitwise, so
/// dropping it from a sparse layout is always lossless. Shared by the
/// sparsifier and the sparse-native write path (RowWriter merges).
inline bool IsPositiveZero(double v) { return v == 0.0 && !std::signbit(v); }

/// One immutable, reference-counted row block. Blocks are built unshared by
/// the single writer thread and become immutable once a Publish()ed table
/// references them.
struct RowBlock {
  enum class Kind : std::uint8_t { kDense, kSparse };

  Kind kind = Kind::kDense;
  /// kDense: rows_in_block × cols doubles, row-major.
  TrackedDoubles dense;
  /// kSparse (single-row blocks only): strictly increasing column ids with
  /// parallel values.
  TrackedIndices sparse_cols;
  TrackedDoubles sparse_vals;

  bool is_sparse() const { return kind == Kind::kSparse; }

  /// Bytes of numeric payload actually held (excludes struct overhead).
  std::size_t payload_bytes() const {
    return dense.size() * sizeof(double) +
           sparse_cols.size() * sizeof(std::int32_t) +
           sparse_vals.size() * sizeof(double);
  }

  /// Value at `col` of a sparse block (+0.0 when not stored). O(log nnz).
  double SparseAt(std::size_t col) const;

  /// Expands a sparse block into `dst[0..num_cols)`: absent columns become
  /// exact +0.0, stored entries keep their bit patterns.
  void GatherInto(std::size_t num_cols, double* dst) const;
};

/// Contiguous read access to one row of `block` regardless of its
/// representation: a dense row returns its payload pointer untouched; a
/// sparse row is gathered into *scratch (resized to num_cols) and that
/// buffer is returned. `local_row` is the row's offset within the block.
/// This is the single scratch-gather implementation behind both
/// ScoreStore::ReadRow and ScoreStore::View::ReadRow.
inline const double* ReadRowFromBlock(const RowBlock& block,
                                      std::size_t local_row,
                                      std::size_t num_cols, Vector* scratch) {
  if (!block.is_sparse()) {
    return &block.dense[local_row * num_cols];
  }
  scratch->Resize(num_cols);
  block.GatherInto(num_cols, scratch->data());
  return scratch->data();
}

/// Result of sparsifying one dense row.
struct SparsifyResult {
  /// The sparse block, or null when the row failed the density gate (its
  /// retained fraction exceeded max_density) and should stay dense.
  std::shared_ptr<const RowBlock> block;
  /// Dropped entries whose bit pattern was not exact +0.0 — i.e. drops a
  /// reader could observe. Zero means the gathered row is bitwise
  /// identical to the dense input.
  std::size_t dropped = 0;
  /// Largest |v| among those drops (each is < epsilon by construction).
  double max_dropped_abs = 0.0;
};

/// Sparsifies one dense row of `num_cols` entries under the retention
/// contract above. `keep_cols` (any order, duplicates fine) are retained
/// unconditionally. Bails out with a null block as soon as the retained
/// count exceeds max_density · num_cols.
SparsifyResult SparsifyDenseRow(const double* row, std::size_t num_cols,
                                double epsilon, double max_density,
                                std::span<const std::int32_t> keep_cols);

/// Expands a sparse block into a fresh single-row dense block.
std::shared_ptr<const RowBlock> DensifyBlock(const RowBlock& block,
                                             std::size_t num_cols);

/// Single-row sparse block holding one entry: row[col] = value. This is
/// the O(1)-per-row construction path for (scaled) identity matrices —
/// the only way to stand up an n that a dense n² slab cannot hold.
std::shared_ptr<const RowBlock> MakeSingleEntryRow(std::size_t col,
                                                   double value);

}  // namespace incsr::la

#endif  // INCSR_LA_ROW_BLOCK_H_
