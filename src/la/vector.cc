#include "la/vector.h"

#include <algorithm>
#include <cmath>

namespace incsr::la {

Vector Vector::Basis(std::size_t n, std::size_t i) {
  INCSR_CHECK(i < n, "Basis index %zu out of dimension %zu", i, n);
  Vector e(n);
  e[i] = 1.0;
  return e;
}

void Vector::SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Vector::Axpy(double alpha, const Vector& x) {
  INCSR_CHECK(x.size() == size(), "Axpy dimension mismatch %zu vs %zu",
              x.size(), size());
  const double* __restrict xp = x.data();
  double* __restrict yp = data();
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) yp[i] += alpha * xp[i];
}

void Vector::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

double Vector::Norm2() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Vector::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

double Vector::Sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

std::size_t Vector::CountNonZero(double eps) const {
  std::size_t count = 0;
  for (double v : data_) {
    if (std::fabs(v) > eps) ++count;
  }
  return count;
}

double Dot(const Vector& x, const Vector& y) {
  INCSR_CHECK(x.size() == y.size(), "Dot dimension mismatch %zu vs %zu",
              x.size(), y.size());
  double acc = 0.0;
  const double* xp = x.data();
  const double* yp = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) acc += xp[i] * yp[i];
  return acc;
}

double MaxAbsDiff(const Vector& x, const Vector& y) {
  INCSR_CHECK(x.size() == y.size(), "MaxAbsDiff dimension mismatch");
  double best = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    best = std::max(best, std::fabs(x[i] - y[i]));
  }
  return best;
}

void SparseVector::Append(std::int32_t index, double value) {
  INCSR_DCHECK(index >= 0 && static_cast<std::size_t>(index) < dim_,
               "SparseVector index %d out of dimension %zu", index, dim_);
  INCSR_DCHECK(indices_.empty() || indices_.back() < index,
               "SparseVector indices must be strictly increasing");
  indices_.push_back(index);
  values_.push_back(value);
}

void SparseVector::Clear() {
  indices_.clear();
  values_.clear();
}

double SparseVector::At(std::int32_t index) const {
  auto it = std::lower_bound(indices_.begin(), indices_.end(), index);
  if (it == indices_.end() || *it != index) return 0.0;
  return values_[static_cast<std::size_t>(it - indices_.begin())];
}

Vector SparseVector::ToDense() const {
  Vector out(dim_);
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    out[static_cast<std::size_t>(indices_[k])] = values_[k];
  }
  return out;
}

SparseVector SparseVector::FromDense(const Vector& dense, double eps) {
  SparseVector out(dense.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (std::fabs(dense[i]) > eps) {
      out.Append(static_cast<std::int32_t>(i), dense[i]);
    }
  }
  return out;
}

double SparseVector::DotDense(const Vector& dense) const {
  INCSR_CHECK(dense.size() == dim_, "DotDense dimension mismatch");
  double acc = 0.0;
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    acc += values_[k] * dense[static_cast<std::size_t>(indices_[k])];
  }
  return acc;
}

void SparseVector::AxpyInto(double alpha, Vector* y) const {
  INCSR_CHECK(y != nullptr && y->size() == dim_, "AxpyInto dimension mismatch");
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    (*y)[static_cast<std::size_t>(indices_[k])] += alpha * values_[k];
  }
}

double Dot(const SparseVector& x, const SparseVector& y) {
  INCSR_CHECK(x.dim() == y.dim(), "Sparse Dot dimension mismatch");
  double acc = 0.0;
  std::size_t a = 0;
  std::size_t b = 0;
  const auto& xi = x.indices();
  const auto& yi = y.indices();
  while (a < xi.size() && b < yi.size()) {
    if (xi[a] < yi[b]) {
      ++a;
    } else if (yi[b] < xi[a]) {
      ++b;
    } else {
      acc += x.values()[a] * y.values()[b];
      ++a;
      ++b;
    }
  }
  return acc;
}

}  // namespace incsr::la
