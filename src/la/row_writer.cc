#include "la/row_writer.h"

#include <algorithm>
#include <numeric>

namespace incsr::la {

namespace {

// Mixes the column id so consecutive columns spread across the table
// (Fibonacci hashing; the xor-fold keeps entropy when masking low bits).
std::size_t HashCol(std::size_t col) {
  std::uint64_t h = static_cast<std::uint64_t>(col) * 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>(h ^ (h >> 32));
}

constexpr std::size_t kInitialSlots = 64;

}  // namespace

void RowWriter::BeginDense(std::size_t row, double* dense) {
  mode_ = Mode::kDenseDirect;
  spilled_ = false;
  row_ = row;
  cols_ = 0;
  dense_ = dense;
  base_.reset();
  touched_cols_.clear();
  touched_vals_.clear();
}

void RowWriter::BeginSparse(std::size_t row, std::size_t cols,
                            std::shared_ptr<const RowBlock> base) {
  INCSR_DCHECK(base != nullptr && base->is_sparse(),
               "BeginSparse needs a sparse base block");
  mode_ = Mode::kSparseSession;
  spilled_ = false;
  row_ = row;
  cols_ = cols;
  dense_ = nullptr;
  base_ = std::move(base);
  touched_cols_.clear();
  touched_vals_.clear();
  std::fill(slots_.begin(), slots_.end(), std::int32_t{-1});
}

std::size_t RowWriter::Probe(std::size_t col) const {
  std::size_t slot = HashCol(col) & slot_mask_;
  while (slots_[slot] >= 0 &&
         touched_cols_[static_cast<std::size_t>(slots_[slot])] !=
             static_cast<std::int32_t>(col)) {
    slot = (slot + 1) & slot_mask_;
  }
  return slot;
}

void RowWriter::Rehash(std::size_t new_capacity) {
  slots_.assign(new_capacity, -1);
  slot_mask_ = new_capacity - 1;
  for (std::size_t k = 0; k < touched_cols_.size(); ++k) {
    std::size_t slot =
        HashCol(static_cast<std::size_t>(touched_cols_[k])) & slot_mask_;
    while (slots_[slot] >= 0) slot = (slot + 1) & slot_mask_;
    slots_[slot] = static_cast<std::int32_t>(k);
  }
}

void RowWriter::AddSparse(std::size_t col, double delta) {
  if (slots_.empty()) Rehash(kInitialSlots);
  std::size_t slot = Probe(col);
  if (slots_[slot] < 0) {
    if ((touched_cols_.size() + 1) * 2 > slots_.size()) {
      Rehash(slots_.size() * 2);
      slot = Probe(col);
    }
    slots_[slot] = static_cast<std::int32_t>(touched_cols_.size());
    touched_cols_.push_back(static_cast<std::int32_t>(col));
    // Seed with the base block's stored value (exact +0.0 when absent) so
    // the accumulation sequence matches a densified row's bytes exactly.
    touched_vals_.push_back(base_->SparseAt(col));
  }
  touched_vals_[static_cast<std::size_t>(slots_[slot])] += delta;
}

double* RowWriter::Dense() {
  if (dense_ != nullptr) return dense_;
  INCSR_DCHECK(mode_ == Mode::kSparseSession, "Dense outside a session");
  dense_buf_.resize(cols_);
  base_->GatherInto(cols_, dense_buf_.data());
  // The accumulators were seeded from base, so flushing is an overwrite:
  // the buffer ends up exactly as if the row had densified before the Adds.
  for (std::size_t k = 0; k < touched_cols_.size(); ++k) {
    dense_buf_[static_cast<std::size_t>(touched_cols_[k])] = touched_vals_[k];
  }
  spilled_ = true;
  dense_ = dense_buf_.data();
  return dense_;
}

bool RowWriter::MergeSparse(std::size_t max_nnz, TrackedIndices* cols,
                            TrackedDoubles* vals) {
  INCSR_DCHECK(mode_ == Mode::kSparseSession && !spilled_,
               "MergeSparse on a non-sparse session");
  cols->clear();
  vals->clear();
  order_.resize(touched_cols_.size());
  std::iota(order_.begin(), order_.end(), 0);
  std::sort(order_.begin(), order_.end(),
            [this](std::int32_t a, std::int32_t b) {
              return touched_cols_[static_cast<std::size_t>(a)] <
                     touched_cols_[static_cast<std::size_t>(b)];
            });
  const TrackedIndices& base_cols = base_->sparse_cols;
  const TrackedDoubles& base_vals = base_->sparse_vals;
  cols->reserve(base_cols.size() + order_.size());
  vals->reserve(base_cols.size() + order_.size());
  // Base entries between touched columns copy through in bulk runs: no
  // producer ever stores a +0.0 (SparsifyDenseRow and this merge both
  // elide it), so only the touched accumulators need the drop check. The
  // gate matches SparsifyDenseRow's: fail as soon as the retained count
  // would pass max_nnz.
  std::size_t a = 0;  // cursor over base entries (sorted)
  for (std::size_t b = 0; b < order_.size(); ++b) {
    const std::int32_t touched_col =
        touched_cols_[static_cast<std::size_t>(order_[b])];
    const std::size_t run_end = static_cast<std::size_t>(
        std::lower_bound(base_cols.begin() + static_cast<std::ptrdiff_t>(a),
                         base_cols.end(), touched_col) -
        base_cols.begin());
    if (cols->size() + (run_end - a) > max_nnz) return false;
    cols->insert(cols->end(), base_cols.begin() + a, base_cols.begin() + run_end);
    vals->insert(vals->end(), base_vals.begin() + a, base_vals.begin() + run_end);
    a = run_end;
    // The accumulator already folded the base value in (first-touch
    // seeding), so it replaces any overlapping base entry.
    if (a < base_cols.size() && base_cols[a] == touched_col) ++a;
    const double v = touched_vals_[static_cast<std::size_t>(order_[b])];
    if (IsPositiveZero(v)) continue;  // lossless drop, a gather refills it
    if (cols->size() >= max_nnz) return false;
    cols->push_back(touched_col);
    vals->push_back(v);
  }
  if (cols->size() + (base_cols.size() - a) > max_nnz) return false;
  cols->insert(cols->end(), base_cols.begin() + a, base_cols.end());
  vals->insert(vals->end(), base_vals.begin() + a, base_vals.end());
  return true;
}

TrackedDoubles RowWriter::TakeDense() {
  INCSR_DCHECK(spilled_, "TakeDense without a spill");
  dense_ = nullptr;
  spilled_ = false;
  return std::move(dense_buf_);
}

void RowWriter::Finish() {
  mode_ = Mode::kIdle;
  spilled_ = false;
  dense_ = nullptr;
  base_.reset();
}

}  // namespace incsr::la
