// ScoreStore — a row-sharded copy-on-write similarity matrix. The paper's
// central observation is that an edge update perturbs only a small affected
// area of S; the serving layer therefore should not pay O(n²) to publish an
// epoch snapshot when a batch touched only a few rows. ScoreStore makes the
// touched-row structure explicit in storage:
//
//   - Rows live in immutable, reference-counted row blocks behind a
//     row-pointer table. A block covers `rows_per_shard` consecutive rows
//     (power of two; default 1, i.e. a pure per-row table), and its payload
//     is pluggable (la::RowBlock): a dense row-major slab, or — per row,
//     when sparsity is enabled — a threshold-sparsified index+value layout
//     holding only entries ≥ ε plus the row's protected top-k columns.
//   - Publish() snapshots the matrix by copying the POINTER TABLE only —
//     O(n / rows_per_shard) shared_ptr bumps, never the O(n²) payload —
//     and marks every block as shared with that View.
//   - BeginWriteRow(i)/CommitWriteRow() is the write entry point: the
//     store opens a representation-aware RowWriter session per row. A
//     dense-backed row hands out its flat pointer (cloning the block first
//     if it is shared with a live or past View — copy-on-write); a
//     sparse-backed row, under the default kSparseNative write mode, stays
//     sparse: the kernel's (column, delta) stream accumulates in the
//     writer and commit index-merges it with the immutable base block,
//     spilling to dense only past the max_density gate (counted as
//     rows_spilled_dense, separate from explicit DensifyRow promotions).
//     MutableRowPtr(i) remains as a compatibility shim with the old
//     densify-on-write semantics, which kDensifyOnWrite mode restores for
//     the whole store (the A/B baseline). The serving layer re-sparsifies
//     cold rows at publish time (SparsifyRow/DensifyRow), so the tier a
//     row occupies is earned by its traffic, not fixed at construction —
//     but under sparse-native writes a batch-touched sparse row never
//     leaves its tier, so publish no longer pays a re-sparsify for it.
//
// Accuracy contract when sparsity is enabled (docs/score_store.md): every
// entry a sparsification drops has |v| < ε, exact +0.0 entries are always
// dropped losslessly, and stats().max_error_bound accumulates an upper
// bound on the resulting |served − exact| error. At ε = 0 the gathered
// bytes are bitwise identical to the dense original.
//
// Threading model (matches the serving layer): ONE writer thread calls the
// mutating methods (MutableRowPtr, SparsifyRow, DensifyRow, Publish,
// Assign); any number of reader threads read through Views they obtained
// via a synchronizing handoff (e.g. a shared_ptr swap under a mutex).
// Blocks are immutable once shared and freed by shared_ptr refcounting, so
// no reader ever races a write — the COW decision uses a writer-private
// "shared since last clone" flag, not shared_ptr::use_count(), keeping the
// store TSan-clean by design.
#ifndef INCSR_LA_SCORE_STORE_H_
#define INCSR_LA_SCORE_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/check.h"
#include "la/dense_matrix.h"
#include "la/row_block.h"
#include "la/row_writer.h"
#include "la/vector.h"

namespace incsr::la {

/// Cumulative copy-on-write accounting (written by the writer thread only;
/// read it from the writer thread or after a synchronizing handoff).
struct ScoreStoreStats {
  /// Rows cloned by copy-on-write since construction. This is the true
  /// incremental publish cost: rows copied so that published Views stay
  /// immutable while the writer mutates.
  std::uint64_t rows_copied = 0;
  /// Bytes of row payload cloned by copy-on-write.
  std::uint64_t bytes_copied = 0;
  /// Publish() calls.
  std::uint64_t publishes = 0;
  /// Rows (and bytes) materialized from a dense source — construction
  /// and Assign(), i.e. the full-rebuild cost as opposed to the
  /// incremental COW cost above. The shard layer reports its
  /// merge-rebuild bytes from this counter so the accounting follows
  /// what the store actually allocated, whatever the backing
  /// representation.
  std::uint64_t rows_materialized = 0;
  std::uint64_t bytes_materialized = 0;

  // ---- Tiered sparse backing ----------------------------------------------
  /// Cumulative dense→sparse demotions (SparsifyRow).
  std::uint64_t rows_sparsified = 0;
  /// Cumulative sparse→dense transitions, split by cause:
  /// `rows_densified` counts EXPLICIT DensifyRow promotions (tier policy
  /// promoting a hot row); `rows_spilled_dense` counts write-path
  /// densifications (MutableRowPtr densify-on-write, RowWriter Dense()
  /// spills, and sparse-native commits past the max_density gate). Their
  /// sum equals the single conflated counter older benches recorded.
  std::uint64_t rows_densified = 0;
  std::uint64_t rows_spilled_dense = 0;
  /// Sparse-native write sessions that committed as an index-merge (the
  /// row stayed in its sparse tier through a batch write).
  std::uint64_t sparse_write_merges = 0;
  /// Entries dropped below ε across all sparsifications (lossy drops only;
  /// exact +0.0 drops are bitwise lossless and not counted). The write
  /// path never drops lossily — exactness loss is confined to SparsifyRow.
  std::uint64_t eps_drops = 0;
  /// High-water mark of resident dense payload bytes since the last
  /// Publish() — the transient dense footprint the current batch has
  /// materialized. Reset to the then-current dense payload at Publish().
  std::uint64_t epoch_peak_dense_bytes = 0;
  /// Gauges describing the CURRENT tier mix, not cumulative counts.
  std::uint64_t rows_sparse = 0;
  std::uint64_t sparse_payload_bytes = 0;
  /// Upper bound on |served − exact| accumulated by lossy drops: the sum
  /// over sparsification events of max_dropped_abs × error_amplification.
  /// Never decreases (a re-densified row keeps its embedded drops).
  double max_error_bound = 0.0;
};

/// Per-store sparsification policy. ε = 0 with enabled sparsity is a valid
/// pure-compression setting (bitwise-lossless +0.0 elision only).
struct SparsityConfig {
  /// Entries with |v| < epsilon may be dropped (never the protected
  /// keep_cols an index passes to SparsifyRow).
  double epsilon = 0.0;
  /// A row stays dense when its retained fraction exceeds this (an
  /// index+value pair costs 12 bytes against 8 dense, so compressing past
  /// ~0.6 density loses; 0.5 leaves headroom for later inserts).
  double max_density = 0.5;
  /// Multiplier folded into max_error_bound per drop event. The serving
  /// layer sets 1/(1−C) to first-order-account for error propagation
  /// through the C-contractive SimRank iteration.
  double error_amplification = 1.0;
};

/// Row-sharded copy-on-write score matrix. See file comment.
class ScoreStore {
  using ShardTable = std::vector<std::shared_ptr<const RowBlock>>;

 public:
  /// Immutable snapshot of the row-pointer table. Copying a View copies
  /// the table (O(#shards)); pinning an existing View via shared_ptr is
  /// O(1). Reads are valid and byte-stable for the View's lifetime.
  class View {
   public:
    View() = default;

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return rows_ == 0 || cols_ == 0; }

    double operator()(std::size_t i, std::size_t j) const {
      INCSR_DCHECK(i < rows_ && j < cols_, "view index (%zu,%zu) out of (%zu,%zu)",
                   i, j, rows_, cols_);
      const RowBlock& block = *shards_[i >> shard_shift_];
      return block.is_sparse() ? block.SparseAt(j)
                               : block.dense[(i & shard_mask_) * cols_ + j];
    }

    /// True when row i is backed by the sparse layout.
    bool RowIsSparse(std::size_t i) const {
      INCSR_DCHECK(i < rows_, "view row %zu out of %zu", i, rows_);
      return shards_[i >> shard_shift_]->is_sparse();
    }

    /// Raw pointer to row i (contiguous, cols() entries). Valid only for
    /// dense rows; representation-agnostic readers use ReadRow.
    const double* RowPtr(std::size_t i) const {
      INCSR_DCHECK(i < rows_, "view row %zu out of %zu", i, rows_);
      const RowBlock& block = *shards_[i >> shard_shift_];
      INCSR_DCHECK(!block.is_sparse(), "RowPtr on sparse row %zu", i);
      return &block.dense[(i & shard_mask_) * cols_];
    }

    /// Contiguous read access to row i regardless of its representation: a
    /// dense row returns its payload pointer untouched; a sparse row is
    /// gathered into *scratch (resized to cols()) and that buffer is
    /// returned. The pointer is invalidated by the next ReadRow into the
    /// same scratch.
    const double* ReadRow(std::size_t i, Vector* scratch) const {
      INCSR_DCHECK(i < rows_, "view row %zu out of %zu", i, rows_);
      return ReadRowFromBlock(*shards_[i >> shard_shift_], i & shard_mask_,
                              cols_, scratch);
    }

    /// Materializes the viewed matrix (bitwise-exact copy).
    DenseMatrix ToDense() const;

   private:
    friend class ScoreStore;
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t shard_shift_ = 0;
    std::size_t shard_mask_ = 0;
    ShardTable shards_;
  };

  ScoreStore() = default;
  /// Takes ownership of a dense matrix; rows_per_shard must be a power of
  /// two (1 = one shard per row).
  explicit ScoreStore(DenseMatrix dense, std::size_t rows_per_shard = 1);

  /// n×n matrix `value · I` built sparse-direct: one stored entry per row,
  /// O(n) total instead of the O(n²) dense slab. This is how an engine
  /// stands up an edgeless-graph state at an n the dense store cannot
  /// hold (rows densify on first write as usual).
  static ScoreStore ScaledIdentity(std::size_t n, double value);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  std::size_t rows_per_shard() const { return std::size_t{1} << shard_shift_; }

  double operator()(std::size_t i, std::size_t j) const {
    INCSR_DCHECK(i < rows_ && j < cols_, "index (%zu,%zu) out of (%zu,%zu)", i,
                 j, rows_, cols_);
    const RowBlock& block = *shards_[i >> shard_shift_];
    return block.is_sparse() ? block.SparseAt(j)
                             : block.dense[(i & shard_mask_) * cols_ + j];
  }

  /// True when row i is backed by the sparse layout.
  bool RowIsSparse(std::size_t i) const {
    INCSR_DCHECK(i < rows_, "row %zu out of %zu", i, rows_);
    return shards_[i >> shard_shift_]->is_sparse();
  }

  /// Raw pointer to row i for READS (contiguous, cols() entries). Never
  /// triggers a copy; do not write through it. Valid only for dense rows —
  /// representation-agnostic readers use ReadRow.
  const double* RowPtr(std::size_t i) const {
    INCSR_DCHECK(i < rows_, "row %zu out of %zu", i, rows_);
    const RowBlock& block = *shards_[i >> shard_shift_];
    INCSR_DCHECK(!block.is_sparse(), "RowPtr on sparse row %zu", i);
    return &block.dense[(i & shard_mask_) * cols_];
  }

  /// Contiguous read access to row i regardless of representation (see
  /// View::ReadRow).
  const double* ReadRow(std::size_t i, Vector* scratch) const {
    INCSR_DCHECK(i < rows_, "row %zu out of %zu", i, rows_);
    return ReadRowFromBlock(*shards_[i >> shard_shift_], i & shard_mask_,
                            cols_, scratch);
  }

  /// Raw pointer to row i for WRITES — the densify-on-write compatibility
  /// shim. Clones the containing block first if it is shared with any
  /// published View (copy-on-write), densifying a sparse block in the same
  /// step (counted as rows_spilled_dense). New code uses BeginWriteRow/
  /// CommitWriteRow, which keeps sparse rows sparse. Writer thread only.
  double* MutableRowPtr(std::size_t i);

  /// How writes land on sparse-backed rows. kSparseNative (the default)
  /// keeps them sparse via RowWriter accumulation sessions; kDensifyOnWrite
  /// restores the legacy behavior — every touched sparse row densifies —
  /// as the A/B baseline and for representation-bisection debugging. Both
  /// modes produce bitwise-identical readable bytes at ε = 0.
  enum class WriteMode : std::uint8_t { kSparseNative, kDensifyOnWrite };
  void set_write_mode(WriteMode mode) { write_mode_ = mode; }
  WriteMode write_mode() const { return write_mode_; }

  /// Opens a write session for row i on *w (see la::RowWriter): dense rows
  /// (and sparse rows under kDensifyOnWrite) get a dense-direct session
  /// after the usual COW resolution; sparse rows under kSparseNative get
  /// an accumulation session against the immutable base block — nothing
  /// the store publishes changes until CommitWriteRow. Writer thread only;
  /// sessions on DISJOINT rows may be filled (Add/Dense) from parallel
  /// workers between Begin and Commit.
  void BeginWriteRow(std::size_t i, RowWriter* w);

  /// Closes a session opened by BeginWriteRow. Dense-direct sessions are a
  /// no-op (the writes already landed). A sparse session with no writes
  /// leaves the row untouched (no swap, no delta record); otherwise the
  /// merged block — sparse, or dense past the max_density gate / after a
  /// Dense() spill — is swapped in and the touched-row delta recorded.
  /// Writer thread only.
  void CommitWriteRow(RowWriter* w);

  // ---- Tiered sparse backing ----------------------------------------------

  /// Enables per-row sparsification under `config`. Requires
  /// rows_per_shard == 1 (the sparse layout is a per-row structure).
  void set_sparsity(const SparsityConfig& config);
  bool sparsity_enabled() const { return sparsity_enabled_; }
  const SparsityConfig& sparsity() const { return sparsity_; }

  /// Demotes dense row i to the sparse layout, retaining entries ≥ ε plus
  /// all of `keep_cols` (the row's top-k index columns, any order).
  /// Returns false — leaving the row dense — when the row is already
  /// sparse or fails the max_density gate. On success `*dropped_out`
  /// (optional) receives the number of lossy drops; when it is zero the
  /// row's readable bytes are unchanged. Writer thread only; like
  /// MutableRowPtr, a demotion of a shared row records it in the
  /// touched-row delta so index/cache maintenance sees it.
  bool SparsifyRow(std::size_t i, std::span<const std::int32_t> keep_cols,
                   std::size_t* dropped_out = nullptr);

  /// Promotes sparse row i back to the dense layout (content unchanged;
  /// absent entries become +0.0). Returns false when already dense.
  /// Writer thread only.
  bool DensifyRow(std::size_t i);

  /// Dense bytes the currently sparse rows would occupy minus their actual
  /// sparse payload — the memory the tiering is saving right now.
  std::uint64_t bytes_saved() const;
  /// Resident numeric payload across all rows under the current tier mix.
  std::uint64_t payload_bytes() const;

  // ---- Touched-row delta surface -----------------------------------------
  // Between two Publish() calls, the rows whose bytes may differ from the
  // previous View are exactly the rows written through MutableRowPtr or
  // retired/promoted by SparsifyRow/DensifyRow; the COW clone records them
  // here at shard granularity. The serving layer reads this (before
  // calling Publish(), which resets it) to re-rank its per-node top-k
  // index and invalidate its query cache from the rows the batch ACTUALLY
  // wrote — exact for every update algorithm, unlike the analytic
  // affected-area statistics. Writer thread only.

  /// True when every row must be assumed touched: fresh construction or
  /// Assign(), where writes precede the first Publish() and are not
  /// individually tracked.
  bool all_rows_touched() const { return all_rows_touched_; }

  /// Row indices copy-on-written since the last Publish(), duplicate-free
  /// (a shard clones at most once per epoch). Meaningless while
  /// all_rows_touched() is set.
  const std::vector<std::int32_t>& touched_rows() const {
    return touched_rows_;
  }

  /// Copies column j into a Vector (column scan across shards).
  Vector Col(std::size_t j) const;

  /// Materializes the current matrix (bitwise-exact copy).
  DenseMatrix ToDense() const;

  /// Snapshots the current matrix as an immutable View: copies the row
  /// pointer table and marks every shard shared, so subsequent writes COW.
  /// O(#shards) — never touches the O(n²) payload. Writer thread only.
  View Publish();

  /// Replaces the whole matrix (e.g. after a node-count change). Every
  /// shard is rebuilt unshared and dense; previously published Views keep
  /// serving the old content. Writer thread only.
  void Assign(DenseMatrix dense);

  const ScoreStoreStats& stats() const { return stats_; }

 private:
  void BuildShards(const DenseMatrix& dense);
  std::size_t RowsInShard(std::size_t shard) const;
  // Shared→unshared transition bookkeeping: records the shard's rows in
  // the touched delta (the transition happens at most once per shard per
  // epoch, keeping the list duplicate-free without a lookup).
  void RecordTouchedShard(std::size_t s);
  // Resident dense payload bytes right now, and the watermark bump every
  // dense-increasing transition calls (epoch_peak_dense_bytes).
  std::uint64_t DensePayloadBytes() const;
  void BumpDensePeak();

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t shard_shift_ = 0;
  std::size_t shard_mask_ = 0;
  ShardTable shards_;
  // Writer-private COW flags: shared_[s] is true iff shard s is referenced
  // by at least one Publish()ed table and must be cloned before mutation.
  std::vector<std::uint8_t> shared_;
  // Writer-private touched-row delta since the last Publish() (see the
  // delta-surface accessors above).
  bool all_rows_touched_ = false;
  std::vector<std::int32_t> touched_rows_;
  bool sparsity_enabled_ = false;
  SparsityConfig sparsity_;
  WriteMode write_mode_ = WriteMode::kSparseNative;
  // CommitWriteRow merge scratch: a commit into a writer-private shard
  // swaps these with the block's arrays, so sustained churn on the same
  // rows recycles the same two buffers instead of allocating per merge.
  TrackedIndices merge_scratch_cols_;
  TrackedDoubles merge_scratch_vals_;
  ScoreStoreStats stats_;
};

/// Largest |a - b| entry, mixed-representation overloads (shape-checked).
double MaxAbsDiff(const ScoreStore& a, const DenseMatrix& b);
double MaxAbsDiff(const DenseMatrix& a, const ScoreStore& b);
double MaxAbsDiff(const ScoreStore& a, const ScoreStore& b);
double MaxAbsDiff(const ScoreStore::View& a, const DenseMatrix& b);
double MaxAbsDiff(const ScoreStore::View& a, const ScoreStore::View& b);

}  // namespace incsr::la

#endif  // INCSR_LA_SCORE_STORE_H_
