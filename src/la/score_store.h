// ScoreStore — a row-sharded copy-on-write similarity matrix. The paper's
// central observation is that an edge update perturbs only a small affected
// area of S; the serving layer therefore should not pay O(n²) to publish an
// epoch snapshot when a batch touched only a few rows. ScoreStore makes the
// touched-row structure explicit in storage:
//
//   - Rows live in immutable, reference-counted row blocks (shards) behind
//     a row-pointer table. A shard is `rows_per_shard` consecutive rows
//     (power of two; default 1, i.e. a pure per-row table).
//   - Publish() snapshots the matrix by copying the POINTER TABLE only —
//     O(n / rows_per_shard) shared_ptr bumps, never the O(n²) payload —
//     and marks every shard as shared with that View.
//   - MutableRowPtr(i) is the single write entry point: the first write
//     into a shard that is shared with a live or past View clones it
//     (copy-on-write), so a pinned View stays byte-stable forever while
//     the writer keeps mutating. Rows a batch never touches are never
//     copied; the cumulative clone cost is the publish cost, and it is
//     O(rows touched), exactly the affected-area bound.
//
// Threading model (matches the serving layer): ONE writer thread calls the
// mutating methods (MutableRowPtr, Publish, Assign); any number of reader
// threads read through Views they obtained via a synchronizing handoff
// (e.g. a shared_ptr swap under a mutex). Shards are immutable once shared
// and freed by shared_ptr refcounting, so no reader ever races a write —
// the COW decision uses a writer-private "shared since last clone" flag,
// not shared_ptr::use_count(), keeping the store TSan-clean by design.
#ifndef INCSR_LA_SCORE_STORE_H_
#define INCSR_LA_SCORE_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "la/dense_matrix.h"
#include "la/vector.h"

namespace incsr::la {

/// Cumulative copy-on-write accounting (written by the writer thread only;
/// read it from the writer thread or after a synchronizing handoff).
struct ScoreStoreStats {
  /// Rows cloned by copy-on-write since construction. This is the true
  /// incremental publish cost: rows copied so that published Views stay
  /// immutable while the writer mutates.
  std::uint64_t rows_copied = 0;
  /// Bytes of row payload cloned by copy-on-write.
  std::uint64_t bytes_copied = 0;
  /// Publish() calls.
  std::uint64_t publishes = 0;
  /// Rows (and bytes) materialized from a dense source — construction
  /// and Assign(), i.e. the full-rebuild cost as opposed to the
  /// incremental COW cost above. The shard layer reports its
  /// merge-rebuild bytes from this counter so the accounting follows
  /// what the store actually allocated, whatever the backing
  /// representation.
  std::uint64_t rows_materialized = 0;
  std::uint64_t bytes_materialized = 0;
};

/// Row-sharded copy-on-write score matrix. See file comment.
class ScoreStore {
  struct Shard {
    TrackedDoubles data;  // rows_in_shard × cols, row-major
  };
  using ShardTable = std::vector<std::shared_ptr<const Shard>>;

 public:
  /// Immutable snapshot of the row-pointer table. Copying a View copies
  /// the table (O(#shards)); pinning an existing View via shared_ptr is
  /// O(1). Reads are valid and byte-stable for the View's lifetime.
  class View {
   public:
    View() = default;

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return rows_ == 0 || cols_ == 0; }

    double operator()(std::size_t i, std::size_t j) const {
      INCSR_DCHECK(i < rows_ && j < cols_, "view index (%zu,%zu) out of (%zu,%zu)",
                   i, j, rows_, cols_);
      return RowPtr(i)[j];
    }

    /// Raw pointer to row i (contiguous, cols() entries).
    const double* RowPtr(std::size_t i) const {
      INCSR_DCHECK(i < rows_, "view row %zu out of %zu", i, rows_);
      return &shards_[i >> shard_shift_]->data[(i & shard_mask_) * cols_];
    }

    /// Materializes the viewed matrix (bitwise-exact copy).
    DenseMatrix ToDense() const;

   private:
    friend class ScoreStore;
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t shard_shift_ = 0;
    std::size_t shard_mask_ = 0;
    ShardTable shards_;
  };

  ScoreStore() = default;
  /// Takes ownership of a dense matrix; rows_per_shard must be a power of
  /// two (1 = one shard per row).
  explicit ScoreStore(DenseMatrix dense, std::size_t rows_per_shard = 1);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  std::size_t rows_per_shard() const { return std::size_t{1} << shard_shift_; }

  double operator()(std::size_t i, std::size_t j) const {
    INCSR_DCHECK(i < rows_ && j < cols_, "index (%zu,%zu) out of (%zu,%zu)", i,
                 j, rows_, cols_);
    return RowPtr(i)[j];
  }

  /// Raw pointer to row i for READS (contiguous, cols() entries). Never
  /// triggers a copy; do not write through it.
  const double* RowPtr(std::size_t i) const {
    INCSR_DCHECK(i < rows_, "row %zu out of %zu", i, rows_);
    return &shards_[i >> shard_shift_]->data[(i & shard_mask_) * cols_];
  }

  /// Raw pointer to row i for WRITES. Clones the containing shard first if
  /// it is shared with any published View (copy-on-write). Writer thread
  /// only.
  double* MutableRowPtr(std::size_t i);

  // ---- Touched-row delta surface -----------------------------------------
  // Between two Publish() calls, the rows whose bytes may differ from the
  // previous View are exactly the rows written through MutableRowPtr; the
  // COW clone records them here at shard granularity. The serving layer
  // reads this (before calling Publish(), which resets it) to re-rank its
  // per-node top-k index and invalidate its query cache from the rows the
  // batch ACTUALLY wrote — exact for every update algorithm, unlike the
  // analytic affected-area statistics. Writer thread only.

  /// True when every row must be assumed touched: fresh construction or
  /// Assign(), where writes precede the first Publish() and are not
  /// individually tracked.
  bool all_rows_touched() const { return all_rows_touched_; }

  /// Row indices copy-on-written since the last Publish(), duplicate-free
  /// (a shard clones at most once per epoch). Meaningless while
  /// all_rows_touched() is set.
  const std::vector<std::int32_t>& touched_rows() const {
    return touched_rows_;
  }

  /// Copies column j into a Vector (column scan across shards).
  Vector Col(std::size_t j) const;

  /// Materializes the current matrix (bitwise-exact copy).
  DenseMatrix ToDense() const;

  /// Snapshots the current matrix as an immutable View: copies the row
  /// pointer table and marks every shard shared, so subsequent writes COW.
  /// O(#shards) — never touches the O(n²) payload. Writer thread only.
  View Publish();

  /// Replaces the whole matrix (e.g. after a node-count change). Every
  /// shard is rebuilt unshared; previously published Views keep serving
  /// the old content. Writer thread only.
  void Assign(DenseMatrix dense);

  const ScoreStoreStats& stats() const { return stats_; }

 private:
  void BuildShards(const DenseMatrix& dense);
  std::size_t RowsInShard(std::size_t shard) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t shard_shift_ = 0;
  std::size_t shard_mask_ = 0;
  ShardTable shards_;
  // Writer-private COW flags: shared_[s] is true iff shard s is referenced
  // by at least one Publish()ed table and must be cloned before mutation.
  std::vector<std::uint8_t> shared_;
  // Writer-private touched-row delta since the last Publish() (see the
  // delta-surface accessors above).
  bool all_rows_touched_ = false;
  std::vector<std::int32_t> touched_rows_;
  ScoreStoreStats stats_;
};

/// Largest |a - b| entry, mixed-representation overloads (shape-checked).
double MaxAbsDiff(const ScoreStore& a, const DenseMatrix& b);
double MaxAbsDiff(const DenseMatrix& a, const ScoreStore& b);
double MaxAbsDiff(const ScoreStore& a, const ScoreStore& b);
double MaxAbsDiff(const ScoreStore::View& a, const DenseMatrix& b);
double MaxAbsDiff(const ScoreStore::View& a, const ScoreStore::View& b);

}  // namespace incsr::la

#endif  // INCSR_LA_SCORE_STORE_H_
