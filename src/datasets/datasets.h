// Synthetic stand-ins for the paper's evaluation datasets. The original
// data (DBLP co-citation snapshots, SNAP cit-HepPh, a YouTube related-video
// crawl) is not redistributable/reachable offline, so each dataset is
// replaced by a generative model matching its documented shape — node
// count, edge count (≈ average in-degree d), heavy-tailed degree profile,
// and timestamp-ordered growth that SnapshotSeries cuts into the paper's
// "year"/"video age" snapshots. A scale factor shrinks n and m
// proportionally (default 1/10 — d and the ΔE fractions are preserved, so
// every relative experimental shape survives; see DESIGN.md §4).
#ifndef INCSR_DATASETS_DATASETS_H_
#define INCSR_DATASETS_DATASETS_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "graph/snapshots.h"

namespace incsr::datasets {

/// Which paper dataset to emulate.
enum class DatasetKind {
  /// DBLP co-citation: n = 13,634, m = 93,560 at full scale (d ≈ 6.9).
  kDblp,
  /// cit-HepPh: n = 34,546, m = 421,578 at full scale (d ≈ 12.2).
  kCitH,
  /// YouTube related videos: n = 178,470, m = 953,534 (d ≈ 5.3).
  kYouTu,
};

/// Display name ("DBLP", "CitH", "YouTu").
std::string DatasetName(DatasetKind kind);

/// Construction parameters.
struct DatasetOptions {
  /// Linear scale on the paper's node/edge counts.
  double scale = 0.1;
  /// Number of snapshot cut points (the paper plots 5 per dataset).
  std::size_t num_snapshots = 5;
  /// First snapshot's fraction of the full edge stream (the paper's base
  /// graphs hold ~80-94% of the final edges).
  double base_fraction = 0.8;
  std::uint64_t seed = 2014;
};

/// Builds the snapshot series for a dataset stand-in.
Result<graph::SnapshotSeries> MakeDataset(DatasetKind kind,
                                          const DatasetOptions& options = {});

/// Full-scale node count of the emulated dataset (before scaling).
std::size_t FullScaleNodes(DatasetKind kind);
/// Full-scale edge count of the emulated dataset (before scaling).
std::size_t FullScaleEdges(DatasetKind kind);

}  // namespace incsr::datasets

#endif  // INCSR_DATASETS_DATASETS_H_
