#include "datasets/datasets.h"

#include <algorithm>
#include <cmath>

#include "graph/generators.h"

namespace incsr::datasets {

std::string DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kDblp:
      return "DBLP";
    case DatasetKind::kCitH:
      return "CitH";
    case DatasetKind::kYouTu:
      return "YouTu";
  }
  return "Unknown";
}

std::size_t FullScaleNodes(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kDblp:
      return 13634;
    case DatasetKind::kCitH:
      return 34546;
    case DatasetKind::kYouTu:
      return 178470;
  }
  return 0;
}

std::size_t FullScaleEdges(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kDblp:
      return 93560;
    case DatasetKind::kCitH:
      return 421578;
    case DatasetKind::kYouTu:
      return 953534;
  }
  return 0;
}

Result<graph::SnapshotSeries> MakeDataset(DatasetKind kind,
                                          const DatasetOptions& options) {
  if (options.scale <= 0.0 || options.scale > 1.0) {
    return Status::InvalidArgument("dataset scale must be in (0, 1]");
  }
  const auto nodes = static_cast<std::size_t>(std::llround(
      static_cast<double>(FullScaleNodes(kind)) * options.scale));
  const auto edges = static_cast<std::size_t>(std::llround(
      static_cast<double>(FullScaleEdges(kind)) * options.scale));
  const double mean_degree =
      static_cast<double>(edges) / static_cast<double>(std::max<std::size_t>(nodes, 1));

  Result<std::vector<graph::TimestampedEdge>> stream = [&] {
    switch (kind) {
      case DatasetKind::kDblp:
        // Citation growth with moderate preferential attachment: papers
        // cite earlier papers, well-cited papers attract more citations.
        return graph::PreferentialCitation({.num_nodes = nodes,
                                            .mean_out_degree = mean_degree,
                                            .preferential_mix = 0.7,
                                            .seed = options.seed});
      case DatasetKind::kCitH:
        // Denser physics-citation profile, stronger rich-get-richer.
        return graph::PreferentialCitation({.num_nodes = nodes,
                                            .mean_out_degree = mean_degree,
                                            .preferential_mix = 0.8,
                                            .seed = options.seed + 1});
      case DatasetKind::kYouTu:
        // Related-video graph: node arrivals mixed with ongoing edge churn
        // between existing videos. Related-video lists are strongly
        // clustered by topic, which is what keeps SimRank's affected areas
        // small on the real data (the paper measures ~79% of pairs pruned
        // / ~21% affected on YOUTU). A radius-K out-ball covers a much
        // larger FRACTION of a scaled-down graph than of the 178k-node
        // original, so the stand-in compensates with topic-pure
        // communities of ~150 videos (bridged only through the arrival
        // process), calibrated so the measured S-sparsity matches the
        // paper's affected-area statistic (DESIGN.md §4).
        return graph::EvolvingLinkage(
            {.num_nodes = nodes,
             .num_edges = edges,
             .preferential_mix = 0.6,
             .seed_nodes = std::max<std::size_t>(5, nodes / 200),
             .num_communities = std::max<std::size_t>(1, nodes / 150),
             .intra_community_prob = 1.0,
             .seed = options.seed + 2});
    }
    return Result<std::vector<graph::TimestampedEdge>>(
        Status::InvalidArgument("unknown dataset kind"));
  }();
  if (!stream.ok()) return stream.status();
  return graph::SnapshotSeries::FromStream(nodes, std::move(stream).value(),
                                           options.num_snapshots,
                                           options.base_fraction);
}

}  // namespace incsr::datasets
