#include "service/simrank_service.h"

#include <unordered_map>
#include <utility>

#include "common/scheduler.h"
#include "obs/trace.h"

namespace incsr::service {

Result<std::unique_ptr<SimRankService>> SimRankService::Create(
    core::DynamicSimRank index, const ServiceOptions& options) {
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (options.max_batch == 0) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  return std::unique_ptr<SimRankService>(
      new SimRankService(std::move(index), options, /*replica=*/false));
}

Result<std::unique_ptr<SimRankService>> SimRankService::CreateReplica(
    core::DynamicSimRank index, const ServiceOptions& options) {
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (options.max_batch == 0) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  return std::unique_ptr<SimRankService>(
      new SimRankService(std::move(index), options, /*replica=*/true));
}

SimRankService::SimRankService(core::DynamicSimRank index,
                               const ServiceOptions& options, bool replica)
    : options_(options),
      replica_(replica),
      index_(std::move(index)),
      cache_(options.cache_capacity),
      topk_index_(options.topk_index_capacity),
      tiering_(options.sparse.enabled),
      adaptive_topk_(options.adaptive_topk_index &&
                     options.topk_index_capacity > 0) {
  if (tiering_) {
    la::SparsityConfig config;
    config.epsilon = options_.sparse.epsilon;
    config.max_density = options_.sparse.max_density;
    // First-order propagation through the C-contractive iteration: a
    // stored perturbation of δ can grow to at most δ/(1−C) in S.
    config.error_amplification = 1.0 / (1.0 - index_.options().damping);
    index_.mutable_score_store()->set_sparsity(config);
    // Sparse-native writes are the store's default; the policy flag
    // restores the legacy densify-on-write behavior as an A/B baseline.
    index_.mutable_score_store()->set_write_mode(
        options_.sparse.densify_on_write
            ? la::ScoreStore::WriteMode::kDensifyOnWrite
            : la::ScoreStore::WriteMode::kSparseNative);
  }
  auto initial = std::make_shared<EpochSnapshot>();
  initial->epoch = 0;
  // Initial tier pass BEFORE the first publish and index build: with no
  // traffic yet every row is cold, so a dense-built store starts at the
  // policy's chosen mix, and the index below ranks the post-demotion
  // bytes (keep sets are empty on purpose — entries do not exist yet).
  if (tiering_) ApplyTierPolicy(/*all_touched=*/true);
  initial->graph = index_.SnapshotGraph();
  // Pointer-table bump, not a matrix copy; marks every row shared so the
  // first batch copy-on-writes exactly the rows it touches.
  initial->scores = index_.mutable_score_store()->Publish();
  // Initial index build is the one full O(n² log c) pass; every later
  // epoch re-ranks only the rows its batch touched.
  topk_index_.RebuildAll(index_.scores());
  initial->topk = topk_index_.Publish();
  topk_rows_reranked_.store(topk_index_.rows_reranked(),
                            std::memory_order_relaxed);
  MirrorStorageCounters();
  snapshot_ = std::move(initial);
  // A replica has no ingest pipeline: its state advances only through
  // ApplyReplicated, synchronously on the replication stream's thread.
  if (!replica_) {
    applier_ = std::thread(&SimRankService::ApplierLoop, this);
  }
}

SimRankService::~SimRankService() { Stop(); }

Status SimRankService::Submit(const graph::EdgeUpdate& update) {
  if (replica_) {
    return Status::NotSupported(
        "replica is read-only: submit updates to the primary");
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) {
    return Status::FailedPrecondition("SimRankService is stopped");
  }
  if (queue_.size() >= options_.queue_capacity) {
    if (options_.backpressure == BackpressurePolicy::kReject) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted("ingest queue full");
    }
    queue_not_full_.wait(lock, [this] {
      return stopping_ || queue_.size() < options_.queue_capacity;
    });
    if (stopping_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::FailedPrecondition("SimRankService stopped while waiting");
    }
  }
  queue_.push_back({update, obs::Tracer::NowNs()});
  ++accepted_;
  queue_not_empty_.notify_one();
  return Status::OK();
}

Status SimRankService::SubmitBatch(
    const std::vector<graph::EdgeUpdate>& updates) {
  for (const graph::EdgeUpdate& update : updates) {
    INCSR_RETURN_IF_ERROR(Submit(update));
  }
  return Status::OK();
}

Status SimRankService::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  const std::uint64_t target = accepted_;
  progress_.wait(lock, [this, target] { return published_ >= target; });
  return Status::OK();
}

void SimRankService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    queue_not_empty_.notify_all();
    queue_not_full_.notify_all();
  }
  // stop_mu_ serializes concurrent Stop() callers around the join.
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (applier_.joinable()) applier_.join();
}

std::uint64_t SimRankService::SetAppliedBatchListener(
    AppliedBatchListener listener) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  listener_ = std::move(listener);
  // Epoch read under listener_mu_: any batch the applier already handed
  // to the OLD listener published before this lock, so its epoch is
  // visible here — the returned value is a floor below which the new
  // listener will never be invoked (it may still see this exact epoch
  // again if the applier raced the swap, hence the log's duplicate drop).
  std::lock_guard<std::mutex> snapshot_lock(snapshot_mu_);
  return snapshot_->epoch;
}

Status SimRankService::ApplyReplicated(
    std::uint64_t seq, const std::vector<graph::EdgeUpdate>& batch) {
  if (!replica_) {
    return Status::FailedPrecondition(
        "ApplyReplicated requires a CreateReplica service");
  }
  // stop_mu_ doubles as the replication-stream serializer: one batch at a
  // time, and Stop() (which takes it too) cannot interleave with an apply.
  std::lock_guard<std::mutex> apply_lock(stop_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("replica service is stopped");
    }
  }
  std::uint64_t current;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    current = snapshot_->epoch;
  }
  if (seq != current + 1) {
    return Status::FailedPrecondition(
        "replication sequence gap: expected seq " +
        std::to_string(current + 1) + ", got " + std::to_string(seq));
  }
  ApplyAndPublish(batch);
  std::lock_guard<std::mutex> lock(mu_);
  accepted_ += batch.size();
  published_ += batch.size();
  progress_.notify_all();
  return Status::OK();
}

std::shared_ptr<const EpochSnapshot> SimRankService::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

Result<double> SimRankService::Score(graph::NodeId a, graph::NodeId b) const {
  std::shared_ptr<const EpochSnapshot> snap = Snapshot();
  if (!snap->graph.HasNode(a) || !snap->graph.HasNode(b)) {
    return Status::OutOfRange("Score: node out of range");
  }
  // Row `a` is the one whose storage this read touches.
  if (tiering_ || adaptive_topk_) sketch_.Bump(a);
  return snap->scores(static_cast<std::size_t>(a),
                      static_cast<std::size_t>(b));
}

Result<std::vector<core::ScoredPair>> SimRankService::TopKFor(
    graph::NodeId query, std::size_t k) const {
  if (tiering_ || adaptive_topk_) sketch_.Bump(query);
  std::vector<core::ScoredPair> results;
  if (cache_.Lookup(query, k, &results)) return results;
  std::shared_ptr<const EpochSnapshot> snap = Snapshot();
  if (!snap->graph.HasNode(query)) {
    return Status::OutOfRange("TopKFor: node out of range");
  }
  if (snap->topk.Serve(query, k, &results)) {
    // O(k) index read, bitwise identical to the scan below: the entry is
    // the contract-ordered prefix of this same snapshot's row.
    topk_served_.fetch_add(1, std::memory_order_relaxed);
  } else {
    results = core::TopKForOf(snap->scores, query, k);
    if (topk_index_.enabled()) {
      topk_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      // Queue this node for a capacity grow at the next publish — but
      // only if a grow could actually cover k (caps clamp at 2× base).
      if (adaptive_topk_ && k <= 2 * options_.topk_index_capacity) {
        constexpr std::size_t kGrowQueueCap = 1024;
        std::lock_guard<std::mutex> lock(grow_mu_);
        if (grow_queue_.size() < kGrowQueueCap) grow_queue_.push_back(query);
      }
    }
  }
  cache_.Insert(query, k, snap->epoch, results);
  return results;
}

std::vector<core::ScoredPair> SimRankService::TopKPairs(std::size_t k) const {
  std::vector<core::ScoredPair> results;
  if (cache_.LookupPairs(k, &results)) return results;
  std::shared_ptr<const EpochSnapshot> snap = Snapshot();
  if (snap->topk.ServePairs(k, &results)) {
    // K-way merge over the per-node entries, bitwise identical to the
    // scan below: both emit the same strict total order over the same
    // snapshot bytes (see TopKIndex::View::ServePairs).
    topk_pairs_served_.fetch_add(1, std::memory_order_relaxed);
  } else {
    results = core::TopKPairsOf(snap->scores, k);
    if (topk_index_.enabled()) {
      topk_pairs_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  cache_.InsertPairs(k, snap->epoch, results);
  return results;
}

ServiceStats SimRankService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.submitted = accepted_;
    out.queue_depth = queue_.size();
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    out.epoch = snapshot_->epoch;
  }
  out.applied = applied_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.rows_published = rows_published_.load(std::memory_order_relaxed);
  out.bytes_published = bytes_published_.load(std::memory_order_relaxed);
  out.topk_index_served = topk_served_.load(std::memory_order_relaxed);
  out.topk_index_fallbacks = topk_fallbacks_.load(std::memory_order_relaxed);
  out.topk_index_rows_reranked =
      topk_rows_reranked_.load(std::memory_order_relaxed);
  out.topk_pairs_served = topk_pairs_served_.load(std::memory_order_relaxed);
  out.topk_pairs_fallbacks =
      topk_pairs_fallbacks_.load(std::memory_order_relaxed);
  out.rows_sparse = rows_sparse_.load(std::memory_order_relaxed);
  out.rows_dense = rows_dense_.load(std::memory_order_relaxed);
  out.bytes_saved = bytes_saved_.load(std::memory_order_relaxed);
  out.sparse_eps_drops = sparse_eps_drops_.load(std::memory_order_relaxed);
  out.sparse_max_error_bound =
      sparse_max_error_bound_.load(std::memory_order_relaxed);
  out.tier_demotions = tier_demotions_.load(std::memory_order_relaxed);
  out.tier_promotions = tier_promotions_.load(std::memory_order_relaxed);
  out.rows_spilled_dense =
      rows_spilled_dense_.load(std::memory_order_relaxed);
  out.sparse_write_merges =
      sparse_write_merges_.load(std::memory_order_relaxed);
  out.graph_bytes_copied = graph_bytes_copied_.load(std::memory_order_relaxed);
  out.topk_cap_grows = topk_cap_grows_.load(std::memory_order_relaxed);
  out.topk_cap_shrinks = topk_cap_shrinks_.load(std::memory_order_relaxed);
  out.queue_wait_ns = queue_wait_hist_.snapshot();
  out.apply_ns = apply_hist_.snapshot();
  out.cache = cache_.stats();
  return out;
}

void SimRankService::ApplierLoop() {
  // Home this applier's parallel kernels on its shard group's worker
  // neighborhood (no-op when the service was created unbound).
  Scheduler::BindCurrentThreadToGroup(options_.scheduler_group);
  std::vector<graph::EdgeUpdate> batch;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    {
      // queue.idle: applier parked with nothing to apply — the phase that
      // distinguishes "underloaded" from "kernel-bound" in a trace.
      TRACE_SCOPE(kQueueIdle);
      queue_not_empty_.wait(lock,
                            [this] { return stopping_ || !queue_.empty(); });
    }
    if (queue_.empty()) break;  // stopping, fully drained
    batch.clear();
    const std::uint64_t drain_ns = obs::Tracer::NowNs();
    std::uint64_t waited_ns = 0;
    while (!queue_.empty() && batch.size() < options_.max_batch) {
      const QueuedUpdate& queued = queue_.front();
      // Saturate: enqueue stamped outside mu_, so a racing Submit can be a
      // hair "later" than this drain's clock read.
      const std::uint64_t wait =
          drain_ns > queued.enqueue_ns ? drain_ns - queued.enqueue_ns : 0;
      queue_wait_hist_.Record(wait);
      waited_ns += wait;
      batch.push_back(queued.update);
      queue_.pop_front();
    }
    // One counter event per BATCH (value = summed wait, arg = updates
    // drained): bounds trace volume while the histogram above keeps the
    // full per-update distribution.
    TRACE_COUNTER_ARG(kQueueWait, batch.size(), waited_ns);
    queue_not_full_.notify_all();
    lock.unlock();

    ApplyAndPublish(batch);

    lock.lock();
    published_ += batch.size();
    progress_.notify_all();
  }
}

void SimRankService::ApplyAndPublish(
    const std::vector<graph::EdgeUpdate>& batch) {
  TRACE_SCOPE_ARG(kBatchApply, batch.size());
  const std::uint64_t apply_start_ns = obs::Tracer::NowNs();
  // Pre-validate the drained batch against the applier's authoritative
  // graph (plus an overlay of the batch's own earlier effects): updates
  // that are invalid in the state they meet — duplicate inserts, absent
  // deletes, bad node ids — are dropped and counted, so the coalesced
  // apply below runs on a batch that cannot fail halfway.
  std::vector<graph::EdgeUpdate> valid;
  valid.reserve(batch.size());
  {
    TRACE_SCOPE_ARG(kCoalesce, batch.size());
    std::unordered_map<std::uint64_t, bool> overlay;  // key -> edge present
    const graph::DynamicDiGraph& current = index_.graph();
    for (const graph::EdgeUpdate& update : batch) {
      if (!current.HasNode(update.src) || !current.HasNode(update.dst)) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const std::uint64_t key = graph::EdgeKey(update.src, update.dst);
      auto it = overlay.find(key);
      const bool present = it != overlay.end()
                               ? it->second
                               : current.HasEdge(update.src, update.dst);
      const bool want_insert = update.kind == graph::UpdateKind::kInsert;
      if (present == want_insert) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      overlay[key] = want_insert;
      valid.push_back(update);
    }
  }

  if (!valid.empty()) {
    TRACE_SCOPE_ARG(kKernelApply, valid.size());
    Status applied =
        index_.algorithm() == core::UpdateAlgorithm::kIncSR
            ? index_.ApplyBatchCoalesced(valid)
            : index_.ApplyBatch(valid);
    if (applied.ok()) {
      applied_.fetch_add(valid.size(), std::memory_order_relaxed);
    } else {
      // Should be unreachable after pre-validation; recover by re-driving
      // the batch unit-by-unit (idempotent per edge: an update the
      // coalesced prefix already applied fails its own validation and is
      // skipped). The store's touched-row record spans every write of the
      // recovery too, so Publish() below stays exact.
      for (const graph::EdgeUpdate& update : valid) {
        Status unit = index_.ApplyUpdate(update);
        if (unit.ok()) {
          applied_.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t epoch = Publish();
  apply_hist_.Record(obs::Tracer::NowNs() - apply_start_ns);
  TRACE_INSTANT(kEpochPublished, epoch, valid.size());
  // Replication fan-out: ship the batch exactly as applied (validated, in
  // apply order, empty batches included — they still publish an epoch).
  // A replica replaying this stream against the same initial state
  // reproduces every epoch bitwise.
  AppliedBatchListener listener;
  {
    std::lock_guard<std::mutex> lock(listener_mu_);
    listener = listener_;
  }
  if (listener) listener(epoch, valid);
}

std::uint64_t SimRankService::Publish() {
  TRACE_SCOPE(kPublish);
  // Storage policies run FIRST, before the touched-row capture: a row the
  // tier policy re-represents records itself into the store's touched
  // delta (shared→unshared transition), so the one re-rank + invalidation
  // pass below covers batch rows and re-tiered rows alike — and the index
  // entries it rebuilds rank the FINAL (post-sparsification) bytes.
  std::vector<std::int32_t> rerank_extra;
  {
    TRACE_SCOPE(kTierPolicy);
    ApplyTierPolicy(index_.AllScoreRowsTouched());
    AdaptTopKCapacities(&rerank_extra);
    if (tiering_ || adaptive_topk_) sketch_.Decay();
  }

  auto next = std::make_shared<EpochSnapshot>();
  {
    TRACE_SCOPE(kGraphSnapshot);
    next->graph = index_.SnapshotGraph();
  }
  // The batch's ground-truth delta: the rows it actually wrote (the score
  // store's COW-clone record), captured before Publish() resets it. Exact
  // for every algorithm — Inc-SR, coalesced groups, Inc-uSR's dense
  // scatter, and the unit-update recovery path alike.
  const bool all_touched = index_.AllScoreRowsTouched();
  std::vector<std::int32_t> touched;
  if (!all_touched) {
    const std::span<const std::int32_t> rows = index_.TouchedScoreRows();
    touched.assign(rows.begin(), rows.end());
    // Rows whose index capacity grew need a re-rank even though their
    // score bytes did not change (duplicates are harmless downstream;
    // the spurious cache invalidation is one extra miss).
    touched.insert(touched.end(), rerank_extra.begin(), rerank_extra.end());
  }
  // O(rows touched): the batch's writes already COW-cloned exactly the
  // affected rows; publishing is a row-pointer-table copy.
  {
    TRACE_SCOPE(kStorePublish);
    next->scores = index_.mutable_score_store()->Publish();
  }
  if (topk_index_.enabled()) {
    // Incremental maintenance rule: re-rank ONLY the touched rows, each
    // by one scan of its already-materialized COW'd row. Untouched
    // entries stay valid — their rows' bytes did not change.
    if (all_touched) {
      topk_index_.RebuildAll(index_.scores());
    } else {
      topk_index_.RebuildRows(index_.scores(), touched);
    }
    next->topk = topk_index_.Publish();
    topk_rows_reranked_.store(topk_index_.rows_reranked(),
                              std::memory_order_relaxed);
  }
  MirrorStorageCounters();
  std::uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    epoch = snapshot_->epoch + 1;
    next->epoch = epoch;
    snapshot_ = std::move(next);
  }
  // Invalidate after the swap: a reader that cached from the outgoing
  // snapshot either had its node erased here or (if it inserts later) is
  // rejected by the cache's epoch admission check.
  {
    TRACE_SCOPE_ARG(kCacheInvalidate, touched.size());
    if (all_touched) {
      cache_.InvalidateAll(epoch);
    } else {
      cache_.OnPublish(epoch, std::span<const std::int32_t>(touched));
    }
  }
  return epoch;
}

void SimRankService::ApplyTierPolicy(bool all_touched) {
  if (!tiering_) return;
  la::ScoreStore* store = index_.mutable_score_store();
  const std::size_t n = store->rows();
  if (n == 0) return;
  const SparsityPolicy& policy = options_.sparse;
  const auto consider_demote = [&](std::size_t row) {
    if (store->RowIsSparse(row)) return;
    if (sketch_.Count(static_cast<graph::NodeId>(row)) >= policy.hot_reads) {
      return;  // hot rows earn their dense tier
    }
    // Protect the row's current index columns: index-served top-k keeps
    // reading exactly stored values. For a batch-touched row the entry is
    // one epoch stale, which is safe — the publish re-ranks it from the
    // final bytes right after this pass.
    keep_cols_.clear();
    for (const core::ScoredPair& item : topk_index_.EntryItems(row)) {
      keep_cols_.push_back(item.b);
    }
    if (store->SparsifyRow(row, keep_cols_)) {
      tier_demotions_.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (all_touched) {
    // Fresh store / geometry change: one full pass, no sweep needed.
    for (std::size_t row = 0; row < n; ++row) consider_demote(row);
    return;
  }
  // Batch-touched rows that the write path left dense (COW'd dense rows,
  // spills past the max_density gate, or the legacy densify-on-write
  // mode) go back to sparse when cold. Under sparse-native writes most
  // touched rows stayed in their sparse tier, so consider_demote
  // early-returns on them and this pass costs almost nothing — the
  // re-sparsify the old write path forced every epoch is gone. Iterate a
  // COPY — SparsifyRow appends to the live list.
  {
    const std::vector<std::int32_t> touched = store->touched_rows();
    for (std::int32_t row : touched) {
      consider_demote(static_cast<std::size_t>(row));
    }
  }
  // Bounded clock sweep over the whole matrix: demotes cold dense rows no
  // batch ever writes and promotes sparse rows whose traffic returned.
  const std::size_t steps = std::min(policy.scan_rows_per_publish, n);
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t row = tier_clock_;
    tier_clock_ = (tier_clock_ + 1) % n;
    if (store->RowIsSparse(row)) {
      if (sketch_.Count(static_cast<graph::NodeId>(row)) >=
              policy.promote_reads &&
          store->DensifyRow(row)) {
        tier_promotions_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      consider_demote(row);
    }
  }
}

void SimRankService::AdaptTopKCapacities(std::vector<std::int32_t>* rerank) {
  if (!adaptive_topk_) return;
  // Grow: nodes whose TopKFor missed past their entry since the last
  // publish earn a doubled capacity (the index clamps at 2× base); the
  // caller re-ranks them from the published bytes via *rerank.
  std::vector<graph::NodeId> grew;
  {
    std::lock_guard<std::mutex> lock(grow_mu_);
    grew.swap(grow_queue_);
  }
  const std::size_t n = index_.scores().rows();
  for (graph::NodeId node : grew) {
    const auto row = static_cast<std::size_t>(node);
    if (row >= n) continue;
    const std::size_t current = topk_index_.NodeCapacity(row);
    if (topk_index_.SetNodeCapacity(row, current * 2) > current) {
      topk_cap_grows_.fetch_add(1, std::memory_order_relaxed);
      rerank->push_back(static_cast<std::int32_t>(row));
    }
  }
  // Shrink: grown nodes that went cold decay back toward the base
  // capacity by entry truncation (exact prefix, no rescan), one bounded
  // clock slice per publish.
  if (n == 0) return;
  const std::size_t steps = std::min(options_.sparse.scan_rows_per_publish, n);
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t row = cap_clock_;
    cap_clock_ = (cap_clock_ + 1) % n;
    const std::size_t current = topk_index_.NodeCapacity(row);
    if (current <= topk_index_.capacity()) continue;  // never below base
    if (sketch_.Count(static_cast<graph::NodeId>(row)) > 0) continue;
    const std::size_t target = std::max(topk_index_.capacity(), current / 2);
    if (topk_index_.SetNodeCapacity(row, target) < current) {
      topk_cap_shrinks_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void SimRankService::MirrorStorageCounters() {
  const la::ScoreStore& store = index_.scores();
  const la::ScoreStoreStats& stats = store.stats();
  rows_published_.store(stats.rows_copied, std::memory_order_relaxed);
  bytes_published_.store(stats.bytes_copied, std::memory_order_relaxed);
  rows_sparse_.store(stats.rows_sparse, std::memory_order_relaxed);
  rows_dense_.store(store.rows() - stats.rows_sparse,
                    std::memory_order_relaxed);
  bytes_saved_.store(store.bytes_saved(), std::memory_order_relaxed);
  sparse_eps_drops_.store(stats.eps_drops, std::memory_order_relaxed);
  sparse_max_error_bound_.store(stats.max_error_bound,
                                std::memory_order_relaxed);
  rows_spilled_dense_.store(stats.rows_spilled_dense,
                            std::memory_order_relaxed);
  sparse_write_merges_.store(stats.sparse_write_merges,
                             std::memory_order_relaxed);
  graph_bytes_copied_.store(index_.graph().cow_bytes_copied(),
                            std::memory_order_relaxed);
}

}  // namespace incsr::service
