#include "service/topk_index.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"
#include "obs/trace.h"

namespace incsr::service {

namespace {

// First index >= `from` of an upper-triangle candidate (b > a = row).
// The pair scan reads pair {a, b} as s(min, max) from row min's bytes;
// S is symmetric analytically but NOT guaranteed bitwise (s(a,b) and
// s(b,a) are distinct storage that can disagree in the last ulp), so
// the pair merge must use row min's copy only — each entry contributes
// its candidates past the diagonal and every pair comes from exactly
// one row.
std::size_t NextUpperTriangle(const TopKIndex::Entry& entry,
                              std::size_t from) {
  while (from < entry.items.size() &&
         entry.items[from].b < entry.items[from].a) {
    ++from;
  }
  return from;
}

}  // namespace

bool TopKIndex::View::Serve(graph::NodeId query, std::size_t k,
                            std::vector<core::ScoredPair>* out) const {
  const auto q = static_cast<std::size_t>(query);
  if (q >= entries_.size()) return false;  // disabled view or foreign id
  const Entry& entry = *entries_[q];
  // Underfull: the entry holds fewer than k candidates AND fewer than the
  // n-1 that exist, so the row may hold better candidates than stored.
  if (k > entry.items.size() && entry.items.size() + 1 < entries_.size()) {
    return false;
  }
  const std::size_t count = std::min(k, entry.items.size());
  out->assign(entry.items.begin(), entry.items.begin() + count);
  return true;
}

bool TopKIndex::View::ServePairs(std::size_t k,
                                 std::vector<core::ScoredPair>* out) const {
  if (entries_.empty()) return false;  // index disabled
  const std::size_t n = entries_.size();
  // A pair {a, b} absent from BOTH rows' entries is outranked by every
  // stored candidate of both rows, so its score is at most the last-item
  // score of either (incomplete) entry. The merge below is therefore
  // provably exact while emitted scores strictly exceed the worst such
  // bound; at or below it an unstored pair could tie in and win on the
  // (a, b) tie-break.
  double bound = -std::numeric_limits<double>::infinity();
  bool any_incomplete = false;
  for (std::size_t q = 0; q < n; ++q) {
    const Entry& entry = *entries_[q];
    if (entry.items.size() + 1 >= n) continue;  // complete row
    if (entry.items.empty()) return false;      // nothing to bound with
    any_incomplete = true;
    bound = std::max(bound, entry.items.back().score);
  }

  // K-way merge of the rows' upper-triangle candidate streams: within
  // one row, candidates are already in the global (descending score,
  // ascending (a, b)) order — all share the same a, so ascending-b ties
  // match — and a pair {a, b} appears in exactly one stream (row
  // min(a, b), the same bytes the pair scan reads), so a heap of
  // per-row cursors yields the exact global order with no duplicates.
  struct Cursor {
    core::ScoredPair pair;  // a = row < b
    std::size_t row = 0;
    std::size_t index = 0;
  };
  const auto pops_later = [](const Cursor& x, const Cursor& y) {
    return core::ScoredPairRanksBefore(y.pair, x.pair);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(pops_later)>
      heap(pops_later);
  for (std::size_t q = 0; q < n; ++q) {
    const Entry& entry = *entries_[q];
    const std::size_t first = NextUpperTriangle(entry, 0);
    if (first < entry.items.size()) {
      heap.push({entry.items[first], q, first});
    }
  }
  out->clear();
  out->reserve(k);
  while (!heap.empty() && out->size() < k) {
    const Cursor top = heap.top();
    heap.pop();
    if (any_incomplete && top.pair.score <= bound) {
      // An unstored pair could rank here or earlier than the remaining
      // stream; only the strict region above the bound is exact.
      out->clear();
      return false;
    }
    out->push_back(top.pair);
    const Entry& entry = *entries_[top.row];
    const std::size_t next = NextUpperTriangle(entry, top.index + 1);
    if (next < entry.items.size()) {
      heap.push({entry.items[next], top.row, next});
    }
  }
  if (out->size() == k) return true;
  // The merged stream drained early. With every entry complete it held
  // all n(n-1)/2 pairs — the short result is the exact full ranking,
  // just like the scan's. Otherwise pairs may be missing: fall back.
  if (!any_incomplete) return true;
  out->clear();
  return false;
}

std::size_t TopKIndex::NodeCapacity(std::size_t row) const {
  if (caps_.empty() || row >= caps_.size()) return capacity_;
  return caps_[row];
}

std::size_t TopKIndex::SetNodeCapacity(std::size_t row, std::size_t capacity) {
  if (capacity_ == 0) return 0;
  INCSR_CHECK(row < entries_.size(), "SetNodeCapacity: row %zu out of %zu",
              row, entries_.size());
  const std::size_t floor = std::max<std::size_t>(1, capacity_ / 4);
  const std::size_t clamped =
      std::clamp(capacity, floor, capacity_ * 2);
  if (caps_.empty()) caps_.assign(entries_.size(), static_cast<std::uint32_t>(capacity_));
  caps_[row] = static_cast<std::uint32_t>(clamped);
  const std::shared_ptr<const Entry>& entry = entries_[row];
  if (entry != nullptr && entry->items.size() > clamped) {
    // Shrink by prefix truncation: the entry is the contract-ordered
    // top-|items| of its row, so its first `clamped` items are exactly the
    // top-`clamped` — no rescan.
    auto truncated = std::make_shared<Entry>();
    truncated->items.assign(entry->items.begin(),
                            entry->items.begin() + clamped);
    entries_[row] = std::move(truncated);
  }
  return clamped;
}

std::span<const core::ScoredPair> TopKIndex::EntryItems(std::size_t row) const {
  if (row >= entries_.size() || entries_[row] == nullptr) return {};
  return entries_[row]->items;
}

std::shared_ptr<const TopKIndex::Entry> TopKIndex::BuildEntry(
    const la::ScoreStore& scores, std::size_t row) {
  auto entry = std::make_shared<Entry>();
  // The single source of ranking truth: the same scan a miss would run,
  // truncated at capacity instead of k — which is what makes index-served
  // results bitwise identical to the fallback.
  entry->items = core::TopKForOf(scores, static_cast<graph::NodeId>(row),
                                 NodeCapacity(row));
  ++rows_reranked_;
  return entry;
}

void TopKIndex::RebuildRows(const la::ScoreStore& scores,
                            std::span<const std::int32_t> rows) {
  if (capacity_ == 0) return;
  TRACE_SCOPE_ARG(kRerank, rows.size());
  INCSR_CHECK(entries_.size() == scores.rows(),
              "TopKIndex geometry mismatch: %zu entries for %zu rows",
              entries_.size(), scores.rows());
  for (std::int32_t row : rows) {
    entries_[static_cast<std::size_t>(row)] = BuildEntry(
        scores, static_cast<std::size_t>(row));
  }
}

void TopKIndex::RebuildAll(const la::ScoreStore& scores) {
  if (capacity_ == 0) return;
  TRACE_SCOPE_ARG(kRerank, scores.rows());
  entries_.resize(scores.rows());
  if (!caps_.empty()) {
    caps_.resize(entries_.size(), static_cast<std::uint32_t>(capacity_));
  }
  for (std::size_t row = 0; row < entries_.size(); ++row) {
    entries_[row] = BuildEntry(scores, row);
  }
}

TopKIndex::View TopKIndex::Publish() const {
  View view;
  view.entries_ = entries_;  // O(n) pointer copies — the whole cost
  return view;
}

}  // namespace incsr::service
