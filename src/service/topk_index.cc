#include "service/topk_index.h"

#include <algorithm>

#include "common/check.h"

namespace incsr::service {

bool TopKIndex::View::Serve(graph::NodeId query, std::size_t k,
                            std::vector<core::ScoredPair>* out) const {
  const auto q = static_cast<std::size_t>(query);
  if (q >= entries_.size()) return false;  // disabled view or foreign id
  const Entry& entry = *entries_[q];
  // Underfull: the entry holds fewer than k candidates AND fewer than the
  // n-1 that exist, so the row may hold better candidates than stored.
  if (k > entry.items.size() && entry.items.size() + 1 < entries_.size()) {
    return false;
  }
  const std::size_t count = std::min(k, entry.items.size());
  out->assign(entry.items.begin(), entry.items.begin() + count);
  return true;
}

std::shared_ptr<const TopKIndex::Entry> TopKIndex::BuildEntry(
    const la::ScoreStore& scores, std::size_t row) {
  auto entry = std::make_shared<Entry>();
  // The single source of ranking truth: the same scan a miss would run,
  // truncated at capacity instead of k — which is what makes index-served
  // results bitwise identical to the fallback.
  entry->items = core::TopKForOf(scores, static_cast<graph::NodeId>(row),
                                 capacity_);
  ++rows_reranked_;
  return entry;
}

void TopKIndex::RebuildRows(const la::ScoreStore& scores,
                            std::span<const std::int32_t> rows) {
  if (capacity_ == 0) return;
  INCSR_CHECK(entries_.size() == scores.rows(),
              "TopKIndex geometry mismatch: %zu entries for %zu rows",
              entries_.size(), scores.rows());
  for (std::int32_t row : rows) {
    entries_[static_cast<std::size_t>(row)] = BuildEntry(
        scores, static_cast<std::size_t>(row));
  }
}

void TopKIndex::RebuildAll(const la::ScoreStore& scores) {
  if (capacity_ == 0) return;
  entries_.resize(scores.rows());
  for (std::size_t row = 0; row < entries_.size(); ++row) {
    entries_[row] = BuildEntry(scores, row);
  }
}

TopKIndex::View TopKIndex::Publish() const {
  View view;
  view.entries_ = entries_;  // O(n) pointer copies — the whole cost
  return view;
}

}  // namespace incsr::service
