// TopKIndex — per-node bounded top-k candidate index for the serving
// layer's miss path. The paper bounds an update's effect on S to the
// affected area ∪ₖ Aₖ×Bₖ (plus its transpose), yet a TopKFor cache miss
// used to scan a whole row: O(n) per query, and under churn the
// affected-area cache invalidation makes misses the common case — exactly
// when the paper says the work should track |ΔS|. This index moves the
// O(n) scan off the query path and onto the applier, where it amortizes
// into work the applier already does per touched row:
//
//   - Per node q the index keeps the exact top-c candidates of row q
//     (c = capacity, min(c, n-1) entries), ordered by the repo-wide
//     contract: descending score, ties by ascending node id
//     (core::ScoredPairRanksBefore).
//   - Maintenance is incremental by the affected-area argument: a batch
//     can only change row q if the applier wrote it, so at publish time
//     ONLY the touched rows (la::ScoreStore's COW-clone record) are
//     re-ranked, each by one O(n log c) scan of the already-materialized
//     row. Untouched entries stay valid because their rows' bytes did not
//     change.
//   - A miss with k <= |entry| (or a complete entry, |entry| = n-1) is
//     served as the entry's first min(k, |entry|) items — bitwise
//     identical to TopKForOf on the same snapshot, because both are
//     prefixes of the same strict total order. A miss with k past an
//     incomplete entry ("underfull") falls back to the full row scan; the
//     service counts both outcomes (ServiceStats::topk_index_*).
//
// Publishing mirrors la::ScoreStore: entries are immutable shared_ptrs
// behind a table; Publish() copies the table (O(n) pointer bumps, no
// payload) into a View that rides inside the EpochSnapshot, so a reader
// always sees the index state matching its pinned scores. One writer
// (the applier) mutates; readers only touch Views obtained through the
// snapshot's synchronizing handoff — TSan-clean by design, like the store.
#ifndef INCSR_SERVICE_TOPK_INDEX_H_
#define INCSR_SERVICE_TOPK_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/dynamic_simrank.h"
#include "graph/digraph.h"
#include "la/score_store.h"

namespace incsr::service {

/// Per-node bounded top-k candidate index. See file comment.
class TopKIndex {
 public:
  /// One node's candidates: the exact top-|items| of its row under the
  /// (descending score, ascending id) contract, |items| = min(c, n-1).
  struct Entry {
    std::vector<core::ScoredPair> items;
  };

  /// Immutable snapshot of the entry table; copying shares the entries.
  /// Reads are valid and stable for the View's lifetime.
  class View {
   public:
    View() = default;

    /// Node count of the indexed matrix (0 for a disabled/empty view).
    std::size_t rows() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /// Serves TopKFor(query, k) when the entry provably holds the whole
    /// answer: k <= |items|, or the entry is complete (|items| = n-1, so
    /// any k just returns everything). Returns false — caller falls back
    /// to a row scan — when the entry is underfull for this k or the view
    /// is empty (index disabled). On success *out is bitwise what
    /// core::TopKForOf(scores, query, k) returns on the same snapshot.
    bool Serve(graph::NodeId query, std::size_t k,
               std::vector<core::ScoredPair>* out) const;

    /// Serves TopKPairs(k) by a k-way merge over the per-node entries
    /// instead of the O(n²) pair scan. Each entry contributes its
    /// upper-triangle candidates (b > row) — the same storage bytes the
    /// pair scan reads, which matters because S need not be bitwise
    /// symmetric — already in the global contract order, so the merge
    /// emits exact global pairs, each from exactly one row. Soundness
    /// bound: a pair absent from its own row's entry scores at most the
    /// worst last-item score over incomplete entries, so pairs are
    /// emitted only while they strictly beat that bound. Returns false —
    /// caller falls back to the pair scan — when the bound cuts the
    /// merge off before k pairs (or the view is empty / an incomplete
    /// entry is empty). On success *out is bitwise what
    /// core::TopKPairsOf(scores, k) returns on the same snapshot.
    /// O(n + k log n) versus the scan's O(n² log k).
    bool ServePairs(std::size_t k, std::vector<core::ScoredPair>* out) const;

   private:
    friend class TopKIndex;
    std::vector<std::shared_ptr<const Entry>> entries_;
  };

  /// `capacity` bounds candidates per node; 0 disables the index: Rebuild*
  /// are no-ops, Publish returns an empty view, every miss falls through
  /// to the row scan.
  explicit TopKIndex(std::size_t capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0; }
  /// Base (default per-node) capacity; see NodeCapacity for adapted rows.
  std::size_t capacity() const { return capacity_; }

  /// Effective capacity of `row`: the base capacity unless the serving
  /// layer adapted it with SetNodeCapacity. Writer thread only.
  std::size_t NodeCapacity(std::size_t row) const;

  /// Sets `row`'s capacity, clamped to [max(1, base/4), 2·base], and
  /// returns the clamped value. A SHRINK below the current entry size
  /// truncates the entry in place — a prefix of the contract total order
  /// is itself exact, so no row rescan is needed. A GROW does not refill
  /// the entry: the caller re-ranks the row (RebuildRows) to earn the
  /// longer prefix. No-op (returns base) when the index is disabled.
  /// Writer thread only.
  std::size_t SetNodeCapacity(std::size_t row, std::size_t capacity);

  /// The candidates currently stored for `row` (empty when the index is
  /// disabled or the entry is not built yet). This is the protected keep
  /// set a sparsifying score store must retain (la::ScoreStore::
  /// SparsifyRow's keep_cols) so index-served top-k keeps reading exact
  /// stored values. Writer thread only.
  std::span<const core::ScoredPair> EntryItems(std::size_t row) const;

  /// Cumulative entries re-ranked by Rebuild* (the maintenance cost).
  std::uint64_t rows_reranked() const { return rows_reranked_; }

  /// Re-ranks the entries of `rows` from the current score rows, one
  /// O(n log c) contract-ordered scan each. Rows must be in range;
  /// duplicates are harmless. Writer thread only.
  void RebuildRows(const la::ScoreStore& scores,
                   std::span<const std::int32_t> rows);

  /// (Re)builds every entry — initial build and the all-rows-touched path
  /// (fresh store, geometry change). Adapts to scores.rows(). Writer
  /// thread only.
  void RebuildAll(const la::ScoreStore& scores);

  /// Snapshots the entry table for an epoch: O(n) shared_ptr copies, no
  /// payload. Writer thread only.
  View Publish() const;

 private:
  std::shared_ptr<const Entry> BuildEntry(const la::ScoreStore& scores,
                                          std::size_t row);

  const std::size_t capacity_;
  std::uint64_t rows_reranked_ = 0;
  std::vector<std::shared_ptr<const Entry>> entries_;
  // Per-node capacity overrides; empty until the first SetNodeCapacity
  // (the common all-default case pays nothing).
  std::vector<std::uint32_t> caps_;
};

}  // namespace incsr::service

#endif  // INCSR_SERVICE_TOPK_INDEX_H_
