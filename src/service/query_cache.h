// Affected-area-driven query cache for the serving layer. Memoizes top-k
// results per query node and invalidates them SELECTIVELY: an applied
// update batch reports the union of its affected sets ∪_k (A_k ∪ B_k)
// (AffectedAreaStats::touched_nodes), and only cached entries whose query
// node lies in that union can have changed — everything else survives the
// epoch bump untouched. This turns the paper's lossless pruning structure
// (Theorem 4: ΔS is supported on ∪_k A_k×B_k plus its transpose) into a
// serving-side win: on graphs where updates touch a small affected area,
// most of the cache stays warm across ingest.
//
// Thread-safety: every method takes an internal mutex; readers fill the
// cache while the applier thread invalidates. Entries are tagged with the
// epoch of the snapshot they were computed from, and an insert whose epoch
// is no longer current is dropped — a reader racing with a publish can
// never resurrect a stale result after its node was invalidated.
#ifndef INCSR_SERVICE_QUERY_CACHE_H_
#define INCSR_SERVICE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/dynamic_simrank.h"
#include "graph/digraph.h"

namespace incsr::service {

/// Counter snapshot of cache effectiveness.
struct QueryCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Entries erased selectively by touched-node invalidation.
  std::uint64_t invalidations = 0;
  /// Entries erased by LRU capacity pressure.
  std::uint64_t evictions = 0;
  /// Inserts dropped because a newer epoch was published mid-compute.
  std::uint64_t stale_inserts = 0;

  /// Field-wise sum — the sharded layer aggregates per-shard counters.
  /// Keep in sync with the fields above (new counters belong here too).
  QueryCacheStats& operator+=(const QueryCacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    invalidations += other.invalidations;
    evictions += other.evictions;
    stale_inserts += other.stale_inserts;
    return *this;
  }
};

/// LRU cache of TopKFor results (plus a single memoized TopKPairs entry),
/// invalidated per-node from affected-area statistics.
class TopKQueryCache {
 public:
  /// `capacity` bounds the number of cached query nodes; 0 disables the
  /// cache entirely (every lookup misses, inserts are dropped).
  explicit TopKQueryCache(std::size_t capacity) : capacity_(capacity) {}

  /// Cache hit iff an entry for `node` exists that was computed with a
  /// request size >= k; the answer is then the first min(k, size) results.
  bool Lookup(graph::NodeId node, std::size_t k,
              std::vector<core::ScoredPair>* out);

  /// Memoizes `results` (the TopKFor(node, k) answer computed from the
  /// snapshot of `epoch`). Dropped when `epoch` is no longer current or
  /// when a larger-k entry is already cached.
  void Insert(graph::NodeId node, std::size_t k, std::uint64_t epoch,
              std::vector<core::ScoredPair> results);

  /// Same hit rule for the global TopKPairs memo.
  bool LookupPairs(std::size_t k, std::vector<core::ScoredPair>* out);
  void InsertPairs(std::size_t k, std::uint64_t epoch,
                   std::vector<core::ScoredPair> results);

  /// Epoch transition after the applier publishes a snapshot: erases the
  /// entries of every touched node (and the pairs memo when anything was
  /// touched), then makes `epoch` the insert-admission epoch.
  void OnPublish(std::uint64_t epoch, std::span<const std::int32_t> touched);

  /// Epoch transition that drops everything (used when per-node stats are
  /// unavailable: Inc-uSR mode or a failed batch's unit-update fallback).
  void InvalidateAll(std::uint64_t epoch);

  QueryCacheStats stats() const;

 private:
  struct Entry {
    std::size_t k;
    std::vector<core::ScoredPair> results;
    std::list<graph::NodeId>::iterator lru_pos;
  };

  void EraseLocked(graph::NodeId node);

  const std::size_t capacity_;

  mutable std::mutex mu_;
  std::uint64_t epoch_ = 0;
  std::list<graph::NodeId> lru_;  // front = most recently used
  std::unordered_map<graph::NodeId, Entry> entries_;
  bool pairs_valid_ = false;
  std::size_t pairs_k_ = 0;
  std::vector<core::ScoredPair> pairs_;
  QueryCacheStats stats_;
};

}  // namespace incsr::service

#endif  // INCSR_SERVICE_QUERY_CACHE_H_
