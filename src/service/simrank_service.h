// SimRankService — concurrent serving layer over the exact incremental
// engine. The paper's scenario is a link-evolving graph under live traffic
// (citation feeds, re-ranked video lists); the core DynamicSimRank is
// single-threaded, so this façade adds the three pieces a service needs:
//
//   1. Ingest pipeline: writers enqueue EdgeUpdates into a bounded MPSC
//      queue (backpressure: block or reject). A background applier thread
//      drains the queue in batches and absorbs each batch with
//      ApplyBatchCoalesced — one generalized rank-one Sylvester solve per
//      DISTINCT target node, the |ΔG|/T saving of core/coalesced_update.h,
//      which queueing naturally amplifies: the deeper the backlog, the more
//      updates cluster per target.
//
//   2. Epoch snapshots: after each batch the applier publishes an immutable
//      EpochSnapshot via shared_ptr swap. S is NOT copied: the snapshot
//      holds a la::ScoreStore::View — a pinned row-pointer table over the
//      index's copy-on-write score store — so publishing costs O(rows the
//      batch touched), not O(n²). The applier's next writes COW exactly
//      the touched rows; a pinned snapshot stays byte-stable forever.
//      Readers pin a snapshot with one pointer copy under a short mutex —
//      they never block behind an in-flight update and can never observe
//      a torn S.
//
//   3. Affected-area query cache: TopKFor/TopKPairs results are memoized
//      and invalidated selectively from the batch's touched rows — the
//      score store's COW-clone record, the exact set of rows the batch
//      wrote — instead of being flushed wholesale (see
//      service/query_cache.h).
//
//   4. Per-node top-k index: each epoch carries a bounded candidate index
//      (service/topk_index.h) re-ranked incrementally from the same
//      touched-row set, so a TopKFor cache MISS with k within the per-node
//      capacity is O(k) index reads, not an O(n) row scan — the last
//      O(n)-per-query hot path, made affected-area-proportional. Results
//      are bitwise identical to the row scan; k past an incomplete entry
//      falls back to the scan (counted in stats().topk_index_fallbacks).
//
// Consistency model: Score/TopKFor/TopKPairs reflect SOME published epoch
// at least as new as the last Flush() that returned. Flush() is the
// barrier: it returns once every previously accepted update has been
// applied AND published, after which reads are exact for the final graph.
#ifndef INCSR_SERVICE_SIMRANK_SERVICE_H_
#define INCSR_SERVICE_SIMRANK_SERVICE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/dynamic_simrank.h"
#include "graph/digraph.h"
#include "graph/update_stream.h"
#include "la/score_store.h"
#include "obs/histogram.h"
#include "service/query_cache.h"
#include "service/topk_index.h"

namespace incsr::service {

/// What Submit does when the ingest queue is full.
enum class BackpressurePolicy {
  /// Block the writer until the applier frees queue space (or Stop()).
  kBlock,
  /// Fail fast with ResourceExhausted; the writer decides what to drop.
  kReject,
};

/// Tiered-storage policy for the score rows (docs/score_store.md). When
/// enabled, the applier demotes cold rows to the threshold-sparsified
/// layout at publish time (entries ≥ ε plus the row's protected top-k
/// index columns survive; see la::ScoreStore::SparsifyRow) and promotes
/// rows back to dense when read traffic returns. All OFF by default: the
/// dense store's bitwise guarantees (replica equality, shard-count
/// invariance) are untouched unless a deployment opts in.
struct SparsityPolicy {
  bool enabled = false;
  /// Sparsification drop threshold: entries with |v| < epsilon may be
  /// dropped from a demoted row. 0 is valid — pure lossless compression
  /// (exact +0.0 elision only), bitwise identical to the dense store.
  double epsilon = 0.0;
  /// Rows whose retained fraction exceeds this stay dense (index+value
  /// pairs cost 12 bytes against 8 dense; see la::SparsityConfig).
  double max_density = 0.5;
  /// A row with at least this many sketch-counted reads since the last
  /// decay is "hot" and is not demoted.
  std::uint32_t hot_reads = 1;
  /// A sparse row with at least this many reads is promoted back to
  /// dense (gather once, then O(1) row reads until it cools again).
  std::uint32_t promote_reads = 4;
  /// Rows examined per publish by the background clock sweep that demotes
  /// cold rows batches never touch and promotes re-heated ones. Bounds
  /// the per-epoch policy cost independently of n.
  std::size_t scan_rows_per_publish = 256;
  /// Legacy write-path toggle (A/B baseline): when true the store runs in
  /// kDensifyOnWrite mode — every batch-touched sparse row transiently
  /// densifies and the publish-time policy re-sparsifies it, the behavior
  /// before the sparse-native RowWriter path. Readable bytes are identical
  /// either way at ε = 0; only the transient dense footprint (and the
  /// rows_spilled_dense / sparse_write_merges counters) differ.
  bool densify_on_write = false;
};

/// Serving-layer knobs.
struct ServiceOptions {
  /// Ingest queue capacity (updates). Must be >= 1.
  std::size_t queue_capacity = 4096;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Max updates drained into one coalesced apply/publish cycle. Larger
  /// batches amortize the snapshot copy and coalesce better; smaller ones
  /// publish fresher epochs. Must be >= 1.
  std::size_t max_batch = 512;
  /// Query-cache capacity in cached query nodes; 0 disables caching.
  std::size_t cache_capacity = 4096;
  /// Per-node top-k index capacity: every node keeps its top
  /// `topk_index_capacity` candidates, re-ranked at publish time for the
  /// rows the batch touched, so TopKFor cache misses with k within the
  /// capacity are O(k) index reads instead of O(n) row scans
  /// (service/topk_index.h). Requests past an incomplete entry fall back
  /// to the row scan, bitwise identically. 0 disables the index.
  std::size_t topk_index_capacity = 4096;
  /// Scheduler affinity group the applier thread binds
  /// (Scheduler::BindCurrentThreadToGroup): the applier's parallel
  /// kernels publish their work tickets starting at the group's home
  /// worker, so concurrent appliers with distinct groups fill disjoint
  /// worker neighborhoods first and only spill into each other's by
  /// stealing. Negative = unbound (rotating default). The sharded
  /// façade assigns each shard slot its own group.
  int scheduler_group = -1;
  /// Tiered sparse row storage (off by default; see SparsityPolicy).
  SparsityPolicy sparse;
  /// Adapts per-node top-k index capacities to traffic: a node whose
  /// TopKFor fell back to the row scan because its entry was too short
  /// has its capacity doubled at the next publish (clamped to 2× the
  /// base, re-ranked from the published bytes), and cold grown nodes
  /// decay back to the base capacity by entry truncation (no rescan).
  /// Requires topk_index_capacity > 0 to have any effect.
  bool adaptive_topk_index = false;
};

/// Fixed-size lossy read-traffic sketch: 2¹⁴ hashed slots of relaxed
/// atomic counters (64 KiB), bumped by reader threads on the query path
/// and halved by the applier at each publish. Collisions only ever make a
/// row look HOTTER than it is — the safe direction for a demotion policy
/// (a falsely-hot row just stays dense a little longer). Fixed capacity
/// on purpose: readers index the array lock-free, so it can never be
/// resized under them.
class TrafficSketch {
 public:
  void Bump(graph::NodeId id) const {
    slots_[Slot(id)].fetch_add(1, std::memory_order_relaxed);
  }
  std::uint32_t Count(graph::NodeId id) const {
    return slots_[Slot(id)].load(std::memory_order_relaxed);
  }
  /// Exponential decay (halving) so "hot" means recent, not historical.
  void Decay() {
    for (std::atomic<std::uint32_t>& slot : slots_) {
      slot.store(slot.load(std::memory_order_relaxed) >> 1,
                 std::memory_order_relaxed);
    }
  }

 private:
  static constexpr std::size_t kSlotBits = 14;
  static std::size_t Slot(graph::NodeId id) {
    // Knuth multiplicative hash; top kSlotBits of the 32-bit product.
    return (static_cast<std::uint32_t>(id) * 2654435761u) >> (32 - kSlotBits);
  }
  mutable std::array<std::atomic<std::uint32_t>, std::size_t{1} << kSlotBits>
      slots_{};
};

/// Immutable published state; readers hold it via shared_ptr, so a pinned
/// snapshot stays valid (and unchanging) while newer epochs are published.
/// `scores` is a copy-on-write view: publishing it cost O(rows touched by
/// the batch), and its bytes never change while the snapshot is pinned.
struct EpochSnapshot {
  std::uint64_t epoch = 0;
  /// Copy-on-write adjacency view: publishing costs O(n) pointer copies,
  /// and the applier's next writes clone only the nodes they touch
  /// (graph::DynamicDiGraph::Snapshot) — not the former per-epoch O(n+m)
  /// deep graph copy.
  graph::DynamicDiGraph::View graph;
  la::ScoreStore::View scores;
  /// Per-node top-k candidate index of this epoch (empty when disabled);
  /// always consistent with `scores` — both were published together.
  TopKIndex::View topk;
};

/// Counter snapshot of service activity (all counters are cumulative).
struct ServiceStats {
  std::uint64_t epoch = 0;           ///< epoch of the published snapshot
  std::uint64_t submitted = 0;       ///< updates accepted into the queue
  std::uint64_t applied = 0;         ///< updates applied to the index
  std::uint64_t rejected = 0;        ///< updates refused by backpressure
  std::uint64_t failed = 0;          ///< updates skipped as invalid
  std::uint64_t batches = 0;         ///< apply/publish cycles
  std::size_t queue_depth = 0;       ///< updates currently queued
  /// Cumulative publish cost: score rows (and their bytes) the applier
  /// copy-on-wrote so snapshots stay immutable. rows_published / applied
  /// is the publish amplification; the full-copy design this replaces
  /// paid n rows per batch regardless of the affected area.
  std::uint64_t rows_published = 0;
  std::uint64_t bytes_published = 0;
  /// Top-k index activity: cache misses answered from the per-node index
  /// (O(k) reads), misses that fell back to a full O(n) row scan because
  /// the request's k exceeded an incomplete entry, and the cumulative
  /// per-node entries re-ranked at publish time (the maintenance cost,
  /// proportional to the touched rows). All zero when the index is
  /// disabled (topk_index_capacity = 0).
  std::uint64_t topk_index_served = 0;
  std::uint64_t topk_index_fallbacks = 0;
  std::uint64_t topk_index_rows_reranked = 0;
  /// TopKPairs misses answered by the k-way merge over the per-node
  /// index (O(n + k log n)) versus misses that fell back to the O(n²)
  /// pair scan because the merge's soundness bound cut it off before k
  /// pairs. Both zero when the index is disabled.
  std::uint64_t topk_pairs_served = 0;
  std::uint64_t topk_pairs_fallbacks = 0;
  /// Tiered sparse storage (all zero while SparsityPolicy is disabled).
  /// rows_sparse / rows_dense are the CURRENT tier mix of the score rows;
  /// bytes_saved is the dense footprint the sparse rows shed right now;
  /// sparse_eps_drops counts cumulative lossy (< ε) entry drops;
  /// sparse_max_error_bound is the store's accumulated upper bound on
  /// |served − exact| (la::ScoreStoreStats::max_error_bound);
  /// tier_demotions / tier_promotions count publish-time dense→sparse and
  /// sparse→dense moves made by the policy (write-path densification is
  /// not a promotion and is excluded — it is rows_spilled_dense below).
  std::uint64_t rows_sparse = 0;
  std::uint64_t rows_dense = 0;
  std::uint64_t bytes_saved = 0;
  std::uint64_t sparse_eps_drops = 0;
  double sparse_max_error_bound = 0.0;
  std::uint64_t tier_demotions = 0;
  std::uint64_t tier_promotions = 0;
  /// Sparse-native write path (la::ScoreStore RowWriter sessions):
  /// rows_spilled_dense counts sparse rows the WRITE path densified
  /// (legacy densify-on-write, Dense() spills, merges past the max_density
  /// gate) — with sparse-native writes on a mostly-sparse store this stays
  /// near zero, which is the point; sparse_write_merges counts batch
  /// writes that committed as an in-tier sparse index-merge instead.
  std::uint64_t rows_spilled_dense = 0;
  std::uint64_t sparse_write_merges = 0;
  /// Adjacency bytes copy-on-written so published graph views stay
  /// byte-stable — the true incremental cost of the per-epoch graph
  /// snapshot (the design it replaces deep-copied O(n+m) per epoch).
  std::uint64_t graph_bytes_copied = 0;
  /// Adaptive top-k index capacity moves (zero unless
  /// ServiceOptions::adaptive_topk_index).
  std::uint64_t topk_cap_grows = 0;
  std::uint64_t topk_cap_shrinks = 0;
  /// Server-side latency distributions (obs/histogram.h), in nanoseconds.
  /// queue_wait_ns: per-update time from Submit's enqueue to the applier
  /// draining it — the ingest backlog the client cannot see from its own
  /// round-trip timing. apply_ns: per-batch ApplyAndPublish wall time
  /// (validate + kernels + publish). Both travel through the wire v4
  /// StatsResponse tail and merge bucket-wise across shards.
  obs::HistogramSnapshot queue_wait_ns;
  obs::HistogramSnapshot apply_ns;
  QueryCacheStats cache;

  /// Aggregation the sharded layer (src/shard/) uses over live and
  /// retired shards. Counters sum field-wise; `epoch` aggregates as MAX,
  /// because epochs are independent per-shard sequence numbers whose sum
  /// is meaningless (per-shard epochs stay visible in
  /// ShardedStats::per_shard). Keep in sync with the fields above: a new
  /// counter that is not added here silently vanishes from the sharded
  /// totals.
  ServiceStats& operator+=(const ServiceStats& other) {
    epoch = std::max(epoch, other.epoch);
    submitted += other.submitted;
    applied += other.applied;
    rejected += other.rejected;
    failed += other.failed;
    batches += other.batches;
    queue_depth += other.queue_depth;
    rows_published += other.rows_published;
    bytes_published += other.bytes_published;
    topk_index_served += other.topk_index_served;
    topk_index_fallbacks += other.topk_index_fallbacks;
    topk_index_rows_reranked += other.topk_index_rows_reranked;
    topk_pairs_served += other.topk_pairs_served;
    topk_pairs_fallbacks += other.topk_pairs_fallbacks;
    rows_sparse += other.rows_sparse;
    rows_dense += other.rows_dense;
    bytes_saved += other.bytes_saved;
    sparse_eps_drops += other.sparse_eps_drops;
    // A bound that holds per shard holds for the union at the worst
    // shard's value — error bounds aggregate as MAX, not sum.
    sparse_max_error_bound =
        std::max(sparse_max_error_bound, other.sparse_max_error_bound);
    tier_demotions += other.tier_demotions;
    tier_promotions += other.tier_promotions;
    rows_spilled_dense += other.rows_spilled_dense;
    sparse_write_merges += other.sparse_write_merges;
    graph_bytes_copied += other.graph_bytes_copied;
    topk_cap_grows += other.topk_cap_grows;
    topk_cap_shrinks += other.topk_cap_shrinks;
    queue_wait_ns += other.queue_wait_ns;
    apply_ns += other.apply_ns;
    cache += other.cache;
    return *this;
  }
};

/// Observes the applied update stream: called by the applier after every
/// apply/publish cycle with the published epoch (a dense 1-based sequence
/// number) and the batch exactly as applied — pre-validated, in apply
/// order, possibly empty when every drained update was invalid. This is
/// the replication surface: a replica that applies the same batches with
/// the same boundaries to the same initial state reproduces S bitwise
/// (the kernels are deterministic). Invoked on the applier thread, so it
/// must be cheap and must not call back into the service's writer side.
using AppliedBatchListener = std::function<void(
    std::uint64_t seq, const std::vector<graph::EdgeUpdate>& batch)>;

/// Thread-safe SimRank serving façade. Create once, Submit from any number
/// of writer threads, query from any number of reader threads.
class SimRankService {
 public:
  /// Takes ownership of a built index and starts the applier thread.
  static Result<std::unique_ptr<SimRankService>> Create(
      core::DynamicSimRank index, const ServiceOptions& options = {});

  /// Read-replica mode: no applier thread, Submit is rejected — state
  /// advances only through ApplyReplicated, which replays a primary's
  /// applied batch stream. The index must be built from the same graph
  /// and options as the primary's so epoch 0 matches bitwise; every later
  /// epoch then matches too, because both sides run the same
  /// deterministic kernels over the same batch boundaries.
  static Result<std::unique_ptr<SimRankService>> CreateReplica(
      core::DynamicSimRank index, const ServiceOptions& options = {});

  /// Stops the service (drains the queue first, see Stop()).
  ~SimRankService();

  SimRankService(const SimRankService&) = delete;
  SimRankService& operator=(const SimRankService&) = delete;

  // ---- Writer side -------------------------------------------------------

  /// Enqueues one update. kBlock: waits for queue space; kReject: returns
  /// ResourceExhausted when full. Returns FailedPrecondition after Stop().
  /// Acceptance is not validation — an update invalid against the graph
  /// state it meets (duplicate insert, absent delete) is skipped by the
  /// applier and counted in stats().failed.
  Status Submit(const graph::EdgeUpdate& update);

  /// Enqueues a sequence of updates (stops at the first rejection).
  Status SubmitBatch(const std::vector<graph::EdgeUpdate>& updates);

  /// Barrier: returns once every update accepted before the call has been
  /// applied and published. Safe from any thread, including after Stop().
  Status Flush();

  /// Drains every queued update, publishes the final epoch, and joins the
  /// applier thread. Idempotent; subsequent Submits fail. Reads remain
  /// valid forever (they serve the last published snapshot).
  void Stop();

  // ---- Replication (primary → replica applied-batch stream) --------------

  /// Registers the applied-stream observer (nullptr clears it) and
  /// returns the published epoch at registration: every batch with a
  /// larger sequence WILL reach the new listener, none with a smaller one
  /// will (the exact registration epoch may be delivered once more if the
  /// applier raced the swap). Batches applied before registration are not
  /// replayed — pair the returned epoch with an external backlog
  /// (net::ReplicationLog::SeedFloor) for catch-up bookkeeping.
  std::uint64_t SetAppliedBatchListener(AppliedBatchListener listener);

  /// Replica mode only: applies one primary batch synchronously on the
  /// caller's thread and publishes epoch `seq`. Batches must arrive in
  /// order — `seq` must be exactly the current epoch + 1, or the call
  /// fails with FailedPrecondition and applies nothing (the replication
  /// client re-subscribes from its last applied sequence). Safe against
  /// concurrent readers (epoch snapshots), but callers must serialize
  /// themselves only through the internal mutex — one stream per replica.
  Status ApplyReplicated(std::uint64_t seq,
                         const std::vector<graph::EdgeUpdate>& batch);

  /// True for services built with CreateReplica.
  bool is_replica() const { return replica_; }

  // ---- Reader side (never blocks behind updates) -------------------------

  /// Pins the latest published snapshot.
  std::shared_ptr<const EpochSnapshot> Snapshot() const;

  /// SimRank score of (a, b) in the latest published epoch.
  Result<double> Score(graph::NodeId a, graph::NodeId b) const;

  /// Top-k most similar nodes to `query`, served from the cache when the
  /// affected-area invalidation has kept the entry warm.
  Result<std::vector<core::ScoredPair>> TopKFor(graph::NodeId query,
                                                std::size_t k) const;

  /// Top-k highest-scoring distinct pairs of the latest published epoch.
  std::vector<core::ScoredPair> TopKPairs(std::size_t k) const;

  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }

 private:
  SimRankService(core::DynamicSimRank index, const ServiceOptions& options,
                 bool replica);

  void ApplierLoop();
  /// Applies one drained batch (coalesced, with unit-update fallback on
  /// invalid updates), publishes the resulting epoch, and notifies the
  /// applied-batch listener.
  void ApplyAndPublish(const std::vector<graph::EdgeUpdate>& batch);
  /// Publishes an epoch: runs the tier / capacity policies, snapshots
  /// graph + scores + top-k index, re-ranking index entries and
  /// invalidating cached queries for exactly the rows the batch wrote
  /// (the store's touched-row delta, which the policies extend with the
  /// rows they re-tiered). Returns the epoch.
  std::uint64_t Publish();
  /// Tier policy (applier, inside Publish BEFORE the touched-row capture):
  /// demotes cold dense rows to the sparse layout — batch-touched rows
  /// that write-densified but drew no reads, plus a bounded clock sweep
  /// over the rest — and promotes re-heated sparse rows. Re-tiered rows
  /// land in the store's touched delta, so the single re-rank /
  /// invalidation pass downstream covers them too.
  void ApplyTierPolicy(bool all_touched);
  /// Adaptive capacity policy (applier, inside Publish): drains the
  /// fallback queue into capacity grows (rows appended to *rerank for the
  /// downstream rebuild) and decays cold grown nodes back to the base
  /// capacity by truncation.
  void AdaptTopKCapacities(std::vector<std::int32_t>* rerank);
  /// Refreshes the atomic mirrors of store/graph accounting (applier).
  void MirrorStorageCounters();

  const ServiceOptions options_;
  const bool replica_;
  core::DynamicSimRank index_;  // applier thread only, once started

  /// A queued update plus its enqueue timestamp (steady-clock ns), so the
  /// applier can charge each update's queue wait to the stats histogram.
  struct QueuedUpdate {
    graph::EdgeUpdate update;
    std::uint64_t enqueue_ns;
  };

  mutable std::mutex mu_;  // queue, sequence counters, lifecycle
  std::condition_variable queue_not_full_;
  std::condition_variable queue_not_empty_;
  std::condition_variable progress_;  // Flush waiters
  std::deque<QueuedUpdate> queue_;
  std::uint64_t accepted_ = 0;   // updates ever enqueued
  std::uint64_t published_ = 0;  // updates applied AND visible to readers
  bool stopping_ = false;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const EpochSnapshot> snapshot_;

  // Applied-stream observer (replication fan-out). Written by
  // SetAppliedBatchListener, read by the applier once per batch.
  mutable std::mutex listener_mu_;
  AppliedBatchListener listener_;

  mutable TopKQueryCache cache_;
  TopKIndex topk_index_;  // applier thread only; readers use snapshot views

  // ---- Tiered storage + adaptive capacity ---------------------------------
  const bool tiering_;        // options_.sparse.enabled
  const bool adaptive_topk_;  // adaptive_topk_index && index enabled
  TrafficSketch sketch_;      // bumped by readers when either policy is on
  std::size_t tier_clock_ = 0;  // applier: clock hand of the tier sweep
  std::size_t cap_clock_ = 0;   // applier: clock hand of the shrink sweep
  std::vector<std::int32_t> keep_cols_;  // applier scratch for SparsifyRow
  // Nodes whose TopKFor fell back past their entry, pending a capacity
  // grow at the next publish. Bounded; written by reader threads.
  mutable std::mutex grow_mu_;
  mutable std::vector<graph::NodeId> grow_queue_;

  // Cumulative counters (relaxed: read by stats() only).
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  // Mutable: bumped by the const read path (TopKFor).
  mutable std::atomic<std::uint64_t> topk_served_{0};
  mutable std::atomic<std::uint64_t> topk_fallbacks_{0};
  mutable std::atomic<std::uint64_t> topk_pairs_served_{0};
  mutable std::atomic<std::uint64_t> topk_pairs_fallbacks_{0};
  // Mirrors of the score store's COW accounting and the index's re-rank
  // count, refreshed by the applier at each publish so stats() can read
  // them from any thread.
  std::atomic<std::uint64_t> rows_published_{0};
  std::atomic<std::uint64_t> bytes_published_{0};
  std::atomic<std::uint64_t> topk_rows_reranked_{0};
  // Tier/capacity policy counters (applier writes, stats() reads) and
  // publish-time mirrors of the store's tier gauges and the graph's COW
  // accounting.
  std::atomic<std::uint64_t> tier_demotions_{0};
  std::atomic<std::uint64_t> tier_promotions_{0};
  std::atomic<std::uint64_t> topk_cap_grows_{0};
  std::atomic<std::uint64_t> topk_cap_shrinks_{0};
  std::atomic<std::uint64_t> rows_sparse_{0};
  std::atomic<std::uint64_t> rows_dense_{0};
  std::atomic<std::uint64_t> bytes_saved_{0};
  std::atomic<std::uint64_t> sparse_eps_drops_{0};
  std::atomic<double> sparse_max_error_bound_{0.0};
  std::atomic<std::uint64_t> rows_spilled_dense_{0};
  std::atomic<std::uint64_t> sparse_write_merges_{0};
  std::atomic<std::uint64_t> graph_bytes_copied_{0};
  // Latency histograms (relaxed atomics inside; applier records, stats()
  // snapshots from any thread). Always on — one bucket fetch_add per
  // sample — independent of whether event tracing is enabled.
  obs::Histogram queue_wait_hist_;
  obs::Histogram apply_hist_;

  std::mutex stop_mu_;   // serializes Stop() callers around the join
  std::thread applier_;  // last: joins in Stop()
};

}  // namespace incsr::service

#endif  // INCSR_SERVICE_SIMRANK_SERVICE_H_
