#include "service/query_cache.h"

#include <algorithm>

namespace incsr::service {

bool TopKQueryCache::Lookup(graph::NodeId node, std::size_t k,
                            std::vector<core::ScoredPair>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(node);
  if (it == entries_.end() || it->second.k < k) {
    ++stats_.misses;
    return false;
  }
  Entry& entry = it->second;
  lru_.splice(lru_.begin(), lru_, entry.lru_pos);
  const std::size_t count = std::min(k, entry.results.size());
  out->assign(entry.results.begin(), entry.results.begin() + count);
  ++stats_.hits;
  return true;
}

void TopKQueryCache::Insert(graph::NodeId node, std::size_t k,
                            std::uint64_t epoch,
                            std::vector<core::ScoredPair> results) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_) {
    ++stats_.stale_inserts;
    return;
  }
  auto it = entries_.find(node);
  if (it != entries_.end()) {
    if (it->second.k >= k) return;  // existing entry answers more
    it->second.k = k;
    it->second.results = std::move(results);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  if (entries_.size() >= capacity_) {
    EraseLocked(lru_.back());
    ++stats_.evictions;
  }
  lru_.push_front(node);
  entries_.emplace(node, Entry{k, std::move(results), lru_.begin()});
}

bool TopKQueryCache::LookupPairs(std::size_t k,
                                 std::vector<core::ScoredPair>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!pairs_valid_ || pairs_k_ < k) {
    ++stats_.misses;
    return false;
  }
  const std::size_t count = std::min(k, pairs_.size());
  out->assign(pairs_.begin(), pairs_.begin() + count);
  ++stats_.hits;
  return true;
}

void TopKQueryCache::InsertPairs(std::size_t k, std::uint64_t epoch,
                                 std::vector<core::ScoredPair> results) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_) {
    ++stats_.stale_inserts;
    return;
  }
  if (pairs_valid_ && pairs_k_ >= k) return;
  pairs_valid_ = true;
  pairs_k_ = k;
  pairs_ = std::move(results);
}

void TopKQueryCache::OnPublish(std::uint64_t epoch,
                               std::span<const std::int32_t> touched) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::int32_t node : touched) {
    auto it = entries_.find(node);
    if (it != entries_.end()) {
      EraseLocked(node);
      ++stats_.invalidations;
    }
  }
  if (!touched.empty() && pairs_valid_) {
    pairs_valid_ = false;
    pairs_.clear();
    ++stats_.invalidations;
  }
  epoch_ = epoch;
}

void TopKQueryCache::InvalidateAll(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations += entries_.size() + (pairs_valid_ ? 1 : 0);
  entries_.clear();
  lru_.clear();
  pairs_valid_ = false;
  pairs_.clear();
  epoch_ = epoch;
}

QueryCacheStats TopKQueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void TopKQueryCache::EraseLocked(graph::NodeId node) {
  auto it = entries_.find(node);
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

}  // namespace incsr::service
