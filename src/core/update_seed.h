// Theorems 2-3 of the paper: for a unit update (i, j) with rank-one change
// ΔQ = u·vᵀ, the SimRank update matrix is ΔS = M + Mᵀ where
//
//   M = Σ_{k≥0} C^{k+1} · Q̃ᵏ · e_j · θᵀ · (Q̃ᵀ)ᵏ            (Eq. 26)
//
// and the dense seed vector θ (with scalar γ) has the closed forms of
// Eqs. (27)-(29), computable from the OLD Q and S only:
//
//   w := Q·[S]_{·,i}
//   γ := [S]_{i,i} + (1/C)[S]_{j,j} − 2[w]_j − 1/C + 1       (Eq. 29)
//   insert d_j = 0:  θ = w + ½[S]_{i,i}·e_j                  (γ = [S]_{i,i})
//   insert d_j > 0:  θ = (w − (1/C)[S]_{·,j}
//                          + (γ/(2(d_j+1)) + 1/C − 1)·e_j) / (d_j+1)
//   delete d_j = 1:  θ = ½[S]_{i,i}·e_j − w                  (γ = [S]_{i,i})
//   delete d_j > 1:  θ = ((1/C)[S]_{·,j} − w
//                          + (γ/(2(d_j−1)) − 1/C + 1)·e_j) / (d_j−1)
//
// The identities (31)-(32) that eliminate Q·S·Qᵀ terms hold at the exact
// fixed point of Eq. (2); both incremental algorithms are therefore exact
// in the paper's sense — they converge to the true SimRank as K grows.
#ifndef INCSR_CORE_UPDATE_SEED_H_
#define INCSR_CORE_UPDATE_SEED_H_

#include "common/status.h"
#include "core/rank_one_update.h"
#include "la/dense_matrix.h"
#include "la/score_store.h"
#include "la/sparse_matrix.h"
#include "la/vector.h"
#include "simrank/options.h"

namespace incsr::core {

/// Everything Algorithm 1/2 needs to start iterating: the Theorem 1
/// factors, the scalar γ, and the seed vector θ.
struct UpdateSeed {
  RankOneUpdate rank_one;
  double gamma = 0.0;
  la::Vector theta;
};

/// Computes the dense seed from the OLD transition matrix and OLD scores
/// (Algorithm 1, lines 1-12). Generic over the score container (dense
/// matrix or copy-on-write ScoreStore — reads only); instantiated for both
/// in update_seed.cc.
template <typename SMatrix>
Result<UpdateSeed> ComputeUpdateSeed(const la::DynamicRowMatrix& q,
                                     const SMatrix& s,
                                     const graph::EdgeUpdate& update,
                                     const simrank::SimRankOptions& options);

}  // namespace incsr::core

#endif  // INCSR_CORE_UPDATE_SEED_H_
