#include "core/inc_sr.h"

#include <algorithm>
#include <iterator>

#include "graph/transition.h"
#include "obs/trace.h"

namespace incsr::core {

namespace {

// Chunk geometry for the merged-accumulator expansion kernels. These are
// deliberately functions of the SUPPORT SIZE only — never of the thread
// count, and never of the ambient node count n — so the FP merge tree,
// and therefore S, is bitwise identical at any parallelism (including
// serial) AND invariant to the ambient id space: a shard-local run over a
// component (src/shard/) performs the same additions in the same order as
// the corresponding subsequence of a full-graph run. Dense scans
// therefore gather their nonzero sources first and chunk the gathered
// list, not [0, n).
constexpr std::size_t kSparseExpandGrain = 128;  // support entries per chunk
constexpr std::size_t kMaxExpandChunks = 16;     // caps accumulator memory

// Minimum useful work (fused multiply-adds) per scatter chunk; rows are
// written disjointly, so scatter geometry needs no determinism.
constexpr std::size_t kScatterGrainFlops = 4096;

}  // namespace

void IncSrEngine::Workspace::EnsureSize(std::size_t n) {
  if (values.size() < n) {
    values.Resize(n);
    seen.resize(n, 0);
  }
}

void IncSrEngine::Workspace::Clear() {
  for (std::int32_t idx : indices) {
    values[static_cast<std::size_t>(idx)] = 0.0;
    seen[static_cast<std::size_t>(idx)] = 0;
  }
  indices.clear();
}

void IncSrEngine::Workspace::Accumulate(std::int32_t index, double delta) {
  auto i = static_cast<std::size_t>(index);
  if (!seen[i]) {
    seen[i] = 1;
    indices.push_back(index);
  }
  values[i] += delta;
}

void IncSrEngine::Workspace::MergeFrom(const Workspace& other) {
  for (std::int32_t idx : other.indices) {
    Accumulate(idx, other.values[static_cast<std::size_t>(idx)]);
  }
}

void IncSrEngine::Workspace::SortIndices() {
  std::sort(indices.begin(), indices.end());
}

void IncSrEngine::RunChunkedExpansion(std::size_t count, std::size_t n,
                                      std::size_t grain,
                                      const ExpandFn& expand,
                                      Workspace* out) {
  const std::size_t chunks =
      Scheduler::PlanChunks(count, grain, kMaxExpandChunks);
  if (chunks <= 1) {
    if (count > 0) expand(out, 0, count);
    return;
  }
  if (chunk_ws_.size() < chunks) chunk_ws_.resize(chunks);
  Scheduler::Global().ParallelForChunks(
      0, count, chunks, threads_,
      [this, n, &expand](std::size_t c, std::size_t lo, std::size_t hi) {
        Workspace* ws = &chunk_ws_[c];
        ws->EnsureSize(n);
        ws->Clear();
        expand(ws, lo, hi);
      });
  // Merge only chunks the scheduler actually invoked: ParallelForChunks skips
  // empty trailing chunks (possible if the plan ever over-chunks), whose
  // workspaces would still hold a PREVIOUS update's subtotals.
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    if (c * chunk_size >= count) break;
    out->MergeFrom(chunk_ws_[c]);
  }
}

template <typename SMatrix>
Status IncSrEngine::ComputeSparseSeed(const graph::EdgeUpdate& update,
                                      const graph::DynamicDiGraph& graph,
                                      const la::DynamicRowMatrix& q,
                                      const SMatrix& s,
                                      RankOneUpdate* rank_one,
                                      Workspace* theta) {
  TRACE_SCOPE(kKernelSeed);
  Result<RankOneUpdate> decomposition = ComputeRankOneUpdate(q, update);
  if (!decomposition.ok()) return decomposition.status();
  *rank_one = std::move(decomposition).value();

  const std::size_t n = q.rows();
  const std::size_t i = static_cast<std::size_t>(update.src);
  const std::size_t j = static_cast<std::size_t>(update.dst);
  const double c = options_.damping;
  const std::size_t dj = rank_one->old_in_degree;
  theta->EnsureSize(n);
  theta->Clear();

  // S is symmetric, so the columns [S]_{·,i} and [S]_{·,j} the seed needs
  // are the CONTIGUOUS rows i and j: one ScoreStore row resolve per scan
  // instead of n strided shard probes. Caveat: ScatterOuter keeps S
  // symmetric only to rounding (entry (a,b) sums its two products in the
  // opposite order from (b,a)), so row-as-column can differ from the
  // true column in the last ulp — well inside the C^(K+1) accuracy
  // envelope, and deterministic: every run (any thread count, any shard
  // layout) reads the same bytes.
  const double* si = s.ReadRow(i, &seed_row_i_);
  const double* sj = s.ReadRow(j, &seed_row_j_);

  // w = Q·[S]_{·,i} on its support: only rows a reachable by one OLD-graph
  // hop from T = {y : [S]_{y,i} ≠ 0} can be nonzero (these out-neighbor
  // hops are exactly the F₁ set of Eq. 38). Gather T first, then
  // accumulate the raw in-sums chunk-parallel over the gathered sources
  // (chunk geometry a function of |T| only — see the grain comment) and
  // rescale by 1/|I(a)| afterwards.
  expand_sources_.clear();
  for (std::size_t y = 0; y < n; ++y) {
    if (si[y] != 0.0) expand_sources_.push_back(static_cast<std::int32_t>(y));
  }
  RunChunkedExpansion(
      expand_sources_.size(), n, kSparseExpandGrain,
      [this, &graph, si](Workspace* ws, std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const auto y = static_cast<std::size_t>(expand_sources_[k]);
          const double s_yi = si[y];
          for (graph::NodeId a :
               graph.OutNeighbors(static_cast<graph::NodeId>(y))) {
            ws->Accumulate(a, s_yi);
          }
        }
      },
      theta);
  for (std::int32_t a : theta->indices) {
    const std::size_t deg = graph.InDegree(a);
    INCSR_DCHECK(deg > 0, "node %d gained a w-entry without in-edges", a);
    theta->values[static_cast<std::size_t>(a)] /= static_cast<double>(deg);
  }
  const double w_j = theta->seen[j] ? theta->values[j] : 0.0;

  const bool trivial_degree =
      (update.kind == graph::UpdateKind::kInsert && dj == 0) ||
      (update.kind == graph::UpdateKind::kDelete && dj == 1);
  const double gamma =
      trivial_degree ? si[i]
                     : si[i] + sj[j] / c - 2.0 * w_j - 1.0 / c + 1.0;

  // Assemble θ in place over w (Eqs. 27-28), touching only B₀ =
  // supp(w) ∪ supp([S]_{·,j}) ∪ {j}.
  if (update.kind == graph::UpdateKind::kInsert) {
    if (dj == 0) {
      theta->Accumulate(update.dst, 0.5 * si[i]);
    } else {
      const double inv = 1.0 / static_cast<double>(dj + 1);
      for (std::int32_t idx : theta->indices) {
        theta->values[static_cast<std::size_t>(idx)] *= inv;
      }
      for (std::size_t y = 0; y < n; ++y) {
        const double s_yj = sj[y];
        if (s_yj == 0.0) continue;
        theta->Accumulate(static_cast<std::int32_t>(y), -inv / c * s_yj);
      }
      theta->Accumulate(update.dst,
                        inv * (0.5 * gamma * inv + 1.0 / c - 1.0));
    }
  } else {
    if (dj == 1) {
      for (std::int32_t idx : theta->indices) {
        theta->values[static_cast<std::size_t>(idx)] *= -1.0;
      }
      theta->Accumulate(update.dst, 0.5 * si[i]);
    } else {
      const double inv = 1.0 / static_cast<double>(dj - 1);
      for (std::int32_t idx : theta->indices) {
        theta->values[static_cast<std::size_t>(idx)] *= -inv;
      }
      for (std::size_t y = 0; y < n; ++y) {
        const double s_yj = sj[y];
        if (s_yj == 0.0) continue;
        theta->Accumulate(static_cast<std::int32_t>(y), inv / c * s_yj);
      }
      theta->Accumulate(update.dst,
                        inv * (0.5 * gamma * inv - 1.0 / c + 1.0));
    }
  }
  theta->SortIndices();
  return Status::OK();
}

void IncSrEngine::AdvanceSparse(const graph::DynamicDiGraph& new_graph,
                                double scale, const Workspace& cur,
                                Workspace* next) {
  TRACE_SCOPE_ARG(kKernelExpand, cur.indices.size());
  next->EnsureSize(cur.values.size());
  next->Clear();
  RunChunkedExpansion(
      cur.indices.size(), cur.values.size(), kSparseExpandGrain,
      [&new_graph, &cur](Workspace* ws, std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const std::int32_t b = cur.indices[k];
          const double xb = cur.values[static_cast<std::size_t>(b)];
          for (graph::NodeId a : new_graph.OutNeighbors(b)) {
            ws->Accumulate(a, xb);
          }
        }
      },
      next);
  for (std::int32_t a : next->indices) {
    const std::size_t deg = new_graph.InDegree(a);
    INCSR_DCHECK(deg > 0, "node %d reached without in-edges", a);
    next->values[static_cast<std::size_t>(a)] *=
        scale / static_cast<double>(deg);
  }
  next->SortIndices();
}

template <typename SMatrix>
void IncSrEngine::ScatterOuter(const Workspace& xi, const Workspace& eta,
                               SMatrix* s) {
  TRACE_SCOPE_ARG(kKernelScatter, xi.indices.size() + eta.indices.size());
  // S += ξ·ηᵀ + η·ξᵀ, row-parallel over supp(ξ) ∪ supp(η). Each touched
  // row gets its ξ-term writes and then its η-term writes — the exact
  // serial sequence — and rows are disjoint, so the result is bitwise
  // identical to the serial kernel at any thread count. Write sessions
  // are opened serially up front: BeginWriteRow may COW-clone a shard and
  // is writer-thread-only. Filling a session (Add / the dense fast path)
  // touches only writer-local state plus immutable base blocks, so the
  // workers stream safely; commits are serial again. A sparse-backed row
  // accumulates (column, delta) pairs seeded from its stored values —
  // the same per-column FP sequence as writing through a densified row —
  // and commit index-merges them, so the row never leaves its tier.
  scatter_rows_.clear();
  std::set_union(xi.indices.begin(), xi.indices.end(), eta.indices.begin(),
                 eta.indices.end(), std::back_inserter(scatter_rows_));
  if (scatter_writers_.size() < scatter_rows_.size()) {
    scatter_writers_.resize(scatter_rows_.size());
  }
  for (std::size_t k = 0; k < scatter_rows_.size(); ++k) {
    s->BeginWriteRow(static_cast<std::size_t>(scatter_rows_[k]),
                     &scatter_writers_[k]);
  }
  const std::size_t per_row = xi.indices.size() + eta.indices.size();
  const std::size_t grain = std::max<std::size_t>(
      1, kScatterGrainFlops / std::max<std::size_t>(per_row, 1));
  Scheduler::Global().ParallelFor(
      0, scatter_rows_.size(), grain, threads_,
      [this, &xi, &eta](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const auto r = static_cast<std::size_t>(scatter_rows_[k]);
          la::RowWriter& w = scatter_writers_[k];
          if (w.is_dense()) {
            // Dense fast path: identical to the old flat-pointer kernel.
            double* __restrict row = w.Dense();
            if (xi.seen[r]) {
              const double xr = xi.values[r];
              for (std::int32_t b : eta.indices) {
                row[static_cast<std::size_t>(b)] +=
                    xr * eta.values[static_cast<std::size_t>(b)];
              }
            }
            if (eta.seen[r]) {
              const double er = eta.values[r];
              for (std::int32_t a : xi.indices) {
                row[static_cast<std::size_t>(a)] +=
                    er * xi.values[static_cast<std::size_t>(a)];
              }
            }
            continue;
          }
          // Sparse-native path: same deltas, same emission order.
          if (xi.seen[r]) {
            const double xr = xi.values[r];
            for (std::int32_t b : eta.indices) {
              w.Add(static_cast<std::size_t>(b),
                    xr * eta.values[static_cast<std::size_t>(b)]);
            }
          }
          if (eta.seen[r]) {
            const double er = eta.values[r];
            for (std::int32_t a : xi.indices) {
              w.Add(static_cast<std::size_t>(a),
                    er * xi.values[static_cast<std::size_t>(a)]);
            }
          }
        }
      });
  for (std::size_t k = 0; k < scatter_rows_.size(); ++k) {
    s->CommitWriteRow(&scatter_writers_[k]);
  }
}

void IncSrEngine::RecordTouched(const Workspace& ws) {
  for (std::int32_t idx : ws.indices) {
    const auto i = static_cast<std::size_t>(idx);
    if (!touched_seen_[i]) {
      touched_seen_[i] = 1;
      stats_.touched_nodes.push_back(idx);
    }
  }
}

template <typename SMatrix>
Status IncSrEngine::ApplyUpdate(const graph::EdgeUpdate& update,
                                graph::DynamicDiGraph* graph,
                                la::DynamicRowMatrix* q, SMatrix* s) {
  INCSR_CHECK(graph != nullptr && q != nullptr && s != nullptr,
              "IncSrEngine::ApplyUpdate: null output");
  if (s->rows() != q->rows() || s->cols() != q->cols() ||
      graph->num_nodes() != q->rows()) {
    return Status::InvalidArgument("IncSrEngine: inconsistent G/Q/S shapes");
  }

  // Phase 1 (old state): Theorem 1 factors and the pruned seed θ on B₀.
  RankOneUpdate rank_one;
  INCSR_RETURN_IF_ERROR(
      ComputeSparseSeed(update, *graph, *q, *s, &rank_one, &eta_));

  // Phase 2: commit the edge change; Q̃ differs from Q in row j only.
  Status applied = update.kind == graph::UpdateKind::kInsert
                       ? graph->AddEdge(update.src, update.dst)
                       : graph->RemoveEdge(update.src, update.dst);
  if (!applied.ok()) return applied;
  graph::RefreshTransitionRow(*graph, update.dst, q);

  // Phase 3: pruned iterations (ξ₀ = C·e_j; η₀ = θ).
  RunPrunedIterations(update.dst, *graph, s);
  return Status::OK();
}

template <typename SMatrix>
void IncSrEngine::RunPrunedIterations(graph::NodeId target,
                                      const graph::DynamicDiGraph& new_graph,
                                      SMatrix* s) {
  // Per iteration the supports of ξ, η are the affected sets A_k, B_k of
  // Theorem 4; everything outside them stays untouched in S.
  const double c = options_.damping;
  const std::size_t n = new_graph.num_nodes();
  xi_.EnsureSize(n);
  xi_.Clear();
  xi_.Accumulate(target, c);

  stats_ = AffectedAreaStats{};
  stats_.num_nodes = n;
  stats_.a_sizes.push_back(xi_.indices.size());
  stats_.b_sizes.push_back(eta_.indices.size());
  touched_seen_.assign(n, 0);
  RecordTouched(xi_);
  RecordTouched(eta_);
  ScatterOuter(xi_, eta_, s);

  for (int k = 0; k < options_.iterations; ++k) {
    AdvanceSparse(new_graph, c, xi_, &xi_next_);
    AdvanceSparse(new_graph, 1.0, eta_, &eta_next_);
    std::swap(xi_, xi_next_);
    std::swap(eta_, eta_next_);
    stats_.a_sizes.push_back(xi_.indices.size());
    stats_.b_sizes.push_back(eta_.indices.size());
    RecordTouched(xi_);
    RecordTouched(eta_);
    ScatterOuter(xi_, eta_, s);
  }
  std::sort(stats_.touched_nodes.begin(), stats_.touched_nodes.end());
}

template <typename SMatrix>
Status IncSrEngine::ApplyRowUpdate(graph::NodeId target,
                                   std::span<const graph::EdgeUpdate> changes,
                                   graph::DynamicDiGraph* graph,
                                   la::DynamicRowMatrix* q, SMatrix* s) {
  INCSR_CHECK(graph != nullptr && q != nullptr && s != nullptr,
              "ApplyRowUpdate: null output");
  const std::size_t n = graph->num_nodes();
  if (!graph->HasNode(target)) {
    return Status::OutOfRange("ApplyRowUpdate: bad target node " +
                              std::to_string(target));
  }
  if (s->rows() != n || q->rows() != n) {
    return Status::InvalidArgument("ApplyRowUpdate: inconsistent shapes");
  }
  // Validate the whole group against a simulated in-neighbor set before
  // mutating anything.
  auto old_in = graph->InNeighbors(target);
  std::vector<graph::NodeId> in_set(old_in.begin(), old_in.end());
  for (const graph::EdgeUpdate& change : changes) {
    if (change.dst != target) {
      return Status::InvalidArgument(
          "ApplyRowUpdate: change " + graph::ToString(change) +
          " does not target node " + std::to_string(target));
    }
    if (!graph->HasNode(change.src)) {
      return Status::OutOfRange("ApplyRowUpdate: bad source in " +
                                graph::ToString(change));
    }
    auto it = std::lower_bound(in_set.begin(), in_set.end(), change.src);
    const bool present = it != in_set.end() && *it == change.src;
    if (change.kind == graph::UpdateKind::kInsert) {
      if (present) {
        return Status::AlreadyExists("ApplyRowUpdate: duplicate " +
                                     graph::ToString(change));
      }
      in_set.insert(it, change.src);
    } else {
      if (!present) {
        return Status::NotFound("ApplyRowUpdate: absent " +
                                graph::ToString(change));
      }
      in_set.erase(it);
    }
  }

  // v = (new row − old row)ᵀ of Q, supported on I_old(j) ∪ I_new(j).
  const auto j = static_cast<std::size_t>(target);
  la::SparseVector v(n);
  {
    auto old_row = q->RowEntries(j);
    const double new_weight =
        in_set.empty() ? 0.0 : 1.0 / static_cast<double>(in_set.size());
    std::size_t a = 0;  // cursor over old_row
    std::size_t b = 0;  // cursor over in_set (new neighbors, sorted)
    while (a < old_row.size() || b < in_set.size()) {
      if (b >= in_set.size() ||
          (a < old_row.size() && old_row[a].col < in_set[b])) {
        v.Append(old_row[a].col, -old_row[a].value);  // removed neighbor
        ++a;
      } else if (a >= old_row.size() || in_set[b] < old_row[a].col) {
        v.Append(in_set[b], new_weight);  // added neighbor
        ++b;
      } else {
        const double delta = new_weight - old_row[a].value;
        if (delta != 0.0) v.Append(old_row[a].col, delta);
        ++a;
        ++b;
      }
    }
  }

  if (v.nnz() == 0) {
    // Net-zero row change (e.g. insert+delete of the same edge within the
    // group): just commit the graph mutations.
    Status applied = graph::ApplyUpdates(
        std::vector<graph::EdgeUpdate>(changes.begin(), changes.end()), graph);
    if (!applied.ok()) return applied;
    stats_ = AffectedAreaStats{};
    stats_.num_nodes = n;
    return Status::OK();
  }

  // Generalized Theorem 2 seed with u = e_target:
  //   z = S·v, γ = vᵀ·z, y = Q_old·z, θ = w = y + (γ/2)·e_target.
  // z via symmetric rows of S (contiguous reads): z = Σ coeff·S_{c,·},
  // column-parallel — every z entry keeps the serial k-order, so any
  // partition is bitwise identical.
  la::Vector z(n);
  {
    // Source rows are resolved serially up front: ReadRow may gather a
    // sparse-backed row into its scratch, which is a write and therefore
    // writer-thread-only — workers then stream from stable pointers.
    if (read_gather_.size() < v.nnz()) read_gather_.resize(v.nnz());
    read_ptrs_.resize(v.nnz());
    for (std::size_t k = 0; k < v.nnz(); ++k) {
      read_ptrs_[k] = s->ReadRow(static_cast<std::size_t>(v.indices()[k]),
                                 &read_gather_[k]);
    }
    double* zp = z.data();
    const double* const* rows = read_ptrs_.data();
    Scheduler::Global().ParallelFor(
        0, n, /*grain=*/2048, threads_,
        [&v, rows, zp](std::size_t lo, std::size_t hi) {
          for (std::size_t k = 0; k < v.nnz(); ++k) {
            const double coeff = v.values()[k];
            const double* __restrict row = rows[k];
            for (std::size_t y = lo; y < hi; ++y) zp[y] += coeff * row[y];
          }
        });
  }
  const double gamma = v.DotDense(z);

  // y = Q_old·z on its support: gather supp(z), then expand it through the
  // out-neighbors (chunk geometry a function of |supp(z)| only). The graph
  // still holds the OLD adjacency here, so the expansion and the
  // in-degrees are the old ones, matching Q_old.
  eta_.EnsureSize(n);
  eta_.Clear();
  {
    const double* zp = z.data();
    const graph::DynamicDiGraph* g = graph;
    expand_sources_.clear();
    for (std::size_t c = 0; c < n; ++c) {
      if (zp[c] != 0.0) expand_sources_.push_back(static_cast<std::int32_t>(c));
    }
    RunChunkedExpansion(
        expand_sources_.size(), n, kSparseExpandGrain,
        [this, g, zp](Workspace* ws, std::size_t lo, std::size_t hi) {
          for (std::size_t k = lo; k < hi; ++k) {
            const auto c = static_cast<std::size_t>(expand_sources_[k]);
            for (graph::NodeId a :
                 g->OutNeighbors(static_cast<graph::NodeId>(c))) {
              ws->Accumulate(a, zp[c]);
            }
          }
        },
        &eta_);
  }
  for (std::int32_t a : eta_.indices) {
    const std::size_t deg = graph->InDegree(a);
    INCSR_DCHECK(deg > 0, "node %d reached without in-edges", a);
    eta_.values[static_cast<std::size_t>(a)] /= static_cast<double>(deg);
  }
  eta_.Accumulate(target, 0.5 * gamma);
  eta_.SortIndices();

  // Commit: mutate the graph and refresh row j of Q.
  Status applied = graph::ApplyUpdates(
      std::vector<graph::EdgeUpdate>(changes.begin(), changes.end()), graph);
  if (!applied.ok()) return applied;
  graph::RefreshTransitionRow(*graph, target, q);

  RunPrunedIterations(target, *graph, s);
  return Status::OK();
}

// The engine is used with exactly two score containers: the plain dense
// matrix (tests, benches, reference paths) and the serving layer's
// copy-on-write ScoreStore. Instantiate both here so callers only need the
// declarations.
template Status IncSrEngine::ApplyUpdate<la::DenseMatrix>(
    const graph::EdgeUpdate&, graph::DynamicDiGraph*, la::DynamicRowMatrix*,
    la::DenseMatrix*);
template Status IncSrEngine::ApplyUpdate<la::ScoreStore>(
    const graph::EdgeUpdate&, graph::DynamicDiGraph*, la::DynamicRowMatrix*,
    la::ScoreStore*);
template Status IncSrEngine::ApplyRowUpdate<la::DenseMatrix>(
    graph::NodeId, std::span<const graph::EdgeUpdate>, graph::DynamicDiGraph*,
    la::DynamicRowMatrix*, la::DenseMatrix*);
template Status IncSrEngine::ApplyRowUpdate<la::ScoreStore>(
    graph::NodeId, std::span<const graph::EdgeUpdate>, graph::DynamicDiGraph*,
    la::DynamicRowMatrix*, la::ScoreStore*);

}  // namespace incsr::core
