// DynamicSimRank — the library's main entry point. It owns a mutually
// consistent triple (graph G, transition matrix Q, similarity matrix S)
// and keeps S exact under edge insertions/deletions using the paper's
// incremental algorithms: Inc-SR (pruned, the default) or Inc-uSR
// (unpruned, Algorithm 1). Batch updates are decomposed into unit updates,
// exactly as Section V prescribes.
//
// Typical use:
//   auto index = DynamicSimRank::Create(graph, {.damping = 0.6,
//                                               .iterations = 15});
//   index->InsertEdge(i, j);               // O(K(nd + |AFF|))
//   double s = index->Score(a, b);
//   auto top = index->TopKPairs(30);
#ifndef INCSR_CORE_DYNAMIC_SIMRANK_H_
#define INCSR_CORE_DYNAMIC_SIMRANK_H_

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/affected_area.h"
#include "core/inc_sr.h"
#include "graph/digraph.h"
#include "graph/update_stream.h"
#include "la/dense_matrix.h"
#include "la/score_store.h"
#include "la/sparse_matrix.h"
#include "simrank/options.h"

namespace incsr::core {

/// Which incremental algorithm maintains S.
enum class UpdateAlgorithm {
  /// Algorithm 2: rank-one Sylvester + affected-area pruning (default).
  kIncSR,
  /// Algorithm 1: rank-one Sylvester, dense O(K·n²) per update.
  kIncUSR,
};

/// A scored node pair.
struct ScoredPair {
  graph::NodeId a;
  graph::NodeId b;
  double score;

  bool operator==(const ScoredPair&) const = default;
};

/// THE top-k total order, used by every ranked surface in the repo
/// (TopKPairsOf, TopKForOf, and the sharded cross-shard merges):
/// descending score, ties broken by ascending (a, b). True iff x ranks
/// before y. One definition on purpose — the sharded serving layer's
/// bitwise shard-count invariance depends on all sites agreeing.
inline bool ScoredPairRanksBefore(const ScoredPair& x, const ScoredPair& y) {
  if (x.score != y.score) return x.score > y.score;
  return std::pair(x.a, x.b) < std::pair(y.a, y.b);
}

/// Top-k highest-scoring distinct pairs (a < b) of a similarity matrix.
/// Ordering CONTRACT (load-bearing, do not change): descending score,
/// ties broken by ascending (a, b). The sharded serving layer's k-way
/// cross-shard merge (src/shard/) relies on this total order being the
/// same within a shard (in local ids) and globally — shard-local ids are
/// assigned in ascending global order precisely so the tie-break
/// translates — which is what makes top-k results invariant to the shard
/// count. Bounded min-heap: O(n² log k), O(k) extra space. Generic over
/// any row-readable score container (la::DenseMatrix, la::ScoreStore, or
/// a pinned la::ScoreStore::View) so the serving layer can run it on
/// published snapshots without materializing S; rows are read through
/// ReadRow so sparse-backed rows gather into one reused scratch buffer.
template <typename SLike>
std::vector<ScoredPair> TopKPairsOf(const SLike& s, std::size_t k) {
  const std::size_t n = s.rows();
  std::vector<ScoredPair> heap;  // min-heap on score
  const auto cmp = &ScoredPairRanksBefore;
  la::Vector scratch;
  for (std::size_t a = 0; a < n; ++a) {
    const double* row = s.ReadRow(a, &scratch);
    for (std::size_t b = a + 1; b < n; ++b) {
      ScoredPair cand{static_cast<graph::NodeId>(a),
                      static_cast<graph::NodeId>(b), row[b]};
      if (heap.size() < k) {
        heap.push_back(cand);
        std::push_heap(heap.begin(), heap.end(), cmp);
      } else if (!heap.empty() && cmp(cand, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), cmp);
        heap.back() = cand;
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }
  // sort_heap yields ascending order w.r.t. cmp, i.e. best pair first.
  std::sort_heap(heap.begin(), heap.end(), cmp);
  return heap;
}

/// Top-k most similar nodes to `query` (excluding itself) read off row
/// `query` of `s`. Same ordering contract as TopKPairsOf: descending
/// score, ties broken by ascending node id — required for
/// shard-count-invariant results. Bounded min-heap: O(n log k).
template <typename SLike>
std::vector<ScoredPair> TopKForOf(const SLike& s, graph::NodeId query,
                                  std::size_t k) {
  const std::size_t n = s.rows();
  const std::size_t q = static_cast<std::size_t>(query);
  la::Vector scratch;
  const double* row = s.ReadRow(q, &scratch);
  // Bounded min-heap over the k best seen so far: O(n log k) instead of
  // the former full materialize-and-sort — this is the hot read path the
  // serving layer multiplies by every query. Every candidate shares the
  // same `a` (= query), so the shared order reduces to ascending b ties.
  const auto cmp = &ScoredPairRanksBefore;
  std::vector<ScoredPair> heap;
  heap.reserve(std::min(k, n));
  for (std::size_t b = 0; b < n; ++b) {
    if (b == q) continue;
    ScoredPair cand{query, static_cast<graph::NodeId>(b), row[b]};
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (!heap.empty() && cmp(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);
  return heap;
}

/// Incrementally maintained all-pairs SimRank index (matrix form, Eq. 2).
class DynamicSimRank {
 public:
  /// Builds the index: computes the initial S with the matrix-form batch
  /// algorithm run to `batch_iterations` (default: enough iterations for
  /// the fixed point to be exact to ~1e-12, as the incremental theorems
  /// assume), then stands ready for updates.
  static Result<DynamicSimRank> Create(
      graph::DynamicDiGraph graph, const simrank::SimRankOptions& options = {},
      UpdateAlgorithm algorithm = UpdateAlgorithm::kIncSR,
      int batch_iterations = 0);

  /// Wraps an externally computed state; s must be the matrix-form
  /// similarity matrix of `graph`.
  static Result<DynamicSimRank> FromState(
      graph::DynamicDiGraph graph, la::DenseMatrix s,
      const simrank::SimRankOptions& options = {},
      UpdateAlgorithm algorithm = UpdateAlgorithm::kIncSR);

  /// Stands up an index over `num_nodes` isolated nodes WITHOUT ever
  /// materializing a dense n² matrix: for an edgeless graph Q = 0, so the
  /// matrix-form fixed point S = C·Q·S·Qᵀ + (1−C)·I is exactly (1−C)·I,
  /// which the score store builds sparse-direct in O(n). This is the entry
  /// point for an n the dense store cannot hold — grow structure with
  /// InsertEdge afterwards (rows densify on first write as usual).
  static Result<DynamicSimRank> CreateIsolated(
      std::size_t num_nodes, const simrank::SimRankOptions& options = {},
      UpdateAlgorithm algorithm = UpdateAlgorithm::kIncSR);

  const graph::DynamicDiGraph& graph() const { return graph_; }
  /// Publishes the current adjacency as an immutable byte-stable View in
  /// O(n) pointer copies; later edge updates copy-on-write only the nodes
  /// they touch (graph::DynamicDiGraph::Snapshot). Same single-writer
  /// rule as mutable_score_store(): the caller must be the update thread.
  graph::DynamicDiGraph::View SnapshotGraph() { return graph_.Snapshot(); }
  /// The maintained similarity matrix, behind the copy-on-write row store.
  /// Read entries with scores()(a, b) / scores().ReadRow(a, &scratch);
  /// materialize with scores().ToDense() when a dense matrix is genuinely
  /// needed.
  const la::ScoreStore& scores() const { return s_; }
  /// Mutable access to the score store for the serving layer, which calls
  /// Publish() on it to snapshot an epoch in O(rows touched). The caller
  /// must be the same thread that applies updates.
  la::ScoreStore* mutable_score_store() { return &s_; }
  const simrank::SimRankOptions& options() const { return options_; }
  UpdateAlgorithm algorithm() const { return algorithm_; }

  /// SimRank score of a node pair.
  double Score(graph::NodeId a, graph::NodeId b) const;

  /// Inserts edge (src → dst) and incrementally updates all scores.
  Status InsertEdge(graph::NodeId src, graph::NodeId dst);
  /// Deletes edge (src → dst) and incrementally updates all scores.
  Status DeleteEdge(graph::NodeId src, graph::NodeId dst);
  /// Applies a unit update.
  Status ApplyUpdate(const graph::EdgeUpdate& update);
  /// Applies a batch of updates as a sequence of unit updates. Stops at
  /// the first failure (already-applied prefix stays applied).
  Status ApplyBatch(const std::vector<graph::EdgeUpdate>& updates);

  /// Applies a batch with one generalized rank-one solve per DISTINCT
  /// target node (see core/coalesced_update.h) — exact like ApplyBatch,
  /// but |ΔG|/T-times cheaper when updates cluster on few targets.
  /// Only available in Inc-SR mode.
  Status ApplyBatchCoalesced(const std::vector<graph::EdgeUpdate>& updates);

  /// Extension beyond the paper: adds an isolated node. Its exact
  /// matrix-form similarities are s(v, v) = 1 − C and 0 elsewhere, so the
  /// index grows without recomputation.
  graph::NodeId AddNode();

  /// Top-k highest-scoring distinct pairs (a < b), ties broken by (a, b).
  std::vector<ScoredPair> TopKPairs(std::size_t k) const;
  /// Top-k most similar nodes to `query` (excluding itself).
  std::vector<ScoredPair> TopKFor(graph::NodeId query, std::size_t k) const;

  /// Affected-area statistics of the last Inc-SR update (empty for
  /// Inc-uSR, which does not prune).
  const AffectedAreaStats& last_update_stats() const {
    return engine_.last_stats();
  }

  /// Merged affected-area statistics of the last ApplyBatch /
  /// ApplyBatchCoalesced call (one Merge per unit update / coalesced
  /// group). `touched_nodes` spans the whole batch. Empty for Inc-uSR.
  const AffectedAreaStats& last_batch_stats() const { return batch_stats_; }

  // ---- Touched-row delta surface (serving layer) -------------------------
  // Ground truth of which rows of S changed since the score store's last
  // Publish(): the rows the update kernels actually wrote (their COW
  // clones), not the analytic affected-area superset of
  // last_batch_stats().touched_nodes. Exact for EVERY algorithm — Inc-SR,
  // coalesced batches, and Inc-uSR's dense scatter (all rows) alike — and
  // duplicate-free, so the serving layer re-ranks its per-node top-k index
  // and invalidates its query cache from exactly this set per epoch.

  /// True when every row must be assumed changed (fresh index, AddNode's
  /// store rebuild) — callers should rebuild rather than patch.
  bool AllScoreRowsTouched() const { return s_.all_rows_touched(); }
  /// Rows written since the last score-store publish; meaningless while
  /// AllScoreRowsTouched() is set.
  std::span<const std::int32_t> TouchedScoreRows() const {
    return s_.touched_rows();
  }

 private:
  DynamicSimRank(graph::DynamicDiGraph graph, la::DenseMatrix s,
                 const simrank::SimRankOptions& options,
                 UpdateAlgorithm algorithm);
  // Store-direct variant for backings that never existed densely
  // (CreateIsolated's sparse identity).
  DynamicSimRank(graph::DynamicDiGraph graph, la::ScoreStore s,
                 const simrank::SimRankOptions& options,
                 UpdateAlgorithm algorithm);

  graph::DynamicDiGraph graph_;
  la::DynamicRowMatrix q_;
  la::ScoreStore s_;
  simrank::SimRankOptions options_;
  UpdateAlgorithm algorithm_;
  IncSrEngine engine_;
  AffectedAreaStats batch_stats_;
};

}  // namespace incsr::core

#endif  // INCSR_CORE_DYNAMIC_SIMRANK_H_
