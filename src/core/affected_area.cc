#include "core/affected_area.h"

#include "common/check.h"

namespace incsr::core {

double AffectedAreaStats::AffectedArea() const {
  INCSR_CHECK(a_sizes.size() == b_sizes.size(),
              "AffectedAreaStats: ragged sizes");
  if (a_sizes.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t k = 0; k < a_sizes.size(); ++k) {
    total += static_cast<double>(a_sizes[k]) * static_cast<double>(b_sizes[k]);
  }
  return total / static_cast<double>(a_sizes.size());
}

double AffectedAreaStats::AffectedFraction() const {
  if (num_nodes == 0) return 0.0;
  double n2 = static_cast<double>(num_nodes) * static_cast<double>(num_nodes);
  return AffectedArea() / n2;
}

double AffectedAreaStats::PrunedFraction() const {
  return 1.0 - AffectedFraction();
}

void AffectedAreaStats::Merge(const AffectedAreaStats& other) {
  a_sizes.insert(a_sizes.end(), other.a_sizes.begin(), other.a_sizes.end());
  b_sizes.insert(b_sizes.end(), other.b_sizes.begin(), other.b_sizes.end());
  touched_nodes.insert(touched_nodes.end(), other.touched_nodes.begin(),
                       other.touched_nodes.end());
  num_nodes = other.num_nodes > num_nodes ? other.num_nodes : num_nodes;
}

}  // namespace incsr::core
