// Coalesced batch updates — an optimization the paper's framework implies
// but does not spell out. Theorem 1 proves a UNIT update changes one row
// of Q, making ΔQ rank-one; but the proof never uses that only one entry
// of the row moved: ANY set of insertions/deletions whose target is the
// same node j changes only row j, so their combined ΔQ = e_j·vᵀ is still
// rank-one with v = (new row − old row)ᵀ. Theorem 2's seed derivation
// (z = S·v, γ = vᵀ·z, w = Q·z + (γ/2)·u) is likewise valid for arbitrary
// rank-one factors. Hence a batch ΔG touching T distinct target nodes can
// be absorbed with T rank-one Sylvester solves instead of |ΔG| — a
// |ΔG|/T-fold saving when updates cluster on hot nodes (new papers citing
// many references, re-ranked related-video lists, …).
//
// Exactness is unchanged: each coalesced group is processed against the
// current state, and the final graph (hence the fixed point) is identical
// to the unit-update decomposition's.
#ifndef INCSR_CORE_COALESCED_UPDATE_H_
#define INCSR_CORE_COALESCED_UPDATE_H_

#include <vector>

#include "common/status.h"
#include "core/affected_area.h"
#include "core/inc_sr.h"
#include "graph/digraph.h"
#include "graph/update_stream.h"
#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"
#include "simrank/options.h"

namespace incsr::core {

/// All updates of a batch that share one target node (order preserved).
struct CoalescedGroup {
  graph::NodeId target;
  std::vector<graph::EdgeUpdate> changes;
};

/// Groups a batch by target node, preserving the first-appearance order of
/// targets. The updates themselves keep their relative order inside each
/// group. Grouping is exact because updates on different targets commute
/// on Q (they touch disjoint rows) and the final S depends only on the
/// final graph.
std::vector<CoalescedGroup> CoalesceByTarget(
    const std::vector<graph::EdgeUpdate>& updates);

/// Pruned engine for coalesced batches; shares the sparse-iteration design
/// of IncSrEngine but seeds each group from the generalized rank-one
/// factors u = e_j, v = (row_new − row_old)ᵀ.
class CoalescedBatchEngine {
 public:
  explicit CoalescedBatchEngine(simrank::SimRankOptions options)
      : options_(options), engine_(options) {}

  /// Applies a whole batch, one rank-one solve per distinct target. On
  /// entry *graph/*q/*s are the OLD consistent state; on success the NEW.
  /// Fails (with the already-processed groups applied) if any individual
  /// edge change is invalid. Generic over the score container (dense
  /// matrix or COW ScoreStore), like IncSrEngine.
  template <typename SMatrix>
  Status ApplyBatch(const std::vector<graph::EdgeUpdate>& updates,
                    graph::DynamicDiGraph* graph, la::DynamicRowMatrix* q,
                    SMatrix* s);

  /// Number of rank-one solves the last ApplyBatch performed (groups with
  /// a net-zero row change are skipped entirely).
  std::size_t last_group_count() const { return last_group_count_; }
  /// Merged affected-area statistics of the last batch.
  const AffectedAreaStats& last_stats() const { return stats_; }

 private:
  template <typename SMatrix>
  Status ApplyGroup(const CoalescedGroup& group,
                    graph::DynamicDiGraph* graph, la::DynamicRowMatrix* q,
                    SMatrix* s);

  simrank::SimRankOptions options_;
  IncSrEngine engine_;  // reused for its public unit-update path on
                        // single-change groups
  AffectedAreaStats stats_;
  std::size_t last_group_count_ = 0;
};

}  // namespace incsr::core

#endif  // INCSR_CORE_COALESCED_UPDATE_H_
