// Inc-SR — Algorithm 2 of the paper: Inc-uSR plus the Theorem 4 pruning.
// The auxiliary vectors ξ_k, η_k are propagated SPARSELY: their supports
// are exactly the affected sets A_k, B_k (out-neighbor expansions in the
// new graph of the previous supports, Eq. 40), so each iteration costs
// O(d·(|A_k| + |B_k|)) for the propagation plus O(|A_k|·|B_k|) for the
// scatter of ξ_k·η_kᵀ (+ its transpose) into S — never O(n²). Node-pairs
// outside ∪_k A_k×B_k are untouched, which is the paper's lossless
// pruning: their ΔS entries are a-priori zero.
//
// The seed θ is likewise computed on its support only (Algorithm 2 line 3:
// B₀ = F₁ ∪ F₂ ∪ {j} of Eqs. 38-39), using the OLD graph's out-neighbors
// of the nodes similar to i, at cost O(n + d·|B₀|) instead of O(m).
#ifndef INCSR_CORE_INC_SR_H_
#define INCSR_CORE_INC_SR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/scheduler.h"
#include "core/affected_area.h"
#include "core/rank_one_update.h"
#include "graph/digraph.h"
#include "graph/update_stream.h"
#include "la/dense_matrix.h"
#include "la/row_writer.h"
#include "la/score_store.h"
#include "la/sparse_matrix.h"
#include "simrank/options.h"

namespace incsr::core {

/// Reusable pruned-update engine. One engine per maintained similarity
/// matrix; its scratch buffers are recycled across updates so steady-state
/// unit updates allocate nothing of O(n).
///
/// The update entry points are generic over the score container SMatrix —
/// la::DenseMatrix (in-place, the tests' reference path) or la::ScoreStore
/// (row-granular copy-on-write, the serving path). SMatrix must provide
/// rows()/cols(), operator()(i, j) and ReadRow(i, scratch) for reads
/// (representation-agnostic: sparse-backed store rows gather into the
/// scratch), Col(j), and BeginWriteRow(i, writer)/CommitWriteRow(writer)
/// as the sole write entry point: kernels emit (column, delta) pairs into
/// the la::RowWriter session and the container merges them into whatever
/// backing the row has — dense-direct for dense rows, a sparse index-merge
/// for sparse rows (no densify-on-write). The engine only ever opens
/// sessions for rows it actually scatters into, which is what keeps the
/// ScoreStore's COW cost at O(affected rows) and its transient dense
/// footprint at O(spilled rows) instead of O(touched · n). Definitions
/// live in inc_sr.cc with explicit instantiations for both containers.
/// The hot loops — seed scan, support expansion, outer-product scatter —
/// run on the shared Scheduler with options.num_threads-way parallelism.
/// S is bitwise identical at every thread count: rows are scattered
/// disjointly (each row's write sequence is the serial one), and the
/// expansion kernels accumulate into per-chunk workspaces whose chunk
/// geometry depends only on the data shape, merged in chunk order.
class IncSrEngine {
 public:
  explicit IncSrEngine(simrank::SimRankOptions options)
      : options_(options),
        threads_(Scheduler::ResolveNumThreads(options.num_threads)) {}

  const simrank::SimRankOptions& options() const { return options_; }

  /// Applies one unit update. On entry *graph, *q, *s must be mutually
  /// consistent OLD state; on success they hold the NEW state. On failure
  /// nothing is modified.
  template <typename SMatrix>
  Status ApplyUpdate(const graph::EdgeUpdate& update,
                     graph::DynamicDiGraph* graph, la::DynamicRowMatrix* q,
                     SMatrix* s);

  /// Generalized (coalesced) rank-one update: absorbs EVERY change in
  /// `changes` — all of which must target node `target` — with a single
  /// rank-one Sylvester solve, using u = e_target and v = Δ(row). The
  /// Theorem 2 seed is computed from the general formulas (z = S·v,
  /// γ = vᵀz, w = Q·z + (γ/2)u) instead of the per-case Eqs. (27)-(28).
  /// All changes are validated against the old state before anything is
  /// mutated; on failure nothing is modified.
  template <typename SMatrix>
  Status ApplyRowUpdate(graph::NodeId target,
                        std::span<const graph::EdgeUpdate> changes,
                        graph::DynamicDiGraph* graph, la::DynamicRowMatrix* q,
                        SMatrix* s);

  /// Affected-area measurements of the most recent successful update.
  const AffectedAreaStats& last_stats() const { return stats_; }

 private:
  // Sparse workspace vector: sorted index list + dense value backing.
  struct Workspace {
    la::Vector values;                  // dense accumulator (n entries)
    std::vector<std::int32_t> indices;  // touched indices
    std::vector<std::uint8_t> seen;     // membership flags

    void EnsureSize(std::size_t n);
    void Clear();  // resets touched entries only — O(nnz)
    void Accumulate(std::int32_t index, double delta);
    /// Accumulates every entry of `other` (chunk subtotals, in `other`'s
    /// first-touch order) into this workspace.
    void MergeFrom(const Workspace& other);
    void SortIndices();
  };

  // Chunked-expansion body: fills `ws` from source positions [lo, hi).
  using ExpandFn =
      std::function<void(Workspace* ws, std::size_t lo, std::size_t hi)>;

  // Runs `expand` over a deterministic chunking of [0, count) — geometry
  // a function of (count, grain) only, NEVER of threads_ — with one
  // accumulator workspace (of dimension n) per chunk, then merges the
  // chunk subtotals into `out` in chunk order. This fixes the FP merge
  // tree, so the result is bitwise identical at any thread count. With a
  // single chunk, expands straight into `out` (same tree: merging one
  // subtotal into a fresh entry is the subtotal itself).
  void RunChunkedExpansion(std::size_t count, std::size_t n,
                           std::size_t grain, const ExpandFn& expand,
                           Workspace* out);

  // θ on its support B₀, computed from the OLD graph/Q/S.
  template <typename SMatrix>
  Status ComputeSparseSeed(const graph::EdgeUpdate& update,
                           const graph::DynamicDiGraph& graph,
                           const la::DynamicRowMatrix& q, const SMatrix& s,
                           RankOneUpdate* rank_one, Workspace* theta);

  // next ← scale · Q̃ · cur, where Q̃ is read off the NEW graph
  // (Q̃_{a,b} = 1/indeg(a) for b ∈ I(a)). Supports expand by out-neighbor
  // sets — exactly Eq. (40).
  void AdvanceSparse(const graph::DynamicDiGraph& new_graph, double scale,
                     const Workspace& cur, Workspace* next);

  // S += ξ·ηᵀ + η·ξᵀ restricted to the touched supports, row-parallel
  // over supp(ξ) ∪ supp(η). Write sessions are opened serially
  // (BeginWriteRow is writer-thread-only), filled in parallel (disjoint
  // rows ⇒ disjoint writers), and committed serially; each row's write
  // sequence equals the serial kernel's, so the result is bitwise
  // identical to serial whatever backing each row has.
  template <typename SMatrix>
  void ScatterOuter(const Workspace& xi, const Workspace& eta, SMatrix* s);

  // Shared tail of both update paths: seeds ξ₀ = C·e_target, η₀ = θ
  // (already in eta_), runs the K pruned iterations against the NEW
  // graph, scattering into S and recording stats.
  template <typename SMatrix>
  void RunPrunedIterations(graph::NodeId target,
                           const graph::DynamicDiGraph& new_graph,
                           SMatrix* s);

  // Adds every index of `ws` not yet in stats_.touched_nodes (dedup via
  // touched_seen_, which mirrors stats_.touched_nodes membership).
  void RecordTouched(const Workspace& ws);

  simrank::SimRankOptions options_;
  std::size_t threads_;  // resolved once from options/env/hardware
  AffectedAreaStats stats_;
  Workspace xi_;
  Workspace eta_;
  Workspace xi_next_;
  Workspace eta_next_;
  std::vector<Workspace> chunk_ws_;  // per-chunk expansion accumulators
  // Gathered nonzero sources of a dense scan, so expansion chunk geometry
  // depends on the support size rather than the ambient node count — this
  // is what makes S bitwise invariant to the ambient id space (a sharded
  // component-local run matches the full-graph run, see src/shard/).
  std::vector<std::int32_t> expand_sources_;
  std::vector<std::int32_t> scatter_rows_;  // supp(ξ) ∪ supp(η) scratch
  std::vector<la::RowWriter> scatter_writers_;  // one write session per row
  std::vector<std::uint8_t> touched_seen_;
  // ReadRow gather scratches. Like the COW clones, sparse row reads are
  // resolved serially BEFORE a parallel region (ReadRow writes its
  // scratch), so workers only ever see stable pointers.
  la::Vector seed_row_i_;
  la::Vector seed_row_j_;
  std::vector<la::Vector> read_gather_;    // one scratch per resolved row
  std::vector<const double*> read_ptrs_;   // pre-resolved row pointers
};

}  // namespace incsr::core

#endif  // INCSR_CORE_INC_SR_H_
