// Inc-uSR — Algorithm 1 of the paper. Given the old graph's transition
// matrix Q and similarity matrix S, a unit edge update is absorbed in
// O(K·n²) time WITHOUT any matrix-matrix product: the rank-one structure
// of C·u·wᵀ lets the Sylvester series for M be advanced with two auxiliary
// vectors,
//
//   ξ₀ = C·e_j, η₀ = θ, M₀ = ξ₀·η₀ᵀ,
//   ξ_{k+1} = C·(Q·ξ_k + (vᵀξ_k)·u)        // = C·Q̃·ξ_k, old-Q trick
//   η_{k+1} = Q·η_k + (vᵀη_k)·u            // = Q̃·η_k
//   M_{k+1} = ξ_{k+1}·η_{k+1}ᵀ + M_k,
//
// and the new scores are S̃ = S + M_K + M_Kᵀ.
#ifndef INCSR_CORE_INC_USR_H_
#define INCSR_CORE_INC_USR_H_

#include "common/status.h"
#include "core/update_seed.h"
#include "graph/digraph.h"
#include "graph/update_stream.h"
#include "la/dense_matrix.h"
#include "la/score_store.h"
#include "la/sparse_matrix.h"
#include "simrank/options.h"

namespace incsr::core {

/// Computes the K-truncated auxiliary matrix M_K for a unit update from
/// the OLD Q and S (Algorithm 1, lines 1-17); ΔS = M_K + M_Kᵀ. Generic
/// over the score container (reads only); instantiated for la::DenseMatrix
/// and la::ScoreStore in inc_usr.cc.
template <typename SMatrix>
Result<la::DenseMatrix> IncUsrAuxiliaryM(const la::DynamicRowMatrix& q,
                                         const SMatrix& s,
                                         const graph::EdgeUpdate& update,
                                         const simrank::SimRankOptions& options);

/// Computes the K-truncated ΔS = M_K + M_Kᵀ for a unit update from the OLD
/// Q and S (Algorithm 1, lines 1-17 — everything except the final add).
Result<la::DenseMatrix> IncUsrDelta(const la::DynamicRowMatrix& q,
                                    const la::DenseMatrix& s,
                                    const graph::EdgeUpdate& update,
                                    const simrank::SimRankOptions& options);

/// Full unit-update cycle: validates the update against *graph, computes
/// ΔS from the old state, applies the edge change to *graph, refreshes the
/// touched row of *q, and adds ΔS into *s. All three outputs are left
/// unmodified on failure.
template <typename SMatrix>
Status IncUsrApplyUpdate(const graph::EdgeUpdate& update,
                         const simrank::SimRankOptions& options,
                         graph::DynamicDiGraph* graph,
                         la::DynamicRowMatrix* q, SMatrix* s);

}  // namespace incsr::core

#endif  // INCSR_CORE_INC_USR_H_
