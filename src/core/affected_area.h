// Affected-area accounting for the pruned incremental algorithm. The
// paper's complexity bound is O(K(n·d + |AFF|)) with
// |AFF| := avg_{k∈[0,K]} |A_k|·|B_k| (Section V-B); Fig. 2d/2e report the
// pruned-pair percentage and |AFF|/n² — these statistics regenerate both.
#ifndef INCSR_CORE_AFFECTED_AREA_H_
#define INCSR_CORE_AFFECTED_AREA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace incsr::core {

/// Sizes of the affected node-pair blocks A_k × B_k touched by one (or
/// more, when accumulated) pruned incremental updates.
struct AffectedAreaStats {
  /// |A_k| per iteration k = 0..K (row support of the k-th term of M).
  std::vector<std::size_t> a_sizes;
  /// |B_k| per iteration k = 0..K (column support).
  std::vector<std::size_t> b_sizes;
  /// Union of ∪_k (A_k ∪ B_k): every node whose S row/column the update
  /// may have changed (ΔS is supported on ∪_k A_k×B_k plus its transpose).
  /// Deduplicated and sorted within one update; Merge concatenates, so a
  /// node can appear once per merged update. This is what the serving
  /// layer's query cache keys its selective invalidation on.
  std::vector<std::int32_t> touched_nodes;
  /// Node count n of the graph the update ran on.
  std::size_t num_nodes = 0;

  /// |AFF| = avg_k |A_k|·|B_k|.
  double AffectedArea() const;
  /// |AFF| / n² — the Fig. 2e series.
  double AffectedFraction() const;
  /// 1 − |AFF|/n² — the Fig. 2d pruned-pair percentage.
  double PrunedFraction() const;

  /// Merges another update's measurements (per-k sizes are appended; the
  /// averages then span all merged updates).
  void Merge(const AffectedAreaStats& other);
};

}  // namespace incsr::core

#endif  // INCSR_CORE_AFFECTED_AREA_H_
