#include "core/dynamic_simrank.h"

#include <algorithm>
#include <cmath>

#include "core/coalesced_update.h"
#include "core/inc_usr.h"
#include "graph/transition.h"
#include "simrank/batch_matrix.h"

namespace incsr::core {

namespace {

// Iterations for the initial batch solve so that S is the fixed point of
// Eq. (2) to ~1e-12 — the exactness the incremental theorems assume.
int DefaultBatchIterations(double damping) {
  // damping^(K+1) <= 1e-13  =>  K >= log(1e-13)/log(damping) - 1.
  double k = std::log(1e-13) / std::log(damping) - 1.0;
  return std::max(20, static_cast<int>(std::ceil(k)));
}

}  // namespace

DynamicSimRank::DynamicSimRank(graph::DynamicDiGraph graph, la::DenseMatrix s,
                               const simrank::SimRankOptions& options,
                               UpdateAlgorithm algorithm)
    : graph_(std::move(graph)),
      q_(graph::BuildTransition(graph_)),
      s_(la::ScoreStore(std::move(s))),
      options_(options),
      algorithm_(algorithm),
      engine_(options) {}

DynamicSimRank::DynamicSimRank(graph::DynamicDiGraph graph, la::ScoreStore s,
                               const simrank::SimRankOptions& options,
                               UpdateAlgorithm algorithm)
    : graph_(std::move(graph)),
      q_(graph::BuildTransition(graph_)),
      s_(std::move(s)),
      options_(options),
      algorithm_(algorithm),
      engine_(options) {}

Result<DynamicSimRank> DynamicSimRank::Create(
    graph::DynamicDiGraph graph, const simrank::SimRankOptions& options,
    UpdateAlgorithm algorithm, int batch_iterations) {
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in (0, 1)");
  }
  if (options.iterations < 1) {
    return Status::InvalidArgument("iterations must be >= 1");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  simrank::SimRankOptions batch = options;
  batch.iterations = batch_iterations > 0
                         ? batch_iterations
                         : DefaultBatchIterations(options.damping);
  la::DenseMatrix s = simrank::BatchMatrix(graph, batch);
  return DynamicSimRank(std::move(graph), std::move(s), options, algorithm);
}

Result<DynamicSimRank> DynamicSimRank::FromState(
    graph::DynamicDiGraph graph, la::DenseMatrix s,
    const simrank::SimRankOptions& options, UpdateAlgorithm algorithm) {
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in (0, 1)");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (s.rows() != graph.num_nodes() || s.cols() != graph.num_nodes()) {
    return Status::InvalidArgument("FromState: S shape does not match graph");
  }
  return DynamicSimRank(std::move(graph), std::move(s), options, algorithm);
}

Result<DynamicSimRank> DynamicSimRank::CreateIsolated(
    std::size_t num_nodes, const simrank::SimRankOptions& options,
    UpdateAlgorithm algorithm) {
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in (0, 1)");
  }
  if (options.iterations < 1) {
    return Status::InvalidArgument("iterations must be >= 1");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  graph::DynamicDiGraph graph;
  graph.AddNodes(num_nodes);
  la::ScoreStore s =
      la::ScoreStore::ScaledIdentity(num_nodes, 1.0 - options.damping);
  return DynamicSimRank(std::move(graph), std::move(s), options, algorithm);
}

double DynamicSimRank::Score(graph::NodeId a, graph::NodeId b) const {
  INCSR_CHECK(graph_.HasNode(a) && graph_.HasNode(b),
              "Score: node out of range");
  return s_(static_cast<std::size_t>(a), static_cast<std::size_t>(b));
}

Status DynamicSimRank::InsertEdge(graph::NodeId src, graph::NodeId dst) {
  return ApplyUpdate({graph::UpdateKind::kInsert, src, dst});
}

Status DynamicSimRank::DeleteEdge(graph::NodeId src, graph::NodeId dst) {
  return ApplyUpdate({graph::UpdateKind::kDelete, src, dst});
}

Status DynamicSimRank::ApplyUpdate(const graph::EdgeUpdate& update) {
  if (algorithm_ == UpdateAlgorithm::kIncSR) {
    return engine_.ApplyUpdate(update, &graph_, &q_, &s_);
  }
  return IncUsrApplyUpdate(update, options_, &graph_, &q_, &s_);
}

Status DynamicSimRank::ApplyBatch(
    const std::vector<graph::EdgeUpdate>& updates) {
  batch_stats_ = AffectedAreaStats{};
  batch_stats_.num_nodes = graph_.num_nodes();
  for (const graph::EdgeUpdate& update : updates) {
    INCSR_RETURN_IF_ERROR(ApplyUpdate(update));
    if (algorithm_ == UpdateAlgorithm::kIncSR) {
      batch_stats_.Merge(engine_.last_stats());
    }
  }
  return Status::OK();
}

Status DynamicSimRank::ApplyBatchCoalesced(
    const std::vector<graph::EdgeUpdate>& updates) {
  if (algorithm_ != UpdateAlgorithm::kIncSR) {
    return Status::NotSupported(
        "coalesced batches require the Inc-SR update algorithm");
  }
  batch_stats_ = AffectedAreaStats{};
  batch_stats_.num_nodes = graph_.num_nodes();
  for (const CoalescedGroup& group : CoalesceByTarget(updates)) {
    INCSR_RETURN_IF_ERROR(engine_.ApplyRowUpdate(
        group.target, std::span(group.changes.data(), group.changes.size()),
        &graph_, &q_, &s_));
    batch_stats_.Merge(engine_.last_stats());
  }
  return Status::OK();
}

graph::NodeId DynamicSimRank::AddNode() {
  graph::NodeId fresh = graph_.AddNodes(1);
  const std::size_t n = graph_.num_nodes();
  q_.Grow(n, n);
  // Every row gains a column, so the whole store is rebuilt; previously
  // published views keep serving the old geometry.
  la::DenseMatrix grown(n, n);
  la::Vector scratch;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double* src = s_.ReadRow(i, &scratch);
    double* dst = grown.RowPtr(i);
    std::copy(src, src + n - 1, dst);
  }
  grown(n - 1, n - 1) = 1.0 - options_.damping;
  s_.Assign(std::move(grown));
  return fresh;
}

std::vector<ScoredPair> DynamicSimRank::TopKPairs(std::size_t k) const {
  return TopKPairsOf(s_, k);
}

std::vector<ScoredPair> DynamicSimRank::TopKFor(graph::NodeId query,
                                                std::size_t k) const {
  INCSR_CHECK(graph_.HasNode(query), "TopKFor: node out of range");
  return TopKForOf(s_, query, k);
}

}  // namespace incsr::core
