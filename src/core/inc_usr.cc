#include "core/inc_usr.h"

#include <algorithm>
#include <vector>

#include "common/scheduler.h"
#include "graph/transition.h"
#include "la/row_writer.h"
#include "obs/trace.h"

namespace incsr::core {

template <typename SMatrix>
Result<la::DenseMatrix> IncUsrAuxiliaryM(
    const la::DynamicRowMatrix& q, const SMatrix& s,
    const graph::EdgeUpdate& update, const simrank::SimRankOptions& options) {
  Result<UpdateSeed> seed = [&]() -> Result<UpdateSeed> {
    TRACE_SCOPE(kKernelSeed);
    return ComputeUpdateSeed(q, s, update, options);
  }();
  if (!seed.ok()) return seed.status();

  const std::size_t n = q.rows();
  const std::size_t j = static_cast<std::size_t>(update.dst);
  const double c = options.damping;
  const la::SparseVector& u = seed->rank_one.u;
  const la::SparseVector& v = seed->rank_one.v;

  // ξ₀ = C·e_j, η₀ = θ, M₀ = ξ₀·η₀ᵀ (Algorithm 1, line 13). The outer
  // products — the only O(n²) work per iteration — run row-parallel on
  // the shared scheduler (same chunk-geometry determinism rules as the Inc-SR
  // kernels, so M — and therefore S — is bitwise identical at any thread
  // count).
  const std::size_t threads = Scheduler::ResolveNumThreads(options.num_threads);
  la::Vector xi(n);
  xi[j] = c;
  la::Vector eta = seed->theta;
  la::DenseMatrix m(n, n);
  m.AddOuterProduct(1.0, xi, eta, threads);

  for (int k = 0; k < options.iterations; ++k) {
    TRACE_SCOPE_ARG(kKernelExpand, k);
    // ξ ← C·(Q·ξ + (vᵀξ)·u); η ← Q·η + (vᵀη)·u   (lines 15-16). The
    // (vᵀ·)·u correction realizes Q̃ = Q + u·vᵀ without materializing Q̃.
    double v_dot_xi = v.DotDense(xi);
    la::Vector xi_next = q.Multiply(xi);
    u.AxpyInto(v_dot_xi, &xi_next);
    xi_next.Scale(c);

    double v_dot_eta = v.DotDense(eta);
    la::Vector eta_next = q.Multiply(eta);
    u.AxpyInto(v_dot_eta, &eta_next);

    m.AddOuterProduct(1.0, xi_next, eta_next, threads);  // line 17
    xi = std::move(xi_next);
    eta = std::move(eta_next);
  }
  return m;
}

Result<la::DenseMatrix> IncUsrDelta(const la::DynamicRowMatrix& q,
                                    const la::DenseMatrix& s,
                                    const graph::EdgeUpdate& update,
                                    const simrank::SimRankOptions& options) {
  Result<la::DenseMatrix> m = IncUsrAuxiliaryM(q, s, update, options);
  if (!m.ok()) return m.status();
  // ΔS = M_K + M_Kᵀ (Theorem 2).
  la::DenseMatrix delta = m->Transpose();
  delta.AddScaled(1.0, m.value());
  return delta;
}

template <typename SMatrix>
Status IncUsrApplyUpdate(const graph::EdgeUpdate& update,
                         const simrank::SimRankOptions& options,
                         graph::DynamicDiGraph* graph,
                         la::DynamicRowMatrix* q, SMatrix* s) {
  INCSR_CHECK(graph != nullptr && q != nullptr && s != nullptr,
              "IncUsrApplyUpdate: null output");
  Result<la::DenseMatrix> m = IncUsrAuxiliaryM(*q, *s, update, options);
  if (!m.ok()) return m.status();
  // The seed validated the update against Q; mirror it on the graph.
  Status applied = update.kind == graph::UpdateKind::kInsert
                       ? graph->AddEdge(update.src, update.dst)
                       : graph->RemoveEdge(update.src, update.dst);
  if (!applied.ok()) return applied;
  graph::RefreshTransitionRow(*graph, update.dst, q);
  // S += M + Mᵀ without materializing the transpose: per row, the M-term
  // row pass then a blocked pass for the Mᵀ term (cache-friendly tiles).
  // Inc-uSR has no pruning, so the update touches every COLUMN of every
  // row — this kernel is inherently dense. Write sessions are opened
  // serially (BeginWriteRow is writer-thread-only); each worker then
  // takes its rows' flat pointers via RowWriter::Dense(), which for a
  // sparse-backed row gathers into a writer-LOCAL buffer (safe in the
  // parallel region — only immutable base blocks and writer state are
  // touched) and commits as a counted write-path spill. Rows are disjoint
  // and each keeps the serial M-then-Mᵀ write order, so the result is
  // bitwise identical at any thread count.
  TRACE_SCOPE_ARG(kKernelScatter, s->rows());
  const std::size_t n = s->rows();
  const std::size_t threads = Scheduler::ResolveNumThreads(options.num_threads);
  std::vector<la::RowWriter> writers(n);
  for (std::size_t i = 0; i < n; ++i) s->BeginWriteRow(i, &writers[i]);
  constexpr std::size_t kBlock = 64;
  Scheduler::Global().ParallelFor(
      0, n, kBlock, threads,
      [&writers, &m, n](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          double* __restrict row = writers[i].Dense();
          const double* mi = m->RowPtr(i);
          for (std::size_t j = 0; j < n; ++j) row[j] += mi[j];
        }
        for (std::size_t ib = lo; ib < hi; ib += kBlock) {
          const std::size_t imax = std::min(hi, ib + kBlock);
          for (std::size_t jb = 0; jb < n; jb += kBlock) {
            const std::size_t jmax = std::min(n, jb + kBlock);
            for (std::size_t i = ib; i < imax; ++i) {
              double* row = writers[i].Dense();
              for (std::size_t j = jb; j < jmax; ++j) {
                row[j] += (*m)(j, i);
              }
            }
          }
        }
      });
  for (std::size_t i = 0; i < n; ++i) s->CommitWriteRow(&writers[i]);
  return Status::OK();
}

template Result<la::DenseMatrix> IncUsrAuxiliaryM<la::DenseMatrix>(
    const la::DynamicRowMatrix&, const la::DenseMatrix&,
    const graph::EdgeUpdate&, const simrank::SimRankOptions&);
template Result<la::DenseMatrix> IncUsrAuxiliaryM<la::ScoreStore>(
    const la::DynamicRowMatrix&, const la::ScoreStore&,
    const graph::EdgeUpdate&, const simrank::SimRankOptions&);
template Status IncUsrApplyUpdate<la::DenseMatrix>(
    const graph::EdgeUpdate&, const simrank::SimRankOptions&,
    graph::DynamicDiGraph*, la::DynamicRowMatrix*, la::DenseMatrix*);
template Status IncUsrApplyUpdate<la::ScoreStore>(
    const graph::EdgeUpdate&, const simrank::SimRankOptions&,
    graph::DynamicDiGraph*, la::DynamicRowMatrix*, la::ScoreStore*);

}  // namespace incsr::core
