#include "core/inc_usr.h"

#include "graph/transition.h"

namespace incsr::core {

Result<la::DenseMatrix> IncUsrAuxiliaryM(
    const la::DynamicRowMatrix& q, const la::DenseMatrix& s,
    const graph::EdgeUpdate& update, const simrank::SimRankOptions& options) {
  Result<UpdateSeed> seed = ComputeUpdateSeed(q, s, update, options);
  if (!seed.ok()) return seed.status();

  const std::size_t n = q.rows();
  const std::size_t j = static_cast<std::size_t>(update.dst);
  const double c = options.damping;
  const la::SparseVector& u = seed->rank_one.u;
  const la::SparseVector& v = seed->rank_one.v;

  // ξ₀ = C·e_j, η₀ = θ, M₀ = ξ₀·η₀ᵀ (Algorithm 1, line 13).
  la::Vector xi(n);
  xi[j] = c;
  la::Vector eta = seed->theta;
  la::DenseMatrix m(n, n);
  m.AddOuterProduct(1.0, xi, eta);

  for (int k = 0; k < options.iterations; ++k) {
    // ξ ← C·(Q·ξ + (vᵀξ)·u); η ← Q·η + (vᵀη)·u   (lines 15-16). The
    // (vᵀ·)·u correction realizes Q̃ = Q + u·vᵀ without materializing Q̃.
    double v_dot_xi = v.DotDense(xi);
    la::Vector xi_next = q.Multiply(xi);
    u.AxpyInto(v_dot_xi, &xi_next);
    xi_next.Scale(c);

    double v_dot_eta = v.DotDense(eta);
    la::Vector eta_next = q.Multiply(eta);
    u.AxpyInto(v_dot_eta, &eta_next);

    m.AddOuterProduct(1.0, xi_next, eta_next);  // line 17
    xi = std::move(xi_next);
    eta = std::move(eta_next);
  }
  return m;
}

Result<la::DenseMatrix> IncUsrDelta(const la::DynamicRowMatrix& q,
                                    const la::DenseMatrix& s,
                                    const graph::EdgeUpdate& update,
                                    const simrank::SimRankOptions& options) {
  Result<la::DenseMatrix> m = IncUsrAuxiliaryM(q, s, update, options);
  if (!m.ok()) return m.status();
  // ΔS = M_K + M_Kᵀ (Theorem 2).
  la::DenseMatrix delta = m->Transpose();
  delta.AddScaled(1.0, m.value());
  return delta;
}

Status IncUsrApplyUpdate(const graph::EdgeUpdate& update,
                         const simrank::SimRankOptions& options,
                         graph::DynamicDiGraph* graph,
                         la::DynamicRowMatrix* q, la::DenseMatrix* s) {
  INCSR_CHECK(graph != nullptr && q != nullptr && s != nullptr,
              "IncUsrApplyUpdate: null output");
  Result<la::DenseMatrix> m = IncUsrAuxiliaryM(*q, *s, update, options);
  if (!m.ok()) return m.status();
  // The seed validated the update against Q; mirror it on the graph.
  Status applied = update.kind == graph::UpdateKind::kInsert
                       ? graph->AddEdge(update.src, update.dst)
                       : graph->RemoveEdge(update.src, update.dst);
  if (!applied.ok()) return applied;
  graph::RefreshTransitionRow(*graph, update.dst, q);
  // S += M + Mᵀ without materializing the transpose: row pass for M, then
  // a blocked pass for Mᵀ (cache-friendly tiles).
  s->AddScaled(1.0, m.value());
  const std::size_t n = s->rows();
  constexpr std::size_t kBlock = 64;
  for (std::size_t ib = 0; ib < n; ib += kBlock) {
    const std::size_t imax = std::min(n, ib + kBlock);
    for (std::size_t jb = 0; jb < n; jb += kBlock) {
      const std::size_t jmax = std::min(n, jb + kBlock);
      for (std::size_t i = ib; i < imax; ++i) {
        for (std::size_t j = jb; j < jmax; ++j) {
          (*s)(i, j) += (*m)(j, i);
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace incsr::core
