// Theorem 1 of the paper: for a unit edge update (i, j), the change to the
// backward transition matrix is rank-one, ΔQ = u·vᵀ, with
//
//   insertion:  u = e_j            v = e_i               (d_j = 0)
//               u = e_j/(d_j+1)    v = e_i − [Q]ᵀ_{j,·}   (d_j > 0)
//   deletion:   u = e_j            v = −e_i              (d_j = 1)
//               u = e_j/(d_j−1)    v = [Q]ᵀ_{j,·} − e_i   (d_j > 1)
//
// where d_j is the in-degree of j in the OLD graph and [Q]_{j,·} the OLD
// row j. Everything downstream (Theorems 2-4, both incremental algorithms)
// is built on this decomposition.
#ifndef INCSR_CORE_RANK_ONE_UPDATE_H_
#define INCSR_CORE_RANK_ONE_UPDATE_H_

#include "common/status.h"
#include "graph/update_stream.h"
#include "la/sparse_matrix.h"
#include "la/vector.h"

namespace incsr::core {

/// The rank-one decomposition ΔQ = u·vᵀ of a unit link update.
struct RankOneUpdate {
  /// The update this decomposition describes.
  graph::EdgeUpdate update;
  /// In-degree of the target node j in the old graph.
  std::size_t old_in_degree = 0;
  /// u: a (possibly scaled) unit vector supported on {j}.
  la::SparseVector u;
  /// v: supported on {i} ∪ I_old(j).
  la::SparseVector v;
};

/// Computes Theorem 1's u, v from the OLD transition matrix. Fails when the
/// endpoints are out of range, an inserted edge already exists, or a
/// deleted edge is absent ([Q]_{j,i} is consulted, so q must reflect the
/// old graph).
Result<RankOneUpdate> ComputeRankOneUpdate(const la::DynamicRowMatrix& q,
                                           const graph::EdgeUpdate& update);

}  // namespace incsr::core

#endif  // INCSR_CORE_RANK_ONE_UPDATE_H_
