#include "core/rank_one_update.h"

namespace incsr::core {

Result<RankOneUpdate> ComputeRankOneUpdate(const la::DynamicRowMatrix& q,
                                           const graph::EdgeUpdate& update) {
  const std::size_t n = q.rows();
  const auto i = static_cast<std::size_t>(update.src);
  const auto j = static_cast<std::size_t>(update.dst);
  if (update.src < 0 || update.dst < 0 || i >= n || j >= n) {
    return Status::OutOfRange("rank-one update: node out of range for " +
                              graph::ToString(update));
  }
  auto row_j = q.RowEntries(j);
  const std::size_t dj = row_j.size();
  const bool edge_in_q = q.At(j, i) != 0.0;

  RankOneUpdate result;
  result.update = update;
  result.old_in_degree = dj;
  result.u = la::SparseVector(n);
  result.v = la::SparseVector(n);

  if (update.kind == graph::UpdateKind::kInsert) {
    if (edge_in_q) {
      return Status::AlreadyExists("rank-one update: edge exists, cannot " +
                                   graph::ToString(update));
    }
    if (dj == 0) {
      result.u.Append(update.dst, 1.0);
      result.v.Append(update.src, 1.0);
    } else {
      result.u.Append(update.dst, 1.0 / static_cast<double>(dj + 1));
      // v = e_i − [Q]ᵀ_{j,·}: merge the singleton e_i into the negated row,
      // keeping indices sorted.
      bool placed_i = false;
      for (const la::SparseEntry& e : row_j) {
        if (!placed_i && update.src < e.col) {
          result.v.Append(update.src, 1.0);
          placed_i = true;
        }
        result.v.Append(e.col, -e.value);
      }
      if (!placed_i) result.v.Append(update.src, 1.0);
    }
  } else {
    if (!edge_in_q) {
      return Status::NotFound("rank-one update: edge absent, cannot " +
                              graph::ToString(update));
    }
    if (dj == 1) {
      result.u.Append(update.dst, 1.0);
      result.v.Append(update.src, -1.0);
    } else {
      result.u.Append(update.dst, 1.0 / static_cast<double>(dj - 1));
      // v = [Q]ᵀ_{j,·} − e_i: subtract 1 from the i-slot of the row.
      for (const la::SparseEntry& e : row_j) {
        double value = e.value;
        if (static_cast<std::size_t>(e.col) == i) value -= 1.0;
        result.v.Append(e.col, value);
      }
    }
  }
  return result;
}

}  // namespace incsr::core
