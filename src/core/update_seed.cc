#include "core/update_seed.h"

#include <algorithm>

namespace incsr::core {

namespace {

// S is symmetric, so column i is row i: one contiguous row resolve
// instead of n strided probes (on a ScoreStore, s.Col(i) pays a shard
// lookup per element — this is the seed path's dominant memory cost).
template <typename SMatrix>
la::Vector SymmetricColumn(const SMatrix& s, std::size_t i) {
  la::Vector out(s.cols());
  // ReadRow either hands back the contiguous dense payload (copied below)
  // or gathers a sparse-backed row straight into `out` and returns its
  // buffer, in which case the copy is skipped.
  const double* row = s.ReadRow(i, &out);
  if (row != out.data()) std::copy(row, row + s.cols(), out.data());
  return out;
}

}  // namespace

template <typename SMatrix>
Result<UpdateSeed> ComputeUpdateSeed(const la::DynamicRowMatrix& q,
                                     const SMatrix& s,
                                     const graph::EdgeUpdate& update,
                                     const simrank::SimRankOptions& options) {
  if (s.rows() != q.rows() || s.cols() != q.cols()) {
    return Status::InvalidArgument("ComputeUpdateSeed: S/Q shape mismatch");
  }
  Result<RankOneUpdate> rank_one = ComputeRankOneUpdate(q, update);
  if (!rank_one.ok()) return rank_one.status();

  const std::size_t i = static_cast<std::size_t>(update.src);
  const std::size_t j = static_cast<std::size_t>(update.dst);
  const double c = options.damping;
  const std::size_t dj = rank_one->old_in_degree;

  // w := Q · [S]_{·,i}   (Algorithm 1, line 3).
  la::Vector w = q.Multiply(SymmetricColumn(s, i));

  UpdateSeed seed;
  seed.rank_one = std::move(rank_one).value();

  const bool trivial_degree =
      (update.kind == graph::UpdateKind::kInsert && dj == 0) ||
      (update.kind == graph::UpdateKind::kDelete && dj == 1);
  // γ (Eq. 29); in the d_j = 0 / d_j = 1 cases it degenerates to [S]_{i,i}
  // (Algorithm 1 uses that form directly).
  seed.gamma = trivial_degree
                   ? s(i, i)
                   : s(i, i) + s(j, j) / c - 2.0 * w[j] - 1.0 / c + 1.0;

  if (update.kind == graph::UpdateKind::kInsert) {
    if (dj == 0) {
      // θ = w + ½[S]_{i,i}·e_j
      seed.theta = std::move(w);
      seed.theta[j] += 0.5 * s(i, i);
    } else {
      // θ = (w − (1/C)[S]_{·,j} + (γ/(2(d_j+1)) + 1/C − 1)·e_j) / (d_j+1)
      const double inv = 1.0 / static_cast<double>(dj + 1);
      seed.theta = std::move(w);
      seed.theta.Axpy(-1.0 / c, SymmetricColumn(s, j));
      seed.theta[j] += 0.5 * seed.gamma * inv + 1.0 / c - 1.0;
      seed.theta.Scale(inv);
    }
  } else {
    if (dj == 1) {
      // θ = ½[S]_{i,i}·e_j − w
      seed.theta = std::move(w);
      seed.theta.Scale(-1.0);
      seed.theta[j] += 0.5 * s(i, i);
    } else {
      // θ = ((1/C)[S]_{·,j} − w + (γ/(2(d_j−1)) − 1/C + 1)·e_j) / (d_j−1)
      const double inv = 1.0 / static_cast<double>(dj - 1);
      seed.theta = std::move(w);
      seed.theta.Scale(-1.0);
      seed.theta.Axpy(1.0 / c, SymmetricColumn(s, j));
      seed.theta[j] += 0.5 * seed.gamma * inv - 1.0 / c + 1.0;
      seed.theta.Scale(inv);
    }
  }
  return seed;
}

template Result<UpdateSeed> ComputeUpdateSeed<la::DenseMatrix>(
    const la::DynamicRowMatrix&, const la::DenseMatrix&,
    const graph::EdgeUpdate&, const simrank::SimRankOptions&);
template Result<UpdateSeed> ComputeUpdateSeed<la::ScoreStore>(
    const la::DynamicRowMatrix&, const la::ScoreStore&,
    const graph::EdgeUpdate&, const simrank::SimRankOptions&);

}  // namespace incsr::core
