#include "core/coalesced_update.h"

#include <unordered_map>

namespace incsr::core {

std::vector<CoalescedGroup> CoalesceByTarget(
    const std::vector<graph::EdgeUpdate>& updates) {
  std::vector<CoalescedGroup> groups;
  std::unordered_map<graph::NodeId, std::size_t> index_of_target;
  for (const graph::EdgeUpdate& update : updates) {
    auto [it, inserted] =
        index_of_target.emplace(update.dst, groups.size());
    if (inserted) {
      groups.push_back({update.dst, {}});
    }
    groups[it->second].changes.push_back(update);
  }
  return groups;
}

template <typename SMatrix>
Status CoalescedBatchEngine::ApplyBatch(
    const std::vector<graph::EdgeUpdate>& updates,
    graph::DynamicDiGraph* graph, la::DynamicRowMatrix* q, SMatrix* s) {
  INCSR_CHECK(graph != nullptr && q != nullptr && s != nullptr,
              "CoalescedBatchEngine::ApplyBatch: null output");
  stats_ = AffectedAreaStats{};
  stats_.num_nodes = graph->num_nodes();
  last_group_count_ = 0;
  for (const CoalescedGroup& group : CoalesceByTarget(updates)) {
    INCSR_RETURN_IF_ERROR(ApplyGroup(group, graph, q, s));
  }
  return Status::OK();
}

template <typename SMatrix>
Status CoalescedBatchEngine::ApplyGroup(const CoalescedGroup& group,
                                        graph::DynamicDiGraph* graph,
                                        la::DynamicRowMatrix* q, SMatrix* s) {
  INCSR_RETURN_IF_ERROR(engine_.ApplyRowUpdate(
      group.target, std::span(group.changes.data(), group.changes.size()),
      graph, q, s));
  ++last_group_count_;
  stats_.Merge(engine_.last_stats());
  return Status::OK();
}

template Status CoalescedBatchEngine::ApplyBatch<la::DenseMatrix>(
    const std::vector<graph::EdgeUpdate>&, graph::DynamicDiGraph*,
    la::DynamicRowMatrix*, la::DenseMatrix*);
template Status CoalescedBatchEngine::ApplyBatch<la::ScoreStore>(
    const std::vector<graph::EdgeUpdate>&, graph::DynamicDiGraph*,
    la::DynamicRowMatrix*, la::ScoreStore*);

}  // namespace incsr::core
