#include "net/wire.h"

#include "obs/histogram.h"

namespace incsr::net::wire {

namespace {

// Bytes per encoded EdgeUpdate (kind + src + dst).
constexpr std::size_t kUpdateBytes = 1 + 4 + 4;
// Bytes per encoded ScoredPair (a + b + score bits).
constexpr std::size_t kScoredPairBytes = 4 + 4 + 8;

void EncodeUpdates(const std::vector<graph::EdgeUpdate>& updates,
                   Writer* writer) {
  writer->U32(static_cast<std::uint32_t>(updates.size()));
  for (const graph::EdgeUpdate& update : updates) {
    writer->U8(update.kind == graph::UpdateKind::kInsert ? 0 : 1);
    writer->I32(update.src);
    writer->I32(update.dst);
  }
}

bool DecodeUpdates(Reader* reader, std::vector<graph::EdgeUpdate>* out) {
  std::uint32_t count;
  if (!reader->U32(&count)) return false;
  // Count precedes payload: check it against the bytes actually present
  // before reserving, so a forged count cannot drive a huge allocation.
  if (static_cast<std::size_t>(count) * kUpdateBytes > reader->Remaining()) {
    return false;
  }
  out->clear();
  out->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint8_t kind;
    graph::EdgeUpdate update;
    if (!reader->U8(&kind) || !reader->I32(&update.src) ||
        !reader->I32(&update.dst)) {
      return false;
    }
    if (kind > 1) return false;
    update.kind = kind == 0 ? graph::UpdateKind::kInsert
                            : graph::UpdateKind::kDelete;
    out->push_back(update);
  }
  return true;
}

void EncodePairs(const std::vector<core::ScoredPair>& pairs, Writer* writer) {
  writer->U32(static_cast<std::uint32_t>(pairs.size()));
  for (const core::ScoredPair& pair : pairs) {
    writer->I32(pair.a);
    writer->I32(pair.b);
    writer->F64(pair.score);
  }
}

bool DecodePairs(Reader* reader, std::vector<core::ScoredPair>* out) {
  std::uint32_t count;
  if (!reader->U32(&count)) return false;
  if (static_cast<std::size_t>(count) * kScoredPairBytes >
      reader->Remaining()) {
    return false;
  }
  out->clear();
  out->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    core::ScoredPair pair;
    if (!reader->I32(&pair.a) || !reader->I32(&pair.b) ||
        !reader->F64(&pair.score)) {
      return false;
    }
    out->push_back(pair);
  }
  return true;
}

bool DecodeRpcStatus(Reader* reader, RpcStatus* out) {
  std::uint8_t raw;
  if (!reader->U8(&raw)) return false;
  if (raw > static_cast<std::uint8_t>(RpcStatus::kInternal)) return false;
  *out = static_cast<RpcStatus>(raw);
  return true;
}

}  // namespace

bool IsKnownTag(std::uint8_t tag) {
  switch (static_cast<MessageTag>(tag)) {
    case MessageTag::kPingRequest:
    case MessageTag::kSubmitRequest:
    case MessageTag::kScoreRequest:
    case MessageTag::kTopKForRequest:
    case MessageTag::kTopKPairsRequest:
    case MessageTag::kSuggestRequest:
    case MessageTag::kStatsRequest:
    case MessageTag::kFlushRequest:
    case MessageTag::kSubscribeRequest:
    case MessageTag::kPingResponse:
    case MessageTag::kSubmitResponse:
    case MessageTag::kScoreResponse:
    case MessageTag::kTopKResponse:
    case MessageTag::kSuggestResponse:
    case MessageTag::kStatsResponse:
    case MessageTag::kFlushResponse:
    case MessageTag::kSubscribeResponse:
    case MessageTag::kReplicaBatch:
    case MessageTag::kErrorResponse:
      return true;
  }
  return false;
}

const char* MessageTagName(MessageTag tag) {
  switch (tag) {
    case MessageTag::kPingRequest: return "PingRequest";
    case MessageTag::kSubmitRequest: return "SubmitRequest";
    case MessageTag::kScoreRequest: return "ScoreRequest";
    case MessageTag::kTopKForRequest: return "TopKForRequest";
    case MessageTag::kTopKPairsRequest: return "TopKPairsRequest";
    case MessageTag::kSuggestRequest: return "SuggestRequest";
    case MessageTag::kStatsRequest: return "StatsRequest";
    case MessageTag::kFlushRequest: return "FlushRequest";
    case MessageTag::kSubscribeRequest: return "SubscribeRequest";
    case MessageTag::kPingResponse: return "PingResponse";
    case MessageTag::kSubmitResponse: return "SubmitResponse";
    case MessageTag::kScoreResponse: return "ScoreResponse";
    case MessageTag::kTopKResponse: return "TopKResponse";
    case MessageTag::kSuggestResponse: return "SuggestResponse";
    case MessageTag::kStatsResponse: return "StatsResponse";
    case MessageTag::kFlushResponse: return "FlushResponse";
    case MessageTag::kSubscribeResponse: return "SubscribeResponse";
    case MessageTag::kReplicaBatch: return "ReplicaBatch";
    case MessageTag::kErrorResponse: return "ErrorResponse";
  }
  return "Unknown";
}

const char* RpcStatusName(RpcStatus status) {
  switch (status) {
    case RpcStatus::kOk: return "OK";
    case RpcStatus::kOverloaded: return "OVERLOADED";
    case RpcStatus::kInvalid: return "INVALID";
    case RpcStatus::kNotSupported: return "NOT_SUPPORTED";
    case RpcStatus::kShuttingDown: return "SHUTTING_DOWN";
    case RpcStatus::kInternal: return "INTERNAL";
  }
  return "Unknown";
}

RpcStatus ToRpcStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return RpcStatus::kOk;
    case StatusCode::kResourceExhausted:
      return RpcStatus::kOverloaded;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
      return RpcStatus::kInvalid;
    case StatusCode::kNotSupported:
      return RpcStatus::kNotSupported;
    case StatusCode::kFailedPrecondition:
      return RpcStatus::kShuttingDown;
    case StatusCode::kIoError:
    case StatusCode::kInternal:
      return RpcStatus::kInternal;
  }
  return RpcStatus::kInternal;
}

Status FromRpcStatus(RpcStatus status, const std::string& context) {
  switch (status) {
    case RpcStatus::kOk:
      return Status::OK();
    case RpcStatus::kOverloaded:
      return Status::ResourceExhausted(context + ": server overloaded");
    case RpcStatus::kInvalid:
      return Status::InvalidArgument(context + ": invalid request");
    case RpcStatus::kNotSupported:
      return Status::NotSupported(context + ": not supported by server");
    case RpcStatus::kShuttingDown:
      return Status::FailedPrecondition(context + ": server shutting down");
    case RpcStatus::kInternal:
      return Status::Internal(context + ": server error");
  }
  return Status::Internal(context + ": unknown rpc status");
}

std::string EncodeFrame(MessageTag tag, std::string_view body) {
  std::string frame;
  frame.reserve(kFramePrefixBytes + kMinFramePayload + body.size());
  const auto payload =
      static_cast<std::uint32_t>(kMinFramePayload + body.size());
  Writer writer(&frame);
  writer.U32(payload);
  writer.U8(kWireVersion);
  writer.U8(static_cast<std::uint8_t>(tag));
  frame.append(body.data(), body.size());
  return frame;
}

Result<std::size_t> ParseFrameLength(const std::uint8_t prefix[4],
                                     std::size_t max_payload) {
  std::uint32_t length;
  std::memcpy(&length, prefix, sizeof length);
  if (length < kMinFramePayload) {
    return Status::InvalidArgument("frame payload shorter than version+tag");
  }
  if (length > max_payload) {
    return Status::InvalidArgument(
        "frame payload " + std::to_string(length) + " exceeds cap " +
        std::to_string(max_payload));
  }
  return static_cast<std::size_t>(length);
}

Result<Frame> ParseFramePayload(std::string_view payload) {
  if (payload.size() < kMinFramePayload) {
    return Status::InvalidArgument("frame payload shorter than version+tag");
  }
  const auto version = static_cast<std::uint8_t>(payload[0]);
  const auto tag = static_cast<std::uint8_t>(payload[1]);
  if (version != kWireVersion) {
    return Status::InvalidArgument("wire version " + std::to_string(version) +
                                   " (expected " +
                                   std::to_string(kWireVersion) + ")");
  }
  if (!IsKnownTag(tag)) {
    return Status::InvalidArgument("unknown message tag " +
                                   std::to_string(tag));
  }
  return Frame{static_cast<MessageTag>(tag), payload.substr(2)};
}

// ---- SubmitRequest ---------------------------------------------------------

void SubmitRequest::EncodeBody(std::string* out) const {
  Writer writer(out);
  EncodeUpdates(updates, &writer);
}

bool SubmitRequest::DecodeBody(std::string_view body, SubmitRequest* out) {
  Reader reader(body);
  return DecodeUpdates(&reader, &out->updates) && reader.Complete();
}

// ---- SubmitResponse --------------------------------------------------------

void SubmitResponse::EncodeBody(std::string* out) const {
  Writer writer(out);
  writer.U8(static_cast<std::uint8_t>(status));
  writer.U32(accepted);
  writer.U32(rejected);
}

bool SubmitResponse::DecodeBody(std::string_view body, SubmitResponse* out) {
  Reader reader(body);
  return DecodeRpcStatus(&reader, &out->status) && reader.U32(&out->accepted) &&
         reader.U32(&out->rejected) && reader.Complete();
}

// ---- ScoreRequest / ScoreResponse -----------------------------------------

void ScoreRequest::EncodeBody(std::string* out) const {
  Writer writer(out);
  writer.I32(a);
  writer.I32(b);
}

bool ScoreRequest::DecodeBody(std::string_view body, ScoreRequest* out) {
  Reader reader(body);
  return reader.I32(&out->a) && reader.I32(&out->b) && reader.Complete();
}

void ScoreResponse::EncodeBody(std::string* out) const {
  Writer writer(out);
  writer.U8(static_cast<std::uint8_t>(status));
  writer.F64(score);
}

bool ScoreResponse::DecodeBody(std::string_view body, ScoreResponse* out) {
  Reader reader(body);
  return DecodeRpcStatus(&reader, &out->status) && reader.F64(&out->score) &&
         reader.Complete();
}

// ---- TopK requests / response ---------------------------------------------

void TopKForRequest::EncodeBody(std::string* out) const {
  Writer writer(out);
  writer.I32(node);
  writer.U32(k);
}

bool TopKForRequest::DecodeBody(std::string_view body, TopKForRequest* out) {
  Reader reader(body);
  return reader.I32(&out->node) && reader.U32(&out->k) && reader.Complete();
}

void TopKPairsRequest::EncodeBody(std::string* out) const {
  Writer writer(out);
  writer.U32(k);
}

bool TopKPairsRequest::DecodeBody(std::string_view body,
                                  TopKPairsRequest* out) {
  Reader reader(body);
  return reader.U32(&out->k) && reader.Complete();
}

void TopKResponse::EncodeBody(std::string* out) const {
  Writer writer(out);
  writer.U8(static_cast<std::uint8_t>(status));
  EncodePairs(entries, &writer);
}

bool TopKResponse::DecodeBody(std::string_view body, TopKResponse* out) {
  Reader reader(body);
  return DecodeRpcStatus(&reader, &out->status) &&
         DecodePairs(&reader, &out->entries) && reader.Complete();
}

// ---- Suggest ---------------------------------------------------------------

void SuggestRequest::EncodeBody(std::string* out) const {
  Writer writer(out);
  writer.U32(k);
  writer.U32(static_cast<std::uint32_t>(nodes.size()));
  for (graph::NodeId node : nodes) writer.I32(node);
}

bool SuggestRequest::DecodeBody(std::string_view body, SuggestRequest* out) {
  Reader reader(body);
  std::uint32_t count;
  if (!reader.U32(&out->k) || !reader.U32(&count)) return false;
  if (static_cast<std::size_t>(count) * 4 > reader.Remaining()) return false;
  out->nodes.clear();
  out->nodes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    graph::NodeId node;
    if (!reader.I32(&node)) return false;
    out->nodes.push_back(node);
  }
  return reader.Complete();
}

void SuggestResponse::EncodeBody(std::string* out) const {
  Writer writer(out);
  writer.U8(static_cast<std::uint8_t>(status));
  writer.U32(static_cast<std::uint32_t>(suggestions.size()));
  for (const NodeSuggestions& entry : suggestions) {
    writer.I32(entry.node);
    writer.U8(entry.found ? 1 : 0);
    EncodePairs(entry.entries, &writer);
  }
}

bool SuggestResponse::DecodeBody(std::string_view body, SuggestResponse* out) {
  Reader reader(body);
  std::uint32_t count;
  if (!DecodeRpcStatus(&reader, &out->status) || !reader.U32(&count)) {
    return false;
  }
  // Each entry is at least node + found + empty pair list: 4 + 1 + 4 B.
  if (static_cast<std::size_t>(count) * 9 > reader.Remaining()) return false;
  out->suggestions.clear();
  out->suggestions.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    NodeSuggestions entry;
    std::uint8_t found;
    if (!reader.I32(&entry.node) || !reader.U8(&found) || found > 1 ||
        !DecodePairs(&reader, &entry.entries)) {
      return false;
    }
    entry.found = found == 1;
    out->suggestions.push_back(std::move(entry));
  }
  return reader.Complete();
}

// ---- Stats -----------------------------------------------------------------

namespace {

// Sparse histogram encoding (wire v4): sum, min, max, then only the
// non-zero buckets as (u8 index, u64 count) pairs in strictly increasing
// index order. `count` is not sent — the snapshot invariant count ==
// Σ buckets makes it derivable, and deriving it keeps the two from ever
// disagreeing on the wire.
void EncodeHistogram(Writer* writer, const obs::HistogramSnapshot& hist) {
  writer->U64(hist.sum);
  writer->U64(hist.min);
  writer->U64(hist.max);
  std::uint32_t nonzero = 0;
  for (std::uint64_t bucket : hist.buckets) nonzero += bucket != 0;
  writer->U32(nonzero);
  for (std::size_t i = 0; i < obs::kHistogramBuckets; ++i) {
    if (hist.buckets[i] == 0) continue;
    writer->U8(static_cast<std::uint8_t>(i));
    writer->U64(hist.buckets[i]);
  }
}

// Rejects non-canonical encodings: indices must strictly increase and a
// listed bucket must be non-zero (every valid histogram has exactly one
// canonical byte string, so fuzzed permutations fail instead of aliasing).
bool DecodeHistogram(Reader* reader, obs::HistogramSnapshot* out) {
  *out = obs::HistogramSnapshot{};
  std::uint32_t nonzero;
  if (!reader->U64(&out->sum) || !reader->U64(&out->min) ||
      !reader->U64(&out->max) || !reader->U32(&nonzero) ||
      nonzero > obs::kHistogramBuckets) {
    return false;
  }
  int last_index = -1;
  for (std::uint32_t k = 0; k < nonzero; ++k) {
    std::uint8_t index;
    std::uint64_t count;
    if (!reader->U8(&index) || !reader->U64(&count) || count == 0 ||
        static_cast<int>(index) <= last_index) {
      return false;
    }
    last_index = index;
    out->buckets[index] = count;
    out->count += count;
  }
  return true;
}

}  // namespace

void StatsResponse::EncodeBody(std::string* out) const {
  Writer writer(out);
  writer.U8(static_cast<std::uint8_t>(status));
  writer.U64(stats.epoch);
  writer.U64(stats.submitted);
  writer.U64(stats.applied);
  writer.U64(stats.rejected);
  writer.U64(stats.failed);
  writer.U64(stats.batches);
  writer.U64(stats.queue_depth);
  writer.U64(stats.rows_published);
  writer.U64(stats.bytes_published);
  writer.U64(stats.topk_index_served);
  writer.U64(stats.topk_index_fallbacks);
  writer.U64(stats.topk_index_rows_reranked);
  writer.U64(stats.topk_pairs_served);
  writer.U64(stats.topk_pairs_fallbacks);
  writer.U64(stats.cache.hits);
  writer.U64(stats.cache.misses);
  writer.U64(stats.cache.invalidations);
  writer.U64(stats.cache.evictions);
  writer.U64(stats.cache.stale_inserts);
  writer.U64(num_nodes);
  writer.U64(num_edges);
  writer.U8(is_replica ? 1 : 0);
  // v3 tail: tiered storage, graph COW, adaptive top-k capacities. New
  // fields append strictly at the end so a frame's layout is a function
  // of its version alone.
  writer.U64(stats.rows_sparse);
  writer.U64(stats.rows_dense);
  writer.U64(stats.bytes_saved);
  writer.U64(stats.sparse_eps_drops);
  writer.F64(stats.sparse_max_error_bound);
  writer.U64(stats.tier_demotions);
  writer.U64(stats.tier_promotions);
  writer.U64(stats.graph_bytes_copied);
  writer.U64(stats.topk_cap_grows);
  writer.U64(stats.topk_cap_shrinks);
  // v4 tail: server-side latency histograms.
  EncodeHistogram(&writer, stats.queue_wait_ns);
  EncodeHistogram(&writer, stats.apply_ns);
  // v5 tail: sparse-native write-path counters.
  writer.U64(stats.rows_spilled_dense);
  writer.U64(stats.sparse_write_merges);
}

bool StatsResponse::DecodeBody(std::string_view body, StatsResponse* out) {
  Reader reader(body);
  std::uint64_t queue_depth;
  std::uint8_t is_replica;
  const bool ok =
      DecodeRpcStatus(&reader, &out->status) && reader.U64(&out->stats.epoch) &&
      reader.U64(&out->stats.submitted) && reader.U64(&out->stats.applied) &&
      reader.U64(&out->stats.rejected) && reader.U64(&out->stats.failed) &&
      reader.U64(&out->stats.batches) && reader.U64(&queue_depth) &&
      reader.U64(&out->stats.rows_published) &&
      reader.U64(&out->stats.bytes_published) &&
      reader.U64(&out->stats.topk_index_served) &&
      reader.U64(&out->stats.topk_index_fallbacks) &&
      reader.U64(&out->stats.topk_index_rows_reranked) &&
      reader.U64(&out->stats.topk_pairs_served) &&
      reader.U64(&out->stats.topk_pairs_fallbacks) &&
      reader.U64(&out->stats.cache.hits) &&
      reader.U64(&out->stats.cache.misses) &&
      reader.U64(&out->stats.cache.invalidations) &&
      reader.U64(&out->stats.cache.evictions) &&
      reader.U64(&out->stats.cache.stale_inserts) &&
      reader.U64(&out->num_nodes) && reader.U64(&out->num_edges) &&
      reader.U8(&is_replica) && is_replica <= 1 &&
      reader.U64(&out->stats.rows_sparse) &&
      reader.U64(&out->stats.rows_dense) &&
      reader.U64(&out->stats.bytes_saved) &&
      reader.U64(&out->stats.sparse_eps_drops) &&
      reader.F64(&out->stats.sparse_max_error_bound) &&
      reader.U64(&out->stats.tier_demotions) &&
      reader.U64(&out->stats.tier_promotions) &&
      reader.U64(&out->stats.graph_bytes_copied) &&
      reader.U64(&out->stats.topk_cap_grows) &&
      reader.U64(&out->stats.topk_cap_shrinks) &&
      DecodeHistogram(&reader, &out->stats.queue_wait_ns) &&
      DecodeHistogram(&reader, &out->stats.apply_ns) &&
      reader.U64(&out->stats.rows_spilled_dense) &&
      reader.U64(&out->stats.sparse_write_merges) && reader.Complete();
  if (!ok) return false;
  out->stats.queue_depth = static_cast<std::size_t>(queue_depth);
  out->is_replica = is_replica == 1;
  return true;
}

// ---- Flush -----------------------------------------------------------------

void FlushResponse::EncodeBody(std::string* out) const {
  Writer writer(out);
  writer.U8(static_cast<std::uint8_t>(status));
}

bool FlushResponse::DecodeBody(std::string_view body, FlushResponse* out) {
  Reader reader(body);
  return DecodeRpcStatus(&reader, &out->status) && reader.Complete();
}

// ---- Subscribe / ReplicaBatch ---------------------------------------------

void SubscribeRequest::EncodeBody(std::string* out) const {
  Writer writer(out);
  writer.U64(from_seq);
}

bool SubscribeRequest::DecodeBody(std::string_view body,
                                  SubscribeRequest* out) {
  Reader reader(body);
  return reader.U64(&out->from_seq) && reader.Complete();
}

void SubscribeResponse::EncodeBody(std::string* out) const {
  Writer writer(out);
  writer.U8(static_cast<std::uint8_t>(status));
  writer.U64(next_seq);
}

bool SubscribeResponse::DecodeBody(std::string_view body,
                                   SubscribeResponse* out) {
  Reader reader(body);
  return DecodeRpcStatus(&reader, &out->status) && reader.U64(&out->next_seq) &&
         reader.Complete();
}

void ReplicaBatchMessage::EncodeBody(std::string* out) const {
  Writer writer(out);
  writer.U64(seq);
  EncodeUpdates(updates, &writer);
}

bool ReplicaBatchMessage::DecodeBody(std::string_view body,
                                     ReplicaBatchMessage* out) {
  Reader reader(body);
  return reader.U64(&out->seq) && DecodeUpdates(&reader, &out->updates) &&
         reader.Complete();
}

// ---- ErrorResponse ---------------------------------------------------------

void ErrorResponse::EncodeBody(std::string* out) const {
  Writer writer(out);
  writer.U8(static_cast<std::uint8_t>(status));
  writer.Str(message);
}

bool ErrorResponse::DecodeBody(std::string_view body, ErrorResponse* out) {
  Reader reader(body);
  return DecodeRpcStatus(&reader, &out->status) && reader.Str(&out->message) &&
         reader.Complete();
}

}  // namespace incsr::net::wire
