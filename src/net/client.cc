#include "net/client.h"

#include <utility>

namespace incsr::net {

// ---- IncSrClient -----------------------------------------------------------

Result<IncSrClient> IncSrClient::Connect(const std::string& host,
                                         std::uint16_t port,
                                         const ClientOptions& options) {
  auto socket = ConnectTo(host, port, options.connect_timeout_ms);
  if (!socket.ok()) return socket.status();
  return IncSrClient(std::move(*socket), options);
}

Result<IncSrClient> IncSrClient::Connect(const std::string& endpoint,
                                         const ClientOptions& options) {
  auto host_port = ParseHostPort(endpoint);
  if (!host_port.ok()) return host_port.status();
  return Connect(host_port->first, host_port->second, options);
}

Result<ReceivedFrame> IncSrClient::RoundTrip(wire::MessageTag request_tag,
                                             std::string_view body,
                                             wire::MessageTag response_tag) {
  if (!socket_.valid()) {
    return Status::IoError("client is disconnected");
  }
  if (Status sent = WriteFrame(socket_.fd(), request_tag, body);
      !sent.ok()) {
    Close();
    return sent;
  }
  auto frame = ReadFrame(socket_.fd(), options_.max_frame_payload);
  if (!frame.ok()) {
    Close();
    return frame.status();
  }
  if (frame->tag == wire::MessageTag::kErrorResponse) {
    wire::ErrorResponse error;
    if (!wire::ErrorResponse::DecodeBody(frame->body, &error) ||
        error.status == wire::RpcStatus::kOk) {
      Close();
      return Status::IoError("undecodable error response");
    }
    return wire::FromRpcStatus(error.status, error.message);
  }
  if (frame->tag != response_tag) {
    // The stream is out of sync with the request/response protocol;
    // nothing after this frame can be trusted.
    Close();
    return Status::IoError(std::string("unexpected response tag ") +
                           wire::MessageTagName(frame->tag));
  }
  return frame;
}

Status IncSrClient::Ping() {
  auto frame =
      RoundTrip(wire::MessageTag::kPingRequest, {},
                wire::MessageTag::kPingResponse);
  if (!frame.ok()) return frame.status();
  if (!frame->body.empty()) {
    Close();
    return Status::IoError("ping response carries a body");
  }
  return Status::OK();
}

Result<wire::SubmitResponse> IncSrClient::Submit(
    const std::vector<graph::EdgeUpdate>& updates) {
  wire::SubmitRequest request;
  request.updates = updates;
  std::string body;
  request.EncodeBody(&body);
  auto frame = RoundTrip(wire::MessageTag::kSubmitRequest, body,
                         wire::MessageTag::kSubmitResponse);
  if (!frame.ok()) return frame.status();
  wire::SubmitResponse response;
  if (!wire::SubmitResponse::DecodeBody(frame->body, &response)) {
    Close();
    return Status::IoError("undecodable SubmitResponse");
  }
  // kOverloaded / kShuttingDown are admission outcomes, not errors:
  // the caller inspects response.status.
  return response;
}

Result<double> IncSrClient::Score(graph::NodeId a, graph::NodeId b) {
  wire::ScoreRequest request;
  request.a = a;
  request.b = b;
  std::string body;
  request.EncodeBody(&body);
  auto frame = RoundTrip(wire::MessageTag::kScoreRequest, body,
                         wire::MessageTag::kScoreResponse);
  if (!frame.ok()) return frame.status();
  wire::ScoreResponse response;
  if (!wire::ScoreResponse::DecodeBody(frame->body, &response)) {
    Close();
    return Status::IoError("undecodable ScoreResponse");
  }
  if (response.status != wire::RpcStatus::kOk) {
    return wire::FromRpcStatus(response.status, "Score");
  }
  return response.score;
}

Result<std::vector<core::ScoredPair>> IncSrClient::TopKFor(
    graph::NodeId node, std::uint32_t k) {
  wire::TopKForRequest request;
  request.node = node;
  request.k = k;
  std::string body;
  request.EncodeBody(&body);
  auto frame = RoundTrip(wire::MessageTag::kTopKForRequest, body,
                         wire::MessageTag::kTopKResponse);
  if (!frame.ok()) return frame.status();
  wire::TopKResponse response;
  if (!wire::TopKResponse::DecodeBody(frame->body, &response)) {
    Close();
    return Status::IoError("undecodable TopKResponse");
  }
  if (response.status != wire::RpcStatus::kOk) {
    return wire::FromRpcStatus(response.status, "TopKFor");
  }
  return std::move(response.entries);
}

Result<std::vector<core::ScoredPair>> IncSrClient::TopKPairs(
    std::uint32_t k) {
  wire::TopKPairsRequest request;
  request.k = k;
  std::string body;
  request.EncodeBody(&body);
  auto frame = RoundTrip(wire::MessageTag::kTopKPairsRequest, body,
                         wire::MessageTag::kTopKResponse);
  if (!frame.ok()) return frame.status();
  wire::TopKResponse response;
  if (!wire::TopKResponse::DecodeBody(frame->body, &response)) {
    Close();
    return Status::IoError("undecodable TopKResponse");
  }
  if (response.status != wire::RpcStatus::kOk) {
    return wire::FromRpcStatus(response.status, "TopKPairs");
  }
  return std::move(response.entries);
}

Result<wire::SuggestResponse> IncSrClient::Suggest(
    std::uint32_t k, const std::vector<graph::NodeId>& nodes) {
  wire::SuggestRequest request;
  request.k = k;
  request.nodes = nodes;
  std::string body;
  request.EncodeBody(&body);
  auto frame = RoundTrip(wire::MessageTag::kSuggestRequest, body,
                         wire::MessageTag::kSuggestResponse);
  if (!frame.ok()) return frame.status();
  wire::SuggestResponse response;
  if (!wire::SuggestResponse::DecodeBody(frame->body, &response)) {
    Close();
    return Status::IoError("undecodable SuggestResponse");
  }
  // A partially-invalid request (status kInvalid) still carries the
  // valid nodes' answers; hand the whole thing to the caller.
  return response;
}

Result<wire::StatsResponse> IncSrClient::Stats() {
  auto frame = RoundTrip(wire::MessageTag::kStatsRequest, {},
                         wire::MessageTag::kStatsResponse);
  if (!frame.ok()) return frame.status();
  wire::StatsResponse response;
  if (!wire::StatsResponse::DecodeBody(frame->body, &response)) {
    Close();
    return Status::IoError("undecodable StatsResponse");
  }
  return response;
}

Status IncSrClient::Flush() {
  auto frame = RoundTrip(wire::MessageTag::kFlushRequest, {},
                         wire::MessageTag::kFlushResponse);
  if (!frame.ok()) return frame.status();
  wire::FlushResponse response;
  if (!wire::FlushResponse::DecodeBody(frame->body, &response)) {
    Close();
    return Status::IoError("undecodable FlushResponse");
  }
  return wire::FromRpcStatus(response.status, "Flush");
}

// ---- RoundRobinClient ------------------------------------------------------

Result<RoundRobinClient> RoundRobinClient::Connect(
    const std::vector<std::string>& endpoints, const ClientOptions& options) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("at least one endpoint is required");
  }
  for (const std::string& endpoint : endpoints) {
    INCSR_RETURN_IF_ERROR(ParseHostPort(endpoint).status());
  }
  RoundRobinClient client(endpoints, options);
  // The primary must be reachable up front; replicas may join later.
  INCSR_RETURN_IF_ERROR(client.ClientFor(0).status());
  return client;
}

Result<IncSrClient*> RoundRobinClient::ClientFor(std::size_t endpoint) {
  if (endpoint >= endpoints_.size()) {
    return Status::InvalidArgument("endpoint index out of range");
  }
  if (clients_[endpoint] != nullptr && clients_[endpoint]->connected()) {
    return clients_[endpoint].get();
  }
  auto connected = IncSrClient::Connect(endpoints_[endpoint], options_);
  if (!connected.ok()) return connected.status();
  clients_[endpoint] =
      std::make_unique<IncSrClient>(std::move(*connected));
  return clients_[endpoint].get();
}

Result<wire::SubmitResponse> RoundRobinClient::Submit(
    const std::vector<graph::EdgeUpdate>& updates) {
  auto primary = ClientFor(0);
  if (!primary.ok()) return primary.status();
  return (*primary)->Submit(updates);
}

Status RoundRobinClient::Flush() {
  auto primary = ClientFor(0);
  if (!primary.ok()) return primary.status();
  return (*primary)->Flush();
}

Result<double> RoundRobinClient::Score(graph::NodeId a, graph::NodeId b) {
  return Query([a, b](IncSrClient& client) { return client.Score(a, b); });
}

Result<std::vector<core::ScoredPair>> RoundRobinClient::TopKFor(
    graph::NodeId node, std::uint32_t k) {
  return Query(
      [node, k](IncSrClient& client) { return client.TopKFor(node, k); });
}

Result<std::vector<core::ScoredPair>> RoundRobinClient::TopKPairs(
    std::uint32_t k) {
  return Query([k](IncSrClient& client) { return client.TopKPairs(k); });
}

Result<wire::SuggestResponse> RoundRobinClient::Suggest(
    std::uint32_t k, const std::vector<graph::NodeId>& nodes) {
  return Query(
      [k, &nodes](IncSrClient& client) { return client.Suggest(k, nodes); });
}

Result<wire::StatsResponse> RoundRobinClient::Stats(std::size_t endpoint) {
  auto client = ClientFor(endpoint);
  if (!client.ok()) return client.status();
  return (*client)->Stats();
}

}  // namespace incsr::net
