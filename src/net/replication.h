// Primary → replica replication for the serving tier.
//
// The primary's SimRankService reports every applied batch (sequence =
// published epoch, batch exactly as applied) through its applied-batch
// listener. The serving tier turns that stream into read replicas:
//
//   - ReplicationLog (primary side): a bounded in-memory backlog of
//     applied batches. A replica that subscribes (or reconnects) with its
//     last applied sequence catches up from here before going live — the
//     queued backlog of the reconnect path.
//   - ReplicationClient (replica side): a background thread that connects
//     to the primary's IncSrServer, subscribes from the replica's current
//     epoch, and applies each streamed batch through
//     SimRankService::ApplyReplicated. On any error — connection drop,
//     primary restart, decode failure — it reconnects with exponential
//     backoff and re-subscribes from the last applied sequence, so a
//     replica converges to the primary's exact state after any
//     interruption.
//
// Replica reads are bitwise identical to the primary at the same epoch:
// both sides started from the same deterministic initial build and applied
// the same batches with the same boundaries through the same kernels.
#ifndef INCSR_NET_REPLICATION_H_
#define INCSR_NET_REPLICATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "graph/update_stream.h"
#include "net/wire.h"
#include "service/simrank_service.h"

namespace incsr::net {

/// Bounded FIFO of applied batches, newest `capacity` retained. Appends
/// come from the primary's applier thread; snapshots from the server's
/// event loop when a replica subscribes. Thread-safe.
class ReplicationLog {
 public:
  /// `capacity` in batches; `floor_seq` is the sequence the log starts
  /// after (the service's epoch when the log was attached — normally 0).
  explicit ReplicationLog(std::size_t capacity, std::uint64_t floor_seq = 0);

  /// Raises the floor to `floor_seq` (no-op when already past it). Must
  /// be called before any batch is retained: the server seeds the floor
  /// with the service's epoch at listener-registration time so history
  /// the log never saw is reported as aged out, not silently skipped.
  void SeedFloor(std::uint64_t floor_seq);

  /// Records one applied batch. Sequences must arrive consecutively
  /// (they are published epochs of a single service); a sequence the
  /// floor already covers is dropped as a registration-race duplicate.
  void Append(std::uint64_t seq, std::vector<graph::EdgeUpdate> batch);

  /// Copies every retained batch with sequence > `from_seq` into `out`
  /// (oldest first). Returns false when `from_seq` predates the retained
  /// window — the subscriber missed trimmed batches and cannot catch up
  /// from this log.
  bool CollectFrom(std::uint64_t from_seq,
                   std::vector<wire::ReplicaBatchMessage>* out) const;

  /// Highest appended sequence (floor_seq when empty).
  std::uint64_t last_seq() const;
  std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  /// Sequence of the last batch BEFORE the retained window; batches_
  /// holds seqs [floor_seq_ + 1, floor_seq_ + batches_.size()].
  std::uint64_t floor_seq_;
  std::deque<wire::ReplicaBatchMessage> batches_;
};

/// Replica-side replication knobs.
struct ReplicationClientOptions {
  std::string primary_host = "127.0.0.1";
  std::uint16_t primary_port = 0;
  int connect_timeout_ms = 2000;
  /// Exponential backoff between reconnect attempts.
  int reconnect_initial_ms = 50;
  int reconnect_max_ms = 2000;
  std::size_t max_frame_payload = wire::kMaxFramePayload;
};

/// Background subscriber that keeps a CreateReplica service converged to
/// a primary. Start it once; it owns its thread until Stop()/destruction.
class ReplicationClient {
 public:
  /// `replica` must outlive the client and be a CreateReplica service.
  static Result<std::unique_ptr<ReplicationClient>> Start(
      service::SimRankService* replica,
      const ReplicationClientOptions& options);

  ~ReplicationClient();
  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  /// Stops the subscriber thread (idempotent). The replica keeps serving
  /// its last applied epoch.
  void Stop();

  /// Highest primary sequence applied to the replica.
  std::uint64_t last_applied_seq() const {
    return last_applied_.load(std::memory_order_relaxed);
  }
  /// Completed subscriptions (1 = the initial one; more = reconnects).
  std::uint64_t subscriptions() const {
    return subscriptions_.load(std::memory_order_relaxed);
  }
  bool connected() const {
    return connected_.load(std::memory_order_relaxed);
  }
  /// Set permanently when the primary reports the catch-up window was
  /// trimmed past our sequence — the replica must be rebuilt from scratch.
  bool catch_up_failed() const {
    return catch_up_failed_.load(std::memory_order_relaxed);
  }

 private:
  ReplicationClient(service::SimRankService* replica,
                    const ReplicationClientOptions& options);

  void Run();
  /// One connect → subscribe → stream session; returns on any error.
  void RunSession();
  /// Interruptible backoff sleep; returns false when stopping.
  bool Backoff(int* delay_ms);

  service::SimRankService* const replica_;
  const ReplicationClientOptions options_;

  std::mutex mu_;  // guards socket_fd_ and stop coordination
  std::condition_variable stop_cv_;
  int socket_fd_ = -1;  // live session's fd, for shutdown() on Stop()
  bool stopping_ = false;

  std::atomic<std::uint64_t> last_applied_{0};
  std::atomic<std::uint64_t> subscriptions_{0};
  std::atomic<bool> connected_{false};
  std::atomic<bool> catch_up_failed_{false};

  std::thread thread_;
};

}  // namespace incsr::net

#endif  // INCSR_NET_REPLICATION_H_
