// Wire protocol for the network serving tier: a length-prefixed binary
// framing with typed, versioned messages. Every frame on the wire is
//
//   ┌────────────┬─────────┬─────┬──────────────────┐
//   │ u32 LE len │ version │ tag │ body (len−2 B)   │
//   └────────────┴─────────┴─────┴──────────────────┘
//
// where `len` counts the bytes AFTER the 4-byte prefix (version + tag +
// body) and is capped at kMaxFramePayload — a peer announcing a larger
// frame is malformed and the connection is closed before any allocation
// of that size. All integers are little-endian fixed-width; doubles cross
// the wire as their IEEE-754 bit pattern (std::bit_cast via u64), so a
// score read from a snapshot arrives at the client BITWISE identical to
// the in-process value — the serving tier's loopback tests pin this.
//
// Decoding is defensive by construction: Reader latches a failure flag on
// the first out-of-bounds read and every Decode checks element counts
// against the remaining bytes before reserving memory, so truncated
// frames, oversized counts, unknown tags, and garbage bodies all yield a
// clean `false` — never a crash, over-read, or unbounded allocation
// (tests/net_wire_test.cc fuzzes these paths under ASan/UBSan).
#ifndef INCSR_NET_WIRE_H_
#define INCSR_NET_WIRE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/dynamic_simrank.h"
#include "graph/digraph.h"
#include "graph/update_stream.h"
#include "service/simrank_service.h"

namespace incsr::net::wire {

/// Protocol version carried in every frame; peers reject mismatches.
/// v2: StatsResponse carries the pair-merge counters
/// (topk_pairs_served / topk_pairs_fallbacks).
/// v3: StatsResponse carries the tiered-storage block (rows_sparse /
/// rows_dense / bytes_saved / sparse_eps_drops / sparse_max_error_bound /
/// tier_demotions / tier_promotions), graph_bytes_copied, and the
/// adaptive top-k capacity counters (topk_cap_grows / topk_cap_shrinks).
/// v4: StatsResponse carries the server-side latency histograms
/// (queue_wait_ns / apply_ns, obs::HistogramSnapshot) sparsely encoded:
/// sum, min, max, then only the non-zero buckets as (u8 index, u64
/// count) pairs with strictly increasing indices; `count` is derived on
/// decode as the bucket sum. Shard aggregators merge these bucket-wise.
/// v5: StatsResponse carries the sparse-native write-path counters
/// (rows_spilled_dense / sparse_write_merges).
inline constexpr std::uint8_t kWireVersion = 5;
/// Bytes of the length prefix.
inline constexpr std::size_t kFramePrefixBytes = 4;
/// Maximum frame payload (version + tag + body) a peer may announce.
inline constexpr std::size_t kMaxFramePayload = 16u * 1024u * 1024u;
/// Minimum payload: version byte + tag byte.
inline constexpr std::size_t kMinFramePayload = 2;

/// Message type carried in the frame's tag byte. Requests have the high
/// bit clear, responses set; kReplicaBatch is a server-pushed stream
/// message (it follows a kSubscribeResponse on the same connection).
enum class MessageTag : std::uint8_t {
  kPingRequest = 0x01,
  kSubmitRequest = 0x02,
  kScoreRequest = 0x03,
  kTopKForRequest = 0x04,
  kTopKPairsRequest = 0x05,
  kSuggestRequest = 0x06,
  kStatsRequest = 0x07,
  kFlushRequest = 0x08,
  kSubscribeRequest = 0x09,

  kPingResponse = 0x81,
  kSubmitResponse = 0x82,
  kScoreResponse = 0x83,
  kTopKResponse = 0x84,
  kSuggestResponse = 0x86,
  kStatsResponse = 0x87,
  kFlushResponse = 0x88,
  kSubscribeResponse = 0x89,
  kReplicaBatch = 0x8A,
  kErrorResponse = 0xFF,
};

/// True when `tag` names a defined MessageTag.
bool IsKnownTag(std::uint8_t tag);
/// Human-readable tag name ("SubmitRequest"); "Unknown" otherwise.
const char* MessageTagName(MessageTag tag);

/// RPC outcome carried in every response. The ingest queue's backpressure
/// surfaces here: a full queue in reject mode answers kOverloaded instead
/// of blocking the connection.
enum class RpcStatus : std::uint8_t {
  kOk = 0,
  /// Ingest queue full (reject backpressure); retry later.
  kOverloaded = 1,
  /// Malformed request: bad node id, bad count, bad body.
  kInvalid = 2,
  /// Operation not available on this server (e.g. subscribing to a
  /// sharded or replica server, writes to a replica).
  kNotSupported = 3,
  /// Server is draining for shutdown.
  kShuttingDown = 4,
  kInternal = 5,
};

const char* RpcStatusName(RpcStatus status);
/// Maps a service-layer Status onto the wire status.
RpcStatus ToRpcStatus(const Status& status);
/// Maps a non-OK wire status back to a Status (kOk maps to OK()).
Status FromRpcStatus(RpcStatus status, const std::string& context);

// ---- Primitive encode/decode ---------------------------------------------

/// Appends little-endian primitives to a byte string.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void U8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) { Raw(&v, sizeof v); }
  void U64(std::uint64_t v) { Raw(&v, sizeof v); }
  void I32(std::int32_t v) { Raw(&v, sizeof v); }
  void F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }
  void Str(std::string_view v) {
    U32(static_cast<std::uint32_t>(v.size()));
    out_->append(v.data(), v.size());
  }

 private:
  // The repo targets little-endian hosts (x86-64/aarch64); a big-endian
  // port would byte-swap here.
  void Raw(const void* p, std::size_t n) {
    out_->append(static_cast<const char*>(p), n);
  }

  std::string* out_;
};

/// Bounds-checked little-endian reads; the first failure latches and every
/// subsequent read returns false without touching its output.
class Reader {
 public:
  Reader(const void* data, std::size_t size)
      : data_(static_cast<const std::uint8_t*>(data)), size_(size) {}
  explicit Reader(std::string_view body) : Reader(body.data(), body.size()) {}

  bool U8(std::uint8_t* v) { return Raw(v, sizeof *v); }
  bool U32(std::uint32_t* v) { return Raw(v, sizeof *v); }
  bool U64(std::uint64_t* v) { return Raw(v, sizeof *v); }
  bool I32(std::int32_t* v) { return Raw(v, sizeof *v); }
  bool F64(double* v) {
    std::uint64_t bits;
    if (!U64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }
  bool Str(std::string* v) {
    std::uint32_t len;
    if (!U32(&len)) return false;
    if (len > Remaining()) return Fail();
    v->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  /// Bytes not yet consumed.
  std::size_t Remaining() const { return failed_ ? 0 : size_ - pos_; }
  /// True when every byte was consumed and no read failed — Decode
  /// functions require this, so trailing garbage is rejected too.
  bool Complete() const { return !failed_ && pos_ == size_; }
  bool failed() const { return failed_; }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }
  bool Raw(void* v, std::size_t n) {
    if (failed_ || size_ - pos_ < n) return Fail();
    std::memcpy(v, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// ---- Framing --------------------------------------------------------------

/// Wraps a message body into a complete frame: length prefix, version,
/// tag, body. The result is ready to write to a socket.
std::string EncodeFrame(MessageTag tag, std::string_view body);

/// Parses a 4-byte length prefix. Fails (InvalidArgument) when the
/// announced payload is shorter than version+tag or larger than
/// `max_payload` — the caller must close the connection, not allocate.
Result<std::size_t> ParseFrameLength(const std::uint8_t prefix[4],
                                     std::size_t max_payload);

/// Splits a received payload (version + tag + body) after a length-valid
/// frame. Fails on a version mismatch or unknown tag.
struct Frame {
  MessageTag tag;
  std::string_view body;
};
Result<Frame> ParseFramePayload(std::string_view payload);

// ---- Messages --------------------------------------------------------------
// Every message is a struct with EncodeBody (appends to a string) and a
// static DecodeBody that returns false on any malformation: truncation,
// counts inconsistent with the remaining bytes, unknown enum values, or
// trailing bytes.

/// Batched ingest: the body of kSubmitRequest.
struct SubmitRequest {
  std::vector<graph::EdgeUpdate> updates;

  void EncodeBody(std::string* out) const;
  static bool DecodeBody(std::string_view body, SubmitRequest* out);
};

/// kSubmitResponse: per-batch admission outcome. `accepted` entered the
/// ingest queue; `rejected` were refused by reject-mode backpressure
/// (status kOverloaded when any were). Validation against the graph
/// happens later in the applier, like in-process Submit.
struct SubmitResponse {
  RpcStatus status = RpcStatus::kOk;
  std::uint32_t accepted = 0;
  std::uint32_t rejected = 0;

  void EncodeBody(std::string* out) const;
  static bool DecodeBody(std::string_view body, SubmitResponse* out);
};

/// kScoreRequest: SimRank score of one pair.
struct ScoreRequest {
  graph::NodeId a = 0;
  graph::NodeId b = 0;

  void EncodeBody(std::string* out) const;
  static bool DecodeBody(std::string_view body, ScoreRequest* out);
};

/// kScoreResponse. `score` crosses as raw IEEE-754 bits.
struct ScoreResponse {
  RpcStatus status = RpcStatus::kOk;
  double score = 0.0;

  void EncodeBody(std::string* out) const;
  static bool DecodeBody(std::string_view body, ScoreResponse* out);
};

/// kTopKForRequest: top-k most similar nodes to `node`.
struct TopKForRequest {
  graph::NodeId node = 0;
  std::uint32_t k = 0;

  void EncodeBody(std::string* out) const;
  static bool DecodeBody(std::string_view body, TopKForRequest* out);
};

/// kTopKPairsRequest: global top-k pairs.
struct TopKPairsRequest {
  std::uint32_t k = 0;

  void EncodeBody(std::string* out) const;
  static bool DecodeBody(std::string_view body, TopKPairsRequest* out);
};

/// kTopKResponse: answer to both top-k requests, in contract order
/// (descending score, ascending ids).
struct TopKResponse {
  RpcStatus status = RpcStatus::kOk;
  std::vector<core::ScoredPair> entries;

  void EncodeBody(std::string* out) const;
  static bool DecodeBody(std::string_view body, TopKResponse* out);
};

/// kSuggestRequest: bulk "suggest related" — one round trip for the top-k
/// neighbors of many nodes, served off the per-node top-k index.
struct SuggestRequest {
  std::uint32_t k = 0;
  std::vector<graph::NodeId> nodes;

  void EncodeBody(std::string* out) const;
  static bool DecodeBody(std::string_view body, SuggestRequest* out);
};

/// kSuggestResponse: per requested node, its top-k list (same order as
/// the request). A node out of range yields an empty list and flips the
/// overall status to kInvalid, but valid nodes still carry answers.
struct SuggestResponse {
  struct NodeSuggestions {
    graph::NodeId node = 0;
    bool found = false;
    std::vector<core::ScoredPair> entries;
  };
  RpcStatus status = RpcStatus::kOk;
  std::vector<NodeSuggestions> suggestions;

  void EncodeBody(std::string* out) const;
  static bool DecodeBody(std::string_view body, SuggestResponse* out);
};

/// kStatsResponse: the service's ServiceStats plus serving-tier facts the
/// client needs (graph shape, replica role and applied sequence).
struct StatsResponse {
  RpcStatus status = RpcStatus::kOk;
  service::ServiceStats stats;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  bool is_replica = false;

  void EncodeBody(std::string* out) const;
  static bool DecodeBody(std::string_view body, StatsResponse* out);
};

/// kFlushResponse (kFlushRequest, kStatsRequest and kPing* have empty
/// bodies).
struct FlushResponse {
  RpcStatus status = RpcStatus::kOk;

  void EncodeBody(std::string* out) const;
  static bool DecodeBody(std::string_view body, FlushResponse* out);
};

/// kSubscribeRequest: replica catch-up subscription. The server replays
/// its applied-batch backlog from `from_seq` (exclusive) and then streams
/// live batches on the same connection.
struct SubscribeRequest {
  std::uint64_t from_seq = 0;

  void EncodeBody(std::string* out) const;
  static bool DecodeBody(std::string_view body, SubscribeRequest* out);
};

/// kSubscribeResponse: `next_seq` is the first sequence the stream will
/// carry. kInvalid when `from_seq` has aged out of the backlog (the
/// replica must bootstrap from scratch), kNotSupported on servers without
/// a replication surface (sharded or replica servers).
struct SubscribeResponse {
  RpcStatus status = RpcStatus::kOk;
  std::uint64_t next_seq = 0;

  void EncodeBody(std::string* out) const;
  static bool DecodeBody(std::string_view body, SubscribeResponse* out);
};

/// kReplicaBatch: one applied batch of the primary's update stream, in
/// apply order with the primary's batch boundaries (both are what makes
/// replica state bitwise identical). `seq` is the primary epoch the batch
/// published; batches arrive with consecutive seq.
struct ReplicaBatchMessage {
  std::uint64_t seq = 0;
  std::vector<graph::EdgeUpdate> updates;

  void EncodeBody(std::string* out) const;
  static bool DecodeBody(std::string_view body, ReplicaBatchMessage* out);
};

/// kErrorResponse: generic failure answer (unknown tag, undecodable body).
struct ErrorResponse {
  RpcStatus status = RpcStatus::kInvalid;
  std::string message;

  void EncodeBody(std::string* out) const;
  static bool DecodeBody(std::string_view body, ErrorResponse* out);
};

}  // namespace incsr::net::wire

#endif  // INCSR_NET_WIRE_H_
