#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdlib>

namespace incsr::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SetNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Result<Socket> ListenOn(const std::string& host, std::uint16_t port,
                        int backlog) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) <
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("listen host '" + host +
                                   "' is not an IPv4 address");
  }
  if (::bind(socket.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(socket.fd(), backlog) < 0) return Errno("listen");
  INCSR_RETURN_IF_ERROR(SetNonBlocking(socket.fd(), true));
  return socket;
}

Result<std::uint16_t> LocalPort(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> ConnectTo(const std::string& host, std::uint16_t port,
                         int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &resolved);
  if (rc != 0) {
    return Status::IoError("resolve " + host + ": " + ::gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses for " + host);
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    Socket socket(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!socket.valid()) {
      last = Errno("socket");
      continue;
    }
    // Connect with a deadline: non-blocking connect + poll for writability.
    if (Status s = SetNonBlocking(socket.fd(), true); !s.ok()) {
      last = s;
      continue;
    }
    if (::connect(socket.fd(), ai->ai_addr, ai->ai_addrlen) < 0 &&
        errno != EINPROGRESS) {
      last = Errno("connect " + host + ":" + std::to_string(port));
      continue;
    }
    pollfd pfd{socket.fd(), POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      last = ready == 0 ? Status::IoError("connect " + host + ":" +
                                          std::to_string(port) + ": timeout")
                        : Errno("poll");
      continue;
    }
    int err = 0;
    socklen_t err_len = sizeof err;
    if (::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 ||
        err != 0) {
      errno = err != 0 ? err : errno;
      last = Errno("connect " + host + ":" + std::to_string(port));
      continue;
    }
    if (Status s = SetNonBlocking(socket.fd(), false); !s.ok()) {
      last = s;
      continue;
    }
    const int one = 1;
    (void)::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof one);
    ::freeaddrinfo(resolved);
    return socket;
  }
  ::freeaddrinfo(resolved);
  return last;
}

Result<std::pair<std::string, std::uint16_t>> ParseHostPort(
    const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    return Status::InvalidArgument("endpoint '" + endpoint +
                                   "' is not HOST:PORT");
  }
  char* end = nullptr;
  const long port = std::strtol(endpoint.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port < 1 || port > 65535) {
    return Status::InvalidArgument("endpoint '" + endpoint +
                                   "' has an invalid port");
  }
  return std::pair(endpoint.substr(0, colon),
                   static_cast<std::uint16_t>(port));
}

Status WriteAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status ReadExact(int fd, void* buffer, std::size_t size) {
  auto* out = static_cast<char*>(buffer);
  std::size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd, out + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) return Status::IoError("connection closed by peer");
    received += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status WriteFrame(int fd, wire::MessageTag tag, std::string_view body) {
  return WriteAll(fd, wire::EncodeFrame(tag, body));
}

Result<ReceivedFrame> ReadFrame(int fd, std::size_t max_payload) {
  std::uint8_t prefix[wire::kFramePrefixBytes];
  INCSR_RETURN_IF_ERROR(ReadExact(fd, prefix, sizeof prefix));
  auto length = wire::ParseFrameLength(prefix, max_payload);
  if (!length.ok()) return length.status();
  std::string payload(*length, '\0');
  INCSR_RETURN_IF_ERROR(ReadExact(fd, payload.data(), payload.size()));
  auto frame = wire::ParseFramePayload(payload);
  if (!frame.ok()) return frame.status();
  ReceivedFrame received;
  received.tag = frame->tag;
  received.body.assign(frame->body);
  return received;
}

}  // namespace incsr::net
