#include "net/replication.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "net/socket.h"

namespace incsr::net {

// ---- ReplicationLog --------------------------------------------------------

ReplicationLog::ReplicationLog(std::size_t capacity, std::uint64_t floor_seq)
    : capacity_(std::max<std::size_t>(1, capacity)), floor_seq_(floor_seq) {}

void ReplicationLog::SeedFloor(std::uint64_t floor_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  INCSR_CHECK(batches_.empty(),
              "SeedFloor on a log already holding %zu batches",
              batches_.size());
  floor_seq_ = std::max(floor_seq_, floor_seq);
}

void ReplicationLog::Append(std::uint64_t seq,
                            std::vector<graph::EdgeUpdate> batch) {
  std::lock_guard<std::mutex> lock(mu_);
  // A registration racing the applier can replay the batch published
  // while the listener was being swapped in; the seeded floor already
  // covers it, so the duplicate is dropped rather than treated as a gap.
  if (seq <= floor_seq_ + batches_.size()) return;
  INCSR_CHECK(seq == floor_seq_ + batches_.size() + 1,
              "replication log sequence gap: got %llu, expected %llu",
              static_cast<unsigned long long>(seq),
              static_cast<unsigned long long>(floor_seq_ + batches_.size() +
                                              1));
  wire::ReplicaBatchMessage message;
  message.seq = seq;
  message.updates = std::move(batch);
  batches_.push_back(std::move(message));
  if (batches_.size() > capacity_) {
    batches_.pop_front();
    ++floor_seq_;
  }
}

bool ReplicationLog::CollectFrom(
    std::uint64_t from_seq, std::vector<wire::ReplicaBatchMessage>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (from_seq < floor_seq_) return false;  // aged out of the window
  for (const wire::ReplicaBatchMessage& message : batches_) {
    if (message.seq > from_seq) out->push_back(message);
  }
  return true;
}

std::uint64_t ReplicationLog::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return floor_seq_ + batches_.size();
}

std::size_t ReplicationLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_.size();
}

// ---- ReplicationClient -----------------------------------------------------

Result<std::unique_ptr<ReplicationClient>> ReplicationClient::Start(
    service::SimRankService* replica,
    const ReplicationClientOptions& options) {
  if (replica == nullptr || !replica->is_replica()) {
    return Status::InvalidArgument(
        "ReplicationClient requires a CreateReplica service");
  }
  if (options.primary_port == 0) {
    return Status::InvalidArgument("primary_port must be set");
  }
  return std::unique_ptr<ReplicationClient>(
      new ReplicationClient(replica, options));
}

ReplicationClient::ReplicationClient(service::SimRankService* replica,
                                     const ReplicationClientOptions& options)
    : replica_(replica), options_(options) {
  last_applied_.store(replica_->stats().epoch, std::memory_order_relaxed);
  thread_ = std::thread(&ReplicationClient::Run, this);
}

ReplicationClient::~ReplicationClient() { Stop(); }

void ReplicationClient::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Break a blocking recv in the session thread; the fd itself is owned
    // (and closed) by the session.
    if (socket_fd_ >= 0) ::shutdown(socket_fd_, SHUT_RDWR);
    stop_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

bool ReplicationClient::Backoff(int* delay_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait_for(lock, std::chrono::milliseconds(*delay_ms),
                    [this] { return stopping_; });
  *delay_ms = std::min(*delay_ms * 2, options_.reconnect_max_ms);
  return !stopping_;
}

void ReplicationClient::Run() {
  int delay_ms = options_.reconnect_initial_ms;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    RunSession();
    connected_.store(false, std::memory_order_relaxed);
    if (catch_up_failed_.load(std::memory_order_relaxed)) return;
    if (!Backoff(&delay_ms)) return;
  }
}

void ReplicationClient::RunSession() {
  auto socket = ConnectTo(options_.primary_host, options_.primary_port,
                          options_.connect_timeout_ms);
  if (!socket.ok()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    socket_fd_ = socket->fd();
  }
  // Drop the fd registration on every exit path so Stop() never touches a
  // dead fd.
  struct FdGuard {
    ReplicationClient* self;
    ~FdGuard() {
      std::lock_guard<std::mutex> lock(self->mu_);
      self->socket_fd_ = -1;
    }
  } guard{this};

  // Subscribe from the replica's current epoch: the primary replays its
  // backlog past this point, then streams live batches.
  const std::uint64_t from_seq = replica_->stats().epoch;
  wire::SubscribeRequest request;
  request.from_seq = from_seq;
  std::string body;
  request.EncodeBody(&body);
  if (!WriteFrame(socket->fd(), wire::MessageTag::kSubscribeRequest, body)
           .ok()) {
    return;
  }
  auto first = ReadFrame(socket->fd(), options_.max_frame_payload);
  if (!first.ok() || first->tag != wire::MessageTag::kSubscribeResponse) {
    return;
  }
  wire::SubscribeResponse subscribed;
  if (!wire::SubscribeResponse::DecodeBody(first->body, &subscribed)) return;
  if (subscribed.status == wire::RpcStatus::kInvalid) {
    // The backlog was trimmed past our sequence: no amount of retrying
    // recovers — the operator must rebuild the replica from scratch.
    catch_up_failed_.store(true, std::memory_order_relaxed);
    return;
  }
  if (subscribed.status != wire::RpcStatus::kOk) return;
  connected_.store(true, std::memory_order_relaxed);
  subscriptions_.fetch_add(1, std::memory_order_relaxed);

  for (;;) {
    auto frame = ReadFrame(socket->fd(), options_.max_frame_payload);
    if (!frame.ok() || frame->tag != wire::MessageTag::kReplicaBatch) return;
    wire::ReplicaBatchMessage batch;
    if (!wire::ReplicaBatchMessage::DecodeBody(frame->body, &batch)) return;
    Status applied = replica_->ApplyReplicated(batch.seq, batch.updates);
    if (!applied.ok()) return;  // gap or stopped: resubscribe from epoch
    last_applied_.store(batch.seq, std::memory_order_relaxed);
  }
}

}  // namespace incsr::net
