// IncSrServer — the network front-end of the serving tier: a single
// poll()-based event-loop thread that speaks the net/wire.h framed binary
// protocol over TCP and dispatches onto an in-process serving backend
// (service::SimRankService or shard::ShardedSimRankService).
//
//   - Ingest: kSubmitRequest batches feed the backend's bounded queue;
//     reject-mode backpressure answers kOverloaded instead of blocking
//     the connection, block-mode intentionally stalls the submitting
//     RPC (and, this being a single-threaded loop, other connections)
//     until queue space frees — the applier keeps draining regardless,
//     so the stall is bounded and deadlock-free.
//   - Queries (Score / TopKFor / TopKPairs / Suggest / Stats) are served
//     off the backend's pinned epoch snapshots and never wait on writes.
//   - Replication: on a primary (single-instance, non-replica) backend
//     the server registers the service's applied-batch listener, retains
//     the stream in a bounded ReplicationLog, and fans it out to
//     kSubscribeRequest connections — catch-up from the backlog first,
//     then live batches, sequenced per subscriber with no gap between
//     the two (registration and backlog snapshot are atomic).
//
// Error policy mirrors the protocol-hardening contract: an undecodable
// length prefix (oversized / undersized) means the byte stream is
// unframeable, so the connection closes; a well-framed payload with a bad
// version, unknown tag, or undecodable body gets a kErrorResponse and the
// connection lives on.
#ifndef INCSR_NET_SERVER_H_
#define INCSR_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/dynamic_simrank.h"
#include "graph/update_stream.h"
#include "net/replication.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/simrank_service.h"
#include "shard/sharded_service.h"

namespace incsr::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port; read it via port()
  int listen_backlog = 64;
  std::size_t max_frame_payload = wire::kMaxFramePayload;
  /// Applied batches retained for replica catch-up (primary servers).
  std::size_t replication_backlog = 4096;
  /// A connection whose outbound buffer exceeds this is dropped — a
  /// subscriber too slow to keep up reconnects and catches up from the
  /// backlog instead of growing the primary's memory without bound.
  std::size_t max_outbound_buffer = 64u * 1024u * 1024u;
};

/// Cumulative serving-tier counters (all monotone except the actives).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t requests_served = 0;
  /// Frames that violated the protocol: bad length prefix (closes the
  /// connection) or bad version/tag/body (answered with kErrorResponse).
  std::uint64_t protocol_errors = 0;
  /// Replica batches fanned out across all subscribers.
  std::uint64_t batches_streamed = 0;
  std::size_t active_connections = 0;
  std::size_t active_subscribers = 0;
};

namespace internal {

/// Uniform serving surface over the single-instance and sharded services;
/// the server dispatches every RPC through it.
class ServingBackend {
 public:
  virtual ~ServingBackend() = default;
  virtual Status Submit(const graph::EdgeUpdate& update) = 0;
  virtual Status Flush() = 0;
  virtual Result<double> Score(graph::NodeId a, graph::NodeId b) const = 0;
  virtual Result<std::vector<core::ScoredPair>> TopKFor(
      graph::NodeId node, std::size_t k) const = 0;
  virtual std::vector<core::ScoredPair> TopKPairs(std::size_t k) const = 0;
  virtual void FillStats(wire::StatsResponse* out) const = 0;
  /// Service whose applied stream replicas may subscribe to; nullptr when
  /// this backend has no replication surface (sharded, replica).
  virtual service::SimRankService* ReplicationSource() const = 0;
};

/// Applied-stream fan-out state shared between the service's applier
/// thread (producer) and the server's event loop (consumer). Held by
/// shared_ptr from both the server and the registered listener closure,
/// so an in-flight listener invocation stays valid even while the server
/// is tearing down. Owns the loop's wakeup pipe.
struct ReplicationHub {
  explicit ReplicationHub(std::size_t backlog_capacity)
      : log(backlog_capacity) {}
  ~ReplicationHub();

  Status OpenPipe();
  /// Applier-thread entry: retains the batch in the log, queues the
  /// encoded frame for every live subscriber, and wakes the loop.
  void OnApplied(std::uint64_t seq,
                 const std::vector<graph::EdgeUpdate>& batch);

  std::mutex mu;
  ReplicationLog log;
  std::vector<int> subscribers;                   ///< subscriber conn fds
  std::map<int, std::string> pending;             ///< fd → queued frames
  std::uint64_t batches_streamed = 0;
  int wakeup_read = -1;
  int wakeup_write = -1;
};

}  // namespace internal

/// Binary-RPC server: one background event-loop thread per instance.
class IncSrServer {
 public:
  /// Serves a single-instance service. A non-replica service also gets
  /// the replication surface (kSubscribeRequest) wired up.
  static Result<std::unique_ptr<IncSrServer>> Serve(
      service::SimRankService* service, const ServerOptions& options = {});

  /// Serves a sharded service (no replication surface — per-shard epochs
  /// are independent sequences; kSubscribeRequest answers kNotSupported).
  static Result<std::unique_ptr<IncSrServer>> Serve(
      shard::ShardedSimRankService* service,
      const ServerOptions& options = {});

  ~IncSrServer();
  IncSrServer(const IncSrServer&) = delete;
  IncSrServer& operator=(const IncSrServer&) = delete;

  /// Port actually bound (resolves port 0).
  std::uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Stops accepting, makes one final flush attempt on pending responses,
  /// closes every connection, and joins the loop thread. Idempotent. The
  /// backend is untouched — draining its queue is the caller's shutdown
  /// step (service Stop()), not the server's.
  void Stop();

  ServerStats stats() const;

 private:
  static Result<std::unique_ptr<IncSrServer>> Start(
      std::unique_ptr<internal::ServingBackend> backend,
      service::SimRankService* replication_source,
      const ServerOptions& options);

  IncSrServer(std::unique_ptr<internal::ServingBackend> backend,
              const ServerOptions& options);

  /// Per-connection state; single-threaded (event loop only).
  struct Connection {
    Socket socket;
    std::string in;   ///< bytes received, not yet framed
    std::string out;  ///< frames encoded, not yet sent
    bool subscriber = false;
  };

  void Loop();
  void AcceptConnections();
  /// Drains readable bytes and dispatches complete frames; false → close.
  bool HandleReadable(Connection* conn);
  /// Frames and dispatches buffered input; false → unframeable, close.
  bool ProcessInput(Connection* conn);
  /// Flushes as much of `out` as the socket takes; false → close.
  bool HandleWritable(Connection* conn);
  /// One well-framed payload (version+tag already validated).
  void DispatchFrame(Connection* conn, wire::MessageTag tag,
                     std::string_view body);
  void HandleSubmit(Connection* conn, std::string_view body);
  void HandleSubscribe(Connection* conn, std::string_view body);
  void SendError(Connection* conn, wire::RpcStatus status,
                 const std::string& message);
  void DrainWakeupPipe();
  /// Moves hub-queued replica frames into subscriber outbound buffers.
  void FlushPendingStreams();
  void CloseConnection(int fd);

  template <typename Message>
  void Reply(Connection* conn, wire::MessageTag tag, const Message& message);

  const ServerOptions options_;
  std::unique_ptr<internal::ServingBackend> backend_;
  /// Set on primary servers; the registered listener holds a second
  /// reference (see ReplicationHub).
  std::shared_ptr<internal::ReplicationHub> hub_;
  /// Whose listener we registered (to clear it on Stop); null otherwise.
  service::SimRankService* replication_source_ = nullptr;

  Socket listener_;
  std::uint16_t port_ = 0;
  std::map<int, Connection> connections_;  // loop thread only

  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::size_t> active_connections_{0};
  std::atomic<std::size_t> active_subscribers_{0};

  std::thread thread_;
};

}  // namespace incsr::net

#endif  // INCSR_NET_SERVER_H_
