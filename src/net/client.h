// Client side of the serving tier: a blocking single-connection RPC
// client (IncSrClient) plus a read-scaling wrapper (RoundRobinClient)
// that spreads queries across a primary and its read replicas.
//
// Every RPC is one synchronous frame round trip on one TCP connection;
// the client is NOT thread-safe — use one per thread (the bench does).
// Scores and top-k entries cross the wire as raw IEEE-754 bits, so an
// over-the-wire answer is bitwise identical to the in-process one.
#ifndef INCSR_NET_CLIENT_H_
#define INCSR_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/dynamic_simrank.h"
#include "graph/digraph.h"
#include "graph/update_stream.h"
#include "net/socket.h"
#include "net/wire.h"

namespace incsr::net {

struct ClientOptions {
  int connect_timeout_ms = 5000;
  std::size_t max_frame_payload = wire::kMaxFramePayload;
};

/// Blocking binary-RPC client; movable, one in-flight RPC at a time.
class IncSrClient {
 public:
  static Result<IncSrClient> Connect(const std::string& host,
                                     std::uint16_t port,
                                     const ClientOptions& options = {});
  /// Convenience over a "host:port" endpoint string.
  static Result<IncSrClient> Connect(const std::string& endpoint,
                                     const ClientOptions& options = {});

  IncSrClient(IncSrClient&&) = default;
  IncSrClient& operator=(IncSrClient&&) = default;

  /// Liveness round trip (empty request, empty response).
  Status Ping();

  /// Batched ingest. Returns the server's admission outcome — status
  /// kOverloaded with a nonzero `rejected` is reject-mode backpressure,
  /// not a transport error; only transport/protocol failures surface as
  /// a non-OK Result status.
  Result<wire::SubmitResponse> Submit(
      const std::vector<graph::EdgeUpdate>& updates);

  /// SimRank score of (a, b) at the server's latest published epoch.
  Result<double> Score(graph::NodeId a, graph::NodeId b);

  Result<std::vector<core::ScoredPair>> TopKFor(graph::NodeId node,
                                                std::uint32_t k);
  Result<std::vector<core::ScoredPair>> TopKPairs(std::uint32_t k);

  /// Bulk "suggest related": top-k neighbors for many nodes in one round
  /// trip, served off the server's per-node top-k index.
  Result<wire::SuggestResponse> Suggest(
      std::uint32_t k, const std::vector<graph::NodeId>& nodes);

  Result<wire::StatsResponse> Stats();

  /// Barrier: returns once every update the server accepted before this
  /// call is applied and published.
  Status Flush();

  void Close() { socket_.Close(); }
  bool connected() const { return socket_.valid(); }

 private:
  IncSrClient(Socket socket, const ClientOptions& options)
      : socket_(std::move(socket)), options_(options) {}

  /// One request frame out, one response frame in. A kErrorResponse (or
  /// any unexpected tag) maps to a non-OK Status; transport errors close
  /// the connection so the next RPC fails fast.
  Result<ReceivedFrame> RoundTrip(wire::MessageTag request_tag,
                                  std::string_view body,
                                  wire::MessageTag response_tag);

  Socket socket_;
  ClientOptions options_;
};

/// Read-scaling façade over a primary and R read replicas: writes
/// (Submit/Flush) always target the primary (endpoint 0), queries
/// round-robin across every endpoint, skipping — and lazily
/// reconnecting — endpoints whose connection failed. Because replicas
/// serve bitwise-identical epochs, any endpoint's answer is exact for
/// the epoch it has published. NOT thread-safe.
class RoundRobinClient {
 public:
  /// `endpoints` are "host:port" strings; the first is the primary.
  static Result<RoundRobinClient> Connect(
      const std::vector<std::string>& endpoints,
      const ClientOptions& options = {});

  RoundRobinClient(RoundRobinClient&&) = default;
  RoundRobinClient& operator=(RoundRobinClient&&) = default;

  Result<wire::SubmitResponse> Submit(
      const std::vector<graph::EdgeUpdate>& updates);
  Status Flush();

  Result<double> Score(graph::NodeId a, graph::NodeId b);
  Result<std::vector<core::ScoredPair>> TopKFor(graph::NodeId node,
                                                std::uint32_t k);
  Result<std::vector<core::ScoredPair>> TopKPairs(std::uint32_t k);
  Result<wire::SuggestResponse> Suggest(
      std::uint32_t k, const std::vector<graph::NodeId>& nodes);

  /// Stats of one endpoint (0 = primary).
  Result<wire::StatsResponse> Stats(std::size_t endpoint);

  std::size_t num_endpoints() const { return endpoints_.size(); }

 private:
  RoundRobinClient(std::vector<std::string> endpoints,
                   const ClientOptions& options)
      : endpoints_(std::move(endpoints)),
        clients_(endpoints_.size()),
        options_(options) {}

  /// Live client for `endpoint`, reconnecting if needed.
  Result<IncSrClient*> ClientFor(std::size_t endpoint);
  /// Runs `rpc` against up to every endpoint starting at the round-robin
  /// cursor, failing over past endpoints that are down.
  template <typename Rpc>
  auto Query(Rpc&& rpc) -> decltype(rpc(std::declval<IncSrClient&>()));

  std::vector<std::string> endpoints_;
  std::vector<std::unique_ptr<IncSrClient>> clients_;
  ClientOptions options_;
  std::size_t next_ = 0;
};

template <typename Rpc>
auto RoundRobinClient::Query(Rpc&& rpc)
    -> decltype(rpc(std::declval<IncSrClient&>())) {
  Status last = Status::IoError("no serving endpoint reachable");
  for (std::size_t attempt = 0; attempt < endpoints_.size(); ++attempt) {
    const std::size_t endpoint = next_;
    next_ = (next_ + 1) % endpoints_.size();
    auto client = ClientFor(endpoint);
    if (!client.ok()) {
      last = client.status();
      continue;
    }
    auto result = rpc(**client);
    if (result.ok()) return result;
    // An answer the server produced (bad node id, ...) is authoritative;
    // only a dead connection fails over to the next endpoint.
    if ((*client)->connected()) return result;
    last = result.status();
  }
  return last;
}

}  // namespace incsr::net

#endif  // INCSR_NET_CLIENT_H_
