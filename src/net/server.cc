#include "net/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace incsr::net {

namespace internal {

namespace {

/// Serving adapter over one SimRankService (primary or replica).
class SingleBackend final : public ServingBackend {
 public:
  explicit SingleBackend(service::SimRankService* service)
      : service_(service) {}

  Status Submit(const graph::EdgeUpdate& update) override {
    return service_->Submit(update);
  }
  Status Flush() override { return service_->Flush(); }
  Result<double> Score(graph::NodeId a, graph::NodeId b) const override {
    return service_->Score(a, b);
  }
  Result<std::vector<core::ScoredPair>> TopKFor(
      graph::NodeId node, std::size_t k) const override {
    return service_->TopKFor(node, k);
  }
  std::vector<core::ScoredPair> TopKPairs(std::size_t k) const override {
    return service_->TopKPairs(k);
  }
  void FillStats(wire::StatsResponse* out) const override {
    out->stats = service_->stats();
    const auto snapshot = service_->Snapshot();
    out->num_nodes = snapshot->graph.num_nodes();
    out->num_edges = snapshot->graph.num_edges();
    out->is_replica = service_->is_replica();
  }
  service::SimRankService* ReplicationSource() const override {
    return service_->is_replica() ? nullptr : service_;
  }

 private:
  service::SimRankService* const service_;
};

/// Serving adapter over the component-sharded façade. The wire stats
/// carry the field-wise aggregate (ShardedStats::total); per-shard detail
/// stays an in-process concern.
class ShardedBackend final : public ServingBackend {
 public:
  explicit ShardedBackend(shard::ShardedSimRankService* service)
      : service_(service) {}

  Status Submit(const graph::EdgeUpdate& update) override {
    return service_->Submit(update);
  }
  Status Flush() override { return service_->Flush(); }
  Result<double> Score(graph::NodeId a, graph::NodeId b) const override {
    return service_->Score(a, b);
  }
  Result<std::vector<core::ScoredPair>> TopKFor(
      graph::NodeId node, std::size_t k) const override {
    return service_->TopKFor(node, k);
  }
  std::vector<core::ScoredPair> TopKPairs(std::size_t k) const override {
    return service_->TopKPairs(k);
  }
  void FillStats(wire::StatsResponse* out) const override {
    out->stats = service_->stats().total;
    out->num_nodes = service_->num_nodes();
    out->num_edges = service_->num_edges();
    out->is_replica = false;
  }
  service::SimRankService* ReplicationSource() const override {
    return nullptr;
  }

 private:
  shard::ShardedSimRankService* const service_;
};

}  // namespace

ReplicationHub::~ReplicationHub() {
  if (wakeup_read >= 0) ::close(wakeup_read);
  if (wakeup_write >= 0) ::close(wakeup_write);
}

Status ReplicationHub::OpenPipe() {
  int fds[2];
  if (::pipe(fds) < 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  wakeup_read = fds[0];
  wakeup_write = fds[1];
  INCSR_RETURN_IF_ERROR(SetNonBlocking(wakeup_read, true));
  INCSR_RETURN_IF_ERROR(SetNonBlocking(wakeup_write, true));
  return Status::OK();
}

void ReplicationHub::OnApplied(std::uint64_t seq,
                               const std::vector<graph::EdgeUpdate>& batch) {
  wire::ReplicaBatchMessage message;
  message.seq = seq;
  message.updates = batch;
  std::string body;
  message.EncodeBody(&body);
  const std::string frame =
      wire::EncodeFrame(wire::MessageTag::kReplicaBatch, body);
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mu);
    log.Append(seq, std::move(message.updates));
    for (int fd : subscribers) {
      pending[fd] += frame;
      ++batches_streamed;
      wake = true;
    }
  }
  // Wake even with no subscribers? No: the log append needs no loop work.
  if (wake) {
    const char byte = 1;
    // A full pipe is fine — the loop is already guaranteed to wake.
    (void)!::write(wakeup_write, &byte, 1);
  }
}

}  // namespace internal

// ---- Construction ----------------------------------------------------------

Result<std::unique_ptr<IncSrServer>> IncSrServer::Serve(
    service::SimRankService* service, const ServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("service must not be null");
  }
  auto backend = std::make_unique<internal::SingleBackend>(service);
  service::SimRankService* source = backend->ReplicationSource();
  return Start(std::move(backend), source, options);
}

Result<std::unique_ptr<IncSrServer>> IncSrServer::Serve(
    shard::ShardedSimRankService* service, const ServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("service must not be null");
  }
  return Start(std::make_unique<internal::ShardedBackend>(service), nullptr,
               options);
}

Result<std::unique_ptr<IncSrServer>> IncSrServer::Start(
    std::unique_ptr<internal::ServingBackend> backend,
    service::SimRankService* replication_source, const ServerOptions& options) {
  std::unique_ptr<IncSrServer> server(
      new IncSrServer(std::move(backend), options));
  auto listener = ListenOn(options.host, options.port, options.listen_backlog);
  if (!listener.ok()) return listener.status();
  auto port = LocalPort(*listener);
  if (!port.ok()) return port.status();
  server->listener_ = std::move(*listener);
  server->port_ = *port;

  // The hub (and its wakeup pipe) exists on every server; the replication
  // log and listener only matter on primaries.
  server->hub_ = std::make_shared<internal::ReplicationHub>(
      std::max<std::size_t>(1, options.replication_backlog));
  INCSR_RETURN_IF_ERROR(server->hub_->OpenPipe());
  if (replication_source != nullptr) {
    server->replication_source_ = replication_source;
    // The closure copies the shared_ptr: an invocation in flight during
    // server teardown still references live hub state.
    std::shared_ptr<internal::ReplicationHub> hub = server->hub_;
    // History published before this server attached is not in its log; a
    // seeded floor makes a behind-the-floor subscribe answer kInvalid
    // ("aged out") instead of accepting it and then streaming a sequence
    // gap the replica can never bridge. Holding hub->mu across
    // registration and seeding blocks OnApplied (which appends under the
    // same mutex), so the floor is in place before the first retained
    // batch; the registration epoch itself may still be re-delivered
    // after the swap, which Append drops as a duplicate.
    std::lock_guard<std::mutex> hub_lock(hub->mu);
    const std::uint64_t registration_epoch =
        replication_source->SetAppliedBatchListener(
            [hub](std::uint64_t seq,
                  const std::vector<graph::EdgeUpdate>& batch) {
              hub->OnApplied(seq, batch);
            });
    hub->log.SeedFloor(registration_epoch);
  }
  server->thread_ = std::thread(&IncSrServer::Loop, server.get());
  return server;
}

IncSrServer::IncSrServer(std::unique_ptr<internal::ServingBackend> backend,
                         const ServerOptions& options)
    : options_(options), backend_(std::move(backend)) {}

IncSrServer::~IncSrServer() { Stop(); }

void IncSrServer::Stop() {
  if (stopped_.exchange(true)) return;
  if (replication_source_ != nullptr) {
    replication_source_->SetAppliedBatchListener(nullptr);
  }
  stopping_.store(true, std::memory_order_release);
  // hub_ is null when Start() failed before creating it (bad listen
  // address, port in use) and the half-built server is being destroyed.
  if (hub_ != nullptr) {
    const char byte = 1;
    (void)!::write(hub_->wakeup_write, &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  // Release the port only after the loop (which polls this fd) is gone —
  // a successor server can then bind it immediately (restart on the same
  // endpoint).
  listener_.Close();
}

ServerStats IncSrServer::stats() const {
  ServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_closed =
      connections_closed_.load(std::memory_order_relaxed);
  stats.requests_served = requests_served_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.active_connections =
      active_connections_.load(std::memory_order_relaxed);
  stats.active_subscribers =
      active_subscribers_.load(std::memory_order_relaxed);
  if (hub_ != nullptr) {
    std::lock_guard<std::mutex> lock(hub_->mu);
    stats.batches_streamed = hub_->batches_streamed;
  }
  return stats;
}

// ---- Event loop ------------------------------------------------------------

void IncSrServer::Loop() {
  std::vector<pollfd> pfds;
  while (!stopping_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({listener_.fd(), POLLIN, 0});
    pfds.push_back({hub_->wakeup_read, POLLIN, 0});
    for (const auto& [fd, conn] : connections_) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      pfds.push_back({fd, events, 0});
    }
    const int ready = ::poll(pfds.data(), pfds.size(), /*timeout=*/1000);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // poll itself failing is unrecoverable for the loop
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    if (pfds[1].revents != 0) DrainWakeupPipe();
    FlushPendingStreams();
    if (pfds[0].revents != 0) AcceptConnections();
    for (std::size_t i = 2; i < pfds.size(); ++i) {
      const int fd = pfds[i].fd;
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed by an earlier event
      Connection& conn = it->second;
      bool alive = true;
      if ((pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (pfds[i].revents & POLLIN) == 0) {
        alive = false;
      }
      if (alive && (pfds[i].revents & POLLIN) != 0) {
        alive = HandleReadable(&conn);
      }
      if (alive && !conn.out.empty()) alive = HandleWritable(&conn);
      if (alive && conn.out.size() > options_.max_outbound_buffer) {
        alive = false;  // slow consumer: drop, let it reconnect and catch up
      }
      if (!alive) CloseConnection(fd);
    }
  }
  // Final courtesy flush of already-encoded responses, then tear down.
  for (auto& [fd, conn] : connections_) {
    if (!conn.out.empty()) (void)HandleWritable(&conn);
  }
  std::vector<int> open;
  open.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) open.push_back(fd);
  for (int fd : open) CloseConnection(fd);
}

void IncSrServer::AcceptConnections() {
  for (;;) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      // EAGAIN: drained. Anything else: transient (ECONNABORTED and
      // friends) — retry on the next poll round either way.
      return;
    }
    if (!SetNonBlocking(fd, true).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    Connection conn;
    conn.socket = Socket(fd);
    connections_.emplace(fd, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    active_connections_.store(connections_.size(),
                              std::memory_order_relaxed);
  }
}

void IncSrServer::DrainWakeupPipe() {
  char buffer[256];
  while (::read(hub_->wakeup_read, buffer, sizeof buffer) > 0) {
  }
}

void IncSrServer::FlushPendingStreams() {
  std::map<int, std::string> pending;
  {
    std::lock_guard<std::mutex> lock(hub_->mu);
    pending.swap(hub_->pending);
  }
  for (auto& [fd, frames] : pending) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    it->second.out += frames;
  }
}

void IncSrServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (it->second.subscriber) {
    std::lock_guard<std::mutex> lock(hub_->mu);
    hub_->subscribers.erase(std::remove(hub_->subscribers.begin(),
                                        hub_->subscribers.end(), fd),
                            hub_->subscribers.end());
    hub_->pending.erase(fd);
    active_subscribers_.store(hub_->subscribers.size(),
                              std::memory_order_relaxed);
  }
  connections_.erase(it);  // Socket closes the fd
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  active_connections_.store(connections_.size(), std::memory_order_relaxed);
}

// ---- Frame I/O -------------------------------------------------------------

bool IncSrServer::HandleReadable(Connection* conn) {
  char buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->socket.fd(), buffer, sizeof buffer, 0);
    if (n > 0) {
      conn->in.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      // Peer closed: dispatch what was buffered (submits still count),
      // then drop the connection — nobody reads the responses.
      (void)ProcessInput(conn);
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  return ProcessInput(conn);
}

bool IncSrServer::ProcessInput(Connection* conn) {
  std::size_t offset = 0;
  bool alive = true;
  while (alive && conn->in.size() - offset >= wire::kFramePrefixBytes) {
    std::uint8_t prefix[wire::kFramePrefixBytes];
    std::memcpy(prefix, conn->in.data() + offset, sizeof prefix);
    auto length = wire::ParseFrameLength(prefix, options_.max_frame_payload);
    if (!length.ok()) {
      // The stream is unframeable from here on: close.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      alive = false;
      break;
    }
    if (conn->in.size() - offset - wire::kFramePrefixBytes < *length) break;
    const std::string_view payload(
        conn->in.data() + offset + wire::kFramePrefixBytes, *length);
    offset += wire::kFramePrefixBytes + *length;
    auto frame = wire::ParseFramePayload(payload);
    if (!frame.ok()) {
      // Framing held, content didn't (bad version / unknown tag): answer
      // and keep going.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, wire::RpcStatus::kInvalid, frame.status().message());
      continue;
    }
    DispatchFrame(conn, frame->tag, frame->body);
  }
  conn->in.erase(0, offset);
  return alive;
}

bool IncSrServer::HandleWritable(Connection* conn) {
  std::size_t sent = 0;
  while (sent < conn->out.size()) {
    const ssize_t n = ::send(conn->socket.fd(), conn->out.data() + sent,
                             conn->out.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  conn->out.erase(0, sent);
  return true;
}

template <typename Message>
void IncSrServer::Reply(Connection* conn, wire::MessageTag tag,
                        const Message& message) {
  std::string body;
  message.EncodeBody(&body);
  conn->out += wire::EncodeFrame(tag, body);
}

void IncSrServer::SendError(Connection* conn, wire::RpcStatus status,
                            const std::string& message) {
  wire::ErrorResponse error;
  error.status = status;
  error.message = message;
  Reply(conn, wire::MessageTag::kErrorResponse, error);
}

// ---- Dispatch --------------------------------------------------------------

void IncSrServer::DispatchFrame(Connection* conn, wire::MessageTag tag,
                                std::string_view body) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  // One span per RPC: decode + backend call + response encode (the write
  // back to the socket is the event loop's, not this frame's).
  TRACE_SCOPE_ARG(kRpc, static_cast<std::uint8_t>(tag));
  switch (tag) {
    case wire::MessageTag::kPingRequest: {
      if (!body.empty()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, wire::RpcStatus::kInvalid, "ping carries no body");
        return;
      }
      conn->out += wire::EncodeFrame(wire::MessageTag::kPingResponse, {});
      return;
    }
    case wire::MessageTag::kSubmitRequest:
      HandleSubmit(conn, body);
      return;
    case wire::MessageTag::kScoreRequest: {
      wire::ScoreRequest request;
      if (!wire::ScoreRequest::DecodeBody(body, &request)) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, wire::RpcStatus::kInvalid, "bad ScoreRequest body");
        return;
      }
      wire::ScoreResponse response;
      auto score = backend_->Score(request.a, request.b);
      if (score.ok()) {
        response.score = *score;
      } else {
        response.status = wire::ToRpcStatus(score.status());
      }
      Reply(conn, wire::MessageTag::kScoreResponse, response);
      return;
    }
    case wire::MessageTag::kTopKForRequest: {
      wire::TopKForRequest request;
      if (!wire::TopKForRequest::DecodeBody(body, &request)) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, wire::RpcStatus::kInvalid, "bad TopKForRequest body");
        return;
      }
      wire::TopKResponse response;
      auto entries = backend_->TopKFor(request.node, request.k);
      if (entries.ok()) {
        response.entries = std::move(*entries);
      } else {
        response.status = wire::ToRpcStatus(entries.status());
      }
      Reply(conn, wire::MessageTag::kTopKResponse, response);
      return;
    }
    case wire::MessageTag::kTopKPairsRequest: {
      wire::TopKPairsRequest request;
      if (!wire::TopKPairsRequest::DecodeBody(body, &request)) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, wire::RpcStatus::kInvalid,
                  "bad TopKPairsRequest body");
        return;
      }
      wire::TopKResponse response;
      response.entries = backend_->TopKPairs(request.k);
      Reply(conn, wire::MessageTag::kTopKResponse, response);
      return;
    }
    case wire::MessageTag::kSuggestRequest: {
      wire::SuggestRequest request;
      if (!wire::SuggestRequest::DecodeBody(body, &request)) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, wire::RpcStatus::kInvalid, "bad SuggestRequest body");
        return;
      }
      wire::SuggestResponse response;
      response.suggestions.reserve(request.nodes.size());
      for (const graph::NodeId node : request.nodes) {
        wire::SuggestResponse::NodeSuggestions suggestion;
        suggestion.node = node;
        auto entries = backend_->TopKFor(node, request.k);
        if (entries.ok()) {
          suggestion.found = true;
          suggestion.entries = std::move(*entries);
        } else {
          response.status = wire::RpcStatus::kInvalid;
        }
        response.suggestions.push_back(std::move(suggestion));
      }
      Reply(conn, wire::MessageTag::kSuggestResponse, response);
      return;
    }
    case wire::MessageTag::kStatsRequest: {
      wire::StatsResponse response;
      backend_->FillStats(&response);
      Reply(conn, wire::MessageTag::kStatsResponse, response);
      return;
    }
    case wire::MessageTag::kFlushRequest: {
      // Blocks the loop until the backend's queue drains — acceptable:
      // the applier makes progress independently, so this terminates.
      wire::FlushResponse response;
      response.status = wire::ToRpcStatus(backend_->Flush());
      Reply(conn, wire::MessageTag::kFlushResponse, response);
      return;
    }
    case wire::MessageTag::kSubscribeRequest:
      HandleSubscribe(conn, body);
      return;
    default: {
      // A known tag that is not a request (responses, kReplicaBatch) has
      // no business arriving at a server.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, wire::RpcStatus::kInvalid,
                std::string("unexpected tag ") + wire::MessageTagName(tag));
      return;
    }
  }
}

void IncSrServer::HandleSubmit(Connection* conn, std::string_view body) {
  wire::SubmitRequest request;
  if (!wire::SubmitRequest::DecodeBody(body, &request)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, wire::RpcStatus::kInvalid, "bad SubmitRequest body");
    return;
  }
  wire::SubmitResponse response;
  for (std::size_t i = 0; i < request.updates.size(); ++i) {
    const Status status = backend_->Submit(request.updates[i]);
    if (status.ok()) {
      ++response.accepted;
      continue;
    }
    // First rejection ends the batch (matching SubmitBatch semantics);
    // the remainder counts as rejected so the client can resubmit it.
    response.status = wire::ToRpcStatus(status);
    response.rejected =
        static_cast<std::uint32_t>(request.updates.size() - i);
    break;
  }
  Reply(conn, wire::MessageTag::kSubmitResponse, response);
}

void IncSrServer::HandleSubscribe(Connection* conn, std::string_view body) {
  wire::SubscribeRequest request;
  if (!wire::SubscribeRequest::DecodeBody(body, &request)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, wire::RpcStatus::kInvalid, "bad SubscribeRequest body");
    return;
  }
  wire::SubscribeResponse response;
  if (replication_source_ == nullptr) {
    response.status = wire::RpcStatus::kNotSupported;
    Reply(conn, wire::MessageTag::kSubscribeResponse, response);
    return;
  }
  // Snapshot the backlog and register the subscriber under one lock: a
  // batch applied concurrently lands either in the snapshot (appended
  // before) or in this fd's pending queue (appended after) — never in
  // neither, never in both.
  std::vector<wire::ReplicaBatchMessage> backlog;
  {
    std::lock_guard<std::mutex> lock(hub_->mu);
    if (!hub_->log.CollectFrom(request.from_seq, &backlog)) {
      response.status = wire::RpcStatus::kInvalid;
      Reply(conn, wire::MessageTag::kSubscribeResponse, response);
      return;
    }
    response.next_seq = request.from_seq + 1;
    if (!conn->subscriber) {
      conn->subscriber = true;
      hub_->subscribers.push_back(conn->socket.fd());
      active_subscribers_.store(hub_->subscribers.size(),
                                std::memory_order_relaxed);
    }
    Reply(conn, wire::MessageTag::kSubscribeResponse, response);
    for (const wire::ReplicaBatchMessage& message : backlog) {
      std::string batch_body;
      message.EncodeBody(&batch_body);
      conn->out +=
          wire::EncodeFrame(wire::MessageTag::kReplicaBatch, batch_body);
    }
  }
}

}  // namespace incsr::net
