// Thin POSIX socket layer for the serving tier: an RAII fd, TCP
// listen/connect helpers, and blocking exact-length frame I/O used by the
// client library and the replication stream. The server's event loop uses
// the same Socket type but does its own non-blocking buffered I/O
// (net/server.cc). All writes use MSG_NOSIGNAL so a peer vanishing
// mid-write surfaces as an IoError Status, never a SIGPIPE.
#ifndef INCSR_NET_SOCKET_H_
#define INCSR_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "net/wire.h"

namespace incsr::net {

/// Owning file-descriptor wrapper; closes on destruction, movable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Transfers ownership of the fd to the caller.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Close();

 private:
  int fd_ = -1;
};

/// Opens a TCP listening socket on host:port (port 0 = ephemeral; read the
/// chosen one back with LocalPort). SO_REUSEADDR is set; the socket is
/// non-blocking (the server's poll loop requires it).
Result<Socket> ListenOn(const std::string& host, std::uint16_t port,
                        int backlog);

/// Port a (listening) socket is bound to.
Result<std::uint16_t> LocalPort(const Socket& socket);

/// Blocking TCP connect with a millisecond timeout; the returned socket is
/// in blocking mode with TCP_NODELAY set (the protocol is request/response
/// with small frames — Nagle would serialize RPCs at 40 ms each).
Result<Socket> ConnectTo(const std::string& host, std::uint16_t port,
                         int timeout_ms);

/// Puts `fd` into (non-)blocking mode.
Status SetNonBlocking(int fd, bool nonblocking);

/// Splits "host:port" (e.g. "127.0.0.1:7421"). The port must be in
/// [1, 65535].
Result<std::pair<std::string, std::uint16_t>> ParseHostPort(
    const std::string& endpoint);

/// Writes all of `data` (blocking), retrying short writes and EINTR.
Status WriteAll(int fd, std::string_view data);

/// Reads exactly `size` bytes (blocking). EOF before `size` is an IoError.
Status ReadExact(int fd, void* buffer, std::size_t size);

/// A received frame: tag plus decoded body bytes.
struct ReceivedFrame {
  wire::MessageTag tag;
  std::string body;
};

/// Blocking frame send (EncodeFrame + WriteAll).
Status WriteFrame(int fd, wire::MessageTag tag, std::string_view body);

/// Blocking frame receive: length prefix, cap check, version/tag check.
Result<ReceivedFrame> ReadFrame(int fd, std::size_t max_payload);

}  // namespace incsr::net

#endif  // INCSR_NET_SOCKET_H_
