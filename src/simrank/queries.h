// Memory-light SimRank queries: single-pair and single-source scores
// straight from the series interpretation (Eq. 34 of the paper),
//     [S]_{a,b} = (1−C) · Σ_k Cᵏ · ⟨(Qᵀ)ᵏ·e_a, (Qᵀ)ᵏ·e_b⟩,
// by propagating the two probability-mass vectors — O(K·m) time, O(n)
// memory, no n×n matrix. This serves the "query a few pairs on a huge
// graph" use case (cf. the single-pair algorithms of Li et al. [10]
// discussed in the paper's related work) and doubles as an independent
// oracle for testing the all-pairs algorithms.
#ifndef INCSR_SIMRANK_QUERIES_H_
#define INCSR_SIMRANK_QUERIES_H_

#include "common/status.h"
#include "graph/digraph.h"
#include "la/sparse_matrix.h"
#include "la/vector.h"
#include "simrank/options.h"

namespace incsr::simrank {

/// Matrix-form SimRank score of one node pair, computed from the series
/// without materializing S.
Result<double> SinglePairSimRank(const la::CsrMatrix& q, graph::NodeId a,
                                 graph::NodeId b,
                                 const SimRankOptions& options = {});

/// Convenience overload building the transition matrix from the graph.
Result<double> SinglePairSimRank(const graph::DynamicDiGraph& graph,
                                 graph::NodeId a, graph::NodeId b,
                                 const SimRankOptions& options = {});

/// One full row [S]_{a,·} of the matrix-form SimRank (equivalently the
/// column, S being symmetric), in O(K²·m) time and O(K·n) memory.
Result<la::Vector> SingleSourceSimRank(const la::CsrMatrix& q,
                                       graph::NodeId a,
                                       const SimRankOptions& options = {});

}  // namespace incsr::simrank

#endif  // INCSR_SIMRANK_QUERIES_H_
