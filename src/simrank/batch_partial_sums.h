// Batch SimRank with partial-sums memoization (Lizorkin et al., PVLDB'08):
// factor the double sum over in-neighbor pairs through the shared inner
// aggregation Partial(a, j) = Σ_{i ∈ I(a)} s_k(i, j), reducing the cost per
// iteration from O(d²n²) to O(d·n²). This plays the role of the paper's
// "Batch" comparator family ([6], [13]); see DESIGN.md §4 for the
// substitution note on Yu et al.'s fine-grained variant.
//
// Computes the ITERATIVE form (s(a, a) = 1), like batch_naive.h.
#ifndef INCSR_SIMRANK_BATCH_PARTIAL_SUMS_H_
#define INCSR_SIMRANK_BATCH_PARTIAL_SUMS_H_

#include "graph/digraph.h"
#include "la/dense_matrix.h"
#include "simrank/options.h"

namespace incsr::simrank {

/// All-pairs SimRank via partial-sums memoization.
la::DenseMatrix BatchPartialSums(const graph::DynamicDiGraph& graph,
                                 const SimRankOptions& options = {});

}  // namespace incsr::simrank

#endif  // INCSR_SIMRANK_BATCH_PARTIAL_SUMS_H_
