#include "simrank/batch_matrix_parallel.h"

#include <algorithm>

#include "common/scheduler.h"
#include "graph/transition.h"

namespace incsr::simrank {

namespace {

// out[rows begin..end) = Q·in over the given row range (row-axpy kernel).
void SpmmRows(const la::CsrMatrix& q, const la::DenseMatrix& in,
              la::DenseMatrix* out, std::size_t begin, std::size_t end) {
  const std::size_t width = in.cols();
  for (std::size_t i = begin; i < end; ++i) {
    double* __restrict crow = out->RowPtr(i);
    std::fill(crow, crow + width, 0.0);
    for (const la::SparseEntry& e : q.RowEntries(i)) {
      const double* __restrict brow =
          in.RowPtr(static_cast<std::size_t>(e.col));
      const double w = e.value;
      for (std::size_t j = 0; j < width; ++j) crow[j] += w * brow[j];
    }
  }
}

}  // namespace

la::DenseMatrix BatchMatrixParallelFromTransition(const la::CsrMatrix& q,
                                                  const SimRankOptions& options,
                                                  std::size_t num_threads) {
  INCSR_CHECK(q.rows() == q.cols(), "BatchMatrixParallel: Q must be square");
  if (num_threads == 0) {
    num_threads =
        Scheduler::ResolveNumThreads(options.num_threads);
  }
  // All row passes go through the shared persistent scheduler instead of
  // spawning (and joining) num_threads fresh std::threads per pass.
  Scheduler& scheduler = Scheduler::Global();
  auto parallel_rows = [&scheduler, num_threads](
                           std::size_t rows, const Scheduler::RangeFn& fn) {
    scheduler.ParallelFor(0, rows, /*grain=*/2, num_threads, fn);
  };
  const std::size_t n = q.rows();
  const double c = options.damping;
  la::DenseMatrix s(n, n);
  s.AddScaledIdentity(1.0 - c);
  la::DenseMatrix t(n, n);
  la::DenseMatrix tt(n, n);
  la::DenseMatrix r(n, n);
  for (int k = 0; k < options.iterations; ++k) {
    // t = Q·S
    parallel_rows(n, [&](std::size_t lo, std::size_t hi) {
      SpmmRows(q, s, &t, lo, hi);
    });
    // tt = tᵀ (blocked, row-partitioned on the destination)
    parallel_rows(n, [&](std::size_t lo, std::size_t hi) {
      constexpr std::size_t kBlock = 64;
      for (std::size_t ib = lo; ib < hi; ib += kBlock) {
        const std::size_t imax = std::min(hi, ib + kBlock);
        for (std::size_t jb = 0; jb < n; jb += kBlock) {
          const std::size_t jmax = std::min(n, jb + kBlock);
          for (std::size_t i = ib; i < imax; ++i) {
            for (std::size_t j = jb; j < jmax; ++j) tt(i, j) = t(j, i);
          }
        }
      }
    });
    // r = Q·tt = Q·Sᵀ·Qᵀ; then S = C·rᵀ + (1−C)·I. S is symmetric, so rᵀ
    // keeps the result symmetric to rounding, like the serial kernel.
    parallel_rows(n, [&](std::size_t lo, std::size_t hi) {
      SpmmRows(q, tt, &r, lo, hi);
    });
    parallel_rows(n, [&](std::size_t lo, std::size_t hi) {
      constexpr std::size_t kBlock = 64;
      for (std::size_t ib = lo; ib < hi; ib += kBlock) {
        const std::size_t imax = std::min(hi, ib + kBlock);
        for (std::size_t jb = 0; jb < n; jb += kBlock) {
          const std::size_t jmax = std::min(n, jb + kBlock);
          for (std::size_t i = ib; i < imax; ++i) {
            for (std::size_t j = jb; j < jmax; ++j) {
              s(i, j) = c * r(j, i) + (i == j ? 1.0 - c : 0.0);
            }
          }
        }
      }
    });
  }
  return s;
}

la::DenseMatrix BatchMatrixParallel(const graph::DynamicDiGraph& graph,
                                    const SimRankOptions& options,
                                    std::size_t num_threads) {
  return BatchMatrixParallelFromTransition(graph::BuildTransitionCsr(graph),
                                           options, num_threads);
}

}  // namespace incsr::simrank
