// Reference batch SimRank: the original Jeh & Widom (KDD'02) iteration in
// its textbook O(K·d²·n²) form. Deliberately unoptimized — it is the
// ground truth the faster algorithms are tested against on small graphs.
//
// Convention: this computes the ITERATIVE form of SimRank, in which
// s(a, a) = 1 for every node (Jeh & Widom's base case). The matrix form
// used by the incremental algorithms (batch_matrix.h) distributes diagonal
// mass differently; the two forms are related but not entry-wise equal —
// see Section III of the reproduced paper.
#ifndef INCSR_SIMRANK_BATCH_NAIVE_H_
#define INCSR_SIMRANK_BATCH_NAIVE_H_

#include "graph/digraph.h"
#include "la/dense_matrix.h"
#include "simrank/options.h"

namespace incsr::simrank {

/// All-pairs SimRank by the naive Jeh-Widom iteration.
la::DenseMatrix BatchNaive(const graph::DynamicDiGraph& graph,
                           const SimRankOptions& options = {});

}  // namespace incsr::simrank

#endif  // INCSR_SIMRANK_BATCH_NAIVE_H_
