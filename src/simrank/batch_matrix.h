// Batch SimRank in the MATRIX form the reproduced paper builds on:
//     S = C · Q · S · Qᵀ + (1 − C) · Iₙ                     (Eq. 2)
// iterated as S₀ = (1−C)·I, S_{k+1} = C·Q·S_k·Qᵀ + (1−C)·I, which equals
// the truncated series (1−C)·Σ_{k≤K} Cᵏ·Qᵏ·(Qᵀ)ᵏ. Each iteration is two
// sparse×dense products (O(m·n) = O(d·n²)) plus O(n²) transposes.
//
// This is the "Batch" recompute-from-scratch comparator in the paper's
// experiments, and — run to convergence — the ground truth that the
// incremental Inc-uSR / Inc-SR results are asserted against.
#ifndef INCSR_SIMRANK_BATCH_MATRIX_H_
#define INCSR_SIMRANK_BATCH_MATRIX_H_

#include "graph/digraph.h"
#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"
#include "simrank/options.h"

namespace incsr::simrank {

/// All-pairs matrix-form SimRank from a graph.
la::DenseMatrix BatchMatrix(const graph::DynamicDiGraph& graph,
                            const SimRankOptions& options = {});

/// All-pairs matrix-form SimRank from a prebuilt backward transition matrix.
la::DenseMatrix BatchMatrixFromTransition(const la::CsrMatrix& q,
                                          const SimRankOptions& options = {});

}  // namespace incsr::simrank

#endif  // INCSR_SIMRANK_BATCH_MATRIX_H_
