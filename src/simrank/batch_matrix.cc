#include "simrank/batch_matrix.h"

#include "graph/transition.h"

namespace incsr::simrank {

la::DenseMatrix BatchMatrixFromTransition(const la::CsrMatrix& q,
                                          const SimRankOptions& options) {
  INCSR_CHECK(q.rows() == q.cols(), "BatchMatrix: Q must be square");
  const std::size_t n = q.rows();
  const double c = options.damping;
  la::DenseMatrix s(n, n);
  s.AddScaledIdentity(1.0 - c);
  for (int k = 0; k < options.iterations; ++k) {
    // S ← C·Q·S·Qᵀ + (1−C)·I, computed as C·Q·(Q·Sᵀ)ᵀ + (1−C)·I.
    // S is symmetric throughout (up to rounding), so Sᵀ reuses S.
    la::DenseMatrix t = q.MultiplyDense(s);       // Q·S
    la::DenseMatrix tt = t.Transpose();           // (Q·S)ᵀ = Sᵀ·Qᵀ
    la::DenseMatrix r = q.MultiplyDense(tt);      // Q·Sᵀ·Qᵀ = Q·S·Qᵀ
    r.Scale(c);
    r.AddScaledIdentity(1.0 - c);
    s = std::move(r);
  }
  return s;
}

la::DenseMatrix BatchMatrix(const graph::DynamicDiGraph& graph,
                            const SimRankOptions& options) {
  return BatchMatrixFromTransition(graph::BuildTransitionCsr(graph), options);
}

}  // namespace incsr::simrank
