#include "simrank/batch_partial_sums.h"

namespace incsr::simrank {

la::DenseMatrix BatchPartialSums(const graph::DynamicDiGraph& graph,
                                 const SimRankOptions& options) {
  const std::size_t n = graph.num_nodes();
  la::DenseMatrix s = la::DenseMatrix::Identity(n);
  la::DenseMatrix partial(n, n);
  la::DenseMatrix next(n, n);
  const double c = options.damping;

  // Reciprocal in-degrees (0 for nodes with no in-neighbors).
  la::Vector inv_indegree(n);
  for (std::size_t a = 0; a < n; ++a) {
    std::size_t d = graph.InDegree(static_cast<graph::NodeId>(a));
    inv_indegree[a] = d == 0 ? 0.0 : 1.0 / static_cast<double>(d);
  }

  for (int k = 0; k < options.iterations; ++k) {
    // Phase 1: Partial(a, ·) = Σ_{i ∈ I(a)} s(i, ·)  — memoized once per
    // node a, shared by every pair (a, b) (the Lizorkin optimization).
    partial.SetZero();
    for (std::size_t a = 0; a < n; ++a) {
      double* __restrict prow = partial.RowPtr(a);
      for (graph::NodeId i : graph.InNeighbors(static_cast<graph::NodeId>(a))) {
        const double* __restrict srow = s.RowPtr(static_cast<std::size_t>(i));
        for (std::size_t j = 0; j < n; ++j) prow[j] += srow[j];
      }
    }
    // Phase 2: s'(b, a) = C · inv_d(b) · inv_d(a) · Σ_{j ∈ I(b)} Partialᵀ(j, a)
    //                   = C · inv_d(b) · inv_d(a) · Σ_{j ∈ I(b)} Partial(a, j).
    // Aggregating rows of Partialᵀ keeps the inner loop contiguous; with
    // Partial(a, j) indexed as [a][j], that aggregation reads column slices,
    // so aggregate rows of Partial transposed on the fly via the symmetric
    // identity: iterate b, accumulate Partial(·, j) for j ∈ I(b) by rows.
    next.SetZero();
    for (std::size_t b = 0; b < n; ++b) {
      auto in_b = graph.InNeighbors(static_cast<graph::NodeId>(b));
      if (in_b.empty()) continue;
      double* __restrict nrow = next.RowPtr(b);
      for (graph::NodeId j : in_b) {
        // Partial(a, j) over all a: column j. Walk it as strided reads but
        // accumulate into the contiguous output row.
        const std::size_t jcol = static_cast<std::size_t>(j);
        for (std::size_t a = 0; a < n; ++a) nrow[a] += partial(a, jcol);
      }
      const double scale_b = c * inv_indegree[b];
      for (std::size_t a = 0; a < n; ++a) nrow[a] *= scale_b * inv_indegree[a];
    }
    for (std::size_t a = 0; a < n; ++a) next(a, a) = 1.0;
    std::swap(s, next);
  }
  return s;
}

}  // namespace incsr::simrank
