// Multithreaded matrix-form batch SimRank. The iteration
// S ← C·Q·S·Qᵀ + (1−C)·I is embarrassingly parallel across output rows:
// each of the two sparse×dense passes partitions its row range over the
// shared persistent scheduler (common/scheduler.h) — no per-pass thread
// spawning. This is an engineering extension beyond the paper (whose
// experiments are single-threaded; cf. He et al. [8] for the GPU take) —
// the bench suite uses it as an ablation of how much a parallel Batch
// shifts the incremental-vs-batch crossover.
#ifndef INCSR_SIMRANK_BATCH_MATRIX_PARALLEL_H_
#define INCSR_SIMRANK_BATCH_MATRIX_PARALLEL_H_

#include "graph/digraph.h"
#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"
#include "simrank/options.h"

namespace incsr::simrank {

/// All-pairs matrix-form SimRank with `num_threads` workers (0 defers to
/// options.num_threads, then INCSR_THREADS, then the hardware thread
/// count; requests above the shared scheduler's size are capped to it — see
/// Scheduler::EffectiveNumThreads). Bit-compatible results with
/// BatchMatrix: the row partition does not change any summation order
/// within a row.
la::DenseMatrix BatchMatrixParallel(const graph::DynamicDiGraph& graph,
                                    const SimRankOptions& options = {},
                                    std::size_t num_threads = 0);

/// Same, from a prebuilt transition matrix.
la::DenseMatrix BatchMatrixParallelFromTransition(
    const la::CsrMatrix& q, const SimRankOptions& options = {},
    std::size_t num_threads = 0);

}  // namespace incsr::simrank

#endif  // INCSR_SIMRANK_BATCH_MATRIX_PARALLEL_H_
