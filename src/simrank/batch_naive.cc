#include "simrank/batch_naive.h"

namespace incsr::simrank {

la::DenseMatrix BatchNaive(const graph::DynamicDiGraph& graph,
                           const SimRankOptions& options) {
  const std::size_t n = graph.num_nodes();
  la::DenseMatrix prev = la::DenseMatrix::Identity(n);
  la::DenseMatrix next(n, n);
  const double c = options.damping;
  for (int k = 0; k < options.iterations; ++k) {
    next.SetZero();
    for (std::size_t a = 0; a < n; ++a) {
      auto in_a = graph.InNeighbors(static_cast<graph::NodeId>(a));
      next(a, a) = 1.0;
      if (in_a.empty()) continue;
      for (std::size_t b = a + 1; b < n; ++b) {
        auto in_b = graph.InNeighbors(static_cast<graph::NodeId>(b));
        if (in_b.empty()) continue;
        double acc = 0.0;
        for (graph::NodeId i : in_a) {
          const double* row = prev.RowPtr(static_cast<std::size_t>(i));
          for (graph::NodeId j : in_b) {
            acc += row[static_cast<std::size_t>(j)];
          }
        }
        double value = c * acc /
                       (static_cast<double>(in_a.size()) *
                        static_cast<double>(in_b.size()));
        next(a, b) = value;
        next(b, a) = value;
      }
    }
    std::swap(prev, next);
  }
  return prev;
}

}  // namespace incsr::simrank
