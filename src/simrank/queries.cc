#include "simrank/queries.h"

#include <vector>

#include "graph/transition.h"

namespace incsr::simrank {

namespace {

Status ValidateNode(const la::CsrMatrix& q, graph::NodeId node) {
  if (node < 0 || static_cast<std::size_t>(node) >= q.rows()) {
    return Status::OutOfRange("query node " + std::to_string(node) +
                              " out of range");
  }
  return Status::OK();
}

}  // namespace

Result<double> SinglePairSimRank(const la::CsrMatrix& q, graph::NodeId a,
                                 graph::NodeId b,
                                 const SimRankOptions& options) {
  INCSR_RETURN_IF_ERROR(ValidateNode(q, a));
  INCSR_RETURN_IF_ERROR(ValidateNode(q, b));
  const std::size_t n = q.rows();
  const double c = options.damping;
  // x_k = (Qᵀ)ᵏ·e_a, y_k = (Qᵀ)ᵏ·e_b; score = (1−C)·Σ Cᵏ·⟨x_k, y_k⟩.
  la::Vector x = la::Vector::Basis(n, static_cast<std::size_t>(a));
  la::Vector y = la::Vector::Basis(n, static_cast<std::size_t>(b));
  double score = la::Dot(x, y);  // k = 0 term: δ_ab
  double weight = 1.0;
  for (int k = 1; k <= options.iterations; ++k) {
    x = q.MultiplyTranspose(x);
    y = q.MultiplyTranspose(y);
    weight *= c;
    score += weight * la::Dot(x, y);
  }
  return (1.0 - c) * score;
}

Result<double> SinglePairSimRank(const graph::DynamicDiGraph& graph,
                                 graph::NodeId a, graph::NodeId b,
                                 const SimRankOptions& options) {
  return SinglePairSimRank(graph::BuildTransitionCsr(graph), a, b, options);
}

Result<la::Vector> SingleSourceSimRank(const la::CsrMatrix& q,
                                       graph::NodeId a,
                                       const SimRankOptions& options) {
  INCSR_RETURN_IF_ERROR(ValidateNode(q, a));
  const std::size_t n = q.rows();
  const double c = options.damping;
  // row = (1−C)·Σ_k Cᵏ·Qᵏ·z_k with z_k = (Qᵀ)ᵏ·e_a: propagate z backward
  // once, then push each term forward k steps. Memoizing the forward
  // applications incrementally keeps this at one Q-apply per (k, step)
  // pair — O(K²·m) total, O(n) working memory beyond the output.
  la::Vector row(n);
  la::Vector z = la::Vector::Basis(n, static_cast<std::size_t>(a));
  row.Axpy(1.0, z);  // k = 0
  double weight = 1.0;
  for (int k = 1; k <= options.iterations; ++k) {
    z = q.MultiplyTranspose(z);  // (Qᵀ)ᵏ·e_a
    weight *= c;
    la::Vector term = z;
    for (int step = 0; step < k; ++step) term = q.Multiply(term);  // Qᵏ·z
    row.Axpy(weight, term);
  }
  row.Scale(1.0 - c);
  return row;
}

}  // namespace incsr::simrank
