// Shared knobs for every SimRank algorithm in the library.
#ifndef INCSR_SIMRANK_OPTIONS_H_
#define INCSR_SIMRANK_OPTIONS_H_

namespace incsr::simrank {

/// Parameters common to batch and incremental SimRank computation.
struct SimRankOptions {
  /// Damping factor C ∈ (0, 1). The paper's experiments use 0.6 (as in Jeh
  /// & Widom); its running example (Fig. 1) uses 0.8.
  double damping = 0.6;
  /// Iteration count K. The paper uses K = 15 (K = 5 on the largest
  /// dataset); accuracy after K iterations is bounded by damping^(K+1).
  int iterations = 15;
  /// Worker threads for the parallel kernels (update-path scatter and
  /// support expansion, parallel batch solves): n > 0 uses exactly n,
  /// 0 defers to the INCSR_THREADS environment variable and then to the
  /// hardware thread count (common/scheduler.h). Results are bitwise
  /// identical at every setting — the kernels' chunk geometry is fixed
  /// independently of the thread count.
  int num_threads = 0;
};

/// A-priori accuracy bound after K iterations: |s_K − s| ≤ C^(K+1)
/// (Lizorkin et al., PVLDB'08; footnote 18 of the reproduced paper).
inline double ConvergenceBound(const SimRankOptions& options) {
  double bound = options.damping;
  for (int k = 0; k < options.iterations; ++k) bound *= options.damping;
  return bound;
}

}  // namespace incsr::simrank

#endif  // INCSR_SIMRANK_OPTIONS_H_
