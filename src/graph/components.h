// Weakly connected components — the shardability structure of SimRank.
// Two nodes in different weakly connected components share no in-link
// paths of any length, so their SimRank is exactly 0 at every iteration
// of Eq. (2): the node space partitions across components with NO score
// coupling. The sharded serving layer (src/shard/) exploits this to run
// one independent SimRankService per component group, each owning a
// smaller dense S (Σ nᵢ² memory instead of n²).
#ifndef INCSR_GRAPH_COMPONENTS_H_
#define INCSR_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace incsr::graph {

/// Partition of the node space into weakly connected components.
/// Component ids are DETERMINISTIC: components are numbered in discovery
/// order of their smallest node id (component 0 contains node 0, the next
/// component contains the smallest node not in component 0, and so on) —
/// independent of edge insertion history.
struct ComponentDecomposition {
  /// component_of[v] = id of the component containing node v.
  std::vector<std::int32_t> component_of;
  /// sizes[c] = node count of component c.
  std::vector<std::size_t> sizes;

  std::size_t num_components() const { return sizes.size(); }
};

/// Computes the weakly connected components of `graph` (edge direction
/// ignored) by BFS over the union of in/out adjacency. O(n + m) time.
/// Isolated nodes form singleton components.
ComponentDecomposition WeaklyConnectedComponents(const DynamicDiGraph& graph);

}  // namespace incsr::graph

#endif  // INCSR_GRAPH_COMPONENTS_H_
