#include "graph/components.h"

#include <deque>

namespace incsr::graph {

ComponentDecomposition WeaklyConnectedComponents(const DynamicDiGraph& graph) {
  const std::size_t n = graph.num_nodes();
  ComponentDecomposition out;
  out.component_of.assign(n, -1);

  std::deque<NodeId> frontier;
  for (std::size_t root = 0; root < n; ++root) {
    if (out.component_of[root] >= 0) continue;
    const auto component = static_cast<std::int32_t>(out.sizes.size());
    std::size_t size = 0;
    out.component_of[root] = component;
    frontier.push_back(static_cast<NodeId>(root));
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop_front();
      ++size;
      for (NodeId w : graph.OutNeighbors(v)) {
        if (out.component_of[static_cast<std::size_t>(w)] < 0) {
          out.component_of[static_cast<std::size_t>(w)] = component;
          frontier.push_back(w);
        }
      }
      for (NodeId w : graph.InNeighbors(v)) {
        if (out.component_of[static_cast<std::size_t>(w)] < 0) {
          out.component_of[static_cast<std::size_t>(w)] = component;
          frontier.push_back(w);
        }
      }
    }
    out.sizes.push_back(size);
  }
  return out;
}

}  // namespace incsr::graph
