#include "graph/digraph.h"

#include <algorithm>
#include <string>

namespace incsr::graph {

namespace {

// Inserts `value` into a sorted vector; returns false if already present.
template <typename Vec>
bool SortedInsert(Vec* vec, NodeId value) {
  auto it = std::lower_bound(vec->begin(), vec->end(), value);
  if (it != vec->end() && *it == value) return false;
  vec->insert(it, value);
  return true;
}

// Erases `value` from a sorted vector; returns false if absent.
template <typename Vec>
bool SortedErase(Vec* vec, NodeId value) {
  auto it = std::lower_bound(vec->begin(), vec->end(), value);
  if (it == vec->end() || *it != value) return false;
  vec->erase(it);
  return true;
}

std::string EdgeName(NodeId src, NodeId dst) {
  return "(" + std::to_string(src) + ", " + std::to_string(dst) + ")";
}

}  // namespace

bool DynamicDiGraph::View::HasEdge(NodeId src, NodeId dst) const {
  if (!HasNode(src) || !HasNode(dst)) return false;
  const AdjList& adj = nodes_[static_cast<std::size_t>(src)]->out;
  return std::binary_search(adj.begin(), adj.end(), dst);
}

std::vector<Edge> DynamicDiGraph::View::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (std::size_t u = 0; u < nodes_.size(); ++u) {
    for (NodeId v : nodes_[u]->out) {
      edges.push_back({static_cast<NodeId>(u), v});
    }
  }
  return edges;
}

const std::shared_ptr<const DynamicDiGraph::NodeRec>&
DynamicDiGraph::EmptyRec() {
  // Every isolated node in every graph shares this one record (always
  // flagged shared), so AddNodes is O(count) pointer stores with no
  // per-node allocation — load-bearing for standing up 10⁵⁺-node graphs.
  static const std::shared_ptr<const NodeRec> kEmpty =
      std::make_shared<NodeRec>();
  return kEmpty;
}

DynamicDiGraph::DynamicDiGraph(const DynamicDiGraph& other)
    : nodes_(other.nodes_),
      shared_(other.nodes_.size(), 1),
      num_edges_(other.num_edges_) {
  // The source's records are now referenced by this copy too: mark them
  // shared so the source's next mutation also copies-on-write.
  std::fill(other.shared_.begin(), other.shared_.end(), std::uint8_t{1});
}

DynamicDiGraph& DynamicDiGraph::operator=(const DynamicDiGraph& other) {
  if (this == &other) return *this;
  nodes_ = other.nodes_;
  shared_.assign(other.nodes_.size(), 1);
  num_edges_ = other.num_edges_;
  std::fill(other.shared_.begin(), other.shared_.end(), std::uint8_t{1});
  return *this;
}

DynamicDiGraph::NodeRec* DynamicDiGraph::MutableNode(std::size_t i) {
  if (shared_[i]) {
    auto clone = std::make_shared<NodeRec>(*nodes_[i]);
    bytes_copied_ +=
        (clone->out.size() + clone->in.size()) * sizeof(NodeId);
    nodes_[i] = std::move(clone);
    shared_[i] = 0;
  }
  // const_cast is sound: an unshared record is exclusively owned by this
  // graph, and only the single writer thread reaches this path.
  return const_cast<NodeRec*>(nodes_[i].get());
}

NodeId DynamicDiGraph::AddNodes(std::size_t count) {
  NodeId first = static_cast<NodeId>(nodes_.size());
  nodes_.resize(nodes_.size() + count, EmptyRec());
  shared_.resize(shared_.size() + count, 1);
  return first;
}

Status DynamicDiGraph::AddEdge(NodeId src, NodeId dst) {
  if (!HasNode(src) || !HasNode(dst)) {
    return Status::OutOfRange("AddEdge: node id out of range for edge " +
                              EdgeName(src, dst));
  }
  // Membership is checked against the immutable record first so a
  // duplicate insert clones nothing.
  if (HasEdge(src, dst)) {
    return Status::AlreadyExists("AddEdge: duplicate edge " +
                                 EdgeName(src, dst));
  }
  SortedInsert(&MutableNode(static_cast<std::size_t>(src))->out, dst);
  SortedInsert(&MutableNode(static_cast<std::size_t>(dst))->in, src);
  ++num_edges_;
  return Status::OK();
}

Status DynamicDiGraph::RemoveEdge(NodeId src, NodeId dst) {
  if (!HasNode(src) || !HasNode(dst)) {
    return Status::OutOfRange("RemoveEdge: node id out of range for edge " +
                              EdgeName(src, dst));
  }
  if (!HasEdge(src, dst)) {
    return Status::NotFound("RemoveEdge: no edge " + EdgeName(src, dst));
  }
  SortedErase(&MutableNode(static_cast<std::size_t>(src))->out, dst);
  SortedErase(&MutableNode(static_cast<std::size_t>(dst))->in, src);
  --num_edges_;
  return Status::OK();
}

bool DynamicDiGraph::HasEdge(NodeId src, NodeId dst) const {
  if (!HasNode(src) || !HasNode(dst)) return false;
  const AdjList& adj = nodes_[static_cast<std::size_t>(src)]->out;
  return std::binary_search(adj.begin(), adj.end(), dst);
}

std::span<const NodeId> DynamicDiGraph::OutNeighbors(NodeId node) const {
  INCSR_CHECK(HasNode(node), "OutNeighbors: bad node %d", node);
  const AdjList& adj = nodes_[static_cast<std::size_t>(node)]->out;
  return {adj.data(), adj.size()};
}

std::span<const NodeId> DynamicDiGraph::InNeighbors(NodeId node) const {
  INCSR_CHECK(HasNode(node), "InNeighbors: bad node %d", node);
  const AdjList& adj = nodes_[static_cast<std::size_t>(node)]->in;
  return {adj.data(), adj.size()};
}

std::vector<Edge> DynamicDiGraph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (std::size_t u = 0; u < nodes_.size(); ++u) {
    for (NodeId v : nodes_[u]->out) {
      edges.push_back({static_cast<NodeId>(u), v});
    }
  }
  return edges;
}

DynamicDiGraph::View DynamicDiGraph::Snapshot() {
  View view;
  view.nodes_ = nodes_;  // O(n) pointer copies — the whole cost
  view.num_edges_ = num_edges_;
  std::fill(shared_.begin(), shared_.end(), std::uint8_t{1});
  return view;
}

bool DynamicDiGraph::operator==(const DynamicDiGraph& other) const {
  if (nodes_.size() != other.nodes_.size() ||
      num_edges_ != other.num_edges_) {
    return false;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] == other.nodes_[i]) continue;  // shared record
    if (!(*nodes_[i] == *other.nodes_[i])) return false;
  }
  return true;
}

}  // namespace incsr::graph
