#include "graph/digraph.h"

#include <algorithm>
#include <string>

namespace incsr::graph {

namespace {

// Inserts `value` into a sorted vector; returns false if already present.
template <typename Vec>
bool SortedInsert(Vec* vec, NodeId value) {
  auto it = std::lower_bound(vec->begin(), vec->end(), value);
  if (it != vec->end() && *it == value) return false;
  vec->insert(it, value);
  return true;
}

// Erases `value` from a sorted vector; returns false if absent.
template <typename Vec>
bool SortedErase(Vec* vec, NodeId value) {
  auto it = std::lower_bound(vec->begin(), vec->end(), value);
  if (it == vec->end() || *it != value) return false;
  vec->erase(it);
  return true;
}

std::string EdgeName(NodeId src, NodeId dst) {
  return "(" + std::to_string(src) + ", " + std::to_string(dst) + ")";
}

}  // namespace

NodeId DynamicDiGraph::AddNodes(std::size_t count) {
  NodeId first = static_cast<NodeId>(out_.size());
  out_.resize(out_.size() + count);
  in_.resize(in_.size() + count);
  return first;
}

Status DynamicDiGraph::AddEdge(NodeId src, NodeId dst) {
  if (!HasNode(src) || !HasNode(dst)) {
    return Status::OutOfRange("AddEdge: node id out of range for edge " +
                              EdgeName(src, dst));
  }
  if (!SortedInsert(&out_[static_cast<std::size_t>(src)], dst)) {
    return Status::AlreadyExists("AddEdge: duplicate edge " +
                                 EdgeName(src, dst));
  }
  SortedInsert(&in_[static_cast<std::size_t>(dst)], src);
  ++num_edges_;
  return Status::OK();
}

Status DynamicDiGraph::RemoveEdge(NodeId src, NodeId dst) {
  if (!HasNode(src) || !HasNode(dst)) {
    return Status::OutOfRange("RemoveEdge: node id out of range for edge " +
                              EdgeName(src, dst));
  }
  if (!SortedErase(&out_[static_cast<std::size_t>(src)], dst)) {
    return Status::NotFound("RemoveEdge: no edge " + EdgeName(src, dst));
  }
  SortedErase(&in_[static_cast<std::size_t>(dst)], src);
  --num_edges_;
  return Status::OK();
}

bool DynamicDiGraph::HasEdge(NodeId src, NodeId dst) const {
  if (!HasNode(src) || !HasNode(dst)) return false;
  const auto& adj = out_[static_cast<std::size_t>(src)];
  return std::binary_search(adj.begin(), adj.end(), dst);
}

std::span<const NodeId> DynamicDiGraph::OutNeighbors(NodeId node) const {
  INCSR_CHECK(HasNode(node), "OutNeighbors: bad node %d", node);
  const auto& adj = out_[static_cast<std::size_t>(node)];
  return {adj.data(), adj.size()};
}

std::span<const NodeId> DynamicDiGraph::InNeighbors(NodeId node) const {
  INCSR_CHECK(HasNode(node), "InNeighbors: bad node %d", node);
  const auto& adj = in_[static_cast<std::size_t>(node)];
  return {adj.data(), adj.size()};
}

std::vector<Edge> DynamicDiGraph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (std::size_t u = 0; u < out_.size(); ++u) {
    for (NodeId v : out_[u]) {
      edges.push_back({static_cast<NodeId>(u), v});
    }
  }
  return edges;
}

}  // namespace incsr::graph
