// Snapshot series over a timestamp-ordered edge stream. This reproduces
// how the paper builds its workloads: "we extract dense snapshots" of DBLP
// by publication year / of YouTube by video age, and the edge updates ΔE
// between consecutive snapshots are the incremental workload.
#ifndef INCSR_GRAPH_SNAPSHOTS_H_
#define INCSR_GRAPH_SNAPSHOTS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "graph/digraph.h"
#include "graph/generators.h"
#include "graph/update_stream.h"

namespace incsr::graph {

/// A timestamp-ordered edge stream with named cut points ("years").
class SnapshotSeries {
 public:
  /// Builds a series over `num_nodes` nodes whose cut points split the
  /// stream into `num_snapshots` prefixes: snapshot k holds the first
  /// base + k·step edges, where the base prefix is `base_fraction` of the
  /// stream and the remainder is split evenly.
  static Result<SnapshotSeries> FromStream(
      std::size_t num_nodes, std::vector<TimestampedEdge> stream,
      std::size_t num_snapshots, double base_fraction = 0.8);

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_snapshots() const { return cut_points_.size(); }
  /// Edge count of snapshot k.
  std::size_t EdgesAt(std::size_t k) const;
  /// Total stream length.
  std::size_t stream_size() const { return stream_.size(); }

  /// Materializes snapshot k (all nodes present; first EdgesAt(k) edges).
  DynamicDiGraph GraphAt(std::size_t k) const;

  /// Insertions turning snapshot `from` into snapshot `to` (from <= to).
  std::vector<EdgeUpdate> DeltaBetween(std::size_t from, std::size_t to) const;

 private:
  std::size_t num_nodes_ = 0;
  std::vector<TimestampedEdge> stream_;
  std::vector<std::size_t> cut_points_;
};

}  // namespace incsr::graph

#endif  // INCSR_GRAPH_SNAPSHOTS_H_
