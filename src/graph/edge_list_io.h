// SNAP-style edge-list input/output. The paper evaluates on SNAP datasets
// (cit-HepPh et al.) distributed as whitespace-separated "src dst" lines
// with '#' comments; this reader accepts that format, optionally remapping
// arbitrary node ids to the dense [0, n) space the library uses.
#ifndef INCSR_GRAPH_EDGE_LIST_IO_H_
#define INCSR_GRAPH_EDGE_LIST_IO_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/digraph.h"

namespace incsr::graph {

/// Result of parsing an edge list.
struct EdgeListData {
  DynamicDiGraph graph;
  /// original id → dense id (only populated when remapping occurred).
  std::unordered_map<std::int64_t, NodeId> id_map;
  /// The accepted edges in FILE ORDER (remapped, duplicates/self-loop
  /// skips removed). SNAP temporal datasets ship their lines in arrival
  /// order, so this is the edge timeline the figure harnesses replay
  /// (--edges FILE --temporal); graph.Edges() cannot serve that purpose —
  /// it re-sorts lexicographically.
  std::vector<Edge> edges;
  /// Number of duplicate edges skipped during the load.
  std::size_t duplicates_skipped = 0;
};

/// Parsing options.
struct EdgeListOptions {
  /// Remap arbitrary node ids to dense [0, n). When false, ids must already
  /// be dense non-negative ints and the graph is sized by the max id.
  bool remap_ids = true;
  /// Skip (rather than fail on) duplicate edges.
  bool skip_duplicates = true;
  /// Skip (rather than fail on) self-loops.
  bool skip_self_loops = false;
};

/// Parses a SNAP-format edge list from a string (one "src dst" pair per
/// line; '#' starts a comment line; blank lines ignored).
Result<EdgeListData> ParseEdgeList(const std::string& text,
                                   const EdgeListOptions& options = {});

/// Reads an edge list from a file.
Result<EdgeListData> ReadEdgeListFile(const std::string& path,
                                      const EdgeListOptions& options = {});

/// Writes a graph as a SNAP-format edge list (with a header comment).
Status WriteEdgeListFile(const DynamicDiGraph& graph, const std::string& path);

}  // namespace incsr::graph

#endif  // INCSR_GRAPH_EDGE_LIST_IO_H_
