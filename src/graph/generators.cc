#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace incsr::graph {

Result<std::vector<TimestampedEdge>> ErdosRenyiGnm(std::size_t num_nodes,
                                                   std::size_t num_edges,
                                                   std::uint64_t seed) {
  if (num_nodes < 2 && num_edges > 0) {
    return Status::InvalidArgument("ErdosRenyiGnm: need >= 2 nodes for edges");
  }
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(num_nodes) * (num_nodes - 1);
  if (num_edges > max_edges) {
    return Status::InvalidArgument("ErdosRenyiGnm: too many edges requested");
  }
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::vector<TimestampedEdge> edges;
  edges.reserve(num_edges);
  while (edges.size() < num_edges) {
    NodeId src = static_cast<NodeId>(rng.NextBounded(num_nodes));
    NodeId dst = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (src == dst) continue;
    if (!seen.insert(EdgeKey(src, dst)).second) continue;
    edges.push_back({{src, dst}, static_cast<std::int64_t>(edges.size())});
  }
  return edges;
}

Result<std::vector<TimestampedEdge>> PreferentialCitation(
    const CitationModelParams& params) {
  if (params.num_nodes < 2) {
    return Status::InvalidArgument("PreferentialCitation: need >= 2 nodes");
  }
  if (params.mean_out_degree <= 0.0) {
    return Status::InvalidArgument(
        "PreferentialCitation: mean_out_degree must be positive");
  }
  Rng rng(params.seed);
  std::vector<TimestampedEdge> edges;
  edges.reserve(static_cast<std::size_t>(
      params.mean_out_degree * static_cast<double>(params.num_nodes)));
  // repeated_targets holds one entry per received citation, enabling O(1)
  // preferential sampling proportional to in-degree.
  std::vector<NodeId> repeated_targets;
  std::int64_t timestamp = 0;
  for (std::size_t t = 1; t < params.num_nodes; ++t) {
    const NodeId source = static_cast<NodeId>(t);
    // Out-degree ~ 1 + Poisson(mean − 1), so the expected citations made
    // per paper equal the requested mean.
    std::size_t budget =
        1 + static_cast<std::size_t>(
                rng.NextPoisson(params.mean_out_degree - 1.0));
    budget = std::min(budget, t);  // cannot cite more nodes than exist
    std::unordered_set<std::uint64_t> local;
    std::size_t attempts = 0;
    while (local.size() < budget && attempts < 20 * budget + 40) {
      ++attempts;
      NodeId target;
      if (!repeated_targets.empty() &&
          rng.NextBernoulli(params.preferential_mix)) {
        target = repeated_targets[rng.NextBounded(repeated_targets.size())];
      } else {
        target = static_cast<NodeId>(rng.NextBounded(t));
      }
      if (target == source) continue;
      if (!local.insert(EdgeKey(source, target)).second) continue;
      edges.push_back({{source, target}, timestamp});
      repeated_targets.push_back(target);
    }
    ++timestamp;
  }
  return edges;
}

Result<std::vector<TimestampedEdge>> Rmat(const RmatParams& params) {
  if (params.scale < 1 || params.scale > 30) {
    return Status::InvalidArgument("Rmat: scale out of [1, 30]");
  }
  const double d = 1.0 - params.a - params.b - params.c;
  if (params.a < 0 || params.b < 0 || params.c < 0 || d < 0) {
    return Status::InvalidArgument("Rmat: probabilities must be nonnegative");
  }
  const std::size_t n = static_cast<std::size_t>(1) << params.scale;
  const std::uint64_t max_edges = static_cast<std::uint64_t>(n) * (n - 1);
  if (params.num_edges > max_edges / 2) {
    return Status::InvalidArgument("Rmat: edge count too dense for scale");
  }
  Rng rng(params.seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(params.num_edges * 2);
  std::vector<TimestampedEdge> edges;
  edges.reserve(params.num_edges);
  while (edges.size() < params.num_edges) {
    std::size_t row = 0;
    std::size_t col = 0;
    for (int level = 0; level < params.scale; ++level) {
      double p = rng.NextDouble();
      row <<= 1;
      col <<= 1;
      if (p < params.a) {
        // top-left quadrant
      } else if (p < params.a + params.b) {
        col |= 1;
      } else if (p < params.a + params.b + params.c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    NodeId src = static_cast<NodeId>(row);
    NodeId dst = static_cast<NodeId>(col);
    if (src == dst) continue;
    if (!seen.insert(EdgeKey(src, dst)).second) continue;
    edges.push_back({{src, dst}, static_cast<std::int64_t>(edges.size())});
  }
  return edges;
}

Result<std::vector<TimestampedEdge>> EvolvingLinkage(
    const EvolvingLinkageParams& params) {
  if (params.seed_nodes < 2 || params.seed_nodes > params.num_nodes) {
    return Status::InvalidArgument(
        "EvolvingLinkage: seed_nodes must be in [2, num_nodes]");
  }
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(params.num_nodes) * (params.num_nodes - 1);
  if (params.num_edges > max_edges / 2) {
    return Status::InvalidArgument("EvolvingLinkage: too many edges");
  }
  if (params.num_communities == 0 ||
      params.num_communities > params.num_nodes) {
    return Status::InvalidArgument(
        "EvolvingLinkage: num_communities must be in [1, num_nodes]");
  }
  Rng rng(params.seed);
  const std::size_t k = params.num_communities;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(params.num_edges * 2);
  std::vector<TimestampedEdge> edges;
  edges.reserve(params.num_edges);
  // Preferential endpoint pools: global and per community (community of a
  // node is id mod k, so early arrivals seed every community).
  std::vector<NodeId> global_pool;
  std::vector<std::vector<NodeId>> community_pool(k);
  std::int64_t timestamp = 0;

  auto emit = [&](NodeId src, NodeId dst) {
    edges.push_back({{src, dst}, timestamp++});
    for (NodeId v : {src, dst}) {
      global_pool.push_back(v);
      community_pool[static_cast<std::size_t>(v) % k].push_back(v);
    }
  };

  // Seed edges: chain each seed node to the next member of ITS community
  // when one exists (keeping the seed structure from wiring communities
  // together), falling back to a plain cycle when k >= seed_nodes.
  for (std::size_t i = 0; i < params.seed_nodes; ++i) {
    NodeId src = static_cast<NodeId>(i);
    NodeId dst = i + k < params.seed_nodes
                     ? static_cast<NodeId>(i + k)
                     : static_cast<NodeId>((i + 1) % params.seed_nodes);
    if (src == dst) continue;
    if (seen.insert(EdgeKey(src, dst)).second) emit(src, dst);
  }

  std::size_t live_nodes = params.seed_nodes;
  // Uniform member of community c among ids < bound (ids c, c+k, c+2k, …).
  auto uniform_in_community = [&](std::size_t c, std::size_t bound) -> NodeId {
    INCSR_DCHECK(bound > c, "community %zu empty below %zu", c, bound);
    std::size_t count = (bound - c + k - 1) / k;
    return static_cast<NodeId>(c + k * rng.NextBounded(count));
  };
  auto pick_global = [&](std::size_t bound) -> NodeId {
    if (!global_pool.empty() && rng.NextBernoulli(params.preferential_mix)) {
      NodeId cand = global_pool[rng.NextBounded(global_pool.size())];
      if (static_cast<std::size_t>(cand) < bound) return cand;
    }
    return static_cast<NodeId>(rng.NextBounded(bound));
  };
  auto pick_in_community = [&](std::size_t c, std::size_t bound) -> NodeId {
    if (bound <= c) return pick_global(bound);  // community empty so far
    const auto& pool = community_pool[c];
    if (!pool.empty() && rng.NextBernoulli(params.preferential_mix)) {
      NodeId cand = pool[rng.NextBounded(pool.size())];
      if (static_cast<std::size_t>(cand) < bound) return cand;
    }
    return uniform_in_community(c, bound);
  };

  while (edges.size() < params.num_edges) {
    const std::size_t edges_left = params.num_edges - edges.size();
    const std::size_t nodes_left = params.num_nodes - live_nodes;
    const bool add_node =
        nodes_left > 0 &&
        (nodes_left >= edges_left ||
         rng.NextBernoulli(static_cast<double>(nodes_left) /
                           static_cast<double>(edges_left)));
    if (add_node) {
      // New node arrives and links within its community when possible.
      NodeId fresh = static_cast<NodeId>(live_nodes++);
      std::size_t c = static_cast<std::size_t>(fresh) % k;
      NodeId other = rng.NextBernoulli(params.intra_community_prob)
                         ? pick_in_community(c, static_cast<std::size_t>(fresh))
                         : pick_global(static_cast<std::size_t>(fresh));
      NodeId src = fresh;
      NodeId dst = other;
      if (rng.NextBernoulli(0.5)) std::swap(src, dst);
      if (seen.insert(EdgeKey(src, dst)).second) emit(src, dst);
    } else {
      std::size_t c = rng.NextBounded(k);
      NodeId src = pick_in_community(c, live_nodes);
      NodeId dst = rng.NextBernoulli(params.intra_community_prob)
                       ? pick_in_community(c, live_nodes)
                       : pick_global(live_nodes);
      if (src == dst) continue;
      if (!seen.insert(EdgeKey(src, dst)).second) continue;
      emit(src, dst);
    }
  }
  return edges;
}

DynamicDiGraph MaterializeGraph(std::size_t num_nodes,
                                const std::vector<TimestampedEdge>& edges,
                                std::size_t prefix) {
  DynamicDiGraph graph(num_nodes);
  const std::size_t count = std::min(prefix, edges.size());
  for (std::size_t k = 0; k < count; ++k) {
    Status s = graph.AddEdge(edges[k].edge.src, edges[k].edge.dst);
    INCSR_CHECK(s.ok() || s.code() == StatusCode::kAlreadyExists,
                "MaterializeGraph: %s", s.ToString().c_str());
  }
  return graph;
}

}  // namespace incsr::graph
