#include "graph/edge_list_io.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

namespace incsr::graph {

namespace {

struct RawEdge {
  std::int64_t src;
  std::int64_t dst;
};

Result<std::vector<RawEdge>> TokenizeEdges(const std::string& text) {
  std::vector<RawEdge> edges;
  std::size_t line_no = 0;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    std::istringstream fields(line);
    std::int64_t src = 0;
    std::int64_t dst = 0;
    if (!(fields >> src)) {
      return Status::IoError("edge list line " + std::to_string(line_no) +
                             ": expected integer node id in '" + line + "'");
    }
    if (!(fields >> dst)) {
      return Status::IoError("edge list line " + std::to_string(line_no) +
                             ": expected 'src dst', got '" + line + "'");
    }
    std::string extra;
    if (fields >> extra) {
      return Status::IoError("edge list line " + std::to_string(line_no) +
                             ": trailing token '" + extra + "'");
    }
    if (src < 0 || dst < 0) {
      return Status::IoError("edge list line " + std::to_string(line_no) +
                             ": negative node id");
    }
    edges.push_back({src, dst});
  }
  return edges;
}

}  // namespace

Result<EdgeListData> ParseEdgeList(const std::string& text,
                                   const EdgeListOptions& options) {
  Result<std::vector<RawEdge>> raw = TokenizeEdges(text);
  if (!raw.ok()) return raw.status();

  EdgeListData data;
  if (options.remap_ids) {
    for (const RawEdge& e : raw.value()) {
      for (std::int64_t id : {e.src, e.dst}) {
        if (!data.id_map.contains(id)) {
          data.id_map.emplace(id, static_cast<NodeId>(data.id_map.size()));
        }
      }
    }
    data.graph = DynamicDiGraph(data.id_map.size());
  } else {
    std::int64_t max_id = -1;
    for (const RawEdge& e : raw.value()) {
      max_id = std::max({max_id, e.src, e.dst});
    }
    data.graph = DynamicDiGraph(static_cast<std::size_t>(max_id + 1));
  }

  for (const RawEdge& e : raw.value()) {
    NodeId src = options.remap_ids ? data.id_map.at(e.src)
                                   : static_cast<NodeId>(e.src);
    NodeId dst = options.remap_ids ? data.id_map.at(e.dst)
                                   : static_cast<NodeId>(e.dst);
    if (src == dst && options.skip_self_loops) {
      ++data.duplicates_skipped;
      continue;
    }
    Status s = data.graph.AddEdge(src, dst);
    if (!s.ok()) {
      if (s.code() == StatusCode::kAlreadyExists && options.skip_duplicates) {
        ++data.duplicates_skipped;
        continue;
      }
      return s;
    }
    data.edges.push_back({src, dst});
  }
  return data;
}

Result<EdgeListData> ReadEdgeListFile(const std::string& path,
                                      const EdgeListOptions& options) {
  std::ifstream file(path);
  if (!file) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return ParseEdgeList(contents.str(), options);
}

Status WriteEdgeListFile(const DynamicDiGraph& graph,
                         const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError("cannot open '" + path + "' for writing: " +
                           std::strerror(errno));
  }
  file << "# incsr edge list: " << graph.num_nodes() << " nodes, "
       << graph.num_edges() << " edges\n";
  for (const Edge& e : graph.Edges()) {
    file << e.src << '\t' << e.dst << '\n';
  }
  if (!file.good()) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace incsr::graph
