#include "graph/update_stream.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace incsr::graph {

std::string ToString(const EdgeUpdate& update) {
  std::string verb = update.kind == UpdateKind::kInsert ? "insert" : "delete";
  return verb + "(" + std::to_string(update.src) + "->" +
         std::to_string(update.dst) + ")";
}

Result<std::vector<EdgeUpdate>> ParseUpdateStream(const std::string& text) {
  std::vector<EdgeUpdate> updates;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  // Tolerate a UTF-8 byte-order mark (files exported by Windows tools).
  if (text.size() >= 3 && text.compare(0, 3, "\xEF\xBB\xBF") == 0) pos = 3;
  while (pos < text.size()) {
    // Split on LF, CRLF, or lone CR so replay files written on any
    // platform parse identically.
    std::size_t eol = text.find_first_of("\r\n", pos);
    const std::size_t line_end = eol == std::string::npos ? text.size() : eol;
    std::string line = text.substr(pos, line_end - pos);
    if (eol == std::string::npos) {
      pos = text.size();
    } else if (text[eol] == '\r' && eol + 1 < text.size() &&
               text[eol + 1] == '\n') {
      pos = eol + 2;
    } else {
      pos = eol + 1;
    }
    ++line_no;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    std::istringstream fields(line);
    std::string op;
    long long src = 0;
    long long dst = 0;
    if (!(fields >> op >> src >> dst) || (op != "+" && op != "-")) {
      return Status::IoError("update stream line " + std::to_string(line_no) +
                             ": expected '+|- src dst', got '" + line + "'");
    }
    std::string extra;
    if (fields >> extra) {
      return Status::IoError("update stream line " + std::to_string(line_no) +
                             ": trailing token '" + extra + "'");
    }
    if (src < 0 || dst < 0) {
      return Status::IoError("update stream line " + std::to_string(line_no) +
                             ": negative node id");
    }
    updates.push_back({op == "+" ? UpdateKind::kInsert : UpdateKind::kDelete,
                       static_cast<NodeId>(src), static_cast<NodeId>(dst)});
  }
  return updates;
}

std::string FormatUpdateStream(const std::vector<EdgeUpdate>& updates) {
  std::string out;
  for (const EdgeUpdate& u : updates) {
    out += u.kind == UpdateKind::kInsert ? '+' : '-';
    out += ' ';
    out += std::to_string(u.src);
    out += ' ';
    out += std::to_string(u.dst);
    out += '\n';
  }
  return out;
}

Result<std::vector<EdgeUpdate>> SampleInsertions(const DynamicDiGraph& graph,
                                                 std::size_t count, Rng* rng) {
  INCSR_CHECK(rng != nullptr, "SampleInsertions: rng must not be null");
  const std::size_t n = graph.num_nodes();
  if (n < 2) {
    return Status::InvalidArgument("SampleInsertions: need >= 2 nodes");
  }
  const std::uint64_t capacity =
      static_cast<std::uint64_t>(n) * (n - 1) - graph.num_edges();
  if (count > capacity) {
    return Status::InvalidArgument(
        "SampleInsertions: not enough missing edges");
  }
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(count * 2);
  std::vector<EdgeUpdate> updates;
  updates.reserve(count);
  while (updates.size() < count) {
    NodeId src = static_cast<NodeId>(rng->NextBounded(n));
    NodeId dst = static_cast<NodeId>(rng->NextBounded(n));
    if (src == dst || graph.HasEdge(src, dst)) continue;
    if (!chosen.insert(EdgeKey(src, dst)).second) continue;
    updates.push_back({UpdateKind::kInsert, src, dst});
  }
  return updates;
}

Result<std::vector<EdgeUpdate>> SampleDeletions(const DynamicDiGraph& graph,
                                                std::size_t count, Rng* rng) {
  INCSR_CHECK(rng != nullptr, "SampleDeletions: rng must not be null");
  if (count > graph.num_edges()) {
    return Status::InvalidArgument("SampleDeletions: not enough edges");
  }
  std::vector<Edge> edges = graph.Edges();
  // Partial Fisher-Yates: the first `count` positions become the sample.
  for (std::size_t k = 0; k < count; ++k) {
    std::size_t pick = k + rng->NextBounded(edges.size() - k);
    std::swap(edges[k], edges[pick]);
  }
  std::vector<EdgeUpdate> updates;
  updates.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    updates.push_back({UpdateKind::kDelete, edges[k].src, edges[k].dst});
  }
  return updates;
}

Status ApplyUpdates(const std::vector<EdgeUpdate>& updates,
                    DynamicDiGraph* graph) {
  INCSR_CHECK(graph != nullptr, "ApplyUpdates: graph must not be null");
  for (const EdgeUpdate& u : updates) {
    Status s = u.kind == UpdateKind::kInsert
                   ? graph->AddEdge(u.src, u.dst)
                   : graph->RemoveEdge(u.src, u.dst);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Result<std::vector<EdgeUpdate>> DiffGraphs(const DynamicDiGraph& from,
                                           const DynamicDiGraph& to) {
  if (from.num_nodes() != to.num_nodes()) {
    return Status::InvalidArgument("DiffGraphs: node counts differ");
  }
  std::vector<EdgeUpdate> updates;
  for (const Edge& e : from.Edges()) {
    if (!to.HasEdge(e.src, e.dst)) {
      updates.push_back({UpdateKind::kDelete, e.src, e.dst});
    }
  }
  for (const Edge& e : to.Edges()) {
    if (!from.HasEdge(e.src, e.dst)) {
      updates.push_back({UpdateKind::kInsert, e.src, e.dst});
    }
  }
  return updates;
}

}  // namespace incsr::graph
