#include "graph/snapshots.h"

#include <algorithm>

namespace incsr::graph {

Result<SnapshotSeries> SnapshotSeries::FromStream(
    std::size_t num_nodes, std::vector<TimestampedEdge> stream,
    std::size_t num_snapshots, double base_fraction) {
  if (num_snapshots == 0) {
    return Status::InvalidArgument("SnapshotSeries: need >= 1 snapshot");
  }
  if (base_fraction <= 0.0 || base_fraction > 1.0) {
    return Status::InvalidArgument(
        "SnapshotSeries: base_fraction must be in (0, 1]");
  }
  if (!std::is_sorted(stream.begin(), stream.end(),
                      [](const TimestampedEdge& a, const TimestampedEdge& b) {
                        return a.timestamp < b.timestamp;
                      })) {
    return Status::InvalidArgument(
        "SnapshotSeries: stream must be timestamp-ordered");
  }
  SnapshotSeries series;
  series.num_nodes_ = num_nodes;
  series.stream_ = std::move(stream);
  const std::size_t total = series.stream_.size();
  const std::size_t base =
      std::min(total, static_cast<std::size_t>(
                          base_fraction * static_cast<double>(total)));
  series.cut_points_.reserve(num_snapshots);
  if (num_snapshots == 1) {
    series.cut_points_.push_back(total);
  } else {
    const std::size_t span = total - base;
    for (std::size_t k = 0; k < num_snapshots; ++k) {
      series.cut_points_.push_back(base + span * k / (num_snapshots - 1));
    }
  }
  return series;
}

std::size_t SnapshotSeries::EdgesAt(std::size_t k) const {
  INCSR_CHECK(k < cut_points_.size(), "snapshot %zu out of %zu", k,
              cut_points_.size());
  return cut_points_[k];
}

DynamicDiGraph SnapshotSeries::GraphAt(std::size_t k) const {
  return MaterializeGraph(num_nodes_, stream_, EdgesAt(k));
}

std::vector<EdgeUpdate> SnapshotSeries::DeltaBetween(std::size_t from,
                                                     std::size_t to) const {
  INCSR_CHECK(from <= to && to < cut_points_.size(),
              "DeltaBetween: bad snapshot range %zu..%zu", from, to);
  std::vector<EdgeUpdate> updates;
  updates.reserve(cut_points_[to] - cut_points_[from]);
  for (std::size_t k = cut_points_[from]; k < cut_points_[to]; ++k) {
    updates.push_back(
        {UpdateKind::kInsert, stream_[k].edge.src, stream_[k].edge.dst});
  }
  return updates;
}

}  // namespace incsr::graph
