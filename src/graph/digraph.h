// Dynamic directed graph with sorted in/out adjacency. This is the
// link-evolving substrate of the paper: a unit update inserts or deletes a
// single edge (i, j) in O(log d + d) while keeping both adjacency
// directions queryable — the incremental algorithms need in-neighbors for
// the transition matrix Q and out-neighbors for Theorem 4's affected-area
// expansion.
//
// Storage is copy-on-write at node granularity, mirroring la::ScoreStore:
// each node's adjacency pair lives in an immutable, reference-counted
// record behind a pointer table. Snapshot() publishes an immutable View by
// copying the POINTER TABLE only (O(n) shared_ptr bumps, never the O(n+m)
// adjacency payload), and the first mutation of a node shared with a View
// clones just that node's record. This is what lets the serving layer pin
// a byte-stable graph per epoch snapshot at O(nodes touched) cost instead
// of the former per-epoch O(n+m) deep copy. Copying a whole graph is
// likewise lazy: both sides keep the table and every record becomes
// shared, so value semantics are preserved while the payload copy is
// deferred to whichever side mutates a node first.
//
// Threading model (matches ScoreStore): ONE writer thread mutates; readers
// use Views obtained via a synchronizing handoff. The COW decision is a
// writer-private flag, not use_count(), so the graph is TSan-clean by
// design.
#ifndef INCSR_GRAPH_DIGRAPH_H_
#define INCSR_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/memory.h"
#include "common/status.h"

namespace incsr::graph {

/// Node identifier (dense, 0-based).
using NodeId = std::int32_t;

/// A directed edge src → dst.
struct Edge {
  NodeId src;
  NodeId dst;

  bool operator==(const Edge&) const = default;
  auto operator<=>(const Edge&) const = default;
};

/// Packs an edge into a 64-bit key (for dedup sets and overlay maps).
inline std::uint64_t EdgeKey(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

/// Mutable directed graph over a dense node-id space [0, num_nodes).
/// Parallel edges are rejected; self-loops are allowed (SimRank is defined
/// for them) but none of the shipped generators produce them.
class DynamicDiGraph {
  using AdjList = std::vector<NodeId, TrackedAllocator<NodeId>>;
  /// One node's adjacency, immutable once shared with a View or a copy.
  struct NodeRec {
    AdjList out;  // successors, sorted ascending
    AdjList in;   // predecessors, sorted ascending

    bool operator==(const NodeRec&) const = default;
  };
  using NodeTable = std::vector<std::shared_ptr<const NodeRec>,
                                TrackedAllocator<std::shared_ptr<const NodeRec>>>;

 public:
  /// Immutable adjacency snapshot. Copying a View copies the pointer
  /// table (O(n)); pinning an existing View via shared_ptr is O(1). Reads
  /// are valid and byte-stable for the View's lifetime.
  class View {
   public:
    View() = default;

    std::size_t num_nodes() const { return nodes_.size(); }
    std::size_t num_edges() const { return num_edges_; }

    bool HasNode(NodeId node) const {
      return node >= 0 && static_cast<std::size_t>(node) < nodes_.size();
    }

    std::span<const NodeId> OutNeighbors(NodeId node) const {
      INCSR_CHECK(HasNode(node), "OutNeighbors: bad node %d", node);
      const AdjList& adj = nodes_[static_cast<std::size_t>(node)]->out;
      return {adj.data(), adj.size()};
    }
    std::span<const NodeId> InNeighbors(NodeId node) const {
      INCSR_CHECK(HasNode(node), "InNeighbors: bad node %d", node);
      const AdjList& adj = nodes_[static_cast<std::size_t>(node)]->in;
      return {adj.data(), adj.size()};
    }

    std::size_t OutDegree(NodeId node) const {
      return OutNeighbors(node).size();
    }
    std::size_t InDegree(NodeId node) const { return InNeighbors(node).size(); }

    /// O(log out-degree) membership test (false on bad ids).
    bool HasEdge(NodeId src, NodeId dst) const;

    double AverageInDegree() const {
      return num_nodes() == 0 ? 0.0
                              : static_cast<double>(num_edges_) /
                                    static_cast<double>(num_nodes());
    }

    /// All edges in (src, dst) lexicographic order.
    std::vector<Edge> Edges() const;

   private:
    friend class DynamicDiGraph;
    NodeTable nodes_;
    std::size_t num_edges_ = 0;
  };

  DynamicDiGraph() = default;
  /// Graph with `num_nodes` isolated nodes.
  explicit DynamicDiGraph(std::size_t num_nodes) { AddNodes(num_nodes); }

  // Value semantics with lazy payload: a copy shares every node record
  // with its source, and BOTH sides mark everything shared so whichever
  // writer mutates a node first clones it. Source and copy never alias a
  // mutable record.
  DynamicDiGraph(const DynamicDiGraph& other);
  DynamicDiGraph& operator=(const DynamicDiGraph& other);
  DynamicDiGraph(DynamicDiGraph&&) = default;
  DynamicDiGraph& operator=(DynamicDiGraph&&) = default;

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Appends `count` isolated nodes; returns the first new id. O(count):
  /// fresh nodes share one global empty record until their first edge.
  NodeId AddNodes(std::size_t count = 1);

  /// True when `node` is a valid id.
  bool HasNode(NodeId node) const {
    return node >= 0 && static_cast<std::size_t>(node) < nodes_.size();
  }

  /// Inserts edge src → dst. Fails with OutOfRange on bad ids and
  /// AlreadyExists on duplicates.
  Status AddEdge(NodeId src, NodeId dst);
  /// Removes edge src → dst. Fails with OutOfRange / NotFound.
  Status RemoveEdge(NodeId src, NodeId dst);
  /// O(log out-degree) membership test (false on bad ids).
  bool HasEdge(NodeId src, NodeId dst) const;

  /// Successors of `node`, sorted ascending.
  std::span<const NodeId> OutNeighbors(NodeId node) const;
  /// Predecessors of `node`, sorted ascending.
  std::span<const NodeId> InNeighbors(NodeId node) const;

  std::size_t OutDegree(NodeId node) const { return OutNeighbors(node).size(); }
  std::size_t InDegree(NodeId node) const { return InNeighbors(node).size(); }

  /// Average in-degree (= |E| / |V|); the d in the paper's
  /// O(K(n·d + |AFF|)) bound.
  double AverageInDegree() const {
    return num_nodes() == 0
               ? 0.0
               : static_cast<double>(num_edges_) / static_cast<double>(num_nodes());
  }

  /// All edges in (src, dst) lexicographic order.
  std::vector<Edge> Edges() const;

  /// Publishes the current adjacency as an immutable View: copies the
  /// node pointer table and marks every record shared, so subsequent
  /// mutations copy-on-write. O(n) — never the O(n+m) payload. Writer
  /// thread only.
  View Snapshot();

  /// Cumulative adjacency bytes cloned by copy-on-write — the true
  /// incremental cost of keeping published Views byte-stable (reported as
  /// graph_bytes_copied by the serving stats).
  std::uint64_t cow_bytes_copied() const { return bytes_copied_; }

  bool operator==(const DynamicDiGraph& other) const;

 private:
  // Write entry point: clones the record first when shared (COW).
  NodeRec* MutableNode(std::size_t i);
  static const std::shared_ptr<const NodeRec>& EmptyRec();

  NodeTable nodes_;
  // Writer-private COW flags: shared_[i] is true iff node i's record is
  // referenced by a Snapshot()ed table, a copy, or the global empty
  // record, and must be cloned before mutation. Mutable so copying a
  // const source can mark it shared.
  mutable std::vector<std::uint8_t> shared_;
  std::size_t num_edges_ = 0;
  std::uint64_t bytes_copied_ = 0;
};

}  // namespace incsr::graph

#endif  // INCSR_GRAPH_DIGRAPH_H_
