// Dynamic directed graph with sorted in/out adjacency. This is the
// link-evolving substrate of the paper: a unit update inserts or deletes a
// single edge (i, j) in O(log d + d) while keeping both adjacency
// directions queryable — the incremental algorithms need in-neighbors for
// the transition matrix Q and out-neighbors for Theorem 4's affected-area
// expansion.
#ifndef INCSR_GRAPH_DIGRAPH_H_
#define INCSR_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/memory.h"
#include "common/status.h"

namespace incsr::graph {

/// Node identifier (dense, 0-based).
using NodeId = std::int32_t;

/// A directed edge src → dst.
struct Edge {
  NodeId src;
  NodeId dst;

  bool operator==(const Edge&) const = default;
  auto operator<=>(const Edge&) const = default;
};

/// Packs an edge into a 64-bit key (for dedup sets and overlay maps).
inline std::uint64_t EdgeKey(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

/// Mutable directed graph over a dense node-id space [0, num_nodes).
/// Parallel edges are rejected; self-loops are allowed (SimRank is defined
/// for them) but none of the shipped generators produce them.
class DynamicDiGraph {
 public:
  DynamicDiGraph() = default;
  /// Graph with `num_nodes` isolated nodes.
  explicit DynamicDiGraph(std::size_t num_nodes)
      : out_(num_nodes), in_(num_nodes) {}

  std::size_t num_nodes() const { return out_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Appends `count` isolated nodes; returns the first new id.
  NodeId AddNodes(std::size_t count = 1);

  /// True when `node` is a valid id.
  bool HasNode(NodeId node) const {
    return node >= 0 && static_cast<std::size_t>(node) < out_.size();
  }

  /// Inserts edge src → dst. Fails with OutOfRange on bad ids and
  /// AlreadyExists on duplicates.
  Status AddEdge(NodeId src, NodeId dst);
  /// Removes edge src → dst. Fails with OutOfRange / NotFound.
  Status RemoveEdge(NodeId src, NodeId dst);
  /// O(log out-degree) membership test (false on bad ids).
  bool HasEdge(NodeId src, NodeId dst) const;

  /// Successors of `node`, sorted ascending.
  std::span<const NodeId> OutNeighbors(NodeId node) const;
  /// Predecessors of `node`, sorted ascending.
  std::span<const NodeId> InNeighbors(NodeId node) const;

  std::size_t OutDegree(NodeId node) const { return OutNeighbors(node).size(); }
  std::size_t InDegree(NodeId node) const { return InNeighbors(node).size(); }

  /// Average in-degree (= |E| / |V|); the d in the paper's
  /// O(K(n·d + |AFF|)) bound.
  double AverageInDegree() const {
    return num_nodes() == 0
               ? 0.0
               : static_cast<double>(num_edges_) / static_cast<double>(num_nodes());
  }

  /// All edges in (src, dst) lexicographic order.
  std::vector<Edge> Edges() const;

  bool operator==(const DynamicDiGraph& other) const {
    return out_ == other.out_ && in_ == other.in_;
  }

 private:
  using AdjList = std::vector<NodeId, TrackedAllocator<NodeId>>;

  std::vector<AdjList, TrackedAllocator<AdjList>> out_;
  std::vector<AdjList, TrackedAllocator<AdjList>> in_;
  std::size_t num_edges_ = 0;
};

}  // namespace incsr::graph

#endif  // INCSR_GRAPH_DIGRAPH_H_
