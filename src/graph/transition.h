// Builders for the matrices SimRank is defined over:
//   - the backward transition matrix Q — row i of Q is uniform over the
//     in-neighbors of node i ([Q]_{i,j} = 1/|I(i)| iff edge j → i); this is
//     the row-normalized transpose of the adjacency matrix, and
//   - the 0/1 adjacency matrix A ([A]_{i,j} = 1 iff edge i → j), used by
//     the Lemma 1 path-counting interpretation and its tests.
#ifndef INCSR_GRAPH_TRANSITION_H_
#define INCSR_GRAPH_TRANSITION_H_

#include "graph/digraph.h"
#include "la/sparse_matrix.h"

namespace incsr::graph {

/// Backward transition matrix Q as a mutable row matrix (the incremental
/// engine rewrites exactly one row per unit edge update).
la::DynamicRowMatrix BuildTransition(const DynamicDiGraph& graph);

/// Backward transition matrix Q as an immutable CSR snapshot (batch
/// algorithms).
la::CsrMatrix BuildTransitionCsr(const DynamicDiGraph& graph);

/// Adjacency matrix A as CSR.
la::CsrMatrix BuildAdjacencyCsr(const DynamicDiGraph& graph);

/// Recomputes row `node` of Q from the graph's current in-neighbors —
/// the only part of Q a unit update on target `node` touches.
void RefreshTransitionRow(const DynamicDiGraph& graph, NodeId node,
                          la::DynamicRowMatrix* q);

}  // namespace incsr::graph

#endif  // INCSR_GRAPH_TRANSITION_H_
