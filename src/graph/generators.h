// Synthetic graph generators. The paper uses GraphGen-built synthetic
// graphs following the "linkage generation model" of Garg et al. (IMC'09)
// plus three SNAP/real datasets; offline, this module provides equivalent
// generative stand-ins (documented in DESIGN.md §4):
//   - ErdosRenyiGnm     — uniform G(n, m), baseline for tests,
//   - PreferentialCitation — time-ordered citation-style growth with
//     preferential attachment (heavy-tailed in-degrees, like DBLP/cit-HepPh),
//   - Rmat              — Kronecker-style skewed degree graphs,
//   - EvolvingLinkage   — node arrivals interleaved with preferential edge
//     arrivals between existing nodes (YouTube-like related-item graphs,
//     and the synthetic update streams of Fig. 2c).
// Every generator is deterministic in its seed and emits edges in
// timestamp order so SnapshotSeries can cut real "evolution" prefixes.
#ifndef INCSR_GRAPH_GENERATORS_H_
#define INCSR_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/digraph.h"

namespace incsr::graph {

/// An edge tagged with its arrival time (generation step).
struct TimestampedEdge {
  Edge edge;
  std::int64_t timestamp;

  bool operator==(const TimestampedEdge&) const = default;
};

/// Uniform directed G(n, m) without self-loops or duplicates; edges are
/// emitted in sample order. Fails when m exceeds n·(n−1).
Result<std::vector<TimestampedEdge>> ErdosRenyiGnm(std::size_t num_nodes,
                                                   std::size_t num_edges,
                                                   std::uint64_t seed);

/// Parameters for the citation-style growth model.
struct CitationModelParams {
  std::size_t num_nodes = 1000;
  /// Mean out-degree (citations made) of each arriving node.
  double mean_out_degree = 7.0;
  /// Probability a citation target is chosen preferentially by in-degree
  /// (the remainder is uniform over existing nodes).
  double preferential_mix = 0.75;
  std::uint64_t seed = 1;
};

/// Citation-style growth: node t arrives at time t and cites a random
/// number (1 + Poisson-ish) of earlier nodes, preferentially the already
/// well-cited ones. Produces heavy-tailed in-degree like DBLP/cit-HepPh.
Result<std::vector<TimestampedEdge>> PreferentialCitation(
    const CitationModelParams& params);

/// Parameters for R-MAT (recursive matrix) generation.
struct RmatParams {
  /// Number of nodes is 2^scale.
  int scale = 10;
  std::size_t num_edges = 8000;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
  std::uint64_t seed = 1;
};

/// R-MAT generator (self-loops and duplicates rejected and resampled).
Result<std::vector<TimestampedEdge>> Rmat(const RmatParams& params);

/// Parameters for the evolving linkage model.
struct EvolvingLinkageParams {
  std::size_t num_nodes = 1000;
  std::size_t num_edges = 6000;
  /// Fraction of edge endpoints chosen preferentially by degree.
  double preferential_mix = 0.6;
  /// Number of fully connected seed nodes the process starts from.
  std::size_t seed_nodes = 5;
  /// Number of communities (node id mod num_communities). Real
  /// related-item graphs are strongly clustered, which is what keeps
  /// SimRank's affected areas small under link updates; 1 disables
  /// clustering.
  std::size_t num_communities = 1;
  /// Probability that both endpoints of an edge come from one community.
  double intra_community_prob = 0.9;
  std::uint64_t seed = 1;
};

/// Linkage-model stand-in (Garg et al. IMC'09 role): nodes arrive over
/// time; each step adds either a new node with an edge or an edge between
/// existing nodes with preferentially chosen endpoints.
Result<std::vector<TimestampedEdge>> EvolvingLinkage(
    const EvolvingLinkageParams& params);

/// Materializes a graph over `num_nodes` nodes from the first `prefix`
/// timestamped edges (the whole stream when prefix == npos). Duplicate
/// edges in the stream are ignored.
DynamicDiGraph MaterializeGraph(std::size_t num_nodes,
                                const std::vector<TimestampedEdge>& edges,
                                std::size_t prefix = static_cast<std::size_t>(-1));

}  // namespace incsr::graph

#endif  // INCSR_GRAPH_GENERATORS_H_
