#include "graph/transition.h"

#include <tuple>
#include <vector>

namespace incsr::graph {

la::DynamicRowMatrix BuildTransition(const DynamicDiGraph& graph) {
  const std::size_t n = graph.num_nodes();
  la::DynamicRowMatrix q(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    RefreshTransitionRow(graph, static_cast<NodeId>(i), &q);
  }
  return q;
}

la::CsrMatrix BuildTransitionCsr(const DynamicDiGraph& graph) {
  const std::size_t n = graph.num_nodes();
  std::vector<std::tuple<std::int32_t, std::int32_t, double>> triplets;
  triplets.reserve(graph.num_edges());
  for (std::size_t i = 0; i < n; ++i) {
    auto in = graph.InNeighbors(static_cast<NodeId>(i));
    if (in.empty()) continue;
    const double w = 1.0 / static_cast<double>(in.size());
    for (NodeId j : in) {
      triplets.emplace_back(static_cast<std::int32_t>(i), j, w);
    }
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

la::CsrMatrix BuildAdjacencyCsr(const DynamicDiGraph& graph) {
  const std::size_t n = graph.num_nodes();
  std::vector<std::tuple<std::int32_t, std::int32_t, double>> triplets;
  triplets.reserve(graph.num_edges());
  for (std::size_t u = 0; u < n; ++u) {
    for (NodeId v : graph.OutNeighbors(static_cast<NodeId>(u))) {
      triplets.emplace_back(static_cast<std::int32_t>(u), v, 1.0);
    }
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

void RefreshTransitionRow(const DynamicDiGraph& graph, NodeId node,
                          la::DynamicRowMatrix* q) {
  INCSR_CHECK(q != nullptr && graph.HasNode(node),
              "RefreshTransitionRow: bad arguments");
  auto in = graph.InNeighbors(node);
  la::TrackedEntries entries;
  entries.reserve(in.size());
  if (!in.empty()) {
    const double w = 1.0 / static_cast<double>(in.size());
    for (NodeId j : in) entries.push_back({j, w});
  }
  q->SetRow(static_cast<std::size_t>(node), std::move(entries));
}

}  // namespace incsr::graph
