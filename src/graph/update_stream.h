// Edge-update workloads: the ΔG of the paper. A batch update is an ordered
// sequence of unit insertions/deletions; the paper's incremental algorithms
// process them one unit update at a time (Section V, opening).
#ifndef INCSR_GRAPH_UPDATE_STREAM_H_
#define INCSR_GRAPH_UPDATE_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/digraph.h"

namespace incsr::graph {

/// Kind of unit link update.
enum class UpdateKind { kInsert, kDelete };

/// A unit link update: insert or delete edge (src → dst).
struct EdgeUpdate {
  UpdateKind kind;
  NodeId src;
  NodeId dst;

  bool operator==(const EdgeUpdate&) const = default;
};

/// "insert(3->7)" / "delete(3->7)".
std::string ToString(const EdgeUpdate& update);

/// Parses an update stream in the text format the CLI and test fixtures
/// use: one update per line, "+ src dst" (insert) or "- src dst" (delete);
/// '#' starts a comment; blank lines are ignored.
Result<std::vector<EdgeUpdate>> ParseUpdateStream(const std::string& text);

/// Serializes updates into the ParseUpdateStream format.
std::string FormatUpdateStream(const std::vector<EdgeUpdate>& updates);

/// Samples `count` distinct non-edges of `graph` uniformly (never
/// self-loops) and returns them as insertions. Fails if the graph has too
/// few missing edges.
Result<std::vector<EdgeUpdate>> SampleInsertions(const DynamicDiGraph& graph,
                                                 std::size_t count, Rng* rng);

/// Samples `count` distinct existing edges uniformly and returns them as
/// deletions. Fails if count exceeds the edge count.
Result<std::vector<EdgeUpdate>> SampleDeletions(const DynamicDiGraph& graph,
                                                std::size_t count, Rng* rng);

/// Applies a sequence of updates to a graph (strict: every insert must be
/// new, every delete must exist).
Status ApplyUpdates(const std::vector<EdgeUpdate>& updates,
                    DynamicDiGraph* graph);

/// Computes the update sequence transforming `from` into `to` over the same
/// node set: deletions of edges only in `from`, then insertions of edges
/// only in `to`.
Result<std::vector<EdgeUpdate>> DiffGraphs(const DynamicDiGraph& from,
                                           const DynamicDiGraph& to);

}  // namespace incsr::graph

#endif  // INCSR_GRAPH_UPDATE_STREAM_H_
