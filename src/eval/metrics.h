// Accuracy metrics comparing an approximate similarity matrix against an
// exact baseline: absolute-error summaries, top-k pair extraction, top-k
// overlap, and the NDCG@k measure the paper's Fig. 4 reports (following
// the protocol of Li et al. [1]: rank the top-k node-pairs by the
// candidate's scores, take their relevance from the exact scores, and
// normalize by the ideal ranking).
#ifndef INCSR_EVAL_METRICS_H_
#define INCSR_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "core/dynamic_simrank.h"
#include "la/dense_matrix.h"

namespace incsr::eval {

/// Largest |approx − exact| entry.
double MaxAbsError(const la::DenseMatrix& approx, const la::DenseMatrix& exact);

/// Mean |approx − exact| over all entries.
double MeanAbsError(const la::DenseMatrix& approx,
                    const la::DenseMatrix& exact);

/// Top-k distinct pairs (a < b) of a symmetric score matrix, best first;
/// ties broken by (a, b) for determinism.
std::vector<core::ScoredPair> TopKPairs(const la::DenseMatrix& scores,
                                        std::size_t k);

/// |top-k(approx) ∩ top-k(exact)| / k.
double TopKOverlap(const la::DenseMatrix& approx, const la::DenseMatrix& exact,
                   std::size_t k);

/// NDCG@k of the candidate's top-k node-pairs, with graded relevance taken
/// from the exact scores (gain 2^rel − 1, discount log2(position + 1)).
/// Returns 1.0 when the candidate ranks the pairs ideally.
Result<double> NdcgAtK(const la::DenseMatrix& approx,
                       const la::DenseMatrix& exact, std::size_t k);

}  // namespace incsr::eval

#endif  // INCSR_EVAL_METRICS_H_
