#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace incsr::eval {

double MaxAbsError(const la::DenseMatrix& approx,
                   const la::DenseMatrix& exact) {
  return la::MaxAbsDiff(approx, exact);
}

double MeanAbsError(const la::DenseMatrix& approx,
                    const la::DenseMatrix& exact) {
  INCSR_CHECK(approx.rows() == exact.rows() && approx.cols() == exact.cols(),
              "MeanAbsError shape mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < approx.rows(); ++i) {
    for (std::size_t j = 0; j < approx.cols(); ++j) {
      total += std::fabs(approx(i, j) - exact(i, j));
    }
  }
  return total / (static_cast<double>(approx.rows()) *
                  static_cast<double>(approx.cols()));
}

std::vector<core::ScoredPair> TopKPairs(const la::DenseMatrix& scores,
                                        std::size_t k) {
  INCSR_CHECK(scores.rows() == scores.cols(), "TopKPairs: square matrix only");
  const std::size_t n = scores.rows();
  auto better = [](const core::ScoredPair& x, const core::ScoredPair& y) {
    if (x.score != y.score) return x.score > y.score;
    return std::pair(x.a, x.b) < std::pair(y.a, y.b);
  };
  std::vector<core::ScoredPair> heap;
  for (std::size_t a = 0; a < n; ++a) {
    const double* row = scores.RowPtr(a);
    for (std::size_t b = a + 1; b < n; ++b) {
      core::ScoredPair cand{static_cast<graph::NodeId>(a),
                            static_cast<graph::NodeId>(b), row[b]};
      if (heap.size() < k) {
        heap.push_back(cand);
        std::push_heap(heap.begin(), heap.end(), better);
      } else if (!heap.empty() && better(cand, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), better);
        heap.back() = cand;
        std::push_heap(heap.begin(), heap.end(), better);
      }
    }
  }
  std::sort_heap(heap.begin(), heap.end(), better);
  return heap;
}

double TopKOverlap(const la::DenseMatrix& approx, const la::DenseMatrix& exact,
                   std::size_t k) {
  auto a = TopKPairs(approx, k);
  auto b = TopKPairs(exact, k);
  if (a.empty() || b.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& pair : a) {
    for (const auto& other : b) {
      if (pair.a == other.a && pair.b == other.b) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(a.size());
}

Result<double> NdcgAtK(const la::DenseMatrix& approx,
                       const la::DenseMatrix& exact, std::size_t k) {
  if (approx.rows() != exact.rows() || approx.cols() != exact.cols()) {
    return Status::InvalidArgument("NdcgAtK: shape mismatch");
  }
  if (k == 0) return Status::InvalidArgument("NdcgAtK: k must be positive");
  auto gain = [](double rel) { return std::exp2(rel) - 1.0; };
  auto discounted = [&](const std::vector<core::ScoredPair>& ranking) {
    double dcg = 0.0;
    for (std::size_t pos = 0; pos < ranking.size(); ++pos) {
      double rel = exact(static_cast<std::size_t>(ranking[pos].a),
                         static_cast<std::size_t>(ranking[pos].b));
      dcg += gain(rel) / std::log2(static_cast<double>(pos) + 2.0);
    }
    return dcg;
  };
  double dcg = discounted(TopKPairs(approx, k));
  double idcg = discounted(TopKPairs(exact, k));
  if (idcg == 0.0) {
    // No positive relevance anywhere: any ranking is trivially ideal.
    return 1.0;
  }
  return dcg / idcg;
}

}  // namespace incsr::eval
