// Status and Result<T>: exception-free error propagation for fallible
// operations, in the style of RocksDB's rocksdb::Status. Core numeric
// kernels never throw; constructors that can fail are replaced by static
// factory functions returning Result<T>.
#ifndef INCSR_COMMON_STATUS_H_
#define INCSR_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace incsr {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kIoError,
  kNotSupported,
  kInternal,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: either OK or a code plus message.
///
/// Usage:
///   Status s = graph.RemoveEdge(u, v);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never holds both.
///
/// Usage:
///   Result<DynamicDiGraph> g = ReadEdgeList(path);
///   if (!g.ok()) return g.status();
///   Use(g.value());
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status (failure). Aborts on an OK status,
  /// which would make the Result hold neither value nor error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    INCSR_CHECK(!std::get<Status>(repr_).ok(),
                "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; OK if the Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The contained value. Must hold a value (check ok() first).
  const T& value() const& {
    INCSR_CHECK(ok(), "Result::value() called on error: %s",
                std::get<Status>(repr_).ToString().c_str());
    return std::get<T>(repr_);
  }
  T& value() & {
    INCSR_CHECK(ok(), "Result::value() called on error: %s",
                std::get<Status>(repr_).ToString().c_str());
    return std::get<T>(repr_);
  }
  T&& value() && {
    INCSR_CHECK(ok(), "Result::value() called on error: %s",
                std::get<Status>(repr_).ToString().c_str());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define INCSR_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::incsr::Status _incsr_status = (expr);          \
    if (!_incsr_status.ok()) return _incsr_status;   \
  } while (false)

}  // namespace incsr

#endif  // INCSR_COMMON_STATUS_H_
