#include "common/rng.h"

#include <cmath>

namespace incsr {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  INCSR_CHECK(bound > 0, "NextBounded requires bound > 0");
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t threshold = (-bound) % bound;
  for (;;) {
    std::uint64_t r = NextU64();
    unsigned __int128 m =
        static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(bound);
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  INCSR_CHECK(lo <= hi, "NextInt requires lo <= hi");
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::uint64_t Rng::NextPoisson(double lambda) {
  if (lambda <= 0.0) return 0;
  const double limit = std::exp(-lambda);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > limit);
  return k - 1;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

}  // namespace incsr
