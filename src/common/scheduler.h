// Scheduler — the repo's parallelism primitive: a persistent worker set
// with a work-stealing ticket scheduler. It replaces the single-region
// ThreadPool: where the old pool admitted one parallel region at a time
// (a busy pool degraded every other applier to inline-serial), the
// scheduler lets any number of concurrent regions share the worker set.
//
// Determinism contract (unchanged from ThreadPool): ParallelForChunks
// runs a caller-chosen number of contiguous chunks whose geometry depends
// only on (begin, end, num_chunks) — never on the thread count, the
// worker that runs a chunk, or scheduling order. Kernels that merge
// per-chunk accumulators in chunk order therefore produce
// bitwise-identical results at any parallelism, including the serial
// fallback, as long as they derive num_chunks from the data shape alone
// (see PlanChunks). Which worker executes which chunk is unspecified;
// only the chunk geometry and the caller's merge order are.
//
// Scheduling model: a region is an atomic chunk cursor shared by every
// participant — claiming a chunk is one fetch_add, so work balances at
// chunk granularity no matter which workers show up. The submitter
// always drains the cursor itself (a region never depends on a worker
// being free), and additionally publishes up to max_threads - 1
// *tickets* ("come help with this region") into per-worker ticket rings.
// Idle workers pop their own ring first and steal from the others'
// rings, so K concurrent regions from independent appliers interleave
// across the worker set instead of convoying or falling back to serial.
// Tickets are advisory: a dropped or stale ticket (ring full, or the
// region finished first) affects load balance only, never correctness.
//
// Shard-group affinity: a thread that calls BindCurrentThreadToGroup(g)
// gets a stable home worker (g mod workers), and its tickets target
// workers (home, home+1, ...). A hot shard therefore saturates its own
// neighborhood first and only spills onto other shards' home workers via
// stealing when they are idle — it cannot starve another group's
// submissions out of the ring they are published to.
//
// Nested submissions (a ParallelFor from inside a chunk fn) run their
// chunks inline on the calling thread — same geometry, same results, no
// deadlock. set_exclusive_regions(true) restores the legacy ThreadPool
// admission policy (one region at a time, busy => inline) so benches can
// A/B the old cliff against stealing on the same binary.
#ifndef INCSR_COMMON_SCHEDULER_H_
#define INCSR_COMMON_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace incsr {

/// Monotonic scheduler counters (process lifetime; benches and tests
/// read deltas). regions = every ParallelForChunks call; each one is
/// also counted in exactly one of the parallel/inline buckets.
struct SchedulerStats {
  std::uint64_t regions = 0;
  /// Regions that published tickets and ran on the worker set.
  std::uint64_t regions_parallel = 0;
  /// Inline because the region was trivially serial (one chunk,
  /// max_threads <= 1, or a scheduler with no workers).
  std::uint64_t regions_inline_serial = 0;
  /// Inline because the submitter was already inside a region (nested).
  std::uint64_t regions_inline_nested = 0;
  /// Inline because exclusive-regions (legacy ThreadPool) mode found
  /// another region in flight. Always 0 in work-stealing mode — the
  /// contention bench's headline regression signal.
  std::uint64_t regions_inline_busy = 0;
  std::uint64_t tickets_pushed = 0;
  /// Tickets dropped on a full ring (load-balance loss only).
  std::uint64_t tickets_dropped = 0;
  /// Tickets a worker popped from another worker's ring.
  std::uint64_t steals = 0;
};

/// Persistent work-stealing worker set. See file comment for the
/// determinism, scheduling, and affinity contracts.
class Scheduler {
 public:
  /// fn(chunk, begin, end) over one contiguous chunk of the range.
  using ChunkFn =
      std::function<void(std::size_t, std::size_t, std::size_t)>;
  /// fn(begin, end) over one contiguous sub-range.
  using RangeFn = std::function<void(std::size_t, std::size_t)>;

  /// A scheduler with `num_threads` total parallelism: the submitting
  /// thread participates, so num_threads - 1 workers are spawned (0
  /// workers for num_threads <= 1 — every region then runs inline).
  explicit Scheduler(std::size_t num_threads);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Total parallelism (workers + the submitting thread).
  std::size_t num_threads() const { return threads_.size() + 1; }

  /// Deterministic chunk plan: ceil(count / grain) chunks, clamped to
  /// [1, max_chunks] (0 for an empty range). Depends only on the
  /// arguments — use it to fix a kernel's merge tree independently of
  /// the thread count.
  static std::size_t PlanChunks(std::size_t count, std::size_t grain,
                                std::size_t max_chunks);

  /// Runs fn over `num_chunks` contiguous chunks of [begin, end), using
  /// at most `max_threads` threads (including the caller). Chunk c
  /// covers [begin + c·s, begin + (c+1)·s) with s = ceil(count /
  /// num_chunks); fn is never invoked for an empty chunk. Returns after
  /// every chunk has finished.
  void ParallelForChunks(std::size_t begin, std::size_t end,
                         std::size_t num_chunks, std::size_t max_threads,
                         const ChunkFn& fn);

  /// Convenience wrapper for kernels with disjoint writes (no merge, so
  /// chunk identity is irrelevant): partitions [begin, end) into chunks
  /// of at least `grain` elements, at most min(max_threads,
  /// num_threads()) of them.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   std::size_t max_threads, const RangeFn& fn);

  /// Thread count for a `num_threads` knob: `requested` if positive,
  /// else the INCSR_THREADS environment variable if set to a positive
  /// integer, else std::thread::hardware_concurrency() (at least 1).
  static std::size_t ResolveNumThreads(int requested);

  /// The parallelism a kernel ACTUALLY gets for a `num_threads` knob:
  /// ResolveNumThreads clamped to the Global scheduler's size (a region
  /// can never have more participants than workers + the caller).
  /// Reporting surfaces (CLI, benches) must print this, not the
  /// request, or thread-sweep numbers above the worker-set size get
  /// attributed to the wrong thread count.
  static std::size_t EffectiveNumThreads(int requested);

  /// The process-wide shared scheduler every kernel submits to. Sized
  /// once at first use to max(ResolveNumThreads(0), 4) — the floor
  /// keeps determinism and sanitizer tests exercising real cross-thread
  /// execution on small machines, and idle workers cost nothing.
  /// Deliberately leaked so worker shutdown never races static
  /// destruction in user code.
  static Scheduler& Global();

  /// Binds the calling thread to an affinity group: its regions' tickets
  /// start at home worker `group mod workers` instead of a rotating
  /// default. Appliers that share a scheduler (one per shard) bind
  /// distinct groups so a hot shard fills its own neighborhood first.
  /// Thread-local; pass a negative group to unbind.
  static void BindCurrentThreadToGroup(int group);
  /// The calling thread's bound group, or -1 if unbound.
  static int CurrentThreadGroup();

  /// Legacy ThreadPool admission policy for A/B benching: when true, at
  /// most one region runs on the workers at a time and a submission that
  /// finds the scheduler busy runs inline (counted in
  /// regions_inline_busy). Default false (work-stealing).
  void set_exclusive_regions(bool exclusive) {
    exclusive_regions_.store(exclusive, std::memory_order_relaxed);
  }
  bool exclusive_regions() const {
    return exclusive_regions_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the monotonic counters.
  SchedulerStats stats() const;

 private:
  // One parallel region: an atomic chunk cursor plus completion state.
  // Workers hold the Region via shared_ptr tickets, so a stale ticket
  // popped after the region completed claims nothing and never touches
  // a newer region's state.
  struct Region {
    const ChunkFn* fn = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t chunk_size = 0;
    std::size_t num_chunks = 0;
    std::size_t max_participants = 0;
    std::atomic<std::size_t> participants{1};  // the submitter
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> done_chunks{0};
    std::mutex mu;                // guards done_cv wakeups
    std::condition_variable done_cv;  // submitter: all chunks finished
  };
  class TicketRing;
  struct Worker;

  void WorkerLoop(std::size_t worker_index);
  // Claims a participation slot (so max_threads is honored) and drains.
  void RunTicket(Region* region);
  // Claims and runs chunks until the cursor is exhausted; the last
  // finisher signals region->done_cv.
  void Drain(Region* region);
  // Distributes `count` tickets for `region` across the per-worker
  // rings starting at the submitter's home worker, then wakes sleepers.
  void PublishTickets(const std::shared_ptr<Region>& region,
                      std::size_t count);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Sleep protocol: pending_tickets_ is incremented before a ticket is
  // pushed and decremented after one is popped (or on push failure), so
  // the idle predicate "pending_tickets_ > 0" can never miss published
  // work; the pusher takes sleep_mu_ (empty critical section) before
  // notifying so a worker between its predicate check and wait() cannot
  // lose the wakeup.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> pending_tickets_{0};
  // Workers currently blocked in sleep_cv_.wait. Publishers skip the
  // notify path entirely when it reads 0 — seq_cst on this counter and
  // pending_tickets_ makes "publisher sees no sleeper AND sleeper sees
  // no pending ticket" impossible (store-buffer litmus), so a worker
  // can never sleep through a ticket it was supposed to see.
  std::atomic<std::size_t> sleeping_workers_{0};
  std::atomic<bool> shutdown_{false};

  std::mutex exclusive_mu_;  // legacy one-region-at-a-time admission
  std::atomic<bool> exclusive_regions_{false};

  // Home-worker rotation for threads with no bound group.
  std::atomic<std::uint64_t> next_home_{0};

  std::atomic<std::uint64_t> regions_{0};
  std::atomic<std::uint64_t> regions_parallel_{0};
  std::atomic<std::uint64_t> regions_inline_serial_{0};
  std::atomic<std::uint64_t> regions_inline_nested_{0};
  std::atomic<std::uint64_t> regions_inline_busy_{0};
  std::atomic<std::uint64_t> tickets_pushed_{0};
  std::atomic<std::uint64_t> tickets_dropped_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace incsr

#endif  // INCSR_COMMON_SCHEDULER_H_
