// ThreadPool — the repo's single parallelism primitive: a persistent
// fixed-size worker pool with static range partitioning. It replaces the
// per-call std::thread spawning the parallel batch solver used to do and
// backs the row-parallel update kernels in core/.
//
// Determinism contract: ParallelForChunks runs a caller-chosen number of
// contiguous chunks whose geometry depends only on (begin, end,
// num_chunks) — never on the thread count or on scheduling. Kernels that
// merge per-chunk accumulators therefore produce bitwise-identical
// results at any parallelism, including the serial fallback, as long as
// they derive num_chunks from the data shape alone (see PlanChunks).
// Which worker executes which chunk is unspecified; only the chunk
// geometry and the caller's merge order are.
//
// Concurrency contract: any thread may submit a region. Regions never
// nest and never block each other — a submission that finds the pool busy
// (or is made from inside a worker) simply runs its chunks inline on the
// caller, which keeps the pool deadlock-free when several engines (e.g.
// two SimRankService appliers) share it. Workers idle on a condition
// variable between regions, so an idle pool costs nothing.
#ifndef INCSR_COMMON_THREAD_POOL_H_
#define INCSR_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace incsr {

/// Persistent worker pool. See file comment for the determinism and
/// concurrency contracts.
class ThreadPool {
 public:
  /// fn(chunk, begin, end) over one contiguous chunk of the range.
  using ChunkFn =
      std::function<void(std::size_t, std::size_t, std::size_t)>;
  /// fn(begin, end) over one contiguous sub-range.
  using RangeFn = std::function<void(std::size_t, std::size_t)>;

  /// A pool with `num_threads` total parallelism: the submitting thread
  /// participates, so num_threads - 1 workers are spawned (0 workers for
  /// num_threads <= 1 — every region then runs inline).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the submitting thread).
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Deterministic chunk plan: ceil(count / grain) chunks, clamped to
  /// [1, max_chunks] (0 for an empty range). Depends only on the
  /// arguments — use it to fix a kernel's merge tree independently of the
  /// thread count.
  static std::size_t PlanChunks(std::size_t count, std::size_t grain,
                                std::size_t max_chunks);

  /// Runs fn over `num_chunks` contiguous chunks of [begin, end), using
  /// at most `max_threads` threads (including the caller). Chunk c covers
  /// [begin + c·s, begin + (c+1)·s) with s = ceil(count / num_chunks);
  /// fn is never invoked for an empty chunk. Returns after every chunk
  /// has finished.
  void ParallelForChunks(std::size_t begin, std::size_t end,
                         std::size_t num_chunks, std::size_t max_threads,
                         const ChunkFn& fn);

  /// Convenience wrapper for kernels with disjoint writes (no merge, so
  /// chunk identity is irrelevant): partitions [begin, end) into chunks
  /// of at least `grain` elements, at most min(max_threads,
  /// num_threads()) of them.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   std::size_t max_threads, const RangeFn& fn);

  /// Thread count for a `num_threads` knob: `requested` if positive, else
  /// the INCSR_THREADS environment variable if set to a positive integer,
  /// else std::thread::hardware_concurrency() (at least 1).
  static std::size_t ResolveNumThreads(int requested);

  /// The parallelism a kernel ACTUALLY gets for a `num_threads` knob:
  /// ResolveNumThreads clamped to the Global pool's size (a region can
  /// never have more participants than workers + the caller). Reporting
  /// surfaces (CLI, benches) must print this, not the request, or
  /// thread-sweep numbers above the pool size get attributed to the
  /// wrong thread count.
  static std::size_t EffectiveNumThreads(int requested);

  /// The process-wide shared pool every kernel submits to. Sized once at
  /// first use to max(ResolveNumThreads(0), 4) — the floor keeps
  /// determinism and sanitizer tests exercising real cross-thread
  /// execution on small machines, and idle workers cost nothing.
  /// Deliberately leaked so worker shutdown never races static
  /// destruction in user code.
  static ThreadPool& Global();

 private:
  // One parallel region. Workers hold the Job via shared_ptr, so a late
  // worker that wakes after the region completed claims nothing and never
  // touches a newer region's state.
  struct Job {
    const ChunkFn* fn = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t chunk_size = 0;
    std::size_t num_chunks = 0;
    std::size_t max_participants = 0;
    std::atomic<std::size_t> participants{1};  // the submitter
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> done_chunks{0};
  };

  void WorkerLoop();
  // Claims and runs chunks until none remain; the last finisher signals
  // done_cv_. Workers first claim a participation slot so max_threads is
  // honored.
  void RunChunks(Job* job, bool is_submitter);

  std::mutex mu_;                  // job_, epoch_, shutdown_
  std::condition_variable work_cv_;  // workers: a new region was published
  std::condition_variable done_cv_;  // submitter: all chunks finished
  std::shared_ptr<Job> job_;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;

  std::mutex submit_mu_;  // one region at a time; busy => inline fallback
  std::vector<std::thread> workers_;
};

}  // namespace incsr

#endif  // INCSR_COMMON_THREAD_POOL_H_
