// Process-wide tracked-memory accounting. Library containers (Vector,
// DenseMatrix, CsrMatrix, graph adjacency) allocate through TrackedAllocator
// so an algorithm's *intermediate* working set can be measured, which is how
// the Fig. 3 memory experiment of the paper is reproduced. Tracking is a
// pair of relaxed atomics — negligible overhead, thread-safe counters.
#ifndef INCSR_COMMON_MEMORY_H_
#define INCSR_COMMON_MEMORY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <string>

namespace incsr {

/// Global tracked-allocation counters (bytes currently live and high-water
/// mark). All incsr containers report through this singleton.
class MemoryCounter {
 public:
  static MemoryCounter& Global();

  void Add(std::size_t bytes);
  void Sub(std::size_t bytes);

  /// Bytes currently live in tracked containers.
  std::int64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  /// High-water mark since the last ResetPeak().
  std::int64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  /// Sets the high-water mark back to the current live count.
  void ResetPeak();

 private:
  std::atomic<std::int64_t> current_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// STL-compatible allocator that reports to MemoryCounter::Global().
template <typename T>
class TrackedAllocator {
 public:
  using value_type = T;

  TrackedAllocator() = default;
  template <typename U>
  TrackedAllocator(const TrackedAllocator<U>&) {}  // NOLINT

  T* allocate(std::size_t n) {
    MemoryCounter::Global().Add(n * sizeof(T));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    MemoryCounter::Global().Sub(n * sizeof(T));
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const TrackedAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const TrackedAllocator<U>&) const {
    return false;
  }
};

/// RAII measurement window: records the live-byte baseline and peak delta
/// between construction and PeakDeltaBytes()/destruction.
///
/// Usage:
///   MemoryScope scope;
///   RunAlgorithm();
///   int64_t peak = scope.PeakDeltaBytes();  // intermediate working set
class MemoryScope {
 public:
  MemoryScope();

  /// Peak tracked bytes above the baseline observed since construction.
  std::int64_t PeakDeltaBytes() const;

 private:
  std::int64_t baseline_;
};

/// Formats a byte count as a human-readable string ("3.1 GB", "70.3 MB").
std::string HumanBytes(std::int64_t bytes);

}  // namespace incsr

#endif  // INCSR_COMMON_MEMORY_H_
