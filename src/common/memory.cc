#include "common/memory.h"

#include <cstdio>

namespace incsr {

MemoryCounter& MemoryCounter::Global() {
  static MemoryCounter counter;
  return counter;
}

void MemoryCounter::Add(std::size_t bytes) {
  std::int64_t now =
      current_.fetch_add(static_cast<std::int64_t>(bytes),
                         std::memory_order_relaxed) +
      static_cast<std::int64_t>(bytes);
  std::int64_t prev_peak = peak_.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, now,
                                      std::memory_order_relaxed)) {
  }
}

void MemoryCounter::Sub(std::size_t bytes) {
  current_.fetch_sub(static_cast<std::int64_t>(bytes),
                     std::memory_order_relaxed);
}

void MemoryCounter::ResetPeak() {
  peak_.store(current_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
}

MemoryScope::MemoryScope() {
  MemoryCounter::Global().ResetPeak();
  baseline_ = MemoryCounter::Global().current_bytes();
}

std::int64_t MemoryScope::PeakDeltaBytes() const {
  std::int64_t delta = MemoryCounter::Global().peak_bytes() - baseline_;
  return delta > 0 ? delta : 0;
}

std::string HumanBytes(std::int64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  }
  return buf;
}

}  // namespace incsr
