#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace incsr {

namespace {

// True while this thread is executing chunks of a region — for the
// lifetime of every pool worker, and scoped around the submitter's own
// chunk participation. A region submitted from inside either (nested
// parallelism) runs inline instead of deadlocking on the pool it is
// already part of; for the submitter the flag is also what prevents a
// nested ParallelForChunks from calling submit_mu_.try_lock() on a mutex
// the thread already owns (undefined behavior for std::mutex).
thread_local bool tls_in_pool_region = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::PlanChunks(std::size_t count, std::size_t grain,
                                   std::size_t max_chunks) {
  if (count == 0) return 0;
  grain = std::max<std::size_t>(grain, 1);
  max_chunks = std::max<std::size_t>(max_chunks, 1);
  return std::min(max_chunks, (count + grain - 1) / grain);
}

void ThreadPool::ParallelForChunks(std::size_t begin, std::size_t end,
                                   std::size_t num_chunks,
                                   std::size_t max_threads,
                                   const ChunkFn& fn) {
  if (begin >= end || num_chunks == 0) return;
  const std::size_t count = end - begin;
  const std::size_t chunk_size = (count + num_chunks - 1) / num_chunks;
  auto run_inline = [&] {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t lo = begin + c * chunk_size;
      if (lo >= end) break;
      fn(c, lo, std::min(end, lo + chunk_size));
    }
  };
  if (num_chunks == 1 || max_threads <= 1 || workers_.empty() ||
      tls_in_pool_region) {
    run_inline();
    return;
  }
  // One region at a time; a busy pool means another engine is mid-region,
  // so run inline rather than convoy behind it (same chunk geometry, same
  // results).
  if (!submit_mu_.try_lock()) {
    run_inline();
    return;
  }
  std::lock_guard<std::mutex> submit_lock(submit_mu_, std::adopt_lock);

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->begin = begin;
  job->end = end;
  job->chunk_size = chunk_size;
  job->num_chunks = num_chunks;
  job->max_participants = std::min(max_threads, workers_.size() + 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++epoch_;
  }
  work_cv_.notify_all();
  tls_in_pool_region = true;  // nested submissions from fn run inline
  RunChunks(job.get(), /*is_submitter=*/true);
  tls_in_pool_region = false;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&job] {
    return job->done_chunks.load(std::memory_order_acquire) ==
           job->num_chunks;
  });
  job_ = nullptr;
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             std::size_t grain, std::size_t max_threads,
                             const RangeFn& fn) {
  if (begin >= end) return;
  const std::size_t chunks = PlanChunks(
      end - begin, grain, std::min(max_threads, workers_.size() + 1));
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  ChunkFn body = [&fn](std::size_t, std::size_t lo, std::size_t hi) {
    fn(lo, hi);
  };
  ParallelForChunks(begin, end, chunks, max_threads, body);
}

void ThreadPool::RunChunks(Job* job, bool is_submitter) {
  if (!is_submitter) {
    const std::size_t slot =
        job->participants.fetch_add(1, std::memory_order_relaxed);
    if (slot >= job->max_participants) return;
  }
  for (;;) {
    const std::size_t c =
        job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->num_chunks) return;
    const std::size_t lo = job->begin + c * job->chunk_size;
    const std::size_t hi = std::min(job->end, lo + job->chunk_size);
    if (lo < hi) (*job->fn)(c, lo, hi);
    // acq_rel: the submitter's acquire read of done_chunks must observe
    // every write this chunk made.
    if (job->done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->num_chunks) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_region = true;
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen] {
        return shutdown_ || (job_ != nullptr && epoch_ != seen);
      });
      if (shutdown_) return;
      seen = epoch_;
      job = job_;
    }
    RunChunks(job.get(), /*is_submitter=*/false);
  }
}

std::size_t ThreadPool::ResolveNumThreads(int requested) {
  if (requested > 0) return static_cast<std::size_t>(requested);
  static const std::size_t kDefault = [] {
    if (const char* env = std::getenv("INCSR_THREADS")) {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && parsed > 0) {
        return static_cast<std::size_t>(parsed);
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t{1} : static_cast<std::size_t>(hw);
  }();
  return kDefault;
}

std::size_t ThreadPool::EffectiveNumThreads(int requested) {
  return std::min(ResolveNumThreads(requested), Global().num_threads());
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool =
      new ThreadPool(std::max<std::size_t>(ResolveNumThreads(0), 4));
  return *pool;
}

}  // namespace incsr
