// Assertion macros for internal invariants. INCSR_CHECK is always on;
// INCSR_DCHECK compiles out in NDEBUG builds. Both print a printf-style
// message and abort — they guard programmer errors, not runtime input
// (input validation uses Status).
#ifndef INCSR_COMMON_CHECK_H_
#define INCSR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace incsr::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace incsr::internal

#define INCSR_CHECK(cond, ...)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                    \
      std::fprintf(stderr, "  " __VA_ARGS__);                           \
      std::fprintf(stderr, "\n");                                       \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

#ifdef NDEBUG
#define INCSR_DCHECK(cond, ...) \
  do {                          \
  } while (false)
#else
#define INCSR_DCHECK(cond, ...) INCSR_CHECK(cond, __VA_ARGS__)
#endif

#endif  // INCSR_COMMON_CHECK_H_
