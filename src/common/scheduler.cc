#include "common/scheduler.h"

#include <algorithm>
#include <cstdlib>

#include "obs/trace.h"

namespace incsr {

namespace {

// True while this thread is executing chunks of a region (scoped around
// Drain for submitters and workers alike). A region submitted from
// inside one (nested parallelism) runs inline: same chunk geometry,
// same results, and the thread never blocks on workers that may all be
// busy executing the region it is itself part of.
thread_local bool tls_in_region = false;

// Affinity group of this thread; negative = unbound (rotating home).
thread_local int tls_group = -1;

}  // namespace

// Bounded MPMC ticket ring (Vyukov): every slot carries a sequence
// number that encodes which lap of the ring it is valid for, so pushes
// and pops are a single CAS each with no shared lock. Push fails on a
// full ring (the ticket is dropped — advisory only), pop fails on an
// empty one.
class Scheduler::TicketRing {
 public:
  explicit TicketRing(std::size_t capacity) : mask_(capacity - 1) {
    // capacity must be a power of two for the mask arithmetic.
    cells_ = std::make_unique<Cell[]>(capacity);
    for (std::size_t i = 0; i < capacity; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  bool TryPush(std::shared_ptr<Region> ticket) {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(
                pos, pos + 1, std::memory_order_relaxed)) {
          cell.ticket = std::move(ticket);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  std::shared_ptr<Region> TryPop() {
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(
                pos, pos + 1, std::memory_order_relaxed)) {
          std::shared_ptr<Region> out = std::move(cell.ticket);
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return out;
        }
      } else if (dif < 0) {
        return nullptr;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    std::shared_ptr<Region> ticket;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_;
  std::atomic<std::size_t> enqueue_pos_{0};
  std::atomic<std::size_t> dequeue_pos_{0};
};

struct Scheduler::Worker {
  // 128 outstanding tickets per worker is far beyond what concurrent
  // appliers produce (tickets per region <= workers); overflow only
  // drops load-balance hints, never work.
  TicketRing ring{128};
};

Scheduler::Scheduler(std::size_t num_threads) {
  const std::size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

Scheduler::~Scheduler() {
  shutdown_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
  // Unconsumed tickets (regions long since drained by their submitters)
  // are released with the rings.
}

std::size_t Scheduler::PlanChunks(std::size_t count, std::size_t grain,
                                  std::size_t max_chunks) {
  if (count == 0) return 0;
  grain = std::max<std::size_t>(grain, 1);
  max_chunks = std::max<std::size_t>(max_chunks, 1);
  return std::min(max_chunks, (count + grain - 1) / grain);
}

void Scheduler::ParallelForChunks(std::size_t begin, std::size_t end,
                                  std::size_t num_chunks,
                                  std::size_t max_threads,
                                  const ChunkFn& fn) {
  if (begin >= end || num_chunks == 0) return;
  const std::size_t count = end - begin;
  const std::size_t chunk_size = (count + num_chunks - 1) / num_chunks;
  auto run_inline = [&] {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t lo = begin + c * chunk_size;
      if (lo >= end) break;
      fn(c, lo, std::min(end, lo + chunk_size));
    }
  };
  regions_.fetch_add(1, std::memory_order_relaxed);
  if (num_chunks == 1 || max_threads <= 1 || workers_.empty()) {
    regions_inline_serial_.fetch_add(1, std::memory_order_relaxed);
    run_inline();
    return;
  }
  if (tls_in_region) {
    regions_inline_nested_.fetch_add(1, std::memory_order_relaxed);
    run_inline();
    return;
  }
  std::unique_lock<std::mutex> exclusive_lock(exclusive_mu_,
                                              std::defer_lock);
  if (exclusive_regions_.load(std::memory_order_relaxed)) {
    // Legacy ThreadPool admission: one region at a time; busy => the
    // old inline-serial cliff the contention bench measures against.
    if (!exclusive_lock.try_lock()) {
      regions_inline_busy_.fetch_add(1, std::memory_order_relaxed);
      run_inline();
      return;
    }
  }

  auto region = std::make_shared<Region>();
  region->fn = &fn;
  region->begin = begin;
  region->end = end;
  region->chunk_size = chunk_size;
  region->num_chunks = num_chunks;
  region->max_participants = std::min(max_threads, num_threads());
  const std::size_t tickets =
      std::min(region->max_participants - 1, num_chunks - 1);
  regions_parallel_.fetch_add(1, std::memory_order_relaxed);
  // Submitter-side span over the whole region: publish + own drain +
  // completion wait, so the duration is the region's critical path.
  TRACE_SCOPE_ARG(kSchedRegion, num_chunks);
  PublishTickets(region, tickets);
  // The submitter drains the cursor itself — region completion never
  // depends on a worker picking a ticket up.
  Drain(region.get());
  if (region->done_chunks.load(std::memory_order_acquire) != num_chunks) {
    std::unique_lock<std::mutex> lock(region->mu);
    region->done_cv.wait(lock, [&region] {
      return region->done_chunks.load(std::memory_order_acquire) ==
             region->num_chunks;
    });
  }
}

void Scheduler::ParallelFor(std::size_t begin, std::size_t end,
                            std::size_t grain, std::size_t max_threads,
                            const RangeFn& fn) {
  if (begin >= end) return;
  const std::size_t chunks = PlanChunks(
      end - begin, grain, std::min(max_threads, num_threads()));
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  ChunkFn body = [&fn](std::size_t, std::size_t lo, std::size_t hi) {
    fn(lo, hi);
  };
  ParallelForChunks(begin, end, chunks, max_threads, body);
}

void Scheduler::PublishTickets(const std::shared_ptr<Region>& region,
                               std::size_t count) {
  const std::size_t num_workers = workers_.size();
  const std::size_t home =
      tls_group >= 0
          ? static_cast<std::size_t>(tls_group) % num_workers
          : static_cast<std::size_t>(next_home_.fetch_add(
                1, std::memory_order_relaxed)) %
                num_workers;
  count = std::min(count, num_workers);
  std::size_t pushed = 0;
  for (std::size_t k = 0; k < count; ++k) {
    // Increment before the push so a worker's idle predicate can never
    // observe the ticket without the pending count that keeps it awake.
    // seq_cst pairs with the sleeping_workers_ handshake (see header).
    pending_tickets_.fetch_add(1, std::memory_order_seq_cst);
    if (workers_[(home + k) % num_workers]->ring.TryPush(region)) {
      ++pushed;
    } else {
      pending_tickets_.fetch_sub(1, std::memory_order_relaxed);
      tickets_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (pushed > 0) {
    tickets_pushed_.fetch_add(pushed, std::memory_order_relaxed);
    // Already-awake workers poll the rings themselves; only actual
    // sleepers need a futex round-trip. The seq_cst pending/sleeping
    // handshake makes the load safe: a worker that this load missed is
    // guaranteed to see pending_tickets_ > 0 before it can sleep.
    const std::size_t sleepers =
        sleeping_workers_.load(std::memory_order_seq_cst);
    if (sleepers > 0) {
      {
        // Empty critical section: serializes with a worker that checked
        // the predicate and is about to wait, so the notifies below
        // cannot land in that gap and get lost.
        std::lock_guard<std::mutex> lock(sleep_mu_);
      }
      // One wake per ticket, not notify_all: a woken worker drains every
      // ring before re-sleeping and tickets are advisory anyway (the
      // submitter always drains its own region), so waking exactly as
      // many sleepers as there are new tickets is enough — and spares
      // the rest a spurious wake per region.
      const std::size_t wakes = std::min(pushed, sleepers);
      for (std::size_t k = 0; k < wakes; ++k) sleep_cv_.notify_one();
    }
  }
}

void Scheduler::RunTicket(Region* region) {
  const std::size_t slot =
      region->participants.fetch_add(1, std::memory_order_relaxed);
  if (slot >= region->max_participants) return;
  Drain(region);
}

void Scheduler::Drain(Region* region) {
  const bool was_in_region = tls_in_region;
  tls_in_region = true;
  for (;;) {
    const std::size_t c =
        region->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= region->num_chunks) break;
    const std::size_t lo = region->begin + c * region->chunk_size;
    const std::size_t hi = std::min(region->end, lo + region->chunk_size);
    if (lo < hi) (*region->fn)(c, lo, hi);
    // acq_rel: the submitter's acquire read of done_chunks must observe
    // every write this chunk made.
    if (region->done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        region->num_chunks) {
      std::lock_guard<std::mutex> lock(region->mu);
      region->done_cv.notify_all();
    }
  }
  tls_in_region = was_in_region;
}

void Scheduler::WorkerLoop(std::size_t worker_index) {
  const std::size_t num_workers = workers_.size();
  for (;;) {
    std::shared_ptr<Region> ticket =
        workers_[worker_index]->ring.TryPop();
    if (!ticket) {
      for (std::size_t k = 1; k < num_workers && !ticket; ++k) {
        ticket = workers_[(worker_index + k) % num_workers]->ring.TryPop();
        if (ticket) {
          steals_.fetch_add(1, std::memory_order_relaxed);
          TRACE_COUNTER(kSchedSteal, 1);
        }
      }
    }
    if (ticket) {
      pending_tickets_.fetch_sub(1, std::memory_order_relaxed);
      RunTicket(ticket.get());
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleeping_workers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lock, [this] {
      return shutdown_.load(std::memory_order_relaxed) ||
             pending_tickets_.load(std::memory_order_seq_cst) > 0;
    });
    sleeping_workers_.fetch_sub(1, std::memory_order_seq_cst);
    if (shutdown_.load(std::memory_order_relaxed)) return;
  }
}

std::size_t Scheduler::ResolveNumThreads(int requested) {
  if (requested > 0) return static_cast<std::size_t>(requested);
  static const std::size_t kDefault = [] {
    if (const char* env = std::getenv("INCSR_THREADS")) {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && parsed > 0) {
        return static_cast<std::size_t>(parsed);
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t{1} : static_cast<std::size_t>(hw);
  }();
  return kDefault;
}

std::size_t Scheduler::EffectiveNumThreads(int requested) {
  return std::min(ResolveNumThreads(requested), Global().num_threads());
}

Scheduler& Scheduler::Global() {
  static Scheduler* scheduler =
      new Scheduler(std::max<std::size_t>(ResolveNumThreads(0), 4));
  return *scheduler;
}

void Scheduler::BindCurrentThreadToGroup(int group) { tls_group = group; }

int Scheduler::CurrentThreadGroup() { return tls_group; }

SchedulerStats Scheduler::stats() const {
  SchedulerStats out;
  out.regions = regions_.load(std::memory_order_relaxed);
  out.regions_parallel = regions_parallel_.load(std::memory_order_relaxed);
  out.regions_inline_serial =
      regions_inline_serial_.load(std::memory_order_relaxed);
  out.regions_inline_nested =
      regions_inline_nested_.load(std::memory_order_relaxed);
  out.regions_inline_busy =
      regions_inline_busy_.load(std::memory_order_relaxed);
  out.tickets_pushed = tickets_pushed_.load(std::memory_order_relaxed);
  out.tickets_dropped = tickets_dropped_.load(std::memory_order_relaxed);
  out.steals = steals_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace incsr
