// Deterministic, seedable random number generation (SplitMix64 seeding a
// xoshiro256** core). All graph generators and workload builders draw from
// Rng so every experiment is reproducible from a single seed; std::mt19937
// is avoided because its stream differs across standard library versions
// for the distribution adaptors.
#ifndef INCSR_COMMON_RNG_H_
#define INCSR_COMMON_RNG_H_

#include <cstdint>

#include "common/check.h"

namespace incsr {

/// xoshiro256** PRNG with SplitMix64 seed expansion.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform integer in [0, bound). bound must be > 0. Uses rejection
  /// sampling (Lemire) so the distribution is exactly uniform.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Poisson-distributed count with the given mean (Knuth's method;
  /// intended for small lambda such as per-node citation budgets).
  std::uint64_t NextPoisson(double lambda);

 private:
  std::uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace incsr

#endif  // INCSR_COMMON_RNG_H_
