// Monotonic wall-clock timing for the benchmark harnesses.
#ifndef INCSR_COMMON_TIMER_H_
#define INCSR_COMMON_TIMER_H_

#include <chrono>

namespace incsr {

/// Stopwatch over std::chrono::steady_clock. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace incsr

#endif  // INCSR_COMMON_TIMER_H_
