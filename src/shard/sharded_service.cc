#include "shard/sharded_service.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/scheduler.h"
#include "common/timer.h"
#include "la/dense_matrix.h"
#include "la/score_store.h"

namespace incsr::shard {

namespace {

using core::ScoredPairRanksBefore;

}  // namespace

Result<std::unique_ptr<ShardedSimRankService>> ShardedSimRankService::Create(
    const graph::DynamicDiGraph& graph,
    const simrank::SimRankOptions& sr_options,
    const ShardedServiceOptions& options, core::UpdateAlgorithm algorithm) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  ShardPlan plan = ShardPlan::Build(graph, options.num_shards);
  std::unique_ptr<ShardedSimRankService> sharded(new ShardedSimRankService(
      std::move(plan), sr_options, options, algorithm));
  sharded->services_.resize(sharded->plan_.num_shards());
  for (std::size_t s = 0; s < sharded->plan_.num_shards(); ++s) {
    graph::DynamicDiGraph sub = sharded->plan_.BuildSubgraph(graph, s);
    Result<core::DynamicSimRank> index =
        core::DynamicSimRank::Create(std::move(sub), sr_options, algorithm);
    if (!index.ok()) return index.status();
    Result<std::unique_ptr<service::SimRankService>> svc =
        service::SimRankService::Create(std::move(index).value(),
                                        sharded->PerShardOptions(s));
    if (!svc.ok()) return svc.status();
    sharded->services_[s] = std::move(svc).value();
  }
  return sharded;
}

ShardedSimRankService::ShardedSimRankService(
    ShardPlan plan, const simrank::SimRankOptions& sr_options,
    const ShardedServiceOptions& options, core::UpdateAlgorithm algorithm)
    : sr_options_(sr_options),
      options_(options),
      algorithm_(algorithm),
      plan_(std::move(plan)) {}

ShardedSimRankService::~ShardedSimRankService() { Stop(); }

service::ServiceOptions ShardedSimRankService::PerShardOptions(
    std::size_t slot) const {
  service::ServiceOptions per_shard = options_.per_shard;
  if (per_shard.scheduler_group < 0) {
    // Each shard slot gets its own scheduler affinity group, so the K
    // concurrent appliers home their kernels on disjoint worker
    // neighborhoods (a hot shard spills into the others only by
    // stealing). Slot ids are stable across merges — the merged shard
    // keeps the surviving slot's group.
    per_shard.scheduler_group = static_cast<int>(slot);
  }
  return per_shard;
}

Status ShardedSimRankService::Submit(const graph::EdgeUpdate& update) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (!plan_.HasNode(update.src) || !plan_.HasNode(update.dst)) {
      // The single service accepts such an update and counts it failed in
      // the applier; the router can tell immediately. Same net effect.
      router_failed_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    const std::size_t src_shard = plan_.ShardOf(update.src);
    const std::size_t dst_shard = plan_.ShardOf(update.dst);
    if (src_shard == dst_shard) {
      return services_[src_shard]->Submit(
          {update.kind, plan_.ToLocal(update.src), plan_.ToLocal(update.dst)});
    }
    if (update.kind == graph::UpdateKind::kDelete) {
      // No edge can exist across shards; drop and count, mirroring the
      // single service's applier-side validation.
      router_failed_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }
  // Cross-shard insert: the partition must change. Take the lock
  // exclusively and re-check — another writer may have merged these
  // shards (or a superset) while we waited.
  std::unique_lock<std::shared_mutex> lock(mu_);
  const std::size_t src_shard = plan_.ShardOf(update.src);
  const std::size_t dst_shard = plan_.ShardOf(update.dst);
  if (src_shard == dst_shard) {
    return services_[src_shard]->Submit(
        {update.kind, plan_.ToLocal(update.src), plan_.ToLocal(update.dst)});
  }
  return MergeAndSubmit(update);
}

Status ShardedSimRankService::SubmitBatch(
    const std::vector<graph::EdgeUpdate>& updates) {
  for (const graph::EdgeUpdate& update : updates) {
    INCSR_RETURN_IF_ERROR(Submit(update));
  }
  return Status::OK();
}

Status ShardedSimRankService::MergeAndSubmit(const graph::EdgeUpdate& update) {
  const std::size_t sa = plan_.ShardOf(update.src);
  const std::size_t sb = plan_.ShardOf(update.dst);
  const std::size_t na = plan_.ShardNodes(sa).size();
  const std::size_t nb = plan_.ShardNodes(sb).size();
  // Merge-into-larger; ties break toward the lower slot id so the choice
  // is deterministic in the plan state alone.
  const std::size_t dst = na > nb ? sa : (nb > na ? sb : std::min(sa, sb));
  const std::size_t src = dst == sa ? sb : sa;

  // Stop() drains each shard's queue and publishes its final epoch; the
  // snapshots below are therefore the complete pre-merge states. No
  // readers are in flight (they hold mu_ shared).
  services_[dst]->Stop();
  services_[src]->Stop();
  auto dst_snap = services_[dst]->Snapshot();
  auto src_snap = services_[src]->Snapshot();
  retired_ += services_[dst]->stats();
  retired_ += services_[src]->stats();

  // Old local -> global maps, captured before the plan mutates.
  const std::vector<graph::NodeId> dst_nodes = plan_.ShardNodes(dst);
  const std::vector<graph::NodeId> src_nodes = plan_.ShardNodes(src);
  plan_.MergeShards(dst, src);
  const std::size_t merged_n = plan_.ShardNodes(dst).size();

  // Everything from here to the merged service starting is ingest stall
  // for this shard pair; surface it in stats().merge_rebuild_seconds.
  WallTimer rebuild_timer;

  // Rebuild the merged graph in the re-sorted (ascending-global) local id
  // space.
  graph::DynamicDiGraph merged_graph(merged_n);
  const auto add_edges = [this, &merged_graph](
                             const graph::DynamicDiGraph::View& g,
                             const std::vector<graph::NodeId>& globals) {
    for (const graph::Edge& e : g.Edges()) {
      Status added = merged_graph.AddEdge(
          plan_.ToLocal(globals[static_cast<std::size_t>(e.src)]),
          plan_.ToLocal(globals[static_cast<std::size_t>(e.dst)]));
      INCSR_CHECK(added.ok(), "merged-graph edge insert failed: %s",
                  added.ToString().c_str());
    }
  };
  add_edges(dst_snap->graph, dst_nodes);
  add_edges(src_snap->graph, src_nodes);

  // Merged S = block-diagonal combination of the two published scores.
  // Exact: the components being joined share no in-link paths yet, so
  // every cross-block entry is identically 0; the triggering insert is
  // applied incrementally afterwards, exactly as a single service would.
  la::DenseMatrix merged_s(merged_n, merged_n);
  const auto copy_block = [this, &merged_s](
                              const la::ScoreStore::View& scores,
                              const std::vector<graph::NodeId>& globals) {
    // Resolve the old-local -> merged-local column map once; the row
    // loop then parallelizes over disjoint destination rows (each row i
    // scatters into its own merged row), bitwise identical to the
    // serial copy this replaces.
    std::vector<std::size_t> to_local(globals.size());
    for (std::size_t j = 0; j < globals.size(); ++j) {
      to_local[j] = static_cast<std::size_t>(plan_.ToLocal(globals[j]));
    }
    const std::size_t grain = std::max<std::size_t>(
        1, 32768 / std::max<std::size_t>(globals.size(), 1));
    Scheduler::Global().ParallelFor(
        0, globals.size(), grain,
        Scheduler::ResolveNumThreads(sr_options_.num_threads),
        [&scores, &merged_s, &to_local](std::size_t lo, std::size_t hi) {
          // Per-chunk gather scratch: sparse-backed rows of the published
          // view expand here; dense rows come back as direct pointers.
          la::Vector scratch;
          for (std::size_t i = lo; i < hi; ++i) {
            const double* from = scores.ReadRow(i, &scratch);
            double* to = merged_s.RowPtr(to_local[i]);
            for (std::size_t j = 0; j < to_local.size(); ++j) {
              to[to_local[j]] = from[j];
            }
          }
        });
  };
  copy_block(dst_snap->scores, dst_nodes);
  copy_block(src_snap->scores, src_nodes);

  // The inputs were validated when the original shards were created, so a
  // failure here is an invariant violation; returning an error instead
  // would leave the façade corrupted (plan_ merged, services_ not), so
  // fail fast like the other impossible paths above.
  Result<core::DynamicSimRank> index = core::DynamicSimRank::FromState(
      std::move(merged_graph), std::move(merged_s), sr_options_, algorithm_);
  INCSR_CHECK(index.ok(), "merged-shard FromState failed: %s",
              index.status().ToString().c_str());
  // Charge what the merged store says it materialized (today: the dense
  // block-diagonal re-pack; under a future sparse/factored backing,
  // whatever that costs) instead of assuming merged_n²·8.
  const la::ScoreStoreStats& store_stats = index.value().scores().stats();
  merge_rebuild_rows_ += store_stats.rows_materialized;
  merge_rebuild_bytes_ += store_stats.bytes_materialized;
  Result<std::unique_ptr<service::SimRankService>> svc =
      service::SimRankService::Create(std::move(index).value(),
                                      PerShardOptions(dst));
  INCSR_CHECK(svc.ok(), "merged-shard service start failed: %s",
              svc.status().ToString().c_str());
  services_[dst] = std::move(svc).value();
  services_[src].reset();
  ++merges_;
  merge_rebuild_seconds_ += rebuild_timer.ElapsedSeconds();

  return services_[dst]->Submit(
      {update.kind, plan_.ToLocal(update.src), plan_.ToLocal(update.dst)});
}

Status ShardedSimRankService::Flush() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& svc : services_) {
    if (svc != nullptr) INCSR_RETURN_IF_ERROR(svc->Flush());
  }
  return Status::OK();
}

void ShardedSimRankService::Stop() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const auto& svc : services_) {
    if (svc != nullptr) svc->Stop();
  }
}

Result<double> ShardedSimRankService::Score(graph::NodeId a,
                                            graph::NodeId b) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (!plan_.HasNode(a) || !plan_.HasNode(b)) {
    return Status::OutOfRange("Score: node out of range");
  }
  const std::size_t sa = plan_.ShardOf(a);
  if (sa != plan_.ShardOf(b)) return 0.0;  // cross-shard SimRank is exact 0
  return services_[sa]->Score(plan_.ToLocal(a), plan_.ToLocal(b));
}

Result<std::vector<core::ScoredPair>> ShardedSimRankService::TopKFor(
    graph::NodeId query, std::size_t k) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (!plan_.HasNode(query)) {
    return Status::OutOfRange("TopKFor: node out of range");
  }
  const std::size_t shard = plan_.ShardOf(query);
  Result<std::vector<core::ScoredPair>> local =
      services_[shard]->TopKFor(plan_.ToLocal(query), k);
  if (!local.ok()) return local.status();
  // Translate to global ids; the shard's local-id tie order maps to the
  // global-id tie order because local ids ascend with global ids.
  std::vector<core::ScoredPair> owned = std::move(local).value();
  for (core::ScoredPair& pair : owned) {
    pair.a = query;
    pair.b = plan_.ToGlobal(shard, pair.b);
  }
  // Merge with the other shards' nodes, whose scores are exact 0.0, in
  // ascending global id order — bitwise what a single service's full-row
  // scan returns under the (descending score, ascending id) contract.
  std::vector<core::ScoredPair> out;
  out.reserve(std::min(k, plan_.num_nodes()));  // at most n - 1 results
  std::size_t cursor = 0;                      // over `owned`
  graph::NodeId zero = 0;                      // next cross-shard candidate
  const auto n = static_cast<graph::NodeId>(plan_.num_nodes());
  while (out.size() < k) {
    while (zero < n && plan_.ShardOf(zero) == shard) ++zero;
    const bool have_local = cursor < owned.size();
    const bool have_zero = zero < n;
    if (!have_local && !have_zero) break;
    core::ScoredPair zero_pair{query, zero, 0.0};
    if (!have_zero || (have_local && ScoredPairRanksBefore(owned[cursor], zero_pair))) {
      out.push_back(owned[cursor++]);
    } else {
      out.push_back(zero_pair);
      ++zero;
    }
  }
  return out;
}

std::vector<core::ScoredPair> ShardedSimRankService::TopKPairs(
    std::size_t k) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Per-shard top-k lists, translated to global ids. Any pair of the
  // global top-k that lies within one shard must be within that shard's
  // top-k (the order restricted to a shard's pairs is the shard's own
  // order), so k per shard suffices.
  std::vector<std::vector<core::ScoredPair>> lists;
  lists.reserve(services_.size());
  for (std::size_t s = 0; s < services_.size(); ++s) {
    if (services_[s] == nullptr) continue;
    std::vector<core::ScoredPair> list = services_[s]->TopKPairs(k);
    for (core::ScoredPair& pair : list) {
      pair.a = plan_.ToGlobal(s, pair.a);
      pair.b = plan_.ToGlobal(s, pair.b);  // a < b survives: maps ascend
    }
    lists.push_back(std::move(list));
  }
  // Deterministic k-way merge under the shared contract, interleaved with
  // a lazy ascending-(a, b) generator of cross-shard pairs (score exactly
  // 0); those only surface once k exceeds the positive-score pair count,
  // where a single service's scan would emit them in the same order.
  const auto n = static_cast<graph::NodeId>(plan_.num_nodes());
  graph::NodeId gen_a = 0;
  graph::NodeId gen_b = 1;
  const auto gen_valid = [&] {
    while (gen_a < n) {
      if (gen_b >= n) {
        ++gen_a;
        gen_b = gen_a + 1;
        continue;
      }
      if (plan_.ShardOf(gen_a) != plan_.ShardOf(gen_b)) return true;
      ++gen_b;
    }
    return false;
  };
  const std::size_t num_pairs =
      plan_.num_nodes() * (plan_.num_nodes() - 1) / 2;
  std::vector<std::size_t> cursors(lists.size(), 0);
  std::vector<core::ScoredPair> out;
  out.reserve(std::min(k, num_pairs));
  while (out.size() < k) {
    const core::ScoredPair* best = nullptr;
    std::size_t best_list = 0;
    for (std::size_t l = 0; l < lists.size(); ++l) {
      if (cursors[l] >= lists[l].size()) continue;
      const core::ScoredPair& head = lists[l][cursors[l]];
      if (best == nullptr || ScoredPairRanksBefore(head, *best)) {
        best = &head;
        best_list = l;
      }
    }
    if (gen_valid() &&
        (best == nullptr ||
         ScoredPairRanksBefore(core::ScoredPair{gen_a, gen_b, 0.0}, *best))) {
      out.push_back({gen_a, gen_b, 0.0});
      ++gen_b;
    } else if (best != nullptr) {
      out.push_back(*best);
      ++cursors[best_list];
    } else {
      break;
    }
  }
  return out;
}

ShardedStats ShardedSimRankService::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ShardedStats out;
  out.total = retired_;
  for (std::size_t s = 0; s < services_.size(); ++s) {
    if (services_[s] == nullptr) continue;
    ShardedStats::ShardEntry entry;
    entry.slot = s;
    entry.nodes = plan_.ShardNodes(s).size();
    entry.stats = services_[s]->stats();
    out.total += entry.stats;
    out.per_shard.push_back(std::move(entry));
    ++out.active_shards;
  }
  out.merges = merges_;
  out.router_failed = router_failed_.load(std::memory_order_relaxed);
  // An update dropped at the router is "accepted then failed" in
  // single-service terms; count it on both sides so the identity
  // submitted == applied + rejected + failed + queue_depth holds for the
  // totals, as it does per shard.
  out.total.submitted += out.router_failed;
  out.total.failed += out.router_failed;
  out.merge_rebuild_rows = merge_rebuild_rows_;
  out.merge_rebuild_bytes = merge_rebuild_bytes_;
  out.merge_rebuild_seconds = merge_rebuild_seconds_;
  return out;
}

std::size_t ShardedSimRankService::num_nodes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return plan_.num_nodes();
}

std::size_t ShardedSimRankService::num_edges() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::size_t edges = 0;
  for (const auto& svc : services_) {
    if (svc != nullptr) edges += svc->Snapshot()->graph.num_edges();
  }
  return edges;
}

}  // namespace incsr::shard
