// ShardPlan — deterministic component-to-shard assignment with a remap
// table between the global node-id space and per-shard local id spaces.
//
// SimRank between weakly connected components is exactly 0, so components
// partition across shards with no cross-shard score coupling. The plan
// bin-packs components into K shards balanced by node count (each shard's
// dense S costs nᵢ², so balancing nᵢ balances both memory and the
// per-update affected-area work), then assigns every shard a compact
// local id space.
//
// Invariant (load-bearing for bitwise shard-invariance): within a shard,
// local ids are assigned in ASCENDING GLOBAL ID order. Every kernel in
// the engine iterates supports in ascending index order, so a shard-local
// run performs the same floating-point operations in the same order as
// the corresponding subsequence of a full-graph run — and local-id
// tie-breaks in top-k results translate monotonically to global-id
// tie-breaks. MergeShards preserves the invariant by re-sorting the
// merged node set.
#ifndef INCSR_SHARD_SHARD_PLAN_H_
#define INCSR_SHARD_SHARD_PLAN_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace incsr::shard {

/// Deterministic node-space partition across shards. Built once from the
/// initial graph; mutated only by MergeShards when a cross-shard edge
/// insertion joins two components.
class ShardPlan {
 public:
  ShardPlan() = default;

  /// Partitions the weakly connected components of `graph` into at most
  /// `requested_shards` shards: components sorted by (size descending,
  /// component id ascending) are greedily placed on the least-loaded
  /// shard (ties: lowest shard id). The effective shard count is
  /// min(requested_shards, #components), at least 1. Deterministic in the
  /// graph alone.
  static ShardPlan Build(const graph::DynamicDiGraph& graph,
                         std::size_t requested_shards);

  /// Total number of shard slots (merged-away slots stay, but are empty).
  std::size_t num_shards() const { return shard_nodes_.size(); }
  /// Shard slots that still own at least one node.
  std::size_t num_active_shards() const;
  /// Global node-space size.
  std::size_t num_nodes() const { return shard_of_.size(); }
  bool HasNode(graph::NodeId global) const {
    return global >= 0 &&
           static_cast<std::size_t>(global) < shard_of_.size();
  }

  /// Shard owning a global node id.
  std::size_t ShardOf(graph::NodeId global) const {
    return static_cast<std::size_t>(
        shard_of_[static_cast<std::size_t>(global)]);
  }
  /// Shard-local id of a global node id.
  graph::NodeId ToLocal(graph::NodeId global) const {
    return local_of_[static_cast<std::size_t>(global)];
  }
  /// Global id of a shard-local node id.
  graph::NodeId ToGlobal(std::size_t shard, graph::NodeId local) const {
    return shard_nodes_[shard][static_cast<std::size_t>(local)];
  }
  /// Global ids owned by `shard`, ascending (index = local id).
  const std::vector<graph::NodeId>& ShardNodes(std::size_t shard) const {
    return shard_nodes_[shard];
  }

  /// Extracts the `shard`-induced subgraph of `graph` in local ids.
  graph::DynamicDiGraph BuildSubgraph(const graph::DynamicDiGraph& graph,
                                      std::size_t shard) const;

  /// Moves every node of shard `src` into shard `dst` and re-sorts the
  /// merged node set ascending, reassigning dst's local ids (so the
  /// ascending-global invariant survives). Slot `src` becomes empty.
  void MergeShards(std::size_t dst, std::size_t src);

 private:
  std::vector<std::int32_t> shard_of_;       // global -> shard slot
  std::vector<graph::NodeId> local_of_;      // global -> shard-local id
  std::vector<std::vector<graph::NodeId>> shard_nodes_;  // slot -> globals
};

}  // namespace incsr::shard

#endif  // INCSR_SHARD_SHARD_PLAN_H_
