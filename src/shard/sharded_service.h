// ShardedSimRankService — component-sharded serving: K independent
// SimRankService instances behind one routing façade. The same paper
// observation that bounds an update's affected area also shards the node
// space: SimRank across weakly connected components is exactly 0, so each
// shard owns a disjoint component group with a smaller dense S (memory
// Σ nᵢ² instead of n²) and its own ingest queue + applier thread —
// updates to different shards apply concurrently on the shared pool.
//
// Routing rules:
//   - EdgeUpdate: both endpoints always live in one component, hence one
//     shard — the update is translated to shard-local ids and enqueued
//     there. A cross-shard INSERT is the one event that breaks the
//     partition (it joins two components): the router merges the smaller
//     shard into the larger (see below), then routes the insert to the
//     merged shard. A cross-shard DELETE can never name an existing edge;
//     it is dropped and counted (stats().router_failed), mirroring the
//     single service's applier-side failed count.
//   - Score(a, b): one shard when a, b share a shard; exactly 0.0
//     otherwise (no computation, no cross-shard traffic).
//   - TopKFor(q, k): answered by q's shard — through its per-node top-k
//     index (service/topk_index.h) when the shard's entry covers k, a row
//     scan otherwise; both are bitwise-identical sources — then
//     zero-padded with the other shards' node ids in ascending order —
//     bitwise identical to a single service scanning the full row,
//     because cross-shard scores are exact +0.0 and the tie-break
//     contract (descending score, ascending id; core/dynamic_simrank.h)
//     totally orders the merge.
//   - TopKPairs(k): deterministic k-way merge of the per-shard top-k
//     heaps under the same contract, interleaved with a lazy generator of
//     cross-shard (score 0) pairs in ascending (a, b) order.
//
// Component-merge semantics (merge-into-larger): on a cross-shard insert
// the router Stop()s both involved shards, re-sorts the union of their
// node sets into a fresh ascending-global local id space, rebuilds the
// merged graph, and assembles the merged S as the block-diagonal
// combination of the two published score matrices — exact, because the
// cross-block scores of the not-yet-joined components are identically 0.
// The triggering insert is then applied incrementally by the merged
// shard, exactly as a single service would have. Rebuild cost (rows and
// bytes materialized into the merged store) is surfaced in stats().
//
// Consistency model: per shard, identical to SimRankService (epoch
// snapshots; Flush() is a barrier across all shards). Cross-shard reads
// (TopKPairs) combine per-shard snapshots that may be of different
// epochs; after Flush() with no concurrent writers every shard serves its
// final epoch, so results are exact for the final graph.
#ifndef INCSR_SHARD_SHARDED_SERVICE_H_
#define INCSR_SHARD_SHARDED_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "core/dynamic_simrank.h"
#include "graph/digraph.h"
#include "graph/update_stream.h"
#include "service/simrank_service.h"
#include "shard/shard_plan.h"
#include "simrank/options.h"

namespace incsr::shard {

/// Knobs for the sharded façade. Per-shard options apply to every shard
/// (each shard gets its own queue, applier, cache of that size).
struct ShardedServiceOptions {
  /// Number of shards to partition the components across; clamped to the
  /// component count (at least 1).
  std::size_t num_shards = 1;
  service::ServiceOptions per_shard;
};

/// Aggregated counters. Totals sum the live shards plus every shard
/// retired by a merge, so they are cumulative across the service's life.
struct ShardedStats {
  /// One entry per live shard slot, in slot order (merged-away slots are
  /// omitted); `slot` identifies the shard, `nodes` its node count.
  struct ShardEntry {
    std::size_t slot = 0;
    std::size_t nodes = 0;
    service::ServiceStats stats;
  };
  std::vector<ShardEntry> per_shard;
  /// Aggregate over live shards + shards retired by merges: counters sum
  /// field-wise, `epoch` is the MAX per-shard epoch (epochs are
  /// independent per-shard sequence numbers; see
  /// service::ServiceStats::operator+=).
  service::ServiceStats total;
  std::size_t active_shards = 0;
  /// Cross-shard inserts routed through the merge path.
  std::uint64_t merges = 0;
  /// Updates dropped at the router without reaching a shard: cross-shard
  /// deletes (the edge cannot exist) and out-of-range node ids. Counted
  /// into total.submitted and total.failed, mirroring the single
  /// service's accept-then-fail accounting.
  std::uint64_t router_failed = 0;
  /// Merge rebuild cost: score rows (and bytes) materialized into merged
  /// stores — the price of re-packing two blocks into one id space.
  /// Bytes are the merged stores' own materialization accounting
  /// (la::ScoreStoreStats::bytes_materialized), not an assumed-dense
  /// n²·8, so they stay honest if the backing representation changes.
  std::uint64_t merge_rebuild_rows = 0;
  std::uint64_t merge_rebuild_bytes = 0;
  /// Cumulative wall time spent inside merge rebuilds (stop + re-pack +
  /// re-init + restart), the ingest stall a cross-shard insert causes.
  double merge_rebuild_seconds = 0.0;
};

/// Thread-safe sharded SimRank serving façade over a fixed global node
/// space. Same usage shape as service::SimRankService: create once,
/// Submit from any number of writers, query from any number of readers.
/// All node ids in the public API are GLOBAL ids.
class ShardedSimRankService {
 public:
  /// Partitions `graph` with ShardPlan::Build, solves each shard's
  /// initial S independently, and starts one SimRankService per shard.
  static Result<std::unique_ptr<ShardedSimRankService>> Create(
      const graph::DynamicDiGraph& graph,
      const simrank::SimRankOptions& sr_options = {},
      const ShardedServiceOptions& options = {},
      core::UpdateAlgorithm algorithm = core::UpdateAlgorithm::kIncSR);

  ~ShardedSimRankService();

  ShardedSimRankService(const ShardedSimRankService&) = delete;
  ShardedSimRankService& operator=(const ShardedSimRankService&) = delete;

  // ---- Writer side -------------------------------------------------------

  /// Routes one update to the shard owning its endpoints (merging shards
  /// first if a cross-shard insert requires it). Backpressure and
  /// validation semantics are the owning shard's.
  Status Submit(const graph::EdgeUpdate& update);

  /// Routes a sequence of updates (stops at the first rejection).
  Status SubmitBatch(const std::vector<graph::EdgeUpdate>& updates);

  /// Barrier across every shard: returns once all updates accepted before
  /// the call are applied and published by their shards.
  Status Flush();

  /// Stops every shard (drains queues, publishes final epochs). Reads
  /// stay valid forever. Idempotent.
  void Stop();

  // ---- Reader side -------------------------------------------------------

  /// SimRank score of (a, b): exact 0.0 across shards, the owning shard's
  /// published score otherwise.
  Result<double> Score(graph::NodeId a, graph::NodeId b) const;

  /// Top-k most similar nodes to `query` over the GLOBAL node space.
  Result<std::vector<core::ScoredPair>> TopKFor(graph::NodeId query,
                                                std::size_t k) const;

  /// Top-k highest-scoring distinct pairs over the global node space.
  std::vector<core::ScoredPair> TopKPairs(std::size_t k) const;

  ShardedStats stats() const;
  std::size_t num_nodes() const;
  /// Sum of per-shard edge counts in the latest published snapshots.
  std::size_t num_edges() const;

 private:
  ShardedSimRankService(ShardPlan plan,
                        const simrank::SimRankOptions& sr_options,
                        const ShardedServiceOptions& options,
                        core::UpdateAlgorithm algorithm);

  /// Per-shard service options for `slot`: the configured per_shard
  /// options plus a slot-derived scheduler affinity group (unless the
  /// caller pinned one explicitly).
  service::ServiceOptions PerShardOptions(std::size_t slot) const;

  /// Cross-shard insert path; called with mu_ held exclusively. Merges
  /// the shard slots owning `update`'s endpoints (into the
  /// larger-by-nodes one; ties: lower slot) and submits the update to the
  /// merged shard.
  Status MergeAndSubmit(const graph::EdgeUpdate& update);

  const simrank::SimRankOptions sr_options_;
  const ShardedServiceOptions options_;
  const core::UpdateAlgorithm algorithm_;

  // Guards plan_/services_ topology: routing takes it shared, shard
  // merges take it exclusive. Per-shard concurrency (queues, snapshots)
  // is the shards' own.
  mutable std::shared_mutex mu_;
  ShardPlan plan_;
  // Indexed by shard slot; a slot merged away holds nullptr.
  std::vector<std::unique_ptr<service::SimRankService>> services_;

  // Counters below (except router_failed_) are only mutated with mu_ held
  // exclusively; router_failed_ is bumped under the shared lock by any
  // writer dropping a cross-shard delete, hence atomic.
  service::ServiceStats retired_;  // summed stats of merged-away shards
  std::uint64_t merges_ = 0;
  std::atomic<std::uint64_t> router_failed_{0};
  std::uint64_t merge_rebuild_rows_ = 0;
  std::uint64_t merge_rebuild_bytes_ = 0;
  double merge_rebuild_seconds_ = 0.0;
};

}  // namespace incsr::shard

#endif  // INCSR_SHARD_SHARDED_SERVICE_H_
