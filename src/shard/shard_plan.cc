#include "shard/shard_plan.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "graph/components.h"

namespace incsr::shard {

ShardPlan ShardPlan::Build(const graph::DynamicDiGraph& graph,
                           std::size_t requested_shards) {
  const graph::ComponentDecomposition components =
      graph::WeaklyConnectedComponents(graph);
  const std::size_t n = graph.num_nodes();
  const std::size_t k = std::max<std::size_t>(
      1, std::min(requested_shards,
                  std::max<std::size_t>(1, components.num_components())));

  // Greedy bin packing: components by size descending (ties: ascending
  // component id, which is itself deterministic — discovery order of the
  // smallest member node), each onto the least-loaded shard.
  std::vector<std::size_t> order(components.num_components());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (components.sizes[a] != components.sizes[b]) {
      return components.sizes[a] > components.sizes[b];
    }
    return a < b;
  });
  std::vector<std::size_t> load(k, 0);
  std::vector<std::int32_t> shard_of_component(components.num_components());
  for (std::size_t c : order) {
    const std::size_t target = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    shard_of_component[c] = static_cast<std::int32_t>(target);
    load[target] += components.sizes[c];
  }

  ShardPlan plan;
  plan.shard_of_.resize(n);
  plan.local_of_.resize(n);
  plan.shard_nodes_.resize(k);
  for (std::size_t s = 0; s < k; ++s) plan.shard_nodes_[s].reserve(load[s]);
  // Ascending global-id scan keeps every shard's node list sorted, which
  // is the local-id invariant documented in the header.
  for (std::size_t v = 0; v < n; ++v) {
    const std::int32_t s = shard_of_component[static_cast<std::size_t>(
        components.component_of[v])];
    plan.shard_of_[v] = s;
    plan.local_of_[v] = static_cast<graph::NodeId>(
        plan.shard_nodes_[static_cast<std::size_t>(s)].size());
    plan.shard_nodes_[static_cast<std::size_t>(s)].push_back(
        static_cast<graph::NodeId>(v));
  }
  return plan;
}

std::size_t ShardPlan::num_active_shards() const {
  std::size_t active = 0;
  for (const auto& nodes : shard_nodes_) {
    if (!nodes.empty()) ++active;
  }
  return active;
}

graph::DynamicDiGraph ShardPlan::BuildSubgraph(
    const graph::DynamicDiGraph& graph, std::size_t shard) const {
  const std::vector<graph::NodeId>& nodes = shard_nodes_[shard];
  graph::DynamicDiGraph sub(nodes.size());
  for (graph::NodeId global : nodes) {
    for (graph::NodeId dst : graph.OutNeighbors(global)) {
      INCSR_CHECK(ShardOf(dst) == shard,
                  "edge %d->%d crosses shard %zu — components are not "
                  "shard-closed",
                  global, dst, shard);
      Status added = sub.AddEdge(ToLocal(global), ToLocal(dst));
      INCSR_CHECK(added.ok(), "subgraph edge insert failed: %s",
                  added.ToString().c_str());
    }
  }
  return sub;
}

void ShardPlan::MergeShards(std::size_t dst, std::size_t src) {
  INCSR_CHECK(dst != src, "MergeShards: dst == src (%zu)", dst);
  std::vector<graph::NodeId>& into = shard_nodes_[dst];
  std::vector<graph::NodeId>& from = shard_nodes_[src];
  std::vector<graph::NodeId> merged;
  merged.reserve(into.size() + from.size());
  std::merge(into.begin(), into.end(), from.begin(), from.end(),
             std::back_inserter(merged));
  into = std::move(merged);
  from.clear();
  for (std::size_t l = 0; l < into.size(); ++l) {
    const auto g = static_cast<std::size_t>(into[l]);
    shard_of_[g] = static_cast<std::int32_t>(dst);
    local_of_[g] = static_cast<graph::NodeId>(l);
  }
}

}  // namespace incsr::shard
