#include "incsvd/inc_svd.h"

#include <utility>

#include "common/memory.h"
#include "core/rank_one_update.h"
#include "graph/transition.h"
#include "la/kron.h"
#include "la/lu.h"
#include "la/randomized_svd.h"

namespace incsr::incsvd {

Result<IncSvd> IncSvd::Create(graph::DynamicDiGraph graph,
                              const IncSvdOptions& options) {
  if (options.simrank.damping <= 0.0 || options.simrank.damping >= 1.0) {
    return Status::InvalidArgument("IncSvd: damping must be in (0, 1)");
  }
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("IncSvd: empty graph");
  }
  if (options.factorization == Factorization::kRandomized &&
      options.target_rank == 0) {
    return Status::InvalidArgument(
        "IncSvd: randomized factorization requires a target rank");
  }
  const std::size_t n = graph.num_nodes();
  const bool randomized =
      options.factorization == Factorization::kRandomized ||
      (options.factorization == Factorization::kAuto &&
       options.target_rank > 0 && n > 512);
  la::DynamicRowMatrix q = graph::BuildTransition(graph);

  Result<la::SvdResult> factors = [&]() -> Result<la::SvdResult> {
    if (randomized) {
      la::RandomizedSvdOptions rand_options;
      rand_options.rank = options.target_rank;
      return la::ComputeRandomizedSvd(q.ToCsr(), rand_options);
    }
    // The dense Jacobi route materializes Q as an n×n matrix.
    if (options.memory_budget_bytes > 0) {
      const std::int64_t dense_q_bytes = static_cast<std::int64_t>(n) * n * 8;
      if (dense_q_bytes > options.memory_budget_bytes) {
        return Status::ResourceExhausted(
            "Inc-SVD: dense SVD of Q needs " + HumanBytes(dense_q_bytes) +
            ", over the configured budget of " +
            HumanBytes(options.memory_budget_bytes));
      }
    }
    la::SvdOptions svd_options;
    svd_options.target_rank = options.target_rank;
    return la::ComputeSvd(q.ToDense(), svd_options);
  }();
  if (!factors.ok()) return factors.status();
  return IncSvd(std::move(graph), std::move(q), std::move(factors).value(),
                options);
}

Status IncSvd::ApplyBatch(const std::vector<graph::EdgeUpdate>& updates) {
  const std::size_t r = factors_.rank();
  // Accumulate Uᵀ·ΔQ·V over the batch: each unit update contributes the
  // rank-one (Uᵀu)·(vᵀV) of Theorem 1, evaluated against the *current*
  // intermediate Q so the sum telescopes to Uᵀ·(Q_new − Q_old)·V.
  la::DenseMatrix accumulated(r, r);
  for (const graph::EdgeUpdate& update : updates) {
    Result<core::RankOneUpdate> rank_one =
        core::ComputeRankOneUpdate(q_, update);
    if (!rank_one.ok()) return rank_one.status();
    // Uᵀ·u (r) and Vᵀ·v (r) from the sparse u, v.
    la::Vector ut_u(r);
    for (std::size_t k = 0; k < rank_one->u.nnz(); ++k) {
      const std::size_t row =
          static_cast<std::size_t>(rank_one->u.indices()[k]);
      const double value = rank_one->u.values()[k];
      for (std::size_t c = 0; c < r; ++c) {
        ut_u[c] += value * factors_.u(row, c);
      }
    }
    la::Vector vt_v(r);
    for (std::size_t k = 0; k < rank_one->v.nnz(); ++k) {
      const std::size_t row =
          static_cast<std::size_t>(rank_one->v.indices()[k]);
      const double value = rank_one->v.values()[k];
      for (std::size_t c = 0; c < r; ++c) {
        vt_v[c] += value * factors_.v(row, c);
      }
    }
    accumulated.AddOuterProduct(1.0, ut_u, vt_v);
    // Commit the edge so the next unit update sees the intermediate state.
    Status applied = update.kind == graph::UpdateKind::kInsert
                         ? graph_.AddEdge(update.src, update.dst)
                         : graph_.RemoveEdge(update.src, update.dst);
    if (!applied.ok()) return applied;
    graph::RefreshTransitionRow(graph_, update.dst, &q_);
  }

  // C_aux = Σ + Uᵀ·ΔQ·V, then its SVD refreshes the factors (Eq. 4) —
  // the step that loses eigen-information whenever rank(Q) < n.
  la::DenseMatrix c_aux = std::move(accumulated);
  for (std::size_t i = 0; i < r; ++i) c_aux(i, i) += factors_.sigma[i];
  la::SvdOptions svd_options;
  svd_options.target_rank = options_.target_rank;
  Result<la::SvdResult> aux_svd = la::ComputeSvd(c_aux, svd_options);
  if (!aux_svd.ok()) return aux_svd.status();

  stats_.aux_rank = 0;
  {
    la::SvdOptions lossless = svd_options;
    lossless.target_rank = 0;
    Result<std::size_t> rank = la::NumericalRank(c_aux, lossless);
    if (rank.ok()) stats_.aux_rank = rank.value();
  }

  la::SvdResult updated;
  updated.u = la::Multiply(factors_.u, aux_svd->u);
  updated.sigma = aux_svd->sigma;
  updated.v = la::Multiply(factors_.v, aux_svd->v);
  factors_ = std::move(updated);
  stats_.new_rank = factors_.rank();
  return Status::OK();
}

Result<la::DenseMatrix> IncSvd::ComputeScores() const {
  if (options_.memory_budget_bytes > 0) {
    const std::size_t r = factors_.rank();
    // The Kronecker path materializes the (r², r²) system in doubles.
    const std::int64_t kron_bytes =
        options_.solver == SmallSolver::kKronecker
            ? static_cast<std::int64_t>(r) * r * r * r * 8
            : 0;
    const std::int64_t dense_bytes =
        static_cast<std::int64_t>(graph_.num_nodes()) * graph_.num_nodes() * 8;
    if (kron_bytes + dense_bytes > options_.memory_budget_bytes) {
      return Status::ResourceExhausted(
          "Inc-SVD tensor products need " + HumanBytes(kron_bytes + dense_bytes) +
          ", over the configured budget of " +
          HumanBytes(options_.memory_budget_bytes));
    }
  }
  if (options_.faithful_tensor_order) return FaithfulTensorScores();
  return SimRankFromFactors(factors_, options_.simrank, options_.solver);
}

Result<la::DenseMatrix> IncSvd::FaithfulTensorScores() const {
  // Literal tensor-product order of the baseline's Lemma 2:
  //   vec(S) = (1−C)·vec(I) + C(1−C)·((U⊗U)·(I − C·W⊗W)⁻¹)·vec(Σ²),
  // with the n²×r² product (U⊗U)·M⁻¹ evaluated row by row BEFORE the
  // contraction with vec(Σ²) — Θ(r⁴) work per node-pair, Θ(r⁴·n²) total.
  const std::size_t n = graph_.num_nodes();
  const std::size_t r = factors_.rank();
  const double c = options_.simrank.damping;
  la::DenseMatrix s(n, n);
  s.AddScaledIdentity(1.0 - c);
  if (r == 0) return s;

  // W = Σ·Vᵀ·U and M⁻¹ = (I_{r²} − C·W⊗W)⁻¹ materialized (r²×r²).
  la::DenseMatrix w = la::MultiplyTransposeA(factors_.v, factors_.u);
  for (std::size_t i = 0; i < r; ++i) {
    double* row = w.RowPtr(i);
    for (std::size_t j = 0; j < r; ++j) row[j] *= factors_.sigma[i];
  }
  la::DenseMatrix system = la::Kron(w, w);
  system.Scale(-c);
  system.AddScaledIdentity(1.0);
  Result<la::LuFactorization> lu = la::LuFactorization::Compute(system);
  if (!lu.ok()) return lu.status();
  Result<la::DenseMatrix> m_inv =
      lu->SolveMatrix(la::DenseMatrix::Identity(r * r));
  if (!m_inv.ok()) return m_inv.status();

  // vec(Σ²) in column-major pair indexing (p + q·r).
  la::Vector vec_sigma2(r * r);
  for (std::size_t p = 0; p < r; ++p) {
    vec_sigma2[p + p * r] = factors_.sigma[p] * factors_.sigma[p];
  }

  const double scale = c * (1.0 - c);
  std::vector<double> row_scratch(r * r);
  for (std::size_t a = 0; a < n; ++a) {
    const double* ua = factors_.u.RowPtr(a);
    double* srow = s.RowPtr(a);
    for (std::size_t b = 0; b < n; ++b) {
      const double* ub = factors_.u.RowPtr(b);
      // g = (U_b ⊗ U_a)ᵀ · M⁻¹, an r²-vector (this is the Θ(r⁴) step the
      // baseline pays for every node-pair).
      for (std::size_t cd = 0; cd < r * r; ++cd) row_scratch[cd] = 0.0;
      for (std::size_t p = 0; p < r; ++p) {
        for (std::size_t q2 = 0; q2 < r; ++q2) {
          const double coeff = ua[p] * ub[q2];
          if (coeff == 0.0) continue;
          const double* m_row = m_inv->RowPtr(p + q2 * r);
          for (std::size_t cd = 0; cd < r * r; ++cd) {
            row_scratch[cd] += coeff * m_row[cd];
          }
        }
      }
      double acc = 0.0;
      for (std::size_t p = 0; p < r; ++p) {
        acc += row_scratch[p + p * r] * vec_sigma2[p + p * r];
      }
      srow[b] += scale * acc;
    }
  }
  return s;
}

double IncSvd::FactorReconstructionError() const {
  la::DenseMatrix reconstructed = factors_.Reconstruct();
  la::DenseMatrix actual = q_.ToDense();
  return la::MaxAbsDiff(reconstructed, actual);
}

}  // namespace incsr::incsvd
