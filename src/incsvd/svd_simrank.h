// Batch SimRank from SVD factors — the computational core of the Li et al.
// (EDBT'10) baseline the reproduced paper compares against (its "Inc-SVD").
//
// For any exact factorization Q = U·Σ·Vᵀ the powers telescope,
// Qᵏ = U·W^{k−1}·Σ·Vᵀ with W = Σ·Vᵀ·U, so the SimRank series
// S = (1−C)·Σₖ Cᵏ·Qᵏ·(Qᵀ)ᵏ collapses to
//
//     S = (1−C)·Iₙ + C(1−C) · U · X · Uᵀ,
//     X = C·W·X·Wᵀ + Σ²               (r×r Sylvester equation).
//
// With a truncated (low-rank) SVD the same formulas produce Li et al.'s
// approximation. The small system is solved either via the materialized
// Kronecker system (I_{r²} − C·W⊗W)·vec(X) = vec(Σ²) — the "costly tensor
// products" whose O(r⁴) memory the paper's Fig. 3 observes — or by
// fixed-point iteration.
#ifndef INCSR_INCSVD_SVD_SIMRANK_H_
#define INCSR_INCSVD_SVD_SIMRANK_H_

#include "common/status.h"
#include "la/dense_matrix.h"
#include "la/svd.h"
#include "simrank/options.h"

namespace incsr::incsvd {

/// How the projected r×r Sylvester equation is solved.
enum class SmallSolver {
  /// Materialized r²×r² Kronecker system + LU (faithful to the baseline's
  /// tensor-product formulation; O(r⁶) time, O(r⁴) memory).
  kKronecker,
  /// Fixed-point iteration (O(r³) per step); guards against divergence,
  /// which truncated factors can exhibit.
  kFixedPoint,
};

/// Computes all-pairs SimRank from SVD factors of the transition matrix.
Result<la::DenseMatrix> SimRankFromFactors(
    const la::SvdResult& factors, const simrank::SimRankOptions& options,
    SmallSolver solver = SmallSolver::kKronecker);

}  // namespace incsr::incsvd

#endif  // INCSR_INCSVD_SVD_SIMRANK_H_
