// Inc-SVD — the link-update algorithm of Li et al. (EDBT'10), the baseline
// the reproduced paper compares against (its Algorithm 3 / "Inc-SVD").
// Implemented faithfully, INCLUDING the flaw Section IV of the paper
// proves: after a batch of link updates ΔQ, the factors are refreshed via
//
//     C_aux = Σ + Uᵀ·ΔQ·V,  C_aux = U_C·Σ_C·V_Cᵀ (SVD),
//     Ũ = U·U_C,  Σ̃ = Σ_C,  Ṽ = V·V_C,                    (Eq. 4)
//
// which silently assumes U·Uᵀ = V·Vᵀ = Iₙ (Eq. 6). That identity fails
// whenever rank(Q) < n, so Ũ·Σ̃·Ṽᵀ ≠ Q̃ and the refreshed similarities are
// approximate even with a lossless SVD — the behaviour Examples 2-3 and
// the NDCG experiment (Fig. 4) demonstrate, and which this implementation
// reproduces by construction.
#ifndef INCSR_INCSVD_INC_SVD_H_
#define INCSR_INCSVD_INC_SVD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/digraph.h"
#include "graph/update_stream.h"
#include "incsvd/svd_simrank.h"
#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"
#include "la/svd.h"
#include "simrank/options.h"

namespace incsr::incsvd {

/// How the initial SVD of Q is obtained.
enum class Factorization {
  /// Randomized truncated SVD when a target rank is set and the graph is
  /// large; dense Jacobi otherwise.
  kAuto,
  /// Dense one-sided Jacobi (exact; O(n³) — the lossless route).
  kDenseJacobi,
  /// Randomized range finder (top-r only; requires target_rank > 0).
  kRandomized,
};

/// Tuning for the Inc-SVD baseline.
struct IncSvdOptions {
  simrank::SimRankOptions simrank;
  /// Target rank r of the low-rank SVD (the paper's experiments use r = 5
  /// for speed and sweep r for accuracy/memory). 0 = lossless (numerical
  /// rank), matching the paper's exactness discussion.
  std::size_t target_rank = 0;
  /// Small-system solver (see svd_simrank.h).
  SmallSolver solver = SmallSolver::kKronecker;
  /// Initial factorization strategy.
  Factorization factorization = Factorization::kAuto;
  /// When true, scores are evaluated in the baseline's literal
  /// tensor-product order — ((U⊗U)·(I − C·W⊗W)⁻¹)·vec(Σ²) row by row —
  /// which costs Θ(r⁴·n²) like Lemma 2 of [1], instead of the
  /// algebraically identical O(n²·r + r⁶) U·X·Uᵀ order. Used by the
  /// benchmark harness to reproduce the baseline's published cost profile.
  bool faithful_tensor_order = false;
  /// Refuse work that would allocate more than this many bytes (dense Q
  /// for the Jacobi factorization, the r⁴ Kronecker system, the n² score
  /// matrix). Reproduces the paper's "memory crash" observations as a
  /// clean ResourceExhausted instead of an OOM kill. 0 = unlimited.
  std::int64_t memory_budget_bytes = 0;
};

/// Measurements from the most recent factor update.
struct IncSvdUpdateStats {
  /// Numerical rank of the auxiliary matrix C_aux (what Fig. 2b reports as
  /// a fraction of n).
  std::size_t aux_rank = 0;
  /// Rank retained after the update (min(aux_rank, target_rank)).
  std::size_t new_rank = 0;
};

/// The Li et al. incremental SimRank index.
class IncSvd {
 public:
  /// Factorizes the graph's transition matrix (the expensive
  /// precomputation step of the baseline).
  static Result<IncSvd> Create(graph::DynamicDiGraph graph,
                               const IncSvdOptions& options);

  const graph::DynamicDiGraph& graph() const { return graph_; }
  const la::SvdResult& factors() const { return factors_; }
  const IncSvdOptions& options() const { return options_; }
  const IncSvdUpdateStats& last_stats() const { return stats_; }

  /// Applies a batch of link updates: edges change on the graph, ΔQ is
  /// accumulated through the current factors, and one SVD of C_aux
  /// refreshes (Ũ, Σ̃, Ṽ). Unit updates are batches of size one.
  Status ApplyBatch(const std::vector<graph::EdgeUpdate>& updates);

  /// Current similarity estimate from the maintained factors. After any
  /// update with rank(Q) < n this is approximate (see header comment).
  Result<la::DenseMatrix> ComputeScores() const;

  /// ‖Q̃ − Ũ·Σ̃·Ṽᵀ‖_max: the factor-reconstruction error the paper's
  /// Example 3 exhibits (zero only when Eq. 6 actually held).
  double FactorReconstructionError() const;

 private:
  IncSvd(graph::DynamicDiGraph graph, la::DynamicRowMatrix q,
         la::SvdResult factors, const IncSvdOptions& options)
      : graph_(std::move(graph)),
        q_(std::move(q)),
        factors_(std::move(factors)),
        options_(options) {}

  Result<la::DenseMatrix> FaithfulTensorScores() const;

  graph::DynamicDiGraph graph_;
  la::DynamicRowMatrix q_;
  la::SvdResult factors_;
  IncSvdOptions options_;
  IncSvdUpdateStats stats_;
};

}  // namespace incsr::incsvd

#endif  // INCSR_INCSVD_INC_SVD_H_
