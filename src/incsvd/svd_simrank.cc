#include "incsvd/svd_simrank.h"

#include "la/sylvester.h"

namespace incsr::incsvd {

Result<la::DenseMatrix> SimRankFromFactors(
    const la::SvdResult& factors, const simrank::SimRankOptions& options,
    SmallSolver solver) {
  const std::size_t n = factors.u.rows();
  const std::size_t r = factors.rank();
  const double c = options.damping;
  if (factors.v.rows() != n) {
    return Status::InvalidArgument("SimRankFromFactors: U/V row mismatch");
  }
  la::DenseMatrix s(n, n);
  s.AddScaledIdentity(1.0 - c);
  if (r == 0) return s;  // empty graph: S = (1−C)·I

  // W = Σ·Vᵀ·U  (r×r).
  la::DenseMatrix w = la::MultiplyTransposeA(factors.v, factors.u);
  for (std::size_t i = 0; i < r; ++i) {
    double* row = w.RowPtr(i);
    for (std::size_t j = 0; j < r; ++j) row[j] *= factors.sigma[i];
  }
  // Σ² as the Sylvester constant term.
  la::DenseMatrix sigma2(r, r);
  for (std::size_t i = 0; i < r; ++i) {
    sigma2(i, i) = factors.sigma[i] * factors.sigma[i];
  }

  Result<la::DenseMatrix> x =
      solver == SmallSolver::kKronecker
          ? la::SolveSylvesterKron(c, w, w, sigma2)
          : la::SolveSylvesterFixedPoint(
                c, w, w, sigma2,
                {.iterations = options.iterations, .tolerance = 0.0});
  if (!x.ok()) return x.status();

  // S += C(1−C) · U·X·Uᵀ.
  la::DenseMatrix ux = la::Multiply(factors.u, x.value());
  la::DenseMatrix uxu = la::MultiplyTransposeB(ux, factors.u);
  s.AddScaled(c * (1.0 - c), uxu);
  return s;
}

}  // namespace incsr::incsvd
