#include "obs/trace_analysis.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

namespace incsr::obs {

namespace {

// Bounds-checked little-endian reads over a byte buffer (the trace-file
// mirror of the wire Reader; see obs/trace.h for why net/ is not reused).
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}

  bool U8(std::uint8_t* v) { return Raw(v, sizeof *v); }
  bool U16(std::uint16_t* v) { return Raw(v, sizeof *v); }
  bool U32(std::uint32_t* v) { return Raw(v, sizeof *v); }
  bool U64(std::uint64_t* v) { return Raw(v, sizeof *v); }
  std::size_t Remaining() const { return size_ - pos_; }
  bool Complete() const { return pos_ == size_; }

 private:
  bool Raw(void* v, std::size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(v, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

bool DecodeEvent(ByteReader* reader, TraceEvent* out) {
  return reader->U16(&out->id) && reader->U8(&out->kind) &&
         reader->U8(&out->reserved) && reader->U32(&out->arg) &&
         reader->U64(&out->ts_ns) && reader->U64(&out->value);
}

constexpr std::size_t kSerializedEventBytes = 24;

// The applier pipeline's top-level, non-overlapping phases: together they
// tile the applier thread's wall time (sub-spans like kernel.seed or
// publish.rerank nest INSIDE these and are excluded to avoid double
// counting).
constexpr EventId kTopLevelPhases[] = {EventId::kQueueIdle, EventId::kCoalesce,
                                       EventId::kKernelApply,
                                       EventId::kPublish};

bool IsTopLevelPhase(std::uint16_t id) {
  for (EventId phase : kTopLevelPhases) {
    if (static_cast<std::uint16_t>(phase) == id) return true;
  }
  return false;
}

std::string FormatNs(std::uint64_t ns) {
  char buf[32];
  if (ns >= 1'000'000'000ull) {
    std::snprintf(buf, sizeof buf, "%.3f s",
                  static_cast<double>(ns) / 1e9);
  } else if (ns >= 1'000'000ull) {
    std::snprintf(buf, sizeof buf, "%.3f ms",
                  static_cast<double>(ns) / 1e6);
  } else if (ns >= 1'000ull) {
    std::snprintf(buf, sizeof buf, "%.3f us",
                  static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu ns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

}  // namespace

std::uint64_t TraceFile::total_events() const {
  std::uint64_t total = 0;
  for (const auto& [thread_id, events] : threads) total += events.size();
  return total;
}

std::uint64_t TraceFile::total_dropped() const {
  std::uint64_t total = 0;
  for (const RingAccount& ring : rings) total += ring.dropped;
  return total;
}

Result<TraceFile> ReadTraceFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open trace file '" + path + "'");
  std::ostringstream contents;
  contents << file.rdbuf();
  const std::string bytes = contents.str();

  if (bytes.size() < sizeof kTraceMagic + 8 ||
      std::memcmp(bytes.data(), kTraceMagic, sizeof kTraceMagic) != 0) {
    return Status::InvalidArgument("'" + path + "' is not an incsr trace");
  }
  ByteReader header(bytes.data() + sizeof kTraceMagic,
                    bytes.size() - sizeof kTraceMagic);
  TraceFile out;
  std::uint32_t event_size = 0;
  if (!header.U32(&out.version) || !header.U32(&event_size)) {
    return Status::InvalidArgument("truncated trace header");
  }
  if (out.version != kTraceVersion) {
    return Status::InvalidArgument("unsupported trace version " +
                                   std::to_string(out.version));
  }
  if (event_size != kSerializedEventBytes) {
    return Status::InvalidArgument("unexpected trace event size " +
                                   std::to_string(event_size));
  }

  std::size_t at = sizeof kTraceMagic + 8;
  while (at < bytes.size()) {
    if (bytes.size() - at < 4) break;  // truncated length prefix: stop
    std::uint32_t block_len;
    std::memcpy(&block_len, bytes.data() + at, 4);
    at += 4;
    if (bytes.size() - at < block_len) break;  // truncated block: stop
    ByteReader block(bytes.data() + at, block_len);
    at += block_len;
    std::uint8_t type;
    if (!block.U8(&type)) {
      return Status::InvalidArgument("empty trace block");
    }
    if (type == kTraceBlockEvents) {
      std::uint32_t thread_id, count;
      if (!block.U32(&thread_id) || !block.U32(&count) ||
          block.Remaining() != count * kSerializedEventBytes) {
        return Status::InvalidArgument("malformed trace event block");
      }
      std::vector<TraceEvent>& events = out.threads[thread_id];
      events.reserve(events.size() + count);
      for (std::uint32_t i = 0; i < count; ++i) {
        TraceEvent event;
        if (!DecodeEvent(&block, &event)) {
          return Status::InvalidArgument("malformed trace event");
        }
        events.push_back(event);
      }
    } else if (type == kTraceBlockFooter) {
      std::uint32_t ring_count;
      if (!block.U64(&out.start_ns) || !block.U64(&out.stop_ns) ||
          !block.U32(&ring_count) ||
          block.Remaining() != ring_count * 20u) {
        return Status::InvalidArgument("malformed trace footer");
      }
      for (std::uint32_t i = 0; i < ring_count; ++i) {
        TraceFile::RingAccount ring;
        if (!block.U32(&ring.thread_id) || !block.U64(&ring.written) ||
            !block.U64(&ring.dropped)) {
          return Status::InvalidArgument("malformed trace footer entry");
        }
        out.rings.push_back(ring);
      }
      out.footer_present = true;
    } else {
      return Status::InvalidArgument("unknown trace block type " +
                                     std::to_string(type));
    }
  }
  return out;
}

TraceSummary Summarize(const TraceFile& file) {
  TraceSummary summary;
  summary.footer_present = file.footer_present;
  summary.total_events = file.total_events();
  summary.total_dropped = file.total_dropped();

  // Pass 1: the trace's time origin (earliest event start).
  std::uint64_t first = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t last = 0;
  for (const auto& [thread_id, events] : file.threads) {
    for (const TraceEvent& event : events) {
      first = std::min(first, event.ts_ns);
      const std::uint64_t end =
          event.kind == static_cast<std::uint8_t>(EventKind::kSpan)
              ? event.ts_ns + event.value
              : event.ts_ns;
      last = std::max(last, end);
    }
  }
  if (summary.total_events == 0) return summary;
  summary.first_ts_ns = first;
  summary.wall_ns = last - first;

  for (const auto& [thread_id, events] : file.threads) {
    ThreadExtent extent;
    extent.thread_id = thread_id;
    extent.events = events.size();
    std::uint64_t thread_first = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t thread_last = 0;
    std::uint64_t phase_ns = 0;
    for (const TraceEvent& event : events) {
      thread_first = std::min(thread_first, event.ts_ns);
      const bool is_span =
          event.kind == static_cast<std::uint8_t>(EventKind::kSpan);
      const std::uint64_t end =
          is_span ? event.ts_ns + event.value : event.ts_ns;
      thread_last = std::max(thread_last, end);
      if (is_span) {
        PhaseStat& stat = summary.spans[event.id];
        ++stat.count;
        stat.total_ns += event.value;
        stat.arg_sum += event.arg;
        stat.durations.count += 1;
        stat.durations.sum += event.value;
        stat.durations.min = std::min(stat.durations.min, event.value);
        stat.durations.max = std::max(stat.durations.max, event.value);
        ++stat.durations.buckets[HistogramBucketFor(event.value)];
        if (event.id == static_cast<std::uint16_t>(EventId::kBatchApply)) {
          extent.is_applier = true;
        }
        if (IsTopLevelPhase(event.id)) phase_ns += event.value;
      } else {
        PhaseStat& stat = summary.counters[event.id];
        ++stat.count;
        stat.total_ns += event.value;
        stat.arg_sum += event.arg;
        if (event.id ==
            static_cast<std::uint16_t>(EventId::kEpochPublished)) {
          EpochPoint point;
          point.epoch = event.arg;
          point.ts_ns = event.ts_ns - first;
          point.batch_size = event.value;
          summary.epochs.push_back(point);
        }
      }
    }
    extent.first_ns = thread_first - first;
    extent.last_ns = thread_last - first;
    summary.threads.push_back(extent);
    if (extent.is_applier) {
      summary.applier_phase_ns += phase_ns;
      summary.applier_wall_ns += thread_last - thread_first;
    }
  }
  std::sort(summary.epochs.begin(), summary.epochs.end(),
            [](const EpochPoint& a, const EpochPoint& b) {
              return a.ts_ns < b.ts_ns;
            });
  if (summary.applier_wall_ns > 0) {
    summary.applier_coverage =
        static_cast<double>(summary.applier_phase_ns) /
        static_cast<double>(summary.applier_wall_ns);
  }
  return summary;
}

std::string RenderSummary(const TraceSummary& summary) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof line,
                "trace: %llu events on %zu thread(s) over %s, %llu dropped%s\n",
                static_cast<unsigned long long>(summary.total_events),
                summary.threads.size(), FormatNs(summary.wall_ns).c_str(),
                static_cast<unsigned long long>(summary.total_dropped),
                summary.footer_present ? "" : " (no footer: truncated file)");
  out << line;
  if (summary.total_events == 0) return out.str();

  out << "\nspans (per-phase wall time):\n";
  std::snprintf(line, sizeof line, "  %-26s %10s %14s %12s %12s %12s\n",
                "phase", "count", "total", "mean", "p50", "p99");
  out << line;
  // Widest total first: the report reads as "where did the time go".
  std::vector<std::pair<std::uint16_t, const PhaseStat*>> ordered;
  for (const auto& [id, stat] : summary.spans) ordered.emplace_back(id, &stat);
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    return a.second->total_ns > b.second->total_ns;
  });
  for (const auto& [id, stat] : ordered) {
    std::snprintf(
        line, sizeof line, "  %-26s %10llu %14s %12s %12s %12s\n",
        EventName(static_cast<EventId>(id)),
        static_cast<unsigned long long>(stat->count),
        FormatNs(stat->total_ns).c_str(),
        FormatNs(stat->count == 0 ? 0 : stat->total_ns / stat->count).c_str(),
        FormatNs(static_cast<std::uint64_t>(stat->durations.Percentile(0.50)))
            .c_str(),
        FormatNs(static_cast<std::uint64_t>(stat->durations.Percentile(0.99)))
            .c_str());
    out << line;
  }

  if (summary.applier_wall_ns > 0) {
    std::snprintf(
        line, sizeof line,
        "\napplier pipeline coverage: %.1f%% of %s applier wall time "
        "(queue.idle + coalesce + kernel.apply + publish)%s\n",
        100.0 * summary.applier_coverage,
        FormatNs(summary.applier_wall_ns).c_str(),
        summary.applier_coverage >= 0.9
            ? ""
            : "  ** below the 90% bar: unattributed time between phases **");
    out << line;
  }

  if (!summary.counters.empty()) {
    out << "\ncounters:\n";
    std::snprintf(line, sizeof line, "  %-26s %10s %16s\n", "counter",
                  "count", "value sum");
    out << line;
    for (const auto& [id, stat] : summary.counters) {
      std::snprintf(line, sizeof line, "  %-26s %10llu %16llu\n",
                    EventName(static_cast<EventId>(id)),
                    static_cast<unsigned long long>(stat.count),
                    static_cast<unsigned long long>(stat.total_ns));
      out << line;
    }
  }

  if (!summary.epochs.empty()) {
    std::snprintf(line, sizeof line,
                  "\nepoch timeline: %zu epochs published",
                  summary.epochs.size());
    out << line;
    std::uint64_t updates = 0;
    for (const EpochPoint& point : summary.epochs) {
      updates += point.batch_size;
    }
    std::snprintf(line, sizeof line, ", %llu updates total\n",
                  static_cast<unsigned long long>(updates));
    out << line;
    const std::size_t tail =
        std::min<std::size_t>(summary.epochs.size(), 10);
    for (std::size_t i = summary.epochs.size() - tail;
         i < summary.epochs.size(); ++i) {
      const EpochPoint& point = summary.epochs[i];
      std::snprintf(line, sizeof line,
                    "  t+%-12s epoch %-8u batch %llu\n",
                    FormatNs(point.ts_ns).c_str(), point.epoch,
                    static_cast<unsigned long long>(point.batch_size));
      out << line;
    }
  }

  out << "\nthreads:\n";
  for (const ThreadExtent& extent : summary.threads) {
    std::snprintf(
        line, sizeof line,
        "  thread %-4u %8llu events, active t+%s .. t+%s%s\n",
        extent.thread_id, static_cast<unsigned long long>(extent.events),
        FormatNs(extent.first_ns).c_str(), FormatNs(extent.last_ns).c_str(),
        extent.is_applier ? "  [applier]" : "");
    out << line;
  }
  return out.str();
}

}  // namespace incsr::obs
