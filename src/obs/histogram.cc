#include "obs/histogram.h"

#include <algorithm>
#include <bit>

namespace incsr::obs {

std::size_t HistogramBucketFor(std::uint64_t v) {
  if (v < 8) return static_cast<std::size_t>(v);
  // e = position of the leading one (>= 3 here); the two bits below it
  // pick one of 4 sub-buckets inside the octave [2^e, 2^(e+1)).
  const unsigned e = static_cast<unsigned>(std::bit_width(v)) - 1;
  const std::uint64_t sub = (v >> (e - 2)) & 3;
  // Octave e=3 starts at index 8; e=63 tops out at index 251 < 256.
  return 8 + (static_cast<std::size_t>(e) - 3) * 4 +
         static_cast<std::size_t>(sub);
}

std::uint64_t HistogramBucketLowerBound(std::size_t index) {
  if (index < 8) return static_cast<std::uint64_t>(index);
  const std::size_t e = 3 + (index - 8) / 4;
  const std::uint64_t sub = (index - 8) % 4;
  return (std::uint64_t{4} + sub) << (e - 2);
}

HistogramSnapshot& HistogramSnapshot::operator+=(
    const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  return *this;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th value among `count` samples (nearest-rank with
  // interpolation inside the bucket).
  const double target = q * static_cast<double>(count - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) > target) {
      const double within =
          in_bucket <= 1
              ? 0.0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket - 1);
      const double lo = static_cast<double>(HistogramBucketLowerBound(i));
      const double hi =
          i + 1 < kHistogramBuckets
              ? static_cast<double>(HistogramBucketLowerBound(i + 1))
              : lo * 2.0;
      const double value = lo + within * (hi - lo);
      // The true extremes are tracked exactly; never report outside them.
      return std::clamp(value, static_cast<double>(min),
                        static_cast<double>(max));
    }
    seen += in_bucket;
  }
  return static_cast<double>(max);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    out.count += out.buckets[i];
  }
  out.sum = sum_.load(std::memory_order_relaxed);
  out.min = min_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace incsr::obs
