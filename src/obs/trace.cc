#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

namespace incsr::obs {

namespace {

// Little-endian field serialization for the drainer (mirrors the wire
// Writer conventions; the repo targets LE hosts, see src/net/wire.h).
void PutU16(std::string* out, std::uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}
void PutU32(std::string* out, std::uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}
void PutU64(std::string* out, std::uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

void PutEvent(std::string* out, const TraceEvent& e) {
  PutU16(out, e.id);
  out->push_back(static_cast<char>(e.kind));
  out->push_back(static_cast<char>(e.reserved));
  PutU32(out, e.arg);
  PutU64(out, e.ts_ns);
  PutU64(out, e.value);
}

std::size_t RoundUpPow2(std::size_t v) {
  if (v < 8) return 8;
  return std::bit_ceil(v);
}

}  // namespace

const char* EventName(EventId id) {
  switch (id) {
    case EventId::kNone: return "none";
    case EventId::kQueueIdle: return "queue.idle";
    case EventId::kBatchApply: return "batch.apply";
    case EventId::kCoalesce: return "coalesce";
    case EventId::kKernelApply: return "kernel.apply";
    case EventId::kPublish: return "publish";
    case EventId::kGraphSnapshot: return "publish.graph_snapshot";
    case EventId::kStorePublish: return "publish.store";
    case EventId::kTierPolicy: return "publish.tier_policy";
    case EventId::kRerank: return "publish.rerank";
    case EventId::kCacheInvalidate: return "publish.cache_invalidate";
    case EventId::kQueueWait: return "queue.wait";
    case EventId::kEpochPublished: return "epoch.published";
    case EventId::kKernelSeed: return "kernel.seed";
    case EventId::kKernelExpand: return "kernel.expand";
    case EventId::kKernelScatter: return "kernel.scatter";
    case EventId::kSchedRegion: return "sched.region";
    case EventId::kSchedSteal: return "sched.steal";
    case EventId::kStoreRowCow: return "store.row_cow";
    case EventId::kStoreTierDemote: return "store.tier_demote";
    case EventId::kStoreTierPromote: return "store.tier_promote";
    case EventId::kRpc: return "rpc";
    case EventId::kStoreWriteSpill: return "store.write_spill";
    case EventId::kStoreSparseMerge: return "store.sparse_merge";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity, std::uint32_t thread_id)
    : slots_(RoundUpPow2(capacity)),
      capacity_(slots_.size()),
      mask_(slots_.size() - 1),
      thread_id_(thread_id) {}

std::size_t TraceRing::Drain(std::vector<TraceEvent>* out) {
  // acquire pairs with the producer's head release: every slot below head
  // is fully written before we copy it.
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t drained = static_cast<std::size_t>(head - tail);
  out->reserve(out->size() + drained);
  for (; tail != head; ++tail) {
    out->push_back(slots_[tail & mask_]);
  }
  // release hands the consumed slots back to the producer's acquire load.
  tail_.store(tail, std::memory_order_release);
  return drained;
}

// ---- Tracer ----------------------------------------------------------------

std::atomic<bool> Tracer::enabled_{false};

struct Tracer::Impl {
  std::FILE* file = nullptr;
  std::string path;
  std::size_t ring_capacity = 0;  // events per ring
  std::uint64_t start_ns = 0;
  std::uint64_t session = 0;
  // Ring registry: appended by registering threads, scanned by the
  // drainer. shared_ptr keeps a ring alive past its thread's exit until
  // the final drain has serialized it.
  std::mutex rings_mu;
  std::vector<std::shared_ptr<TraceRing>> rings;
  std::uint32_t next_thread_id = 0;
  // Drainer shutdown handshake.
  std::mutex stop_mu;
  std::condition_variable stop_cv;
  bool stop_requested = false;
  // Scratch reused across flushes (drainer thread only).
  std::vector<TraceEvent> drain_buffer;
};

namespace {

// Thread-local ring handle. The session stamp invalidates the cache
// across Stop()/Start() cycles: a stale handle re-registers into the new
// session's registry instead of pushing into an abandoned ring.
struct ThreadRingHandle {
  std::uint64_t session = 0;
  std::shared_ptr<TraceRing> ring;
};
thread_local ThreadRingHandle tls_ring;

// CI auto-start: INCSR_TRACE_FILE=<path> traces any binary from main()
// onward without touching its source ("%p" expands to the pid, so
// concurrently launched binaries write distinct files).
struct EnvAutoStart {
  EnvAutoStart() {
    if (const char* path = std::getenv("INCSR_TRACE_FILE")) {
      if (*path != '\0') {
        std::size_t buffer_kb = 1024;
        if (const char* kb = std::getenv("INCSR_TRACE_BUFFER_KB")) {
          char* end = nullptr;
          const long parsed = std::strtol(kb, &end, 10);
          if (end != kb && *end == '\0' && parsed > 0) {
            buffer_kb = static_cast<std::size_t>(parsed);
          }
        }
        // Failure to open the file must not take the process down; the
        // trace is best-effort observability.
        Status started = Tracer::Instance().Start(path, buffer_kb);
        if (!started.ok()) {
          std::fprintf(stderr, "trace: %s\n", started.ToString().c_str());
        }
      }
    }
  }
  ~EnvAutoStart() { Tracer::Instance().Stop(); }
};
EnvAutoStart env_auto_start;

}  // namespace

Tracer& Tracer::Instance() {
  // Leaked on purpose (like Scheduler::Global): worker threads may emit
  // during static destruction, and the env auto-starter above already
  // stops any active session at exit.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::~Tracer() { Stop(); }

Status Tracer::Start(const std::string& path, std::size_t buffer_kb) {
  std::lock_guard<std::mutex> lock(mu_);
  if (impl_ != nullptr) {
    return Status::FailedPrecondition(
        "trace session already active: " + impl_->path);
  }
  std::string resolved = path;
  if (const std::size_t at = resolved.find("%p"); at != std::string::npos) {
    resolved.replace(at, 2, std::to_string(::getpid()));
  }
  std::FILE* file = std::fopen(resolved.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open trace file '" + resolved + "'");
  }
  auto impl = std::make_shared<Impl>();
  impl->file = file;
  impl->path = resolved;
  impl->ring_capacity =
      std::max<std::size_t>(8, buffer_kb * 1024 / sizeof(TraceEvent));
  impl->start_ns = NowNs();
  impl->session = session_.load(std::memory_order_relaxed) + 1;

  std::string header;
  header.append(kTraceMagic, sizeof kTraceMagic);
  PutU32(&header, kTraceVersion);
  PutU32(&header, static_cast<std::uint32_t>(sizeof(TraceEvent)));
  std::fwrite(header.data(), 1, header.size(), file);

  impl_ = impl;
  drainer_ = std::thread(&Tracer::DrainerLoop, this, impl);
  // Producers may observe enabled before the session bump; Emit orders
  // the two loads the other way, so the worst case is one event dropped
  // into the OLD session's abandoned ring, never a torn registration.
  session_.store(impl->session, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

void Tracer::Stop() {
  std::shared_ptr<Impl> impl;
  std::thread drainer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (impl_ == nullptr) return;
    enabled_.store(false, std::memory_order_release);
    impl = impl_;
    impl_ = nullptr;
    drainer = std::move(drainer_);
  }
  {
    std::lock_guard<std::mutex> lock(impl->stop_mu);
    impl->stop_requested = true;
  }
  impl->stop_cv.notify_all();
  if (drainer.joinable()) drainer.join();

  // Final drain + footer on THIS thread, after the drainer is gone. A
  // producer that loaded enabled=true just before the store above may
  // still push one event after this drain; it is lost with the ring —
  // stopping never blocks on producers.
  FlushRings(impl.get());
  std::string footer;
  footer.push_back(static_cast<char>(kTraceBlockFooter));
  PutU64(&footer, impl->start_ns);
  PutU64(&footer, NowNs());
  {
    std::lock_guard<std::mutex> lock(impl->rings_mu);
    PutU32(&footer, static_cast<std::uint32_t>(impl->rings.size()));
    for (const auto& ring : impl->rings) {
      PutU32(&footer, ring->thread_id());
      PutU64(&footer, ring->written());
      PutU64(&footer, ring->dropped());
    }
  }
  std::string framed;
  PutU32(&framed, static_cast<std::uint32_t>(footer.size()));
  framed += footer;
  std::fwrite(framed.data(), 1, framed.size(), impl->file);
  std::fclose(impl->file);
  impl->file = nullptr;
}

void Tracer::Emit(const TraceEvent& event) {
  const std::uint64_t session = session_.load(std::memory_order_acquire);
  if (tls_ring.session != session) {
    tls_ring.ring = RegisterThreadRing();
    tls_ring.session = session;
  }
  if (tls_ring.ring != nullptr) tls_ring.ring->TryPush(event);
}

std::shared_ptr<TraceRing> Tracer::RegisterThreadRing() {
  std::lock_guard<std::mutex> lock(mu_);
  if (impl_ == nullptr) return nullptr;  // raced a Stop(); drop the event
  std::lock_guard<std::mutex> rings_lock(impl_->rings_mu);
  auto ring = std::make_shared<TraceRing>(impl_->ring_capacity,
                                          impl_->next_thread_id++);
  impl_->rings.push_back(ring);
  return ring;
}

void Tracer::FlushRings(Impl* impl) {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    std::lock_guard<std::mutex> lock(impl->rings_mu);
    rings = impl->rings;
  }
  for (const auto& ring : rings) {
    impl->drain_buffer.clear();
    if (ring->Drain(&impl->drain_buffer) == 0) continue;
    std::string block;
    block.push_back(static_cast<char>(kTraceBlockEvents));
    PutU32(&block, ring->thread_id());
    PutU32(&block, static_cast<std::uint32_t>(impl->drain_buffer.size()));
    for (const TraceEvent& event : impl->drain_buffer) {
      PutEvent(&block, event);
    }
    std::string framed;
    PutU32(&framed, static_cast<std::uint32_t>(block.size()));
    framed += block;
    std::fwrite(framed.data(), 1, framed.size(), impl->file);
  }
}

void Tracer::DrainerLoop(std::shared_ptr<Impl> impl) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(impl->stop_mu);
      // ~5 ms cadence: at the bench's event rates each wakeup drains a
      // few hundred events — far from the ring capacity, so drops only
      // happen on pathological bursts (and are counted when they do).
      impl->stop_cv.wait_for(lock, std::chrono::milliseconds(5),
                             [&] { return impl->stop_requested; });
      if (impl->stop_requested) return;  // Stop() runs the final drain
    }
    FlushRings(impl.get());
  }
}

std::uint64_t Tracer::TotalEventsRecorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (impl_ == nullptr) return 0;
  std::lock_guard<std::mutex> rings_lock(impl_->rings_mu);
  std::uint64_t total = 0;
  for (const auto& ring : impl_->rings) total += ring->written();
  return total;
}

std::uint64_t Tracer::TotalEventsDropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (impl_ == nullptr) return 0;
  std::lock_guard<std::mutex> rings_lock(impl_->rings_mu);
  std::uint64_t total = 0;
  for (const auto& ring : impl_->rings) total += ring->dropped();
  return total;
}

std::size_t Tracer::ring_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (impl_ == nullptr) return 0;
  std::lock_guard<std::mutex> rings_lock(impl_->rings_mu);
  return impl_->rings.size();
}

std::string Tracer::active_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return impl_ == nullptr ? std::string() : impl_->path;
}

}  // namespace incsr::obs
