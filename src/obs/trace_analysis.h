// Offline trace decoding + summarization (the consumer half of the
// writer/analyzer split in obs/trace.h). ReadTraceFile parses a trace
// into raw per-thread events; Summarize rolls them into the report
// `incsr_cli trace summarize` prints: per-phase wall-time breakdowns
// (with the applier pipeline's queue / coalesce / kernel / publish
// coverage check against thread wall time), per-epoch batch timelines,
// latency histograms per span id, and the per-ring dropped-event
// accounting that says whether the trace is complete.
//
// Decoding is defensive like the wire Reader: truncated files (a crashed
// producer) keep every complete block and report the footer as missing;
// malformed blocks fail cleanly, never over-read.
#ifndef INCSR_OBS_TRACE_ANALYSIS_H_
#define INCSR_OBS_TRACE_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/histogram.h"
#include "obs/trace.h"

namespace incsr::obs {

/// A decoded trace file: events grouped by producing thread, plus the
/// footer's accounting when present.
struct TraceFile {
  std::uint32_t version = 0;
  /// thread id -> events in push order.
  std::map<std::uint32_t, std::vector<TraceEvent>> threads;
  /// Footer accounting (empty when the footer is missing — truncated
  /// file; the events above are still the complete prefix).
  struct RingAccount {
    std::uint32_t thread_id = 0;
    std::uint64_t written = 0;
    std::uint64_t dropped = 0;
  };
  std::vector<RingAccount> rings;
  bool footer_present = false;
  std::uint64_t start_ns = 0;
  std::uint64_t stop_ns = 0;

  std::uint64_t total_events() const;
  std::uint64_t total_dropped() const;
};

/// Parses a trace file from disk. Fails on a bad magic/version or a
/// structurally malformed block; tolerates truncation after any complete
/// block (footer_present = false).
Result<TraceFile> ReadTraceFile(const std::string& path);

/// Aggregated per-event statistics.
struct PhaseStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  ///< spans: Σ duration; counters: Σ value
  std::uint64_t arg_sum = 0;   ///< Σ arg (batch sizes, row counts, ...)
  HistogramSnapshot durations; ///< spans only: duration distribution
};

/// One published epoch on the applier timeline.
struct EpochPoint {
  std::uint32_t epoch = 0;
  std::uint64_t ts_ns = 0;      ///< relative to the trace's first event
  std::uint64_t batch_size = 0;
};

/// Per-thread activity extent.
struct ThreadExtent {
  std::uint32_t thread_id = 0;
  std::uint64_t first_ns = 0;  ///< relative to the trace's first event
  std::uint64_t last_ns = 0;
  std::uint64_t events = 0;
  bool is_applier = false;  ///< emitted batch.apply spans
};

struct TraceSummary {
  std::map<std::uint16_t, PhaseStat> spans;
  std::map<std::uint16_t, PhaseStat> counters;
  std::vector<EpochPoint> epochs;
  std::vector<ThreadExtent> threads;
  std::uint64_t first_ts_ns = 0;  ///< absolute steady-clock origin
  std::uint64_t wall_ns = 0;      ///< last event end - first event start
  std::uint64_t total_events = 0;
  std::uint64_t total_dropped = 0;
  bool footer_present = false;
  /// Applier coverage: Σ of the top-level pipeline phases (queue.idle,
  /// coalesce, kernel.apply, publish) over the applier threads' summed
  /// wall extents. The acceptance bar is >= 0.9 — the pipeline spans
  /// account for the applier's time, so a regression shows up IN a phase
  /// rather than between them. 0 when no applier thread traced.
  double applier_coverage = 0.0;
  std::uint64_t applier_phase_ns = 0;
  std::uint64_t applier_wall_ns = 0;
};

TraceSummary Summarize(const TraceFile& file);

/// Renders the summary as the human-readable report of
/// `incsr_cli trace summarize` (per-phase table, coverage line, epoch
/// timeline tail, drop accounting).
std::string RenderSummary(const TraceSummary& summary);

}  // namespace incsr::obs

#endif  // INCSR_OBS_TRACE_ANALYSIS_H_
