// Structured serve-path tracing (docs/tracing.md). Producer side follows
// the writer/analyzer split of production trace systems (Unreal's
// TraceLog): every instrumented thread appends fixed-size binary events
// to a PRIVATE bounded SPSC ring, and a background drainer serializes the
// rings into a length-prefixed trace file. The discipline mirrors the
// TrafficSketch: no locks, no allocation, and no blocking anywhere on the
// hot path —
//
//   - disabled cost: ONE relaxed atomic load (the macros check
//     Tracer::Enabled() and fall through);
//   - enabled cost: one 24-byte ring write plus a release store of the
//     ring head (a scope's constructor only reads the clock; the single
//     event carries start timestamp + duration and is written at
//     destruction);
//   - overflow: a full ring DROPS the event and counts it (per-ring
//     dropped counters land in the trace footer), it never blocks the
//     producer or resizes under it.
//
// The consumer side lives in obs/trace_analysis.h (offline decoding) and
// `incsr_cli trace summarize` (per-phase wall-time breakdowns, per-epoch
// batch timelines). The file format mirrors the wire conventions of
// src/net/wire.h — little-endian fixed-width fields, length-prefixed
// blocks, a versioned header — but is implemented here without a net/
// dependency: net/ sits ABOVE service/, which depends on this header.
#ifndef INCSR_OBS_TRACE_H_
#define INCSR_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace incsr::obs {

/// Stable event identifiers. Values are part of the trace-file contract
/// (docs/tracing.md): renumbering breaks old traces, so new events append
/// only. Grouped by the serve-path layer that emits them.
enum class EventId : std::uint16_t {
  kNone = 0,

  // ---- service applier pipeline (service/simrank_service.cc) ----
  /// Span: applier blocked waiting for queued updates (the "queue" phase
  /// of the per-batch breakdown — time with nothing to apply).
  kQueueIdle = 1,
  /// Span: whole ApplyAndPublish cycle; arg = drained batch size.
  kBatchApply = 2,
  /// Span: batch pre-validation + dedup overlay (the coalesce prep).
  kCoalesce = 3,
  /// Span: the update kernels (ApplyBatchCoalesced / ApplyBatch /
  /// unit-update recovery); arg = valid updates applied.
  kKernelApply = 4,
  /// Span: epoch publish (tier policy, snapshots, re-rank, invalidate).
  kPublish = 5,
  /// Span: COW graph snapshot inside publish.
  kGraphSnapshot = 6,
  /// Span: ScoreStore::Publish (row-pointer-table copy).
  kStorePublish = 7,
  /// Span: tier + adaptive-capacity policies inside publish.
  kTierPolicy = 8,
  /// Span: top-k re-rank of touched rows; arg = rows re-ranked.
  kRerank = 9,
  /// Span: query-cache invalidation after the snapshot swap.
  kCacheInvalidate = 10,
  /// Counter: per-batch ingest-queue wait; value = summed wait ns over
  /// the batch, arg = updates drained (mean wait = value / arg).
  kQueueWait = 11,
  /// Instant: epoch published; arg = epoch (low 32 bits), value = batch
  /// size as applied.
  kEpochPublished = 12,

  // ---- update kernels (core/inc_sr.cc, core/inc_usr.cc) ----
  /// Span: seed computation (Inc-SR sparse seed scan / Inc-uSR seed).
  kKernelSeed = 13,
  /// Span: support-set expansion (one AdvanceSparse / Multiply step).
  kKernelExpand = 14,
  /// Span: scatter of the outer-product correction into S.
  kKernelScatter = 15,

  // ---- scheduler (common/scheduler.cc) ----
  /// Span: one parallel region, submitter side (publish tickets + drain
  /// + completion wait); arg = chunk count.
  kSchedRegion = 16,
  /// Counter: a worker stole a ticket from another worker's ring.
  kSchedSteal = 17,

  // ---- score store (la/score_store.cc) ----
  /// Counter: copy-on-write shard clone on first write; value = bytes.
  kStoreRowCow = 18,
  /// Counter: dense row demoted to the sparse tier; value = payload bytes
  /// after sparsification.
  kStoreTierDemote = 19,
  /// Counter: sparse row promoted (or densified-on-write) back to dense.
  kStoreTierPromote = 20,

  // ---- network server (net/server.cc) ----
  /// Span: one RPC dispatch (decode + backend call + encode); arg = the
  /// frame's MessageTag byte.
  kRpc = 21,

  // ---- score store, sparse-native write path (la/score_store.cc) ----
  /// Counter: a sparse row densified on the WRITE path (MutableRowPtr
  /// densify-on-write, a RowWriter Dense() spill, or a merge past the
  /// max_density gate) — distinct from a tier-policy promotion.
  kStoreWriteSpill = 22,
  /// Counter: a sparse-native write session committed as an index-merge
  /// (the row stayed sparse); value = merged payload bytes.
  kStoreSparseMerge = 23,
};

/// Human-readable name for an event id ("kernel.apply"); "unknown" for
/// ids this build does not know (a newer trace read by an older binary).
const char* EventName(EventId id);

enum class EventKind : std::uint8_t {
  /// ts_ns = scope entry, value = duration in ns.
  kSpan = 0,
  /// ts_ns = emission time, value = the counted quantity.
  kCounter = 1,
  /// ts_ns = emission time, value free-form.
  kInstant = 2,
};

/// One fixed-size trace event. 24 bytes, trivially copyable — rings and
/// the drainer move these by value; the file writer serializes the fields
/// explicitly (little-endian), so the in-memory layout never reaches disk.
struct TraceEvent {
  std::uint16_t id = 0;    ///< EventId
  std::uint8_t kind = 0;   ///< EventKind
  std::uint8_t reserved = 0;
  std::uint32_t arg = 0;   ///< event-specific context (epoch, size, tag)
  std::uint64_t ts_ns = 0; ///< steady-clock ns (span: scope entry)
  std::uint64_t value = 0; ///< span: duration ns; counter/instant: value
};
static_assert(sizeof(TraceEvent) == 24, "TraceEvent is a 24-byte record");
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "rings memcpy events");

/// Bounded single-producer single-consumer event ring. The owning thread
/// is the only pusher; the drainer is the only popper. A full ring drops
/// (and counts) — producers never block on the consumer.
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two, minimum 8.
  TraceRing(std::size_t capacity, std::uint32_t thread_id);

  /// Producer side: false (and one dropped count) when full.
  bool TryPush(const TraceEvent& event) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    // acquire pairs with the drainer's tail release: slots below tail are
    // free to reuse only once the drainer has finished copying them.
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[head & mask_] = event;
    // release publishes the slot write to the drainer's acquire head load.
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: appends every pending event to `out`, in push order.
  std::size_t Drain(std::vector<TraceEvent>* out);

  std::uint32_t thread_id() const { return thread_id_; }
  /// Events ever accepted (monotonic; read by the drainer / footer).
  std::uint64_t written() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Events dropped on overflow (monotonic).
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return capacity_; }

 private:
  std::vector<TraceEvent> slots_;
  std::size_t capacity_;
  std::size_t mask_;
  std::uint32_t thread_id_;
  std::atomic<std::uint64_t> head_{0};    // producer writes
  std::atomic<std::uint64_t> tail_{0};    // drainer writes
  std::atomic<std::uint64_t> dropped_{0}; // producer writes
};

// ---- Trace file format (version 1) -----------------------------------------
//
//   header:  "INCSRTRC" (8 B)  u32 version  u32 event_size (24)
//   blocks:  u32 block_len, then block_len bytes:
//     type 0x01 (events): u8 type, u32 thread_id, u32 count,
//                         count * 24 B of events (fields LE, in order:
//                         u16 id, u8 kind, u8 reserved, u32 arg,
//                         u64 ts_ns, u64 value)
//     type 0x02 (footer): u8 type, u64 start_ns, u64 stop_ns,
//                         u32 ring_count, ring_count * {u32 thread_id,
//                         u64 written, u64 dropped}
//   A crashed producer leaves a truncated file: readers treat a missing
//   footer as "dropped counts unknown" and keep every complete block.

inline constexpr char kTraceMagic[8] = {'I', 'N', 'C', 'S',
                                        'R', 'T', 'R', 'C'};
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::uint8_t kTraceBlockEvents = 0x01;
inline constexpr std::uint8_t kTraceBlockFooter = 0x02;

/// Process-wide trace collector: owns the per-thread ring registry, the
/// drainer thread, and the output file. All methods are thread-safe;
/// Enabled() is the only thing the hot path ever reads.
class Tracer {
 public:
  static Tracer& Instance();

  /// The macros' fast-path gate: one relaxed load.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Steady-clock nanoseconds (the trace's time base).
  static std::uint64_t NowNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Starts a trace session writing to `path`. `buffer_kb` sizes EACH
  /// per-thread ring (clamped to >= 8 events). Fails if a session is
  /// already active or the file cannot be created. "%p" in `path` is
  /// replaced by the process id (used by INCSR_TRACE_FILE in CI so
  /// concurrent test binaries do not clobber one file).
  Status Start(const std::string& path, std::size_t buffer_kb = 1024);

  /// Stops the session: final drain, footer, close. Idempotent. Events
  /// emitted by racing producers after the final drain are lost (their
  /// rings are abandoned), never blocked on.
  void Stop();

  /// Hot path (only reached when Enabled()): registers this thread's
  /// ring on first use, then one SPSC push.
  void Emit(const TraceEvent& event);

  /// Sum of written / dropped over the current session's rings. Computed
  /// on demand from the ring heads — no hot-path accounting. Used by
  /// tests (the disabled-macro zero-cost check) and the stop-time log.
  std::uint64_t TotalEventsRecorded() const;
  std::uint64_t TotalEventsDropped() const;
  /// Rings registered in the current session.
  std::size_t ring_count() const;
  /// Path of the active session ("" when stopped).
  std::string active_path() const;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer() = default;
  ~Tracer();

  struct Impl;

  std::shared_ptr<TraceRing> RegisterThreadRing();
  void DrainerLoop(std::shared_ptr<Impl> impl);
  static void FlushRings(Impl* impl);

  // The macro gate lives outside Impl so Enabled() is a plain static
  // atomic load with no indirection.
  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;               // session lifecycle + registry
  std::shared_ptr<Impl> impl_;          // null when stopped
  std::atomic<std::uint64_t> session_{0};
  std::thread drainer_;
};

/// RAII span: reads the clock at entry, emits ONE event (start + duration)
/// at exit. Costs a single relaxed load when tracing is disabled.
class TraceScope {
 public:
  explicit TraceScope(EventId id, std::uint32_t arg = 0) {
    if (!Tracer::Enabled()) return;
    id_ = id;
    arg_ = arg;
    start_ns_ = Tracer::NowNs();
    armed_ = true;
  }
  ~TraceScope() {
    if (!armed_) return;
    TraceEvent event;
    event.id = static_cast<std::uint16_t>(id_);
    event.kind = static_cast<std::uint8_t>(EventKind::kSpan);
    event.arg = arg_;
    event.ts_ns = start_ns_;
    event.value = Tracer::NowNs() - start_ns_;
    Tracer::Instance().Emit(event);
  }

  /// Attaches context discovered after entry (e.g. rows re-ranked).
  void set_arg(std::uint32_t arg) { arg_ = arg; }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  EventId id_ = EventId::kNone;
  std::uint32_t arg_ = 0;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

/// Emits one counter / instant event (no-op unless tracing is enabled).
inline void TraceEmit(EventId id, EventKind kind, std::uint32_t arg,
                      std::uint64_t value) {
  if (!Tracer::Enabled()) return;
  TraceEvent event;
  event.id = static_cast<std::uint16_t>(id);
  event.kind = static_cast<std::uint8_t>(kind);
  event.arg = arg;
  event.ts_ns = Tracer::NowNs();
  event.value = value;
  Tracer::Instance().Emit(event);
}

}  // namespace incsr::obs

// Instrumentation macros. `id` is an obs::EventId enumerator name; the
// disabled cost of every macro is the single relaxed load inside
// Tracer::Enabled() / TraceScope's constructor.
#define INCSR_TRACE_CONCAT_INNER(a, b) a##b
#define INCSR_TRACE_CONCAT(a, b) INCSR_TRACE_CONCAT_INNER(a, b)

/// Scoped span: one event carrying entry timestamp + duration.
#define TRACE_SCOPE(id)                                     \
  ::incsr::obs::TraceScope INCSR_TRACE_CONCAT(              \
      incsr_trace_scope_, __LINE__)(::incsr::obs::EventId::id)
/// Scoped span with a u32 context argument.
#define TRACE_SCOPE_ARG(id, arg32)                          \
  ::incsr::obs::TraceScope INCSR_TRACE_CONCAT(              \
      incsr_trace_scope_, __LINE__)(::incsr::obs::EventId::id, \
                                    static_cast<std::uint32_t>(arg32))
/// Scoped span bound to a local name, for set_arg after the fact.
#define TRACE_SCOPE_NAMED(var, id) \
  ::incsr::obs::TraceScope var(::incsr::obs::EventId::id)
/// One counter event (value accumulates in the analyzer).
#define TRACE_COUNTER(id, v)                                 \
  ::incsr::obs::TraceEmit(::incsr::obs::EventId::id,         \
                          ::incsr::obs::EventKind::kCounter, \
                          0, static_cast<std::uint64_t>(v))
/// Counter with a u32 context argument.
#define TRACE_COUNTER_ARG(id, arg32, v)                      \
  ::incsr::obs::TraceEmit(::incsr::obs::EventId::id,         \
                          ::incsr::obs::EventKind::kCounter, \
                          static_cast<std::uint32_t>(arg32), \
                          static_cast<std::uint64_t>(v))
/// Point-in-time marker.
#define TRACE_INSTANT(id, arg32, v)                          \
  ::incsr::obs::TraceEmit(::incsr::obs::EventId::id,         \
                          ::incsr::obs::EventKind::kInstant, \
                          static_cast<std::uint32_t>(arg32), \
                          static_cast<std::uint64_t>(v))

#endif  // INCSR_OBS_TRACE_H_
