// Streaming log-bucketed latency histogram (docs/tracing.md). The shape
// is HdrHistogram-lite: 4 sub-buckets per power-of-two octave, 256
// buckets total, covering the full u64 range with <= 25% relative bucket
// width — percentiles interpolated inside a bucket are accurate to a few
// percent at every scale from nanoseconds to minutes, with a fixed 2 KiB
// footprint and no allocation.
//
// Histogram is the live, thread-safe recorder: Record() is one relaxed
// fetch_add on the bucket plus relaxed min/max updates — safe from any
// number of threads, cheap enough for the serve path. HistogramSnapshot
// is the plain-data copy that travels: through ServiceStats, the shard
// aggregator's field-wise `+=` (histograms MERGE by bucket-wise addition,
// which is exact — no resampling error), and the wire v4 StatsResponse
// tail (src/net/wire.cc encodes the non-zero buckets sparsely).
#ifndef INCSR_OBS_HISTOGRAM_H_
#define INCSR_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace incsr::obs {

/// Number of histogram buckets; bucket indices fit a u8 on the wire.
inline constexpr std::size_t kHistogramBuckets = 256;

/// Maps a value to its bucket. Values 0..7 get exact unit buckets; above
/// that, each power-of-two octave splits into 4 sub-buckets keyed by the
/// two bits below the leading one. Monotonic in `v`, total over u64.
std::size_t HistogramBucketFor(std::uint64_t v);

/// Smallest value mapping to bucket `index` (the bucket's lower edge).
std::uint64_t HistogramBucketLowerBound(std::size_t index);

/// Plain-data histogram state: copy, merge, serialize freely.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  /// Valid only when count > 0 (min is saturated otherwise).
  std::uint64_t min = ~std::uint64_t{0};
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Bucket-wise merge: exact (associative and commutative), which is
  /// what lets the shard aggregator sum per-shard histograms and a trace
  /// analyzer sum per-thread ones without resampling error.
  HistogramSnapshot& operator+=(const HistogramSnapshot& other);

  /// Inclusive percentile (q in [0, 1]) by linear interpolation inside
  /// the bucket holding the rank, clamped to [min, max]. 0 when empty.
  double Percentile(double q) const;
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  bool empty() const { return count == 0; }
};

/// Live recorder: relaxed atomics only, safe for concurrent Record from
/// any thread while others snapshot. Mergeable via snapshots.
class Histogram {
 public:
  /// Snapshot derives `count` from the buckets, so count == Σ buckets
  /// holds even against concurrent recording (sum/min/max may trail one
  /// in-flight record by design — they are relaxed gauges).
  void Record(std::uint64_t v) {
    buckets_[HistogramBucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    AtomicMin(&min_, v);
    AtomicMax(&max_, v);
  }

  HistogramSnapshot snapshot() const;

 private:
  static void AtomicMin(std::atomic<std::uint64_t>* slot, std::uint64_t v) {
    std::uint64_t cur = slot->load(std::memory_order_relaxed);
    while (v < cur && !slot->compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<std::uint64_t>* slot, std::uint64_t v) {
    std::uint64_t cur = slot->load(std::memory_order_relaxed);
    while (v > cur && !slot->compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace incsr::obs

#endif  // INCSR_OBS_HISTOGRAM_H_
