// incsr_cli — command-line driver for the library: load a SNAP edge list,
// compute all-pairs SimRank, optionally replay an update stream
// incrementally, and print top-k similar pairs (or neighbors of a query
// node).
//
// Usage:
//   incsr_cli <edge_list> [--updates FILE] [--query NODE] [--topk K]
//             [--damping C] [--iterations K] [--algorithm incsr|incusr]
//
//   incsr_cli serve <edge_list> --updates FILE [--writers N] [--readers M]
//             [--topk K] [--queue-capacity Q] [--max-batch B]
//             [--backpressure block|reject] [--damping C] [--iterations K]
//             [--threads T] [--shards S] [--index-capacity C]
//
// `serve` replays the update stream through the concurrent SimRankService
// (N writer threads submitting, M reader threads issuing top-k queries
// against published epoch snapshots), then Flush()es and prints ingest /
// query / cache statistics. With --writers > 1 the stream is split
// round-robin, so order-dependent updates may be skipped (reported as
// "failed"); insert-only streams replay losslessly at any writer count.
//
// --shards S > 0 serves through a ShardedSimRankService instead: the
// graph's weakly connected components are bin-packed into S shards, each
// with its own ingest queue and applier; updates route to the shard
// owning their endpoints (a component-joining insert merges shards),
// queries fan out and merge. Per-shard stats are printed alongside the
// aggregate.
//
// The updates file holds one update per line: "+ src dst" (insert) or
// "- src dst" (delete); '#' starts a comment.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct CliOptions {
  std::string edge_list;
  std::string updates_file;
  graph::NodeId query = -1;
  std::size_t topk = 10;
  double damping = 0.6;
  int iterations = 15;
  core::UpdateAlgorithm algorithm = core::UpdateAlgorithm::kIncSR;
};

void PrintUsage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s <edge_list> [--updates FILE] [--query NODE] [--topk K]\n"
      "          [--damping C] [--iterations K] [--algorithm incsr|incusr]\n"
      "       %s serve <edge_list> --updates FILE [--writers N]\n"
      "          [--readers M] [--topk K] [--queue-capacity Q]\n"
      "          [--max-batch B] [--cache-capacity C]\n"
      "          [--backpressure block|reject] [--damping C]\n"
      "          [--iterations K] [--threads T] [--shards S]\n"
      "          [--index-capacity C]\n",
      prog, prog);
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing edge list path");
  CliOptions options;
  options.edge_list = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag " + flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (flag == "--updates") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.updates_file = v.value();
    } else if (flag == "--query") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.query = static_cast<graph::NodeId>(std::atoi(v->c_str()));
    } else if (flag == "--topk") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.topk = static_cast<std::size_t>(std::atoll(v->c_str()));
    } else if (flag == "--damping") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.damping = std::atof(v->c_str());
    } else if (flag == "--iterations") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.iterations = std::atoi(v->c_str());
    } else if (flag == "--algorithm") {
      auto v = next();
      if (!v.ok()) return v.status();
      if (*v == "incsr") {
        options.algorithm = core::UpdateAlgorithm::kIncSR;
      } else if (*v == "incusr") {
        options.algorithm = core::UpdateAlgorithm::kIncUSR;
      } else {
        return Status::InvalidArgument("unknown algorithm '" + *v + "'");
      }
    } else {
      return Status::InvalidArgument("unknown flag '" + flag + "'");
    }
  }
  return options;
}

Result<std::vector<graph::EdgeUpdate>> ReadUpdates(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open updates file '" + path + "'");
  std::ostringstream contents;
  contents << file.rdbuf();
  return graph::ParseUpdateStream(contents.str());
}

// The edge-list reader remaps arbitrary node ids to dense [0, n); update
// streams speak the ORIGINAL id space, so they must go through the same
// map or they would silently target the wrong nodes.
Status TranslateUpdates(const graph::EdgeListData& data,
                        std::vector<graph::EdgeUpdate>* updates) {
  if (data.id_map.empty()) return Status::OK();  // ids were already dense
  for (graph::EdgeUpdate& update : *updates) {
    auto src = data.id_map.find(update.src);
    auto dst = data.id_map.find(update.dst);
    if (src == data.id_map.end() || dst == data.id_map.end()) {
      return Status::InvalidArgument(
          "update " + graph::ToString(update) +
          " references a node id absent from the edge list");
    }
    update.src = src->second;
    update.dst = dst->second;
  }
  return Status::OK();
}

// Presents node ids to the user in the id space of their input files:
// dense internal ids are mapped back to the original ids when the reader
// remapped, and user-supplied ids (--query) are mapped forward.
class IdSpace {
 public:
  explicit IdSpace(const graph::EdgeListData& data) {
    for (const auto& [original, dense] : data.id_map) {
      if (static_cast<std::size_t>(dense) >= reverse_.size()) {
        reverse_.resize(static_cast<std::size_t>(dense) + 1, -1);
      }
      reverse_[static_cast<std::size_t>(dense)] = original;
      forward_.emplace(original, dense);
    }
  }

  /// Original id of a dense node (identity when no remap occurred).
  long long ToOriginal(graph::NodeId dense) const {
    if (reverse_.empty()) return dense;
    const auto i = static_cast<std::size_t>(dense);
    return i < reverse_.size() ? reverse_[i] : -1;
  }

  /// Dense id for a user-supplied original id; -1 when unknown.
  graph::NodeId ToDense(long long original) const {
    if (forward_.empty()) {
      return original >= 0 ? static_cast<graph::NodeId>(original) : -1;
    }
    auto it = forward_.find(original);
    return it == forward_.end() ? -1 : it->second;
  }

 private:
  std::vector<long long> reverse_;
  std::unordered_map<long long, graph::NodeId> forward_;
};

struct ServeOptions {
  std::string edge_list;
  std::string updates_file;
  std::size_t writers = 1;
  std::size_t readers = 2;
  std::size_t topk = 10;
  double damping = 0.6;
  int iterations = 15;
  // Applier kernel parallelism (0 = INCSR_THREADS / hardware default).
  // Results are bitwise independent of the setting.
  int num_threads = 0;
  // 0 = single SimRankService; S > 0 = ShardedSimRankService with S shards
  // (clamped to the component count). Results are identical either way.
  std::size_t shards = 0;
  service::ServiceOptions service;
};

Result<ServeOptions> ParseServeArgs(int argc, char** argv) {
  // argv: serve <edge_list> [flags...]
  if (argc < 3) return Status::InvalidArgument("serve: missing edge list");
  ServeOptions options;
  options.edge_list = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag " + flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    auto next_size = [&]() -> Result<std::size_t> {
      auto v = next();
      if (!v.ok()) return v.status();
      char* end = nullptr;
      const long long parsed = std::strtoll(v->c_str(), &end, 10);
      if (end == v->c_str() || *end != '\0' || parsed < 0) {
        return Status::InvalidArgument("flag " + flag +
                                       " needs a non-negative integer, got '" +
                                       *v + "'");
      }
      return static_cast<std::size_t>(parsed);
    };
    if (flag == "--updates") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.updates_file = *v;
    } else if (flag == "--writers") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.writers = *v;
    } else if (flag == "--readers") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.readers = *v;
    } else if (flag == "--topk") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.topk = *v;
    } else if (flag == "--queue-capacity") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.service.queue_capacity = *v;
    } else if (flag == "--max-batch") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.service.max_batch = *v;
    } else if (flag == "--cache-capacity") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.service.cache_capacity = *v;
    } else if (flag == "--index-capacity") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.service.topk_index_capacity = *v;
    } else if (flag == "--backpressure") {
      auto v = next();
      if (!v.ok()) return v.status();
      if (*v == "block") {
        options.service.backpressure = service::BackpressurePolicy::kBlock;
      } else if (*v == "reject") {
        options.service.backpressure = service::BackpressurePolicy::kReject;
      } else {
        return Status::InvalidArgument("unknown backpressure '" + *v + "'");
      }
    } else if (flag == "--damping") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.damping = std::atof(v->c_str());
    } else if (flag == "--iterations") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.iterations = std::atoi(v->c_str());
    } else if (flag == "--threads") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.num_threads = static_cast<int>(*v);
    } else if (flag == "--shards") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.shards = *v;
    } else {
      return Status::InvalidArgument("unknown serve flag '" + flag + "'");
    }
  }
  if (options.updates_file.empty()) {
    return Status::InvalidArgument("serve requires --updates FILE");
  }
  if (options.writers == 0 || options.readers == 0) {
    return Status::InvalidArgument("serve needs >= 1 writer and reader");
  }
  return options;
}

// Replays the update stream from N writer threads while M reader threads
// issue top-k queries, then flushes. Works against any service exposing
// Submit / TopKFor / Flush (single or sharded).
struct ReplayOutcome {
  double seconds = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t dropped = 0;
  bool ok = false;
};

template <typename Service>
ReplayOutcome ReplayLoad(Service& svc, const ServeOptions& options,
                         const std::vector<graph::EdgeUpdate>& updates,
                         std::size_t num_nodes) {
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> dropped{0};
  std::vector<std::thread> threads;
  WallTimer timer;
  for (std::size_t w = 0; w < options.writers; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t i = w; i < updates.size(); i += options.writers) {
        Status s = svc.Submit(updates[i]);
        if (s.code() == StatusCode::kResourceExhausted) {
          // Reject backpressure: this update is dropped (and counted);
          // keep replaying the rest of the stream.
          dropped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!s.ok()) {
          std::fprintf(stderr, "submit: %s\n", s.ToString().c_str());
          return;
        }
      }
    });
  }
  for (std::size_t r = 0; r < options.readers; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(1234 + static_cast<std::uint64_t>(r));
      while (!done.load(std::memory_order_acquire)) {
        auto node = static_cast<graph::NodeId>(rng.NextBounded(num_nodes));
        auto top = svc.TopKFor(node, options.topk);
        if (top.ok()) queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t w = 0; w < options.writers; ++w) threads[w].join();
  Status flushed = svc.Flush();
  ReplayOutcome outcome;
  outcome.seconds = timer.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  for (std::size_t t = options.writers; t < threads.size(); ++t) {
    threads[t].join();
  }
  if (!flushed.ok()) {
    std::fprintf(stderr, "error: %s\n", flushed.ToString().c_str());
    return outcome;
  }
  outcome.queries = queries.load();
  outcome.dropped = dropped.load();
  outcome.ok = true;
  return outcome;
}

int RunServeSharded(const ServeOptions& options,
                    const graph::EdgeListData& data,
                    const std::vector<graph::EdgeUpdate>& updates) {
  simrank::SimRankOptions sr_options;
  sr_options.damping = options.damping;
  sr_options.iterations = options.iterations;
  sr_options.num_threads = options.num_threads;
  shard::ShardedServiceOptions sharded_options;
  sharded_options.num_shards = options.shards;
  sharded_options.per_shard = options.service;
  WallTimer timer;
  auto service = shard::ShardedSimRankService::Create(data.graph, sr_options,
                                                      sharded_options);
  if (!service.ok()) {
    std::fprintf(stderr, "error: %s\n", service.status().ToString().c_str());
    return 1;
  }
  shard::ShardedSimRankService& svc = **service;
  shard::ShardedStats initial = svc.stats();
  std::printf(
      "per-shard batch SimRank solves: %.2f s over %zu shard(s) "
      "(requested %zu, clamped to the component count)\n",
      timer.ElapsedSeconds(), initial.active_shards, options.shards);
  for (const auto& entry : initial.per_shard) {
    std::printf("  shard %zu: %zu nodes\n", entry.slot, entry.nodes);
  }

  ReplayOutcome outcome =
      ReplayLoad(svc, options, updates, data.graph.num_nodes());
  if (!outcome.ok) return 1;

  shard::ShardedStats stats = svc.stats();
  std::printf(
      "replayed in %.3f s: %llu applied, %llu failed (%llu at the router), "
      "%llu dropped by backpressure, max epoch %llu over %zu shard(s), "
      "%llu shard merges\n",
      outcome.seconds, static_cast<unsigned long long>(stats.total.applied),
      static_cast<unsigned long long>(stats.total.failed),
      static_cast<unsigned long long>(stats.router_failed),
      static_cast<unsigned long long>(outcome.dropped),
      static_cast<unsigned long long>(stats.total.epoch), stats.active_shards,
      static_cast<unsigned long long>(stats.merges));
  std::printf("aggregate ingest throughput: %.0f updates/s\n",
              static_cast<double>(stats.total.applied) / outcome.seconds);
  std::printf("concurrent queries served: %llu (%.0f queries/s)\n",
              static_cast<unsigned long long>(outcome.queries),
              static_cast<double>(outcome.queries) / outcome.seconds);
  std::printf(
      "query cache: %llu hits, %llu misses, %llu invalidations, "
      "%llu evictions\n",
      static_cast<unsigned long long>(stats.total.cache.hits),
      static_cast<unsigned long long>(stats.total.cache.misses),
      static_cast<unsigned long long>(stats.total.cache.invalidations),
      static_cast<unsigned long long>(stats.total.cache.evictions));
  std::printf(
      "top-k index: %llu misses served O(k), %llu row-scan fallbacks, "
      "%llu rows re-ranked across shards\n",
      static_cast<unsigned long long>(stats.total.topk_index_served),
      static_cast<unsigned long long>(stats.total.topk_index_fallbacks),
      static_cast<unsigned long long>(stats.total.topk_index_rows_reranked));
  if (stats.merges > 0) {
    std::printf(
        "shard merges rebuilt %llu score rows (%.2f MB) — the cost of "
        "component-joining inserts\n",
        static_cast<unsigned long long>(stats.merge_rebuild_rows),
        static_cast<double>(stats.merge_rebuild_bytes) / 1e6);
  }
  for (const auto& entry : stats.per_shard) {
    std::printf(
        "  shard %zu: %zu nodes, %llu applied, %llu epochs, %llu rows "
        "published, %llu cache hits\n",
        entry.slot, entry.nodes,
        static_cast<unsigned long long>(entry.stats.applied),
        static_cast<unsigned long long>(entry.stats.epoch),
        static_cast<unsigned long long>(entry.stats.rows_published),
        static_cast<unsigned long long>(entry.stats.cache.hits));
  }

  IdSpace ids(data);
  std::printf("final state: %zu nodes, %zu edges; top-%zu pairs:\n",
              svc.num_nodes(), svc.num_edges(), options.topk);
  for (const auto& pair : svc.TopKPairs(options.topk)) {
    std::printf("  (%6lld, %6lld)  %.6f\n", ids.ToOriginal(pair.a),
                ids.ToOriginal(pair.b), pair.score);
  }
  return 0;
}

int RunServe(const ServeOptions& options) {
  auto data = graph::ReadEdgeListFile(options.edge_list);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }
  auto updates = ReadUpdates(options.updates_file);
  if (!updates.ok()) {
    std::fprintf(stderr, "error: %s\n", updates.status().ToString().c_str());
    return 1;
  }
  Status translated = TranslateUpdates(data.value(), &updates.value());
  if (!translated.ok()) {
    std::fprintf(stderr, "error: %s\n", translated.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu nodes, %zu edges; replaying %zu updates\n",
              data->graph.num_nodes(), data->graph.num_edges(),
              updates->size());
  std::printf("update kernels: %zu thread(s)\n",
              ThreadPool::EffectiveNumThreads(options.num_threads));

  if (options.shards > 0) {
    return RunServeSharded(options, data.value(), updates.value());
  }

  simrank::SimRankOptions sr_options;
  sr_options.damping = options.damping;
  sr_options.iterations = options.iterations;
  sr_options.num_threads = options.num_threads;
  WallTimer timer;
  auto index = core::DynamicSimRank::Create(data->graph, sr_options);
  if (!index.ok()) {
    std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("batch SimRank solve: %.2f s\n", timer.ElapsedSeconds());

  auto service = service::SimRankService::Create(std::move(index).value(),
                                                 options.service);
  if (!service.ok()) {
    std::fprintf(stderr, "error: %s\n", service.status().ToString().c_str());
    return 1;
  }
  service::SimRankService& svc = **service;

  ReplayOutcome outcome =
      ReplayLoad(svc, options, updates.value(), data->graph.num_nodes());
  if (!outcome.ok) return 1;
  const double replay_seconds = outcome.seconds;

  service::ServiceStats stats = svc.stats();
  std::printf(
      "replayed in %.3f s: %llu applied, %llu failed, %llu dropped by "
      "backpressure, %llu epochs\n",
      replay_seconds, static_cast<unsigned long long>(stats.applied),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(outcome.dropped),
      static_cast<unsigned long long>(stats.epoch));
  std::printf("ingest throughput: %.0f updates/s\n",
              static_cast<double>(stats.applied) / replay_seconds);
  std::printf("concurrent queries served: %llu (%.0f queries/s)\n",
              static_cast<unsigned long long>(outcome.queries),
              static_cast<double>(outcome.queries) / replay_seconds);
  std::printf(
      "query cache: %llu hits, %llu misses, %llu invalidations, "
      "%llu evictions\n",
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.misses),
      static_cast<unsigned long long>(stats.cache.invalidations),
      static_cast<unsigned long long>(stats.cache.evictions));
  std::printf(
      "top-k index: %llu misses served O(k), %llu row-scan fallbacks, "
      "%llu rows re-ranked\n",
      static_cast<unsigned long long>(stats.topk_index_served),
      static_cast<unsigned long long>(stats.topk_index_fallbacks),
      static_cast<unsigned long long>(stats.topk_index_rows_reranked));
  // Publish amplification: rows copy-on-written per applied update. The
  // full-copy design this replaced paid n rows per EPOCH regardless of
  // the affected area.
  std::printf(
      "snapshot publish: %llu rows (%.2f MB) copy-on-written over %llu "
      "epochs — %.1f rows/update amplification (full-copy baseline: %zu "
      "rows/epoch)\n",
      static_cast<unsigned long long>(stats.rows_published),
      static_cast<double>(stats.bytes_published) / 1e6,
      static_cast<unsigned long long>(stats.epoch),
      stats.applied > 0
          ? static_cast<double>(stats.rows_published) /
                static_cast<double>(stats.applied)
          : 0.0,
      data->graph.num_nodes());

  IdSpace ids(data.value());
  auto snap = svc.Snapshot();
  std::printf("final epoch %llu: %zu nodes, %zu edges; top-%zu pairs:\n",
              static_cast<unsigned long long>(snap->epoch),
              snap->graph.num_nodes(), snap->graph.num_edges(), options.topk);
  for (const auto& pair : svc.TopKPairs(options.topk)) {
    std::printf("  (%6lld, %6lld)  %.6f\n", ids.ToOriginal(pair.a),
                ids.ToOriginal(pair.b), pair.score);
  }
  return 0;
}

int Run(const CliOptions& options) {
  auto data = graph::ReadEdgeListFile(options.edge_list);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu nodes, %zu edges (%zu duplicate lines skipped)\n",
              data->graph.num_nodes(), data->graph.num_edges(),
              data->duplicates_skipped);

  simrank::SimRankOptions sr_options;
  sr_options.damping = options.damping;
  sr_options.iterations = options.iterations;
  WallTimer timer;
  auto index = core::DynamicSimRank::Create(data->graph, sr_options,
                                            options.algorithm);
  if (!index.ok()) {
    std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("batch SimRank solve: %.2f s (C = %.2f, K = %d)\n",
              timer.ElapsedSeconds(), options.damping, options.iterations);

  if (!options.updates_file.empty()) {
    auto updates = ReadUpdates(options.updates_file);
    if (!updates.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   updates.status().ToString().c_str());
      return 1;
    }
    Status translated = TranslateUpdates(data.value(), &updates.value());
    if (!translated.ok()) {
      std::fprintf(stderr, "error: %s\n", translated.ToString().c_str());
      return 1;
    }
    timer.Restart();
    Status applied = index->ApplyBatch(updates.value());
    if (!applied.ok()) {
      std::fprintf(stderr, "error applying updates: %s\n",
                   applied.ToString().c_str());
      return 1;
    }
    std::printf("applied %zu updates incrementally: %.3f s\n",
                updates->size(), timer.ElapsedSeconds());
  }

  IdSpace ids(data.value());
  if (options.query >= 0) {
    graph::NodeId query = ids.ToDense(options.query);
    if (query < 0 || !index->graph().HasNode(query)) {
      std::fprintf(stderr, "error: query node %d not in the edge list\n",
                   options.query);
      return 1;
    }
    std::printf("top-%zu most similar to node %d:\n", options.topk,
                options.query);
    for (const auto& pair : index->TopKFor(query, options.topk)) {
      std::printf("  %6lld  %.6f\n", ids.ToOriginal(pair.b), pair.score);
    }
  } else {
    std::printf("top-%zu node pairs:\n", options.topk);
    for (const auto& pair : index->TopKPairs(options.topk)) {
      std::printf("  (%6lld, %6lld)  %.6f\n", ids.ToOriginal(pair.a),
                  ids.ToOriginal(pair.b), pair.score);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    auto options = ParseServeArgs(argc, argv);
    if (!options.ok()) {
      std::fprintf(stderr, "error: %s\n", options.status().ToString().c_str());
      PrintUsage(argv[0]);
      return 2;
    }
    return RunServe(options.value());
  }
  auto options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "error: %s\n", options.status().ToString().c_str());
    PrintUsage(argv[0]);
    return 2;
  }
  return Run(options.value());
}
