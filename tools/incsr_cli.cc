// incsr_cli — command-line driver for the library: load a SNAP edge list,
// compute all-pairs SimRank, optionally replay an update stream
// incrementally, and print top-k similar pairs (or neighbors of a query
// node).
//
// Usage:
//   incsr_cli <edge_list> [--updates FILE] [--query NODE] [--topk K]
//             [--damping C] [--iterations K] [--algorithm incsr|incusr]
//
// The updates file holds one update per line: "+ src dst" (insert) or
// "- src dst" (delete); '#' starts a comment.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct CliOptions {
  std::string edge_list;
  std::string updates_file;
  graph::NodeId query = -1;
  std::size_t topk = 10;
  double damping = 0.6;
  int iterations = 15;
  core::UpdateAlgorithm algorithm = core::UpdateAlgorithm::kIncSR;
};

void PrintUsage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s <edge_list> [--updates FILE] [--query NODE] [--topk K]\n"
      "          [--damping C] [--iterations K] [--algorithm incsr|incusr]\n",
      prog);
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing edge list path");
  CliOptions options;
  options.edge_list = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag " + flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (flag == "--updates") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.updates_file = v.value();
    } else if (flag == "--query") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.query = static_cast<graph::NodeId>(std::atoi(v->c_str()));
    } else if (flag == "--topk") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.topk = static_cast<std::size_t>(std::atoll(v->c_str()));
    } else if (flag == "--damping") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.damping = std::atof(v->c_str());
    } else if (flag == "--iterations") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.iterations = std::atoi(v->c_str());
    } else if (flag == "--algorithm") {
      auto v = next();
      if (!v.ok()) return v.status();
      if (*v == "incsr") {
        options.algorithm = core::UpdateAlgorithm::kIncSR;
      } else if (*v == "incusr") {
        options.algorithm = core::UpdateAlgorithm::kIncUSR;
      } else {
        return Status::InvalidArgument("unknown algorithm '" + *v + "'");
      }
    } else {
      return Status::InvalidArgument("unknown flag '" + flag + "'");
    }
  }
  return options;
}

Result<std::vector<graph::EdgeUpdate>> ReadUpdates(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open updates file '" + path + "'");
  std::ostringstream contents;
  contents << file.rdbuf();
  return graph::ParseUpdateStream(contents.str());
}

int Run(const CliOptions& options) {
  auto data = graph::ReadEdgeListFile(options.edge_list);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu nodes, %zu edges (%zu duplicate lines skipped)\n",
              data->graph.num_nodes(), data->graph.num_edges(),
              data->duplicates_skipped);

  simrank::SimRankOptions sr_options;
  sr_options.damping = options.damping;
  sr_options.iterations = options.iterations;
  WallTimer timer;
  auto index = core::DynamicSimRank::Create(data->graph, sr_options,
                                            options.algorithm);
  if (!index.ok()) {
    std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("batch SimRank solve: %.2f s (C = %.2f, K = %d)\n",
              timer.ElapsedSeconds(), options.damping, options.iterations);

  if (!options.updates_file.empty()) {
    auto updates = ReadUpdates(options.updates_file);
    if (!updates.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   updates.status().ToString().c_str());
      return 1;
    }
    timer.Restart();
    Status applied = index->ApplyBatch(updates.value());
    if (!applied.ok()) {
      std::fprintf(stderr, "error applying updates: %s\n",
                   applied.ToString().c_str());
      return 1;
    }
    std::printf("applied %zu updates incrementally: %.3f s\n",
                updates->size(), timer.ElapsedSeconds());
  }

  if (options.query >= 0) {
    if (!index->graph().HasNode(options.query)) {
      std::fprintf(stderr, "error: query node %d out of range\n",
                   options.query);
      return 1;
    }
    std::printf("top-%zu most similar to node %d:\n", options.topk,
                options.query);
    for (const auto& pair : index->TopKFor(options.query, options.topk)) {
      std::printf("  %6d  %.6f\n", pair.b, pair.score);
    }
  } else {
    std::printf("top-%zu node pairs:\n", options.topk);
    for (const auto& pair : index->TopKPairs(options.topk)) {
      std::printf("  (%6d, %6d)  %.6f\n", pair.a, pair.b, pair.score);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "error: %s\n", options.status().ToString().c_str());
    PrintUsage(argv[0]);
    return 2;
  }
  return Run(options.value());
}
