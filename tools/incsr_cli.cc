// incsr_cli — command-line driver for the library: load a SNAP edge list,
// compute all-pairs SimRank, optionally replay an update stream
// incrementally, and print top-k similar pairs (or neighbors of a query
// node).
//
// Usage:
//   incsr_cli <edge_list> [--updates FILE] [--query NODE] [--topk K]
//             [--damping C] [--iterations K] [--algorithm incsr|incusr]
//
//   incsr_cli serve <edge_list> --updates FILE [--writers N] [--readers M]
//             [--topk K] [--queue-capacity Q] [--max-batch B]
//             [--backpressure block|reject] [--damping C] [--iterations K]
//             [--threads T] [--shards S] [--index-capacity C]
//             [--sparse-eps E] [--sparse-max-density D]
//             [--sparse-scan-rows N] [--adaptive-index]
//
//   incsr_cli serve <edge_list> --listen HOST:PORT [--updates FILE]
//             [--replica-of HOST:PORT] [--replication-backlog N] [...]
//
//   incsr_cli client <HOST:PORT> [--ping] [--submit FILE] [--flush]
//             [--score A B] [--query NODE] [--pairs] [--topk K]
//             [--suggest N1,N2,...] [--stats]
//
// `serve` replays the update stream through the concurrent SimRankService
// (N writer threads submitting, M reader threads issuing top-k queries
// against published epoch snapshots), then Flush()es and prints ingest /
// query / cache statistics. With --writers > 1 the stream is split
// round-robin, so order-dependent updates may be skipped (reported as
// "failed"); insert-only streams replay losslessly at any writer count.
//
// --shards S > 0 serves through a ShardedSimRankService instead: the
// graph's weakly connected components are bin-packed into S shards, each
// with its own ingest queue and applier; updates route to the shard
// owning their endpoints (a component-joining insert merges shards),
// queries fan out and merge. Per-shard stats are printed alongside the
// aggregate.
//
// With --listen the service goes online instead of replaying a local
// stream: an IncSrServer speaks the framed binary protocol (see
// docs/wire_protocol.md) on HOST:PORT, ingest arrives as Submit RPCs, and
// SIGINT/SIGTERM shuts down gracefully — stop accepting, drain the ingest
// queue, publish the final epoch, print final stats, exit 0. An optional
// --updates FILE is pre-applied through the service before going online.
// --replica-of turns the process into a read replica: it builds the same
// initial state from the edge list, subscribes to the primary's applied
// update stream, and serves reads that are bitwise identical to the
// primary's at the same epoch.
//
// `client` is a thin RPC client for a --listen server. Node ids on the
// wire are the server's DENSE ids (the edge-list reader's remapped
// space), not the original file ids.
//
// The updates file holds one update per line: "+ src dst" (insert) or
// "- src dst" (delete); '#' starts a comment.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "incsr/incsr.h"

namespace {

using namespace incsr;

struct CliOptions {
  std::string edge_list;
  std::string updates_file;
  graph::NodeId query = -1;
  std::size_t topk = 10;
  double damping = 0.6;
  int iterations = 15;
  core::UpdateAlgorithm algorithm = core::UpdateAlgorithm::kIncSR;
};

void PrintUsage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s <edge_list> [--updates FILE] [--query NODE] [--topk K]\n"
      "          [--damping C] [--iterations K] [--algorithm incsr|incusr]\n"
      "       %s serve <edge_list> --updates FILE [--writers N]\n"
      "          [--readers M] [--topk K] [--queue-capacity Q]\n"
      "          [--max-batch B] [--cache-capacity C]\n"
      "          [--backpressure block|reject] [--damping C]\n"
      "          [--iterations K] [--threads T] [--shards S]\n"
      "          [--index-capacity C] [--sparse-eps E]\n"
      "          [--sparse-max-density D] [--sparse-scan-rows N]\n"
      "          [--adaptive-index] [--trace-out FILE]\n"
      "          [--trace-buffer-kb N]\n"
      "       %s serve <edge_list> --listen HOST:PORT [--updates FILE]\n"
      "          [--replica-of HOST:PORT] [--replication-backlog N] [...]\n"
      "       %s client <HOST:PORT> [--ping] [--submit FILE] [--flush]\n"
      "          [--score A B] [--query NODE] [--pairs] [--topk K]\n"
      "          [--suggest N1,N2,...] [--stats]\n"
      "       %s trace summarize <trace_file>\n",
      prog, prog, prog, prog, prog);
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing edge list path");
  CliOptions options;
  options.edge_list = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag " + flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (flag == "--updates") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.updates_file = v.value();
    } else if (flag == "--query") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.query = static_cast<graph::NodeId>(std::atoi(v->c_str()));
    } else if (flag == "--topk") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.topk = static_cast<std::size_t>(std::atoll(v->c_str()));
    } else if (flag == "--damping") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.damping = std::atof(v->c_str());
    } else if (flag == "--iterations") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.iterations = std::atoi(v->c_str());
    } else if (flag == "--algorithm") {
      auto v = next();
      if (!v.ok()) return v.status();
      if (*v == "incsr") {
        options.algorithm = core::UpdateAlgorithm::kIncSR;
      } else if (*v == "incusr") {
        options.algorithm = core::UpdateAlgorithm::kIncUSR;
      } else {
        return Status::InvalidArgument("unknown algorithm '" + *v + "'");
      }
    } else {
      return Status::InvalidArgument("unknown flag '" + flag + "'");
    }
  }
  return options;
}

Result<std::vector<graph::EdgeUpdate>> ReadUpdates(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open updates file '" + path + "'");
  std::ostringstream contents;
  contents << file.rdbuf();
  return graph::ParseUpdateStream(contents.str());
}

// The edge-list reader remaps arbitrary node ids to dense [0, n); update
// streams speak the ORIGINAL id space, so they must go through the same
// map or they would silently target the wrong nodes.
Status TranslateUpdates(const graph::EdgeListData& data,
                        std::vector<graph::EdgeUpdate>* updates) {
  if (data.id_map.empty()) return Status::OK();  // ids were already dense
  for (graph::EdgeUpdate& update : *updates) {
    auto src = data.id_map.find(update.src);
    auto dst = data.id_map.find(update.dst);
    if (src == data.id_map.end() || dst == data.id_map.end()) {
      return Status::InvalidArgument(
          "update " + graph::ToString(update) +
          " references a node id absent from the edge list");
    }
    update.src = src->second;
    update.dst = dst->second;
  }
  return Status::OK();
}

// Presents node ids to the user in the id space of their input files:
// dense internal ids are mapped back to the original ids when the reader
// remapped, and user-supplied ids (--query) are mapped forward.
class IdSpace {
 public:
  explicit IdSpace(const graph::EdgeListData& data) {
    for (const auto& [original, dense] : data.id_map) {
      if (static_cast<std::size_t>(dense) >= reverse_.size()) {
        reverse_.resize(static_cast<std::size_t>(dense) + 1, -1);
      }
      reverse_[static_cast<std::size_t>(dense)] = original;
      forward_.emplace(original, dense);
    }
  }

  /// Original id of a dense node (identity when no remap occurred).
  long long ToOriginal(graph::NodeId dense) const {
    if (reverse_.empty()) return dense;
    const auto i = static_cast<std::size_t>(dense);
    return i < reverse_.size() ? reverse_[i] : -1;
  }

  /// Dense id for a user-supplied original id; -1 when unknown.
  graph::NodeId ToDense(long long original) const {
    if (forward_.empty()) {
      return original >= 0 ? static_cast<graph::NodeId>(original) : -1;
    }
    auto it = forward_.find(original);
    return it == forward_.end() ? -1 : it->second;
  }

 private:
  std::vector<long long> reverse_;
  std::unordered_map<long long, graph::NodeId> forward_;
};

struct ServeOptions {
  std::string edge_list;
  std::string updates_file;
  std::size_t writers = 1;
  std::size_t readers = 2;
  std::size_t topk = 10;
  double damping = 0.6;
  int iterations = 15;
  // Applier kernel parallelism (0 = INCSR_THREADS / hardware default).
  // Results are bitwise independent of the setting.
  int num_threads = 0;
  // 0 = single SimRankService; S > 0 = ShardedSimRankService with S shards
  // (clamped to the component count). Results are identical either way.
  std::size_t shards = 0;
  service::ServiceOptions service;
  // Network mode: serve the binary RPC protocol on HOST:PORT instead of
  // replaying a local load.
  std::string listen;
  // Read-replica mode: subscribe to this primary's applied update stream.
  std::string replica_of;
  // Applied batches the primary retains for replica catch-up.
  std::size_t replication_backlog = 4096;
  // When non-empty, record a binary serve-path trace to this file
  // (`incsr_cli trace summarize FILE` decodes it). "%p" expands to the pid.
  std::string trace_out;
  // Per-thread trace ring size. Undersized rings drop events (counted in
  // the trace footer) instead of ever blocking the serve path.
  std::size_t trace_buffer_kb = 1024;
};

Result<ServeOptions> ParseServeArgs(int argc, char** argv) {
  // argv: serve <edge_list> [flags...]
  if (argc < 3) return Status::InvalidArgument("serve: missing edge list");
  ServeOptions options;
  options.edge_list = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag " + flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    auto next_size = [&]() -> Result<std::size_t> {
      auto v = next();
      if (!v.ok()) return v.status();
      char* end = nullptr;
      const long long parsed = std::strtoll(v->c_str(), &end, 10);
      if (end == v->c_str() || *end != '\0' || parsed < 0) {
        return Status::InvalidArgument("flag " + flag +
                                       " needs a non-negative integer, got '" +
                                       *v + "'");
      }
      return static_cast<std::size_t>(parsed);
    };
    if (flag == "--updates") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.updates_file = *v;
    } else if (flag == "--writers") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.writers = *v;
    } else if (flag == "--readers") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.readers = *v;
    } else if (flag == "--topk") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.topk = *v;
    } else if (flag == "--queue-capacity") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.service.queue_capacity = *v;
    } else if (flag == "--max-batch") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.service.max_batch = *v;
    } else if (flag == "--cache-capacity") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.service.cache_capacity = *v;
    } else if (flag == "--index-capacity") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.service.topk_index_capacity = *v;
    } else if (flag == "--sparse-eps") {
      auto v = next();
      if (!v.ok()) return v.status();
      const double eps = std::atof(v->c_str());
      if (eps < 0.0) {
        return Status::InvalidArgument("--sparse-eps must be >= 0");
      }
      options.service.sparse.enabled = true;
      options.service.sparse.epsilon = eps;
    } else if (flag == "--sparse-max-density") {
      auto v = next();
      if (!v.ok()) return v.status();
      const double density = std::atof(v->c_str());
      if (density <= 0.0 || density > 1.0) {
        return Status::InvalidArgument(
            "--sparse-max-density must be in (0, 1]");
      }
      options.service.sparse.max_density = density;
    } else if (flag == "--sparse-scan-rows") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.service.sparse.scan_rows_per_publish = *v;
    } else if (flag == "--adaptive-index") {
      options.service.adaptive_topk_index = true;
    } else if (flag == "--backpressure") {
      auto v = next();
      if (!v.ok()) return v.status();
      if (*v == "block") {
        options.service.backpressure = service::BackpressurePolicy::kBlock;
      } else if (*v == "reject") {
        options.service.backpressure = service::BackpressurePolicy::kReject;
      } else {
        return Status::InvalidArgument("unknown backpressure '" + *v + "'");
      }
    } else if (flag == "--damping") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.damping = std::atof(v->c_str());
    } else if (flag == "--iterations") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.iterations = std::atoi(v->c_str());
    } else if (flag == "--threads") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.num_threads = static_cast<int>(*v);
    } else if (flag == "--shards") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.shards = *v;
    } else if (flag == "--listen") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.listen = *v;
    } else if (flag == "--replica-of") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.replica_of = *v;
    } else if (flag == "--replication-backlog") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      options.replication_backlog = *v;
    } else if (flag == "--trace-out") {
      auto v = next();
      if (!v.ok()) return v.status();
      options.trace_out = *v;
    } else if (flag == "--trace-buffer-kb") {
      auto v = next_size();
      if (!v.ok()) return v.status();
      if (*v == 0) {
        return Status::InvalidArgument("--trace-buffer-kb must be >= 1");
      }
      options.trace_buffer_kb = *v;
    } else {
      return Status::InvalidArgument("unknown serve flag '" + flag + "'");
    }
  }
  if (options.listen.empty()) {
    if (!options.replica_of.empty()) {
      return Status::InvalidArgument("--replica-of requires --listen");
    }
    if (options.updates_file.empty()) {
      return Status::InvalidArgument("serve requires --updates FILE");
    }
    if (options.writers == 0 || options.readers == 0) {
      return Status::InvalidArgument("serve needs >= 1 writer and reader");
    }
  } else {
    INCSR_RETURN_IF_ERROR(net::ParseHostPort(options.listen).status());
    if (!options.replica_of.empty()) {
      INCSR_RETURN_IF_ERROR(net::ParseHostPort(options.replica_of).status());
      if (options.shards > 0) {
        return Status::InvalidArgument(
            "--replica-of does not combine with --shards");
      }
      if (!options.updates_file.empty()) {
        return Status::InvalidArgument(
            "--replica-of does not combine with --updates: a replica's "
            "state advances only through the primary's stream");
      }
    }
  }
  return options;
}

// Replays the update stream from N writer threads while M reader threads
// issue top-k queries, then flushes. Works against any service exposing
// Submit / TopKFor / Flush (single or sharded).
struct ReplayOutcome {
  double seconds = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t dropped = 0;
  bool ok = false;
};

template <typename Service>
ReplayOutcome ReplayLoad(Service& svc, const ServeOptions& options,
                         const std::vector<graph::EdgeUpdate>& updates,
                         std::size_t num_nodes) {
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> dropped{0};
  std::vector<std::thread> threads;
  WallTimer timer;
  for (std::size_t w = 0; w < options.writers; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t i = w; i < updates.size(); i += options.writers) {
        Status s = svc.Submit(updates[i]);
        if (s.code() == StatusCode::kResourceExhausted) {
          // Reject backpressure: this update is dropped (and counted);
          // keep replaying the rest of the stream.
          dropped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!s.ok()) {
          std::fprintf(stderr, "submit: %s\n", s.ToString().c_str());
          return;
        }
      }
    });
  }
  for (std::size_t r = 0; r < options.readers; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(1234 + static_cast<std::uint64_t>(r));
      while (!done.load(std::memory_order_acquire)) {
        auto node = static_cast<graph::NodeId>(rng.NextBounded(num_nodes));
        auto top = svc.TopKFor(node, options.topk);
        if (top.ok()) queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t w = 0; w < options.writers; ++w) threads[w].join();
  Status flushed = svc.Flush();
  ReplayOutcome outcome;
  outcome.seconds = timer.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  for (std::size_t t = options.writers; t < threads.size(); ++t) {
    threads[t].join();
  }
  if (!flushed.ok()) {
    std::fprintf(stderr, "error: %s\n", flushed.ToString().c_str());
    return outcome;
  }
  outcome.queries = queries.load();
  outcome.dropped = dropped.load();
  outcome.ok = true;
  return outcome;
}

int RunServeSharded(const ServeOptions& options,
                    const graph::EdgeListData& data,
                    const std::vector<graph::EdgeUpdate>& updates) {
  simrank::SimRankOptions sr_options;
  sr_options.damping = options.damping;
  sr_options.iterations = options.iterations;
  sr_options.num_threads = options.num_threads;
  shard::ShardedServiceOptions sharded_options;
  sharded_options.num_shards = options.shards;
  sharded_options.per_shard = options.service;
  WallTimer timer;
  auto service = shard::ShardedSimRankService::Create(data.graph, sr_options,
                                                      sharded_options);
  if (!service.ok()) {
    std::fprintf(stderr, "error: %s\n", service.status().ToString().c_str());
    return 1;
  }
  shard::ShardedSimRankService& svc = **service;
  shard::ShardedStats initial = svc.stats();
  std::printf(
      "per-shard batch SimRank solves: %.2f s over %zu shard(s) "
      "(requested %zu, clamped to the component count)\n",
      timer.ElapsedSeconds(), initial.active_shards, options.shards);
  for (const auto& entry : initial.per_shard) {
    std::printf("  shard %zu: %zu nodes\n", entry.slot, entry.nodes);
  }

  ReplayOutcome outcome =
      ReplayLoad(svc, options, updates, data.graph.num_nodes());
  if (!outcome.ok) return 1;

  shard::ShardedStats stats = svc.stats();
  std::printf(
      "replayed in %.3f s: %llu applied, %llu failed (%llu at the router), "
      "%llu dropped by backpressure, max epoch %llu over %zu shard(s), "
      "%llu shard merges\n",
      outcome.seconds, static_cast<unsigned long long>(stats.total.applied),
      static_cast<unsigned long long>(stats.total.failed),
      static_cast<unsigned long long>(stats.router_failed),
      static_cast<unsigned long long>(outcome.dropped),
      static_cast<unsigned long long>(stats.total.epoch), stats.active_shards,
      static_cast<unsigned long long>(stats.merges));
  std::printf("aggregate ingest throughput: %.0f updates/s\n",
              static_cast<double>(stats.total.applied) / outcome.seconds);
  std::printf("concurrent queries served: %llu (%.0f queries/s)\n",
              static_cast<unsigned long long>(outcome.queries),
              static_cast<double>(outcome.queries) / outcome.seconds);
  std::printf(
      "query cache: %llu hits, %llu misses, %llu invalidations, "
      "%llu evictions\n",
      static_cast<unsigned long long>(stats.total.cache.hits),
      static_cast<unsigned long long>(stats.total.cache.misses),
      static_cast<unsigned long long>(stats.total.cache.invalidations),
      static_cast<unsigned long long>(stats.total.cache.evictions));
  std::printf(
      "top-k index: %llu misses served O(k), %llu row-scan fallbacks, "
      "%llu rows re-ranked across shards\n",
      static_cast<unsigned long long>(stats.total.topk_index_served),
      static_cast<unsigned long long>(stats.total.topk_index_fallbacks),
      static_cast<unsigned long long>(stats.total.topk_index_rows_reranked));
  std::printf(
      "pair queries: %llu misses served by index merge, %llu pair-scan "
      "fallbacks\n",
      static_cast<unsigned long long>(stats.total.topk_pairs_served),
      static_cast<unsigned long long>(stats.total.topk_pairs_fallbacks));
  if (stats.total.rows_sparse > 0 || stats.total.tier_demotions > 0) {
    std::printf(
        "tiered store: %llu sparse / %llu dense rows, %.2f MB saved, "
        "%llu demotions, %llu promotions, %llu eps-drops, "
        "max error bound %.3g\n",
        static_cast<unsigned long long>(stats.total.rows_sparse),
        static_cast<unsigned long long>(stats.total.rows_dense),
        static_cast<double>(stats.total.bytes_saved) / 1e6,
        static_cast<unsigned long long>(stats.total.tier_demotions),
        static_cast<unsigned long long>(stats.total.tier_promotions),
        static_cast<unsigned long long>(stats.total.sparse_eps_drops),
        stats.total.sparse_max_error_bound);
    std::printf(
        "write path: %llu sparse merges, %llu dense spills\n",
        static_cast<unsigned long long>(stats.total.sparse_write_merges),
        static_cast<unsigned long long>(stats.total.rows_spilled_dense));
  }
  if (stats.total.topk_cap_grows > 0 || stats.total.topk_cap_shrinks > 0) {
    std::printf("adaptive index capacity: %llu grows, %llu shrinks\n",
                static_cast<unsigned long long>(stats.total.topk_cap_grows),
                static_cast<unsigned long long>(stats.total.topk_cap_shrinks));
  }
  std::printf("graph snapshots copy-on-wrote %.2f KB of adjacency\n",
              static_cast<double>(stats.total.graph_bytes_copied) / 1e3);
  if (stats.merges > 0) {
    std::printf(
        "shard merges rebuilt %llu score rows (%.2f MB) in %.3f s — the "
        "cost of component-joining inserts\n",
        static_cast<unsigned long long>(stats.merge_rebuild_rows),
        static_cast<double>(stats.merge_rebuild_bytes) / 1e6,
        stats.merge_rebuild_seconds);
  }
  for (const auto& entry : stats.per_shard) {
    std::printf(
        "  shard %zu: %zu nodes, %llu applied, %llu epochs, %llu rows "
        "published, %llu cache hits\n",
        entry.slot, entry.nodes,
        static_cast<unsigned long long>(entry.stats.applied),
        static_cast<unsigned long long>(entry.stats.epoch),
        static_cast<unsigned long long>(entry.stats.rows_published),
        static_cast<unsigned long long>(entry.stats.cache.hits));
  }

  IdSpace ids(data);
  std::printf("final state: %zu nodes, %zu edges; top-%zu pairs:\n",
              svc.num_nodes(), svc.num_edges(), options.topk);
  for (const auto& pair : svc.TopKPairs(options.topk)) {
    std::printf("  (%6lld, %6lld)  %.6f\n", ids.ToOriginal(pair.a),
                ids.ToOriginal(pair.b), pair.score);
  }
  return 0;
}

// ---- Network serving (serve --listen) --------------------------------------

volatile std::sig_atomic_t g_shutdown_signal = 0;

void OnShutdownSignal(int sig) { g_shutdown_signal = sig; }

void AwaitShutdownSignal() {
  std::signal(SIGINT, OnShutdownSignal);
  std::signal(SIGTERM, OnShutdownSignal);
  while (g_shutdown_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("\nsignal %d: shutting down\n",
              static_cast<int>(g_shutdown_signal));
}

void PrintServerStats(const net::IncSrServer& server) {
  const net::ServerStats net_stats = server.stats();
  std::printf(
      "network: %llu connections (%llu still open at shutdown), "
      "%llu requests, %llu protocol errors, %llu replica batches streamed\n",
      static_cast<unsigned long long>(net_stats.connections_accepted),
      static_cast<unsigned long long>(net_stats.active_connections),
      static_cast<unsigned long long>(net_stats.requests_served),
      static_cast<unsigned long long>(net_stats.protocol_errors),
      static_cast<unsigned long long>(net_stats.batches_streamed));
}

void PrintFinalServiceStats(const service::ServiceStats& stats) {
  std::printf(
      "final epoch %llu: %llu submitted, %llu applied, %llu failed, "
      "%llu rejected by backpressure\n",
      static_cast<unsigned long long>(stats.epoch),
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.applied),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.rejected));
  if (stats.rows_sparse > 0 || stats.tier_demotions > 0) {
    std::printf(
        "tiered store: %llu sparse / %llu dense rows, %.2f MB saved, "
        "max error bound %.3g\n",
        static_cast<unsigned long long>(stats.rows_sparse),
        static_cast<unsigned long long>(stats.rows_dense),
        static_cast<double>(stats.bytes_saved) / 1e6,
        stats.sparse_max_error_bound);
    std::printf("write path: %llu sparse merges, %llu dense spills\n",
                static_cast<unsigned long long>(stats.sparse_write_merges),
                static_cast<unsigned long long>(stats.rows_spilled_dense));
  }
}

// Pre-applies an on-disk update stream through the serving path (so a
// primary's replication log retains the batches for replica catch-up).
template <typename Service>
Status Preload(Service& svc, const std::vector<graph::EdgeUpdate>& updates) {
  if (updates.empty()) return Status::OK();
  INCSR_RETURN_IF_ERROR(svc.SubmitBatch(updates));
  return svc.Flush();
}

int RunServeListen(const ServeOptions& options) {
  auto endpoint = net::ParseHostPort(options.listen);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 endpoint.status().ToString().c_str());
    return 1;
  }
  auto data = graph::ReadEdgeListFile(options.edge_list);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::vector<graph::EdgeUpdate> preload;
  if (!options.updates_file.empty()) {
    auto updates = ReadUpdates(options.updates_file);
    if (!updates.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   updates.status().ToString().c_str());
      return 1;
    }
    Status translated = TranslateUpdates(data.value(), &updates.value());
    if (!translated.ok()) {
      std::fprintf(stderr, "error: %s\n", translated.ToString().c_str());
      return 1;
    }
    preload = std::move(updates.value());
  }
  std::printf("loaded %zu nodes, %zu edges\n", data->graph.num_nodes(),
              data->graph.num_edges());

  simrank::SimRankOptions sr_options;
  sr_options.damping = options.damping;
  sr_options.iterations = options.iterations;
  sr_options.num_threads = options.num_threads;

  net::ServerOptions server_options;
  server_options.host = endpoint->first;
  server_options.port = endpoint->second;
  server_options.replication_backlog = options.replication_backlog;

  if (options.shards > 0) {
    shard::ShardedServiceOptions sharded_options;
    sharded_options.num_shards = options.shards;
    sharded_options.per_shard = options.service;
    auto service = shard::ShardedSimRankService::Create(
        data->graph, sr_options, sharded_options);
    if (!service.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }
    if (Status s = Preload(**service, preload); !s.ok()) {
      std::fprintf(stderr, "error preloading updates: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    auto server = net::IncSrServer::Serve(service->get(), server_options);
    if (!server.ok()) {
      std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
      return 1;
    }
    std::printf("serving (%zu shards) on %s:%u\n",
                (*service)->stats().active_shards,
                (*server)->host().c_str(), (*server)->port());
    AwaitShutdownSignal();
    (*server)->Stop();       // stop accepting / answering
    (*service)->Stop();      // drain every shard, publish final epochs
    PrintServerStats(**server);
    PrintFinalServiceStats((*service)->stats().total);
    return 0;
  }

  WallTimer timer;
  auto index = core::DynamicSimRank::Create(data->graph, sr_options);
  if (!index.ok()) {
    std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("batch SimRank solve: %.2f s\n", timer.ElapsedSeconds());

  const bool replica = !options.replica_of.empty();
  auto service =
      replica ? service::SimRankService::CreateReplica(
                    std::move(index).value(), options.service)
              : service::SimRankService::Create(std::move(index).value(),
                                                options.service);
  if (!service.ok()) {
    std::fprintf(stderr, "error: %s\n", service.status().ToString().c_str());
    return 1;
  }
  if (Status s = Preload(**service, preload); !s.ok()) {
    std::fprintf(stderr, "error preloading updates: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  auto server = net::IncSrServer::Serve(service->get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }

  std::unique_ptr<net::ReplicationClient> replication;
  if (replica) {
    auto primary = net::ParseHostPort(options.replica_of);
    if (!primary.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   primary.status().ToString().c_str());
      return 1;
    }
    net::ReplicationClientOptions repl_options;
    repl_options.primary_host = primary->first;
    repl_options.primary_port = primary->second;
    auto started = net::ReplicationClient::Start(service->get(),
                                                 repl_options);
    if (!started.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    replication = std::move(*started);
    std::printf("replica serving on %s:%u, replicating from %s\n",
                (*server)->host().c_str(), (*server)->port(),
                options.replica_of.c_str());
  } else {
    std::printf("serving on %s:%u\n", (*server)->host().c_str(),
                (*server)->port());
  }

  AwaitShutdownSignal();
  // Graceful order: stop answering, stop replicating, then drain the
  // ingest queue and publish the final epoch before reporting.
  (*server)->Stop();
  if (replication != nullptr) {
    if (replication->catch_up_failed()) {
      std::fprintf(stderr,
                   "warning: replication catch-up failed — the primary "
                   "trimmed its backlog past this replica's epoch\n");
    }
    replication->Stop();
  }
  (*service)->Stop();
  PrintServerStats(**server);
  PrintFinalServiceStats((*service)->stats());
  return 0;
}

// ---- Client subcommand -----------------------------------------------------

struct ClientCommand {
  std::string endpoint;
  bool ping = false;
  std::string submit_file;
  bool flush = false;
  bool score = false;
  graph::NodeId score_a = 0;
  graph::NodeId score_b = 0;
  graph::NodeId query = -1;
  bool pairs = false;
  std::size_t topk = 10;
  std::vector<graph::NodeId> suggest;
  bool stats = false;
  bool any = false;  ///< at least one action flag given
};

Result<ClientCommand> ParseClientArgs(int argc, char** argv) {
  // argv: client <HOST:PORT> [flags...]
  if (argc < 3) return Status::InvalidArgument("client: missing HOST:PORT");
  ClientCommand command;
  command.endpoint = argv[2];
  INCSR_RETURN_IF_ERROR(net::ParseHostPort(command.endpoint).status());
  for (int i = 3; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag " + flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (flag == "--ping") {
      command.ping = command.any = true;
    } else if (flag == "--submit") {
      auto v = next();
      if (!v.ok()) return v.status();
      command.submit_file = *v;
      command.any = true;
    } else if (flag == "--flush") {
      command.flush = command.any = true;
    } else if (flag == "--score") {
      auto a = next();
      if (!a.ok()) return a.status();
      auto b = next();
      if (!b.ok()) return b.status();
      command.score = command.any = true;
      command.score_a = static_cast<graph::NodeId>(std::atoi(a->c_str()));
      command.score_b = static_cast<graph::NodeId>(std::atoi(b->c_str()));
    } else if (flag == "--query") {
      auto v = next();
      if (!v.ok()) return v.status();
      command.query = static_cast<graph::NodeId>(std::atoi(v->c_str()));
      command.any = true;
    } else if (flag == "--pairs") {
      command.pairs = command.any = true;
    } else if (flag == "--topk") {
      auto v = next();
      if (!v.ok()) return v.status();
      command.topk = static_cast<std::size_t>(std::atoll(v->c_str()));
    } else if (flag == "--suggest") {
      auto v = next();
      if (!v.ok()) return v.status();
      std::stringstream nodes(*v);
      std::string item;
      while (std::getline(nodes, item, ',')) {
        command.suggest.push_back(
            static_cast<graph::NodeId>(std::atoi(item.c_str())));
      }
      if (command.suggest.empty()) {
        return Status::InvalidArgument("--suggest needs node ids");
      }
      command.any = true;
    } else if (flag == "--stats") {
      command.stats = command.any = true;
    } else {
      return Status::InvalidArgument("unknown client flag '" + flag + "'");
    }
  }
  if (!command.any) command.stats = true;  // default action
  return command;
}

int RunClient(const ClientCommand& command) {
  auto connected = net::IncSrClient::Connect(command.endpoint);
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  net::IncSrClient client = std::move(*connected);

  if (command.ping) {
    WallTimer timer;
    Status pinged = client.Ping();
    if (!pinged.ok()) {
      std::fprintf(stderr, "error: %s\n", pinged.ToString().c_str());
      return 1;
    }
    std::printf("ping: ok (%.3f ms)\n", timer.ElapsedSeconds() * 1e3);
  }
  if (!command.submit_file.empty()) {
    auto updates = ReadUpdates(command.submit_file);
    if (!updates.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   updates.status().ToString().c_str());
      return 1;
    }
    auto response = client.Submit(updates.value());
    if (!response.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    std::printf("submit: %s — %u accepted, %u rejected\n",
                net::wire::RpcStatusName(response->status),
                response->accepted, response->rejected);
  }
  if (command.flush) {
    Status flushed = client.Flush();
    if (!flushed.ok()) {
      std::fprintf(stderr, "error: %s\n", flushed.ToString().c_str());
      return 1;
    }
    std::printf("flush: ok\n");
  }
  if (command.score) {
    auto score = client.Score(command.score_a, command.score_b);
    if (!score.ok()) {
      std::fprintf(stderr, "error: %s\n", score.status().ToString().c_str());
      return 1;
    }
    std::printf("s(%d, %d) = %.6f\n", command.score_a, command.score_b,
                *score);
  }
  if (command.query >= 0) {
    auto top = client.TopKFor(command.query,
                              static_cast<std::uint32_t>(command.topk));
    if (!top.ok()) {
      std::fprintf(stderr, "error: %s\n", top.status().ToString().c_str());
      return 1;
    }
    std::printf("top-%zu most similar to node %d:\n", command.topk,
                command.query);
    for (const auto& pair : *top) {
      std::printf("  %6d  %.6f\n", pair.b, pair.score);
    }
  }
  if (command.pairs) {
    auto top = client.TopKPairs(static_cast<std::uint32_t>(command.topk));
    if (!top.ok()) {
      std::fprintf(stderr, "error: %s\n", top.status().ToString().c_str());
      return 1;
    }
    std::printf("top-%zu node pairs:\n", command.topk);
    for (const auto& pair : *top) {
      std::printf("  (%6d, %6d)  %.6f\n", pair.a, pair.b, pair.score);
    }
  }
  if (!command.suggest.empty()) {
    auto response = client.Suggest(
        static_cast<std::uint32_t>(command.topk), command.suggest);
    if (!response.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    for (const auto& suggestion : response->suggestions) {
      if (!suggestion.found) {
        std::printf("node %d: not found\n", suggestion.node);
        continue;
      }
      std::printf("node %d:\n", suggestion.node);
      for (const auto& pair : suggestion.entries) {
        std::printf("  %6d  %.6f\n", pair.b, pair.score);
      }
    }
  }
  if (command.stats) {
    auto response = client.Stats();
    if (!response.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    const auto& s = response->stats;
    std::printf(
        "%s: %llu nodes, %llu edges, epoch %llu, %llu applied, "
        "%llu failed, %llu rejected\n",
        response->is_replica ? "replica" : "primary",
        static_cast<unsigned long long>(response->num_nodes),
        static_cast<unsigned long long>(response->num_edges),
        static_cast<unsigned long long>(s.epoch),
        static_cast<unsigned long long>(s.applied),
        static_cast<unsigned long long>(s.failed),
        static_cast<unsigned long long>(s.rejected));
    auto print_latency = [](const char* label,
                            const obs::HistogramSnapshot& hist) {
      if (hist.empty()) return;
      std::printf(
          "%s: p50 %.1f us, p99 %.1f us, mean %.1f us, max %.1f us "
          "(%llu samples)\n",
          label, hist.Percentile(0.5) / 1e3, hist.Percentile(0.99) / 1e3,
          hist.Mean() / 1e3, static_cast<double>(hist.max) / 1e3,
          static_cast<unsigned long long>(hist.count));
    };
    print_latency("queue wait", s.queue_wait_ns);
    print_latency("batch apply", s.apply_ns);
  }
  return 0;
}

// Owns the serve-path trace for the lifetime of a serve run. Started
// before mode dispatch so the listen, sharded, and local-replay paths are
// all covered; the destructor runs on every exit path and reports where
// the trace landed plus how much (if anything) the rings dropped.
class TraceSession {
 public:
  explicit TraceSession(const ServeOptions& options) {
    if (options.trace_out.empty()) return;
    Status started = obs::Tracer::Instance().Start(options.trace_out,
                                                   options.trace_buffer_kb);
    if (!started.ok()) {
      std::fprintf(stderr, "warning: tracing disabled: %s\n",
                   started.ToString().c_str());
      return;
    }
    active_ = true;
    std::printf("tracing serve path to %s (%zu KB per thread ring)\n",
                obs::Tracer::Instance().active_path().c_str(),
                options.trace_buffer_kb);
  }

  ~TraceSession() {
    if (!active_) return;
    obs::Tracer& tracer = obs::Tracer::Instance();
    const std::string path = tracer.active_path();
    const std::uint64_t recorded = tracer.TotalEventsRecorded();
    const std::uint64_t dropped = tracer.TotalEventsDropped();
    const std::size_t rings = tracer.ring_count();
    tracer.Stop();
    std::printf(
        "trace: %s (%llu events from %zu threads, %llu dropped)\n"
        "trace: decode with `incsr_cli trace summarize %s`\n",
        path.c_str(), static_cast<unsigned long long>(recorded), rings,
        static_cast<unsigned long long>(dropped), path.c_str());
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  bool active_ = false;
};

int RunServe(const ServeOptions& options) {
  TraceSession trace(options);
  if (!options.listen.empty()) return RunServeListen(options);
  auto data = graph::ReadEdgeListFile(options.edge_list);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }
  auto updates = ReadUpdates(options.updates_file);
  if (!updates.ok()) {
    std::fprintf(stderr, "error: %s\n", updates.status().ToString().c_str());
    return 1;
  }
  Status translated = TranslateUpdates(data.value(), &updates.value());
  if (!translated.ok()) {
    std::fprintf(stderr, "error: %s\n", translated.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu nodes, %zu edges; replaying %zu updates\n",
              data->graph.num_nodes(), data->graph.num_edges(),
              updates->size());
  std::printf("update kernels: %zu thread(s)\n",
              Scheduler::EffectiveNumThreads(options.num_threads));

  if (options.shards > 0) {
    return RunServeSharded(options, data.value(), updates.value());
  }

  simrank::SimRankOptions sr_options;
  sr_options.damping = options.damping;
  sr_options.iterations = options.iterations;
  sr_options.num_threads = options.num_threads;
  WallTimer timer;
  auto index = core::DynamicSimRank::Create(data->graph, sr_options);
  if (!index.ok()) {
    std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("batch SimRank solve: %.2f s\n", timer.ElapsedSeconds());

  auto service = service::SimRankService::Create(std::move(index).value(),
                                                 options.service);
  if (!service.ok()) {
    std::fprintf(stderr, "error: %s\n", service.status().ToString().c_str());
    return 1;
  }
  service::SimRankService& svc = **service;

  ReplayOutcome outcome =
      ReplayLoad(svc, options, updates.value(), data->graph.num_nodes());
  if (!outcome.ok) return 1;
  const double replay_seconds = outcome.seconds;

  service::ServiceStats stats = svc.stats();
  std::printf(
      "replayed in %.3f s: %llu applied, %llu failed, %llu dropped by "
      "backpressure, %llu epochs\n",
      replay_seconds, static_cast<unsigned long long>(stats.applied),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(outcome.dropped),
      static_cast<unsigned long long>(stats.epoch));
  std::printf("ingest throughput: %.0f updates/s\n",
              static_cast<double>(stats.applied) / replay_seconds);
  std::printf("concurrent queries served: %llu (%.0f queries/s)\n",
              static_cast<unsigned long long>(outcome.queries),
              static_cast<double>(outcome.queries) / replay_seconds);
  std::printf(
      "query cache: %llu hits, %llu misses, %llu invalidations, "
      "%llu evictions\n",
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.misses),
      static_cast<unsigned long long>(stats.cache.invalidations),
      static_cast<unsigned long long>(stats.cache.evictions));
  std::printf(
      "top-k index: %llu misses served O(k), %llu row-scan fallbacks, "
      "%llu rows re-ranked\n",
      static_cast<unsigned long long>(stats.topk_index_served),
      static_cast<unsigned long long>(stats.topk_index_fallbacks),
      static_cast<unsigned long long>(stats.topk_index_rows_reranked));
  std::printf(
      "pair queries: %llu misses served by index merge, %llu pair-scan "
      "fallbacks\n",
      static_cast<unsigned long long>(stats.topk_pairs_served),
      static_cast<unsigned long long>(stats.topk_pairs_fallbacks));
  if (stats.rows_sparse > 0 || stats.tier_demotions > 0) {
    std::printf(
        "tiered store: %llu sparse / %llu dense rows, %.2f MB saved, "
        "%llu demotions, %llu promotions, %llu eps-drops, "
        "max error bound %.3g\n",
        static_cast<unsigned long long>(stats.rows_sparse),
        static_cast<unsigned long long>(stats.rows_dense),
        static_cast<double>(stats.bytes_saved) / 1e6,
        static_cast<unsigned long long>(stats.tier_demotions),
        static_cast<unsigned long long>(stats.tier_promotions),
        static_cast<unsigned long long>(stats.sparse_eps_drops),
        stats.sparse_max_error_bound);
    std::printf("write path: %llu sparse merges, %llu dense spills\n",
                static_cast<unsigned long long>(stats.sparse_write_merges),
                static_cast<unsigned long long>(stats.rows_spilled_dense));
  }
  if (stats.topk_cap_grows > 0 || stats.topk_cap_shrinks > 0) {
    std::printf("adaptive index capacity: %llu grows, %llu shrinks\n",
                static_cast<unsigned long long>(stats.topk_cap_grows),
                static_cast<unsigned long long>(stats.topk_cap_shrinks));
  }
  std::printf("graph snapshots copy-on-wrote %.2f KB of adjacency\n",
              static_cast<double>(stats.graph_bytes_copied) / 1e3);
  // Publish amplification: rows copy-on-written per applied update. The
  // full-copy design this replaced paid n rows per EPOCH regardless of
  // the affected area.
  std::printf(
      "snapshot publish: %llu rows (%.2f MB) copy-on-written over %llu "
      "epochs — %.1f rows/update amplification (full-copy baseline: %zu "
      "rows/epoch)\n",
      static_cast<unsigned long long>(stats.rows_published),
      static_cast<double>(stats.bytes_published) / 1e6,
      static_cast<unsigned long long>(stats.epoch),
      stats.applied > 0
          ? static_cast<double>(stats.rows_published) /
                static_cast<double>(stats.applied)
          : 0.0,
      data->graph.num_nodes());

  IdSpace ids(data.value());
  auto snap = svc.Snapshot();
  std::printf("final epoch %llu: %zu nodes, %zu edges; top-%zu pairs:\n",
              static_cast<unsigned long long>(snap->epoch),
              snap->graph.num_nodes(), snap->graph.num_edges(), options.topk);
  for (const auto& pair : svc.TopKPairs(options.topk)) {
    std::printf("  (%6lld, %6lld)  %.6f\n", ids.ToOriginal(pair.a),
                ids.ToOriginal(pair.b), pair.score);
  }
  return 0;
}

int RunTrace(int argc, char** argv) {
  // argv: trace summarize <trace_file>
  if (argc < 3 || std::strcmp(argv[2], "summarize") != 0) {
    std::fprintf(stderr, "error: trace: expected `summarize <trace_file>`\n");
    return 2;
  }
  if (argc < 4) {
    std::fprintf(stderr, "error: trace summarize: missing trace file\n");
    return 2;
  }
  auto file = obs::ReadTraceFile(argv[3]);
  if (!file.ok()) {
    std::fprintf(stderr, "error: %s\n", file.status().ToString().c_str());
    return 1;
  }
  obs::TraceSummary summary = obs::Summarize(file.value());
  std::fputs(obs::RenderSummary(summary).c_str(), stdout);
  return 0;
}

int Run(const CliOptions& options) {
  auto data = graph::ReadEdgeListFile(options.edge_list);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu nodes, %zu edges (%zu duplicate lines skipped)\n",
              data->graph.num_nodes(), data->graph.num_edges(),
              data->duplicates_skipped);

  simrank::SimRankOptions sr_options;
  sr_options.damping = options.damping;
  sr_options.iterations = options.iterations;
  WallTimer timer;
  auto index = core::DynamicSimRank::Create(data->graph, sr_options,
                                            options.algorithm);
  if (!index.ok()) {
    std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("batch SimRank solve: %.2f s (C = %.2f, K = %d)\n",
              timer.ElapsedSeconds(), options.damping, options.iterations);

  if (!options.updates_file.empty()) {
    auto updates = ReadUpdates(options.updates_file);
    if (!updates.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   updates.status().ToString().c_str());
      return 1;
    }
    Status translated = TranslateUpdates(data.value(), &updates.value());
    if (!translated.ok()) {
      std::fprintf(stderr, "error: %s\n", translated.ToString().c_str());
      return 1;
    }
    timer.Restart();
    Status applied = index->ApplyBatch(updates.value());
    if (!applied.ok()) {
      std::fprintf(stderr, "error applying updates: %s\n",
                   applied.ToString().c_str());
      return 1;
    }
    std::printf("applied %zu updates incrementally: %.3f s\n",
                updates->size(), timer.ElapsedSeconds());
  }

  IdSpace ids(data.value());
  if (options.query >= 0) {
    graph::NodeId query = ids.ToDense(options.query);
    if (query < 0 || !index->graph().HasNode(query)) {
      std::fprintf(stderr, "error: query node %d not in the edge list\n",
                   options.query);
      return 1;
    }
    std::printf("top-%zu most similar to node %d:\n", options.topk,
                options.query);
    for (const auto& pair : index->TopKFor(query, options.topk)) {
      std::printf("  %6lld  %.6f\n", ids.ToOriginal(pair.b), pair.score);
    }
  } else {
    std::printf("top-%zu node pairs:\n", options.topk);
    for (const auto& pair : index->TopKPairs(options.topk)) {
      std::printf("  (%6lld, %6lld)  %.6f\n", ids.ToOriginal(pair.a),
                  ids.ToOriginal(pair.b), pair.score);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    auto options = ParseServeArgs(argc, argv);
    if (!options.ok()) {
      std::fprintf(stderr, "error: %s\n", options.status().ToString().c_str());
      PrintUsage(argv[0]);
      return 2;
    }
    return RunServe(options.value());
  }
  if (argc >= 2 && std::strcmp(argv[1], "trace") == 0) {
    return RunTrace(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "client") == 0) {
    auto command = ParseClientArgs(argc, argv);
    if (!command.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   command.status().ToString().c_str());
      PrintUsage(argv[0]);
      return 2;
    }
    return RunClient(command.value());
  }
  auto options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "error: %s\n", options.status().ToString().c_str());
    PrintUsage(argv[0]);
    return 2;
  }
  return Run(options.value());
}
