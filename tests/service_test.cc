// Tests for the concurrent serving layer: ingest/flush semantics, epoch
// snapshot isolation, affected-area cache invalidation, backpressure, and
// the headline multi-threaded consistency property — N writers + M readers
// running concurrently must leave the service exactly equal (to 1e-9) to a
// fresh batch-built index on the final graph once Flush() returns. The
// whole suite is TSan-clean; CI runs it under -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/dynamic_simrank.h"
#include "graph/generators.h"
#include "graph/update_stream.h"
#include "service/query_cache.h"
#include "service/simrank_service.h"

namespace incsr::service {
namespace {

using core::DynamicSimRank;
using core::ScoredPair;
using graph::DynamicDiGraph;
using graph::EdgeUpdate;
using graph::UpdateKind;

simrank::SimRankOptions Converged(double damping = 0.6) {
  simrank::SimRankOptions options;
  options.damping = damping;
  options.iterations =
      static_cast<int>(std::log(1e-13) / std::log(damping)) + 2;
  return options;
}

DynamicDiGraph TestGraph(std::uint64_t seed = 3, std::size_t n = 16,
                         std::size_t m = 40) {
  auto stream = graph::ErdosRenyiGnm(n, m, seed);
  INCSR_CHECK(stream.ok(), "generator");
  return graph::MaterializeGraph(n, stream.value());
}

std::unique_ptr<SimRankService> MakeService(const DynamicDiGraph& graph,
                                            ServiceOptions options = {}) {
  auto index = DynamicSimRank::Create(graph, Converged());
  INCSR_CHECK(index.ok(), "index build");
  auto service = SimRankService::Create(std::move(index).value(), options);
  INCSR_CHECK(service.ok(), "service build");
  return std::move(service).value();
}

la::DenseMatrix OracleScores(const DynamicDiGraph& graph) {
  auto oracle = DynamicSimRank::Create(graph, Converged());
  INCSR_CHECK(oracle.ok(), "oracle build");
  return oracle->scores().ToDense();
}

TEST(SimRankService, CreateRejectsBadOptions) {
  auto index = DynamicSimRank::Create(TestGraph(), Converged());
  ASSERT_TRUE(index.ok());
  ServiceOptions bad;
  bad.queue_capacity = 0;
  EXPECT_EQ(SimRankService::Create(std::move(index).value(), bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SimRankService, ServesInitialEpochBeforeAnyUpdate) {
  DynamicDiGraph graph = TestGraph(7);
  auto service = MakeService(graph);
  auto snap = service->Snapshot();
  EXPECT_EQ(snap->epoch, 0u);
  EXPECT_EQ(snap->graph.num_edges(), graph.num_edges());
  EXPECT_LT(la::MaxAbsDiff(snap->scores, OracleScores(graph)), 1e-11);

  auto score = service->Score(0, 1);
  ASSERT_TRUE(score.ok());
  EXPECT_DOUBLE_EQ(score.value(), snap->scores(0, 1));
  EXPECT_EQ(service->Score(-1, 0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(service->TopKFor(99, 3).status().code(), StatusCode::kOutOfRange);
}

TEST(SimRankService, SerialIngestMatchesOracleAfterFlush) {
  DynamicDiGraph graph = TestGraph(11, 16, 40);
  auto service = MakeService(graph);

  Rng rng(5);
  auto inserts = graph::SampleInsertions(graph, 8, &rng);
  ASSERT_TRUE(inserts.ok());
  auto deletions = graph::SampleDeletions(graph, 4, &rng);
  ASSERT_TRUE(deletions.ok());
  std::vector<EdgeUpdate> updates = inserts.value();
  updates.insert(updates.end(), deletions->begin(), deletions->end());

  ASSERT_TRUE(service->SubmitBatch(updates).ok());
  ASSERT_TRUE(service->Flush().ok());

  DynamicDiGraph final_graph = graph;
  ASSERT_TRUE(graph::ApplyUpdates(updates, &final_graph).ok());
  auto snap = service->Snapshot();
  EXPECT_GE(snap->epoch, 1u);
  EXPECT_EQ(snap->graph.Edges(), final_graph.Edges());
  EXPECT_LT(la::MaxAbsDiff(snap->scores, OracleScores(final_graph)), 1e-9);

  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.submitted, updates.size());
  EXPECT_EQ(stats.applied, updates.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// The acceptance-criteria test: N writer threads enqueue a random update
// stream while M reader threads query concurrently; after Flush() the
// served scores equal a fresh batch build on the final graph to 1e-9.
TEST(SimRankService, ConcurrentWritersAndReadersMatchOracle) {
  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  DynamicDiGraph graph = TestGraph(21, 24, 60);
  ServiceOptions options;
  options.max_batch = 8;  // force several epochs
  auto service = MakeService(graph, options);

  // Insertions of distinct non-edges stay valid under every interleaving
  // of the writer threads (deletion validity would depend on order).
  Rng rng(17);
  auto sampled = graph::SampleInsertions(graph, 30, &rng);
  ASSERT_TRUE(sampled.ok());
  const std::vector<EdgeUpdate>& updates = sampled.value();

  std::atomic<bool> writers_done{false};
  std::atomic<std::uint64_t> reader_queries{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t i = w; i < updates.size(); i += kWriters) {
        Status s = service->Submit(updates[i]);
        INCSR_CHECK(s.ok(), "submit failed: %s", s.ToString().c_str());
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng reader_rng(100 + static_cast<std::uint64_t>(r));
      // do-while: at least one query each, even if the writers finish
      // before this thread is first scheduled.
      do {
        const auto node = static_cast<graph::NodeId>(
            reader_rng.NextBounded(graph.num_nodes()));
        auto top = service->TopKFor(node, 5);
        INCSR_CHECK(top.ok(), "TopKFor failed");
        INCSR_CHECK(top->size() <= 5, "TopKFor overshot k");
        auto score = service->Score(node, 0);
        INCSR_CHECK(score.ok(), "Score failed");
        INCSR_CHECK(score.value() >= -1e-12 && score.value() <= 1.0 + 1e-12,
                    "score out of [0, 1]");
        auto pairs = service->TopKPairs(10);
        INCSR_CHECK(pairs.size() <= 10, "TopKPairs overshot k");
        reader_queries.fetch_add(1, std::memory_order_relaxed);
      } while (!writers_done.load(std::memory_order_acquire));
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true, std::memory_order_release);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  ASSERT_TRUE(service->Flush().ok());

  DynamicDiGraph final_graph = graph;
  for (const EdgeUpdate& u : updates) {
    ASSERT_TRUE(final_graph.AddEdge(u.src, u.dst).ok());
  }
  auto snap = service->Snapshot();
  EXPECT_EQ(snap->graph.Edges(), final_graph.Edges());
  EXPECT_LT(la::MaxAbsDiff(snap->scores, OracleScores(final_graph)), 1e-9);

  // Post-flush queries see the final state, cache included.
  for (graph::NodeId q = 0; q < 4; ++q) {
    auto served = service->TopKFor(q, 5);
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(served.value(), core::TopKForOf(snap->scores, q, 5));
  }

  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.submitted, updates.size());
  EXPECT_EQ(stats.applied, updates.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.epoch, 1u);
  EXPECT_GT(reader_queries.load(), 0u);
}

TEST(SimRankService, SelectiveCacheInvalidationAcrossComponents) {
  // Two disjoint 8-node components: SimRank never couples them, so an
  // update inside component A has an affected area wholly inside A and
  // must leave cached queries for component B warm.
  const std::size_t half = 8;
  auto stream_a = graph::ErdosRenyiGnm(half, 20, 3);
  auto stream_b = graph::ErdosRenyiGnm(half, 20, 4);
  ASSERT_TRUE(stream_a.ok() && stream_b.ok());
  DynamicDiGraph graph(2 * half);
  for (const auto& e : stream_a.value()) {
    ASSERT_TRUE(graph.AddEdge(e.edge.src, e.edge.dst).ok());
  }
  for (const auto& e : stream_b.value()) {
    ASSERT_TRUE(
        graph
            .AddEdge(e.edge.src + static_cast<graph::NodeId>(half),
                     e.edge.dst + static_cast<graph::NodeId>(half))
            .ok());
  }
  auto service = MakeService(graph);

  const graph::NodeId in_b = static_cast<graph::NodeId>(half) + 2;
  ASSERT_TRUE(service->TopKFor(in_b, 4).ok());  // warms the cache
  QueryCacheStats before = service->stats().cache;

  // An insert inside component A (nodes 0..7 only).
  EdgeUpdate update{UpdateKind::kInsert, 0, 5};
  if (graph.HasEdge(0, 5)) update = {UpdateKind::kDelete, 0, 5};
  ASSERT_TRUE(service->Submit(update).ok());
  ASSERT_TRUE(service->Flush().ok());

  auto again = service->TopKFor(in_b, 4);
  ASSERT_TRUE(again.ok());
  QueryCacheStats after = service->stats().cache;
  EXPECT_EQ(after.hits, before.hits + 1);  // entry survived the epoch bump
  // And the survivor is still exact for the new epoch.
  auto snap = service->Snapshot();
  EXPECT_EQ(again.value(), core::TopKForOf(snap->scores, in_b, 4));
}

TEST(SimRankService, PublishCostIsTouchedRowsNotN) {
  // Two disjoint 8-node components: an update inside component A has an
  // affected area wholly inside A, so the COW publish must copy at most
  // |A| rows — not the full n rows the old full-copy snapshot paid.
  const std::size_t half = 8;
  auto stream_a = graph::ErdosRenyiGnm(half, 20, 5);
  auto stream_b = graph::ErdosRenyiGnm(half, 20, 6);
  ASSERT_TRUE(stream_a.ok() && stream_b.ok());
  DynamicDiGraph graph(2 * half);
  for (const auto& e : stream_a.value()) {
    ASSERT_TRUE(graph.AddEdge(e.edge.src, e.edge.dst).ok());
  }
  for (const auto& e : stream_b.value()) {
    ASSERT_TRUE(
        graph
            .AddEdge(e.edge.src + static_cast<graph::NodeId>(half),
                     e.edge.dst + static_cast<graph::NodeId>(half))
            .ok());
  }
  auto service = MakeService(graph);
  EXPECT_EQ(service->stats().rows_published, 0u);  // epoch 0 copies nothing

  EdgeUpdate update{UpdateKind::kInsert, 0, 5};
  if (graph.HasEdge(0, 5)) update = {UpdateKind::kDelete, 0, 5};
  ASSERT_TRUE(service->Submit(update).ok());
  ASSERT_TRUE(service->Flush().ok());

  ServiceStats stats = service->stats();
  EXPECT_GT(stats.rows_published, 0u);
  EXPECT_LE(stats.rows_published, half);  // affected area stayed inside A
  EXPECT_EQ(stats.bytes_published,
            stats.rows_published * 2 * half * sizeof(double));
}

TEST(SimRankService, PinnedSnapshotStaysByteStableAcrossEpochs) {
  DynamicDiGraph graph = TestGraph(61, 16, 40);
  auto service = MakeService(graph);
  auto pinned = service->Snapshot();
  la::DenseMatrix pinned_bytes = pinned->scores.ToDense();

  Rng rng(19);
  auto inserts = graph::SampleInsertions(graph, 10, &rng);
  ASSERT_TRUE(inserts.ok());
  ASSERT_TRUE(service->SubmitBatch(inserts.value()).ok());
  ASSERT_TRUE(service->Flush().ok());

  // New epochs exist and the live snapshot moved on...
  auto latest = service->Snapshot();
  EXPECT_GT(latest->epoch, pinned->epoch);
  EXPECT_GT(la::MaxAbsDiff(latest->scores, pinned_bytes), 0.0);
  // ...but the pinned snapshot's bytes are exactly what they were.
  EXPECT_EQ(la::MaxAbsDiff(pinned->scores, pinned_bytes), 0.0);
}

TEST(SimRankService, InvalidUpdatesAreSkippedNotFatal) {
  DynamicDiGraph graph = TestGraph(31);
  auto edges = graph.Edges();
  ASSERT_FALSE(edges.empty());
  auto service = MakeService(graph);

  std::vector<EdgeUpdate> updates = {
      {UpdateKind::kInsert, edges[0].src, edges[0].dst},  // duplicate
      {UpdateKind::kDelete, 0, 0},                        // absent (no loop)
      {UpdateKind::kInsert, 500, 1},                      // bad node id
  };
  ASSERT_FALSE(graph.HasEdge(0, 0));
  ASSERT_TRUE(service->SubmitBatch(updates).ok());
  ASSERT_TRUE(service->Flush().ok());

  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.failed, 3u);
  EXPECT_EQ(stats.applied, 0u);
  auto snap = service->Snapshot();
  EXPECT_EQ(snap->graph.Edges(), graph.Edges());
  EXPECT_LT(la::MaxAbsDiff(snap->scores, OracleScores(graph)), 1e-11);
}

TEST(SimRankService, RejectBackpressureSurfacesResourceExhausted) {
  DynamicDiGraph graph = TestGraph(41, 20, 50);
  ServiceOptions options;
  options.queue_capacity = 1;
  options.max_batch = 1;
  options.backpressure = BackpressurePolicy::kReject;
  auto service = MakeService(graph, options);

  Rng rng(9);
  auto inserts = graph::SampleInsertions(graph, 40, &rng);
  ASSERT_TRUE(inserts.ok());
  std::uint64_t rejected = 0;
  for (const EdgeUpdate& u : inserts.value()) {
    Status s = service->Submit(u);
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  ASSERT_TRUE(service->Flush().ok());
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.submitted, inserts->size() - rejected);
  EXPECT_EQ(stats.applied + stats.failed, stats.submitted);
}

TEST(SimRankService, StopDrainsQueueAndRefusesLateSubmits) {
  DynamicDiGraph graph = TestGraph(51);
  auto service = MakeService(graph);
  Rng rng(13);
  auto inserts = graph::SampleInsertions(graph, 6, &rng);
  ASSERT_TRUE(inserts.ok());
  ASSERT_TRUE(service->SubmitBatch(inserts.value()).ok());
  service->Stop();

  EXPECT_EQ(service->Submit({UpdateKind::kInsert, 0, 1}).code(),
            StatusCode::kFailedPrecondition);
  // All pre-stop updates were drained and published.
  DynamicDiGraph final_graph = graph;
  ASSERT_TRUE(graph::ApplyUpdates(inserts.value(), &final_graph).ok());
  auto snap = service->Snapshot();
  EXPECT_EQ(snap->graph.Edges(), final_graph.Edges());
  EXPECT_TRUE(service->Flush().ok());  // no-op barrier after stop
}

// ---- TopKQueryCache unit tests -------------------------------------------

std::vector<ScoredPair> FakeResults(graph::NodeId node, std::size_t k) {
  std::vector<ScoredPair> results;
  for (std::size_t i = 0; i < k; ++i) {
    results.push_back({node, static_cast<graph::NodeId>(i + 1),
                       1.0 / static_cast<double>(i + 1)});
  }
  return results;
}

TEST(TopKQueryCache, PrefixHitsAndLargerKMisses) {
  TopKQueryCache cache(4);
  std::vector<ScoredPair> out;
  EXPECT_FALSE(cache.Lookup(1, 3, &out));
  cache.Insert(1, 5, 0, FakeResults(1, 5));
  ASSERT_TRUE(cache.Lookup(1, 3, &out));
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out, FakeResults(1, 3));
  EXPECT_FALSE(cache.Lookup(1, 8, &out));  // cached k too small
}

TEST(TopKQueryCache, SelectiveInvalidationEvictsOnlyTouchedNodes) {
  TopKQueryCache cache(8);
  cache.Insert(1, 2, 0, FakeResults(1, 2));
  cache.Insert(2, 2, 0, FakeResults(2, 2));
  cache.Insert(3, 2, 0, FakeResults(3, 2));
  std::vector<std::int32_t> touched = {2, 7};
  cache.OnPublish(1, touched);
  std::vector<ScoredPair> out;
  EXPECT_TRUE(cache.Lookup(1, 2, &out));
  EXPECT_FALSE(cache.Lookup(2, 2, &out));
  EXPECT_TRUE(cache.Lookup(3, 2, &out));
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(TopKQueryCache, StaleEpochInsertIsDropped) {
  TopKQueryCache cache(4);
  cache.OnPublish(2, {});
  cache.Insert(1, 2, 1, FakeResults(1, 2));  // computed at old epoch 1
  std::vector<ScoredPair> out;
  EXPECT_FALSE(cache.Lookup(1, 2, &out));
  EXPECT_EQ(cache.stats().stale_inserts, 1u);
  cache.Insert(1, 2, 2, FakeResults(1, 2));  // current epoch: admitted
  EXPECT_TRUE(cache.Lookup(1, 2, &out));
}

TEST(TopKQueryCache, LruEvictionAtCapacity) {
  TopKQueryCache cache(2);
  cache.Insert(1, 1, 0, FakeResults(1, 1));
  cache.Insert(2, 1, 0, FakeResults(2, 1));
  std::vector<ScoredPair> out;
  ASSERT_TRUE(cache.Lookup(1, 1, &out));  // 1 becomes most recent
  cache.Insert(3, 1, 0, FakeResults(3, 1));
  EXPECT_TRUE(cache.Lookup(1, 1, &out));
  EXPECT_FALSE(cache.Lookup(2, 1, &out));  // LRU victim
  EXPECT_TRUE(cache.Lookup(3, 1, &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(TopKQueryCache, ZeroCapacityDisablesCaching) {
  TopKQueryCache cache(0);
  cache.Insert(1, 2, 0, FakeResults(1, 2));
  std::vector<ScoredPair> out;
  EXPECT_FALSE(cache.Lookup(1, 2, &out));
  cache.InsertPairs(2, 0, FakeResults(0, 2));
  EXPECT_FALSE(cache.LookupPairs(2, &out));
}

TEST(TopKQueryCache, PairsMemoInvalidatedByAnyTouch) {
  TopKQueryCache cache(4);
  cache.InsertPairs(3, 0, FakeResults(0, 3));
  std::vector<ScoredPair> out;
  ASSERT_TRUE(cache.LookupPairs(2, &out));
  EXPECT_EQ(out.size(), 2u);
  std::vector<std::int32_t> touched = {5};
  cache.OnPublish(1, touched);
  EXPECT_FALSE(cache.LookupPairs(2, &out));
}

}  // namespace
}  // namespace incsr::service
