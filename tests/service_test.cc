// Tests for the concurrent serving layer: ingest/flush semantics, epoch
// snapshot isolation, affected-area cache invalidation, backpressure, and
// the headline multi-threaded consistency property — N writers + M readers
// running concurrently must leave the service exactly equal (to 1e-9) to a
// fresh batch-built index on the final graph once Flush() returns. The
// whole suite is TSan-clean; CI runs it under -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/dynamic_simrank.h"
#include "graph/generators.h"
#include "graph/update_stream.h"
#include "la/score_store.h"
#include "service/query_cache.h"
#include "service/simrank_service.h"
#include "service/topk_index.h"

namespace incsr::service {
namespace {

using core::DynamicSimRank;
using core::ScoredPair;
using graph::DynamicDiGraph;
using graph::EdgeUpdate;
using graph::UpdateKind;

simrank::SimRankOptions Converged(double damping = 0.6) {
  simrank::SimRankOptions options;
  options.damping = damping;
  options.iterations =
      static_cast<int>(std::log(1e-13) / std::log(damping)) + 2;
  return options;
}

DynamicDiGraph TestGraph(std::uint64_t seed = 3, std::size_t n = 16,
                         std::size_t m = 40) {
  auto stream = graph::ErdosRenyiGnm(n, m, seed);
  INCSR_CHECK(stream.ok(), "generator");
  return graph::MaterializeGraph(n, stream.value());
}

std::unique_ptr<SimRankService> MakeService(const DynamicDiGraph& graph,
                                            ServiceOptions options = {}) {
  auto index = DynamicSimRank::Create(graph, Converged());
  INCSR_CHECK(index.ok(), "index build");
  auto service = SimRankService::Create(std::move(index).value(), options);
  INCSR_CHECK(service.ok(), "service build");
  return std::move(service).value();
}

la::DenseMatrix OracleScores(const DynamicDiGraph& graph) {
  auto oracle = DynamicSimRank::Create(graph, Converged());
  INCSR_CHECK(oracle.ok(), "oracle build");
  return oracle->scores().ToDense();
}

TEST(SimRankService, CreateRejectsBadOptions) {
  auto index = DynamicSimRank::Create(TestGraph(), Converged());
  ASSERT_TRUE(index.ok());
  ServiceOptions bad;
  bad.queue_capacity = 0;
  EXPECT_EQ(SimRankService::Create(std::move(index).value(), bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SimRankService, ServesInitialEpochBeforeAnyUpdate) {
  DynamicDiGraph graph = TestGraph(7);
  auto service = MakeService(graph);
  auto snap = service->Snapshot();
  EXPECT_EQ(snap->epoch, 0u);
  EXPECT_EQ(snap->graph.num_edges(), graph.num_edges());
  EXPECT_LT(la::MaxAbsDiff(snap->scores, OracleScores(graph)), 1e-11);

  auto score = service->Score(0, 1);
  ASSERT_TRUE(score.ok());
  EXPECT_DOUBLE_EQ(score.value(), snap->scores(0, 1));
  EXPECT_EQ(service->Score(-1, 0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(service->TopKFor(99, 3).status().code(), StatusCode::kOutOfRange);
}

TEST(SimRankService, SerialIngestMatchesOracleAfterFlush) {
  DynamicDiGraph graph = TestGraph(11, 16, 40);
  auto service = MakeService(graph);

  Rng rng(5);
  auto inserts = graph::SampleInsertions(graph, 8, &rng);
  ASSERT_TRUE(inserts.ok());
  auto deletions = graph::SampleDeletions(graph, 4, &rng);
  ASSERT_TRUE(deletions.ok());
  std::vector<EdgeUpdate> updates = inserts.value();
  updates.insert(updates.end(), deletions->begin(), deletions->end());

  ASSERT_TRUE(service->SubmitBatch(updates).ok());
  ASSERT_TRUE(service->Flush().ok());

  DynamicDiGraph final_graph = graph;
  ASSERT_TRUE(graph::ApplyUpdates(updates, &final_graph).ok());
  auto snap = service->Snapshot();
  EXPECT_GE(snap->epoch, 1u);
  EXPECT_EQ(snap->graph.Edges(), final_graph.Edges());
  EXPECT_LT(la::MaxAbsDiff(snap->scores, OracleScores(final_graph)), 1e-9);

  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.submitted, updates.size());
  EXPECT_EQ(stats.applied, updates.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// The acceptance-criteria test: N writer threads enqueue a random update
// stream while M reader threads query concurrently; after Flush() the
// served scores equal a fresh batch build on the final graph to 1e-9.
TEST(SimRankService, ConcurrentWritersAndReadersMatchOracle) {
  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  DynamicDiGraph graph = TestGraph(21, 24, 60);
  ServiceOptions options;
  options.max_batch = 8;  // force several epochs
  auto service = MakeService(graph, options);

  // Insertions of distinct non-edges stay valid under every interleaving
  // of the writer threads (deletion validity would depend on order).
  Rng rng(17);
  auto sampled = graph::SampleInsertions(graph, 30, &rng);
  ASSERT_TRUE(sampled.ok());
  const std::vector<EdgeUpdate>& updates = sampled.value();

  std::atomic<bool> writers_done{false};
  std::atomic<std::uint64_t> reader_queries{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t i = w; i < updates.size(); i += kWriters) {
        Status s = service->Submit(updates[i]);
        INCSR_CHECK(s.ok(), "submit failed: %s", s.ToString().c_str());
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng reader_rng(100 + static_cast<std::uint64_t>(r));
      // do-while: at least one query each, even if the writers finish
      // before this thread is first scheduled.
      do {
        const auto node = static_cast<graph::NodeId>(
            reader_rng.NextBounded(graph.num_nodes()));
        auto top = service->TopKFor(node, 5);
        INCSR_CHECK(top.ok(), "TopKFor failed");
        INCSR_CHECK(top->size() <= 5, "TopKFor overshot k");
        auto score = service->Score(node, 0);
        INCSR_CHECK(score.ok(), "Score failed");
        INCSR_CHECK(score.value() >= -1e-12 && score.value() <= 1.0 + 1e-12,
                    "score out of [0, 1]");
        auto pairs = service->TopKPairs(10);
        INCSR_CHECK(pairs.size() <= 10, "TopKPairs overshot k");
        reader_queries.fetch_add(1, std::memory_order_relaxed);
      } while (!writers_done.load(std::memory_order_acquire));
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true, std::memory_order_release);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  ASSERT_TRUE(service->Flush().ok());

  DynamicDiGraph final_graph = graph;
  for (const EdgeUpdate& u : updates) {
    ASSERT_TRUE(final_graph.AddEdge(u.src, u.dst).ok());
  }
  auto snap = service->Snapshot();
  EXPECT_EQ(snap->graph.Edges(), final_graph.Edges());
  EXPECT_LT(la::MaxAbsDiff(snap->scores, OracleScores(final_graph)), 1e-9);

  // Post-flush queries see the final state, cache included.
  for (graph::NodeId q = 0; q < 4; ++q) {
    auto served = service->TopKFor(q, 5);
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(served.value(), core::TopKForOf(snap->scores, q, 5));
  }

  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.submitted, updates.size());
  EXPECT_EQ(stats.applied, updates.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.epoch, 1u);
  EXPECT_GT(reader_queries.load(), 0u);
}

TEST(SimRankService, SelectiveCacheInvalidationAcrossComponents) {
  // Two disjoint 8-node components: SimRank never couples them, so an
  // update inside component A has an affected area wholly inside A and
  // must leave cached queries for component B warm.
  const std::size_t half = 8;
  auto stream_a = graph::ErdosRenyiGnm(half, 20, 3);
  auto stream_b = graph::ErdosRenyiGnm(half, 20, 4);
  ASSERT_TRUE(stream_a.ok() && stream_b.ok());
  DynamicDiGraph graph(2 * half);
  for (const auto& e : stream_a.value()) {
    ASSERT_TRUE(graph.AddEdge(e.edge.src, e.edge.dst).ok());
  }
  for (const auto& e : stream_b.value()) {
    ASSERT_TRUE(
        graph
            .AddEdge(e.edge.src + static_cast<graph::NodeId>(half),
                     e.edge.dst + static_cast<graph::NodeId>(half))
            .ok());
  }
  auto service = MakeService(graph);

  const graph::NodeId in_b = static_cast<graph::NodeId>(half) + 2;
  ASSERT_TRUE(service->TopKFor(in_b, 4).ok());  // warms the cache
  QueryCacheStats before = service->stats().cache;

  // An insert inside component A (nodes 0..7 only).
  EdgeUpdate update{UpdateKind::kInsert, 0, 5};
  if (graph.HasEdge(0, 5)) update = {UpdateKind::kDelete, 0, 5};
  ASSERT_TRUE(service->Submit(update).ok());
  ASSERT_TRUE(service->Flush().ok());

  auto again = service->TopKFor(in_b, 4);
  ASSERT_TRUE(again.ok());
  QueryCacheStats after = service->stats().cache;
  EXPECT_EQ(after.hits, before.hits + 1);  // entry survived the epoch bump
  // And the survivor is still exact for the new epoch.
  auto snap = service->Snapshot();
  EXPECT_EQ(again.value(), core::TopKForOf(snap->scores, in_b, 4));
}

TEST(SimRankService, PublishCostIsTouchedRowsNotN) {
  // Two disjoint 8-node components: an update inside component A has an
  // affected area wholly inside A, so the COW publish must copy at most
  // |A| rows — not the full n rows the old full-copy snapshot paid.
  const std::size_t half = 8;
  auto stream_a = graph::ErdosRenyiGnm(half, 20, 5);
  auto stream_b = graph::ErdosRenyiGnm(half, 20, 6);
  ASSERT_TRUE(stream_a.ok() && stream_b.ok());
  DynamicDiGraph graph(2 * half);
  for (const auto& e : stream_a.value()) {
    ASSERT_TRUE(graph.AddEdge(e.edge.src, e.edge.dst).ok());
  }
  for (const auto& e : stream_b.value()) {
    ASSERT_TRUE(
        graph
            .AddEdge(e.edge.src + static_cast<graph::NodeId>(half),
                     e.edge.dst + static_cast<graph::NodeId>(half))
            .ok());
  }
  auto service = MakeService(graph);
  EXPECT_EQ(service->stats().rows_published, 0u);  // epoch 0 copies nothing

  EdgeUpdate update{UpdateKind::kInsert, 0, 5};
  if (graph.HasEdge(0, 5)) update = {UpdateKind::kDelete, 0, 5};
  ASSERT_TRUE(service->Submit(update).ok());
  ASSERT_TRUE(service->Flush().ok());

  ServiceStats stats = service->stats();
  EXPECT_GT(stats.rows_published, 0u);
  EXPECT_LE(stats.rows_published, half);  // affected area stayed inside A
  EXPECT_EQ(stats.bytes_published,
            stats.rows_published * 2 * half * sizeof(double));
}

TEST(SimRankService, PinnedSnapshotStaysByteStableAcrossEpochs) {
  DynamicDiGraph graph = TestGraph(61, 16, 40);
  auto service = MakeService(graph);
  auto pinned = service->Snapshot();
  la::DenseMatrix pinned_bytes = pinned->scores.ToDense();

  Rng rng(19);
  auto inserts = graph::SampleInsertions(graph, 10, &rng);
  ASSERT_TRUE(inserts.ok());
  ASSERT_TRUE(service->SubmitBatch(inserts.value()).ok());
  ASSERT_TRUE(service->Flush().ok());

  // New epochs exist and the live snapshot moved on...
  auto latest = service->Snapshot();
  EXPECT_GT(latest->epoch, pinned->epoch);
  EXPECT_GT(la::MaxAbsDiff(latest->scores, pinned_bytes), 0.0);
  // ...but the pinned snapshot's bytes are exactly what they were.
  EXPECT_EQ(la::MaxAbsDiff(pinned->scores, pinned_bytes), 0.0);
}

TEST(SimRankService, InvalidUpdatesAreSkippedNotFatal) {
  DynamicDiGraph graph = TestGraph(31);
  auto edges = graph.Edges();
  ASSERT_FALSE(edges.empty());
  auto service = MakeService(graph);

  std::vector<EdgeUpdate> updates = {
      {UpdateKind::kInsert, edges[0].src, edges[0].dst},  // duplicate
      {UpdateKind::kDelete, 0, 0},                        // absent (no loop)
      {UpdateKind::kInsert, 500, 1},                      // bad node id
  };
  ASSERT_FALSE(graph.HasEdge(0, 0));
  ASSERT_TRUE(service->SubmitBatch(updates).ok());
  ASSERT_TRUE(service->Flush().ok());

  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.failed, 3u);
  EXPECT_EQ(stats.applied, 0u);
  auto snap = service->Snapshot();
  EXPECT_EQ(snap->graph.Edges(), graph.Edges());
  EXPECT_LT(la::MaxAbsDiff(snap->scores, OracleScores(graph)), 1e-11);
}

TEST(SimRankService, RejectBackpressureSurfacesResourceExhausted) {
  DynamicDiGraph graph = TestGraph(41, 20, 50);
  ServiceOptions options;
  options.queue_capacity = 1;
  options.max_batch = 1;
  options.backpressure = BackpressurePolicy::kReject;
  auto service = MakeService(graph, options);

  Rng rng(9);
  auto inserts = graph::SampleInsertions(graph, 40, &rng);
  ASSERT_TRUE(inserts.ok());
  std::uint64_t rejected = 0;
  for (const EdgeUpdate& u : inserts.value()) {
    Status s = service->Submit(u);
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  ASSERT_TRUE(service->Flush().ok());
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.submitted, inserts->size() - rejected);
  EXPECT_EQ(stats.applied + stats.failed, stats.submitted);
}

TEST(SimRankService, StopDrainsQueueAndRefusesLateSubmits) {
  DynamicDiGraph graph = TestGraph(51);
  auto service = MakeService(graph);
  Rng rng(13);
  auto inserts = graph::SampleInsertions(graph, 6, &rng);
  ASSERT_TRUE(inserts.ok());
  ASSERT_TRUE(service->SubmitBatch(inserts.value()).ok());
  service->Stop();

  EXPECT_EQ(service->Submit({UpdateKind::kInsert, 0, 1}).code(),
            StatusCode::kFailedPrecondition);
  // All pre-stop updates were drained and published.
  DynamicDiGraph final_graph = graph;
  ASSERT_TRUE(graph::ApplyUpdates(inserts.value(), &final_graph).ok());
  auto snap = service->Snapshot();
  EXPECT_EQ(snap->graph.Edges(), final_graph.Edges());
  EXPECT_TRUE(service->Flush().ok());  // no-op barrier after stop
}

// ---- Per-node top-k index ------------------------------------------------

std::unique_ptr<SimRankService> MakeServiceThreads(const DynamicDiGraph& graph,
                                                   ServiceOptions options,
                                                   int num_threads) {
  simrank::SimRankOptions sr = Converged();
  sr.num_threads = num_threads;
  auto index = DynamicSimRank::Create(graph, sr);
  INCSR_CHECK(index.ok(), "index build");
  auto service = SimRankService::Create(std::move(index).value(), options);
  INCSR_CHECK(service.ok(), "service build");
  return std::move(service).value();
}

// Interleaved mixed churn stream: deletions of existing edges, insertions
// of non-edges — disjoint sets, so valid in any batch decomposition.
std::vector<EdgeUpdate> MixedStream(const DynamicDiGraph& graph,
                                    std::size_t deletions,
                                    std::size_t insertions,
                                    std::uint64_t seed) {
  Rng rng(seed);
  auto del = graph::SampleDeletions(graph, deletions, &rng);
  auto ins = graph::SampleInsertions(graph, insertions, &rng);
  INCSR_CHECK(del.ok() && ins.ok(), "sampling");
  std::vector<EdgeUpdate> mixed;
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < del->size() || b < ins->size()) {
    if (a < del->size()) mixed.push_back((*del)[a++]);
    if (b < ins->size()) mixed.push_back((*ins)[b++]);
  }
  return mixed;
}

// The tentpole acceptance property: a TopKFor answered from the per-node
// index is BITWISE identical to TopKForOf on the same snapshot, across a
// mixed insert/delete churn stream, cache on/off, update-kernel threads
// 1 and 4, and k spanning the index-served (k <= capacity) and underfull
// fallback (k > capacity) paths — and every cache miss is accounted to
// exactly one of the two counters. Runs in the TSan CI job with the rest
// of this suite.
TEST(TopKIndexService, IndexVsOracleAcrossChurnCacheAndThreads) {
  constexpr std::size_t kIndexCapacity = 6;
  DynamicDiGraph graph = TestGraph(71, 20, 50);
  const std::size_t n = graph.num_nodes();
  std::vector<EdgeUpdate> stream = MixedStream(graph, 10, 14, 23);
  for (int threads : {1, 4}) {
    for (std::size_t cache_capacity : {std::size_t{0}, std::size_t{64}}) {
      ServiceOptions options;
      options.max_batch = 4;  // several epochs per run
      options.cache_capacity = cache_capacity;
      options.topk_index_capacity = kIndexCapacity;
      auto service = MakeServiceThreads(graph, options, threads);

      const std::size_t kk[] = {0, 1, 3, kIndexCapacity, kIndexCapacity + 1,
                                n - 1, n, n + 3};
      // Query between every few updates so results span many epochs.
      for (std::size_t next = 0; next <= stream.size(); next += 5) {
        for (std::size_t i = next; i < std::min(next + 5, stream.size());
             ++i) {
          ASSERT_TRUE(service->Submit(stream[i]).ok());
        }
        ASSERT_TRUE(service->Flush().ok());
        auto snap = service->Snapshot();
        for (std::size_t q = 0; q < n; ++q) {
          for (std::size_t k : kk) {
            auto got = service->TopKFor(static_cast<graph::NodeId>(q), k);
            ASSERT_TRUE(got.ok());
            ASSERT_EQ(got.value(),
                      core::TopKForOf(snap->scores,
                                      static_cast<graph::NodeId>(q), k))
                << "q=" << q << " k=" << k << " threads=" << threads
                << " cache=" << cache_capacity;
          }
        }
      }

      ServiceStats stats = service->stats();
      EXPECT_GT(stats.topk_index_served, 0u);
      EXPECT_GT(stats.topk_index_fallbacks, 0u);  // k > capacity occurred
      // Every TopKFor miss was answered by exactly one of the two paths.
      EXPECT_EQ(stats.cache.misses,
                stats.topk_index_served + stats.topk_index_fallbacks);
      if (cache_capacity > 0) EXPECT_GT(stats.cache.hits, 0u);
      // Initial build re-ranked all n rows; every epoch after re-ranked
      // exactly the rows the batch COW'd — nothing more.
      EXPECT_EQ(stats.topk_index_rows_reranked, n + stats.rows_published);
    }
  }
}

TEST(TopKIndexService, UnderfullEntriesFallBackToRowScan) {
  DynamicDiGraph graph = TestGraph(91, 16, 40);
  ServiceOptions options;
  options.cache_capacity = 0;  // every query is a miss
  options.topk_index_capacity = 3;
  auto service = MakeService(graph, options);

  auto served = service->TopKFor(2, 3);  // k == capacity: index answers
  ASSERT_TRUE(served.ok());
  auto fallback = service->TopKFor(2, 10);  // k > capacity: row scan
  ASSERT_TRUE(fallback.ok());
  auto snap = service->Snapshot();
  EXPECT_EQ(served.value(), core::TopKForOf(snap->scores, 2, 3));
  EXPECT_EQ(fallback.value(), core::TopKForOf(snap->scores, 2, 10));

  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.topk_index_served, 1u);
  EXPECT_EQ(stats.topk_index_fallbacks, 1u);
}

TEST(TopKIndexService, PairMergeStaysExactAcrossChurnAndCounts) {
  DynamicDiGraph graph = TestGraph(101, 18, 44);
  const std::size_t n = graph.num_nodes();
  std::vector<EdgeUpdate> stream = MixedStream(graph, 8, 10, 53);
  ServiceOptions options;
  options.cache_capacity = 0;     // every pair query is a miss
  options.topk_index_capacity = n;  // complete entries: merge always exact
  auto service = MakeService(graph, options);

  std::uint64_t queries = 0;
  for (std::size_t next = 0; next <= stream.size(); next += 6) {
    for (std::size_t i = next; i < std::min(next + 6, stream.size()); ++i) {
      ASSERT_TRUE(service->Submit(stream[i]).ok());
    }
    ASSERT_TRUE(service->Flush().ok());
    auto snap = service->Snapshot();
    for (std::size_t k : {std::size_t{1}, std::size_t{7}, n, n * n}) {
      ASSERT_EQ(service->TopKPairs(k), core::TopKPairsOf(snap->scores, k))
          << "k=" << k << " after " << next << " updates";
      ++queries;
    }
  }
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.topk_pairs_served, queries);
  EXPECT_EQ(stats.topk_pairs_fallbacks, 0u);
}

TEST(TopKIndexService, DeepPairQueriesFallBackPastBoundedEntries) {
  DynamicDiGraph graph = TestGraph(91, 16, 40);
  const std::size_t n = graph.num_nodes();
  ServiceOptions options;
  options.cache_capacity = 0;
  options.topk_index_capacity = 2;  // incomplete entries at n = 16
  auto service = MakeService(graph, options);
  auto snap = service->Snapshot();
  // k past the total pair count can never be proven by bounded entries.
  EXPECT_EQ(service->TopKPairs(n * n), core::TopKPairsOf(snap->scores, n * n));
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.topk_pairs_fallbacks, 1u);
  EXPECT_EQ(stats.topk_pairs_served, 0u);
}

TEST(TopKIndexService, RerankCostIsTouchedRowsNotN) {
  // Two disjoint 8-node components (as in PublishCostIsTouchedRowsNotN):
  // an update inside component A must re-rank at most |A| index entries —
  // and in fact exactly the rows the batch copy-on-wrote.
  const std::size_t half = 8;
  auto stream_a = graph::ErdosRenyiGnm(half, 20, 5);
  auto stream_b = graph::ErdosRenyiGnm(half, 20, 6);
  ASSERT_TRUE(stream_a.ok() && stream_b.ok());
  DynamicDiGraph graph(2 * half);
  for (const auto& e : stream_a.value()) {
    ASSERT_TRUE(graph.AddEdge(e.edge.src, e.edge.dst).ok());
  }
  for (const auto& e : stream_b.value()) {
    ASSERT_TRUE(
        graph
            .AddEdge(e.edge.src + static_cast<graph::NodeId>(half),
                     e.edge.dst + static_cast<graph::NodeId>(half))
            .ok());
  }
  auto service = MakeService(graph);
  EXPECT_EQ(service->stats().topk_index_rows_reranked, 2 * half);  // build

  EdgeUpdate update{UpdateKind::kInsert, 0, 5};
  if (graph.HasEdge(0, 5)) update = {UpdateKind::kDelete, 0, 5};
  ASSERT_TRUE(service->Submit(update).ok());
  ASSERT_TRUE(service->Flush().ok());

  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.topk_index_rows_reranked, 2 * half + stats.rows_published);
  EXPECT_LE(stats.topk_index_rows_reranked, 3 * half);  // stayed inside A
}

// ---- TopKFor/TopKPairs edge cases (k = 0, k >= n, single node,
// isolated node) pinned against the oracle, index on and off ---------------

TEST(SimRankService, TopKEdgeCasesMatchOracleIndexOnAndOff) {
  DynamicDiGraph graph = TestGraph(81, 12, 30);
  const std::size_t n = graph.num_nodes();
  for (std::size_t index_capacity : {std::size_t{0}, std::size_t{4096}}) {
    ServiceOptions options;
    options.topk_index_capacity = index_capacity;
    auto service = MakeService(graph, options);
    auto snap = service->Snapshot();

    auto zero = service->TopKFor(3, 0);  // k == 0: empty, not an error
    ASSERT_TRUE(zero.ok());
    EXPECT_TRUE(zero->empty());

    for (std::size_t k : {n - 1, n, n + 100}) {  // k >= n: all n-1 others
      auto all = service->TopKFor(3, k);
      ASSERT_TRUE(all.ok());
      EXPECT_EQ(all->size(), n - 1);
      EXPECT_EQ(all.value(), core::TopKForOf(snap->scores, 3, k));
    }

    EXPECT_TRUE(service->TopKPairs(0).empty());
    EXPECT_EQ(service->TopKPairs(n * n).size(), n * (n - 1) / 2);
  }
}

TEST(SimRankService, SingleNodeGraphServesEmptyTopK) {
  DynamicDiGraph graph(1);
  auto service = MakeService(graph);
  auto top = service->TopKFor(0, 5);
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE(top->empty());
  EXPECT_TRUE(service->TopKPairs(5).empty());
  auto self = service->Score(0, 0);
  ASSERT_TRUE(self.ok());
  EXPECT_GT(self.value(), 0.0);  // s(v, v) = 1 - C
  EXPECT_EQ(service->TopKFor(1, 5).status().code(), StatusCode::kOutOfRange);
}

TEST(SimRankService, IsolatedNodeQueryIsAscendingZeroTail) {
  // Node n-1 is isolated: its row is exactly 0 off-diagonal, so TopKFor
  // must return the other nodes in ascending id order with score 0.0 —
  // identically from the index and from the row scan.
  auto stream = graph::ErdosRenyiGnm(6, 14, 9);
  ASSERT_TRUE(stream.ok());
  DynamicDiGraph graph(7);
  for (const auto& e : stream.value()) {
    ASSERT_TRUE(graph.AddEdge(e.edge.src, e.edge.dst).ok());
  }
  for (std::size_t index_capacity : {std::size_t{0}, std::size_t{4096}}) {
    ServiceOptions options;
    options.topk_index_capacity = index_capacity;
    auto service = MakeService(graph, options);
    auto top = service->TopKFor(6, 10);
    ASSERT_TRUE(top.ok());
    ASSERT_EQ(top->size(), 6u);
    for (std::size_t i = 0; i < top->size(); ++i) {
      EXPECT_EQ((*top)[i].b, static_cast<graph::NodeId>(i));
      EXPECT_EQ((*top)[i].score, 0.0);
    }
  }
}

// ---- ServiceStats aggregation (regression: epoch must not sum) -----------

TEST(ServiceStats, AggregationTakesMaxEpochAndSumsCounters) {
  ServiceStats a;
  a.epoch = 7;
  a.applied = 3;
  a.topk_index_served = 2;
  ServiceStats b;
  b.epoch = 4;
  b.applied = 5;
  b.topk_index_fallbacks = 1;
  a += b;
  EXPECT_EQ(a.epoch, 7u);  // max, not 11
  EXPECT_EQ(a.applied, 8u);
  EXPECT_EQ(a.topk_index_served, 2u);
  EXPECT_EQ(a.topk_index_fallbacks, 1u);
  ServiceStats c;
  c.epoch = 9;
  a += c;
  EXPECT_EQ(a.epoch, 9u);
}

// ---- TopKIndex unit tests ------------------------------------------------

la::ScoreStore StoreFromRows(std::vector<std::vector<double>> rows) {
  la::DenseMatrix dense(rows.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < rows.size(); ++j) dense(i, j) = rows[i][j];
  }
  return la::ScoreStore(std::move(dense));
}

TEST(TopKIndexUnit, DisabledIndexNeverServes) {
  la::ScoreStore store = StoreFromRows({{1.0, 0.5}, {0.5, 1.0}});
  TopKIndex index(0);
  index.RebuildAll(store);
  EXPECT_EQ(index.rows_reranked(), 0u);
  TopKIndex::View view = index.Publish();
  EXPECT_TRUE(view.empty());
  std::vector<ScoredPair> out;
  EXPECT_FALSE(view.Serve(0, 1, &out));
}

TEST(TopKIndexUnit, CompleteEntryServesAnyKUnderfullRefuses) {
  la::ScoreStore store = StoreFromRows({{1.0, 0.3, 0.7, 0.1},
                                        {0.3, 1.0, 0.2, 0.2},
                                        {0.7, 0.2, 1.0, 0.4},
                                        {0.1, 0.2, 0.4, 1.0}});
  TopKIndex full(8);  // capacity >= n-1: entries complete
  full.RebuildAll(store);
  TopKIndex::View view = full.Publish();
  std::vector<ScoredPair> out;
  ASSERT_TRUE(view.Serve(0, 100, &out));  // k >= n served from a complete entry
  EXPECT_EQ(out, core::TopKForOf(store, 0, 100));
  ASSERT_TRUE(view.Serve(0, 0, &out));
  EXPECT_TRUE(out.empty());

  TopKIndex bounded(2);  // capacity < n-1: k past the entry must refuse
  bounded.RebuildAll(store);
  TopKIndex::View small = bounded.Publish();
  ASSERT_TRUE(small.Serve(2, 2, &out));
  EXPECT_EQ(out, core::TopKForOf(store, 2, 2));
  EXPECT_FALSE(small.Serve(2, 3, &out));  // underfull
}

TEST(TopKIndexUnit, RebuildRowsPatchesOnlyNamedRows) {
  la::ScoreStore store = StoreFromRows({{1.0, 0.3, 0.2},
                                        {0.3, 1.0, 0.6},
                                        {0.2, 0.6, 1.0}});
  TopKIndex index(4);
  index.RebuildAll(store);
  store.Publish();  // start COW tracking
  // Rewrite row 1 (and symmetric column entries in rows 0/2 would follow
  // in real use; here only row 1 is re-ranked on purpose).
  double* row1 = store.MutableRowPtr(1);
  row1[0] = 0.9;
  const std::vector<std::int32_t> touched = {1};
  index.RebuildRows(store, touched);
  TopKIndex::View view = index.Publish();
  std::vector<ScoredPair> out;
  ASSERT_TRUE(view.Serve(1, 2, &out));
  EXPECT_EQ(out, core::TopKForOf(store, 1, 2));  // sees the new bytes
  // Row 0's entry was NOT rebuilt: it still serves the old ranking.
  ASSERT_TRUE(view.Serve(0, 2, &out));
  EXPECT_EQ(out[0].score, 0.3);
}

TEST(TopKIndexUnit, ServePairsCompleteEntriesMatchPairScanExactly) {
  // Deliberately NOT bitwise symmetric: s(a,b) and s(b,a) differ by ~an
  // ulp, exactly like incrementally maintained S. The merge must read
  // row min(a,b)'s copy — the same bytes TopKPairsOf reads — or scores
  // (and hence tie-breaks) drift off the scan's.
  const double kJitter = 1e-15;
  la::ScoreStore store = StoreFromRows({
      {1.0, 0.8, 0.3, 0.5},
      {0.8 + kJitter, 1.0, 0.5, 0.2},
      {0.3 - kJitter, 0.5 + kJitter, 1.0, 0.4},
      {0.5 - kJitter, 0.2, 0.4 + kJitter, 1.0}});
  TopKIndex index(8);  // capacity >= n-1: every entry complete
  index.RebuildAll(store);
  TopKIndex::View view = index.Publish();
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{3}, std::size_t{6}, std::size_t{100}}) {
    std::vector<ScoredPair> out;
    ASSERT_TRUE(view.ServePairs(k, &out)) << "k=" << k;
    EXPECT_EQ(out, core::TopKPairsOf(store, k)) << "k=" << k;
  }
}

TEST(TopKIndexUnit, ServePairsBoundedEntriesServeHeadRefusePastBound) {
  // n = 5, capacity 2: entries are incomplete, so only pairs strictly
  // above the worst stored-tail score (0.7, row 1's last item) are
  // provably exact. k = 1 rides the merge; k = 2 would emit the 0.7
  // pair, which an unstored pair could tie — refuse and fall back.
  la::ScoreStore store = StoreFromRows({
      {1.0, 0.9, 0.1, 0.1, 0.1},
      {0.9, 1.0, 0.7, 0.1, 0.1},
      {0.1, 0.7, 1.0, 0.6, 0.1},
      {0.1, 0.1, 0.6, 1.0, 0.1},
      {0.1, 0.1, 0.1, 0.1, 1.0}});
  TopKIndex index(2);
  index.RebuildAll(store);
  TopKIndex::View view = index.Publish();
  std::vector<ScoredPair> out;
  ASSERT_TRUE(view.ServePairs(1, &out));
  EXPECT_EQ(out, core::TopKPairsOf(store, 1));
  EXPECT_FALSE(view.ServePairs(2, &out));
  EXPECT_TRUE(out.empty());

  TopKIndex disabled(0);
  disabled.RebuildAll(store);
  EXPECT_FALSE(disabled.Publish().ServePairs(1, &out));
}

// ---- TopKQueryCache unit tests -------------------------------------------

std::vector<ScoredPair> FakeResults(graph::NodeId node, std::size_t k) {
  std::vector<ScoredPair> results;
  for (std::size_t i = 0; i < k; ++i) {
    results.push_back({node, static_cast<graph::NodeId>(i + 1),
                       1.0 / static_cast<double>(i + 1)});
  }
  return results;
}

TEST(TopKQueryCache, PrefixHitsAndLargerKMisses) {
  TopKQueryCache cache(4);
  std::vector<ScoredPair> out;
  EXPECT_FALSE(cache.Lookup(1, 3, &out));
  cache.Insert(1, 5, 0, FakeResults(1, 5));
  ASSERT_TRUE(cache.Lookup(1, 3, &out));
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out, FakeResults(1, 3));
  EXPECT_FALSE(cache.Lookup(1, 8, &out));  // cached k too small
}

TEST(TopKQueryCache, SelectiveInvalidationEvictsOnlyTouchedNodes) {
  TopKQueryCache cache(8);
  cache.Insert(1, 2, 0, FakeResults(1, 2));
  cache.Insert(2, 2, 0, FakeResults(2, 2));
  cache.Insert(3, 2, 0, FakeResults(3, 2));
  std::vector<std::int32_t> touched = {2, 7};
  cache.OnPublish(1, touched);
  std::vector<ScoredPair> out;
  EXPECT_TRUE(cache.Lookup(1, 2, &out));
  EXPECT_FALSE(cache.Lookup(2, 2, &out));
  EXPECT_TRUE(cache.Lookup(3, 2, &out));
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(TopKQueryCache, StaleEpochInsertIsDropped) {
  TopKQueryCache cache(4);
  cache.OnPublish(2, {});
  cache.Insert(1, 2, 1, FakeResults(1, 2));  // computed at old epoch 1
  std::vector<ScoredPair> out;
  EXPECT_FALSE(cache.Lookup(1, 2, &out));
  EXPECT_EQ(cache.stats().stale_inserts, 1u);
  cache.Insert(1, 2, 2, FakeResults(1, 2));  // current epoch: admitted
  EXPECT_TRUE(cache.Lookup(1, 2, &out));
}

TEST(TopKQueryCache, LruEvictionAtCapacity) {
  TopKQueryCache cache(2);
  cache.Insert(1, 1, 0, FakeResults(1, 1));
  cache.Insert(2, 1, 0, FakeResults(2, 1));
  std::vector<ScoredPair> out;
  ASSERT_TRUE(cache.Lookup(1, 1, &out));  // 1 becomes most recent
  cache.Insert(3, 1, 0, FakeResults(3, 1));
  EXPECT_TRUE(cache.Lookup(1, 1, &out));
  EXPECT_FALSE(cache.Lookup(2, 1, &out));  // LRU victim
  EXPECT_TRUE(cache.Lookup(3, 1, &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(TopKQueryCache, ZeroCapacityDisablesCaching) {
  TopKQueryCache cache(0);
  cache.Insert(1, 2, 0, FakeResults(1, 2));
  std::vector<ScoredPair> out;
  EXPECT_FALSE(cache.Lookup(1, 2, &out));
  cache.InsertPairs(2, 0, FakeResults(0, 2));
  EXPECT_FALSE(cache.LookupPairs(2, &out));
}

TEST(TopKQueryCache, PairsMemoInvalidatedByAnyTouch) {
  TopKQueryCache cache(4);
  cache.InsertPairs(3, 0, FakeResults(0, 3));
  std::vector<ScoredPair> out;
  ASSERT_TRUE(cache.LookupPairs(2, &out));
  EXPECT_EQ(out.size(), 2u);
  std::vector<std::int32_t> touched = {5};
  cache.OnPublish(1, touched);
  EXPECT_FALSE(cache.LookupPairs(2, &out));
}

}  // namespace
}  // namespace incsr::service
